#!/usr/bin/env bash
# CI entry point: full build, the complete test suite, then a smoke run of
# the example programs (compile-only paths; no --real flags, so it stays
# fast enough for a gate).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
dune build

echo "== tests =="
dune runtest

echo "== smoke: examples =="
dune build @smoke

echo "== smoke: serve =="
# The serving layer runs domain workers with deadlines and retries; a hang
# here (wedged pool, lost wakeup) would otherwise stall CI forever, so the
# smoke run sits under a hard wall-clock timeout.
timeout 120 dune build @serve-smoke

echo "== smoke: obs =="
# Traced run -> Chrome-JSON validation -> quick profile -> calibrated
# compile. The profile loops real lattice ops, so it too gets a hard cap.
timeout 300 dune build @obs-smoke

echo "== smoke: store =="
# Durable deployments end to end: compile --state-dir, SIGKILL a serve
# mid-run, verify the store, warm-restart, and diff the answers against a
# cold start. Hard cap so a wedged warm restart fails CI instead of
# hanging it.
timeout 120 scripts/store_smoke.sh

echo "== smoke: plan =="
# Compiled plans end to end (@plan-smoke): bundle with a PLAN frame,
# serve --plan from a warm restart, responses diffed against the
# interpretive --no-plan path. Hard cap, like every smoke.
timeout 180 scripts/plan_smoke.sh

echo "== smoke: kernels (@kernel-smoke) =="
# Fast-ring kernels (DESIGN.md §15): the Bigarray/Shoup NTT must beat the
# scalar reference, and real-backend inference must be bit-identical across
# fast/reference/2-domain runs. Real lattice ops throughout, so a hard cap.
timeout 60 dune build @kernel-smoke
timeout 300 scripts/kernel_smoke.sh

echo "== bench: plan vs interpretive =="
# The perf gate's numbers: per-inference latency and allocation delta of
# the plan path, plus the fast-ring kernel grid and its real-backend
# speedup (bit-identity asserted in-bench). Lands in BENCH.json and the
# numbered BENCH_<n>.json trajectory so future PRs have a baseline.
timeout 420 dune exec bench/main.exe -- --plan --kernels --fast

echo "== smoke: net =="
# The fork/exec chaos drill: supervisor + 2 shard processes, loadgen with
# wire faults, SIGKILL a shard mid-run. Everything in it is deadline-bounded
# by design; the hard cap turns any regression back into a hang into a CI
# failure instead of a stall.
timeout 300 scripts/net_smoke.sh

echo "== smoke: hedge =="
# Tail-latency drill: 2 shards with one 300ms straggler, loadgen twice —
# hedged p99 must land strictly below unhedged p99 with zero duplicate
# executions (every shard shutdown line reports dedup=0). Deadline-bounded
# throughout; the cap converts any new hang into a CI failure.
timeout 300 scripts/hedge_smoke.sh

echo "== smoke: integrity =="
# Result-integrity drill (DESIGN.md §16): 2 sentinel shards, one silently
# corrupting every ciphertext it computes. Corrupted answers must be caught
# by the sentinel lane, failed over, and the corrupter quarantined after a
# failed selftest probe — with zero corrupted lanes accepted client-side.
timeout 300 scripts/integrity_smoke.sh

echo "CI OK"
