#!/usr/bin/env bash
# Compiled-plan smoke (DESIGN.md §14): compile a bundle — which now carries
# the checksummed PLAN frame — into a state dir, warm-restart a serve with
# --plan, and require (a) the restart actually skipped the compile, (b) the
# plan path actually engaged, and (c) the timing-free responses are
# identical to the interpretive --no-plan path. The plan is a different
# executor over the same arithmetic; any response drift is a fusion or
# liveness bug, not noise.
#
# Usage: scripts/plan_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-plan-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT
STATE="$DIR/state"

# per-request lines minus the latency suffix — the timing-free part
# ("req NN: ok class=K via RUNG") must match across executors
req_lines() { grep '^req ' "$1" | sed 's/ ([0-9].*//'; }

echo "-- compile into the state dir (bundle carries the PLAN frame)"
"$BIN" compile micro --state-dir "$STATE" --no-keys >/dev/null
test -n "$(ls "$STATE"/gen-*/plan.chet 2>/dev/null)" || {
  echo "plan smoke FAIL: bundle has no plan.chet sidecar" >&2
  exit 1
}

echo "-- interpretive reference (--no-plan)"
"$BIN" serve micro --requests 8 --domains 2 --no-plan >"$DIR/interp.out"
req_lines "$DIR/interp.out" >"$DIR/interp.req"

echo "-- plan serve, warm-restarted from the bundle"
"$BIN" serve micro --requests 8 --domains 2 --plan --state-dir "$STATE" >"$DIR/plan.out"
grep -q '^warm restart: generation' "$DIR/plan.out" || {
  echo "plan smoke FAIL: serve did not warm-restart from the bundle" >&2
  exit 1
}
grep -q '^plan: ' "$DIR/plan.out" || {
  echo "plan smoke FAIL: serve --plan did not engage the plan path" >&2
  exit 1
}
req_lines "$DIR/plan.out" >"$DIR/plan.req"

echo "-- plan answers match the interpretive ones"
diff -u "$DIR/interp.req" "$DIR/plan.req"

echo "plan smoke OK"
