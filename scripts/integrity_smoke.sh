#!/usr/bin/env bash
# End-to-end result-integrity chaos drill (DESIGN.md §16). Start a
# supervisor with two sentinel-serving shard processes, one of which
# silently corrupts every ciphertext it computes — small-magnitude damage
# that evades every per-op screen and is only caught by the sentinel lane.
# Drive verified loadgen traffic and require
#   (a) every request is answered ok: corrupted answers are rejected by the
#       shard's own sentinel, the supervisor fails the request over to the
#       clean shard, and the client-side re-verification accepts zero
#       corrupted lanes (loadgen exits 5 if even one slips through);
#   (b) the supervisor put the corrupter under suspicion
#       (chet_integrity_failures_total > 0), confirmed with a selftest
#       probe, and quarantined it (chet_shard_quarantines_total > 0);
#   (c) the quarantine SIGKILL fed the ordinary restart machinery
#       (chet_sup_restarts_total for the bad shard > 0);
#   (d) everything shuts down cleanly on SIGTERM.
#
# Usage: scripts/integrity_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-integrity-smoke.XXXXXX")
SUP_PID=
cleanup() {
  [ -n "$SUP_PID" ] && kill -9 "$SUP_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

FRONT="unix:$DIR/front.sock"

echo "-- start supervisor: 2 sentinel shards, shard 1 silently corrupting"
"$BIN" supervise micro --front "$FRONT" --shards 2 --sentinel \
  --fault silent --fault-shard 1 \
  --sock-dir "$DIR/shards" >"$DIR/sup.out" 2>&1 &
SUP_PID=$!

for _ in $(seq 1 300); do
  grep -q '^supervisor: pid' "$DIR/sup.out" 2>/dev/null && break
  kill -0 "$SUP_PID" 2>/dev/null || { echo "integrity smoke FAIL: supervisor died during startup" >&2; cat "$DIR/sup.out"; exit 1; }
  sleep 0.2
done
grep -q '^supervisor: pid' "$DIR/sup.out" || {
  echo "integrity smoke FAIL: supervisor not ready within 60s" >&2
  exit 1
}

echo "-- loadgen: 40 verified requests against the front door"
timeout 120 "$BIN" loadgen micro --addr "$FRONT" \
  --requests 40 --concurrency 4 --verify >"$DIR/loadgen.out" 2>&1
cat "$DIR/loadgen.out"

echo "-- every request answered ok; zero corrupted lanes accepted"
grep -q '^loadgen: 40 requests, 40 ok' "$DIR/loadgen.out" || {
  echo "integrity smoke FAIL: not all 40 requests succeeded" >&2
  exit 1
}
grep -q 'integrity: [1-9][0-9]* verified, 0 client-rejected' "$DIR/loadgen.out" || {
  echo "integrity smoke FAIL: loadgen did not report verified, clean answers" >&2
  exit 1
}

echo "-- graceful shutdown on SIGTERM"
kill -TERM "$SUP_PID"
for _ in $(seq 1 100); do
  kill -0 "$SUP_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SUP_PID" 2>/dev/null; then
  echo "integrity smoke FAIL: supervisor did not exit within 20s of SIGTERM" >&2
  exit 1
fi
wait "$SUP_PID" 2>/dev/null || true
SUP_PID=
cat "$DIR/sup.out"

echo "-- the corrupter was detected, quarantined and restarted"
# detection: at least one forwarded answer came back Integrity_violation
grep -Eq '^chet_integrity_failures_total [1-9][0-9]*' "$DIR/sup.out" || {
  echo "integrity smoke FAIL: metrics show no sentinel rejections at the supervisor" >&2
  exit 1
}
# confirmation + quarantine: the selftest probe failed and the shard was killed
grep -Eq '^chet_shard_quarantines_total [1-9][0-9]*' "$DIR/sup.out" || {
  echo "integrity smoke FAIL: metrics show no quarantine" >&2
  exit 1
}
# the SIGKILL fed the ordinary backoff-restart machinery
grep -Eq 'chet_sup_restarts_total\{shard="1"\} [1-9][0-9]*' "$DIR/sup.out" || {
  echo "integrity smoke FAIL: quarantined shard was never restarted" >&2
  exit 1
}
grep -q '^supervisor: clean shutdown' "$DIR/sup.out" || {
  echo "integrity smoke FAIL: supervisor did not report a clean shutdown" >&2
  exit 1
}

echo "integrity smoke OK"
