#!/usr/bin/env bash
# Networked-serving smoke (DESIGN.md §12): the real fork/exec chaos drill.
# Start a supervisor with two shard-worker processes (each with its own
# store bundle), drive concurrent loadgen traffic with wire faults, SIGKILL
# shard 1 mid-run through the control endpoint, and require
#   (a) every request is answered ok — faults and the kill are routed
#       around, never hung on;
#   (b) the supervisor restarts the killed shard and the restart is a WARM
#       restart from the shard's bundle;
#   (c) the restart shows up in the supervisor's metrics;
#   (d) supervisor and shards shut down cleanly on SIGTERM.
#
# Usage: scripts/net_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-net-smoke.XXXXXX")
SUP_PID=
cleanup() {
  [ -n "$SUP_PID" ] && kill -9 "$SUP_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

FRONT="unix:$DIR/front.sock"

echo "-- start supervisor: 2 shards, per-shard store bundles"
"$BIN" supervise micro --front "$FRONT" --shards 2 \
  --sock-dir "$DIR/shards" --state-dir "$DIR/state" >"$DIR/sup.out" 2>&1 &
SUP_PID=$!

# The front socket listens before the shards finish compiling; traffic sent
# that early is (correctly) rejected as typed "no routable shard". Wait for
# the ready line — printed once await_ready sees both shards answer pings.
for _ in $(seq 1 300); do
  grep -q '^supervisor: pid' "$DIR/sup.out" 2>/dev/null && break
  kill -0 "$SUP_PID" 2>/dev/null || { echo "net smoke FAIL: supervisor died during startup" >&2; cat "$DIR/sup.out"; exit 1; }
  sleep 0.2
done
grep -q '^supervisor: pid' "$DIR/sup.out" || {
  echo "net smoke FAIL: supervisor not ready within 60s" >&2
  exit 1
}

echo "-- loadgen: 50 requests, wire faults every 7th, SIGKILL shard 1 mid-run"
timeout 120 "$BIN" loadgen micro --addr "$FRONT" \
  --requests 50 --concurrency 4 --fault-every 7 \
  --kill-after 10 --kill-shard 1 --control "$FRONT" \
  --bench-out "$DIR/BENCH.json" >"$DIR/loadgen.out" 2>&1
cat "$DIR/loadgen.out"

echo "-- every request answered ok despite faults and the kill"
grep -q '^loadgen: 50 requests, 50 ok' "$DIR/loadgen.out" || {
  echo "net smoke FAIL: not all 50 requests succeeded" >&2
  exit 1
}
grep -q ' [1-9][0-9]* faults injected' "$DIR/loadgen.out" || {
  echo "net smoke FAIL: no wire faults were injected" >&2
  exit 1
}

echo "-- percentiles merged into BENCH.json"
grep -q '"loadgen"' "$DIR/BENCH.json" && grep -q '"p50_ms"' "$DIR/BENCH.json" || {
  echo "net smoke FAIL: BENCH.json missing loadgen percentiles" >&2
  exit 1
}

echo "-- graceful shutdown on SIGTERM"
kill -TERM "$SUP_PID"
# the supervisor drains its shards (SIGTERM, 5s grace each) then prints
# metrics; a wedged shutdown is exactly the hang this smoke exists to catch
for _ in $(seq 1 100); do
  kill -0 "$SUP_PID" 2>/dev/null || break
  sleep 0.2
done
if kill -0 "$SUP_PID" 2>/dev/null; then
  echo "net smoke FAIL: supervisor did not exit within 20s of SIGTERM" >&2
  exit 1
fi
wait "$SUP_PID" 2>/dev/null || true
SUP_PID=
cat "$DIR/sup.out"

echo "-- killed shard was restarted, warm, from its bundle"
grep -q 'chet_sup_restarts_total{shard="1"} 1' "$DIR/sup.out" || {
  echo "net smoke FAIL: supervisor metrics do not show the shard-1 restart" >&2
  exit 1
}
grep -q '^shard 1: .*(warm, gen' "$DIR/sup.out" || {
  echo "net smoke FAIL: restarted shard did not warm-restart from its bundle" >&2
  exit 1
}
grep -q '^supervisor: clean shutdown' "$DIR/sup.out" || {
  echo "net smoke FAIL: supervisor did not report a clean shutdown" >&2
  exit 1
}

echo "net smoke OK"
