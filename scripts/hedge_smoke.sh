#!/usr/bin/env bash
# Hedged-request smoke (DESIGN.md §13): prove that hedging cuts the tail.
# Two drills against the same deliberately-lopsided fleet — 2 shards, shard 0
# sleeping 300 ms before every inference — one without hedging, one with
# --hedge-ms 50. Require
#   (a) every request answered ok in both drills;
#   (b) hedged p99 strictly below unhedged p99 (the whole point);
#   (c) the supervisor's metrics show hedges launched AND won by the
#       duplicate leg, with losers cancelled over the wire (CNCL);
#   (d) zero duplicate executions: every shard's shutdown line reports
#       dedup=0 — hedge siblings go to a *different* shard and losers are
#       cancelled, so no request id is ever executed twice.
#
# Usage: scripts/hedge_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-hedge-smoke.XXXXXX")
SUP_PID=
cleanup() {
  [ -n "$SUP_PID" ] && kill -9 "$SUP_PID" 2>/dev/null || true
  rm -rf "$DIR"
}
trap cleanup EXIT

REQUESTS=24

# run_drill NAME [extra supervise args...] -> leaves $DIR/NAME-sup.out,
# $DIR/NAME-loadgen.out and sets P99 to the drill's loadgen p99 (ms).
run_drill() {
  local name="$1"
  shift
  local front="unix:$DIR/$name-front.sock"

  echo "-- $name: supervisor, 2 shards, shard 0 slowed by 300ms $*"
  "$BIN" supervise micro --front "$front" --shards 2 \
    --sock-dir "$DIR/$name-shards" --slow-shard 0 --slow-ms 300 "$@" \
    >"$DIR/$name-sup.out" 2>&1 &
  SUP_PID=$!

  for _ in $(seq 1 300); do
    grep -q '^supervisor: pid' "$DIR/$name-sup.out" 2>/dev/null && break
    kill -0 "$SUP_PID" 2>/dev/null || {
      echo "hedge smoke FAIL: $name supervisor died during startup" >&2
      cat "$DIR/$name-sup.out"
      exit 1
    }
    sleep 0.2
  done
  grep -q '^supervisor: pid' "$DIR/$name-sup.out" || {
    echo "hedge smoke FAIL: $name supervisor not ready within 60s" >&2
    exit 1
  }

  echo "-- $name: loadgen, $REQUESTS requests"
  timeout 120 "$BIN" loadgen micro --addr "$front" \
    --requests "$REQUESTS" --concurrency 4 \
    --bench-out "$DIR/$name-BENCH.json" >"$DIR/$name-loadgen.out" 2>&1
  cat "$DIR/$name-loadgen.out"

  grep -q "^loadgen: $REQUESTS requests, $REQUESTS ok" "$DIR/$name-loadgen.out" || {
    echo "hedge smoke FAIL: $name: not all $REQUESTS requests succeeded" >&2
    exit 1
  }

  kill -TERM "$SUP_PID"
  for _ in $(seq 1 100); do
    kill -0 "$SUP_PID" 2>/dev/null || break
    sleep 0.2
  done
  if kill -0 "$SUP_PID" 2>/dev/null; then
    echo "hedge smoke FAIL: $name supervisor did not exit within 20s of SIGTERM" >&2
    exit 1
  fi
  wait "$SUP_PID" 2>/dev/null || true
  SUP_PID=

  grep -q '^supervisor: clean shutdown' "$DIR/$name-sup.out" || {
    echo "hedge smoke FAIL: $name supervisor did not shut down cleanly" >&2
    cat "$DIR/$name-sup.out"
    exit 1
  }

  P99=$(sed -n 's/.*p99 \([0-9.]*\)ms.*/\1/p' "$DIR/$name-loadgen.out" | head -1)
  [ -n "$P99" ] || {
    echo "hedge smoke FAIL: $name: no p99 in loadgen output" >&2
    exit 1
  }
}

run_drill unhedged
P99_UNHEDGED=$P99

run_drill hedged --hedge-ms 50
P99_HEDGED=$P99

echo "-- p99: unhedged ${P99_UNHEDGED}ms vs hedged ${P99_HEDGED}ms"
awk -v h="$P99_HEDGED" -v u="$P99_UNHEDGED" 'BEGIN { exit !(h < u) }' || {
  echo "hedge smoke FAIL: hedged p99 (${P99_HEDGED}ms) not below unhedged (${P99_UNHEDGED}ms)" >&2
  exit 1
}

echo "-- hedges launched, won by the duplicate leg, losers cancelled"
grep -Eq 'chet_sup_hedges_total [1-9]' "$DIR/hedged-sup.out" || {
  echo "hedge smoke FAIL: no hedges launched against a 300ms straggler" >&2
  cat "$DIR/hedged-sup.out"
  exit 1
}
grep -Eq 'chet_sup_hedge_wins_total [1-9]' "$DIR/hedged-sup.out" || {
  echo "hedge smoke FAIL: the duplicate leg never won" >&2
  cat "$DIR/hedged-sup.out"
  exit 1
}
grep -Eq 'chet_sup_cancels_sent_total [1-9]' "$DIR/hedged-sup.out" || {
  echo "hedge smoke FAIL: losing legs were never cancelled" >&2
  cat "$DIR/hedged-sup.out"
  exit 1
}

echo "-- zero duplicate executions (dedup=0 on every shard)"
DEDUP_CLEAN=$(grep -c 'graceful shutdown: .*dedup=0' "$DIR/hedged-sup.out" || true)
[ "$DEDUP_CLEAN" -eq 2 ] || {
  echo "hedge smoke FAIL: expected 2 shards reporting dedup=0, saw $DEDUP_CLEAN" >&2
  cat "$DIR/hedged-sup.out"
  exit 1
}

echo "hedge smoke OK"
