#!/usr/bin/env bash
# Durable-deployment smoke (DESIGN.md §11): compile a bundle into a state
# dir, hard-kill (SIGKILL — no atexit, no cleanup) a paced serve mid-run,
# then warm-restart from the surviving bundle and require (a) the store
# verifies clean, (b) the restart actually skipped the compile, and (c) the
# warm answers are identical to a cold start's.
#
# Usage: scripts/store_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-store-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT
STATE="$DIR/state"

# per-request lines minus the latency suffix — the timing-free part
# ("req NN: ok class=K via RUNG") must be reproducible across restarts
req_lines() { grep '^req ' "$1" | sed 's/ ([0-9].*//'; }

echo "-- compile into the state dir"
"$BIN" compile micro --state-dir "$STATE" --no-keys >/dev/null

echo "-- cold reference run (no state dir)"
"$BIN" serve micro --requests 8 --domains 2 >"$DIR/cold.out"
req_lines "$DIR/cold.out" >"$DIR/cold.req"

echo "-- hard kill a paced serve mid-run"
"$BIN" serve micro --requests 64 --domains 2 --interarrival-ms 50 \
  --state-dir "$STATE" >"$DIR/killed.out" 2>&1 &
PID=$!
sleep 1
kill -9 "$PID" 2>/dev/null || true
wait "$PID" 2>/dev/null || true

echo "-- store verifies clean after the kill"
"$BIN" store verify "$STATE"

echo "-- warm restart"
"$BIN" serve micro --requests 8 --domains 2 --state-dir "$STATE" >"$DIR/warm.out"
grep -q '^warm restart: generation' "$DIR/warm.out" || {
  echo "store smoke FAIL: serve did not warm-restart from the bundle" >&2
  exit 1
}
req_lines "$DIR/warm.out" >"$DIR/warm.req"

echo "-- warm answers match the cold run"
diff -u "$DIR/cold.req" "$DIR/warm.req"

echo "store smoke OK"
