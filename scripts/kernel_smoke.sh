#!/usr/bin/env bash
# Fast-ring kernel smoke (DESIGN.md §15): the Bigarray/Shoup kernel path
# must (a) beat the scalar reference on a raw NTT round trip, (b) produce
# bit-identical inference results with the toggle flipped either way, and
# (c) stay bit-identical when the residue channels fan out across a
# 2-domain Kpool. Any drift is a reduction-window bug, not noise.
#
# Usage: scripts/kernel_smoke.sh  (expects a completed `dune build`)
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=_build/default/bin/chet_cli.exe
KBENCH=_build/default/bench/kbench.exe
DIR=$(mktemp -d "${TMPDIR:-/tmp}/chet-kernel-smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

echo "-- ntt microbench: fast path must beat the scalar reference"
"$KBENCH" 4096 100 | tee "$DIR/kbench.out"
fast_us=$(awk '/ntt fast/ { print $3 }' "$DIR/kbench.out")
scalar_us=$(awk '/ntt scalar/ { print $3 }' "$DIR/kbench.out")
awk -v f="$fast_us" -v s="$scalar_us" 'BEGIN { exit !(f + 0 < s + 0) }' || {
  echo "kernel smoke FAIL: fast NTT ($fast_us us) not faster than scalar ($scalar_us us)" >&2
  exit 1
}

# the timing-free tail of a real run: "class=K (clear K); max |err|=E"
result_line() { grep '^measured latency' "$1" | sed 's/^measured latency: [0-9.]* s; //'; }

echo "-- real-backend inference, fast ring (1 domain)"
"$BIN" run micro --target seal --real --domains 1 >"$DIR/fast.out"
result_line "$DIR/fast.out" >"$DIR/fast.res"

echo "-- real-backend inference, scalar reference (--no-fast-ring)"
"$BIN" run micro --target seal --real --domains 1 --no-fast-ring >"$DIR/ref.out"
result_line "$DIR/ref.out" >"$DIR/ref.res"

echo "-- real-backend inference, fast ring across 2 kernel domains"
"$BIN" run micro --target seal --real --domains 2 >"$DIR/dom2.out"
result_line "$DIR/dom2.out" >"$DIR/dom2.res"

echo "-- all three runs must agree bit-for-bit"
diff -u "$DIR/ref.res" "$DIR/fast.res"
diff -u "$DIR/ref.res" "$DIR/dom2.res"
cat "$DIR/ref.res"

echo "-- profile grid on the real backends (quick)"
"$BIN" profile --quick -o "$DIR/kernel-calibration.json" >/dev/null
test -s "$DIR/kernel-calibration.json" || {
  echo "kernel smoke FAIL: profile wrote no calibration" >&2
  exit 1
}

echo "kernel smoke OK"
