(* Unit and property tests for the polynomial-ring layers underneath the two
   CKKS schemes: RNS double-CRT polynomials and big-integer negacyclic
   polynomials. *)

open Chet_crypto
module B = Chet_bigint.Bigint

(* ------------------------------------------------------------------ *)
(* Rq_rns                                                              *)
(* ------------------------------------------------------------------ *)

let n = 32
let primes = Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count:4
let ctx = Rq_rns.make_ctx ~n ~primes
let full = [| 0; 1; 2; 3 |]

let poly_of_ints ints = Rq_rns.of_centered_coeffs ctx full ints

let random_ints seed bound =
  let st = Random.State.make [| seed |] in
  Array.init n (fun _ -> Random.State.full_int st (2 * bound) - bound)

let test_rns_roundtrip () =
  let ints = random_ints 1 1000 in
  let p = poly_of_ints ints in
  let back = Rq_rns.to_centered_bigint_coeffs ctx p in
  Array.iteri
    (fun i c -> Alcotest.(check int) (Printf.sprintf "coeff %d" i) c (B.to_int back.(i)))
    ints

let test_rns_ntt_roundtrip () =
  let p = poly_of_ints (random_ints 2 1000) in
  let q = Rq_rns.from_ntt ctx (Rq_rns.to_ntt ctx p) in
  Alcotest.(check bool) "roundtrip" true (Rq_rns.equal p q)

let test_rns_mul_matches_bigint () =
  (* multiply in RNS, check against schoolbook negacyclic multiplication over
     the integers (coefficients small enough not to wrap Q) *)
  let a = random_ints 3 50 and b = random_ints 4 50 in
  let pa = poly_of_ints a and pb = poly_of_ints b in
  let prod = Rq_rns.from_ntt ctx (Rq_rns.mul ctx pa pb) in
  let got = Rq_rns.to_centered_bigint_coeffs ctx prod in
  let expected = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = a.(i) * b.(j) in
      let k = i + j in
      if k < n then expected.(k) <- expected.(k) + p else expected.(k - n) <- expected.(k - n) - p
    done
  done;
  Array.iteri (fun i e -> Alcotest.(check int) (Printf.sprintf "c%d" i) e (B.to_int got.(i))) expected

let test_rns_drop_last_rounded_divides () =
  (* rescale semantics: drop_last ~rounded divides centered values by q_last
     with bounded rounding error *)
  let big = 1 lsl 40 in
  let ints = random_ints 5 big in
  let p = poly_of_ints ints in
  let dropped = Rq_rns.drop_last ctx p ~rounded:true in
  let got = Rq_rns.to_centered_bigint_coeffs ctx dropped in
  let q_last = float_of_int primes.(3) in
  Array.iteri
    (fun i c ->
      let expected = float_of_int c /. q_last in
      let diff = Float.abs (B.to_float got.(i) -. expected) in
      if diff > 1.0 then Alcotest.failf "coeff %d: %f vs %f" i (B.to_float got.(i)) expected)
    ints

let test_rns_drop_last_unrounded_is_projection () =
  let ints = random_ints 6 1000 in
  let p = poly_of_ints ints in
  let dropped = Rq_rns.drop_last ctx p ~rounded:false in
  Alcotest.(check bool) "same as subset" true
    (Rq_rns.equal dropped (Rq_rns.subset p [| 0; 1; 2 |]))

let test_rns_subset_and_basis () =
  let p = poly_of_ints (random_ints 7 100) in
  let s = Rq_rns.subset p [| 1; 3 |] in
  Alcotest.(check (array int)) "basis" [| 1; 3 |] (Rq_rns.basis s);
  Alcotest.(check (array int)) "component preserved" (Rq_rns.component p ~basis_index:3)
    (Rq_rns.component s ~basis_index:3);
  Alcotest.(check bool) "missing index rejected" true
    (try
       ignore (Rq_rns.subset s [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_rns_automorphism_composition () =
  (* φ_g1 ∘ φ_g2 = φ_(g1·g2 mod 2n) *)
  let p = poly_of_ints (random_ints 8 100) in
  let g1 = 5 and g2 = 9 in
  let lhs = Rq_rns.automorphism ctx (Rq_rns.automorphism ctx p ~g:g2) ~g:g1 in
  let rhs = Rq_rns.automorphism ctx p ~g:(g1 * g2 mod (2 * n)) in
  Alcotest.(check bool) "composition" true (Rq_rns.equal lhs rhs)

let test_rns_mismatched_basis_rejected () =
  let p = poly_of_ints (random_ints 9 10) in
  let s = Rq_rns.subset p [| 0; 1 |] in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Rq_rns.add ctx p s);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Rq_big                                                              *)
(* ------------------------------------------------------------------ *)

let bctx = Rq_big.make_ctx ~n ~max_product_bits:200
let logq = 90

let test_big_mul_matches_schoolbook () =
  let a = random_ints 10 1000 and b = random_ints 11 1000 in
  let pa = Rq_big.of_centered_coeffs bctx logq a and pb = Rq_big.of_centered_coeffs bctx logq b in
  let got = Rq_big.to_centered_bigint_coeffs bctx (Rq_big.mul bctx pa pb) in
  let expected = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = a.(i) * b.(j) in
      let k = i + j in
      if k < n then expected.(k) <- expected.(k) + p else expected.(k - n) <- expected.(k - n) - p
    done
  done;
  Array.iteri (fun i e -> Alcotest.(check int) (Printf.sprintf "c%d" i) e (B.to_int got.(i))) expected

let test_big_rescale_pow2 () =
  let a = [| 1 lsl 20; -(1 lsl 21); 3 lsl 19; 0 |] in
  let padded = Array.append a (Array.make (n - 4) 0) in
  let p = Rq_big.of_centered_coeffs bctx logq padded in
  let r = Rq_big.to_centered_bigint_coeffs bctx (Rq_big.div_round_pow2 bctx p ~k:10) in
  Alcotest.(check int) "c0" (1 lsl 10) (B.to_int r.(0));
  Alcotest.(check int) "c1" (-(1 lsl 11)) (B.to_int r.(1));
  Alcotest.(check int) "c2" (3 lsl 9) (B.to_int r.(2));
  Alcotest.(check int) "c3" 0 (B.to_int r.(3))

let test_big_mod_down_preserves_small () =
  let ints = random_ints 12 1000 in
  let p = Rq_big.of_centered_coeffs bctx logq ints in
  let down = Rq_big.to_centered_bigint_coeffs bctx (Rq_big.mod_down bctx p 40) in
  Array.iteri (fun i c -> Alcotest.(check int) "preserved" c (B.to_int down.(i))) ints

let test_big_automorphism_matches_rns () =
  let ints = random_ints 13 500 in
  let g = 5 in
  let via_big =
    Rq_big.to_centered_bigint_coeffs bctx
      (Rq_big.automorphism bctx (Rq_big.of_centered_coeffs bctx logq ints) ~g)
  in
  let via_rns = Rq_rns.to_centered_bigint_coeffs ctx (Rq_rns.automorphism ctx (poly_of_ints ints) ~g) in
  Array.iteri
    (fun i v -> Alcotest.(check bool) (Printf.sprintf "c%d" i) true (B.equal v via_rns.(i)))
    via_big

(* property: ring axioms through the RNS representation *)
let prop name count f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count ~print:string_of_int QCheck2.Gen.(int_range 0 100000) f)

let props =
  [
    prop "rns add commutes" 50 (fun seed ->
        let a = poly_of_ints (random_ints seed 10000) in
        let b = poly_of_ints (random_ints (seed + 1) 10000) in
        Rq_rns.equal (Rq_rns.add ctx a b) (Rq_rns.add ctx b a));
    prop "rns mul distributes" 30 (fun seed ->
        let a = poly_of_ints (random_ints seed 500) in
        let b = poly_of_ints (random_ints (seed + 1) 500) in
        let c = poly_of_ints (random_ints (seed + 2) 500) in
        let lhs = Rq_rns.from_ntt ctx (Rq_rns.mul ctx a (Rq_rns.add ctx b c)) in
        let rhs =
          Rq_rns.from_ntt ctx
            (Rq_rns.add ctx (Rq_rns.mul ctx a b) (Rq_rns.mul ctx a c))
        in
        Rq_rns.to_bigint_coeffs ctx lhs = Rq_rns.to_bigint_coeffs ctx rhs);
    prop "rns neg is additive inverse" 50 (fun seed ->
        let a = poly_of_ints (random_ints seed 10000) in
        let z = Rq_rns.add ctx a (Rq_rns.neg ctx a) in
        Array.for_all B.is_zero (Rq_rns.to_bigint_coeffs ctx z));
    prop "big canonical roundtrip" 50 (fun seed ->
        let ints = random_ints seed 100000 in
        let p = Rq_big.of_centered_coeffs bctx logq ints in
        Rq_big.equal (Rq_big.of_bigint_coeffs bctx logq (Rq_big.to_bigint_coeffs bctx p)) p);
  ]

let suite =
  [
    ( "rq:unit",
      [
        Alcotest.test_case "rns CRT roundtrip" `Quick test_rns_roundtrip;
        Alcotest.test_case "rns NTT roundtrip" `Quick test_rns_ntt_roundtrip;
        Alcotest.test_case "rns mul = schoolbook" `Quick test_rns_mul_matches_bigint;
        Alcotest.test_case "rns rescale divides" `Quick test_rns_drop_last_rounded_divides;
        Alcotest.test_case "rns drop unrounded = projection" `Quick test_rns_drop_last_unrounded_is_projection;
        Alcotest.test_case "rns subset/basis" `Quick test_rns_subset_and_basis;
        Alcotest.test_case "rns automorphism composes" `Quick test_rns_automorphism_composition;
        Alcotest.test_case "rns basis mismatch rejected" `Quick test_rns_mismatched_basis_rejected;
        Alcotest.test_case "big mul = schoolbook" `Quick test_big_mul_matches_schoolbook;
        Alcotest.test_case "big rescale pow2" `Quick test_big_rescale_pow2;
        Alcotest.test_case "big mod_down" `Quick test_big_mod_down_preserves_small;
        Alcotest.test_case "big automorphism = rns automorphism" `Quick test_big_automorphism_matches_rns;
      ] );
    ("rq:props", props);
  ]
