(* Property tests over the runtime: random well-shaped circuits must produce
   the same outputs through the homomorphic kernels (cleartext HISA backend,
   any layout policy) as through the reference engine. This is the strongest
   coverage we have of kernel/layout interactions — shapes, strides, padding
   and scale management are all exercised by construction. *)

module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module T = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset

(* Build a random circuit: input [c; s; s], then a random sequence of layer
   blocks, then optionally flatten+fc. Shapes are kept small so the whole
   suite stays fast. *)
let random_circuit seed =
  let st = Random.State.make [| seed; 77 |] in
  let b = Circuit.builder () in
  let c0 = 1 + Random.State.int st 3 in
  let s0 = [| 8; 10; 12 |].(Random.State.int st 3) in
  let x = ref (Circuit.input b ~name:"x" [| c0; s0; s0 |]) in
  let blocks = 1 + Random.State.int st 3 in
  for _ = 1 to blocks do
    let c, h, _ = ((!x).Circuit.shape.(0), (!x).Circuit.shape.(1), (!x).Circuit.shape.(2)) in
    match Random.State.int st 6 with
    | 0 ->
        (* conv, random kernel/padding/stride *)
        let k = [| 1; 3 |].(Random.State.int st 2) in
        let padding = if Random.State.bool st then T.Same else T.Valid in
        let stride = if padding = T.Same && h >= 4 && Random.State.bool st then 2 else 1 in
        let out_c = 1 + Random.State.int st 4 in
        if h > k then begin
          let weights = Dataset.glorot st [| out_c; c; k; k |] in
          x := Circuit.conv2d b !x ~weights ~bias:(Dataset.bias st out_c) ~stride ~padding ()
        end
    | 1 -> if h >= 4 && h mod 2 = 0 then x := Circuit.avg_pool b !x ~ksize:2 ~stride:2
    | 2 -> x := Circuit.poly_act b !x ~a:(0.05 +. Random.State.float st 0.1) ~b:1.0
    | 3 -> x := Circuit.square b !x
    | 4 ->
        let scale = Array.init c (fun _ -> 0.7 +. Random.State.float st 0.6) in
        let shift = Array.init c (fun _ -> Random.State.float st 0.2 -. 0.1) in
        x := Circuit.batch_norm b !x ~scale ~shift
    | _ ->
        (* branch: two convs then concat *)
        let out_c = 1 + Random.State.int st 2 in
        let w1 = Dataset.glorot st [| out_c; c; 3; 3 |] in
        let w2 = Dataset.glorot st [| out_c; c; 3; 3 |] in
        let a = Circuit.conv2d b !x ~weights:w1 ~stride:1 ~padding:T.Same () in
        let c2 = Circuit.conv2d b !x ~weights:w2 ~stride:1 ~padding:T.Same () in
        x := Circuit.concat b [ a; c2 ]
  done;
  let x =
    if Random.State.bool st then begin
      let flat = Circuit.flatten b !x in
      let out_d = 4 + Random.State.int st 8 in
      let weights = Dataset.glorot st [| out_d; T.numel_of_shape flat.Circuit.shape |] in
      Circuit.matmul b flat ~weights ~bias:(Dataset.bias st out_d) ()
    end
    else !x
  in
  Circuit.finish b ~name:(Printf.sprintf "random-%d" seed) ~output:x

let backend () =
  Clear.make
    {
      Clear.slots = 2048;
      scheme = Hisa.Rns_chain (Array.make 64 ((1 lsl 30) - 35));
      strict_modulus = false;
      encode_noise = false;
    }

let check_circuit_policy seed policy =
  let circuit = random_circuit seed in
  let shape = circuit.Circuit.input.Circuit.shape in
  let image = Dataset.image ~seed ~channels:shape.(0) ~height:shape.(1) ~width:shape.(2) in
  let expected = Reference.eval circuit image in
  let module H = (val backend () : Hisa.S) in
  let module E = Executor.Make (H) in
  let got = E.run Kernels.default_scales circuit ~policy image in
  let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
  let bound = 2e-2 *. Float.max 1.0 (T.max_abs expected) in
  if diff > bound then
    QCheck2.Test.fail_reportf "circuit %d under %s: diff %.5f > %.5f" seed
      (Executor.policy_name policy) diff bound
  else true

let prop name policy =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:25 ~print:string_of_int
       QCheck2.Gen.(int_range 0 10000)
       (fun seed -> check_circuit_policy seed policy))

(* Compiled plans must be *bit-identical* to the interpretive executor —
   not merely within tolerance. The staged kernels claim to preserve the
   per-slot floating-point evaluation order exactly; any deviation here is
   a fusion bug, not noise. *)
let check_plan_identical seed policy =
  let circuit = random_circuit seed in
  let shape = circuit.Circuit.input.Circuit.shape in
  let image = Dataset.image ~seed ~channels:shape.(0) ~height:shape.(1) ~width:shape.(2) in
  let module H = (val backend () : Hisa.S) in
  let module E = Executor.Make (H) in
  let module PE = Chet_plan.Plan_exec.Make (H) in
  let interp = E.run Kernels.default_scales circuit ~policy image in
  let plan = Chet_plan.Plan.build ~slots:H.slots ~policy circuit in
  (match Chet_plan.Plan.validate plan with
  | Ok () -> ()
  | Error r -> QCheck2.Test.fail_reportf "circuit %d: invalid plan: %s" seed r);
  let prepared = PE.prepare Kernels.default_scales plan in
  let planned = PE.run prepared image in
  if interp.T.shape <> planned.T.shape then
    QCheck2.Test.fail_reportf "circuit %d under %s: plan shape differs" seed
      (Executor.policy_name policy)
  else if interp.T.data <> planned.T.data then begin
    let diff = T.max_abs_diff (T.flatten interp) (T.flatten planned) in
    QCheck2.Test.fail_reportf "circuit %d under %s: plan output not bit-identical (max diff %g)"
      seed (Executor.policy_name policy) diff
  end
  else true

let plan_prop name policy =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:25 ~print:string_of_int
       QCheck2.Gen.(int_range 0 10000)
       (fun seed -> check_plan_identical seed policy))

let test_random_assignments () =
  (* arbitrary per-node assignments (not just the four policies) must also be
     correct — conversions can appear anywhere *)
  let st = Random.State.make [| 4242 |] in
  for seed = 0 to 7 do
    let circuit = random_circuit seed in
    let kinds = Hashtbl.create 16 in
    List.iter
      (fun (node : Circuit.node) ->
        Hashtbl.replace kinds node.Circuit.id
          (if Random.State.bool st then Chet_runtime.Layout.HW else Chet_runtime.Layout.CHW))
      (Circuit.topo_order circuit);
    let kind_of (node : Circuit.node) = Hashtbl.find kinds node.Circuit.id in
    let shape = circuit.Circuit.input.Circuit.shape in
    let image = Dataset.image ~seed ~channels:shape.(0) ~height:shape.(1) ~width:shape.(2) in
    let expected = Reference.eval circuit image in
    let module H = (val backend () : Hisa.S) in
    let module E = Executor.Make (H) in
    let meta = E.input_meta circuit ~kind:(kind_of circuit.Circuit.input) in
    let enc = E.K.encrypt_tensor Kernels.default_scales meta image in
    let out = E.run_encrypted_with Kernels.default_scales circuit ~kind_of enc in
    let got = E.K.decrypt_tensor out in
    let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
    let bound = 2e-2 *. Float.max 1.0 (T.max_abs expected) in
    if diff > bound then
      Alcotest.failf "random assignment on circuit %d: diff %.5f > %.5f" seed diff bound
  done

let suite =
  [
    ( "runtime:props",
      [
        prop "random circuits: HW" Executor.All_hw;
        prop "random circuits: CHW" Executor.All_chw;
        prop "random circuits: HW-conv CHW-rest" Executor.Hw_conv_chw_rest;
        plan_prop "plan bit-identical: HW" Executor.All_hw;
        plan_prop "plan bit-identical: CHW" Executor.All_chw;
        plan_prop "plan bit-identical: HW-conv CHW-rest" Executor.Hw_conv_chw_rest;
        plan_prop "plan bit-identical: CHW-fc HW-before" Executor.Chw_fc_hw_before;
        Alcotest.test_case "random per-node assignments" `Slow test_random_assignments;
      ] );
  ]
