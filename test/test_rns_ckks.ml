(* End-to-end tests of the RNS-CKKS scheme: every homomorphic operation is
   checked against the corresponding cleartext computation. *)

open Chet_crypto
module C = Rns_ckks
module Herr = Chet_herr.Herr

let n = 256
let scale = 1073741824.0 (* 2^30, matching the chain prime size as in SEAL *)
let params = C.default_params ~n ~bits:30 ~num_coeff_primes:4 ()
let ctx = C.make_context params
let rng = Sampling.create ~seed:12345
let sk, keys = C.keygen ctx rng

let () =
  C.add_rotation_key ctx rng sk keys 1;
  C.add_rotation_key ctx rng sk keys 3;
  C.add_power_of_two_rotation_keys ctx rng sk keys

let slots = C.slot_count ctx

let random_vec seed =
  let st = Random.State.make [| seed |] in
  Array.init slots (fun _ -> Random.State.float st 4.0 -. 2.0)

let encrypt_vec v =
  C.encrypt ctx rng keys.C.public (C.encode_real ctx ~level:(C.max_level ctx) ~scale v)

let decrypt_vec ct = C.decode ctx (C.decrypt ctx sk ct)

let check_close ?(tol = 5e-3) msg expected ct =
  let got = decrypt_vec ct in
  let diff = Complexv.max_abs_diff (Complexv.of_real expected) got in
  if diff > tol then
    Alcotest.failf "%s: max abs diff %.6f > %.6f (first expected %.4f got %.4f)" msg diff tol
      expected.(0) (Complexv.get_re got 0)

let test_encrypt_decrypt () =
  let v = random_vec 1 in
  check_close "roundtrip" v (encrypt_vec v)

let test_encrypt_is_randomized () =
  let v = random_vec 2 in
  let a = encrypt_vec v and b = encrypt_vec v in
  Alcotest.(check bool) "ciphertexts differ" false (a.C.c0 = b.C.c0)

let test_add () =
  let a = random_vec 3 and b = random_vec 4 in
  let sum = Array.init slots (fun i -> a.(i) +. b.(i)) in
  check_close "add" sum (C.add ctx (encrypt_vec a) (encrypt_vec b))

let test_sub_negate () =
  let a = random_vec 5 and b = random_vec 6 in
  let diff = Array.init slots (fun i -> a.(i) -. b.(i)) in
  check_close "sub" diff (C.sub ctx (encrypt_vec a) (encrypt_vec b));
  check_close "negate" (Array.map (fun x -> -.x) a) (C.negate ctx (encrypt_vec a))

let test_add_plain () =
  let a = random_vec 7 and b = random_vec 8 in
  let pt = C.encode_real ctx ~level:(C.max_level ctx) ~scale b in
  let sum = Array.init slots (fun i -> a.(i) +. b.(i)) in
  check_close "add_plain" sum (C.add_plain ctx (encrypt_vec a) pt)

let test_mul () =
  let a = random_vec 9 and b = random_vec 10 in
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  let ct = C.mul ctx keys (encrypt_vec a) (encrypt_vec b) in
  Alcotest.(check bool) "scale squared" true (Float.abs (C.scale_of ct -. (scale *. scale)) < 1.0);
  check_close ~tol:1e-2 "mul" prod ct

let test_mul_plain () =
  let a = random_vec 11 and b = random_vec 12 in
  let pt = C.encode_real ctx ~level:(C.max_level ctx) ~scale b in
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  check_close ~tol:1e-2 "mul_plain" prod (C.mul_plain ctx (encrypt_vec a) pt)

let test_mul_scalar () =
  let a = random_vec 13 in
  let ct = C.mul_scalar ctx (encrypt_vec a) 1.5 ~scale in
  check_close ~tol:1e-2 "mul_scalar" (Array.map (fun x -> x *. 1.5) a) ct

let test_add_scalar () =
  let a = random_vec 14 in
  check_close "add_scalar" (Array.map (fun x -> x +. 0.75) a) (C.add_scalar ctx (encrypt_vec a) 0.75)

let test_rescale () =
  let a = random_vec 15 and b = random_vec 16 in
  let ct = C.mul ctx keys (encrypt_vec a) (encrypt_vec b) in
  let ub = int_of_float scale in
  let d = C.max_rescale ctx ct ub in
  Alcotest.(check bool) "divisor > 1" true (d > 1);
  Alcotest.(check bool) "divisor <= ub" true (d <= ub);
  let ct' = C.rescale ctx ct d in
  Alcotest.(check int) "level dropped" (C.level_of ct - 1) (C.level_of ct');
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  check_close ~tol:1e-2 "value preserved" prod ct'

let test_max_rescale_bounds () =
  let a = encrypt_vec (random_vec 17) in
  Alcotest.(check int) "ub=1 -> 1" 1 (C.max_rescale ctx a 1);
  let one_prime = C.max_rescale ctx a ((1 lsl 30) - 1) in
  let primes = C.coeff_primes ctx in
  Alcotest.(check int) "one prime" primes.(Array.length primes - 1) one_prime;
  (* a huge ub consumes as many primes as fit in a native int (two 30-bit
     primes; a third would overflow), never dropping below level 1 *)
  let huge = C.max_rescale ctx a max_int in
  let rec count_factors x l acc =
    if l < 1 || x = 1 then acc
    else if x mod primes.(l - 1) = 0 then count_factors (x / primes.(l - 1)) (l - 1) (acc + 1)
    else acc
  in
  Alcotest.(check int) "two primes fit max_int" 2 (count_factors huge (C.max_level ctx) 0)

let test_depth_chain () =
  (* squaring chain: depth = num_coeff_primes - 1 with rescaling *)
  let v = Array.init slots (fun i -> 0.5 +. (0.001 *. float_of_int (i mod 7))) in
  let ct = ref (encrypt_vec v) in
  let expected = ref (Array.copy v) in
  for _ = 1 to 2 do
    ct := C.mul ctx keys !ct !ct;
    let d = C.max_rescale ctx !ct (int_of_float scale) in
    ct := C.rescale ctx !ct d;
    expected := Array.map (fun x -> x *. x) !expected
  done;
  check_close ~tol:5e-2 "depth-2 squaring" !expected !ct

let test_rotate_exact_key () =
  let a = random_vec 18 in
  let rotated = Array.init slots (fun i -> a.((i + 1) mod slots)) in
  check_close ~tol:1e-2 "rot by 1" rotated (C.rotate ctx keys (encrypt_vec a) 1);
  let rotated3 = Array.init slots (fun i -> a.((i + 3) mod slots)) in
  check_close ~tol:1e-2 "rot by 3" rotated3 (C.rotate ctx keys (encrypt_vec a) 3)

let test_rotate_pow2_fallback () =
  (* 5 = 4 + 1 has no exact key here; must fall back to power-of-two keys *)
  let a = random_vec 19 in
  Alcotest.(check bool) "no exact key for 5" false (C.rotate_key_available keys ctx 5);
  let rotated = Array.init slots (fun i -> a.((i + 5) mod slots)) in
  check_close ~tol:1e-2 "rot by 5 via pow2" rotated (C.rotate ctx keys (encrypt_vec a) 5)

let test_rotate_negative () =
  let a = random_vec 20 in
  let rotated = Array.init slots (fun i -> a.((i - 1 + slots) mod slots)) in
  check_close ~tol:1e-2 "rot right by 1" rotated (C.rotate ctx keys (encrypt_vec a) (-1))

let test_rotate_zero () =
  let a = random_vec 21 in
  check_close "rot by 0" a (C.rotate ctx keys (encrypt_vec a) 0)

let test_wrong_key_fails () =
  (* decrypting with a fresh secret key must not recover the message *)
  let rng2 = Sampling.create ~seed:999 in
  let sk2, _ = C.keygen ctx rng2 in
  let a = random_vec 22 in
  let got = C.decode ctx (C.decrypt ctx sk2 (encrypt_vec a)) in
  let diff = Complexv.max_abs_diff (Complexv.of_real a) got in
  Alcotest.(check bool) "garbage without the key" true (diff > 1.0)

let test_level_mismatch_rejected () =
  let a = encrypt_vec (random_vec 23) and b = encrypt_vec (random_vec 24) in
  let b' = C.rescale ctx (C.mul ctx keys b b) (C.max_rescale ctx b (int_of_float scale)) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (C.add ctx a b');
       false
     with Herr.Fhe_error (Herr.Level_mismatch _, _) -> true)

let test_scale_mismatch_rejected () =
  let a = encrypt_vec (random_vec 25) in
  let b = C.mul_scalar ctx (encrypt_vec (random_vec 26)) 1.0 ~scale:2.0 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (C.add ctx a b);
       false
     with Herr.Fhe_error (Herr.Scale_mismatch _, _) -> true)

let test_security_params () =
  Alcotest.(check bool) "modulus bits counted" true (C.total_modulus_bits ctx > 0);
  Alcotest.(check int) "slot count" (n / 2) (C.slot_count ctx);
  Alcotest.(check int) "special is largest" (Array.fold_left Stdlib.max 0 (C.coeff_primes ctx))
    (Stdlib.min (C.special_prime ctx) (Array.fold_left Stdlib.max 0 (C.coeff_primes ctx)))

let suite =
  [
    ( "rns_ckks",
      [
        Alcotest.test_case "encrypt/decrypt" `Quick test_encrypt_decrypt;
        Alcotest.test_case "encryption randomized" `Quick test_encrypt_is_randomized;
        Alcotest.test_case "add" `Quick test_add;
        Alcotest.test_case "sub/negate" `Quick test_sub_negate;
        Alcotest.test_case "add_plain" `Quick test_add_plain;
        Alcotest.test_case "mul (relinearised)" `Quick test_mul;
        Alcotest.test_case "mul_plain" `Quick test_mul_plain;
        Alcotest.test_case "mul_scalar" `Quick test_mul_scalar;
        Alcotest.test_case "add_scalar" `Quick test_add_scalar;
        Alcotest.test_case "rescale" `Quick test_rescale;
        Alcotest.test_case "max_rescale bounds" `Quick test_max_rescale_bounds;
        Alcotest.test_case "depth-2 squaring chain" `Quick test_depth_chain;
        Alcotest.test_case "rotate with exact key" `Quick test_rotate_exact_key;
        Alcotest.test_case "rotate pow2 fallback" `Quick test_rotate_pow2_fallback;
        Alcotest.test_case "rotate negative" `Quick test_rotate_negative;
        Alcotest.test_case "rotate zero" `Quick test_rotate_zero;
        Alcotest.test_case "wrong key garbles" `Quick test_wrong_key_fails;
        Alcotest.test_case "level mismatch rejected" `Quick test_level_mismatch_rejected;
        Alcotest.test_case "scale mismatch rejected" `Quick test_scale_mismatch_rejected;
        Alcotest.test_case "context parameters" `Quick test_security_params;
      ] );
  ]
