(* Tests of the CHET compiler passes: parameter selection, layout selection
   via the cost model, rotation-key selection, and profile-guided scale
   search — plus an integration test showing a compiled configuration
   actually runs correctly on the real scheme it selected. *)

module Compiler = Chet.Compiler
module Scale_select = Chet.Scale_select
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module Security = Chet_crypto.Security
module T = Chet_tensor.Tensor
module Hisa = Chet_hisa.Hisa

let seal_opts = Compiler.default_options ~target:Compiler.Seal ()
let heaan_opts = Compiler.default_options ~target:Compiler.Heaan ()

let micro = Models.micro.Models.build ()
let lenet_small = Models.lenet5_small.Models.build ()

let test_params_seal_micro () =
  let p = Compiler.select_params seal_opts micro ~policy:Executor.All_hw in
  match p with
  | Compiler.Rns_params { n; num_primes; log_q; prime_bits } ->
      Alcotest.(check bool) "enough depth" true (num_primes >= 3);
      Alcotest.(check int) "prime bits" 30 prime_bits;
      Alcotest.(check int) "logQ" ((num_primes + 1) * 30) log_q;
      (* the security table must hold: logQ fits this N at 128 bits *)
      Alcotest.(check bool) "secure" true (log_q <= Security.max_log_q Security.Bits128 n)
  | Compiler.Pow2_params _ -> Alcotest.fail "expected RNS params for SEAL"

let test_params_heaan_micro () =
  match Compiler.select_params heaan_opts micro ~policy:Executor.All_hw with
  | Compiler.Pow2_params { n; log_fresh; log_special } ->
      Alcotest.(check bool) "consumed something" true (log_fresh > 60);
      Alcotest.(check int) "special = fresh" log_fresh log_special;
      Alcotest.(check bool) "legacy secure" true
        (log_fresh <= Security.legacy_heaan_max_log_q n)
  | Compiler.Rns_params _ -> Alcotest.fail "expected pow2 params for HEAAN"

let test_params_grow_with_depth () =
  (* deeper circuits must consume more modulus *)
  let p_small = Compiler.select_params seal_opts micro ~policy:Executor.All_hw in
  let p_lenet = Compiler.select_params seal_opts lenet_small ~policy:Executor.All_hw in
  Alcotest.(check bool) "lenet needs more primes" true
    (Compiler.params_log_q p_lenet > Compiler.params_log_q p_small)

let test_params_depend_on_layout () =
  (* both layouts must produce valid parameters for the same circuit *)
  List.iter
    (fun policy ->
      let p = Compiler.select_params seal_opts lenet_small ~policy in
      Alcotest.(check bool) "n is a power of two" true
        (let n = Compiler.params_n p in
         n land (n - 1) = 0 && n >= 2048))
    Executor.all_policies

let test_cost_positive_and_orders () =
  let p = Compiler.select_params seal_opts lenet_small ~policy:Executor.All_hw in
  let c_small = Compiler.estimate_cost seal_opts micro ~policy:Executor.All_hw
      ~params:(Compiler.select_params seal_opts micro ~policy:Executor.All_hw)
  in
  let c_lenet = Compiler.estimate_cost seal_opts lenet_small ~policy:Executor.All_hw ~params:p in
  Alcotest.(check bool) "positive" true (c_small > 0.0);
  Alcotest.(check bool) "bigger network costs more" true (c_lenet > c_small)

let test_rotation_selection () =
  let params = Compiler.select_params seal_opts micro ~policy:Executor.All_hw in
  let rotations, counters =
    Compiler.select_rotations seal_opts micro ~policy:Executor.All_hw ~params
  in
  Alcotest.(check bool) "has rotations" true (List.length rotations > 0);
  (* far fewer distinct keys than N/2 possible amounts (§5.4) *)
  Alcotest.(check bool) "far fewer than slots" true
    (List.length rotations < Compiler.params_n params / 8);
  (* conv 3x3 on a HW layout must rotate by the row stride *)
  Alcotest.(check bool) "nontrivial amounts" true
    (List.exists (fun (a, _) -> a > 1) rotations);
  Alcotest.(check bool) "counters consistent" true
    (Chet_hisa.Instrument.total_rotations counters
    = List.fold_left (fun acc (_, uses) -> acc + uses) 0 rotations)

let test_compile_end_to_end_micro () =
  let compiled = Compiler.compile seal_opts micro in
  Alcotest.(check int) "all four policies reported" 4 (List.length compiled.Compiler.reports);
  let best = compiled.Compiler.policy in
  List.iter
    (fun r ->
      Alcotest.(check bool) "best is minimal" true
        (r.Compiler.pr_cost
        >= (List.find (fun r -> r.Compiler.pr_policy = best) compiled.Compiler.reports)
             .Compiler.pr_cost))
    compiled.Compiler.reports

let test_compiled_runs_on_real_scheme () =
  (* deploy the compiled configuration on the real RNS-CKKS backend with
     exactly the selected rotation keys, and verify output fidelity *)
  let opts = { seal_opts with Compiler.scales = Kernels.default_scales } in
  let compiled = Compiler.compile opts micro in
  let backend = Compiler.instantiate compiled ~seed:5 ~with_secret:true () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let image = Models.input_for Models.micro ~seed:31 in
  let expected = Reference.eval micro image in
  let got = E.run opts.Compiler.scales micro ~policy:compiled.Compiler.policy image in
  let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
  if diff > 0.05 then Alcotest.failf "compiled micro on real scheme: diff %.4f" diff

let test_compiled_runs_on_real_heaan () =
  let compiled = Compiler.compile heaan_opts micro in
  let backend = Compiler.instantiate compiled ~seed:6 ~with_secret:true () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let image = Models.input_for Models.micro ~seed:32 in
  let expected = Reference.eval micro image in
  let got = E.run heaan_opts.Compiler.scales micro ~policy:compiled.Compiler.policy image in
  let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
  if diff > 0.05 then Alcotest.failf "compiled micro on real HEAAN: diff %.4f" diff

let test_scale_search () =
  let images = List.init 2 (fun i -> Models.input_for Models.micro ~seed:(50 + i)) in
  let result =
    Scale_select.search seal_opts micro ~policy:Executor.All_hw ~images ~tolerance:0.05
      ~start_exponents:(34, 24, 24, 18) ()
  in
  let ec, ew, eu, em = result.Scale_select.exponents in
  (* the search must have shrunk something from the start *)
  Alcotest.(check bool) "made progress" true (ec + ew + eu + em < 34 + 24 + 24 + 18);
  Alcotest.(check bool) "result acceptable" true
    (Scale_select.acceptable seal_opts micro ~policy:Executor.All_hw ~images ~tolerance:0.05
       result.Scale_select.scales);
  (* shrinking any factor further must be unacceptable (local minimum) *)
  let shrunk =
    [
      (ec - 1, ew, eu, em); (ec, ew - 1, eu, em); (ec, ew, eu - 1, em); (ec, ew, eu, em - 1);
    ]
  in
  List.iter
    (fun (c, w, u, m) ->
      let s = { Kernels.pc = 1 lsl c; pw = 1 lsl w; pu = 1 lsl u; pm = 1 lsl m } in
      Alcotest.(check bool) "minimal" false
        (Scale_select.acceptable seal_opts micro ~policy:Executor.All_hw ~images ~tolerance:0.05 s))
    shrunk

let test_scale_search_rejects_impossible () =
  let images = [ Models.input_for Models.micro ~seed:60 ] in
  Alcotest.(check bool) "impossible tolerance" true
    (try
       ignore
         (Scale_select.search seal_opts micro ~policy:Executor.All_hw ~images ~tolerance:1e-12
            ~start_exponents:(10, 8, 8, 6) ());
       false
     with Compiler.Compilation_failure msg ->
       (* the failure message names the structured reason for the last rejection *)
       String.length msg > 0
       && String.sub msg 0 12 = "scale search"
       &&
       let contains s sub =
         let n = String.length s and m = String.length sub in
         let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
         go 0
       in
       contains msg "tolerance")

let suite =
  [
    ( "compiler",
      [
        Alcotest.test_case "params: SEAL micro" `Quick test_params_seal_micro;
        Alcotest.test_case "params: HEAAN micro" `Quick test_params_heaan_micro;
        Alcotest.test_case "params grow with depth" `Quick test_params_grow_with_depth;
        Alcotest.test_case "params valid for all layouts" `Quick test_params_depend_on_layout;
        Alcotest.test_case "cost model ordering" `Quick test_cost_positive_and_orders;
        Alcotest.test_case "rotation-key selection" `Quick test_rotation_selection;
        Alcotest.test_case "compile picks cheapest layout" `Quick test_compile_end_to_end_micro;
        Alcotest.test_case "compiled config runs on real SEAL" `Slow test_compiled_runs_on_real_scheme;
        Alcotest.test_case "compiled config runs on real HEAAN" `Slow test_compiled_runs_on_real_heaan;
        Alcotest.test_case "profile-guided scale search" `Slow test_scale_search;
        Alcotest.test_case "scale search rejects impossible" `Quick test_scale_search_rejects_impossible;
      ] );
  ]
