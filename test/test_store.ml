(* The durable-deployment store's crash-safety contract (DESIGN.md §11):

     (a) save/load round trip through numbered generations, newest wins;
     (b) kill-point matrix: a save aborted at EVERY enumerated point of the
         write sequence leaves, after recovery, either the old or the new
         bundle fully intact — never a torn hybrid — and the store accepts
         new writes afterwards;
     (c) a corrupted newest generation is quarantined with a typed
         [Corrupt_bundle] and the previous generation is served;
     (d) fuzz: the MANIFEST frame rejects truncation at every byte boundary
         and seeded single-bit flips with a typed error — no exception ever
         escapes verification;
     (e) deployment bundles round trip, and a warm-restarted factory
         (stored public keys + seed-re-derived secret key) is bit-identical
         to the deployment that wrote the bundle;
     (f) sidecar state files share the same atomicity and quarantine rules. *)

module Store = Chet_store.Store
module Bundle = Chet_store.Bundle
module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Models = Chet_nn.Models
module Herr = Chet_herr.Herr
module Serial = Chet_crypto.Serial
module Executor = Chet_runtime.Executor
module Hisa = Chet_hisa.Hisa
module T = Chet_tensor.Tensor

(* ------------------------------------------------------------------ *)
(* Scratch directories                                                  *)
(* ------------------------------------------------------------------ *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_store_dir f =
  incr dir_counter;
  let dir =
    Printf.sprintf "%s/chet-store-test-%d-%d"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ()) !dir_counter
  in
  rm_rf dir;
  Fun.protect
    ~finally:(fun () ->
      Store.arm_kill_point None;
      rm_rf dir)
    (fun () -> f dir)

let read_file path = In_channel.with_open_bin path In_channel.input_all
let write_file path s = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let flip_bit path ~pos ~bit =
  let b = Bytes.of_string (read_file path) in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
  write_file path (Bytes.to_string b)

let files_v1 =
  [
    ("alpha.bin", "the first payload \x00\x01\x02");
    ("beta.bin", String.init 257 (fun i -> Char.chr (i mod 251)));
  ]

let files_v2 = [ ("alpha.bin", "second generation alpha"); ("beta.bin", "short") ]
let check_files name expected got = Alcotest.(check (list (pair string string))) name expected got

(* ------------------------------------------------------------------ *)
(* (a) round trip                                                       *)
(* ------------------------------------------------------------------ *)

let test_save_load_roundtrip () =
  with_store_dir (fun dir ->
      let store, report = Store.open_ dir in
      Alcotest.(check (option int)) "fresh store has no active generation" None report.Store.r_active;
      Alcotest.(check int) "first generation id" 1 (Store.save store ~files:files_v1);
      (match Store.load store with
      | Some (1, files) -> check_files "v1 read back" files_v1 files
      | _ -> Alcotest.fail "generation 1 not served");
      Alcotest.(check int) "second generation id" 2 (Store.save store ~files:files_v2);
      (match Store.load store with
      | Some (2, files) -> check_files "newest generation wins" files_v2 files
      | _ -> Alcotest.fail "generation 2 not served");
      (* reopen: recovery re-verifies every checksum and keeps both *)
      let _, r = Store.open_ dir in
      Alcotest.(check (option int)) "active after reopen" (Some 2) r.Store.r_active;
      Alcotest.(check int) "nothing quarantined" 0 (List.length r.Store.r_quarantined);
      Alcotest.(check bool) "verified bytes counted" true (r.Store.r_verified_bytes > 0))

let test_save_rejects_bad_names () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      let rejected name files =
        match Store.save store ~files with
        | _ -> Alcotest.failf "%s: accepted" name
        | exception Invalid_argument _ -> ()
      in
      rejected "empty file list" [];
      rejected "manifest collision" [ ("MANIFEST", "x") ];
      rejected "path separator" [ ("a/b", "x") ];
      rejected "leading dot" [ (".hidden", "x") ];
      rejected "tmp suffix" [ ("a.tmp", "x") ];
      rejected "duplicate name" [ ("a", "x"); ("a", "y") ];
      match Store.save_state store ~name:"gen-000001" "x" with
      | _ -> Alcotest.fail "sidecar shadowing a generation accepted"
      | exception Invalid_argument _ -> ())

(* ------------------------------------------------------------------ *)
(* (b) kill-point matrix                                                *)
(* ------------------------------------------------------------------ *)

let test_kill_point_matrix () =
  let points = Store.kill_points ~files:(List.map fst files_v2) in
  Alcotest.(check int) "matrix enumerates the whole write sequence" 13 (List.length points);
  List.iter
    (fun kp ->
      let name = Store.kill_point_name kp in
      with_store_dir (fun dir ->
          let store, _ = Store.open_ dir in
          let g1 = Store.save store ~files:files_v1 in
          Store.arm_kill_point (Some kp);
          (match Store.save store ~files:files_v2 with
          | _ -> Alcotest.failf "%s: save survived its kill point" name
          | exception Store.Killed p ->
              Alcotest.(check string) (name ^ ": fired where armed") name (Store.kill_point_name p));
          (* the process died here; a fresh one runs recovery *)
          let store2, report = Store.open_ dir in
          List.iter
            (fun (entry, e) ->
              match e with
              | Herr.Corrupt_bundle _ -> ()
              | e -> Alcotest.failf "%s: %s quarantined with %s" name entry (Herr.error_name e))
            report.Store.r_quarantined;
          (match Store.load store2 with
          | None -> Alcotest.failf "%s: no generation survived the crash" name
          | Some (id, files) ->
              if kp = Store.Post_manifest_rename then begin
                (* the commit rename happened: the new bundle must be served *)
                Alcotest.(check int) (name ^ ": new generation active") (g1 + 1) id;
                check_files (name ^ ": new bundle intact") files_v2 files
              end
              else begin
                (* not yet committed: the old bundle must be fully intact *)
                Alcotest.(check int) (name ^ ": old generation active") g1 id;
                check_files (name ^ ": old bundle intact") files_v1 files
              end);
          (* recovery leaves a writable store *)
          let g3 = Store.save store2 ~files:files_v1 in
          match Store.load store2 with
          | Some (id, files) when id = g3 -> check_files (name ^ ": post-recovery save") files_v1 files
          | _ -> Alcotest.failf "%s: store not writable after recovery" name))
    points

let test_sidecar_kill_point () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      Store.save_state store ~name:"svc" "v1";
      Store.arm_kill_point (Some (Store.Pre_file_rename "svc"));
      (match Store.save_state store ~name:"svc" "v2" with
      | () -> Alcotest.fail "sidecar kill point did not fire"
      | exception Store.Killed _ -> ());
      let store2, report = Store.open_ dir in
      Alcotest.(check int) "tmp debris removed" 1 report.Store.r_removed_tmp;
      match Store.load_state store2 ~name:"svc" with
      | Some (Ok s) -> Alcotest.(check string) "previous sidecar value intact" "v1" s
      | _ -> Alcotest.fail "sidecar lost to an aborted overwrite")

(* ------------------------------------------------------------------ *)
(* (c) corruption -> quarantine + fallback                              *)
(* ------------------------------------------------------------------ *)

let test_corrupt_newest_falls_back () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      ignore (Store.save store ~files:files_v1);
      ignore (Store.save store ~files:files_v2);
      ignore store;
      flip_bit (Filename.concat dir "gen-000002/alpha.bin") ~pos:3 ~bit:4;
      let store2, report = Store.open_ dir in
      Alcotest.(check (option int)) "fell back to previous generation" (Some 1) report.Store.r_active;
      (match report.Store.r_quarantined with
      | [ (entry, Herr.Corrupt_bundle { path; reason }) ] ->
          Alcotest.(check bool) "quarantine entry names the generation" true
            (String.length entry >= 10 && String.sub entry 0 10 = "gen-000002");
          Alcotest.(check string) "typed reason" "checksum mismatch" reason;
          Alcotest.(check bool) "path names the damaged file" true
            (path = "gen-000002/alpha.bin")
      | _ -> Alcotest.fail "expected exactly one typed quarantined generation");
      (* the damaged bytes were moved, not destroyed: evidence for post-mortem *)
      Alcotest.(check bool) "quarantine keeps the bytes" true
        (Sys.file_exists (Filename.concat dir "quarantine/gen-000002/alpha.bin"));
      match Store.load store2 with
      | Some (1, files) -> check_files "previous generation served" files_v1 files
      | _ -> Alcotest.fail "previous generation not served")

(* ------------------------------------------------------------------ *)
(* (d) MANIFEST fuzz: truncation + bit flips                            *)
(* ------------------------------------------------------------------ *)

let newest_status store =
  match Store.verify store with
  | s :: _ -> s
  | [] -> Alcotest.fail "store unexpectedly empty"

let test_manifest_truncation_sweep () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      ignore (Store.save store ~files:files_v1);
      let mpath = Filename.concat dir "gen-000001/MANIFEST" in
      let pristine = read_file mpath in
      for len = 0 to String.length pristine - 1 do
        write_file mpath (String.sub pristine 0 len);
        match (newest_status store).Store.g_result with
        | Error (Herr.Corrupt_bundle _) -> ()
        | Ok _ -> Alcotest.failf "manifest truncated to %d bytes accepted" len
        | Error e ->
            Alcotest.failf "manifest truncated to %d bytes: wrong error %s" len (Herr.error_name e)
      done;
      write_file mpath pristine;
      match (newest_status store).Store.g_result with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "pristine manifest no longer verifies")

let test_manifest_bitflip_fuzz () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      ignore (Store.save store ~files:files_v1);
      let mpath = Filename.concat dir "gen-000001/MANIFEST" in
      let pristine = read_file mpath in
      let n = String.length pristine in
      let state = ref 0xC0FFEE in
      let next () =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state
      in
      for _ = 1 to 256 do
        write_file mpath pristine;
        let pos = next () mod n and bit = next () mod 8 in
        flip_bit mpath ~pos ~bit;
        match (newest_status store).Store.g_result with
        | Error (Herr.Corrupt_bundle _) -> ()
        | Ok _ -> Alcotest.failf "bit flip at byte %d bit %d accepted" pos bit
        | Error e ->
            Alcotest.failf "bit flip at byte %d bit %d: wrong error %s" pos bit (Herr.error_name e)
      done;
      write_file mpath pristine)

let test_payload_truncation_sweep () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      ignore (Store.save store ~files:files_v2);
      let fpath = Filename.concat dir "gen-000001/alpha.bin" in
      let pristine = read_file fpath in
      for len = 0 to String.length pristine - 1 do
        write_file fpath (String.sub pristine 0 len);
        match (newest_status store).Store.g_result with
        | Error (Herr.Corrupt_bundle _) -> ()
        | Ok _ -> Alcotest.failf "payload truncated to %d bytes accepted" len
        | Error e ->
            Alcotest.failf "payload truncated to %d bytes: wrong error %s" len (Herr.error_name e)
      done;
      write_file fpath pristine)

(* ------------------------------------------------------------------ *)
(* Retention                                                            *)
(* ------------------------------------------------------------------ *)

let test_retention_gc () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ ~keep:2 dir in
      List.iter
        (fun i -> ignore (Store.save store ~files:[ ("only", Printf.sprintf "generation %d" i) ]))
        [ 1; 2; 3; 4; 5 ];
      Alcotest.(check (list int)) "save applies keep=2" [ 5; 4 ] (Store.generations store);
      let removed = Store.gc store ~keep:1 in
      Alcotest.(check (list int)) "gc to keep=1" [ 5 ] (Store.generations store);
      Alcotest.(check int) "one directory removed" 1 (List.length removed))

(* ------------------------------------------------------------------ *)
(* Sidecar state files                                                  *)
(* ------------------------------------------------------------------ *)

let test_sidecar_state () =
  with_store_dir (fun dir ->
      let store, _ = Store.open_ dir in
      Alcotest.(check bool) "absent sidecar is None" true
        (Store.load_state store ~name:"service.state" = None);
      Store.save_state store ~name:"service.state" "breaker bytes v1";
      (match Store.load_state store ~name:"service.state" with
      | Some (Ok s) -> Alcotest.(check string) "sidecar round trip" "breaker bytes v1" s
      | _ -> Alcotest.fail "sidecar not read back");
      flip_bit (Filename.concat dir "service.state") ~pos:9 ~bit:2;
      (match Store.load_state store ~name:"service.state" with
      | Some (Error (Herr.Corrupt_bundle _)) -> ()
      | _ -> Alcotest.fail "sidecar corruption not reported as typed Corrupt_bundle");
      (* quarantined on detection: the next boot starts clean *)
      Alcotest.(check bool) "quarantined sidecar absent afterwards" true
        (Store.load_state store ~name:"service.state" = None))

(* ------------------------------------------------------------------ *)
(* (e) compiled configurations and deployment bundles                   *)
(* ------------------------------------------------------------------ *)

let micro = Models.micro.Models.build ()
let compiled = lazy (Compiler.compile (Compiler.default_options ()) micro)

(* The real compile targets N=16384 (128-bit security); real keygen and
   inference there cost tens of seconds. The durable-deployment contract is
   about persistence, not parameter security, so the bundle tests shrink
   the ring to N=512 — same modulus chain, same circuit, fast keys. *)
let small_compiled () =
  let c = Lazy.force compiled in
  match c.Compiler.params with
  | Compiler.Rns_params { n = _; prime_bits; num_primes; log_q } ->
      { c with Compiler.params = Compiler.Rns_params { n = 512; prime_bits; num_primes; log_q } }
  | Compiler.Pow2_params _ -> Alcotest.fail "expected an RNS compile"

let test_compiled_roundtrip () =
  let c = Lazy.force compiled in
  let w = Serial.writer () in
  Compiler.write_compiled w c;
  let bytes = Serial.contents w in
  let r = Serial.reader bytes in
  let c' = Compiler.read_compiled ~circuit:micro r in
  Alcotest.(check bool) "frame fully consumed" true (Serial.reader_eof r);
  Alcotest.(check bool) "policy" true (c'.Compiler.policy = c.Compiler.policy);
  Alcotest.(check bool) "params" true (c'.Compiler.params = c.Compiler.params);
  Alcotest.(check (list (pair int int))) "rotations" c.Compiler.rotations c'.Compiler.rotations;
  Alcotest.(check bool) "op counters" true (c'.Compiler.op_counters = c.Compiler.op_counters);
  Alcotest.(check int) "reports" (List.length c.Compiler.reports) (List.length c'.Compiler.reports);
  Alcotest.(check bool) "scales" true
    (c'.Compiler.opts.Compiler.scales = c.Compiler.opts.Compiler.scales);
  (* a frame compiled for a different circuit is a typed rejection *)
  let other = Models.cryptonets.Models.build () in
  match Compiler.read_compiled ~circuit:other (Serial.reader bytes) with
  | _ -> Alcotest.fail "accepted a frame compiled for a different circuit"
  | exception Serial.Corrupt _ -> ()

let test_bundle_fields_roundtrip () =
  with_store_dir (fun dir ->
      let c = small_compiled () in
      let scale = { Bundle.ss_exponents = (30, 16, 16, 14); ss_evaluations = 12; ss_rejections = 3 } in
      let calibration = Cost_model.default_calibration in
      let bundle = Bundle.build ~scale ~calibration ~with_keys:false c ~seed:9 () in
      (match List.assoc_opt "meta.chet" (Bundle.files bundle) with
      | Some meta ->
          let name, seed = Bundle.peek_meta meta in
          Alcotest.(check string) "peek: circuit name" "micro" name;
          Alcotest.(check int) "peek: seed" 9 seed
      | None -> Alcotest.fail "bundle has no meta.chet");
      let store, _ = Store.open_ dir in
      ignore (Bundle.save store bundle);
      (match Bundle.load store ~circuit:micro with
      | Some l ->
          let b = l.Bundle.l_bundle in
          Alcotest.(check bool) "scale summary restored" true (b.Bundle.b_scale = Some scale);
          Alcotest.(check bool) "calibration restored" true
            (b.Bundle.b_calibration = Some calibration);
          Alcotest.(check bool) "no keys stored" true (b.Bundle.b_keys = None);
          Alcotest.(check bool) "compiled params restored" true
            (b.Bundle.b_compiled.Compiler.params = c.Compiler.params)
      | None -> Alcotest.fail "bundle load failed");
      (* schema damage *below* the store's checksums (a wrong-but-intact
         frame) surfaces as a typed Corrupt_bundle, not a crash *)
      let w = Serial.writer () in
      Serial.write_frame w "STAT" (fun w -> Serial.write_string w "not a bundle");
      ignore (Store.save store ~files:[ ("meta.chet", Serial.contents w) ]);
      match Bundle.load store ~circuit:micro with
      | exception Herr.Fhe_error (Herr.Corrupt_bundle _, _) -> ()
      | _ -> Alcotest.fail "schema damage not reported as typed Corrupt_bundle")

let test_bundle_warm_restart_bit_identical () =
  with_store_dir (fun dir ->
      let c = small_compiled () in
      let seed = 1234 in
      let bundle = Bundle.build c ~seed () in
      Alcotest.(check bool) "public keys exported for RNS" true (bundle.Bundle.b_keys <> None);
      let store, _ = Store.open_ dir in
      ignore (Bundle.save store bundle);
      match Bundle.load store ~circuit:micro with
      | None -> Alcotest.fail "bundle load failed"
      | Some l ->
          Alcotest.(check bool) "restore accounted its bytes" true (l.Bundle.l_bytes > 0);
          let b = l.Bundle.l_bundle in
          Alcotest.(check int) "seed restored" seed b.Bundle.b_seed;
          let img = Models.input_for Models.micro ~seed:501 in
          let run factory =
            let backend = factory ~req_seed:77 in
            let module H = (val backend : Hisa.S) in
            let module E = Executor.Make (H) in
            E.run c.Compiler.opts.Compiler.scales micro ~policy:c.Compiler.policy img
          in
          let fresh, _ = Compiler.instantiate_factory c ~seed ~with_secret:true () in
          let restored, _ = Bundle.restore_factory b ~with_secret:true in
          let a = run fresh in
          let r = run restored in
          Alcotest.(check (float 0.0))
            "warm-restarted inference is bit-identical" 0.0
            (T.max_abs_diff (T.flatten a) (T.flatten r)))

let suite =
  [
    ( "store",
      [
        Alcotest.test_case "save/load round trip" `Quick test_save_load_roundtrip;
        Alcotest.test_case "unusable names rejected" `Quick test_save_rejects_bad_names;
        Alcotest.test_case "kill-point matrix: old or new, never torn" `Quick
          test_kill_point_matrix;
        Alcotest.test_case "sidecar kill point keeps old value" `Quick test_sidecar_kill_point;
        Alcotest.test_case "corrupt newest quarantined, previous served" `Quick
          test_corrupt_newest_falls_back;
        Alcotest.test_case "manifest truncation sweep" `Quick test_manifest_truncation_sweep;
        Alcotest.test_case "manifest bit-flip fuzz" `Quick test_manifest_bitflip_fuzz;
        Alcotest.test_case "payload truncation sweep" `Quick test_payload_truncation_sweep;
        Alcotest.test_case "retention + gc" `Quick test_retention_gc;
        Alcotest.test_case "sidecar state round trip + quarantine" `Quick test_sidecar_state;
        Alcotest.test_case "compiled CMPD frame round trip" `Quick test_compiled_roundtrip;
        Alcotest.test_case "bundle fields round trip + schema damage typed" `Quick
          test_bundle_fields_roundtrip;
        Alcotest.test_case "warm restart bit-identical (real keys, small ring)" `Slow
          test_bundle_warm_restart_bit_identical;
      ] );
  ]
