(* Direct unit tests of the HISA backends: the cleartext reference's
   scale/modulus bookkeeping, the simulator's cost clock, and the
   instrumentation wrapper. *)

module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Clear = Chet_hisa.Clear_backend
module Sim = Chet_hisa.Sim_backend
module Instrument = Chet_hisa.Instrument

let chain = [| 1073741789; 1073741783; 1073741741 |]

let clear ?(encode_noise = false) ?(scheme = Hisa.Rns_chain chain) () =
  Clear.make { Clear.slots = 16; scheme; strict_modulus = true; encode_noise }

let test_clear_roundtrip_and_rotation () =
  let module H = (val clear () : Hisa.S) in
  let ct = H.encrypt (H.encode [| 1.0; 2.0; 3.0 |] ~scale:1024) in
  let out = H.decode (H.decrypt (H.rot_left ct 1)) in
  Alcotest.(check (float 1e-9)) "rotated" 2.0 out.(0);
  let back = H.decode (H.decrypt (H.rot_right (H.rot_left ct 5) 5)) in
  Alcotest.(check (float 1e-9)) "inverse rotations" 1.0 back.(0)

let test_clear_scale_tracking () =
  let module H = (val clear () : Hisa.S) in
  let a = H.encrypt (H.encode [| 2.0 |] ~scale:1024) in
  let b = H.mul_scalar a 3.0 ~scale:512 in
  Alcotest.(check (float 1e-9)) "scale multiplies" (1024.0 *. 512.0) (H.scale_of b);
  Alcotest.(check (float 1e-6)) "value" 6.0 (H.decode (H.decrypt b)).(0)

let test_clear_quantisation () =
  (* 1/3 is not representable at scale 4: the reference must quantise *)
  let module H = (val clear () : Hisa.S) in
  let p = H.encode [| 0.3333333 |] ~scale:4 in
  Alcotest.(check (float 1e-9)) "quantised to 1/4 grid" 0.25 (H.decode p).(0)

let test_clear_rns_rescale_semantics () =
  let module H = (val clear () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:(1 lsl 40)) in
  let a2 = H.mul a a in
  (* next chain prime is ~2^30: an ub below it yields 1 *)
  Alcotest.(check int) "too small ub" 1 (H.max_rescale a2 (1 lsl 29));
  Alcotest.(check int) "one prime" chain.(2) (H.max_rescale a2 (1 lsl 31));
  let r = H.rescale a2 chain.(2) in
  Alcotest.(check (float 1.0)) "scale divided" ((2.0 ** 80.0) /. float_of_int chain.(2)) (H.scale_of r);
  (* non-chain divisor rejected *)
  Alcotest.(check bool) "bad divisor" true
    (try
       ignore (H.rescale a2 12345);
       false
     with Herr.Fhe_error (Herr.Illegal_rescale _, _) -> true)

let test_clear_pow2_rescale_semantics () =
  let module H = (val clear ~scheme:(Hisa.Pow2_modulus 100) () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:(1 lsl 40)) in
  Alcotest.(check int) "largest pow2 <= ub" 4096 (H.max_rescale a 8191);
  let r = H.rescale a 4096 in
  Alcotest.(check (float 1e-6)) "scale divided" (2.0 ** 28.0) (H.scale_of r)

let test_clear_modulus_exhaustion () =
  (* strict mode: exhausting the pow2 modulus raises *)
  let module H = (val clear ~scheme:(Hisa.Pow2_modulus 20) () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:(1 lsl 10)) in
  Alcotest.(check bool) "exhausted" true
    (try
       let r = H.rescale a (H.max_rescale a (1 lsl 10)) in
       (* 10 bits left; dropping 10 more would hit zero *)
       ignore (H.rescale r (1 lsl 10));
       false
     with Herr.Fhe_error (Herr.Modulus_exhausted _, _) -> true)

let test_noise_model () =
  (* with encode_noise on, non-constant vectors are perturbed (deterministic
     per plaintext), constant vectors are not *)
  let module H = (val clear ~encode_noise:true () : Hisa.S) in
  let flat = H.decode (H.encode (Array.make 16 0.5) ~scale:4) in
  Array.iter (fun v -> Alcotest.(check (float 0.0)) "constant untouched" 0.5 v) flat;
  let bumpy = Array.init 16 (fun i -> if i mod 2 = 0 then 1.0 else 0.0) in
  let once = H.decode (H.encode bumpy ~scale:1024) in
  let twice = H.decode (H.encode bumpy ~scale:1024) in
  Alcotest.(check bool) "perturbed" true (once.(0) <> 1.0);
  Alcotest.(check bool) "deterministic" true (once = twice)

let test_sim_clock () =
  let unit_costs =
    {
      Hisa.cm_add = (fun _ -> 1.0);
      cm_scalar_mul = (fun _ -> 2.0);
      cm_plain_mul = (fun _ -> 3.0);
      cm_cipher_mul = (fun _ -> 5.0);
      cm_rotate = (fun _ -> 7.0);
      cm_rescale = (fun _ -> 11.0);
    }
  in
  let backend, clock = Sim.make { Sim.n = 32; scheme = Hisa.Rns_chain chain; costs = unit_costs } in
  let module H = (val backend : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:1024) in
  let b = H.add a a in
  let c = H.mul a b in
  let _ = H.rot_left c 1 in
  Alcotest.(check (float 1e-9)) "elapsed" (1.0 +. 5.0 +. 7.0) clock.Sim.elapsed;
  Alcotest.(check int) "ops" 3 clock.Sim.op_count;
  Alcotest.(check (float 1e-9)) "rotate share" 7.0 clock.Sim.rotate_elapsed;
  Alcotest.(check int) "rotate count" 1 clock.Sim.rotate_count

let test_sim_env_dependent_cost () =
  (* cost must drop after rescaling (fewer active primes) *)
  let costs = Chet.Cost_model.seal () in
  let backend, clock = Sim.make { Sim.n = 64; scheme = Hisa.Rns_chain chain; costs } in
  let module H = (val backend : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:(1 lsl 31)) in
  let t0 = clock.Sim.elapsed in
  let _ = H.mul a a in
  let cost_mul_l3 = clock.Sim.elapsed -. t0 in
  let sq = H.rescale (H.mul a a) (H.max_rescale (H.mul a a) (1 lsl 31)) in
  let t1 = clock.Sim.elapsed in
  let _ = H.mul sq sq in
  let cost_mul_l2 = clock.Sim.elapsed -. t1 in
  Alcotest.(check bool) "cheaper at lower level" true (cost_mul_l2 < cost_mul_l3)

let test_instrument_counts () =
  let backend, counters = Instrument.wrap (clear ()) in
  let module H = (val backend : Hisa.S) in
  let p = H.encode [| 1.0 |] ~scale:1024 in
  let a = H.encrypt p in
  let _ = H.add a a in
  let _ = H.mul a a in
  let _ = H.mul_plain a p in
  let _ = H.mul_scalar a 2.0 ~scale:4 in
  let _ = H.rot_left a 3 in
  let _ = H.rot_left a 3 in
  let _ = H.rot_right a 1 in
  let _ = H.rot_left a 0 in
  Alcotest.(check int) "adds" 1 counters.Instrument.adds;
  Alcotest.(check int) "ct muls" 1 counters.Instrument.ct_muls;
  Alcotest.(check int) "plain muls" 1 counters.Instrument.plain_muls;
  Alcotest.(check int) "scalar muls" 1 counters.Instrument.scalar_muls;
  Alcotest.(check int) "encodes" 1 counters.Instrument.encodes;
  (* rot_right 1 records as left rotation slots-1 = 15; rot 0 not recorded *)
  Alcotest.(check int) "total rotations" 3 (Instrument.total_rotations counters);
  let distinct = List.sort compare (Instrument.distinct_rotations counters) in
  Alcotest.(check (list int)) "distinct" [ 3; 15 ] distinct

let suite =
  [
    ( "hisa",
      [
        Alcotest.test_case "clear roundtrip/rotation" `Quick test_clear_roundtrip_and_rotation;
        Alcotest.test_case "clear scale tracking" `Quick test_clear_scale_tracking;
        Alcotest.test_case "clear quantisation" `Quick test_clear_quantisation;
        Alcotest.test_case "clear RNS rescale semantics" `Quick test_clear_rns_rescale_semantics;
        Alcotest.test_case "clear pow2 rescale semantics" `Quick test_clear_pow2_rescale_semantics;
        Alcotest.test_case "modulus exhaustion raises" `Quick test_clear_modulus_exhaustion;
        Alcotest.test_case "encoding noise model" `Quick test_noise_model;
        Alcotest.test_case "sim clock" `Quick test_sim_clock;
        Alcotest.test_case "sim env-dependent cost" `Quick test_sim_env_dependent_cost;
        Alcotest.test_case "instrument counters" `Quick test_instrument_counts;
      ] );
  ]
