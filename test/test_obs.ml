(* Observability subsystem (DESIGN.md §10): the hand-rolled JSON layer, the
   span tracer and its Chrome export, the metrics registry (including under
   concurrent domains), the timed HISA interceptor, and the cost-model
   calibrate -> persist -> predict loop. *)

module Jsonx = Chet_obs.Jsonx
module Tracer = Chet_obs.Tracer
module Metrics = Chet_obs.Metrics
module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Sim = Chet_hisa.Sim_backend
module Instrument = Chet_hisa.Instrument
module Timed = Chet_hisa.Timed_backend
module Cost_model = Chet.Cost_model
module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models

let chain = [| 1073741789; 1073741783; 1073741741 |]

let clear () =
  Clear.make
    { Clear.slots = 16; scheme = Hisa.Rns_chain chain; strict_modulus = true; encode_noise = false }

(* ------------------------------------------------------------------ *)
(* Jsonx                                                                *)
(* ------------------------------------------------------------------ *)

let test_jsonx_roundtrip () =
  let v =
    Jsonx.Obj
      [
        ("s", Jsonx.Str "a\"b\\c\n\t\x01é");
        ("i", Jsonx.Num 42.0);
        ("f", Jsonx.Num 6.02214076e23);
        ("neg", Jsonx.Num (-1.5e-8));
        ("b", Jsonx.Bool true);
        ("null", Jsonx.Null);
        ("arr", Jsonx.Arr [ Jsonx.Num 1.0; Jsonx.Str "x"; Jsonx.Bool false; Jsonx.Null ]);
        ("nested", Jsonx.Obj [ ("empty_arr", Jsonx.Arr []); ("empty_obj", Jsonx.Obj []) ]);
      ]
  in
  let v' = Jsonx.of_string (Jsonx.to_string v) in
  Alcotest.(check bool) "round trip" true (v = v');
  (* non-finite floats must degrade to null, not emit invalid JSON *)
  let inf = Jsonx.of_string (Jsonx.to_string (Jsonx.Arr [ Jsonx.Num Float.infinity; Jsonx.Num Float.nan ])) in
  Alcotest.(check bool) "non-finite -> null" true (inf = Jsonx.Arr [ Jsonx.Null; Jsonx.Null ])

let test_jsonx_parse_errors () =
  let bad s =
    match Jsonx.of_string s with
    | exception Jsonx.Parse_error _ -> true
    | _ -> false
  in
  List.iter
    (fun s -> Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true (bad s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "\"unterminated"; "tru"; "1 2"; "{\"a\" 1}"; "[1, 2,,]" ]

let test_jsonx_accessors () =
  let j = Jsonx.of_string {|{"name":"chet","n":4096,"ok":true,"xs":[1,2,3]}|} in
  Alcotest.(check (option string)) "str member" (Some "chet") (Jsonx.str_member "name" j);
  Alcotest.(check (option (float 0.0))) "num member" (Some 4096.0) (Jsonx.num_member "n" j);
  Alcotest.(check (option string)) "missing" None (Jsonx.str_member "absent" j);
  match Jsonx.member "xs" j with
  | Some (Jsonx.Arr l) -> Alcotest.(check int) "array len" 3 (List.length l)
  | _ -> Alcotest.fail "xs should be an array"

(* ------------------------------------------------------------------ *)
(* Tracer                                                               *)
(* ------------------------------------------------------------------ *)

let with_tracer ?capacity f =
  let t = Tracer.create ?capacity () in
  Tracer.set_global (Some t);
  Fun.protect ~finally:(fun () -> Tracer.set_global None) (fun () -> f t)

let test_span_nesting () =
  with_tracer (fun t ->
      let r =
        Tracer.with_span "outer" ~attrs:[ ("k", Tracer.Str "v") ] (fun () ->
            Tracer.with_span "inner" (fun () ->
                Tracer.annotate "ops" (Tracer.Int 7);
                42))
      in
      Alcotest.(check int) "value through spans" 42 r;
      match Tracer.events t with
      | [ a; b ] ->
          let outer, inner = if a.Tracer.ev_name = "outer" then (a, b) else (b, a) in
          Alcotest.(check string) "outer name" "outer" outer.Tracer.ev_name;
          Alcotest.(check string) "inner name" "inner" inner.Tracer.ev_name;
          (* containment: inner starts no earlier and ends no later *)
          Alcotest.(check bool) "inner starts inside" true
            (inner.Tracer.ev_ts_ns >= outer.Tracer.ev_ts_ns);
          Alcotest.(check bool) "inner ends inside" true
            (Int64.add inner.Tracer.ev_ts_ns inner.Tracer.ev_dur_ns
            <= Int64.add outer.Tracer.ev_ts_ns outer.Tracer.ev_dur_ns);
          Alcotest.(check bool) "annotation landed on inner" true
            (List.mem_assoc "ops" inner.Tracer.ev_attrs);
          Alcotest.(check bool) "static attr on outer" true
            (List.mem_assoc "k" outer.Tracer.ev_attrs)
      | evs -> Alcotest.failf "expected exactly outer+inner, got %d events" (List.length evs))

let test_span_disabled_is_transparent () =
  Tracer.set_global None;
  Alcotest.(check bool) "disabled" false (Tracer.enabled ());
  Alcotest.(check int) "plain call" 5 (Tracer.with_span "ghost" (fun () -> 5))

let test_ring_overflow () =
  with_tracer ~capacity:4 (fun t ->
      for i = 1 to 10 do
        Tracer.with_span (Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Alcotest.(check int) "ring keeps capacity" 4 (List.length (Tracer.events t));
      Alcotest.(check int) "dropped counted" 6 (Tracer.dropped t);
      (* survivors are the newest *)
      let names = List.map (fun e -> e.Tracer.ev_name) (Tracer.events t) in
      Alcotest.(check bool) "newest survive" true (List.mem "s10" names))

let test_chrome_export () =
  let path = Filename.temp_file "chet_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      with_tracer (fun t ->
          Tracer.with_span "a" ~attrs:[ ("node_id", Tracer.Int 3) ] (fun () ->
              Tracer.with_span "b" (fun () -> ()));
          Tracer.instant "marker";
          Tracer.export_chrome t path);
      (* the exported file must parse back with our own parser and be a
         structurally valid Chrome trace *)
      let j = Jsonx.of_file path in
      match Jsonx.member "traceEvents" j with
      | Some (Jsonx.Arr evs) ->
          Alcotest.(check int) "three events" 3 (List.length evs);
          List.iter
            (fun e ->
              Alcotest.(check bool) "has ph" true (Jsonx.str_member "ph" e <> None);
              Alcotest.(check bool) "has name" true (Jsonx.str_member "name" e <> None);
              Alcotest.(check bool) "has ts" true (Jsonx.num_member "ts" e <> None);
              Alcotest.(check bool) "has pid" true (Jsonx.num_member "pid" e <> None);
              Alcotest.(check bool) "has tid" true (Jsonx.num_member "tid" e <> None))
            evs;
          let a =
            List.find
              (fun e -> Jsonx.str_member "name" e = Some "a")
              evs
          in
          (match Jsonx.member "args" a with
          | Some args ->
              Alcotest.(check (option (float 0.0))) "attr exported" (Some 3.0)
                (Jsonx.num_member "node_id" args)
          | None -> Alcotest.fail "span a should carry args")
      | _ -> Alcotest.fail "no traceEvents array")

(* every executor node should emit one span carrying node id, layer and op
   count when tracing is enabled — the --trace contract of the CLI *)
let test_executor_spans () =
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  let n = Compiler.params_n compiled.Compiler.params in
  let backend =
    Clear.make
      {
        Clear.slots = n / 2;
        scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
        strict_modulus = false;
        encode_noise = false;
      }
  in
  let timer = Timed.create () in
  with_tracer (fun t ->
      let module H = (val Timed.wrap timer backend : Hisa.S) in
      let module E = Executor.Make (H) in
      ignore
        (E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy
           (Models.input_for spec ~seed:3));
      let node_spans =
        List.filter (fun e -> e.Tracer.ev_cat = "executor") (Tracer.events t)
      in
      let nodes = List.length (Chet_nn.Circuit.topo_order circuit) in
      Alcotest.(check int) "one span per circuit node" nodes (List.length node_spans);
      List.iter
        (fun e ->
          Alcotest.(check bool) "span has node_id" true (List.mem_assoc "node_id" e.Tracer.ev_attrs);
          Alcotest.(check bool) "span has layer" true (List.mem_assoc "layer" e.Tracer.ev_attrs);
          Alcotest.(check bool) "span has ops" true (List.mem_assoc "ops" e.Tracer.ev_attrs))
        node_spans;
      (* the per-span op counts must sum to the interceptor's total minus the
         client-side boundary ops (encrypt_tensor / decrypt_tensor run before
         and after the node loop, outside any executor span) *)
      let sum =
        List.fold_left
          (fun acc e ->
            match List.assoc "ops" e.Tracer.ev_attrs with Tracer.Int n -> acc + n | _ -> acc)
          0 node_spans
      in
      let count op0 =
        List.fold_left
          (fun acc (op, _, n, _) -> if String.equal op op0 then acc + n else acc)
          0 (Timed.cells timer)
      in
      (* each encrypt comes with one encode, each decrypt with one decode;
         encode alone also appears in-circuit (plaintext operands), so it is
         not client-only *)
      let client = (2 * count "encrypt") + (2 * count "decrypt") in
      Alcotest.(check int) "span op counts sum to in-circuit timed ops"
        (Timed.total_ops timer - client)
        sum)

(* ------------------------------------------------------------------ *)
(* Metrics                                                              *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "requests_total" ~labels:[ ("rung", "primary") ] in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  (* get-or-create: same handle cell *)
  let c' = Metrics.counter reg "requests_total" ~labels:[ ("rung", "primary") ] in
  Metrics.incr c';
  Alcotest.(check int) "idempotent get_or_create" 6 (Metrics.counter_value c);
  let g = Metrics.gauge reg "depth" in
  Metrics.set_gauge g 3.5;
  Alcotest.(check (float 0.0)) "gauge" 3.5 (Metrics.gauge_value g);
  (* kind mismatch on the same (name, labels) must be rejected *)
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics: depth re-registered with a different kind") (fun () ->
      ignore (Metrics.counter reg "depth"))

let test_histogram_quantiles () =
  let reg = Metrics.create () in
  (* tight growth so the interpolated quantile is sharp *)
  let h = Metrics.histogram reg "lat" ~lo:1e-3 ~growth:1.25 ~buckets:60 in
  (* uniform 1..1000 ms *)
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i /. 1000.0)
  done;
  Alcotest.(check int) "count exact" 1000 (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "sum exact" 500.5 (Metrics.hist_sum h);
  let check_q q expected =
    let got = Metrics.quantile h q in
    let rel = Float.abs (got -. expected) /. expected in
    if rel > 0.13 then
      Alcotest.failf "p%.0f = %.4f, expected %.4f (+/-13%%)" (q *. 100.0) got expected
  in
  check_q 0.5 0.5;
  check_q 0.95 0.95;
  check_q 0.99 0.99;
  Alcotest.(check bool) "empty histogram quantile is nan" true
    (Float.is_nan (Metrics.quantile (Metrics.histogram reg "empty") 0.5))

let test_metrics_concurrent_domains () =
  let reg = Metrics.create () in
  let c = Metrics.counter reg "hits" in
  let h = Metrics.histogram reg "obs" in
  let per_domain = 10_000 in
  let work () =
    for _ = 1 to per_domain do
      Metrics.incr c;
      Metrics.observe h 1.0
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn work) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no torn counter increments" (4 * per_domain) (Metrics.counter_value c);
  Alcotest.(check int) "no torn histogram counts" (4 * per_domain) (Metrics.hist_count h);
  Alcotest.(check (float 1e-6)) "no torn float sums" (float_of_int (4 * per_domain))
    (Metrics.hist_sum h)

let test_expose_format () =
  let reg = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter reg "z_total" ~help:"the z" ~labels:[ ("k", "v") ]);
  Metrics.set_gauge (Metrics.gauge reg "a_gauge") 1.5;
  let text = Metrics.expose reg in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "TYPE line" true (has "# TYPE z_total counter");
  Alcotest.(check bool) "HELP line" true (has "# HELP z_total the z");
  Alcotest.(check bool) "labelled sample" true (has "z_total{k=\"v\"} 3");
  Alcotest.(check bool) "gauge sample" true (has "a_gauge 1.5");
  (* deterministic ordering: gauge 'a_gauge' renders before counter 'z_total' *)
  let idx needle =
    let n = String.length needle in
    let rec go i = if String.sub text i n = needle then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "sorted by name" true (idx "a_gauge" < idx "z_total")

(* Prometheus exposition-format escaping: label values containing the three
   characters the spec escapes — backslash, double quote, newline — must
   render as backslash-backslash, backslash-quote and backslash-n (and
   nothing else may be altered). *)
let test_expose_label_escaping () =
  let reg = Metrics.create () in
  Metrics.incr
    (Metrics.counter reg "esc_total" ~labels:[ ("path", "a\\b\"c\nd") ]);
  let text = Metrics.expose reg in
  let expected = "esc_total{path=\"a\\\\b\\\"c\\nd\"} 1" in
  let has needle =
    let n = String.length needle and m = String.length text in
    let rec go i = i + n <= m && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "escaped label value" true (has expected);
  (* no raw newline may survive inside the sample line *)
  Alcotest.(check bool) "no raw newline in value" false (has "c\nd")

(* Golden-file pin of the full exposition (ISSUE 6 satellite): cumulative
   histogram buckets, the +Inf overflow bucket, _sum/_count companions,
   quoted le labels, and the spec's spellings of non-finite sample values
   (+Inf / -Inf / NaN — %g's "inf"/"nan" are rejected by conformant
   scrapers). Frozen byte-for-byte so a formatting regression shows up as a
   readable diff instead of a production scrape failure. *)
let test_expose_golden () =
  let reg = Metrics.create () in
  Metrics.incr ~by:5
    (Metrics.counter reg "req_total" ~help:"requests served" ~labels:[ ("shard", "0") ]);
  Metrics.set_gauge (Metrics.gauge reg "headroom_gauge" ~help:"worst-case headroom") Float.infinity;
  Metrics.set_gauge (Metrics.gauge reg "debt_gauge") Float.neg_infinity;
  Metrics.set_gauge (Metrics.gauge reg "ratio_gauge") Float.nan;
  let h =
    Metrics.histogram reg "lat_seconds" ~help:"latency" ~lo:0.001 ~growth:10.0 ~buckets:4
  in
  Metrics.observe h 0.0005;
  Metrics.observe h 0.05;
  Metrics.observe h 2.0;
  let actual = Metrics.expose reg in
  let golden =
    In_channel.with_open_bin "data/metrics_exposition.golden" In_channel.input_all
  in
  if actual <> golden then
    Alcotest.failf "exposition drifted from golden:\n--- actual ---\n%s--- golden ---\n%s" actual
      golden

(* ------------------------------------------------------------------ *)
(* Timed interceptor + Instrument satellite                             *)
(* ------------------------------------------------------------------ *)

let test_timed_backend_cells () =
  let timer = Timed.create () in
  let module H = (val Timed.wrap timer (clear ()) : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0; 2.0 |] ~scale:1024) in
  let b = H.encrypt (H.encode [| 3.0; 4.0 |] ~scale:1024) in
  ignore (H.add a b);
  ignore (H.add a b);
  ignore (H.mul a b);
  ignore (H.rot_left a 1);
  let cells = Timed.cells timer in
  let count op =
    List.fold_left (fun acc (o, _, n, _) -> if o = op then acc + n else acc) 0 cells
  in
  Alcotest.(check int) "adds timed" 2 (count "add");
  Alcotest.(check int) "mul timed" 1 (count "mul");
  Alcotest.(check int) "rotation timed" 1 (count "rot_left");
  Alcotest.(check int) "encodes timed" 2 (count "encode");
  List.iter
    (fun (op, _, n, mean) ->
      Alcotest.(check bool) (op ^ " count positive") true (n > 0);
      Alcotest.(check bool) (op ^ " mean non-negative") true (mean >= 0.0))
    cells;
  Alcotest.(check int) "total ops" (2 + 2 + 2 + 1 + 1) (Timed.total_ops timer)

let test_instrument_decode_and_reset () =
  let backend, c = Instrument.wrap (clear ()) in
  let module H = (val backend : Hisa.S) in
  let ct = H.encrypt (H.encode [| 1.0 |] ~scale:1024) in
  ignore (H.decode (H.decrypt ct));
  Alcotest.(check int) "decode counted" 1 c.Instrument.decodes;
  Alcotest.(check int) "decrypt counted" 1 c.Instrument.decrypts;
  ignore (H.rot_left ct 5);
  ignore (H.rot_left ct 2);
  ignore (H.rot_right ct 1);
  (* sorted ascending, right-rotation normalised to a left amount *)
  Alcotest.(check (list int)) "distinct rotations sorted" [ 2; 5; 15 ]
    (Instrument.distinct_rotations c);
  Instrument.reset c;
  Alcotest.(check int) "reset decodes" 0 c.Instrument.decodes;
  Alcotest.(check int) "reset encodes" 0 c.Instrument.encodes;
  Alcotest.(check int) "reset rotations" 0 (Instrument.total_rotations c);
  Alcotest.(check (list int)) "reset distinct" [] (Instrument.distinct_rotations c)

(* ------------------------------------------------------------------ *)
(* Cost-model calibration                                               *)
(* ------------------------------------------------------------------ *)

(* Synthetic cells generated from known ground-truth constants must be
   recovered exactly (the fit is least squares on noiseless data). *)
let test_calibrate_roundtrip () =
  let truth =
    {
      Cost_model.k_add = 3.0e-8;
      k_scalar_mul = 1.1e-8;
      k_plain_mul = 2.2e-8;
      k_cipher_mul = 4.4e-8;
      k_rotate = 5.5e-8;
      k_rescale = 1.7e-8;
    }
  in
  let envs =
    [
      { Hisa.env_n = 4096; env_r = 4; env_log_q = 0 };
      { Hisa.env_n = 4096; env_r = 2; env_log_q = 0 };
      { Hisa.env_n = 8192; env_r = 6; env_log_q = 0 };
    ]
  in
  let k_of = function
    | Cost_model.Add -> truth.Cost_model.k_add
    | Cost_model.Scalar_mul -> truth.Cost_model.k_scalar_mul
    | Cost_model.Plain_mul -> truth.Cost_model.k_plain_mul
    | Cost_model.Cipher_mul -> truth.Cost_model.k_cipher_mul
    | Cost_model.Rotate -> truth.Cost_model.k_rotate
    | Cost_model.Rescale -> truth.Cost_model.k_rescale
  in
  let cells =
    List.concat_map
      (fun op ->
        match Cost_model.class_of_op op with
        | None -> []
        | Some cls ->
            List.mapi
              (fun i env ->
                (op, env, 5 + i, k_of cls *. Cost_model.term_of `Seal cls env))
              envs)
      [ "add"; "sub"; "add_plain"; "add_scalar"; "mul_scalar"; "mul_plain"; "mul"; "rot_left";
        "rescale"; "encode" (* must be ignored *) ]
  in
  let fitted = Cost_model.calibrate_from ~scheme:`Seal cells in
  let close name got want =
    let rel = Float.abs (got -. want) /. want in
    if rel > 1e-9 then Alcotest.failf "%s: fitted %.6g, truth %.6g" name got want
  in
  close "k_add" fitted.Cost_model.k_add truth.Cost_model.k_add;
  close "k_scalar_mul" fitted.Cost_model.k_scalar_mul truth.Cost_model.k_scalar_mul;
  close "k_plain_mul" fitted.Cost_model.k_plain_mul truth.Cost_model.k_plain_mul;
  close "k_cipher_mul" fitted.Cost_model.k_cipher_mul truth.Cost_model.k_cipher_mul;
  close "k_rotate" fitted.Cost_model.k_rotate truth.Cost_model.k_rotate;
  close "k_rescale" fitted.Cost_model.k_rescale truth.Cost_model.k_rescale;
  (* classes with no samples keep defaults *)
  let partial = Cost_model.calibrate_from ~scheme:`Heaan [] in
  Alcotest.(check (float 0.0)) "empty profile keeps defaults"
    Cost_model.heaan_defaults.Cost_model.k_add partial.Cost_model.k_add

let test_calibration_persistence () =
  let cal =
    {
      Cost_model.seal_c = { Cost_model.seal_defaults with Cost_model.k_add = 7.25e-8 };
      heaan_c = { Cost_model.heaan_defaults with Cost_model.k_rotate = 1.0e-7 };
    }
  in
  let path = Filename.temp_file "chet_calib" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Cost_model.save_calibration path cal;
      let cal' = Cost_model.load_calibration path in
      Alcotest.(check bool) "exact float round trip" true (cal = cal'));
  (* structurally wrong files fail loudly *)
  let bad = Filename.temp_file "chet_calib_bad" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove bad)
    (fun () ->
      let oc = open_out bad in
      output_string oc "{\"constants\":{}}";
      close_out oc;
      match Cost_model.load_calibration bad with
      | exception Failure _ -> ()
      | _ -> Alcotest.fail "missing version must be rejected")

(* calibrate -> predict: a model rebuilt from profiled constants must rank
   two layouts the same way the measured (simulated) latencies do *)
let test_calibrated_model_orders_layouts () =
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  let params = compiled.Compiler.params in
  let latency_under costs policy =
    let backend, clock =
      Sim.make
        {
          Sim.n = Compiler.params_n params;
          scheme = Compiler.scheme_of_params opts params;
          costs;
        }
    in
    let module H = (val backend : Hisa.S) in
    let module E = Executor.Make (H) in
    ignore (E.run opts.Compiler.scales circuit ~policy (Models.input_for spec ~seed:1));
    clock.Sim.elapsed
  in
  (* "measured": the shipped calibrated clock. "predicted": constants
     recovered from synthetic cells generated by those same constants, via
     the full calibrate_from -> model_for loop. *)
  let envs =
    [
      { Hisa.env_n = 2048; env_r = 2; env_log_q = 0 };
      { Hisa.env_n = 4096; env_r = 4; env_log_q = 0 };
      { Hisa.env_n = 8192; env_r = 5; env_log_q = 0 };
    ]
  in
  let d = Cost_model.seal_defaults in
  let k_of = function
    | Cost_model.Add -> d.Cost_model.k_add
    | Cost_model.Scalar_mul -> d.Cost_model.k_scalar_mul
    | Cost_model.Plain_mul -> d.Cost_model.k_plain_mul
    | Cost_model.Cipher_mul -> d.Cost_model.k_cipher_mul
    | Cost_model.Rotate -> d.Cost_model.k_rotate
    | Cost_model.Rescale -> d.Cost_model.k_rescale
  in
  let cells =
    List.concat_map
      (fun op ->
        match Cost_model.class_of_op op with
        | None -> []
        | Some cls ->
            List.map (fun env -> (op, env, 8, k_of cls *. Cost_model.term_of `Seal cls env)) envs)
      [ "add"; "mul_scalar"; "mul_plain"; "mul"; "rot_left"; "rescale" ]
  in
  let fitted = Cost_model.calibrate_from ~scheme:`Seal cells in
  let cal = { Cost_model.seal_c = fitted; heaan_c = Cost_model.heaan_defaults } in
  let predicted = Cost_model.model_for `Seal cal in
  let p1 = Executor.All_hw and p2 = Executor.All_chw in
  let measured_order =
    compare (latency_under (Cost_model.seal ()) p1) (latency_under (Cost_model.seal ()) p2)
  in
  let predicted_order = compare (latency_under predicted p1) (latency_under predicted p2) in
  Alcotest.(check int) "calibrated model preserves layout ordering" measured_order predicted_order

let suite =
  [
    ( "obs",
      [
        Alcotest.test_case "jsonx round trip" `Quick test_jsonx_roundtrip;
        Alcotest.test_case "jsonx parse errors" `Quick test_jsonx_parse_errors;
        Alcotest.test_case "jsonx accessors" `Quick test_jsonx_accessors;
        Alcotest.test_case "span nesting + annotate" `Quick test_span_nesting;
        Alcotest.test_case "disabled tracing is transparent" `Quick test_span_disabled_is_transparent;
        Alcotest.test_case "ring overflow drops oldest" `Quick test_ring_overflow;
        Alcotest.test_case "chrome export well-formed" `Quick test_chrome_export;
        Alcotest.test_case "executor emits one span per node" `Quick test_executor_spans;
        Alcotest.test_case "counters and gauges" `Quick test_counter_gauge;
        Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
        Alcotest.test_case "metrics exact under 4 domains" `Quick test_metrics_concurrent_domains;
        Alcotest.test_case "prometheus exposition" `Quick test_expose_format;
        Alcotest.test_case "prometheus label escaping" `Quick test_expose_label_escaping;
        Alcotest.test_case "prometheus exposition golden file" `Quick test_expose_golden;
        Alcotest.test_case "timed backend cells" `Quick test_timed_backend_cells;
        Alcotest.test_case "instrument decode + reset" `Quick test_instrument_decode_and_reset;
        Alcotest.test_case "calibrate round trip" `Quick test_calibrate_roundtrip;
        Alcotest.test_case "calibration persistence" `Quick test_calibration_persistence;
        Alcotest.test_case "calibrated model orders layouts" `Quick test_calibrated_model_orders_layouts;
      ] );
  ]
