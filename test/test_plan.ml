(* Compiled execution plans (DESIGN.md §14): arena-liveness invariants on
   built plans, slot-reuse behaviour, and the PLAN frame's corruption
   contract — truncations and bit flips must surface as [Serial.Corrupt],
   never as a crash or a silently wrong schedule. *)

module Plan = Chet_plan.Plan
module Plan_exec = Chet_plan.Plan_exec
module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Serial = Chet_crypto.Serial
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Models = Chet_nn.Models
module T = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset

let slots = 2048

let plan_of ?(policy = Executor.Hw_conv_chw_rest) circuit = Plan.build ~slots ~policy circuit

let micro_plan () = plan_of (Models.micro.Models.build ())

(* --- liveness / arena invariants --------------------------------------- *)

(* Replay the schedule by hand (independently of [Plan.validate]) and check
   the invariant the arena executor relies on: a slot is never read after
   being released, until some later step rewrites it. *)
let check_no_read_after_release (p : Plan.t) =
  let live = Array.make p.Plan.p_arena false in
  Array.iter
    (fun (st : Plan.step) ->
      Array.iter
        (fun s ->
          if not live.(s) then
            Alcotest.failf "step %d reads slot %d after release" st.Plan.st_id s)
        st.Plan.st_srcs;
      if live.(st.Plan.st_dst) then
        Alcotest.failf "step %d overwrites live slot %d" st.Plan.st_id st.Plan.st_dst;
      live.(st.Plan.st_dst) <- true;
      Array.iter
        (fun s ->
          if s = st.Plan.st_dst then
            Alcotest.failf "step %d releases its own destination" st.Plan.st_id;
          live.(s) <- false)
        st.Plan.st_release)
    p.Plan.p_steps;
  Alcotest.(check bool) "output live" true live.(p.Plan.p_output)

let test_liveness_invariants () =
  List.iter
    (fun (spec : Models.spec) ->
      let circuit = spec.Models.build () in
      List.iter
        (fun policy ->
          let p = plan_of ~policy circuit in
          (match Plan.validate p with
          | Ok () -> ()
          | Error r -> Alcotest.failf "%s: invalid plan: %s" spec.Models.model_name r);
          check_no_read_after_release p)
        [ Executor.All_hw; Executor.All_chw; Executor.Hw_conv_chw_rest ])
    [ Models.micro; Models.lenet5_small ]

let test_arena_reuse () =
  (* a deep elementwise chain keeps exactly one value alive at a time: the
     arena must stay tiny no matter how long the chain gets *)
  let b = Circuit.builder () in
  let x = ref (Circuit.input b ~name:"x" [| 1; 8; 8 |]) in
  for _ = 1 to 12 do
    x := Circuit.square b !x
  done;
  let circuit = Circuit.finish b ~name:"chain" ~output:!x in
  let p = plan_of circuit in
  Alcotest.(check bool) "steps cover the chain" true (Array.length p.Plan.p_steps >= 13);
  if p.Plan.p_arena > 2 then
    Alcotest.failf "square chain needs %d arena slots (expected <= 2)" p.Plan.p_arena;
  check_no_read_after_release p

let test_validate_rejects_mangled () =
  let p = micro_plan () in
  let with_steps steps = { p with Plan.p_steps = steps } in
  let expect_error what p' =
    match Plan.validate p' with
    | Error _ -> ()
    | Ok () -> Alcotest.failf "validate accepted %s" what
  in
  (* read of a slot that was never written *)
  let steps = Array.map Fun.id p.Plan.p_steps in
  steps.(0) <- { steps.(0) with Plan.st_srcs = [| p.Plan.p_arena - 1 |] };
  expect_error "a read of a dead slot" (with_steps steps);
  (* a step releasing its own destination *)
  let steps = Array.map Fun.id p.Plan.p_steps in
  steps.(1) <- { steps.(1) with Plan.st_release = [| steps.(1).Plan.st_dst |] };
  expect_error "a step releasing its own destination" (with_steps steps);
  (* an out-of-range destination *)
  let steps = Array.map Fun.id p.Plan.p_steps in
  steps.(0) <- { steps.(0) with Plan.st_dst = p.Plan.p_arena };
  expect_error "an out-of-range destination" (with_steps steps);
  (* a released output: any slot other than the real output is dead after the
     last step (the schedule frees everything it no longer needs) *)
  expect_error "a dead output slot"
    { p with Plan.p_output = (p.Plan.p_output + 1) mod p.Plan.p_arena }

(* The executor's own guard: a hand-mangled plan that reads a released slot
   must be refused at prepare time (validate runs there), not crash mid-run. *)
let test_prepare_rejects_invalid () =
  let p = micro_plan () in
  let steps = Array.map Fun.id p.Plan.p_steps in
  let last = Array.length steps - 1 in
  steps.(last) <- { steps.(last) with Plan.st_srcs = [| p.Plan.p_arena - 1 |] } ;
  let mangled = { p with Plan.p_steps = steps } in
  let module H =
    (val Clear.make
           {
             Clear.slots;
             scheme = Hisa.Rns_chain (Array.make 64 ((1 lsl 30) - 35));
             strict_modulus = false;
             encode_noise = false;
           })
  in
  let module PE = Plan_exec.Make (H) in
  match PE.prepare Kernels.default_scales mangled with
  | _ -> Alcotest.fail "prepare accepted an invalid plan"
  | exception Chet_hisa.Herr.Fhe_error (Chet_hisa.Herr.Invalid_op _, _) -> ()

(* --- PLAN frame: roundtrip and corruption fuzz ------------------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun policy ->
      let circuit = Models.micro.Models.build () in
      let p = plan_of ~policy circuit in
      let p' = Plan.of_string ~circuit (Plan.to_string p) in
      Alcotest.(check int) "steps" (Array.length p.Plan.p_steps) (Array.length p'.Plan.p_steps);
      Alcotest.(check int) "arena" p.Plan.p_arena p'.Plan.p_arena;
      Alcotest.(check int) "output" p.Plan.p_output p'.Plan.p_output;
      Alcotest.(check int) "slots" p.Plan.p_slots p'.Plan.p_slots;
      Array.iteri
        (fun i (st : Plan.step) ->
          let st' = p'.Plan.p_steps.(i) in
          Alcotest.(check int) "node" st.Plan.st_node.Circuit.id st'.Plan.st_node.Circuit.id;
          Alcotest.(check bool) "op" true (st.Plan.st_op = st'.Plan.st_op);
          Alcotest.(check bool) "kind" true (st.Plan.st_kind = st'.Plan.st_kind);
          Alcotest.(check int) "dst" st.Plan.st_dst st'.Plan.st_dst;
          Alcotest.(check (array int)) "srcs" st.Plan.st_srcs st'.Plan.st_srcs;
          Alcotest.(check (array int)) "release" st.Plan.st_release st'.Plan.st_release;
          Alcotest.(check bool) "meta" true (st.Plan.st_meta = st'.Plan.st_meta))
        p.Plan.p_steps;
      match Plan.validate p' with
      | Ok () -> ()
      | Error r -> Alcotest.failf "reloaded plan invalid: %s" r)
    [ Executor.All_hw; Executor.All_chw; Executor.Hw_conv_chw_rest; Executor.Chw_fc_hw_before ]

let test_frame_wrong_circuit () =
  let circuit = Models.micro.Models.build () in
  let bytes = Plan.to_string (plan_of circuit) in
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"x" [| 1; 8; 8 |] in
  let other = Circuit.finish b ~name:"other" ~output:(Circuit.square b x) in
  match Plan.of_string ~circuit:other bytes with
  | _ -> Alcotest.fail "PLAN frame for another circuit accepted"
  | exception Serial.Corrupt _ -> ()

let test_frame_truncation_every_offset () =
  let circuit = Models.micro.Models.build () in
  let bytes = Plan.to_string (plan_of circuit) in
  for cut = 0 to String.length bytes - 1 do
    match Plan.of_string ~circuit (String.sub bytes 0 cut) with
    | _ -> Alcotest.failf "truncation at offset %d accepted" cut
    | exception Serial.Corrupt _ -> ()
  done

let test_frame_bit_flips () =
  let circuit = Models.micro.Models.build () in
  let bytes = Plan.to_string (plan_of circuit) in
  let nbits = 8 * String.length bytes in
  let st = Random.State.make [| 0x504c414e |] in
  for _ = 1 to 400 do
    let bit = Random.State.int st nbits in
    let b = Bytes.of_string bytes in
    let i = bit / 8 in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl (bit mod 8))));
    match Plan.of_string ~circuit (Bytes.to_string b) with
    | _ -> Alcotest.failf "bit flip at %d accepted" bit
    | exception Serial.Corrupt _ -> ()
  done

let suite =
  [
    ( "plan",
      [
        Alcotest.test_case "liveness invariants on built plans" `Quick test_liveness_invariants;
        Alcotest.test_case "arena reuse bounds a deep chain" `Quick test_arena_reuse;
        Alcotest.test_case "validate rejects mangled schedules" `Quick test_validate_rejects_mangled;
        Alcotest.test_case "prepare refuses an invalid plan" `Quick test_prepare_rejects_invalid;
        Alcotest.test_case "PLAN frame roundtrip (all policies)" `Quick test_frame_roundtrip;
        Alcotest.test_case "PLAN frame rejects another circuit" `Quick test_frame_wrong_circuit;
        Alcotest.test_case "PLAN frame truncation sweep" `Quick test_frame_truncation_every_offset;
        Alcotest.test_case "PLAN frame bit-flip fuzz" `Quick test_frame_bit_flips;
      ] );
  ]
