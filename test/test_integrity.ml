(* End-to-end result integrity (DESIGN.md §16): sentinel twin layouts, the
   noise-margin guard, and the fault classes they must catch. *)

module Tensor = Chet_tensor.Tensor
module Layout = Chet_runtime.Layout
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module Herr = Chet_hisa.Herr
module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Integrity = Chet.Integrity
module Compiler = Chet.Compiler
module Checked = Chet_hisa.Checked_backend

let clear_backend ?(slots = 4096) () =
  Clear.make
    { Clear.slots; scheme = Hisa.Pow2_modulus 8000; strict_modulus = false; encode_noise = false }

(* --- twin layout mechanics ------------------------------------------- *)

let test_twin_layout_geometry () =
  let plain = Layout.create ~kind:Layout.CHW ~slots:4096 ~channels:4 ~height:8 ~width:8 () in
  let twin = Layout.create ~kind:Layout.CHW ~slots:4096 ~channels:4 ~height:8 ~width:8 ~twin:true () in
  Alcotest.(check int) "col stride doubles" (2 * plain.Layout.col_stride) twin.Layout.col_stride;
  Alcotest.(check int) "row stride doubles" (2 * plain.Layout.row_stride) twin.Layout.row_stride;
  Alcotest.(check int) "ch stride doubles" (2 * plain.Layout.ch_stride) twin.Layout.ch_stride;
  Alcotest.(check int) "offset doubles" (2 * plain.Layout.offset) twin.Layout.offset;
  (* every physical position is even, so its twin (odd) never collides *)
  Layout.iter_positions twin (fun c h w ->
      Alcotest.(check int) "even slot" 0 (Layout.slot_of twin ~c ~h ~w mod 2))

let test_twin_pack_roundtrip () =
  let meta = Layout.create ~kind:Layout.CHW ~slots:4096 ~channels:3 ~height:6 ~width:5 ~twin:true () in
  let img = Chet_tensor.Dataset.image ~seed:11 ~channels:3 ~height:6 ~width:5 in
  let probe = Chet_tensor.Dataset.image ~seed:99 ~channels:3 ~height:6 ~width:5 in
  let vecs = Layout.pack ~probe meta img in
  let back = Layout.unpack meta vecs in
  let back_twin = Layout.unpack_twin meta vecs in
  Alcotest.(check bool) "primary survives" true (back.Tensor.data = img.Tensor.data);
  Alcotest.(check bool) "probe survives" true (back_twin.Tensor.data = probe.Tensor.data);
  (* a probe on a twin-less layout is a typed error, not silent truncation *)
  let plain = Layout.create ~kind:Layout.CHW ~slots:4096 ~channels:3 ~height:6 ~width:5 () in
  (match Layout.pack ~probe plain img with
  | _ -> Alcotest.fail "expected Invalid_op"
  | exception Herr.Fhe_error (Herr.Invalid_op _, _) -> ())

(* --- sentinel clean runs --------------------------------------------- *)

(* The sentinel must ride through every kernel unperturbed AND must not
   perturb the primary result: on the clear backend both lanes are exact,
   so both comparisons can be tight. *)
let run_sentinel_clean (spec : Models.spec) =
  let circuit = spec.Models.build () in
  let scales = Kernels.default_scales in
  let image = Models.input_for spec ~seed:3 in
  let isp = Integrity.spec_for circuit in
  let backend = clear_backend ~slots:8192 () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  List.iter
    (fun policy ->
      (* plain run = ground truth for the primary lane *)
      let plain_out = E.run scales circuit ~policy image in
      let seen_twin = ref None in
      let sentinel = Integrity.sentinel ~observe:(fun t -> seen_twin := Some t) isp in
      let out = E.run ~sentinel scales circuit ~policy image in
      let max_diff =
        Array.fold_left Float.max 0.0
          (Array.mapi
             (fun i v -> Float.abs (v -. plain_out.Tensor.data.(i)))
             out.Tensor.data)
      in
      if max_diff > 1e-9 then
        Alcotest.failf "%s/%s: sentinel perturbed primary by %g" spec.Models.model_name
          (Executor.policy_name policy) max_diff;
      match !seen_twin with
      | None -> Alcotest.fail "sentinel verify never ran"
      | Some t ->
          let m = Integrity.margin_bits isp t in
          if m <= 0.0 then
            Alcotest.failf "%s/%s: clean sentinel margin %.2f <= 0" spec.Models.model_name
              (Executor.policy_name policy) m)
    Executor.all_policies

let test_sentinel_clean_micro () = run_sentinel_clean Models.micro

let test_sentinel_clean_zoo () =
  (* all five Table-3 networks, validated through the real kernels on the
     clear backend (the per-model deployment self-check the service runs) *)
  List.iter
    (fun (spec : Models.spec) ->
      let circuit = spec.Models.build () in
      let isp = Integrity.spec_for circuit in
      let margin =
        Integrity.validate isp circuit ~scales:Kernels.default_scales
          ~policy:Executor.All_chw ~slots:32768
      in
      if margin <= 0.0 then
        Alcotest.failf "%s: clean validation margin %.2f <= 0" spec.Models.model_name margin)
    Models.all

(* --- sentinel on analysis + real backends ---------------------------- *)

let compile_sentinel ?(tolerance = Integrity.default_tolerance) () =
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = { (Compiler.default_options ()) with Compiler.sentinel = true } in
  let compiled = Compiler.compile opts circuit in
  (spec, circuit, compiled, Integrity.spec_for ~tolerance circuit)

let test_sentinel_real_backend () =
  let spec, circuit, compiled, isp = compile_sentinel () in
  let backend = Compiler.instantiate compiled ~seed:7 ~with_secret:true () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let image = Models.input_for spec ~seed:5 in
  let margin = ref Float.nan in
  let sentinel = Integrity.sentinel ~observe:(fun t -> margin := Integrity.margin_bits isp t) isp in
  let out = E.run ~sentinel compiled.Compiler.opts.Compiler.scales circuit
      ~policy:compiled.Compiler.policy image
  in
  (* primary fidelity: same bar as the compiled-deployment tests *)
  let reference = Reference.eval circuit image in
  let diff =
    Array.fold_left Float.max 0.0
      (Array.mapi (fun i v -> Float.abs (v -. reference.Tensor.data.(i))) out.Tensor.data)
  in
  if diff > 0.05 then Alcotest.failf "primary fidelity under sentinel: diff %.4f" diff;
  if not (!margin > 0.0) then Alcotest.failf "real-backend sentinel margin %.2f" !margin

(* --- noise-margin guard ---------------------------------------------- *)

let noise_checked ?margin ?(slots = 64) () =
  let scheme = Hisa.Pow2_modulus 8000 in
  let cfg =
    { (Checked.default_config ~scheme) with Checked.noise = Some (Checked.default_noise_model ()) }
  in
  Checked.wrap ~config:(Some cfg) ?margin ~scheme (clear_backend ~slots ())

(* A forced over-depth circuit: squaring doubles the error bound every
   round, so the bound deterministically crosses the tolerance and the
   guard must raise typed [Precision_exhausted] BEFORE any decrypt — and
   the modulus budget (8000 logQ bits, ~13 of 400 possible rescales used)
   guarantees nothing else fires first. *)
let test_precision_exhausted () =
  let module H = (val noise_checked () : Hisa.S) in
  let scale = 1 lsl 20 in
  let x = H.encrypt (H.encode (Array.make 64 1.0) ~scale) in
  let fired = ref None in
  let decrypted = ref false in
  (try
     let c = ref x in
     for _ = 1 to 40 do
       let sq = H.mul !c !c in
       c := H.rescale sq scale
     done;
     decrypted := true;
     ignore (H.decode (H.decrypt !c))
   with Herr.Fhe_error (Herr.Precision_exhausted { margin_bits; tolerance }, ctx) ->
     fired := Some (margin_bits, tolerance, ctx.Herr.op));
  match !fired with
  | None -> Alcotest.fail "over-depth square chain never raised Precision_exhausted"
  | Some (margin_bits, tolerance, op) ->
      Alcotest.(check bool) "raised before decrypt" false !decrypted;
      Alcotest.(check (float 1e-9)) "tolerance carried" 0.05 tolerance;
      if margin_bits > 0.0 then Alcotest.failf "exhausted margin %.2f should be <= 0" margin_bits;
      Alcotest.(check string) "named the crossing op" "mul" op

let test_noise_margin_gauge () =
  let margin = ref Float.nan in
  let module H = (val noise_checked ~margin () : Hisa.S) in
  let scale = 1 lsl 20 in
  let x = H.encrypt (H.encode (Array.make 64 1.0) ~scale) in
  let y = H.rescale (H.mul x x) scale in
  ignore (H.decode (H.decrypt y));
  let shallow = !margin in
  if not (shallow > 0.0) then Alcotest.failf "shallow margin %.2f should be positive" shallow;
  (* more depth consumes margin monotonically *)
  let z = H.rescale (H.mul y y) scale in
  ignore (H.decode (H.decrypt z));
  if not (!margin < shallow) then
    Alcotest.failf "margin must shrink with depth: %.2f -> %.2f" shallow !margin

let test_noise_guard_off_by_default () =
  (* without a noise model the guard never fires, whatever the depth *)
  let scheme = Hisa.Pow2_modulus 8000 in
  let module H = (val Checked.wrap ~scheme (clear_backend ~slots:64 ()) : Hisa.S) in
  let scale = 1 lsl 20 in
  let c = ref (H.encrypt (H.encode (Array.make 64 1.0) ~scale)) in
  for _ = 1 to 40 do
    c := H.rescale (H.mul !c !c) scale
  done;
  ignore (H.decode (H.decrypt !c))

let suite =
  [
    ( "integrity",
      [
        Alcotest.test_case "twin layout geometry" `Quick test_twin_layout_geometry;
        Alcotest.test_case "twin pack roundtrip" `Quick test_twin_pack_roundtrip;
        Alcotest.test_case "sentinel clean: micro, all policies" `Quick test_sentinel_clean_micro;
        Alcotest.test_case "sentinel clean: zoo validation" `Slow test_sentinel_clean_zoo;
        Alcotest.test_case "sentinel on real backend" `Slow test_sentinel_real_backend;
        Alcotest.test_case "precision exhausted before decrypt" `Quick test_precision_exhausted;
        Alcotest.test_case "noise margin gauge" `Quick test_noise_margin_gauge;
        Alcotest.test_case "noise guard off by default" `Quick test_noise_guard_off_by_default;
      ] );
  ]
