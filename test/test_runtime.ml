(* Runtime kernel tests: every layout policy must produce the same numbers as
   the plaintext reference engine — first through the cleartext HISA backend
   (exact up to fixed-point quantisation), then end-to-end through the real
   RNS-CKKS scheme on a small network. *)

module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Layout = Chet_runtime.Layout
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module T = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset

let scales = Kernels.default_scales

let clear_backend ?(slots = 4096) () =
  Clear.make
    {
      Clear.slots;
      scheme = Hisa.Rns_chain (Array.make 64 ((1 lsl 30) - 35));
      strict_modulus = false;
      encode_noise = false;
    }

(* ------------------------------------------------------------------ *)
(* Layout unit tests                                                   *)
(* ------------------------------------------------------------------ *)

let test_layout_pack_roundtrip () =
  List.iter
    (fun kind ->
      let meta = Layout.create ~kind ~slots:4096 ~channels:5 ~height:9 ~width:7 ~margin:2 () in
      let t = Dataset.image ~seed:1 ~channels:5 ~height:9 ~width:7 in
      let packed = Layout.pack meta t in
      Alcotest.(check int) "ct count" (Layout.num_cts meta) (Array.length packed);
      let back = Layout.unpack meta packed in
      Alcotest.(check (float 0.0)) "roundtrip" 0.0 (T.max_abs_diff t back))
    [ Layout.HW; Layout.CHW ]

let test_layout_hw_one_channel_per_ct () =
  let meta = Layout.create ~kind:Layout.HW ~slots:4096 ~channels:3 ~height:8 ~width:8 () in
  Alcotest.(check int) "cts" 3 (Layout.num_cts meta);
  Alcotest.(check int) "cpc" 1 meta.Layout.ch_per_ct

let test_layout_chw_packing () =
  let meta = Layout.create ~kind:Layout.CHW ~slots:4096 ~channels:8 ~height:8 ~width:8 () in
  Alcotest.(check bool) "packs >1 channel" true (meta.Layout.ch_per_ct > 1);
  Alcotest.(check bool) "pow2" true (meta.Layout.ch_per_ct land (meta.Layout.ch_per_ct - 1) = 0);
  Alcotest.(check bool) "fewer cts" true (Layout.num_cts meta < 8)

let test_layout_zero_gaps () =
  let meta = Layout.create ~kind:Layout.HW ~slots:1024 ~channels:1 ~height:6 ~width:6 ~margin:2 () in
  let t = Dataset.image ~seed:2 ~channels:1 ~height:6 ~width:6 in
  let packed = Layout.pack meta t in
  (* number of nonzero slots equals the number of logical positions *)
  let nonzero = Array.fold_left (fun acc v -> if v <> 0.0 then acc + 1 else acc) 0 packed.(0) in
  Alcotest.(check bool) "gaps zero" true (nonzero <= 36)

let test_layout_too_big_rejected () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Layout.create ~kind:Layout.HW ~slots:64 ~channels:1 ~height:32 ~width:32 ());
       false
     with Chet_hisa.Herr.Fhe_error (Chet_hisa.Herr.Slot_overflow _, _) -> true)

let test_vector_meta () =
  let meta = Layout.vector_meta ~slots:2048 ~length:10 () in
  Alcotest.(check int) "one ct" 1 (Layout.num_cts meta);
  Alcotest.(check int) "slot of c" 7 (Layout.slot_of meta ~c:7 ~h:0 ~w:0)

(* ------------------------------------------------------------------ *)
(* Kernels against the reference engine                                *)
(* ------------------------------------------------------------------ *)

let check_model_policy ?(tol = 2e-2) ?slots spec policy =
  let circuit = spec.Models.build () in
  let image = Models.input_for spec ~seed:7 in
  let expected = Reference.eval circuit image in
  let backend = clear_backend ?slots () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let got = E.run scales circuit ~policy image in
  let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
  if diff > tol then
    Alcotest.failf "%s under %s: max diff %.6f > %.6f" spec.Models.model_name
      (Executor.policy_name policy) diff tol

let test_micro_all_policies () =
  List.iter (check_model_policy Models.micro) Executor.all_policies

let test_lenet_small_all_policies () =
  List.iter (check_model_policy Models.lenet5_small) Executor.all_policies

let test_lenet_medium_hw_chw () =
  List.iter (check_model_policy ~slots:8192 Models.lenet5_medium) [ Executor.All_hw; Executor.All_chw ]

let test_industrial_chw () = check_model_policy ~slots:16384 Models.industrial Executor.All_chw

let test_squeezenet_chw () =
  check_model_policy ~slots:2048 Models.squeezenet_cifar Executor.All_chw

let test_single_conv_same () =
  (* focused conv test: Same padding, stride 1, multi-channel *)
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 3; 8; 8 |] in
  let st = Random.State.make [| 5 |] in
  let weights = Dataset.glorot st [| 4; 3; 3; 3 |] in
  let bias = Dataset.bias st 4 in
  let y = Circuit.conv2d b x ~weights ~bias ~stride:1 ~padding:T.Same () in
  let circuit = Circuit.finish b ~name:"conv-test" ~output:y in
  let image = Dataset.image ~seed:3 ~channels:3 ~height:8 ~width:8 in
  List.iter
    (fun policy ->
      let expected = Reference.eval circuit image in
      let module H = (val clear_backend () : Hisa.S) in
      let module E = Executor.Make (H) in
      let got = E.run scales circuit ~policy image in
      let diff = T.max_abs_diff expected got in
      if diff > 1e-3 then
        Alcotest.failf "conv same (%s): diff %.6f" (Executor.policy_name policy) diff)
    [ Executor.All_hw; Executor.All_chw ]

let test_single_conv_stride2 () =
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 2; 8; 8 |] in
  let st = Random.State.make [| 6 |] in
  let weights = Dataset.glorot st [| 4; 2; 3; 3 |] in
  let y = Circuit.conv2d b x ~weights ~stride:2 ~padding:T.Same () in
  let circuit = Circuit.finish b ~name:"conv-s2" ~output:y in
  let image = Dataset.image ~seed:4 ~channels:2 ~height:8 ~width:8 in
  List.iter
    (fun policy ->
      let expected = Reference.eval circuit image in
      let module H = (val clear_backend () : Hisa.S) in
      let module E = Executor.Make (H) in
      let got = E.run scales circuit ~policy image in
      let diff = T.max_abs_diff expected got in
      if diff > 1e-3 then
        Alcotest.failf "conv s2 (%s): diff %.6f" (Executor.policy_name policy) diff)
    [ Executor.All_hw; Executor.All_chw ]

let test_pool_then_conv () =
  (* strided metadata: pooling dilates, the next conv must still be right *)
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 2; 12; 12 |] in
  let st = Random.State.make [| 7 |] in
  let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
  let weights = Dataset.glorot st [| 3; 2; 3; 3 |] in
  let x = Circuit.conv2d b x ~weights ~stride:1 ~padding:T.Same () in
  let circuit = Circuit.finish b ~name:"pool-conv" ~output:x in
  let image = Dataset.image ~seed:5 ~channels:2 ~height:12 ~width:12 in
  List.iter
    (fun policy ->
      let expected = Reference.eval circuit image in
      let module H = (val clear_backend () : Hisa.S) in
      let module E = Executor.Make (H) in
      let got = E.run scales circuit ~policy image in
      let diff = T.max_abs_diff expected got in
      if diff > 1e-3 then
        Alcotest.failf "pool+conv (%s): diff %.6f" (Executor.policy_name policy) diff)
    [ Executor.All_hw; Executor.All_chw ]

let test_concat_kernel () =
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 2; 6; 6 |] in
  let st = Random.State.make [| 8 |] in
  let w1 = Dataset.glorot st [| 2; 2; 3; 3 |] in
  let w2 = Dataset.glorot st [| 2; 2; 3; 3 |] in
  let a = Circuit.conv2d b x ~weights:w1 ~stride:1 ~padding:T.Same () in
  let c = Circuit.conv2d b x ~weights:w2 ~stride:1 ~padding:T.Same () in
  let y = Circuit.concat b [ a; c ] in
  let circuit = Circuit.finish b ~name:"concat" ~output:y in
  let image = Dataset.image ~seed:6 ~channels:2 ~height:6 ~width:6 in
  List.iter
    (fun policy ->
      let expected = Reference.eval circuit image in
      let module H = (val clear_backend () : Hisa.S) in
      let module E = Executor.Make (H) in
      let got = E.run scales circuit ~policy image in
      let diff = T.max_abs_diff expected got in
      if diff > 1e-3 then
        Alcotest.failf "concat (%s): diff %.6f" (Executor.policy_name policy) diff)
    [ Executor.All_hw; Executor.All_chw ]

let test_residual_kernel () =
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 2; 6; 6 |] in
  let st = Random.State.make [| 9 |] in
  let w1 = Dataset.glorot st [| 2; 2; 3; 3 |] in
  let a = Circuit.conv2d b x ~weights:w1 ~stride:1 ~padding:T.Same () in
  let a = Circuit.square b a in
  let c = Circuit.conv2d b a ~weights:w1 ~stride:1 ~padding:T.Same () in
  let y = Circuit.residual b a c in
  let circuit = Circuit.finish b ~name:"residual" ~output:y in
  let image = Dataset.image ~seed:7 ~channels:2 ~height:6 ~width:6 in
  let expected = Reference.eval circuit image in
  let module H = (val clear_backend () : Hisa.S) in
  let module E = Executor.Make (H) in
  let got = E.run scales circuit ~policy:Executor.All_chw image in
  Alcotest.(check bool) "close" true (T.max_abs_diff expected got < 1e-2)

(* ------------------------------------------------------------------ *)
(* End-to-end with the real RNS-CKKS backend                           *)
(* ------------------------------------------------------------------ *)

let test_micro_real_seal () =
  let module C = Chet_crypto.Rns_ckks in
  let params = C.default_params ~n:2048 ~bits:30 ~num_coeff_primes:8 () in
  let ctx = C.make_context params in
  let rng = Chet_crypto.Sampling.create ~seed:99 in
  let sk, keys = C.keygen ctx rng in
  C.add_power_of_two_rotation_keys ctx rng sk keys;
  let backend =
    Chet_hisa.Seal_backend.make { Chet_hisa.Seal_backend.ctx; rng; keys; secret = Some sk }
  in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let image = Models.input_for spec ~seed:21 in
  let expected = Reference.eval circuit image in
  let got = E.run scales circuit ~policy:Executor.All_hw image in
  let diff = T.max_abs_diff (T.flatten expected) (T.flatten got) in
  if diff > 0.05 then Alcotest.failf "micro on real RNS-CKKS: diff %.4f" diff

let suite =
  [
    ( "layout",
      [
        Alcotest.test_case "pack/unpack roundtrip" `Quick test_layout_pack_roundtrip;
        Alcotest.test_case "HW single channel" `Quick test_layout_hw_one_channel_per_ct;
        Alcotest.test_case "CHW packing" `Quick test_layout_chw_packing;
        Alcotest.test_case "gaps stay zero" `Quick test_layout_zero_gaps;
        Alcotest.test_case "overflow rejected" `Quick test_layout_too_big_rejected;
        Alcotest.test_case "vector meta" `Quick test_vector_meta;
      ] );
    ( "kernels",
      [
        Alcotest.test_case "conv same padding" `Quick test_single_conv_same;
        Alcotest.test_case "conv stride 2" `Quick test_single_conv_stride2;
        Alcotest.test_case "pool then conv" `Quick test_pool_then_conv;
        Alcotest.test_case "concat" `Quick test_concat_kernel;
        Alcotest.test_case "residual" `Quick test_residual_kernel;
        Alcotest.test_case "micro: all policies" `Quick test_micro_all_policies;
        Alcotest.test_case "LeNet-5-small: all policies" `Slow test_lenet_small_all_policies;
        Alcotest.test_case "LeNet-5-medium: HW+CHW" `Slow test_lenet_medium_hw_chw;
        Alcotest.test_case "Industrial: CHW" `Slow test_industrial_chw;
        Alcotest.test_case "SqueezeNet: CHW" `Slow test_squeezenet_chw;
      ] );
    ( "end-to-end",
      [ Alcotest.test_case "micro on real RNS-CKKS" `Slow test_micro_real_seal ] );
  ]
