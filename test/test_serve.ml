(* The serving layer's robustness contract, proven on Fault_backend-wrapped
   deployments (ISSUE acceptance criteria):

     (a) a transient injected fault is retried and the final answer matches
         the clean run bit-for-bit;
     (b) a persistent fault trips the circuit breaker and subsequent
         requests succeed via the degraded fallback with [degraded:true];
     (c) an over-deadline request returns [Deadline_exceeded] while the
         pool keeps serving later requests;
     (d) queue overflow yields [Overloaded] with zero worker crashes;
     (e) N concurrent domains produce results bit-identical to sequential
         execution.

   All tests run on the cleartext backend (the reference engine) at the
   compiled parameters of the micro network — deterministic and fast — with
   Fault_backend + Checked_backend layered on top exactly as a corrupted
   real deployment would surface. *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Clear = Chet_hisa.Clear_backend
module Checked = Chet_hisa.Checked_backend
module Fault = Chet_hisa.Fault_backend
module Service = Chet_serve.Service
module Breaker = Chet_serve.Breaker
module Squeue = Chet_serve.Queue
module T = Chet_tensor.Tensor

let seal_opts = Compiler.default_options ~target:Compiler.Seal ()
let micro = Models.micro.Models.build ()
let compiled = lazy (Compiler.compile seal_opts micro)
let image i = Models.input_for Models.micro ~seed:(500 + i)

let scheme () = Compiler.scheme_of_params seal_opts (Lazy.force compiled).Compiler.params
let policy () = (Lazy.force compiled).Compiler.policy

let clear_backend () =
  Clear.make
    {
      Clear.slots = Compiler.params_n (Lazy.force compiled).Compiler.params / 2;
      scheme = scheme ();
      strict_modulus = false;
      encode_noise = false;
    }

let dep ?(label = "primary") ?(degraded = false) ?cost_ms backend =
  {
    Service.dep_label = label;
    dep_degraded = degraded;
    dep_scales = seal_opts.Compiler.scales;
    dep_policy = policy ();
    dep_cost_ms = cost_ms;
    dep_backend = backend;
    dep_plan = None;
    dep_sentinel = None;
    dep_twin = false;
  }

let clean_dep ?label ?degraded () = dep ?label ?degraded (fun ~req_seed:_ ~attempt:_ -> clear_backend ())

(* NaN-poison the decode path, detected by the checked wrapper as a typed
   [Numeric_blowup] — the transient class the retry policy targets. *)
let poisoned_backend ~req_seed =
  let faulty, _log =
    Fault.wrap (Fault.default_config ~seed:req_seed (Some Fault.Nan_poison)) (clear_backend ())
  in
  Checked.wrap ~scheme:(scheme ()) faulty

let transient_fault_dep () =
  dep (fun ~req_seed ~attempt -> if attempt = 0 then poisoned_backend ~req_seed else clear_backend ())

let persistent_fault_dep () = dep (fun ~req_seed ~attempt:_ -> poisoned_backend ~req_seed)

let quick_cfg ?(domains = 2) ?(high_water = 16) ?(max_retries = 2) () =
  {
    (Service.default_config ~domains ()) with
    Service.high_water;
    max_retries;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 5.0;
    breaker_threshold = 3;
    breaker_cooldown_ms = 60_000.0 (* effectively never half-opens within a test *);
    default_deadline_ms = 60_000.0;
  }

let with_service cfg ladder f =
  let svc = Service.create cfg ~circuit:micro ~ladder in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> f svc)

let direct_clean_run img =
  let backend = clear_backend () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  E.run seal_opts.Compiler.scales micro ~policy:(policy ()) img

let ok_tensor name (o : Service.outcome) =
  match o.Service.out_result with
  | Ok t -> t
  | Error (e, c) -> Alcotest.failf "%s: unexpected failure: %s" name (Herr.to_string (e, c))

(* --- (a) transient fault: retried to a bit-identical answer --------- *)

let test_transient_fault_retried () =
  with_service (quick_cfg ()) [ transient_fault_dep (); clean_dep ~label:"fallback" ~degraded:true () ]
    (fun svc ->
      let o = Service.infer svc ~seed:7 (image 1) in
      let got = ok_tensor "transient" o in
      Alcotest.(check string) "served by the primary rung" "primary" o.Service.out_served_by;
      Alcotest.(check bool) "not degraded" false o.Service.out_degraded;
      Alcotest.(check bool) "was retried" true (o.Service.out_attempts >= 2);
      let expected = direct_clean_run (image 1) in
      Alcotest.(check (float 0.0))
        "bit-identical to the clean run" 0.0
        (T.max_abs_diff (T.flatten expected) (T.flatten got));
      let s = Service.stats svc in
      Alcotest.(check bool) "retry counted" true (s.Service.s_retries >= 1);
      Alcotest.(check int) "no worker crashes" 0 s.Service.s_worker_crashes)

(* --- (b) persistent fault: breaker trips, degraded fallback serves -- *)

let test_persistent_fault_degrades () =
  let cfg = quick_cfg ~domains:1 ~max_retries:1 () in
  with_service cfg [ persistent_fault_dep (); clean_dep ~label:"fallback" ~degraded:true () ]
    (fun svc ->
      let outcomes = List.init 5 (fun i -> Service.infer svc ~seed:i (image i)) in
      List.iteri
        (fun i o ->
          let _ = ok_tensor (Printf.sprintf "persistent req %d" i) o in
          Alcotest.(check bool)
            (Printf.sprintf "req %d degraded flag" i)
            true o.Service.out_degraded;
          Alcotest.(check string)
            (Printf.sprintf "req %d served by fallback" i)
            "fallback" o.Service.out_served_by)
        outcomes;
      (* threshold 3: the first three requests each burn the retry budget on
         the primary (2 attempts) before falling back; from the fourth on
         the open breaker routes straight to the fallback (1 attempt) *)
      let early = List.nth outcomes 0 and late = List.nth outcomes 4 in
      Alcotest.(check int) "pre-trip attempts (primary retries + fallback)" 3 early.Service.out_attempts;
      Alcotest.(check int) "post-trip attempts (fallback only)" 1 late.Service.out_attempts;
      (match List.assoc "primary" (Service.breaker_states svc) with
      | Breaker.Open -> ()
      | st -> Alcotest.failf "primary breaker should be open, is %s" (Breaker.state_name st));
      let s = Service.stats svc in
      Alcotest.(check bool) "breaker trip recorded" true (s.Service.s_breaker_trips >= 1);
      Alcotest.(check int) "all five succeeded degraded" 5 s.Service.s_degraded)

(* breaker state machine in isolation, on a fake clock *)
let test_breaker_lifecycle () =
  let t = ref 0.0 in
  let b = Breaker.create ~threshold:2 ~cooldown:10.0 ~now:(fun () -> !t) () in
  Alcotest.(check bool) "closed allows" true (Breaker.allow b);
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "tripped open" true (Breaker.state b = Breaker.Open);
  Alcotest.(check bool) "open rejects" false (Breaker.allow b);
  t := 10.5;
  Alcotest.(check bool) "half-open admits a probe" true (Breaker.allow b);
  Alcotest.(check bool) "only one probe" false (Breaker.allow b);
  Breaker.record_failure b;
  Alcotest.(check bool) "failed probe re-opens" true (Breaker.state b = Breaker.Open);
  t := 21.0;
  Alcotest.(check bool) "probes again after cooldown" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "successful probe closes" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check int) "two trips recorded" 2 (Breaker.trip_count b)

(* --- (c) deadlines fire; the pool keeps serving -------------------- *)

let test_deadline_fires () =
  let slow_dep =
    dep ~label:"slow" (fun ~req_seed:_ ~attempt:_ ->
        Unix.sleepf 0.15;
        clear_backend ())
  in
  with_service (quick_cfg ~domains:1 ()) [ slow_dep ] (fun svc ->
      let late = Service.infer svc ~deadline_ms:20.0 ~seed:1 (image 2) in
      (match late.Service.out_result with
      | Error (Herr.Deadline_exceeded { budget_ms; _ }, _) ->
          Alcotest.(check (float 0.01)) "budget reported" 20.0 budget_ms
      | Ok _ -> Alcotest.fail "over-deadline request should not succeed"
      | Error (e, c) -> Alcotest.failf "wrong error: %s" (Herr.to_string (e, c)));
      (* the pool is not wedged: a later, generously-budgeted request lands *)
      let fine = Service.infer svc ~deadline_ms:10_000.0 ~seed:2 (image 3) in
      ignore (ok_tensor "post-deadline request" fine);
      let s = Service.stats svc in
      Alcotest.(check bool) "deadline expiry counted" true (s.Service.s_deadline >= 1);
      Alcotest.(check int) "no worker crashes" 0 s.Service.s_worker_crashes)

let test_deadline_expires_in_queue () =
  (* one blocked worker; the queued request's deadline passes before pickup,
     so the worker abandons it at dequeue without running the circuit *)
  let gate = Atomic.make false in
  let gated_dep =
    dep ~label:"gated" (fun ~req_seed:_ ~attempt:_ ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.002
        done;
        clear_backend ())
  in
  with_service (quick_cfg ~domains:1 ()) [ gated_dep ] (fun svc ->
      let blocker = Service.submit svc ~seed:1 (image 1) in
      let doomed = Service.submit svc ~deadline_ms:30.0 ~seed:2 (image 2) in
      let doomed_out = Service.await svc doomed in
      (match doomed_out.Service.out_result with
      | Error (Herr.Deadline_exceeded _, _) -> ()
      | _ -> Alcotest.fail "queued request should have expired");
      Atomic.set gate true;
      ignore (ok_tensor "blocker eventually lands" (Service.await svc blocker));
      Alcotest.(check int) "no crashes" 0 (Service.stats svc).Service.s_worker_crashes)

(* --- (d) queue overflow: typed Overloaded, zero crashes ------------- *)

let test_overload_sheds () =
  let gate = Atomic.make false in
  let gated_dep =
    dep ~label:"gated" (fun ~req_seed:_ ~attempt:_ ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.002
        done;
        clear_backend ())
  in
  let cfg = quick_cfg ~domains:1 ~high_water:2 () in
  with_service cfg [ gated_dep ] (fun svc ->
      let first = Service.submit svc ~seed:0 (image 0) in
      (* wait until the single (gated) worker has dequeued the first job, so
         the queue depth is deterministic for the rest of the burst *)
      let rec spin n =
        if (Service.stats svc).Service.s_queue.Squeue.q_popped < 1 then
          if n > 5000 then Alcotest.fail "worker never picked up first job"
          else begin
            Unix.sleepf 0.002;
            spin (n + 1)
          end
      in
      spin 0;
      (* 1 in flight + 2 queued = saturation; the rest of the burst must shed *)
      let queued = List.init 2 (fun i -> Service.submit svc ~seed:(1 + i) (image (1 + i))) in
      let extra = List.init 4 (fun i -> Service.submit svc ~seed:(10 + i) (image i)) in
      Atomic.set gate true;
      let shed =
        List.filter
          (fun tk ->
            match (Service.await svc tk).Service.out_result with
            | Error (Herr.Overloaded { queue_depth; high_water }, _) ->
                Alcotest.(check int) "high-water reported" 2 high_water;
                Alcotest.(check bool) "depth at/above mark" true (queue_depth >= high_water);
                true
            | _ -> false)
          extra
      in
      Alcotest.(check int) "entire burst shed" 4 (List.length shed);
      List.iter
        (fun tk -> ignore (ok_tensor "admitted request" (Service.await svc tk)))
        (first :: queued);
      let s = Service.stats svc in
      Alcotest.(check bool) "shed counted" true (s.Service.s_shed >= 4);
      Alcotest.(check int) "zero worker crashes" 0 s.Service.s_worker_crashes)

(* --- worker crash containment --------------------------------------- *)

let test_worker_crash_is_typed_and_contained () =
  let crashing_dep =
    dep ~label:"buggy" (fun ~req_seed:_ ~attempt:_ -> failwith "segfault in backend glue")
  in
  with_service (quick_cfg ~domains:1 ())
    [ crashing_dep; clean_dep ~label:"fallback" ~degraded:true () ]
    (fun svc ->
      let o = Service.infer svc ~seed:3 (image 4) in
      ignore (ok_tensor "fallback covers the crash" o);
      Alcotest.(check bool) "degraded response" true o.Service.out_degraded;
      let s = Service.stats svc in
      Alcotest.(check bool) "crash converted and counted" true (s.Service.s_worker_crashes >= 1);
      (* and with no fallback, the typed Worker_crashed surfaces *)
      ());
  with_service (quick_cfg ~domains:1 ()) [ crashing_dep ] (fun svc ->
      let o = Service.infer svc ~seed:4 (image 4) in
      match o.Service.out_result with
      | Error (Herr.Worker_crashed { reason; _ }, _) ->
          Alcotest.(check bool) "reason captured" true (String.length reason > 0)
      | _ -> Alcotest.fail "expected a typed Worker_crashed failure")

(* --- (e) concurrent == sequential, bit for bit ---------------------- *)

let test_concurrent_matches_sequential () =
  let n = 8 in
  let run ~domains =
    with_service (quick_cfg ~domains ()) [ clean_dep () ] (fun svc ->
        let tickets = List.init n (fun i -> Service.submit svc ~seed:i (image i)) in
        List.mapi (fun i tk -> ok_tensor (Printf.sprintf "req %d" i) (Service.await svc tk)) tickets)
  in
  let concurrent = run ~domains:4 in
  let sequential = run ~domains:1 in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "request %d identical under 4 domains vs 1" i)
        0.0
        (T.max_abs_diff (T.flatten a) (T.flatten b));
      (* and identical to a bare executor run outside the service *)
      Alcotest.(check (float 0.0))
        (Printf.sprintf "request %d identical to direct run" i)
        0.0
        (T.max_abs_diff (T.flatten a) (T.flatten (direct_clean_run (image i)))))
    (List.combine concurrent sequential)

(* --- queue unit semantics ------------------------------------------- *)

let test_queue_shed_and_close () =
  let q = Squeue.create ~high_water:2 () in
  Alcotest.(check bool) "push 1" true (Squeue.push q 1 = Ok ());
  Alcotest.(check bool) "push 2" true (Squeue.push q 2 = Ok ());
  (match Squeue.push q 3 with
  | Error depth -> Alcotest.(check int) "shed at depth" 2 depth
  | Ok () -> Alcotest.fail "push above high-water accepted");
  Alcotest.(check (option int)) "pop 1" (Some 1) (Squeue.pop q);
  Alcotest.(check bool) "push after drain" true (Squeue.push q 3 = Ok ());
  Squeue.close q;
  Alcotest.(check bool) "push after close shed" true (Result.is_error (Squeue.push q 4));
  Alcotest.(check (option int)) "drains after close" (Some 2) (Squeue.pop q);
  Alcotest.(check (option int)) "drains after close (2)" (Some 3) (Squeue.pop q);
  Alcotest.(check (option int)) "closed and drained" None (Squeue.pop q);
  let s = Squeue.stats q in
  Alcotest.(check int) "shed stat" 2 s.Squeue.q_shed;
  Alcotest.(check int) "max depth stat" 2 s.Squeue.q_max_depth

(* --- breaker + service state survive a process restart -------------- *)

(* A snapshot taken mid-cooldown restores onto a fresh breaker whose
   monotonic clock has an unrelated origin (a new process): the remaining
   cooldown — not the absolute trip time — is what carries over. *)
let test_breaker_snapshot_restore () =
  let t = ref 0.0 in
  let b = Breaker.create ~threshold:2 ~cooldown:10.0 ~now:(fun () -> !t) () in
  Breaker.record_failure b;
  Breaker.record_failure b;
  Alcotest.(check bool) "tripped" true (Breaker.state b = Breaker.Open);
  t := 4.0;
  let sn = Breaker.snapshot b in
  Alcotest.(check (float 1e-9)) "remaining cooldown captured" 6.0 sn.Breaker.sn_cooldown_remaining;
  let t2 = ref 1000.0 in
  let b2 = Breaker.create ~threshold:2 ~cooldown:10.0 ~now:(fun () -> !t2) () in
  Breaker.restore b2 sn;
  Alcotest.(check bool) "restored open" true (Breaker.state b2 = Breaker.Open);
  Alcotest.(check bool) "still cooling down" false (Breaker.allow b2);
  t2 := 1005.9;
  Alcotest.(check bool) "remaining cooldown honoured" false (Breaker.allow b2);
  t2 := 1006.1;
  Alcotest.(check bool) "probes once remaining elapses" true (Breaker.allow b2);
  Alcotest.(check int) "trip count carried over" 1 (Breaker.trip_count b2);
  (* a snapshot of a half-open breaker restores as Open with the cooldown
     already elapsed: the new process probes immediately *)
  let sn_half = Breaker.snapshot b2 in
  Alcotest.(check bool) "half-open captured" true (sn_half.Breaker.sn_state = Breaker.Half_open);
  let t3 = ref 0.0 in
  let b3 = Breaker.create ~threshold:2 ~cooldown:10.0 ~now:(fun () -> !t3) () in
  Breaker.restore b3 sn_half;
  Alcotest.(check bool) "restored half-open probes immediately" true (Breaker.allow b3)

let test_service_state_roundtrip () =
  let cfg = quick_cfg ~domains:1 ~max_retries:1 () in
  let ladder () = [ persistent_fault_dep (); clean_dep ~label:"fallback" ~degraded:true () ] in
  (* first process: trip the primary, persist on shutdown *)
  let state =
    with_service cfg (ladder ()) (fun svc ->
        for i = 0 to 3 do
          ignore (Service.infer svc ~seed:i (image i))
        done;
        Alcotest.(check bool) "primary tripped before shutdown" true
          (List.assoc "primary" (Service.breaker_states svc) = Breaker.Open);
        Service.state_to_string svc)
  in
  (* second process: same ladder shape, state restored *)
  with_service cfg (ladder ()) (fun svc2 ->
      (match Service.restore_state svc2 state with
      | Ok n -> Alcotest.(check int) "both rungs restored" 2 n
      | Error e -> Alcotest.failf "restore failed: %s" (Herr.error_name e));
      Alcotest.(check bool) "primary still open after restart" true
        (List.assoc "primary" (Service.breaker_states svc2) = Breaker.Open);
      (* the restored-open breaker routes straight to the fallback: no
         doomed primary attempt is repeated after the restart *)
      let o = Service.infer svc2 ~seed:9 (image 9) in
      ignore (ok_tensor "post-restore request" o);
      Alcotest.(check string) "served degraded" "fallback" o.Service.out_served_by;
      Alcotest.(check int) "no primary attempt" 1 o.Service.out_attempts);
  (* unknown rung labels are skipped, not fatal (ladder shape may change) *)
  with_service cfg [ clean_dep ~label:"renamed" () ] (fun svc3 ->
      match Service.restore_state svc3 state with
      | Ok n -> Alcotest.(check int) "no matching rungs" 0 n
      | Error e -> Alcotest.failf "shape change should not fail: %s" (Herr.error_name e));
  (* a damaged payload is a typed report, not a crash *)
  let mangled = Bytes.of_string state in
  let last = Bytes.length mangled - 1 in
  Bytes.set mangled last (Char.chr (Char.code (Bytes.get mangled last) lxor 1));
  with_service cfg (ladder ()) (fun svc4 ->
      match Service.restore_state svc4 (Bytes.to_string mangled) with
      | Ok _ -> Alcotest.fail "corrupt state accepted"
      | Error (Herr.Corrupt_bundle _) -> ()
      | Error e -> Alcotest.failf "wrong error class: %s" (Herr.error_name e))

(* --- half-open probe discipline (DESIGN.md §12 / ISSUE 6 satellite) ----
   While [Half_open], at most one probe may be outstanding — two concurrent
   admissions would double-tap a deployment that just demonstrated failure.
   Hammered from 2 domains racing on the Open->Half_open transition. *)

let test_breaker_half_open_single_probe_2domains () =
  for _round = 1 to 100 do
    let t = ref 0.0 in
    let b = Breaker.create ~threshold:1 ~cooldown:1.0 ~now:(fun () -> !t) () in
    Breaker.record_failure b;
    Alcotest.(check bool) "tripped" true (Breaker.state b = Breaker.Open);
    t := 2.0 (* past cooldown: the next allow() transitions to Half_open *);
    let ready = Atomic.make 0 in
    let admitted = Atomic.make 0 in
    let racer () =
      Atomic.incr ready;
      while Atomic.get ready < 2 do
        Domain.cpu_relax ()
      done;
      if Breaker.allow b then Atomic.incr admitted
    in
    let d1 = Domain.spawn racer in
    let d2 = Domain.spawn racer in
    Domain.join d1;
    Domain.join d2;
    Alcotest.(check int) "exactly one probe admitted" 1 (Atomic.get admitted);
    Alcotest.(check bool) "loser observes Half_open" true (Breaker.state b = Breaker.Half_open);
    Alcotest.(check bool) "budget spent until a verdict" false (Breaker.allow b)
  done

let test_breaker_probe_release () =
  let t = ref 0.0 in
  let b = Breaker.create ~threshold:1 ~cooldown:1.0 ~now:(fun () -> !t) () in
  Breaker.record_failure b;
  t := 2.0;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b);
  Alcotest.(check bool) "second refused" false (Breaker.allow b);
  (* the probe reached no verdict (its request's deadline fired before any
     attempt finished): without release the rung could never be probed again *)
  Breaker.release b;
  Alcotest.(check bool) "slot returned, next probe admitted" true (Breaker.allow b);
  Breaker.record_success b;
  Alcotest.(check bool) "healthy probe closes" true (Breaker.state b = Breaker.Closed);
  (* release outside Half_open is a no-op, not an underflow *)
  Breaker.release b;
  Alcotest.(check bool) "closed still allows" true (Breaker.allow b)

(* --- graceful drain (SIGTERM protocol, automated) ----------------------
   The four assertions of the shutdown contract, previously only exercised
   end-to-end by scripts: in-flight requests complete, new submissions are
   refused with a typed [Overloaded], the learned state persists, and drain
   reports completion (the worker's cue to exit 0). *)

let test_graceful_drain () =
  let gate = Atomic.make false in
  let gated_dep =
    dep (fun ~req_seed:_ ~attempt:_ ->
        while not (Atomic.get gate) do
          Unix.sleepf 0.001
        done;
        clear_backend ())
  in
  let cfg = quick_cfg ~domains:2 () in
  with_service cfg [ gated_dep ] (fun svc ->
      let t1 = Service.submit svc ~seed:1 (image 1) in
      let t2 = Service.submit svc ~seed:2 (image 2) in
      Alcotest.(check int) "both admitted" 2 (Service.inflight svc);
      Service.begin_drain svc;
      Alcotest.(check bool) "draining" true (Service.is_draining svc);
      (* (2) new admissions are refused with the typed shed vocabulary *)
      let refused = Service.infer svc ~seed:3 (image 3) in
      (match refused.Service.out_result with
      | Error (Herr.Overloaded _, _) -> ()
      | Ok _ -> Alcotest.fail "admission during drain"
      | Error (e, _) -> Alcotest.failf "wrong refusal class: %s" (Herr.error_name e));
      (* with the gate still down nothing can finish: drain must time out *)
      Alcotest.(check bool) "drain honest about live work" false
        (Service.drain svc ~timeout_ms:50.0);
      Atomic.set gate true;
      (* (4) ... and report completion once the in-flight work lands *)
      Alcotest.(check bool) "drain completes" true (Service.drain svc ~timeout_ms:10_000.0);
      Alcotest.(check int) "nothing in flight" 0 (Service.inflight svc);
      (* (1) the admitted requests ran to real outcomes *)
      ignore (ok_tensor "in-flight #1 completed" (Service.await svc t1));
      ignore (ok_tensor "in-flight #2 completed" (Service.await svc t2));
      (* (3) state persists at exactly this point, as the worker would *)
      let state = Service.state_to_string svc in
      with_service cfg [ clean_dep () ] (fun svc2 ->
          match Service.restore_state svc2 state with
          | Ok n -> Alcotest.(check int) "state restorable" 1 n
          | Error e -> Alcotest.failf "persisted state rejected: %s" (Herr.error_name e)))

(* --- cooperative cancellation (DESIGN.md §13) ------------------------
   A mid-circuit cancel must free the worker at the next node boundary with
   a typed [Cancelled] carrying the node id — and the pool must keep
   serving. The backend pauses inside its first multiply so the test can
   cancel while the executor is provably mid-circuit, then opens the gate:
   the op finishes, and the *next node's* cancel poll observes the trip. *)

let test_midcircuit_cancel_frees_worker () =
  let entered = Atomic.make false and gate = Atomic.make false in
  let pausing_backend () : Hisa.t =
    let module H = (val clear_backend () : Hisa.S) in
    (module struct
      include H

      let pause () =
        if not (Atomic.get entered) then begin
          Atomic.set entered true;
          while not (Atomic.get gate) do
            Unix.sleepf 0.001
          done
        end

      let mul a b =
        pause ();
        H.mul a b

      let mul_plain c p =
        pause ();
        H.mul_plain c p

      let add a b =
        pause ();
        H.add a b
    end : Hisa.S)
  in
  let pausable = dep ~label:"pausable" (fun ~req_seed:_ ~attempt:_ -> pausing_backend ()) in
  with_service (quick_cfg ~domains:1 ()) [ pausable ] (fun svc ->
      let tk = Service.submit svc ~seed:1 (image 1) in
      let rec spin n =
        if not (Atomic.get entered) then
          if n > 5000 then Alcotest.fail "worker never entered the circuit"
          else begin
            Unix.sleepf 0.002;
            spin (n + 1)
          end
      in
      spin 0;
      (* the worker is mid-circuit: cancel, then let the in-flight op land *)
      Service.cancel tk ~reason:"caller lost interest";
      Atomic.set gate true;
      let o = Service.await svc tk in
      (match o.Service.out_result with
      | Error (Herr.Cancelled { node_id; reason }, _) ->
          Alcotest.(check bool) "node id reported" true (node_id <> None);
          Alcotest.(check string) "explicit reason carried" "caller lost interest" reason
      | Ok _ -> Alcotest.fail "cancelled request must not succeed"
      | Error (e, c) -> Alcotest.failf "wrong error class: %s" (Herr.to_string (e, c)));
      (* the freed worker (the only one) serves the next request cleanly *)
      let fine = Service.infer svc ~seed:2 (image 2) in
      ignore (ok_tensor "post-cancel request" fine);
      let s = Service.stats svc in
      Alcotest.(check int) "cancel counted" 1 s.Service.s_cancelled;
      Alcotest.(check int) "no worker crashes" 0 s.Service.s_worker_crashes)

(* --- admission control (DESIGN.md §13) -------------------------------
   A deadline no rung's predicted cost can fit is refused at submit: typed
   [Deadline_exceeded] in O(ladder) time, no backend construction, no
   queue push — the request never occupies a domain. *)

let test_admission_control_rejects_unfittable () =
  let invoked = Atomic.make false in
  let pricey =
    dep ~label:"pricey" ~cost_ms:10_000.0 (fun ~req_seed:_ ~attempt:_ ->
        Atomic.set invoked true;
        clear_backend ())
  in
  with_service (quick_cfg ~domains:1 ()) [ pricey ] (fun svc ->
      let o = Service.infer svc ~deadline_ms:5.0 ~seed:1 (image 1) in
      (match o.Service.out_result with
      | Error (Herr.Deadline_exceeded { budget_ms; elapsed_ms }, _) ->
          Alcotest.(check (float 0.01)) "budget echoed" 5.0 budget_ms;
          Alcotest.(check (float 0.001)) "refused with zero work" 0.0 elapsed_ms
      | Ok _ -> Alcotest.fail "unfittable deadline must be refused"
      | Error (e, c) -> Alcotest.failf "wrong error class: %s" (Herr.to_string (e, c)));
      Alcotest.(check bool) "backend never built" false (Atomic.get invoked);
      let s = Service.stats svc in
      Alcotest.(check int) "admission reject counted" 1 s.Service.s_admission_rejects;
      Alcotest.(check int) "never enqueued: no domain occupied" 0
        s.Service.s_queue.Squeue.q_pushed;
      (* the same ladder serves a request whose budget the cost model fits *)
      let fine = Service.infer svc ~deadline_ms:60_000.0 ~seed:2 (image 2) in
      ignore (ok_tensor "fitting request" fine);
      Alcotest.(check bool) "pricey rung ran this time" true (Atomic.get invoked))

(* --- deadline-aware rung selection -----------------------------------
   With per-rung cost predictions, a tight budget routes straight to the
   cheapest rung that fits — the unfit primary is skipped without running
   (and without consuming a breaker probe slot). *)

let test_deadline_aware_rung_selection () =
  let primary_ran = Atomic.make false in
  let pricey =
    dep ~label:"pricey" ~cost_ms:50_000.0 (fun ~req_seed:_ ~attempt:_ ->
        Atomic.set primary_ran true;
        clear_backend ())
  in
  let cheap =
    dep ~label:"cheap" ~degraded:true ~cost_ms:0.0 (fun ~req_seed:_ ~attempt:_ ->
        clear_backend ())
  in
  with_service (quick_cfg ~domains:1 ()) [ pricey; cheap ] (fun svc ->
      let o = Service.infer svc ~deadline_ms:2_000.0 ~seed:3 (image 3) in
      let got = ok_tensor "tight-budget request" o in
      Alcotest.(check string) "served by the fitting rung" "cheap" o.Service.out_served_by;
      Alcotest.(check bool) "flagged degraded" true o.Service.out_degraded;
      Alcotest.(check bool) "unfit primary never ran" false (Atomic.get primary_ran);
      let expected = direct_clean_run (image 3) in
      Alcotest.(check (float 0.0))
        "bit-identical answer" 0.0
        (T.max_abs_diff (T.flatten expected) (T.flatten got));
      Alcotest.(check int) "skipping a rung is not an admission reject" 0
        (Service.stats svc).Service.s_admission_rejects;
      (* with budget to spare, fidelity wins: the primary serves again *)
      let o2 = Service.infer svc ~deadline_ms:600_000.0 ~seed:4 (image 4) in
      ignore (ok_tensor "generous-budget request" o2);
      Alcotest.(check string) "primary serves when it fits" "pricey" o2.Service.out_served_by)

(* --- retry backoff clamped to the remaining budget --------------------
   On a manual clock (only backoff sleeps advance it; the 1 ms await polls
   do not), a persistently-failing rung with a 100 ms budget and a 40 ms
   backoff base must stop retrying the moment the budget dies during a
   sleep: 2 attempts, the clock parked exactly at the deadline, and a typed
   [Deadline_exceeded] — instead of burning the full 5-retry schedule. *)

let test_backoff_clamped_to_budget () =
  let clock = Atomic.make 0.0 in
  let cfg =
    {
      (quick_cfg ~domains:1 ~max_retries:5 ()) with
      Service.backoff_base_ms = 40.0;
      backoff_cap_ms = 1000.0;
      backoff_jitter = 0.0;
      now = (fun () -> Atomic.get clock);
      sleep_ms =
        (fun ms ->
          if ms >= 2.0 then begin
            (* a backoff sleep: advance the virtual clock *)
            let rec cas () =
              let old = Atomic.get clock in
              if not (Atomic.compare_and_set clock old (old +. (ms /. 1000.0))) then cas ()
            in
            cas ()
          end
          else (* an await/drain poll: real pause, no virtual time *)
            Unix.sleepf 0.0005);
    }
  in
  with_service cfg [ persistent_fault_dep () ] (fun svc ->
      let o = Service.infer svc ~deadline_ms:100.0 ~seed:5 (image 5) in
      (match o.Service.out_result with
      | Error (Herr.Deadline_exceeded { budget_ms; elapsed_ms }, _) ->
          Alcotest.(check (float 0.01)) "budget echoed" 100.0 budget_ms;
          Alcotest.(check (float 0.01)) "failed fast at the budget, not after" 100.0 elapsed_ms
      | Ok _ -> Alcotest.fail "persistently-failing rung cannot succeed"
      | Error (e, c) -> Alcotest.failf "wrong error class: %s" (Herr.to_string (e, c)));
      (* 40 ms + (80 ms clamped to 60 ms) = exactly the budget; unclamped the
         schedule would have slept 1240 ms of virtual time over 6 attempts *)
      Alcotest.(check (float 1e-6)) "clock parked at the deadline" 0.1 (Atomic.get clock);
      Alcotest.(check int) "retries stopped early" 2 o.Service.out_attempts)

let suite =
  [
    ( "serve",
      [
        Alcotest.test_case "queue: shed + close semantics" `Quick test_queue_shed_and_close;
        Alcotest.test_case "breaker: trip / half-open / close" `Quick test_breaker_lifecycle;
        Alcotest.test_case "(a) transient fault retried, bit-identical" `Quick
          test_transient_fault_retried;
        Alcotest.test_case "(b) persistent fault trips breaker, degraded serve" `Quick
          test_persistent_fault_degrades;
        Alcotest.test_case "(c) deadline fires, pool keeps serving" `Quick test_deadline_fires;
        Alcotest.test_case "(c') deadline expires while queued" `Quick
          test_deadline_expires_in_queue;
        Alcotest.test_case "(d) overload sheds with typed Overloaded" `Quick test_overload_sheds;
        Alcotest.test_case "worker crash typed + contained" `Quick
          test_worker_crash_is_typed_and_contained;
        Alcotest.test_case "(e) concurrent bit-identical to sequential" `Quick
          test_concurrent_matches_sequential;
        Alcotest.test_case "breaker snapshot/restore across clock origins" `Quick
          test_breaker_snapshot_restore;
        Alcotest.test_case "service state persists across restart" `Quick
          test_service_state_roundtrip;
        Alcotest.test_case "breaker: half-open admits exactly one probe (2 domains)" `Quick
          test_breaker_half_open_single_probe_2domains;
        Alcotest.test_case "breaker: abandoned probe releases its slot" `Quick
          test_breaker_probe_release;
        Alcotest.test_case "graceful drain: finish, refuse typed, persist" `Quick
          test_graceful_drain;
        Alcotest.test_case "cancel mid-circuit frees the worker, typed + node id" `Quick
          test_midcircuit_cancel_frees_worker;
        Alcotest.test_case "admission control refuses unfittable deadlines" `Quick
          test_admission_control_rejects_unfittable;
        Alcotest.test_case "deadline-aware rung selection skips unfit rungs" `Quick
          test_deadline_aware_rung_selection;
        Alcotest.test_case "retry backoff clamped to remaining budget" `Quick
          test_backoff_clamped_to_budget;
      ] );
  ]
