(* Serialization tests: primitives roundtrip, ciphertexts survive the wire,
   and corrupt payloads are rejected — plus a full client/server loopback in
   the Figure 3 style (the "server" sees only bytes and public keys). *)

open Chet_crypto
module B = Chet_bigint.Bigint

let test_primitives_roundtrip () =
  let w = Serial.writer () in
  Serial.write_int w 42;
  Serial.write_int w (-7);
  Serial.write_int w max_int;
  Serial.write_float w 3.14159;
  Serial.write_string w "hello";
  Serial.write_int_array w [| 1; 2; 3 |];
  Serial.write_bigint w (B.pow2 100);
  Serial.write_bigint w (B.neg (B.of_int 55));
  let r = Serial.reader (Serial.contents w) in
  Alcotest.(check int) "int" 42 (Serial.read_int r);
  Alcotest.(check int) "neg int" (-7) (Serial.read_int r);
  Alcotest.(check int) "max int" max_int (Serial.read_int r);
  Alcotest.(check (float 1e-12)) "float" 3.14159 (Serial.read_float r);
  Alcotest.(check string) "string" "hello" (Serial.read_string r);
  Alcotest.(check (array int)) "array" [| 1; 2; 3 |] (Serial.read_int_array r);
  Alcotest.(check bool) "bigint" true (B.equal (B.pow2 100) (Serial.read_bigint r));
  Alcotest.(check bool) "neg bigint" true (B.equal (B.of_int (-55)) (Serial.read_bigint r));
  Alcotest.(check bool) "eof" true (Serial.reader_eof r)

let test_truncation_rejected () =
  let w = Serial.writer () in
  Serial.write_int w 1;
  let full = Serial.contents w in
  let r = Serial.reader (String.sub full 0 4) in
  Alcotest.check_raises "truncated" (Serial.Corrupt "truncated payload") (fun () ->
      ignore (Serial.read_int r))

let test_bad_lengths_rejected () =
  let w = Serial.writer () in
  Serial.write_int w max_int (* absurd array length *);
  let r = Serial.reader (Serial.contents w) in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Serial.read_int_array r);
       false
     with Serial.Corrupt _ -> true)

(* --- RNS-CKKS ciphertext roundtrip + loopback protocol --- *)

let params = Rns_ckks.default_params ~n:128 ~bits:30 ~num_coeff_primes:3 ()
let ctx = Rns_ckks.make_context params
let rq_ctx_of_context () =
  (* reconstruct an Rq context compatible with the scheme's (same primes) *)
  ctx

let test_rns_ciphertext_roundtrip () =
  ignore (rq_ctx_of_context ());
  let rng = Sampling.create ~seed:4 in
  let sk, keys = Rns_ckks.keygen ctx rng in
  let v = Array.init (Rns_ckks.slot_count ctx) (fun i -> 0.01 *. float_of_int i) in
  let ct =
    Rns_ckks.encrypt ctx rng keys.Rns_ckks.public
      (Rns_ckks.encode_real ctx ~level:3 ~scale:1073741824.0 v)
  in
  let w = Serial.writer () in
  let rq = Rns_ckks.rq_ctx ctx in
  Serial.write_rns_ciphertext w rq ct;
  let bytes = Serial.contents w in
  let ct' = Serial.read_rns_ciphertext (Serial.reader bytes) rq in
  Alcotest.(check int) "level" ct.Rns_ckks.level ct'.Rns_ckks.level;
  (* decrypting the deserialised ciphertext recovers the message *)
  let got = Rns_ckks.decode ctx (Rns_ckks.decrypt ctx sk ct') in
  let diff = Complexv.max_abs_diff (Complexv.of_real v) got in
  Alcotest.(check bool) "decrypts" true (diff < 5e-3)

let test_rns_corrupt_tag () =
  let w = Serial.writer () in
  Serial.write_tag w "JUNK";
  Alcotest.(check bool) "bad tag" true
    (try
       ignore (Serial.read_rns_ciphertext (Serial.reader (Serial.contents w)) (Rns_ckks.rq_ctx ctx));
       false
     with Serial.Corrupt _ -> true)

let test_big_ciphertext_roundtrip () =
  let params = Big_ckks.default_params ~n:32 ~log_fresh:120 () in
  let bctx = Big_ckks.make_context params in
  let rng = Sampling.create ~seed:5 in
  let sk, keys = Big_ckks.keygen bctx rng in
  let v = Array.init (Big_ckks.slot_count bctx) (fun i -> 0.1 *. float_of_int i) in
  let ct =
    Big_ckks.encrypt bctx rng keys.Big_ckks.public
      (Big_ckks.encode_real bctx ~logq:120 ~scale:1073741824.0 v)
  in
  let w = Serial.writer () in
  Serial.write_big_ciphertext w ct;
  let ct' = Serial.read_big_ciphertext (Serial.reader (Serial.contents w)) in
  let got = Big_ckks.decode bctx (Big_ckks.decrypt bctx sk ct') in
  Alcotest.(check bool) "decrypts" true (Complexv.max_abs_diff (Complexv.of_real v) got < 5e-3)

let test_loopback_protocol () =
  (* client encrypts; "server" (no secret key) squares the payload from raw
     bytes and sends bytes back; client decrypts *)
  let rng = Sampling.create ~seed:6 in
  let sk, keys = Rns_ckks.keygen ctx rng in
  let rq = Rns_ckks.rq_ctx ctx in
  let v = Array.init (Rns_ckks.slot_count ctx) (fun i -> 0.5 +. (0.01 *. float_of_int (i mod 10))) in
  (* client -> server *)
  let w = Serial.writer () in
  Serial.write_rns_ciphertext w rq
    (Rns_ckks.encrypt ctx rng keys.Rns_ckks.public
       (Rns_ckks.encode_real ctx ~level:3 ~scale:1073741824.0 v));
  let request = Serial.contents w in
  (* server: deserialise, compute on ciphertext, serialise *)
  let server bytes =
    let ct = Serial.read_rns_ciphertext (Serial.reader bytes) rq in
    let squared = Rns_ckks.mul ctx keys ct ct in
    let w = Serial.writer () in
    Serial.write_rns_ciphertext w rq squared;
    Serial.contents w
  in
  let response = server request in
  (* client decrypts the response *)
  let ct = Serial.read_rns_ciphertext (Serial.reader response) rq in
  let got = Rns_ckks.decode ctx (Rns_ckks.decrypt ctx sk ct) in
  let expected = Complexv.of_real (Array.map (fun x -> x *. x) v) in
  Alcotest.(check bool) "squared through the wire" true (Complexv.max_abs_diff expected got < 1e-2)

(* --- integrity fuzzing: the framed format must reject EVERY mangled
   payload with [Serial.Corrupt], never crash or silently parse garbage --- *)

let sample_ct_bytes () =
  let rng = Sampling.create ~seed:8 in
  let _sk, keys = Rns_ckks.keygen ctx rng in
  let rq = Rns_ckks.rq_ctx ctx in
  let v = Array.init (Rns_ckks.slot_count ctx) (fun i -> 0.01 *. float_of_int i) in
  let w = Serial.writer () in
  Serial.write_rns_ciphertext w rq
    (Rns_ckks.encrypt ctx rng keys.Rns_ckks.public
       (Rns_ckks.encode_real ctx ~level:3 ~scale:1073741824.0 v));
  (Serial.contents w, rq)

let test_fuzz_truncation_every_offset () =
  (* every strict prefix of a framed ciphertext must raise Corrupt *)
  let full, rq = sample_ct_bytes () in
  for cut = 0 to String.length full - 1 do
    let r = Serial.reader (String.sub full 0 cut) in
    match Serial.read_rns_ciphertext r rq with
    | _ -> Alcotest.failf "truncation at offset %d accepted" cut
    | exception Serial.Corrupt _ -> ()
  done

let test_fuzz_bit_flips () =
  (* seeded single-bit flips anywhere in the frame must raise Corrupt *)
  let full, rq = sample_ct_bytes () in
  let nbits = String.length full * 8 in
  let state = ref 0x2c9277b5 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for _trial = 1 to 256 do
    let bit = next () mod nbits in
    let bytes = Bytes.of_string full in
    let i = bit / 8 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit mod 8))));
    let r = Serial.reader (Bytes.to_string bytes) in
    match Serial.read_rns_ciphertext r rq with
    | _ -> Alcotest.failf "bit flip at %d accepted" bit
    | exception Serial.Corrupt _ -> ()
  done

let test_fuzz_big_ciphertext () =
  (* same guarantees for the power-of-two frame format *)
  let params = Big_ckks.default_params ~n:32 ~log_fresh:120 () in
  let bctx = Big_ckks.make_context params in
  let rng = Sampling.create ~seed:9 in
  let _sk, keys = Big_ckks.keygen bctx rng in
  let v = Array.init (Big_ckks.slot_count bctx) (fun i -> 0.1 *. float_of_int i) in
  let w = Serial.writer () in
  Serial.write_big_ciphertext w
    (Big_ckks.encrypt bctx rng keys.Big_ckks.public
       (Big_ckks.encode_real bctx ~logq:120 ~scale:1073741824.0 v));
  let full = Serial.contents w in
  for cut = 0 to String.length full - 1 do
    let r = Serial.reader (String.sub full 0 cut) in
    match Serial.read_big_ciphertext r with
    | _ -> Alcotest.failf "truncation at offset %d accepted" cut
    | exception Serial.Corrupt _ -> ()
  done;
  let state = ref 0x1f123bb5 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for _trial = 1 to 256 do
    let bit = next () mod (String.length full * 8) in
    let bytes = Bytes.of_string full in
    let i = bit / 8 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit mod 8))));
    match Serial.read_big_ciphertext (Serial.reader (Bytes.to_string bytes)) with
    | _ -> Alcotest.failf "bit flip at %d accepted" bit
    | exception Serial.Corrupt _ -> ()
  done

(* --- key-bundle (RKY2: public + relin + Galois/rotation keys) fuzz ---
   the rotation-key frames ride the same integrity envelope as ciphertexts;
   every mangling must surface as a typed [Serial.Corrupt] whose message
   names the frame tag (the Corrupt_ciphertext-family contract: the caller
   can tell *which* wire object — here the key bundle — was mangled) *)

let sample_key_bytes () =
  let rng = Sampling.create ~seed:11 in
  let sk, keys = Rns_ckks.keygen ctx rng in
  (* two Galois keys so the rotation table is non-trivially framed *)
  Rns_ckks.add_rotation_key ctx rng sk keys 1;
  Rns_ckks.add_rotation_key ctx rng sk keys 4;
  let rq = Rns_ckks.rq_ctx ctx in
  let w = Serial.writer () in
  Serial.write_rns_keys w rq keys;
  (Serial.contents w, rq)

let check_corrupt_carries_tag what msg =
  let contains s sub =
    let n = String.length s and k = String.length sub in
    let rec scan i = i + k <= n && (String.sub s i k = sub || scan (i + 1)) in
    scan 0
  in
  if not (contains msg "RKY2") then
    Alcotest.failf "%s: Corrupt message %S does not carry the RKY2 frame tag" what msg

let test_fuzz_keys_truncation_every_offset () =
  let full, rq = sample_key_bytes () in
  for cut = 0 to String.length full - 1 do
    let r = Serial.reader (String.sub full 0 cut) in
    match Serial.read_rns_keys r rq with
    | _ -> Alcotest.failf "key-bundle truncation at offset %d accepted" cut
    | exception Serial.Corrupt msg ->
        check_corrupt_carries_tag (Printf.sprintf "truncation at %d" cut) msg
  done

let test_fuzz_keys_bit_flips () =
  let full, rq = sample_key_bytes () in
  let nbits = String.length full * 8 in
  let state = ref 0x3d8f2a11 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for _trial = 1 to 256 do
    let bit = next () mod nbits in
    let bytes = Bytes.of_string full in
    let i = bit / 8 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit mod 8))));
    let r = Serial.reader (Bytes.to_string bytes) in
    match Serial.read_rns_keys r rq with
    | _ -> Alcotest.failf "key-bundle bit flip at %d accepted" bit
    | exception Serial.Corrupt msg ->
        check_corrupt_carries_tag (Printf.sprintf "bit flip at %d" bit) msg
  done

let test_ciphertext_corrupt_carries_tag () =
  (* the ciphertext frame family reports its own tag the same way *)
  let full, rq = sample_ct_bytes () in
  let r = Serial.reader (String.sub full 0 (String.length full - 1)) in
  (match Serial.read_rns_ciphertext r rq with
  | _ -> Alcotest.fail "truncated RCT2 accepted"
  | exception Serial.Corrupt msg ->
      if not (String.length msg >= 4 && String.sub msg 0 4 = "RCT2") then
        Alcotest.failf "RCT2 Corrupt message %S does not carry its frame tag" msg)

let test_trailing_garbage_in_frame_rejected () =
  (* a frame whose parser does not consume the whole body is corrupt: build
     one by hand with extra bytes inside the checksummed region *)
  let w = Serial.writer () in
  Serial.write_frame w "BCT2" (fun b ->
      Serial.write_int b 120;
      Serial.write_float b 1024.0;
      Serial.write_int b 0 (* empty c0 *);
      Serial.write_int b 0 (* empty c1 *);
      Serial.write_int b 99 (* trailing garbage *));
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Serial.read_big_ciphertext (Serial.reader (Serial.contents w)));
       false
     with Serial.Corrupt _ -> true)

let test_keys_roundtrip_and_remote_eval () =
  (* the full Figure-3 flow: the client serialises its PUBLIC material (pk,
     relin, selected rotation keys); the server reconstructs the bundle from
     bytes and uses it to multiply and rotate — no secret key crosses the
     wire *)
  let rng = Sampling.create ~seed:7 in
  let sk, keys = Rns_ckks.keygen ctx rng in
  Rns_ckks.add_rotation_key ctx rng sk keys 2;
  let rq = Rns_ckks.rq_ctx ctx in
  let w = Serial.writer () in
  Serial.write_rns_keys w rq keys;
  let v = Array.init (Rns_ckks.slot_count ctx) (fun i -> 0.3 +. (0.01 *. float_of_int (i mod 8))) in
  let wc = Serial.writer () in
  Serial.write_rns_ciphertext wc rq
    (Rns_ckks.encrypt ctx rng keys.Rns_ckks.public
       (Rns_ckks.encode_real ctx ~level:3 ~scale:1073741824.0 v));
  let key_bytes = Serial.contents w and ct_bytes = Serial.contents wc in
  (* server side *)
  let server_keys = Serial.read_rns_keys (Serial.reader key_bytes) rq in
  Alcotest.(check int) "rotation keys arrived" 1 (Rns_ckks.rotation_key_count server_keys);
  let ct = Serial.read_rns_ciphertext (Serial.reader ct_bytes) rq in
  let result = Rns_ckks.rotate ctx server_keys (Rns_ckks.mul ctx server_keys ct ct) 2 in
  let wr = Serial.writer () in
  Serial.write_rns_ciphertext wr rq result;
  (* client decrypts *)
  let back = Serial.read_rns_ciphertext (Serial.reader (Serial.contents wr)) rq in
  let got = Rns_ckks.decode ctx (Rns_ckks.decrypt ctx sk back) in
  let slots = Rns_ckks.slot_count ctx in
  let expected =
    Complexv.of_real (Array.init slots (fun i -> v.((i + 2) mod slots) *. v.((i + 2) mod slots)))
  in
  Alcotest.(check bool) "rotated square" true (Complexv.max_abs_diff expected got < 1e-2)

(* --- networked serving frames (REQ1 / RSP1 / HLTH, DESIGN.md §12) ---
   the socket protocol rides the same integrity envelope as the ciphertext
   frames, so it inherits the same obligations: bijective roundtrips for
   every payload (including the full typed error taxonomy), and a typed
   [Serial.Corrupt] — never an escaping exception or garbage parse — for
   every truncation and every flipped bit. *)

module Herr = Chet_herr.Herr

let sample_request =
  {
    Serial.rq_id = 7;
    rq_seed = 1234;
    rq_hedge = 0;
    rq_deadline_ms = 2500.0;
    rq_shape = [| 1; 4; 4 |];
    rq_image = Array.init 16 (fun i -> (float_of_int i /. 8.0) -. 1.0);
  }

let sample_errors : Herr.error list =
  [
    Herr.Scale_mismatch { expected = 1024.0; got = 2048.0 };
    Herr.Level_mismatch { expected = 3; got = 1 };
    Herr.Modulus_exhausted { level = 0; requested = 1 };
    Herr.Slot_overflow { slots = 8; requested = 16 };
    Herr.Illegal_rescale { divisor = 3; reason = "not a chain prime" };
    Herr.Numeric_blowup { slot = 5; value = 1e30 };
    Herr.Corrupt_ciphertext { reason = "decode magnitude" };
    Herr.Shape_mismatch { expected = "[1;4;4]"; got = "[1;2;2]" };
    Herr.Missing_node { node_id = 12 };
    Herr.Missing_rotation_key { amount = -3 };
    Herr.Invalid_op { reason = "conv stride 0" };
    Herr.Overloaded { queue_depth = 9; high_water = 8 };
    Herr.Deadline_exceeded { budget_ms = 10.0; elapsed_ms = 11.5 };
    Herr.Worker_crashed { worker = 1; reason = "Stack_overflow" };
    Herr.Corrupt_bundle { path = "gen-000001/meta"; reason = "checksum" };
    Herr.Corrupt_frame { frame = "REQ1"; reason = "truncated" };
    Herr.Cancelled { node_id = Some 23; reason = "superseded" };
    Herr.Cancelled { node_id = None; reason = "caller went away" };
    Herr.Integrity_violation { slot = 33; expected = 0.75; got = 0.1875 };
    Herr.Precision_exhausted { margin_bits = -1.5; tolerance = 0.05 };
  ]

let sample_response_ok =
  (* carries a verified sentinel lane: the wire v3 fields ride the fuzz
     harness and the roundtrip check like every older field *)
  {
    Serial.rs_id = 7;
    rs_shard = 1;
    rs_served_by = "primary";
    rs_degraded = false;
    rs_attempts = 2;
    rs_margin_bits = 7.25;
    rs_sentinel = Array.init 6 (fun i -> float_of_int i *. 0.125);
    rs_result = Ok ([| 1; 10 |], Array.init 10 (fun i -> float_of_int i *. 0.5));
  }

let sample_response_err err =
  {
    Serial.rs_id = 8;
    rs_shard = 0;
    rs_served_by = "";
    rs_degraded = true;
    rs_attempts = 3;
    rs_margin_bits = 0.0;
    rs_sentinel = [||];
    rs_result =
      Error (err, { Herr.op = "mul"; backend = "checked"; node_id = Some 4; layer = Some "conv1" });
  }

let sample_health =
  Serial.Health_report
    {
      hr_uptime_s = 12.5;
      hr_shards =
        [
          { Serial.hs_shard = 0; hs_pid = 100; hs_up = true; hs_restarts = 0; hs_last_error = "" };
          {
            Serial.hs_shard = 1;
            hs_pid = 101;
            hs_up = false;
            hs_restarts = 3;
            hs_last_error = "killed by signal 9";
          };
        ];
    }

let frame_bytes write v =
  let w = Serial.writer () in
  write w v;
  Serial.contents w

let test_wire_request_roundtrip () =
  let back = Serial.read_request (Serial.reader (frame_bytes Serial.write_request sample_request)) in
  Alcotest.(check bool) "request roundtrip" true (back = sample_request)

let test_wire_response_roundtrip () =
  let back =
    Serial.read_response (Serial.reader (frame_bytes Serial.write_response sample_response_ok))
  in
  Alcotest.(check bool) "ok response roundtrip" true (back = sample_response_ok);
  (* the error codec must be bijective across the ENTIRE taxonomy: a client
     must receive exactly the typed error the shard raised *)
  List.iter
    (fun err ->
      let rsp = sample_response_err err in
      let back = Serial.read_response (Serial.reader (frame_bytes Serial.write_response rsp)) in
      if back <> rsp then
        Alcotest.failf "error variant %s did not roundtrip" (Herr.error_name err))
    sample_errors

let test_wire_health_roundtrip () =
  List.iter
    (fun h ->
      let back = Serial.read_health (Serial.reader (frame_bytes Serial.write_health h)) in
      Alcotest.(check bool) "health roundtrip" true (back = h))
    [
      Serial.Health_ping;
      Serial.Health_kill 1;
      sample_health;
      Serial.Health_ack { ha_ok = false; ha_detail = "no shard 9" };
      Serial.Health_selftest;
    ]

let test_wire_response_unverified () =
  (* nan margin = "this answer ran without a sentinel lane" — the one NaN
     the codec must carry faithfully (structural equality can't see it) *)
  let rsp = { sample_response_ok with Serial.rs_margin_bits = Float.nan; rs_sentinel = [||] } in
  let back = Serial.read_response (Serial.reader (frame_bytes Serial.write_response rsp)) in
  Alcotest.(check bool) "nan margin survives" true (Float.is_nan back.Serial.rs_margin_bits);
  Alcotest.(check bool) "empty lane survives" true (back.Serial.rs_sentinel = [||])

let fuzz_frame name full read_back =
  for cut = 0 to String.length full - 1 do
    match read_back (String.sub full 0 cut) with
    | _ -> Alcotest.failf "%s: truncation at offset %d accepted" name cut
    | exception Serial.Corrupt _ -> ()
  done;
  let state = ref 0x5eed1234 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state
  in
  for _trial = 1 to 256 do
    let bit = next () mod (String.length full * 8) in
    let bytes = Bytes.of_string full in
    let i = bit / 8 in
    Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit mod 8))));
    match read_back (Bytes.to_string bytes) with
    | _ -> Alcotest.failf "%s: bit flip at %d accepted" name bit
    | exception Serial.Corrupt _ -> ()
  done

let test_fuzz_wire_request () =
  fuzz_frame "REQ1"
    (frame_bytes Serial.write_request sample_request)
    (fun s -> Serial.read_request (Serial.reader s))

let test_fuzz_wire_response () =
  fuzz_frame "RSP1"
    (frame_bytes Serial.write_response sample_response_ok)
    (fun s -> Serial.read_response (Serial.reader s));
  fuzz_frame "RSP1-err"
    (frame_bytes Serial.write_response
       (sample_response_err (Herr.Deadline_exceeded { budget_ms = 1.0; elapsed_ms = 2.0 })))
    (fun s -> Serial.read_response (Serial.reader s))

let test_fuzz_wire_health () =
  fuzz_frame "HLTH"
    (frame_bytes Serial.write_health sample_health)
    (fun s -> Serial.read_health (Serial.reader s));
  (* the selftest probe frame is tiny (version + kind), so the fuzz space is
     small — all the more reason every mangling must still land in Corrupt *)
  fuzz_frame "HLTH-selftest"
    (frame_bytes Serial.write_health Serial.Health_selftest)
    (fun s -> Serial.read_health (Serial.reader s))

(* --- CNCL + hedged REQ1 (DESIGN.md §13) ---
   the cancellation control frame and the hedge generation carried by
   requests are part of the same envelope contract: bijective roundtrip,
   typed rejection of every truncation and every flipped bit *)

let sample_cancel = { Serial.cn_id = 42; cn_reason = "superseded" }

let test_wire_cancel_roundtrip () =
  let back = Serial.read_cancel (Serial.reader (frame_bytes Serial.write_cancel sample_cancel)) in
  Alcotest.(check bool) "cancel roundtrip" true (back = sample_cancel);
  let empty = { Serial.cn_id = 0; cn_reason = "" } in
  let back = Serial.read_cancel (Serial.reader (frame_bytes Serial.write_cancel empty)) in
  Alcotest.(check bool) "empty-reason cancel roundtrip" true (back = empty)

let test_wire_hedged_request_roundtrip () =
  let hedged = { sample_request with Serial.rq_id = 9; rq_hedge = 3 } in
  let back = Serial.read_request (Serial.reader (frame_bytes Serial.write_request hedged)) in
  Alcotest.(check bool) "hedged request roundtrip" true (back = hedged);
  Alcotest.(check int) "hedge generation carried" 3 back.Serial.rq_hedge

let test_fuzz_wire_cancel () =
  fuzz_frame "CNCL"
    (frame_bytes Serial.write_cancel sample_cancel)
    (fun s -> Serial.read_cancel (Serial.reader s))

let suite =
  [
    ( "serial",
      [
        Alcotest.test_case "primitive roundtrips" `Quick test_primitives_roundtrip;
        Alcotest.test_case "truncation rejected" `Quick test_truncation_rejected;
        Alcotest.test_case "bad lengths rejected" `Quick test_bad_lengths_rejected;
        Alcotest.test_case "RNS ciphertext roundtrip" `Quick test_rns_ciphertext_roundtrip;
        Alcotest.test_case "corrupt tag rejected" `Quick test_rns_corrupt_tag;
        Alcotest.test_case "pow2 ciphertext roundtrip" `Quick test_big_ciphertext_roundtrip;
        Alcotest.test_case "fuzz: truncation at every offset" `Quick test_fuzz_truncation_every_offset;
        Alcotest.test_case "fuzz: seeded bit flips" `Quick test_fuzz_bit_flips;
        Alcotest.test_case "fuzz: pow2 frame" `Quick test_fuzz_big_ciphertext;
        Alcotest.test_case "fuzz: key bundle truncation (RKY2)" `Quick
          test_fuzz_keys_truncation_every_offset;
        Alcotest.test_case "fuzz: key bundle bit flips (RKY2)" `Quick test_fuzz_keys_bit_flips;
        Alcotest.test_case "ciphertext Corrupt carries frame tag" `Quick
          test_ciphertext_corrupt_carries_tag;
        Alcotest.test_case "trailing garbage in frame" `Quick test_trailing_garbage_in_frame_rejected;
        Alcotest.test_case "client/server loopback" `Quick test_loopback_protocol;
        Alcotest.test_case "key bundle + remote evaluation" `Quick test_keys_roundtrip_and_remote_eval;
        Alcotest.test_case "wire request roundtrip (REQ1)" `Quick test_wire_request_roundtrip;
        Alcotest.test_case "wire response + full error taxonomy (RSP1)" `Quick
          test_wire_response_roundtrip;
        Alcotest.test_case "wire health roundtrip (HLTH)" `Quick test_wire_health_roundtrip;
        Alcotest.test_case "wire response unverified markers" `Quick test_wire_response_unverified;
        Alcotest.test_case "fuzz: REQ1 truncation + bit flips" `Quick test_fuzz_wire_request;
        Alcotest.test_case "fuzz: RSP1 truncation + bit flips" `Quick test_fuzz_wire_response;
        Alcotest.test_case "fuzz: HLTH truncation + bit flips" `Quick test_fuzz_wire_health;
        Alcotest.test_case "wire cancel roundtrip (CNCL)" `Quick test_wire_cancel_roundtrip;
        Alcotest.test_case "hedged request roundtrip (rq_hedge)" `Quick
          test_wire_hedged_request_roundtrip;
        Alcotest.test_case "fuzz: CNCL truncation + bit flips" `Quick test_fuzz_wire_cancel;
      ] );
  ]
