(* Fast-kernel correctness: the Bigarray NTT and Rvec reduction kernels
   must be bit-identical to the scalar schoolbook reference for every prime
   in the ladder, and the kernel-domain pool must be deterministic for
   every width (ISSUE 9 property tests). *)

module Modarith = Chet_crypto.Modarith
module Ntt = Chet_crypto.Ntt
module Rvec = Chet_crypto.Rvec
module Rq = Chet_crypto.Rq
module Rq_rns = Chet_crypto.Rq_rns
module Kpool = Chet_crypto.Kpool

let rng = Random.State.make [| 0x9e11; 0x5a3d |]

(* the ladder the compiler actually uses: 30-bit NTT primes *)
let ladder n = Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count:5

let random_poly n p = Array.init n (fun _ -> Random.State.int rng p)

let with_fast_ring b f =
  let saved = Rq.fast_ring_enabled () in
  Rq.set_fast_ring b;
  Fun.protect ~finally:(fun () -> Rq.set_fast_ring saved) f

(* --- NTT: fast path vs scalar reference --- *)

let test_ntt_matches_reference () =
  (* n = 4096 > leaf size exercises the blocked recursion; n = 64 the
     all-in-one-leaf case *)
  List.iter
    (fun n ->
      Array.iter
        (fun prime ->
          let tbl = Ntt.make_table ~n ~prime in
          Alcotest.(check bool) "fast tables built" true (Ntt.has_fast tbl);
          for _ = 1 to 3 do
            let a = random_poly n prime in
            let reference = Array.copy a in
            Ntt.forward tbl reference;
            let buf = Rvec.of_int_array a in
            Ntt.forward_buf tbl buf;
            Alcotest.(check (array int))
              (Printf.sprintf "forward n=%d p=%d" n prime)
              reference (Rvec.to_int_array buf);
            Ntt.inverse_buf tbl buf;
            Alcotest.(check (array int))
              (Printf.sprintf "roundtrip n=%d p=%d" n prime)
              a (Rvec.to_int_array buf)
          done)
        (ladder n))
    [ 64; 4096 ]

let test_ntt_reference_path_identical () =
  (* --no-fast-ring must agree with the fast path bit for bit *)
  let n = 2048 in
  Array.iter
    (fun prime ->
      let tbl = Ntt.make_table ~n ~prime in
      let a = random_poly n prime in
      let fast = Rvec.of_int_array a in
      let slow = Rvec.of_int_array a in
      with_fast_ring true (fun () -> Ntt.forward_buf tbl fast);
      with_fast_ring false (fun () -> Ntt.forward_buf tbl slow);
      Alcotest.(check bool) "forward agree" true (Rvec.equal fast slow);
      with_fast_ring true (fun () -> Ntt.inverse_buf tbl fast);
      with_fast_ring false (fun () -> Ntt.inverse_buf tbl slow);
      Alcotest.(check bool) "inverse agree" true (Rvec.equal fast slow))
    (ladder n)

(* --- Rvec kernels: fast vs schoolbook twins --- *)

let test_rvec_kernels () =
  let n = 513 (* odd, to catch length assumptions *) in
  Array.iter
    (fun p ->
      let a = Rvec.of_int_array (random_poly n p) in
      let b = Rvec.of_int_array (random_poly n p) in
      let check name fast_k ref_k =
        let df = Rvec.create n and dr = Rvec.create n in
        fast_k df;
        ref_k dr;
        Alcotest.(check bool) name true (Rvec.equal df dr)
      in
      check "pointwise_mul"
        (fun d -> Rvec.pointwise_mul_into d a b p)
        (fun d -> Rvec.pointwise_mul_ref_into d a b p);
      let s = Random.State.int rng p in
      check "scalar_mul"
        (fun d -> Rvec.scalar_mul_into d a s p)
        (fun d -> Rvec.scalar_mul_ref_into d a s p);
      (* mac starts from the same accumulator on both sides *)
      let acc0 = random_poly n p in
      let mf = Rvec.of_int_array acc0 and mr = Rvec.of_int_array acc0 in
      Rvec.pointwise_mac_into mf a b p;
      Rvec.pointwise_mac_ref_into mr a b p;
      Alcotest.(check bool) "pointwise_mac" true (Rvec.equal mf mr);
      (* broadcast: residues of a *different* word-sized modulus *)
      let q = 1073741789 (* < 2^30, not one of the NTT primes *) in
      let src = Rvec.of_int_array (random_poly n q) in
      check "broadcast_mod"
        (fun d -> Rvec.broadcast_mod_into d src p)
        (fun d -> Rvec.broadcast_mod_ref_into d src p);
      let q_last = 1073479681 in
      let last = Rvec.of_int_array (random_poly n q_last) in
      check "rescale_limb"
        (fun d -> Rvec.rescale_limb_into d a last ~q_last ~p)
        (fun d -> Rvec.rescale_limb_ref_into d a last ~q_last ~p))
    (ladder 64)

let test_rvec_edge_values () =
  (* adversarial residues: 0, 1, p-1 in every combination *)
  Array.iter
    (fun p ->
      let vals = [| 0; 1; p - 1; p / 2; p / 2 + 1 |] in
      let k = Array.length vals in
      let n = k * k in
      let a = Rvec.create n and b = Rvec.create n in
      for i = 0 to k - 1 do
        for j = 0 to k - 1 do
          Rvec.set a ((i * k) + j) vals.(i);
          Rvec.set b ((i * k) + j) vals.(j)
        done
      done;
      let df = Rvec.create n and dr = Rvec.create n in
      Rvec.pointwise_mul_into df a b p;
      Rvec.pointwise_mul_ref_into dr a b p;
      Alcotest.(check (array int)) "mul edges" (Rvec.to_int_array dr) (Rvec.to_int_array df);
      Rvec.add_into df a b p;
      for i = 0 to n - 1 do
        Alcotest.(check int) "add edges" (Modarith.add_mod (Rvec.get a i) (Rvec.get b i) p)
          (Rvec.get df i)
      done;
      Rvec.sub_into df a b p;
      for i = 0 to n - 1 do
        Alcotest.(check int) "sub edges" (Modarith.sub_mod (Rvec.get a i) (Rvec.get b i) p)
          (Rvec.get df i)
      done;
      Rvec.neg_into df a p;
      for i = 0 to n - 1 do
        Alcotest.(check int) "neg edges" (Modarith.neg_mod (Rvec.get a i) p) (Rvec.get df i)
      done)
    (ladder 8)

let test_shoup () =
  Array.iter
    (fun p ->
      for _ = 1 to 200 do
        let w = Random.State.int rng p in
        let wsh = Modarith.shoup w p in
        let x = Random.State.full_int rng (2 * p) (* lazy operands allowed *) in
        Alcotest.(check int) "shoup" (w * x mod p) (Modarith.mul_mod_shoup w wsh x p)
      done)
    (ladder 64)

(* --- kernel-domain pool --- *)

let test_kpool_runs_all_chunks () =
  List.iter
    (fun k ->
      Kpool.configure ~domains:k;
      Fun.protect
        ~finally:(fun () -> Kpool.configure ~domains:1)
        (fun () ->
          Alcotest.(check int) "width" k (Kpool.domain_count ());
          let out = Array.make 257 0 in
          Kpool.run 257 (fun i -> out.(i) <- (i * i) + 1);
          Array.iteri
            (fun i v -> Alcotest.(check int) (Printf.sprintf "chunk %d" i) ((i * i) + 1) v)
            out;
          (* nested run degrades to sequential but still covers everything *)
          let nested = Array.make 64 0 in
          Kpool.run 8 (fun i -> Kpool.run 8 (fun j -> nested.((i * 8) + j) <- i + j));
          Array.iteri
            (fun idx v -> Alcotest.(check int) "nested" ((idx / 8) + (idx mod 8)) v)
            nested))
    [ 1; 2; 4 ]

let test_kpool_propagates_exceptions () =
  Kpool.configure ~domains:2;
  Fun.protect
    ~finally:(fun () -> Kpool.configure ~domains:1)
    (fun () ->
      let hits = Atomic.make 0 in
      (try
         Kpool.run 16 (fun i ->
             Atomic.incr hits;
             if i = 7 then failwith "chunk 7 boom")
       with Failure m -> Alcotest.(check string) "message" "chunk 7 boom" m);
      (* every chunk still ran *)
      Alcotest.(check int) "all chunks ran" 16 (Atomic.get hits))

(* --- k-domain determinism: bit-identical ciphertexts for k in {1,2,4} --- *)

module C = Chet_crypto.Rns_ckks

let encrypt_with_domains k =
  Kpool.configure ~domains:k;
  Fun.protect
    ~finally:(fun () -> Kpool.configure ~domains:1)
    (fun () ->
      let ctx = C.make_context (C.default_params ~n:64 ~num_coeff_primes:3 ()) in
      let rng = Chet_crypto.Sampling.create ~seed:77 in
      let sk, keys = C.keygen ctx rng in
      C.add_power_of_two_rotation_keys ctx rng sk keys;
      let z = Array.init (C.slot_count ctx) (fun i -> float_of_int (i mod 5) /. 7.0) in
      let pt = C.encode_real ctx ~level:3 ~scale:(Float.ldexp 1.0 25) z in
      let ct = C.encrypt ctx rng keys.C.public pt in
      let ct = C.mul ctx keys ct ct in
      let ct = C.rescale ctx ct (C.max_rescale ctx ct (1 lsl 30)) in
      let ct = C.rotate ctx keys ct 3 in
      (ct.C.c0, ct.C.c1))

let test_k_domain_determinism () =
  let c0_1, c1_1 = encrypt_with_domains 1 in
  let c0_2, c1_2 = encrypt_with_domains 2 in
  let c0_4, c1_4 = encrypt_with_domains 4 in
  Alcotest.(check bool) "k=1 vs k=2" true (Rq_rns.equal c0_1 c0_2 && Rq_rns.equal c1_1 c1_2);
  Alcotest.(check bool) "k=1 vs k=4" true (Rq_rns.equal c0_1 c0_4 && Rq_rns.equal c1_1 c1_4)

(* --- whole-ring fast vs reference bit-identity --- *)

let test_ring_fast_vs_reference () =
  let n = 64 in
  let primes = ladder n in
  let ca = Array.init n (fun i -> (i * 977) - (n * 488) + Random.State.int rng 3) in
  let cb = Array.init n (fun i -> (i * i) - 1000) in
  let run fast =
    with_fast_ring fast (fun () ->
        let ctx = Rq_rns.make_ctx ~n ~primes in
        let basis = Array.init (Array.length primes) (fun i -> i) in
        let a = Rq_rns.of_centered_coeffs ctx basis ca in
        let b = Rq_rns.of_centered_coeffs ctx basis cb in
        let m = Rq_rns.mul ctx a b in
        let s = Rq_rns.add ctx m (Rq_rns.to_ntt ctx (Rq_rns.neg ctx b)) in
        let s = Rq_rns.mul_scalar ctx s 123457 in
        let d = Rq_rns.drop_last ctx (Rq_rns.from_ntt ctx s) ~rounded:true in
        Rq_rns.to_bigint_coeffs ctx d)
  in
  let f = run true in
  let r = run false in
  Array.iteri
    (fun i x ->
      Alcotest.(check string)
        (Printf.sprintf "coeff %d" i)
        (Chet_bigint.Bigint.to_string x)
        (Chet_bigint.Bigint.to_string f.(i)))
    r

let suite =
  [
    ( "ring-kernels",
      [
        Alcotest.test_case "ntt fast = scalar reference, every ladder prime" `Quick
          test_ntt_matches_reference;
        Alcotest.test_case "ntt fast = --no-fast-ring path" `Quick test_ntt_reference_path_identical;
        Alcotest.test_case "rvec kernels = schoolbook twins" `Quick test_rvec_kernels;
        Alcotest.test_case "rvec edge residues" `Quick test_rvec_edge_values;
        Alcotest.test_case "shoup multiplication" `Quick test_shoup;
        Alcotest.test_case "kpool covers every chunk at k=1,2,4" `Quick test_kpool_runs_all_chunks;
        Alcotest.test_case "kpool propagates chunk exceptions" `Quick
          test_kpool_propagates_exceptions;
        Alcotest.test_case "k-domain determinism: identical ciphertexts" `Quick
          test_k_domain_determinism;
        Alcotest.test_case "ring ops fast = reference, bit-identical" `Quick
          test_ring_fast_vs_reference;
      ] );
  ]
