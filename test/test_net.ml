(* The networked serving layer's robustness contract, proven in-process over
   real unix sockets (ISSUE 6 acceptance criteria):

     (a) REQ1/RSP1 roundtrip: a wire request answers bit-identical to a
         direct cleartext run, stamped with the serving shard;
     (b) backpressure: past [max_inflight] the server answers a typed
         [Overloaded], it does not drop the connection;
     (c) a corrupt frame answers a typed [Corrupt_frame] and the SAME
         connection keeps serving — the outer length prefix kept the
         stream in sync;
     (d) client-side wire-fault injection (truncate, bit flip, stall)
         recovers through retry: the final answer is clean;
     (e) the supervisor state machine — spawn, health, kill, backoff
         restart, routing around a dead shard — driven end to end with
         fake in-process "processes" (threads serving the same protocol).

   The real fork/exec drill (SIGKILL an actual worker process, warm restart
   from its bundle) lives in scripts/net_smoke.sh. *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Hisa = Chet_hisa.Hisa
module Herr = Chet_herr.Herr
module Clear = Chet_hisa.Clear_backend
module Service = Chet_serve.Service
module Serial = Chet_crypto.Serial
module Wire = Chet_net.Wire
module Net_server = Chet_net.Server
module Client = Chet_net.Client
module Supervisor = Chet_net.Supervisor
module T = Chet_tensor.Tensor

let seal_opts = Compiler.default_options ~target:Compiler.Seal ()
let micro = Models.micro.Models.build ()
let compiled = lazy (Compiler.compile seal_opts micro)
let scheme () = Compiler.scheme_of_params seal_opts (Lazy.force compiled).Compiler.params
let policy () = (Lazy.force compiled).Compiler.policy

let clear_backend () =
  Clear.make
    {
      Clear.slots = Compiler.params_n (Lazy.force compiled).Compiler.params / 2;
      scheme = scheme ();
      strict_modulus = false;
      encode_noise = false;
    }

let clean_dep () =
  {
    Service.dep_label = "primary";
    dep_degraded = false;
    dep_scales = seal_opts.Compiler.scales;
    dep_policy = policy ();
    dep_cost_ms = None;
    dep_backend = (fun ~req_seed:_ ~attempt:_ -> clear_backend ());
    dep_plan = None;
    dep_sentinel = None;
    dep_twin = false;
  }

let quick_cfg () =
  {
    (Service.default_config ~domains:1 ())
    with
    Service.high_water = 16;
    max_retries = 1;
    backoff_base_ms = 1.0;
    backoff_cap_ms = 5.0;
    breaker_threshold = 3;
    breaker_cooldown_ms = 60_000.0;
    default_deadline_ms = 60_000.0;
  }

let direct_clean_run img =
  let backend = clear_backend () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  E.run seal_opts.Compiler.scales micro ~policy:(policy ()) img

let sock_path name =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "chet-net-%d-%s.sock" (Unix.getpid ()) name)

let sample_request ?(id = 42) ?(seed = 7) () =
  let img = Models.input_for Models.micro ~seed:501 in
  {
    Serial.rq_id = id;
    rq_seed = seed;
    rq_hedge = 0;
    rq_deadline_ms = 30_000.0;
    rq_shape = img.T.shape;
    rq_image = img.T.data;
  }

(* Run [f server addr] against an in-process shard server over a unix
   socket; always tears the server and its service down. *)
let with_server ?(shard = 3) ?(max_inflight = 8) ?ladder name f =
  let addr = Wire.Unix_sock (sock_path name) in
  let ladder = Option.value ladder ~default:[ clean_dep () ] in
  let svc = Service.create (quick_cfg ()) ~circuit:micro ~ladder in
  let cfg =
    {
      (Net_server.default_config ~shard addr)
      with
      Net_server.srv_max_inflight = max_inflight;
      srv_read_deadline_s = 0.5;
      srv_write_deadline_s = 5.0;
    }
  in
  let server = Net_server.start cfg svc in
  Fun.protect
    ~finally:(fun () ->
      Net_server.stop server;
      Service.shutdown svc)
    (fun () -> f server addr)

let quick_client ?(retries = 3) addr =
  {
    (Client.default_config addr)
    with
    Client.cl_io_deadline_s = 5.0;
    cl_retries = retries;
    cl_backoff_base_ms = 1.0;
    cl_backoff_cap_ms = 10.0;
    cl_seed = 99;
  }

(* --- (a) REQ1 -> RSP1 roundtrip, bit-identical to the clean run ----- *)

let test_roundtrip () =
  with_server "rt" (fun server addr ->
      let meta = Client.request (quick_client addr) (sample_request ()) in
      Alcotest.(check int) "one wire attempt" 1 meta.Client.rm_attempts;
      match meta.Client.rm_response with
      | Error (e, c) -> Alcotest.failf "roundtrip failed: %s" (Herr.to_string (e, c))
      | Ok rsp -> (
          Alcotest.(check int) "request id echoed" 42 rsp.Serial.rs_id;
          Alcotest.(check int) "shard stamped" 3 rsp.Serial.rs_shard;
          match rsp.Serial.rs_result with
          | Error (e, c) -> Alcotest.failf "typed error: %s" (Herr.to_string (e, c))
          | Ok (shape, data) ->
              let img = Models.input_for Models.micro ~seed:501 in
              let expected = direct_clean_run img in
              let got = T.of_array shape data in
              Alcotest.(check (float 0.0))
                "bit-identical to direct run" 0.0
                (T.max_abs_diff (T.flatten expected) (T.flatten got));
              let s = Net_server.stats server in
              Alcotest.(check int) "served counted" 1 s.Net_server.srv_served;
              Alcotest.(check int) "nothing rejected" 0 s.Net_server.srv_rejected);
      (* the same socket also answers health pings *)
      match Client.ping addr with
      | Ok (Serial.Health_ack { ha_ok = true; ha_detail }) ->
          Alcotest.(check string) "shard identifies itself" "shard" ha_detail
      | Ok _ -> Alcotest.fail "unexpected health reply"
      | Error e -> Alcotest.failf "ping failed: %s" e)

(* --- (b) inflight cap -> typed Overloaded, not a dropped socket ----- *)

let test_backpressure_typed_overload () =
  with_server ~max_inflight:0 "bp" (fun server addr ->
      let meta = Client.request (quick_client ~retries:0 addr) (sample_request ()) in
      (match meta.Client.rm_response with
      | Ok { Serial.rs_result = Error (Herr.Overloaded { high_water; _ }, _); _ } ->
          Alcotest.(check int) "rejection names the cap" 0 high_water
      | Ok { Serial.rs_result = Ok _; _ } -> Alcotest.fail "request admitted past a zero cap"
      | Ok { Serial.rs_result = Error (e, c); _ } | Error (e, c) ->
          Alcotest.failf "expected Overloaded, got %s" (Herr.to_string (e, c)));
      let s = Net_server.stats server in
      Alcotest.(check int) "rejection counted" 1 s.Net_server.srv_rejected;
      Alcotest.(check int) "not counted as corrupt" 0 s.Net_server.srv_corrupt)

(* --- (c) corrupt frame -> typed answer, connection stays alive ------ *)

let send_recv fd payload =
  let deadline = Wire.now () +. 5.0 in
  match Wire.send_frame fd payload ~deadline with
  | Error f -> Alcotest.failf "send failed: %s" (Wire.fault_name f)
  | Ok () -> (
      match Wire.recv_frame fd ~deadline with
      | Error f -> Alcotest.failf "recv failed: %s" (Wire.fault_name f)
      | Ok reply -> reply)

let test_corrupt_frame_keeps_connection () =
  with_server "cf" (fun server addr ->
      let fd =
        match Wire.connect addr with
        | Ok fd -> fd
        | Error f -> Alcotest.failf "connect failed: %s" (Wire.fault_name f)
      in
      Fun.protect
        ~finally:(fun () -> Wire.close_noerr fd)
        (fun () ->
          (* 1: garbage bytes under an honest outer prefix *)
          let rsp = Serial.read_response (Serial.reader (send_recv fd "JUNKbytes, not a frame")) in
          (match rsp.Serial.rs_result with
          | Error (Herr.Corrupt_frame { frame; _ }, _) ->
              Alcotest.(check string) "rejection names the bogus tag" "JUNK" frame
          | _ -> Alcotest.fail "garbage must answer Corrupt_frame");
          (* 2: a real REQ1 with one body bit flipped — checksum catches it *)
          let w = Serial.writer () in
          Serial.write_request w (sample_request ());
          let payload = Bytes.of_string (Serial.contents w) in
          let mid = Bytes.length payload - 8 in
          Bytes.set payload mid (Char.chr (Char.code (Bytes.get payload mid) lxor 0x10));
          let rsp = Serial.read_response (Serial.reader (send_recv fd (Bytes.to_string payload))) in
          (match rsp.Serial.rs_result with
          | Error (Herr.Corrupt_frame { frame; _ }, _) ->
              Alcotest.(check string) "rejection names REQ1" "REQ1" frame
          | _ -> Alcotest.fail "flipped bit must answer Corrupt_frame");
          (* 3: the SAME connection still serves a clean request *)
          let w = Serial.writer () in
          Serial.write_request w (sample_request ~id:77 ());
          let rsp = Serial.read_response (Serial.reader (send_recv fd (Serial.contents w))) in
          Alcotest.(check int) "same connection answers" 77 rsp.Serial.rs_id;
          (match rsp.Serial.rs_result with
          | Ok _ -> ()
          | Error (e, c) -> Alcotest.failf "clean request failed: %s" (Herr.to_string (e, c)));
          let s = Net_server.stats server in
          Alcotest.(check int) "one connection total" 1 s.Net_server.srv_accepted;
          Alcotest.(check int) "both corruptions counted" 2 s.Net_server.srv_corrupt))

(* --- (d) injected wire faults recover through retry ----------------- *)

let test_fault_injection_recovers () =
  with_server "fi" (fun _server addr ->
      let expect_recovery name fault ~min_attempts =
        let meta = Client.request ~fault (quick_client addr) (sample_request ()) in
        (match meta.Client.rm_response with
        | Ok { Serial.rs_result = Ok _; _ } -> ()
        | Ok { Serial.rs_result = Error (e, c); _ } | Error (e, c) ->
            Alcotest.failf "%s: did not recover: %s" name (Herr.to_string (e, c)));
        Alcotest.(check bool)
          (name ^ ": retried past the mangled attempt")
          true
          (meta.Client.rm_attempts >= min_attempts)
      in
      (* truncation: server sees EOF mid-frame, answers typed, client retries *)
      expect_recovery "truncate" Client.Truncate ~min_attempts:2;
      (* bit flip lands inside the Serial frame; checksum (or the full-width
         length check) rejects it, the retry goes through clean *)
      expect_recovery "bitflip" (Client.Bitflip 3) ~min_attempts:2;
      (* a stalled-but-finished send is within deadline: first try serves *)
      expect_recovery "stall" (Client.Stall 0.05) ~min_attempts:1)

(* --- (e) supervisor over fake in-process processes ------------------ *)

(* A fake worker "process": a real Net_server + Service on the shard's
   socket, with kill/poll closures over an atomic status — the supervisor
   cannot tell it from a forked worker. *)
type fake_proc = {
  fp_server : Net_server.t;
  fp_service : Service.t;
  fp_status : Unix.process_status option Atomic.t;
}

let fake_spawn ?(slow = fun _shard -> 0.0) spawned_log : Supervisor.spawn =
 fun ~shard ~addr ->
  let dep =
    let delay = slow shard in
    if delay <= 0.0 then clean_dep ()
    else
      {
        (clean_dep ()) with
        Service.dep_backend =
          (fun ~req_seed:_ ~attempt:_ ->
            Unix.sleepf delay;
            clear_backend ());
      }
  in
  let svc = Service.create (quick_cfg ()) ~circuit:micro ~ladder:[ dep ] in
  let cfg =
    { (Net_server.default_config ~shard addr) with Net_server.srv_read_deadline_s = 0.5 }
  in
  let fp = { fp_server = Net_server.start cfg svc; fp_service = svc; fp_status = Atomic.make None } in
  spawned_log := fp :: !spawned_log;
  {
    Supervisor.sp_pid = 10_000 + shard;
    sp_kill =
      (fun signal ->
        (* first signal wins; tearing down twice would double-free the fds *)
        if Atomic.compare_and_set fp.fp_status None (Some (Unix.WSIGNALED signal)) then begin
          Net_server.stop fp.fp_server;
          Service.shutdown fp.fp_service
        end);
    sp_poll = (fun () -> Atomic.get fp.fp_status);
  }

let sup_cfg ~front ~shard_addr =
  {
    (Supervisor.default_config ~shards:2 ~shard_addr ~front_addr:front)
    with
    Supervisor.sup_backoff_base_ms = 10.0;
    sup_backoff_cap_ms = 100.0;
    sup_health_interval_s = 0.05;
    sup_ping_deadline_s = 1.0;
    sup_forward_deadline_s = 5.0;
  }

let request_ok name cfg req =
  match (Client.request cfg req).Client.rm_response with
  | Ok ({ Serial.rs_result = Ok _; _ } as rsp) -> rsp
  | Ok { Serial.rs_result = Error (e, c); _ } | Error (e, c) ->
      Alcotest.failf "%s: %s" name (Herr.to_string (e, c))

let contains hay needle =
  let n = String.length hay and k = String.length needle in
  let rec scan i = i + k <= n && (String.sub hay i k = needle || scan (i + 1)) in
  scan 0

let test_supervisor_state_machine () =
  let front = Wire.Unix_sock (sock_path "sup-front") in
  let shard_addr i = Wire.Unix_sock (sock_path (Printf.sprintf "sup-sh%d" i)) in
  let spawned = ref [] in
  let sup = Supervisor.start ~spawn:(fake_spawn spawned) (sup_cfg ~front ~shard_addr) in
  Fun.protect
    ~finally:(fun () -> Supervisor.stop sup)
    (fun () ->
      Alcotest.(check bool) "both shards come up" true (Supervisor.await_ready sup ~timeout_s:15.0 ());
      (* front door proxies REQ1 to a live shard *)
      let cl = quick_client front in
      let rsp = request_ok "proxied request" cl (sample_request ~id:1 ()) in
      Alcotest.(check bool) "answered by a real shard" true (rsp.Serial.rs_shard >= 0);
      (* control plane: ping and report *)
      (match Client.ping front with
      | Ok (Serial.Health_ack { ha_ok = true; ha_detail }) ->
          Alcotest.(check string) "front identifies itself" "supervisor" ha_detail
      | _ -> Alcotest.fail "front must ack pings");
      (match Client.health front (Serial.Health_report { hr_uptime_s = 0.0; hr_shards = [] }) with
      | Ok (Serial.Health_report { hr_shards; _ }) ->
          Alcotest.(check int) "report covers both shards" 2 (List.length hr_shards);
          List.iter
            (fun s -> Alcotest.(check bool) "shard up in report" true s.Serial.hs_up)
            hr_shards
      | _ -> Alcotest.fail "front must answer reports");
      (* kill shard 0 through the control plane *)
      (match Client.health front (Serial.Health_kill 0) with
      | Ok (Serial.Health_ack { ha_ok = true; _ }) -> ()
      | _ -> Alcotest.fail "kill endpoint must ack");
      (* the front keeps answering while shard 0 is down: route around it *)
      for i = 2 to 6 do
        ignore (request_ok "request during outage" cl (sample_request ~id:i ()))
      done;
      (* the monitor notices the death and restarts shard 0 *)
      let deadline = Wire.now () +. 15.0 in
      let restarted () =
        match Client.health front (Serial.Health_report { hr_uptime_s = 0.0; hr_shards = [] }) with
        | Ok (Serial.Health_report { hr_shards; _ }) ->
            List.exists
              (fun s -> s.Serial.hs_shard = 0 && s.Serial.hs_up && s.Serial.hs_restarts >= 1)
              hr_shards
        | _ -> false
      in
      let rec wait () =
        if restarted () then true
        else if Wire.now () >= deadline then false
        else begin
          Thread.delay 0.05;
          wait ()
        end
      in
      Alcotest.(check bool) "shard 0 restarted and back up" true (wait ());
      Alcotest.(check bool)
        "restart visible in metrics" true
        (contains (Supervisor.metrics_snapshot sup) "chet_sup_restarts_total{shard=\"0\"} 1");
      (* three spawns total: 2 initial + 1 restart *)
      Alcotest.(check int) "one respawn happened" 3 (List.length !spawned));
  (* stop kills every fake process exactly once *)
  List.iter
    (fun fp ->
      Alcotest.(check bool) "fake worker reaped" true (Atomic.get fp.fp_status <> None))
    !spawned

(* --- request-id dedupe: replays answered bit-identically ------------- *)

let test_dedup_bit_identical_replay () =
  with_server "dd" (fun server addr ->
      let fd =
        match Wire.connect addr with
        | Ok fd -> fd
        | Error f -> Alcotest.failf "connect failed: %s" (Wire.fault_name f)
      in
      Fun.protect
        ~finally:(fun () -> Wire.close_noerr fd)
        (fun () ->
          let w = Serial.writer () in
          Serial.write_request w (sample_request ~id:55 ());
          let payload = Serial.contents w in
          let first = send_recv fd payload in
          (match (Serial.read_response (Serial.reader first)).Serial.rs_result with
          | Ok _ -> ()
          | Error (e, c) -> Alcotest.failf "first send failed: %s" (Herr.to_string (e, c)));
          (* the identical frame again: answered from the dedupe cache with
             the exact bytes of the first answer — no second execution *)
          let second = send_recv fd payload in
          Alcotest.(check bool) "replay answered bit-identically" true (String.equal first second);
          let s = Net_server.stats server in
          Alcotest.(check int) "one inference executed" 1 s.Net_server.srv_served;
          Alcotest.(check int) "replay was a cache hit" 1 s.Net_server.srv_dedup_hits;
          (* a fresh id on the same connection still executes *)
          let w2 = Serial.writer () in
          Serial.write_request w2 (sample_request ~id:56 ());
          let rsp = Serial.read_response (Serial.reader (send_recv fd (Serial.contents w2))) in
          Alcotest.(check int) "fresh id answered" 56 rsp.Serial.rs_id;
          Alcotest.(check int) "fresh id executed" 2
            (Net_server.stats server).Net_server.srv_served))

(* --- CNCL frees an in-flight request over the wire ------------------- *)

let test_cancel_inflight_over_wire () =
  let entered = Atomic.make false and gate = Atomic.make false in
  let gated =
    {
      (clean_dep ()) with
      Service.dep_backend =
        (fun ~req_seed:_ ~attempt:_ ->
          Atomic.set entered true;
          while not (Atomic.get gate) do
            Unix.sleepf 0.001
          done;
          clear_backend ());
    }
  in
  with_server ~ladder:[ gated ] "cncl" (fun server addr ->
      let result = ref None in
      let th =
        Thread.create
          (fun () ->
            result := Some (Client.request (quick_client ~retries:0 addr) (sample_request ~id:314 ())))
          ()
      in
      let rec spin n =
        if not (Atomic.get entered) then
          if n > 5000 then Alcotest.fail "request never reached the worker"
          else begin
            Unix.sleepf 0.002;
            spin (n + 1)
          end
      in
      spin 0;
      (* an id nobody holds: the benign race, acked found=false *)
      (match Client.cancel addr ~id:999 ~reason:"typo" with
      | Ok found -> Alcotest.(check bool) "unknown id not in flight" false found
      | Error e -> Alcotest.failf "cancel of unknown id failed: %s" e);
      (match Client.cancel addr ~id:314 ~reason:"client gave up" with
      | Ok found -> Alcotest.(check bool) "in-flight id found" true found
      | Error e -> Alcotest.failf "cancel failed: %s" e);
      Atomic.set gate true;
      Thread.join th;
      (match !result with
      | Some
          {
            Client.rm_response =
              Ok { Serial.rs_result = Error (Herr.Cancelled { reason; _ }, _); _ };
            _;
          } ->
          Alcotest.(check string) "reason crossed the wire" "client gave up" reason
      | Some { Client.rm_response = Ok { Serial.rs_result = Ok _; _ }; _ } ->
          Alcotest.fail "cancelled request must not succeed"
      | Some { Client.rm_response = Ok { Serial.rs_result = Error (e, c); _ }; _ }
      | Some { Client.rm_response = Error (e, c); _ } ->
          Alcotest.failf "wrong error class: %s" (Herr.to_string (e, c))
      | None -> Alcotest.fail "request thread produced nothing");
      let s = Net_server.stats server in
      Alcotest.(check int) "cancel hit counted" 1 s.Net_server.srv_cancelled)

(* --- hedged requests: the fast sibling wins, the loser is cancelled --- *)

let metric_value snapshot name =
  String.split_on_char '\n' snapshot
  |> List.find_map (fun line ->
         let prefix = name ^ " " in
         let n = String.length prefix in
         if String.length line > n && String.sub line 0 n = prefix then
           float_of_string_opt (String.sub line n (String.length line - n))
         else None)
  |> Option.value ~default:(-1.0)

let test_hedged_requests_cut_tail_latency () =
  let front = Wire.Unix_sock (sock_path "hg-front") in
  let shard_addr i = Wire.Unix_sock (sock_path (Printf.sprintf "hg-sh%d" i)) in
  let spawned = ref [] in
  let cfg = { (sup_cfg ~front ~shard_addr) with Supervisor.sup_hedge_delay_s = 0.05 } in
  (* shard 0 sleeps 2 s before every inference; shard 1 is honest *)
  let slow shard = if shard = 0 then 2.0 else 0.0 in
  let sup = Supervisor.start ~spawn:(fake_spawn ~slow spawned) cfg in
  Fun.protect
    ~finally:(fun () -> Supervisor.stop sup)
    (fun () ->
      Alcotest.(check bool) "both shards up" true (Supervisor.await_ready sup ~timeout_s:15.0 ());
      let cl = quick_client ~retries:0 front in
      let img = Models.input_for Models.micro ~seed:501 in
      let expected = direct_clean_run img in
      for i = 1 to 4 do
        let t0 = Wire.now () in
        let rsp = request_ok "hedged request" cl (sample_request ~id:(100 + i) ()) in
        let elapsed = Wire.now () -. t0 in
        (* never the slow shard's 2 s: either the primary was fast, or the
           hedge leg overtook the slow primary after the 50 ms delay *)
        Alcotest.(check bool)
          (Printf.sprintf "request %d beat the slow shard (%.0f ms)" i (elapsed *. 1000.0))
          true (elapsed < 1.0);
        match rsp.Serial.rs_result with
        | Ok (shape, data) ->
            Alcotest.(check (float 0.0))
              (Printf.sprintf "request %d bit-identical" i)
              0.0
              (T.max_abs_diff (T.flatten expected) (T.flatten (T.of_array shape data)))
        | Error _ -> assert false
      done;
      let m = Supervisor.metrics_snapshot sup in
      Alcotest.(check bool) "at least one hedge launched" true
        (metric_value m "chet_sup_hedges_total" >= 1.0);
      Alcotest.(check bool) "the duplicate leg won at least once" true
        (metric_value m "chet_sup_hedge_wins_total" >= 1.0);
      Alcotest.(check bool) "losing legs were cancelled" true
        (metric_value m "chet_sup_cancels_sent_total" >= 1.0);
      (* idempotency held: no shard executed the same id twice (a hedge
         duplicates across shards, never onto the same one) *)
      List.iter
        (fun fp ->
          Alcotest.(check int) "no duplicate execution on any shard" 0
            (Net_server.stats fp.fp_server).Net_server.srv_dedup_hits)
        !spawned)

let suite =
  [
    ( "net",
      [
        Alcotest.test_case "REQ1/RSP1 roundtrip over unix socket" `Quick test_roundtrip;
        Alcotest.test_case "inflight cap answers typed Overloaded" `Quick
          test_backpressure_typed_overload;
        Alcotest.test_case "corrupt frame: typed answer, connection survives" `Quick
          test_corrupt_frame_keeps_connection;
        Alcotest.test_case "injected wire faults recover via retry" `Quick
          test_fault_injection_recovers;
        Alcotest.test_case "supervisor: spawn, kill, restart, route around" `Quick
          test_supervisor_state_machine;
        Alcotest.test_case "dedupe: replayed id answered bit-identically" `Quick
          test_dedup_bit_identical_replay;
        Alcotest.test_case "CNCL cancels an in-flight request over the wire" `Quick
          test_cancel_inflight_over_wire;
        Alcotest.test_case "hedged requests: fast sibling wins, loser cancelled" `Quick
          test_hedged_requests_cut_tail_latency;
      ] );
  ]
