(* The hardened-runtime contract, tested adversarially: every corruption
   class Fault_backend can inject must surface through Checked_backend as the
   matching typed Herr.Fhe_error — never as a silently-garbage prediction —
   and the clean composition (no fault armed) must be observationally
   identical to the bare backend. Also exercises the compiler's graceful
   degradation: a pinned modulus budget that rejects the first scale
   candidate must be survived by the search, with the rejection logged
   structurally. *)

module Compiler = Chet.Compiler
module Scale_select = Chet.Scale_select
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Checked = Chet_hisa.Checked_backend
module Fault = Chet_hisa.Fault_backend
module Clear = Chet_hisa.Clear_backend
module T = Chet_tensor.Tensor

let seal_opts = Compiler.default_options ~target:Compiler.Seal ()
let micro = Models.micro.Models.build ()
let image = Models.input_for Models.micro ~seed:77

(* compile once; every fault test deploys the same configuration *)
let compiled = lazy (Compiler.compile seal_opts micro)

(* Run one full encrypted inference with [fault] armed between the real
   backend and the checker, returning what the checker thought of it. *)
let run_with_fault ?(trigger = 0) fault =
  let compiled = Lazy.force compiled in
  let backend, scheme =
    Compiler.instantiate_with_scheme compiled ~seed:42 ~with_secret:true ()
  in
  let faulty, log = Fault.wrap (Fault.default_config ~trigger (Some fault)) backend in
  let checked = Checked.wrap ~scheme faulty in
  let module H = (val checked) in
  let module E = Executor.Make (H) in
  let outcome =
    try
      ignore
        (E.run compiled.Compiler.opts.Compiler.scales compiled.Compiler.circuit
           ~policy:compiled.Compiler.policy image);
      Ok ()
    with Herr.Fhe_error (e, c) -> Error (e, c)
  in
  (outcome, log)

let check_detected name fault ~matches =
  let outcome, log = run_with_fault fault in
  Alcotest.(check bool) (name ^ ": fault fired") true log.Fault.fired;
  match outcome with
  | Ok () -> Alcotest.failf "%s: injected fault was not detected" name
  | Error (e, c) ->
      if not (matches e) then
        Alcotest.failf "%s: wrong error class: %s" name (Herr.to_string (e, c))

let test_scale_corruption_detected () =
  check_detected "scale corruption" Fault.Scale_corruption ~matches:(function
    | Herr.Scale_mismatch _ -> true
    | _ -> false)

let test_level_drop_detected () =
  check_detected "premature level drop" Fault.Premature_level_drop ~matches:(function
    | Herr.Level_mismatch _ -> true
    | _ -> false)

let test_slot_scramble_detected () =
  check_detected "slot scramble" Fault.Slot_scramble ~matches:(function
    | Herr.Corrupt_ciphertext _ -> true
    | _ -> false)

let test_nan_poison_detected () =
  check_detected "nan poison" Fault.Nan_poison ~matches:(function
    | Herr.Numeric_blowup _ -> true
    | _ -> false)

let test_dropped_rescale_detected () =
  check_detected "dropped rescale" Fault.Dropped_rescale ~matches:(function
    | Herr.Illegal_rescale _ -> true
    | _ -> false)

let test_late_trigger_still_detected () =
  (* arming the fault deep into the circuit must still be caught *)
  let outcome, log = run_with_fault ~trigger:200 Fault.Scale_corruption in
  Alcotest.(check bool) "fired late" true (log.Fault.fired && log.Fault.fired_at_op >= 200);
  match outcome with
  | Ok () -> Alcotest.fail "late fault not detected"
  | Error (Herr.Scale_mismatch _, _) -> ()
  | Error (e, c) -> Alcotest.failf "wrong class: %s" (Herr.to_string (e, c))

let test_clean_composition_transparent () =
  (* with no fault armed, Checked(Fault(backend)) computes exactly what the
     bare backend computes — the monitors are observationally invisible *)
  let compiled = Lazy.force compiled in
  let run_bare () =
    let backend = Compiler.instantiate compiled ~seed:42 ~with_secret:true () in
    let module H = (val backend) in
    let module E = Executor.Make (H) in
    E.run compiled.Compiler.opts.Compiler.scales compiled.Compiler.circuit
      ~policy:compiled.Compiler.policy image
  in
  let run_wrapped () =
    let backend, scheme =
      Compiler.instantiate_with_scheme compiled ~seed:42 ~with_secret:true ()
    in
    let faulty, log = Fault.wrap (Fault.default_config None) backend in
    let checked = Checked.wrap ~scheme faulty in
    let module H = (val checked) in
    let module E = Executor.Make (H) in
    let out =
      E.run compiled.Compiler.opts.Compiler.scales compiled.Compiler.circuit
        ~policy:compiled.Compiler.policy image
    in
    Alcotest.(check bool) "nothing fired" false log.Fault.fired;
    out
  in
  let bare = T.flatten (run_bare ()) and wrapped = T.flatten (run_wrapped ()) in
  Alcotest.(check (float 0.0)) "bit-identical output" 0.0 (T.max_abs_diff bare wrapped)

(* --- silent corruption: the class the per-op monitors cannot see -------- *)

let test_silent_corruption_evades_monitors () =
  (* the defining property of the class: every per-op screen passes, the run
     completes, and without a sentinel the caller gets a confidently wrong
     answer — which is exactly why the end-to-end lane exists *)
  let outcome, log = run_with_fault Fault.Silent_corruption in
  Alcotest.(check bool) "fault fired" true log.Fault.fired;
  Alcotest.(check string) "fired in decode" "decode" log.Fault.fired_in;
  match outcome with
  | Ok () -> ()
  | Error (e, c) ->
      Alcotest.failf "silent corruption should evade the monitors, got %s" (Herr.to_string (e, c))

let test_silent_corruption_caught_by_sentinel () =
  (* same fault, but the deployment was compiled with the sentinel twin lane:
     the corruption perturbs the probe slots too, and verification raises the
     typed violation instead of returning the garbage *)
  let circuit = Models.micro.Models.build () in
  let opts = { (Compiler.default_options ()) with Compiler.sentinel = true } in
  let compiled = Compiler.compile opts circuit in
  let isp = Chet.Integrity.spec_for circuit in
  let backend, scheme = Compiler.instantiate_with_scheme compiled ~seed:42 ~with_secret:true () in
  let faulty, log = Fault.wrap (Fault.default_config (Some Fault.Silent_corruption)) backend in
  let checked = Checked.wrap ~scheme faulty in
  let module H = (val checked) in
  let module E = Executor.Make (H) in
  let sentinel = Chet.Integrity.sentinel isp in
  match
    E.run ~sentinel ~twin:true compiled.Compiler.opts.Compiler.scales circuit
      ~policy:compiled.Compiler.policy image
  with
  | _ -> Alcotest.fail "corrupted answer escaped the sentinel"
  | exception Herr.Fhe_error (Herr.Integrity_violation _, _) ->
      Alcotest.(check bool) "fault fired" true log.Fault.fired

(* --- direct Checked_backend unit tests (no executor in the loop) -------- *)

let chain = [| 1073741789; 1073741783; 1073741741 |]

let checked_clear () =
  let scheme = Hisa.Rns_chain chain in
  Checked.wrap ~scheme
    (Clear.make { Clear.slots = 16; scheme; strict_modulus = false; encode_noise = false })

let test_checked_use_after_free () =
  let module H = (val checked_clear () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:1024) in
  H.free a;
  Alcotest.(check bool) "caught" true
    (try
       ignore (H.add a a);
       false
     with Herr.Fhe_error (Herr.Corrupt_ciphertext _, _) -> true)

let test_checked_illegal_divisor () =
  let module H = (val checked_clear () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:(1 lsl 40)) in
  Alcotest.(check bool) "caught" true
    (try
       ignore (H.rescale (H.mul a a) 12345);
       false
     with Herr.Fhe_error (Herr.Illegal_rescale _, _) -> true)

let test_checked_nan_encode () =
  let module H = (val checked_clear () : Hisa.S) in
  Alcotest.(check bool) "caught" true
    (try
       ignore (H.encode [| 1.0; Float.nan |] ~scale:1024);
       false
     with Herr.Fhe_error (Herr.Numeric_blowup { slot = 1; _ }, _) -> true)

let test_checked_oversized_rotation () =
  let module H = (val checked_clear () : Hisa.S) in
  let a = H.encrypt (H.encode [| 1.0 |] ~scale:1024) in
  Alcotest.(check bool) "caught" true
    (try
       ignore (H.rot_left a 16);
       false
     with Herr.Fhe_error (Herr.Slot_overflow _, _) -> true)

(* --- graceful degradation: scale search under a pinned modulus budget --- *)

let test_scale_search_recovers_from_exhaustion () =
  let images = [ image ] in
  let policy = Executor.All_hw in
  (* the budget the deployment would naturally need for the default scales *)
  let natural = Compiler.select_params seal_opts micro ~policy in
  match natural with
  | Compiler.Pow2_params _ -> Alcotest.fail "expected RNS params for SEAL"
  | Compiler.Rns_params p ->
      (* Pin the *largest* budget that still rejects the default starting
         candidate (2^40, 2^30, 2^30, 2^20) with Modulus_exhausted — shaving
         primes off the natural chain until the exhaustion becomes real.
         Using the largest such budget keeps the fallback candidates
         feasible, which is the recovery we want to witness. *)
      let pin k =
        Compiler.Rns_params
          { p with num_primes = p.num_primes - k; log_q = p.log_q - (k * p.prime_bits) }
      in
      let start_scales =
        { Kernels.pc = 1 lsl 40; pw = 1 lsl 30; pu = 1 lsl 30; pm = 1 lsl 20 }
      in
      let rec find k =
        if p.num_primes - k < 2 then None
        else
          match
            Scale_select.evaluate ~fixed_params:(pin k) seal_opts micro ~policy ~images
              ~tolerance:0.35 start_scales
          with
          | Scale_select.Fhe_rejected (Herr.Modulus_exhausted _, _) -> Some (pin k)
          | _ -> find (k + 1)
      in
      let pinned =
        match find 1 with
        | Some pinned -> pinned
        | None -> Alcotest.fail "no pinned budget exhausts the starting candidate"
      in
      let lines = ref [] in
      let result =
        try
          Scale_select.search ~fixed_params:pinned
            ~log:(fun s -> lines := s :: !lines)
            seal_opts micro ~policy ~images ~tolerance:0.35 ()
        with Compiler.Compilation_failure msg ->
          Alcotest.failf "search aborted (%s); log:\n%s" msg
            (String.concat "\n" (List.rev !lines))
      in
      (* the first candidate was rejected for a *structural* FHE reason... *)
      let saw_exhaustion =
        List.exists
          (fun r ->
            match r.Scale_select.rej_verdict with
            | Scale_select.Fhe_rejected (Herr.Modulus_exhausted _, _) -> true
            | _ -> false)
          result.Scale_select.rejections
      in
      Alcotest.(check bool) "modulus exhaustion rejected and logged" true saw_exhaustion;
      Alcotest.(check bool) "rejection lines logged" true (!lines <> []);
      Alcotest.(check bool) "log names the reason" true
        (List.exists
           (fun l ->
             let contains s sub =
               let n = String.length s and m = String.length sub in
               let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
               go 0
             in
             contains l "modulus")
           !lines);
      (* ...and the search still converged on workable scales *)
      let ec, ew, eu, em = result.Scale_select.exponents in
      Alcotest.(check bool) "search recovered" true (ec >= 4 && ew >= 4 && eu >= 4 && em >= 4);
      Alcotest.(check bool) "accepted under the pinned budget" true
        (Scale_select.acceptable ~fixed_params:pinned seal_opts micro ~policy ~images
           ~tolerance:0.35 result.Scale_select.scales)

let suite =
  [
    ( "fault-injection",
      [
        Alcotest.test_case "scale corruption -> Scale_mismatch" `Quick test_scale_corruption_detected;
        Alcotest.test_case "level drop -> Level_mismatch" `Quick test_level_drop_detected;
        Alcotest.test_case "slot scramble -> Corrupt_ciphertext" `Quick test_slot_scramble_detected;
        Alcotest.test_case "nan poison -> Numeric_blowup" `Quick test_nan_poison_detected;
        Alcotest.test_case "dropped rescale -> Illegal_rescale" `Quick test_dropped_rescale_detected;
        Alcotest.test_case "late trigger still detected" `Quick test_late_trigger_still_detected;
        Alcotest.test_case "clean composition transparent" `Quick test_clean_composition_transparent;
        Alcotest.test_case "silent corruption evades per-op monitors" `Quick
          test_silent_corruption_evades_monitors;
        Alcotest.test_case "silent corruption -> Integrity_violation (sentinel)" `Quick
          test_silent_corruption_caught_by_sentinel;
        Alcotest.test_case "checked: use after free" `Quick test_checked_use_after_free;
        Alcotest.test_case "checked: illegal divisor" `Quick test_checked_illegal_divisor;
        Alcotest.test_case "checked: NaN encode" `Quick test_checked_nan_encode;
        Alcotest.test_case "checked: oversized rotation" `Quick test_checked_oversized_rotation;
        Alcotest.test_case "scale search survives pinned budget" `Quick
          test_scale_search_recovers_from_exhaustion;
      ] );
  ]
