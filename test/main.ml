(* Aggregates all test suites; run with [dune runtest]. *)
let () = Alcotest.run "chet" (List.concat [ Test_bigint.suite; Test_crypto.suite; Test_rns_ckks.suite; Test_big_ckks.suite; Test_tensor_nn.suite; Test_runtime.suite; Test_compiler.suite; Test_dsl.suite; Test_serial.suite; Test_hisa.suite; Test_runtime_prop.suite; Test_rq.suite; Test_compiler_prop.suite; Test_bfv.suite; Test_fault.suite ])
