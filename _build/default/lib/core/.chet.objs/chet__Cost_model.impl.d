lib/core/cost_model.ml: Chet_hisa List Stdlib
