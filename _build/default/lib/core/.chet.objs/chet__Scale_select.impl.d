lib/core/scale_select.ml: Chet_hisa Chet_nn Chet_runtime Chet_tensor Compiler List
