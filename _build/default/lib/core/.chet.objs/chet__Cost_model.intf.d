lib/core/cost_model.mli: Chet_hisa
