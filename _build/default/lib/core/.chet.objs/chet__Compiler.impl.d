lib/core/compiler.ml: Array Chet_crypto Chet_hisa Chet_nn Chet_runtime Chet_tensor Cost_model Float Format Hashtbl List Printf Stdlib
