lib/core/scale_select.mli: Chet_nn Chet_runtime Chet_tensor Compiler
