lib/core/compiler.mli: Chet_crypto Chet_hisa Chet_nn Chet_runtime Format
