(** Cost models for the HISA primitives (Table 1), with constants calibrated
    against microbenchmarks of this repository's scheme implementations
    ([bench/main.exe --calibrate] refits and prints them). *)

module Hisa = Chet_hisa.Hisa

type constants = {
  k_add : float;
  k_scalar_mul : float;
  k_plain_mul : float;
  k_cipher_mul : float;
  k_rotate : float;
  k_rescale : float;
}
(** Seconds per elementary unit of each Table-1 asymptotic term. *)

val seal_defaults : constants
val heaan_defaults : constants

val seal : ?c:constants -> unit -> Hisa.cost_model
(** RNS-CKKS: linear terms in [N·r]; mul/rotate in [N·logN·r²]. *)

val heaan : ?c:constants -> unit -> Hisa.cost_model
(** CKKS: [M(Q) = logQ^1.58] big-integer multiplication inside each term. *)

val fit_constant : (Hisa.op_env -> float) -> (Hisa.op_env * float) list -> float
(** Least-squares constant for one op given (env, measured seconds) samples
    and the op's asymptotic term. *)
