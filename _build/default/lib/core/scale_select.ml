module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module Tensor = Chet_tensor.Tensor

type result = {
  scales : Kernels.scales;
  exponents : int * int * int * int;
  evaluations : int;
}

(* Evaluate one candidate on the quantising cleartext backend. The ring
   dimension only has to be large enough for the layout, so we let parameter
   selection find it once per call (scales change modulus consumption, but
   not whether the layout fits). *)
let acceptable opts circuit ~policy ~images ~tolerance (scales : Kernels.scales) =
  let opts = { opts with Compiler.scales } in
  try
    let params = Compiler.select_params opts circuit ~policy in
    let n = Compiler.params_n params in
    let backend =
      Clear.make
        { Clear.slots = n / 2; scheme = Compiler.scheme_of_params opts params; strict_modulus = false; encode_noise = true }
    in
    let module H = (val backend) in
    let module E = Executor.Make (H) in
    List.for_all
      (fun image ->
        let expected = Reference.eval circuit image in
        let got = E.run scales circuit ~policy image in
        Tensor.max_abs_diff (Tensor.flatten expected) (Tensor.flatten got) <= tolerance)
      images
  with Compiler.Compilation_failure _ | Clear.Modulus_exhausted | Invalid_argument _ -> false

let scales_of (ec, ew, eu, em) =
  { Kernels.pc = 1 lsl ec; pw = 1 lsl ew; pu = 1 lsl eu; pm = 1 lsl em }

let search opts circuit ~policy ~images ~tolerance ?(start_exponents = (40, 30, 30, 20))
    ?(min_exponent = 4) () =
  let evaluations = ref 0 in
  let try_candidate exps =
    incr evaluations;
    acceptable opts circuit ~policy ~images ~tolerance (scales_of exps)
  in
  if not (try_candidate start_exponents) then
    raise
      (Compiler.Compilation_failure
         "scale search: even the starting scaling factors violate the output tolerance");
  let current = ref start_exponents in
  let progress = ref true in
  (* round-robin: shave one bit off each factor in turn while acceptable *)
  while !progress do
    progress := false;
    for i = 0 to 3 do
      let ec, ew, eu, em = !current in
      let candidate =
        match i with
        | 0 -> (ec - 1, ew, eu, em)
        | 1 -> (ec, ew - 1, eu, em)
        | 2 -> (ec, ew, eu - 1, em)
        | _ -> (ec, ew, eu, em - 1)
      in
      let c0, c1, c2, c3 = candidate in
      if c0 >= min_exponent && c1 >= min_exponent && c2 >= min_exponent && c3 >= min_exponent
         && try_candidate candidate
      then begin
        current := candidate;
        progress := true
      end
    done
  done;
  { scales = scales_of !current; exponents = !current; evaluations = !evaluations }
