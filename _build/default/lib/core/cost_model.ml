(* Cost models for the HISA primitives (Table 1), with constants tuned
   against microbenchmarks of this repository's own scheme implementations
   (bench/main.exe --calibrate prints freshly measured constants; the
   defaults below were obtained that way on the development machine).

   The RNS-CKKS model is in terms of (N, r); the CKKS model in terms of
   (N, logQ) with M(Q) = logQ^1.58 for big-integer multiplication. *)

module Hisa = Chet_hisa.Hisa

type constants = {
  k_add : float;
  k_scalar_mul : float;
  k_plain_mul : float;
  k_cipher_mul : float;
  k_rotate : float;
  k_rescale : float;
}

(* seconds per elementary unit of the Table 1 asymptotic term; values from
   `bench/main.exe --calibrate` against this repository's scheme
   implementations *)
let seal_defaults =
  {
    k_add = 5.97e-8;
    k_scalar_mul = 1.95e-8;
    k_plain_mul = 1.88e-8;
    k_cipher_mul = 2.76e-8;
    k_rotate = 3.42e-8;
    k_rescale = 2.0e-8;
  }

let heaan_defaults =
  {
    k_add = 2.22e-9;
    k_scalar_mul = 1.48e-8;
    k_plain_mul = 7.04e-8;
    k_cipher_mul = 2.27e-7;
    k_rotate = 9.10e-8;
    k_rescale = 5.0e-9;
  }

let logf n = log (float_of_int n) /. log 2.0

let seal ?(c = seal_defaults) () =
  let n e = float_of_int e.Hisa.env_n in
  let r e = float_of_int (Stdlib.max 1 e.Hisa.env_r) in
  {
    Hisa.cm_add = (fun e -> c.k_add *. n e *. r e);
    cm_scalar_mul = (fun e -> c.k_scalar_mul *. n e *. r e);
    cm_plain_mul = (fun e -> c.k_plain_mul *. n e *. r e);
    cm_cipher_mul = (fun e -> c.k_cipher_mul *. n e *. logf e.Hisa.env_n *. r e *. r e);
    cm_rotate = (fun e -> c.k_rotate *. n e *. logf e.Hisa.env_n *. r e *. r e);
    cm_rescale = (fun e -> c.k_rescale *. n e *. logf e.Hisa.env_n *. r e);
  }

let heaan ?(c = heaan_defaults) () =
  let n e = float_of_int e.Hisa.env_n in
  let lq e = float_of_int (Stdlib.max 1 e.Hisa.env_log_q) in
  let m_q e = lq e ** 1.58 /. 64.0 in
  {
    Hisa.cm_add = (fun e -> c.k_add *. n e *. lq e);
    cm_scalar_mul = (fun e -> c.k_scalar_mul *. n e *. m_q e);
    cm_plain_mul = (fun e -> c.k_plain_mul *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_cipher_mul = (fun e -> c.k_cipher_mul *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_rotate = (fun e -> c.k_rotate *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_rescale = (fun e -> c.k_rescale *. n e *. lq e);
  }

(* Calibration: given measured (env, seconds) samples for one op and that
   op's asymptotic term, the constant is the least-squares ratio. *)
let fit_constant term samples =
  let num = List.fold_left (fun acc (env, t) -> acc +. (t *. term env)) 0.0 samples in
  let den = List.fold_left (fun acc (env, _) -> acc +. (term env *. term env)) 0.0 samples in
  if den = 0.0 then 0.0 else num /. den
