(** Profile-guided fixed-point scale selection (§5.5).

    Instead of asking the user for the four fixed-point scaling factors
    (image [Pc], plaintext weights [Pw], scalar weights [Pu], masks [Pm]),
    CHET searches for the smallest acceptable ones given representative
    inputs and an output tolerance. Candidate configurations are evaluated by
    running the homomorphic circuit on the quantising cleartext backend and
    comparing against the reference engine.

    The search is the paper's round-robin: all four exponents start high and
    each is decremented in turn as long as every test input stays within
    tolerance, until no exponent can shrink. *)

module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor

type result = {
  scales : Kernels.scales;
  exponents : int * int * int * int;  (** (log2 Pc, log2 Pw, log2 Pu, log2 Pm) *)
  evaluations : int;  (** number of candidate configurations tried *)
}

val acceptable :
  Compiler.options -> Circuit.t -> policy:Executor.layout_policy -> images:Tensor.t list ->
  tolerance:float -> Kernels.scales -> bool
(** Does this configuration keep every test image's output within [tolerance]
    (max-abs) of the unencrypted reference? *)

val search :
  Compiler.options -> Circuit.t -> policy:Executor.layout_policy -> images:Tensor.t list ->
  tolerance:float -> ?start_exponents:int * int * int * int -> ?min_exponent:int -> unit -> result
(** @raise Compiler.Compilation_failure if even the starting configuration is
    unacceptable. *)
