(** Arbitrary-precision signed integers.

    This module is the substrate that stands in for GMP in the HEAAN-style
    CKKS implementation ({!Chet_crypto.Big_ckks}), where ciphertext
    coefficients live modulo [Q] up to [2^1200]. Magnitudes are little-endian
    arrays of base-[2^31] limbs, so limb products stay within OCaml's native
    63-bit integers. *)

type t

val zero : t
val one : t
val two : t
val minus_one : t

(** {1 Conversions} *)

val of_int : int -> t

val to_int : t -> int
(** @raise Failure if the value does not fit in a native [int]. *)

val to_int_opt : t -> int option
val to_float : t -> float

val of_string : string -> t
(** Decimal, with optional leading [-]. [0x]-prefixed hex also accepted.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string
(** Decimal representation. *)

val pp : Format.formatter -> t -> unit

(** {1 Comparison} *)

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val mul_int : t -> int -> t
val add_int : t -> int -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated towards zero, so
    [sign r = sign a] (or [r = 0]) and [|r| < |b|].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val ediv_rem : t -> t -> t * t
(** Euclidean division: remainder is always in [\[0, |b|)]. *)

val emod : t -> t -> t

val div_round : t -> t -> t
(** Division rounded to the nearest integer (ties away from zero). Used by
    CKKS rescaling, where [round(c / 2^k)] must be exact. *)

val pow : t -> int -> t
(** [pow b e] for [e >= 0]. @raise Invalid_argument on negative exponent. *)

val modpow : t -> t -> t -> t
(** [modpow b e m] = [b^e mod m] (euclidean, result in [\[0, m)]). *)

val gcd : t -> t -> t

(** {1 Bit operations} *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic shift towards zero on the magnitude ([a / 2^k] truncated). *)

val num_bits : t -> int
(** Bits in the magnitude; [num_bits zero = 0]. *)

val testbit : t -> int -> bool
val is_even : t -> bool

val pow2 : int -> t
(** [pow2 k] = [2^k]. *)

val mod_int : t -> int -> int
(** [mod_int a m] for [0 < m < 2^31]: euclidean remainder in [\[0, m)],
    computed limb-wise (much faster than [emod] with a bigint modulus). *)

val centered_mod : t -> t -> t
(** [centered_mod a q] is the representative of [a mod q] in
    [\[-q/2, q/2)]. [q] must be positive. *)

(** {1 Randomness} *)

val random_below : (unit -> int) -> t -> t
(** [random_below rand31 bound]: uniform in [\[0, bound)] given a generator
    of uniform 31-bit non-negative ints. [bound] must be positive. *)
