lib/bigint/bigint.ml: Array Buffer Char Format List Printf Stdlib String
