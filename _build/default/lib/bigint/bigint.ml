(* Arbitrary-precision signed integers on base-2^31 limbs.

   Invariants: [mag] is little-endian with no most-significant zero limb;
   [sign] is -1, 0 or 1 and is 0 exactly when [mag] is empty. Keeping limbs
   below 2^31 means limb products (< 2^62) and sums with carries stay within
   OCaml's 63-bit native ints. *)

type t = { sign : int; mag : int array }

let base_bits = 31
let base = 1 lsl base_bits
let limb_mask = base - 1

let zero = { sign = 0; mag = [||] }

(* ------------------------------------------------------------------ *)
(* Magnitude helpers                                                   *)
(* ------------------------------------------------------------------ *)

let mag_normalize a =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let make sign mag =
  let mag = mag_normalize mag in
  if Array.length mag = 0 then zero else { sign; mag }

let mag_compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec loop i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else loop (i - 1) in
    loop (la - 1)

let mag_add a b =
  let la = Array.length a and lb = Array.length b in
  let lr = Stdlib.max la lb + 1 in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 2 do
    let av = if i < la then a.(i) else 0 in
    let bv = if i < lb then b.(i) else 0 in
    let s = av + bv + !carry in
    r.(i) <- s land limb_mask;
    carry := s lsr base_bits
  done;
  r.(lr - 1) <- !carry;
  r

(* Requires |a| >= |b|. *)
let mag_sub a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let bv = if i < lb then b.(i) else 0 in
    let d = a.(i) - bv - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let mag_mul_school a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let t = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- t land limb_mask;
          carry := t lsr base_bits
        done;
        r.(i + lb) <- !carry
      end
    done;
    r
  end

let karatsuba_threshold = 24

let rec mag_mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else if Stdlib.min la lb < karatsuba_threshold then mag_mul_school a b
  else begin
    (* Karatsuba: a = a1*B^m + a0, b = b1*B^m + b0. *)
    let m = (Stdlib.max la lb + 1) / 2 in
    let lo x = if Array.length x <= m then x else Array.sub x 0 m in
    let hi x = if Array.length x <= m then [||] else Array.sub x m (Array.length x - m) in
    let a0 = mag_normalize (lo a) and a1 = mag_normalize (hi a) in
    let b0 = mag_normalize (lo b) and b1 = mag_normalize (hi b) in
    let z0 = mag_mul a0 b0 in
    let z2 = mag_mul a1 b1 in
    let z1 =
      (* (a0+a1)(b0+b1) - z0 - z2 *)
      let s = mag_mul (mag_normalize (mag_add a0 a1)) (mag_normalize (mag_add b0 b1)) in
      mag_sub (mag_sub s (mag_normalize z0)) (mag_normalize z2)
    in
    let r = Array.make (la + lb + 1) 0 in
    let add_at ofs x =
      let carry = ref 0 in
      let lx = Array.length x in
      for i = 0 to lx - 1 do
        let s = r.(ofs + i) + x.(i) + !carry in
        r.(ofs + i) <- s land limb_mask;
        carry := s lsr base_bits
      done;
      let i = ref (ofs + lx) in
      while !carry <> 0 do
        let s = r.(!i) + !carry in
        r.(!i) <- s land limb_mask;
        carry := s lsr base_bits;
        incr i
      done
    in
    add_at 0 (mag_normalize z0);
    add_at m (mag_normalize z1);
    add_at (2 * m) (mag_normalize z2);
    r
  end

let mag_shift_left a k =
  let la = Array.length a in
  if la = 0 then [||]
  else begin
    let limbs = k / base_bits and bits = k mod base_bits in
    let r = Array.make (la + limbs + 1) 0 in
    if bits = 0 then Array.blit a 0 r limbs la
    else begin
      let carry = ref 0 in
      for i = 0 to la - 1 do
        let v = (a.(i) lsl bits) lor !carry in
        r.(limbs + i) <- v land limb_mask;
        carry := v lsr base_bits
      done;
      r.(limbs + la) <- !carry
    end;
    r
  end

let mag_shift_right a k =
  let la = Array.length a in
  let limbs = k / base_bits and bits = k mod base_bits in
  if limbs >= la then [||]
  else begin
    let lr = la - limbs in
    let r = Array.make lr 0 in
    if bits = 0 then Array.blit a limbs r 0 lr
    else
      for i = 0 to lr - 1 do
        let lo = a.(limbs + i) lsr bits in
        let hi = if limbs + i + 1 < la then (a.(limbs + i + 1) lsl (base_bits - bits)) land limb_mask else 0 in
        r.(i) <- lo lor hi
      done;
    r
  end

let bits_of_limb v =
  let rec loop v acc = if v = 0 then acc else loop (v lsr 1) (acc + 1) in
  loop v 0

(* Knuth algorithm D on magnitudes; returns (quotient, remainder). *)
let mag_divmod u v =
  let lv = Array.length v in
  if lv = 0 then raise Division_by_zero;
  if mag_compare u v < 0 then ([||], Array.copy u)
  else if lv = 1 then begin
    let d = v.(0) in
    let lu = Array.length u in
    let q = Array.make lu 0 in
    let rem = ref 0 in
    for i = lu - 1 downto 0 do
      let cur = (!rem lsl base_bits) lor u.(i) in
      q.(i) <- cur / d;
      rem := cur mod d
    done;
    (q, if !rem = 0 then [||] else [| !rem |])
  end
  else begin
    let s = base_bits - bits_of_limb v.(lv - 1) in
    let vn = mag_normalize (mag_shift_left v s) in
    let un = Array.append (mag_normalize (mag_shift_left u s)) [| 0 |] in
    let n = Array.length vn in
    let m = Array.length un - n - 1 in
    let q = Array.make (m + 1) 0 in
    let vtop = vn.(n - 1) and vsnd = vn.(n - 2) in
    for j = m downto 0 do
      let num = (un.(j + n) lsl base_bits) lor un.(j + n - 1) in
      let qhat = ref (num / vtop) in
      let rhat = ref (num mod vtop) in
      let continue_fix = ref true in
      while !continue_fix do
        if !qhat >= base || !qhat * vsnd > (!rhat lsl base_bits) lor un.(j + n - 2) then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue_fix := false
        end
        else continue_fix := false
      done;
      (* multiply and subtract *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * vn.(i) + !carry in
        carry := p lsr base_bits;
        let d = un.(i + j) - (p land limb_mask) - !borrow in
        if d < 0 then begin
          un.(i + j) <- d + base;
          borrow := 1
        end
        else begin
          un.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = un.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back *)
        un.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s2 = un.(i + j) + vn.(i) + !carry2 in
          un.(i + j) <- s2 land limb_mask;
          carry2 := s2 lsr base_bits
        done;
        un.(j + n) <- (un.(j + n) + !carry2) land limb_mask
      end
      else un.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = mag_shift_right (mag_normalize (Array.sub un 0 n)) s in
    (q, r)
  end

(* ------------------------------------------------------------------ *)
(* Signed interface                                                    *)
(* ------------------------------------------------------------------ *)

let of_int n =
  if n = 0 then zero
  else begin
    let sign = if n < 0 then -1 else 1 in
    (* min_int's magnitude still fits: we build limbs via euclidean steps on
       the absolute value computed limb by limb to avoid overflow. *)
    let rec limbs n acc = if n = 0 then acc else limbs (n lsr base_bits) ((n land limb_mask) :: acc) in
    let n_abs = abs n in
    if n_abs >= 0 then make sign (Array.of_list (List.rev (limbs n_abs [])))
    else
      (* n = min_int: abs overflows; handle via unsigned shift trick *)
      let lo = n land limb_mask in
      let mid = (n lsr base_bits) land limb_mask in
      let hi = (n lsr (2 * base_bits)) land 1 in
      make sign [| lo; mid; hi |]
  end

let one = of_int 1
let two = of_int 2
let minus_one = of_int (-1)

let sign t = t.sign
let is_zero t = t.sign = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then mag_compare a.mag b.mag
  else mag_compare b.mag a.mag

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let neg a = if a.sign = 0 then zero else { a with sign = -a.sign }
let abs a = if a.sign < 0 then neg a else a

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (mag_add a.mag b.mag)
  else begin
    let c = mag_compare a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (mag_sub a.mag b.mag)
    else make b.sign (mag_sub b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mag_mul a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  (make (a.sign * b.sign) q, make a.sign r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let ediv_rem a b =
  let q, r = divmod a b in
  if r.sign < 0 then
    if b.sign > 0 then (sub q one, add r b) else (add q one, sub r b)
  else (q, r)

let emod a b = snd (ediv_rem a b)

let div_round a b =
  if b.sign = 0 then raise Division_by_zero;
  let q, r = mag_divmod a.mag b.mag in
  let twice_r = mag_mul r [| 2 |] in
  let q = if mag_compare (mag_normalize twice_r) b.mag >= 0 then mag_add q [| 1 |] else q in
  make (a.sign * b.sign) q

let mul_int a n = mul a (of_int n)
let add_int a n = add a (of_int n)

let pow b e =
  if e < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec loop acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul acc b else acc in
      loop acc (mul b b) (e lsr 1)
    end
  in
  loop one b e

let modpow b e m =
  if m.sign <= 0 then invalid_arg "Bigint.modpow: modulus must be positive";
  let b = emod b m in
  let rec loop acc b e =
    if is_zero e then acc
    else begin
      let acc = if is_even e then acc else emod (mul acc b) m in
      loop acc (emod (mul b b) m) (shift_right_one e)
    end
  and shift_right_one e = make e.sign (mag_shift_right e.mag 1)
  and is_even e = Array.length e.mag = 0 || e.mag.(0) land 1 = 0 in
  loop one b e

let rec gcd a b = if is_zero b then abs a else gcd b (rem a b)

let shift_left a k =
  if k = 0 || a.sign = 0 then a
  else if k < 0 then invalid_arg "Bigint.shift_left"
  else make a.sign (mag_shift_left a.mag k)

let shift_right a k =
  if k = 0 || a.sign = 0 then a
  else if k < 0 then invalid_arg "Bigint.shift_right"
  else make a.sign (mag_shift_right a.mag k)

let num_bits a =
  let l = Array.length a.mag in
  if l = 0 then 0 else ((l - 1) * base_bits) + bits_of_limb a.mag.(l - 1)

let testbit a k =
  let limb = k / base_bits and bit = k mod base_bits in
  limb < Array.length a.mag && (a.mag.(limb) lsr bit) land 1 = 1

let is_even a = Array.length a.mag = 0 || a.mag.(0) land 1 = 0

let pow2 k =
  if k < 0 then invalid_arg "Bigint.pow2";
  let mag = Array.make ((k / base_bits) + 1) 0 in
  mag.((k / base_bits)) <- 1 lsl (k mod base_bits);
  make 1 mag

let mod_int a m =
  if m <= 0 || m >= base then invalid_arg "Bigint.mod_int: modulus out of range";
  (* Horner over limbs, most significant first: residues stay < 2^31 so the
     intermediate [r * base + limb] stays below 2^62. *)
  let r = ref 0 in
  for i = Array.length a.mag - 1 downto 0 do
    r := (((!r lsl base_bits) lor a.mag.(i)) mod m)
  done;
  if a.sign < 0 && !r <> 0 then m - !r else !r

let centered_mod a q =
  if q.sign <= 0 then invalid_arg "Bigint.centered_mod: modulus must be positive";
  let r = emod a q in
  if compare (mul_int r 2) q >= 0 then sub r q else r

let to_int_opt a =
  (* Native int holds up to 62 bits of magnitude. *)
  if num_bits a > 62 then None
  else begin
    let v = Array.fold_right (fun limb acc -> (acc lsl base_bits) lor limb) a.mag 0 in
    Some (if a.sign < 0 then -v else v)
  end

let to_int a =
  match to_int_opt a with Some v -> v | None -> failwith "Bigint.to_int: overflow"

let to_float a =
  let v = Array.fold_right (fun limb acc -> (acc *. float_of_int base) +. float_of_int limb) a.mag 0.0 in
  if a.sign < 0 then -.v else v

let chunk = 1_000_000_000 (* 10^9 < 2^31 *)

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec loop mag acc =
      if Array.length mag = 0 then acc
      else begin
        let q, r = mag_divmod mag [| chunk |] in
        let r = if Array.length r = 0 then 0 else r.(0) in
        loop (mag_normalize q) (r :: acc)
      end
    in
    (match loop a.mag [] with
    | [] -> assert false
    | first :: rest ->
        if a.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun d -> Buffer.add_string buf (Printf.sprintf "%09d" d)) rest);
    Buffer.contents buf
  end

let pp fmt a = Format.pp_print_string fmt (to_string a)

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty";
  let neg_sign = s.[0] = '-' in
  let start = if neg_sign || s.[0] = '+' then 1 else 0 in
  if len - start >= 2 && s.[start] = '0' && (s.[start + 1] = 'x' || s.[start + 1] = 'X') then begin
    let acc = ref zero in
    for i = start + 2 to len - 1 do
      let d =
        match s.[i] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | '_' -> -1
        | _ -> invalid_arg "Bigint.of_string: bad hex digit"
      in
      if d >= 0 then acc := add_int (shift_left !acc 4) d
    done;
    if neg_sign then neg !acc else !acc
  end
  else begin
    if len = start then invalid_arg "Bigint.of_string: no digits";
    let acc = ref zero in
    let i = ref start in
    while !i < len do
      (* consume up to 9 decimal digits at a time *)
      let j = Stdlib.min len (!i + 9) in
      let block = ref 0 and ndigits = ref 0 in
      for k = !i to j - 1 do
        match s.[k] with
        | '0' .. '9' as c ->
            block := (!block * 10) + (Char.code c - Char.code '0');
            incr ndigits
        | '_' -> ()
        | _ -> invalid_arg "Bigint.of_string: bad digit"
      done;
      let scale =
        let rec p10 n = if n = 0 then 1 else 10 * p10 (n - 1) in
        p10 !ndigits
      in
      acc := add_int (mul_int !acc scale) !block;
      i := j
    done;
    if neg_sign then neg !acc else !acc
  end

let random_below rand31 bound =
  if bound.sign <= 0 then invalid_arg "Bigint.random_below: bound must be positive";
  let nlimbs = Array.length bound.mag in
  let top_bits = bits_of_limb bound.mag.(nlimbs - 1) in
  let top_mask = (1 lsl top_bits) - 1 in
  let rec draw () =
    let mag = Array.init nlimbs (fun i -> if i = nlimbs - 1 then rand31 () land top_mask else rand31 () land limb_mask) in
    let candidate = make 1 mag in
    if compare candidate bound < 0 then candidate else draw ()
  in
  draw ()
