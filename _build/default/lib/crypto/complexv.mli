(** Vectors of complex numbers as parallel [re]/[im] float arrays — the slot
    values flowing in and out of CKKS encoders. *)

type t = { re : float array; im : float array }

val make : int -> t
val of_real : float array -> t
val of_complex : float array -> float array -> t
val length : t -> int
val get_re : t -> int -> float
val get_im : t -> int -> float
val max_abs_diff : t -> t -> float
(** Max over slots of the modulus of the difference. *)

val max_abs : t -> float
val pp : Format.formatter -> t -> unit
