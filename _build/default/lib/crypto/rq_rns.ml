module Bigint = Chet_bigint.Bigint

type ctx = { n : int; primes : int array; ntts : Ntt.table array }

let make_ctx ~n ~primes =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Rq_rns.make_ctx: duplicate prime";
      Hashtbl.add seen p ())
    primes;
  { n; primes; ntts = Array.map (fun p -> Ntt.make_table ~n ~prime:p) primes }

let ctx_n ctx = ctx.n
let ctx_primes ctx = ctx.primes

type t = { basis : int array; comps : int array array; ntt : bool }

let basis t = t.basis
let is_ntt t = t.ntt
let zero ctx basis = { basis = Array.copy basis; comps = Array.map (fun _ -> Array.make ctx.n 0) basis; ntt = false }
let copy t = { t with comps = Array.map Array.copy t.comps; basis = Array.copy t.basis }

let same_basis a b = a.basis = b.basis

let of_centered_coeffs ctx basis coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq_rns.of_centered_coeffs: wrong length";
  let comps =
    Array.map
      (fun i ->
        let p = ctx.primes.(i) in
        Array.map (fun c -> Modarith.reduce c p) coeffs)
      basis
  in
  { basis = Array.copy basis; comps; ntt = false }

let of_bigint_coeffs ctx basis coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq_rns.of_bigint_coeffs: wrong length";
  let comps =
    Array.map
      (fun i ->
        let p = ctx.primes.(i) in
        Array.map (fun c -> Bigint.mod_int c p) coeffs)
      basis
  in
  { basis = Array.copy basis; comps; ntt = false }

let modulus ctx basis =
  Array.fold_left (fun acc i -> Bigint.mul_int acc ctx.primes.(i)) Bigint.one basis

let to_ntt ctx t =
  if t.ntt then t
  else begin
    let comps =
      Array.mapi
        (fun k comp ->
          let a = Array.copy comp in
          Ntt.forward ctx.ntts.(t.basis.(k)) a;
          a)
        t.comps
    in
    { t with comps; ntt = true }
  end

let from_ntt ctx t =
  if not t.ntt then t
  else begin
    let comps =
      Array.mapi
        (fun k comp ->
          let a = Array.copy comp in
          Ntt.inverse ctx.ntts.(t.basis.(k)) a;
          a)
        t.comps
    in
    { t with comps; ntt = false }
  end

let to_bigint_coeffs ctx t =
  let t = from_ntt ctx t in
  let nb = Array.length t.basis in
  let q = modulus ctx t.basis in
  (* Garner-free CRT: x = Σ ((r_i * inv_i) mod q_i) * (Q/q_i) mod Q *)
  let q_over = Array.map (fun i -> Bigint.div q (Bigint.of_int ctx.primes.(i))) t.basis in
  let invs =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        Modarith.inv_mod (Bigint.mod_int q_over.(k) p) p)
      t.basis
  in
  Array.init ctx.n (fun j ->
      let acc = ref Bigint.zero in
      for k = 0 to nb - 1 do
        let p = ctx.primes.(t.basis.(k)) in
        let c = Modarith.mul_mod t.comps.(k).(j) invs.(k) p in
        acc := Bigint.add !acc (Bigint.mul_int q_over.(k) c)
      done;
      Bigint.emod !acc q)

let to_centered_bigint_coeffs ctx t =
  let q = modulus ctx t.basis in
  Array.map (fun c -> Bigint.centered_mod c q) (to_bigint_coeffs ctx t)

let map2 ctx name f a b =
  ignore ctx;
  if not (same_basis a b) then invalid_arg (name ^ ": basis mismatch");
  if a.ntt <> b.ntt then invalid_arg (name ^ ": NTT-form mismatch");
  let comps =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        let ca = a.comps.(k) and cb = b.comps.(k) in
        Array.init ctx.n (fun j -> f ca.(j) cb.(j) p))
      a.basis
  in
  { basis = Array.copy a.basis; comps; ntt = a.ntt }

let add ctx a b = map2 ctx "Rq_rns.add" Modarith.add_mod a b
let sub ctx a b = map2 ctx "Rq_rns.sub" Modarith.sub_mod a b

let neg ctx t =
  let comps =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        Array.map (fun c -> Modarith.neg_mod c p) t.comps.(k))
      t.basis
  in
  { t with comps; basis = Array.copy t.basis }

let mul ctx a b =
  let a = to_ntt ctx a and b = to_ntt ctx b in
  map2 ctx "Rq_rns.mul" Modarith.mul_mod a b

let mul_scalar ctx t s =
  let comps =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        let s = Modarith.reduce s p in
        Array.map (fun c -> Modarith.mul_mod c s p) t.comps.(k))
      t.basis
  in
  { t with comps; basis = Array.copy t.basis }

let add_scalar ctx t s =
  if t.ntt then invalid_arg "Rq_rns.add_scalar: coefficient form required";
  let r = copy t in
  Array.iteri
    (fun k i ->
      let p = ctx.primes.(i) in
      r.comps.(k).(0) <- Modarith.add_mod r.comps.(k).(0) (Modarith.reduce s p) p)
    r.basis;
  r

let automorphism ctx t ~g =
  if t.ntt then invalid_arg "Rq_rns.automorphism: coefficient form required";
  let index = Encoding.automorphism_index ~n:ctx.n ~g in
  let comps =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        let src = t.comps.(k) in
        let dst = Array.make ctx.n 0 in
        for j = 0 to ctx.n - 1 do
          let j', negate = index.(j) in
          dst.(j') <- (if negate then Modarith.neg_mod src.(j) p else src.(j))
        done;
        dst)
      t.basis
  in
  { t with comps; basis = Array.copy t.basis }

let drop_last ctx t ~rounded =
  if t.ntt then invalid_arg "Rq_rns.drop_last: coefficient form required";
  let nb = Array.length t.basis in
  if nb < 2 then invalid_arg "Rq_rns.drop_last: nothing to drop";
  let last_idx = t.basis.(nb - 1) in
  let q_last = ctx.primes.(last_idx) in
  let half = q_last / 2 in
  let last = t.comps.(nb - 1) in
  let basis = Array.sub t.basis 0 (nb - 1) in
  let comps =
    Array.init (nb - 1) (fun k ->
        let p = ctx.primes.(t.basis.(k)) in
        if not rounded then Array.copy t.comps.(k)
        else begin
          let inv = Modarith.inv_mod (q_last mod p) p in
          Array.init ctx.n (fun j ->
              (* centered lift of the dropped residue for proper rounding *)
              let d = if last.(j) > half then last.(j) - q_last else last.(j) in
              let c = Modarith.sub_mod t.comps.(k).(j) (Modarith.reduce d p) p in
              Modarith.mul_mod c inv p)
        end)
  in
  { basis; comps; ntt = false }

let subset t indices =
  let pos i =
    let rec find k =
      if k >= Array.length t.basis then invalid_arg "Rq_rns.subset: index not in basis"
      else if t.basis.(k) = i then k
      else find (k + 1)
    in
    find 0
  in
  {
    basis = Array.copy indices;
    comps = Array.map (fun i -> Array.copy t.comps.(pos i)) indices;
    ntt = t.ntt;
  }

let equal a b = a.basis = b.basis && a.ntt = b.ntt && a.comps = b.comps

let of_components ~basis ~comps ~ntt =
  if Array.length basis <> Array.length comps then invalid_arg "Rq_rns.of_components: arity mismatch";
  { basis = Array.copy basis; comps = Array.map Array.copy comps; ntt }

let position t i =
  let rec find k =
    if k >= Array.length t.basis then invalid_arg "Rq_rns: index not in basis"
    else if t.basis.(k) = i then k
    else find (k + 1)
  in
  find 0

let component t ~basis_index = Array.copy t.comps.(position t basis_index)

let scale_component ctx t ~basis_index ~scalar =
  let k0 = position t basis_index in
  let comps =
    Array.mapi
      (fun k i ->
        if k <> k0 then Array.make (Array.length t.comps.(k)) 0
        else begin
          let p = ctx.primes.(i) in
          let s = Modarith.reduce scalar p in
          Array.map (fun c -> Modarith.mul_mod c s p) t.comps.(k)
        end)
      t.basis
  in
  { t with comps; basis = Array.copy t.basis }
