let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse_permute re im =
  let n = Array.length re in
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let tr = re.(i) in
      re.(i) <- re.(!j);
      re.(!j) <- tr;
      let ti = im.(i) in
      im.(i) <- im.(!j);
      im.(!j) <- ti
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done

let transform sign re im =
  let n = Array.length re in
  if not (is_pow2 n) then invalid_arg "Fft: length must be a power of two";
  if Array.length im <> n then invalid_arg "Fft: re/im length mismatch";
  bit_reverse_permute re im;
  let len = ref 2 in
  while !len <= n do
    let ang = sign *. 2.0 *. Float.pi /. float_of_int !len in
    let wr = cos ang and wi = sin ang in
    let i = ref 0 in
    while !i < n do
      let cr = ref 1.0 and ci = ref 0.0 in
      for k = 0 to (!len / 2) - 1 do
        let a = !i + k and b = !i + k + (!len / 2) in
        let vr = (re.(b) *. !cr) -. (im.(b) *. !ci) in
        let vi = (re.(b) *. !ci) +. (im.(b) *. !cr) in
        re.(b) <- re.(a) -. vr;
        im.(b) <- im.(a) -. vi;
        re.(a) <- re.(a) +. vr;
        im.(a) <- im.(a) +. vi;
        let ncr = (!cr *. wr) -. (!ci *. wi) in
        ci := (!cr *. wi) +. (!ci *. wr);
        cr := ncr
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done

let forward ~re ~im = transform 1.0 re im

let inverse ~re ~im =
  transform (-1.0) re im;
  let n = float_of_int (Array.length re) in
  for i = 0 to Array.length re - 1 do
    re.(i) <- re.(i) /. n;
    im.(i) <- im.(i) /. n
  done
