module Bigint = Chet_bigint.Bigint

type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x43484554 (* "CHET" *) |]
let state t = t
let uniform_mod t m = Random.State.int t m

let ternary t n = Array.init n (fun _ -> Random.State.int t 3 - 1)

let gaussian t ~sigma n =
  let sample () =
    let u1 = Random.State.float t 1.0 +. 1e-12 in
    let u2 = Random.State.float t 1.0 in
    let g = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) *. sigma in
    let bound = 6.0 *. sigma in
    let g = Float.max (-.bound) (Float.min bound g) in
    int_of_float (Float.round g)
  in
  Array.init n (fun _ -> sample ())

let uniform_poly t ~modulus n = Array.init n (fun _ -> Random.State.int t modulus)

let uniform_bigint_poly t ~modulus n =
  let rand31 () = Random.State.bits t in
  Array.init n (fun _ -> Bigint.random_below rand31 modulus)
