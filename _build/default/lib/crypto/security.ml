type level = Bits128 | Bits192 | Bits256

(* (N, max logQ at 128 / 192 / 256 bits), ternary secret, classical attacks;
   HE Standard (homomorphicencryption.org), Table 1. The 65536 row follows
   the same doubling pattern (the standard's draft extension). *)
let table =
  [| (1024, 27, 19, 14);
     (2048, 54, 37, 29);
     (4096, 109, 75, 58);
     (8192, 218, 152, 118);
     (16384, 438, 305, 237);
     (32768, 881, 611, 476);
     (65536, 1772, 1228, 956);
  |]

let select level (_, a, b, c) = match level with Bits128 -> a | Bits192 -> b | Bits256 -> c

let max_log_q level n =
  let rec find i =
    if i >= Array.length table then invalid_arg "Security.max_log_q: n outside table"
    else begin
      let ((n', _, _, _) as row) = table.(i) in
      if n' = n then select level row else find (i + 1)
    end
  in
  find 0

let min_ring_dim level ~log_q =
  let rec find i =
    if i >= Array.length table then raise Not_found
    else begin
      let ((n', _, _, _) as row) = table.(i) in
      if select level row >= log_q then n' else find (i + 1)
    end
  in
  find 0

(* HEAAN v1.0 shipped with logN=15/16 presets allowing logQ up to ~1240;
   the paper's baselines use such parameters ("somewhat less than 128-bit").
   We model the legacy bound as 1.41x the standard one, which reproduces the
   paper's (N=32768, logQ=940) choice for SqueezeNet-CIFAR. *)
let legacy_heaan_max_log_q n =
  let std = max_log_q Bits128 n in
  std * 141 / 100

let min_ring_dim_legacy ~log_q =
  let rec find i =
    if i >= Array.length table then raise Not_found
    else begin
      let n', _, _, _ = table.(i) in
      if legacy_heaan_max_log_q n' >= log_q then n' else find (i + 1)
    end
  in
  find 0
