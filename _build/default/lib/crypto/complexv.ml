type t = { re : float array; im : float array }

let make n = { re = Array.make n 0.0; im = Array.make n 0.0 }
let of_real re = { re = Array.copy re; im = Array.make (Array.length re) 0.0 }

let of_complex re im =
  if Array.length re <> Array.length im then invalid_arg "Complexv.of_complex: length mismatch";
  { re = Array.copy re; im = Array.copy im }

let length t = Array.length t.re
let get_re t i = t.re.(i)
let get_im t i = t.im.(i)

let max_abs_diff a b =
  if length a <> length b then invalid_arg "Complexv.max_abs_diff: length mismatch";
  let m = ref 0.0 in
  for i = 0 to length a - 1 do
    let dr = a.re.(i) -. b.re.(i) and di = a.im.(i) -. b.im.(i) in
    m := Float.max !m (sqrt ((dr *. dr) +. (di *. di)))
  done;
  !m

let max_abs a =
  let m = ref 0.0 in
  for i = 0 to length a - 1 do
    m := Float.max !m (sqrt ((a.re.(i) *. a.re.(i)) +. (a.im.(i) *. a.im.(i))))
  done;
  !m

let pp fmt t =
  Format.fprintf fmt "[";
  for i = 0 to Stdlib.min 7 (length t - 1) do
    Format.fprintf fmt "%s%.4f%+.4fi" (if i > 0 then "; " else "") t.re.(i) t.im.(i)
  done;
  if length t > 8 then Format.fprintf fmt "; …(%d)" (length t);
  Format.fprintf fmt "]"
