(* Negacyclic NTT with psi-power tables in bit-reversed order (the scheme of
   Longa & Naehrig, as implemented in SEAL): the twist by powers of the 2n-th
   root psi is fused into the butterflies, so forward/inverse are single
   passes with no separate pre/post scaling. *)

type table = {
  n : int;
  prime : int;
  psi_rev : int array; (* psi^bitrev(i), i < n *)
  psi_inv_rev : int array;
  n_inv : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse x bits =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if (x lsr i) land 1 = 1 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let log2 n =
  let rec loop n acc = if n = 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let make_table ~n ~prime =
  if not (is_pow2 n) then invalid_arg "Ntt.make_table: n must be a power of two";
  if (prime - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.make_table: prime must be 1 mod 2n";
  let psi = Modarith.root_of_unity ~order:(2 * n) prime in
  let psi_inv = Modarith.inv_mod psi prime in
  let bits = log2 n in
  let powers root =
    let tbl = Array.make n 1 in
    let cur = ref 1 in
    let linear = Array.make n 1 in
    for i = 1 to n - 1 do
      cur := Modarith.mul_mod !cur root prime;
      linear.(i) <- !cur
    done;
    for i = 0 to n - 1 do
      tbl.(i) <- linear.(bit_reverse i bits)
    done;
    tbl
  in
  {
    n;
    prime;
    psi_rev = powers psi;
    psi_inv_rev = powers psi_inv;
    n_inv = Modarith.inv_mod n prime;
  }

let n t = t.n
let prime t = t.prime

let forward t a =
  let p = t.prime and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.forward: wrong length";
  let t_len = ref n in
  let m = ref 1 in
  while !m < n do
    t_len := !t_len lsr 1;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !t_len in
      let s = t.psi_rev.(!m + i) in
      for j = j1 to j1 + !t_len - 1 do
        let u = a.(j) in
        let v = a.(j + !t_len) * s mod p in
        let sum = u + v in
        a.(j) <- (if sum >= p then sum - p else sum);
        let d = u - v in
        a.(j + !t_len) <- (if d < 0 then d + p else d)
      done
    done;
    m := !m lsl 1
  done

let inverse t a =
  let p = t.prime and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.inverse: wrong length";
  let t_len = ref 1 in
  let m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m lsr 1 in
    for i = 0 to h - 1 do
      let s = t.psi_inv_rev.(h + i) in
      for j = !j1 to !j1 + !t_len - 1 do
        let u = a.(j) in
        let v = a.(j + !t_len) in
        let sum = u + v in
        a.(j) <- (if sum >= p then sum - p else sum);
        let d = u - v in
        let d = if d < 0 then d + p else d in
        a.(j + !t_len) <- d * s mod p
      done;
      j1 := !j1 + (2 * !t_len)
    done;
    t_len := !t_len lsl 1;
    m := h
  done;
  for j = 0 to n - 1 do
    a.(j) <- a.(j) * t.n_inv mod p
  done

let pointwise_mul t a b =
  let p = t.prime in
  Array.init t.n (fun i -> a.(i) * b.(i) mod p)

let negacyclic_mul t a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  let r = pointwise_mul t fa fb in
  inverse t r;
  r
