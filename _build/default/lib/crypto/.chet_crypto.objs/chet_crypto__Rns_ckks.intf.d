lib/crypto/rns_ckks.mli: Chet_bigint Complexv Encoding Hashtbl Rq_rns Sampling
