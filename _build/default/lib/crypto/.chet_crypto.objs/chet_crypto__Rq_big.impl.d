lib/crypto/rq_big.ml: Array Chet_bigint Encoding Modarith Ntt
