lib/crypto/encoding.ml: Array Fft Float
