lib/crypto/big_ckks.mli: Chet_bigint Complexv Encoding Hashtbl Sampling
