lib/crypto/security.ml: Array
