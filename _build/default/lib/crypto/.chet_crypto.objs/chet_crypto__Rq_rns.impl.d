lib/crypto/rq_rns.ml: Array Chet_bigint Encoding Hashtbl Modarith Ntt
