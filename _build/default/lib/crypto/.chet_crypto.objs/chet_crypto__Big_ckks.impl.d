lib/crypto/big_ckks.ml: Array Chet_bigint Complexv Encoding Float Hashtbl Rq_big Sampling
