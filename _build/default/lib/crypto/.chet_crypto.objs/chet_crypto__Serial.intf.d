lib/crypto/serial.mli: Big_ckks Chet_bigint Rns_ckks Rq_rns
