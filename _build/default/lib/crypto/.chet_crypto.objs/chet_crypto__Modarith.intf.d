lib/crypto/modarith.mli:
