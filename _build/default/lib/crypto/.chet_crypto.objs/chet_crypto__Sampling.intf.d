lib/crypto/sampling.mli: Chet_bigint Random
