lib/crypto/encoding.mli:
