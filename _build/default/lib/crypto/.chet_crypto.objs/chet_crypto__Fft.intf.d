lib/crypto/fft.mli:
