lib/crypto/bfv.mli: Rq_rns Sampling
