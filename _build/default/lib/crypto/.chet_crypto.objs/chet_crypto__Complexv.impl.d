lib/crypto/complexv.ml: Array Float Format Stdlib
