lib/crypto/ntt.ml: Array Modarith
