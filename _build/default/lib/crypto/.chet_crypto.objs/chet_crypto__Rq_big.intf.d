lib/crypto/rq_big.mli: Chet_bigint
