lib/crypto/bfv.ml: Array Chet_bigint Float Hashtbl Modarith Rq_big Rq_rns Sampling
