lib/crypto/sampling.ml: Array Chet_bigint Float Random
