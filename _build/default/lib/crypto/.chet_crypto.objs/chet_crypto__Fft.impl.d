lib/crypto/fft.ml: Array Float
