lib/crypto/rq_rns.mli: Chet_bigint
