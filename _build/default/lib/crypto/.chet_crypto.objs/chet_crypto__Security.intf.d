lib/crypto/security.mli:
