lib/crypto/serial.ml: Array Big_ckks Buffer Chet_bigint Hashtbl Int64 Printf Rns_ckks Rq_rns Stdlib String
