lib/crypto/ntt.mli:
