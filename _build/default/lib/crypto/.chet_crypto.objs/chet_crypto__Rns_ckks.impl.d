lib/crypto/rns_ckks.ml: Array Chet_bigint Complexv Encoding Float Hashtbl Modarith Rq_rns Sampling
