lib/crypto/complexv.mli: Format
