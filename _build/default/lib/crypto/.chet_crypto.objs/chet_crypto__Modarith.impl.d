lib/crypto/modarith.ml: Array List Stdlib
