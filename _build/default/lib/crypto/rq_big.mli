(** Polynomials in [Z_Q\[X\]/(X^n+1)] with big-integer coefficients and
    power-of-two modulus [Q = 2^logq] — the representation used by the
    HEAAN-style CKKS scheme ({!Big_ckks}).

    Coefficients are stored in [\[0, Q)]. Multiplication converts to a CRT
    basis of word-sized NTT primes (the same trick HEAAN itself uses), does
    negacyclic NTT products, and reconstructs — exact as long as the true
    product coefficients fit the configured head-room. *)

module Bigint = Chet_bigint.Bigint

type ctx

val make_ctx : n:int -> max_product_bits:int -> ctx
(** [max_product_bits]: an upper bound on [log2] of any product coefficient
    magnitude this context will ever see (typically
    [2·(logq + log_special) + log2 n + 2]). *)

val ctx_n : ctx -> int
val crt_prime_count : ctx -> int

val poly_zero : int -> Bigint.t array
val reduce : logq:int -> Bigint.t array -> Bigint.t array
(** Map arbitrary (signed) coefficients into [\[0, 2^logq)]. *)

val of_centered_ints : logq:int -> int array -> Bigint.t array
val to_centered : logq:int -> Bigint.t array -> Bigint.t array
val add : logq:int -> Bigint.t array -> Bigint.t array -> Bigint.t array
val sub : logq:int -> Bigint.t array -> Bigint.t array -> Bigint.t array
val neg : logq:int -> Bigint.t array -> Bigint.t array

val mul : ctx -> logq:int -> Bigint.t array -> Bigint.t array -> Bigint.t array
(** Negacyclic product mod [2^logq]. Operands need not be reduced; they are
    centered internally to keep the CRT head-room small. *)

val mul_scalar : logq:int -> Bigint.t array -> Bigint.t -> Bigint.t array
val automorphism : logq:int -> g:int -> Bigint.t array -> Bigint.t array

val rescale_pow2 : logq:int -> k:int -> Bigint.t array -> Bigint.t array
(** CKKS rescale: divide centered lifts by [2^k] with rounding; result is
    mod [2^(logq - k)]. *)

val mod_down : logq_to:int -> Bigint.t array -> Bigint.t array
(** Reduce to a smaller power-of-two modulus (exact modulus switching). *)

val div_round_pow2 : logq:int -> k:int -> Bigint.t array -> Bigint.t array
(** Divide centered lifts by [2^k] with rounding, staying at modulus
    [2^(logq - k)] — the [/P] step of HEAAN key switching. *)
