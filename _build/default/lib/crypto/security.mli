(** Security tables from the Homomorphic Encryption Standard (Chase et al.,
    reference \[12\] of the paper): for each ring dimension [N], the largest
    [log2 Q] that still gives the requested security level against known
    attacks, assuming ternary secrets. CHET "explicitly encodes" this table
    and by default picks the smallest [N] and [Q] with 128-bit security
    (§2.3, §5.2). *)

type level = Bits128 | Bits192 | Bits256

val max_log_q : level -> int -> int
(** [max_log_q level n]: largest supported [log2 Q] for ring dimension [n].
    @raise Invalid_argument for [n] outside the table (1024..65536). *)

val min_ring_dim : level -> log_q:int -> int
(** Smallest power-of-two [N] in the table such that [log_q] is secure.
    @raise Not_found if [log_q] exceeds the largest table entry. *)

val legacy_heaan_max_log_q : int -> int
(** The non-standard bound used by the paper's hand-written HEAAN baselines
    ("somewhat less than 128-bit security", §6): HEAAN v1.0's default
    parameterisation admits larger [Q] per [N] than the standard table. *)

val min_ring_dim_legacy : log_q:int -> int
