(** BFV (Brakerski/Fan–Vercauteren): the integer FHE scheme the paper calls
    "FV" — "CHET can trivially target other FHE schemes such as FV or BGV"
    (§2.2). Implemented to validate that claim through the HISA: BFV has no
    rescaling, so [max_rescale] is constantly 1 (exactly the behaviour
    Table 2 prescribes for schemes without rescaling support) and fixed-point
    scales grow monotonically — which is why only shallow circuits
    (CryptoNets-style) are practical, the paper's motivation for CKKS.

    Messages are vectors over [Z_t] ([t] a batching-friendly prime);
    fixed-point values are encoded as [round(v·scale) mod t]. Slots follow
    the same powers-of-5 orbit as the CKKS embedding, so slot rotation is the
    same Galois automorphism machinery. *)

module Rq = Rq_rns

type params = {
  n : int;
  plain_modulus_bits : int;  (** size of the batching prime [t] *)
  coeff_modulus_bits : int;
  num_coeff_primes : int;
  sigma : float;
}

val default_params :
  ?n:int -> ?plain_bits:int -> ?bits:int -> num_coeff_primes:int -> unit -> params

type context

val make_context : params -> context
val plain_modulus : context -> int
val slot_count : context -> int
(** [n/2]: the first row of BFV's batching matrix (the second row is kept
    zero so that row rotation matches the HISA's flat rotation). *)

type secret_key
type keys

val keygen : context -> Sampling.t -> secret_key * keys
val add_rotation_key : context -> Sampling.t -> secret_key -> keys -> int -> unit

type plaintext
type ciphertext

val encode : context -> scale:float -> float array -> plaintext
val decode : context -> plaintext -> scale:float -> float array
(** Values are recovered centred: residues above [t/2] read as negative. *)

val encrypt : context -> Sampling.t -> keys -> plaintext -> ciphertext
val decrypt : context -> secret_key -> ciphertext -> plaintext
val add : context -> ciphertext -> ciphertext -> ciphertext
val sub : context -> ciphertext -> ciphertext -> ciphertext
val add_plain : context -> ciphertext -> plaintext -> ciphertext
val sub_plain : context -> ciphertext -> plaintext -> ciphertext

val mul : context -> keys -> ciphertext -> ciphertext -> ciphertext
(** The BFV tensor product: exact integer polynomial products scaled by
    [t/Q] with rounding, then relinearised. *)

val mul_plain : context -> ciphertext -> plaintext -> ciphertext
val mul_scalar : context -> ciphertext -> int -> ciphertext
val rotate : context -> keys -> ciphertext -> int -> ciphertext
(** Rotate the slot row left by [r] (requires the key from
    {!add_rotation_key}). *)

val scale_of : ciphertext -> float

val adjust_scale : ciphertext -> float -> ciphertext
(** Multiply the tracked fixed-point scale (after {!mul_scalar}, whose
    integer factor carries scale [k]). *)
