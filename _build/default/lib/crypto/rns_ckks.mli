(** RNS-CKKS: the full residue-number-system variant of the CKKS approximate
    FHE scheme (Cheon et al., SAC 2018) — the scheme implemented by
    "SEAL v3.1" in the paper.

    Ciphertexts live over a chain of NTT-friendly primes [q_0 … q_{l-1}];
    {!rescale} drops primes from the end of the chain. Key switching uses
    per-prime digit decomposition with one special prime, as in SEAL. *)

module Rq = Rq_rns
module Bigint = Chet_bigint.Bigint

type params = {
  n : int;  (** ring dimension (power of two); SIMD width is [n/2] *)
  coeff_modulus_bits : int;  (** bit size of each chain prime *)
  num_coeff_primes : int;  (** chain length [L] *)
  sigma : float;  (** RLWE error stddev *)
}

val default_params : ?n:int -> ?bits:int -> num_coeff_primes:int -> unit -> params

type context

val make_context : params -> context
val params : context -> params
val slot_count : context -> int
val coeff_primes : context -> int array
val special_prime : context -> int
val max_level : context -> int
(** = [num_coeff_primes]; fresh ciphertexts start here. *)

val total_modulus_bits : context -> int
(** [log2 (Q * special)] — the quantity the security table bounds. *)

val encoding : context -> Encoding.ctx

val rq_ctx : context -> Rq_rns.ctx
(** The underlying polynomial-ring context (serialisation needs it). *)

type secret_key
type public_key
type kswitch_key

type keys = {
  public : public_key;
  relin : kswitch_key;
  rotation : (int, kswitch_key) Hashtbl.t;  (** galois element -> key *)
}

val keygen : context -> Sampling.t -> secret_key * keys
(** Generates secret, public and relinearisation keys (no rotation keys —
    add them with {!add_rotation_key}, mirroring CHET's explicit
    rotation-key selection). *)

val add_rotation_key : context -> Sampling.t -> secret_key -> keys -> int -> unit
(** [add_rotation_key ctx rng sk keys r]: create the key for rotating slots
    left by [r] (negative = right). Idempotent. *)

val add_power_of_two_rotation_keys : context -> Sampling.t -> secret_key -> keys -> unit
(** The scheme-default configuration: keys for every power-of-two left and
    right rotation ([2·log2(n/2)] keys, §2.4). *)

val rotation_key_count : keys -> int

type plaintext = { poly : Rq.t; pt_scale : float; pt_level : int }
type ciphertext = { c0 : Rq.t; c1 : Rq.t; level : int; scale : float }

val encode : context -> level:int -> scale:float -> Complexv.t -> plaintext
(** Encode [n/2] complex slot values. *)

val encode_real : context -> level:int -> scale:float -> float array -> plaintext

val decode : context -> plaintext -> Complexv.t

val encrypt : context -> Sampling.t -> public_key -> plaintext -> ciphertext
val decrypt : context -> secret_key -> ciphertext -> plaintext

val add : context -> ciphertext -> ciphertext -> ciphertext
val sub : context -> ciphertext -> ciphertext -> ciphertext
val negate : context -> ciphertext -> ciphertext
val add_plain : context -> ciphertext -> plaintext -> ciphertext
val sub_plain : context -> ciphertext -> plaintext -> ciphertext

val mul : context -> keys -> ciphertext -> ciphertext -> ciphertext
(** Ciphertext–ciphertext product, relinearised. Scales multiply. *)

val mul_plain : context -> ciphertext -> plaintext -> ciphertext

val mul_scalar : context -> ciphertext -> float -> scale:float -> ciphertext
(** [mul_scalar ctx ct x ~scale]: multiply every slot by [round(x·scale)]
    (an integer constant — the cheap [mulScalar] of Table 2). *)

val add_scalar : context -> ciphertext -> float -> ciphertext
val max_rescale : context -> ciphertext -> int -> int
(** Largest product of next chain primes [<= ub] (Table 2 semantics; returns
    1 if even the next prime exceeds [ub]). *)

val rescale : context -> ciphertext -> int -> ciphertext
(** [rescale ctx ct x]: [x] must be a value returned by {!max_rescale}. *)

val mod_switch_to_level : context -> ciphertext -> int -> ciphertext
(** Drop chain primes (without rescaling — the scale is unchanged) until the
    ciphertext sits at the given level. Exact: [Q'] divides [Q]. *)

val rotate : context -> keys -> ciphertext -> int -> ciphertext
(** Rotate slots left by [r] using the exact key for [r]; falls back to a
    sequence of power-of-two rotations when the exact key is absent.
    @raise Not_found if no combination of available keys reaches [r]. *)

val rotate_key_available : keys -> context -> int -> bool

val level_of : ciphertext -> int
val scale_of : ciphertext -> float

(** {1 Key part accessors} — serialisation of the Figure-3 protocol's public
    material (the secret key deliberately has no accessor). *)

val public_key_parts : public_key -> Rq.t * Rq.t
val public_key_of_parts : Rq.t * Rq.t -> public_key
val kswitch_pairs : kswitch_key -> (Rq.t * Rq.t) array
val kswitch_of_pairs : (Rq.t * Rq.t) array -> kswitch_key
