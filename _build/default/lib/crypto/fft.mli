(** Iterative radix-2 complex FFT on parallel [re]/[im] float arrays.

    Substrate for the CKKS canonical embedding ({!Encoding}); replaces the
    FFT inside SEAL's and HEAAN's encoders. Unnormalised: [inverse] divides
    by [n], [forward] does not. *)

val forward : re:float array -> im:float array -> unit
(** In-place DFT with kernel [exp(+2πi·jk/n)] (note the sign: this is the
    evaluation direction used by the embedding). Length must be a power of
    two. *)

val inverse : re:float array -> im:float array -> unit
(** Inverse of {!forward} (kernel [exp(-2πi·jk/n)], scaled by [1/n]). *)
