module Bigint = Chet_bigint.Bigint

type ctx = {
  n : int;
  primes : int array;
  ntts : Ntt.table array;
  crt_modulus : Bigint.t;
  crt_q_over : Bigint.t array; (* M / p_i *)
  crt_invs : int array; (* (M/p_i)^{-1} mod p_i *)
}

let make_ctx ~n ~max_product_bits =
  let bits_per_prime = 29 in
  (* head-room: reconstruct centered values, so the CRT modulus must exceed
     twice the magnitude bound *)
  let count = ((max_product_bits + 2) / bits_per_prime) + 1 in
  let primes = Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count in
  let ntts = Array.map (fun p -> Ntt.make_table ~n ~prime:p) primes in
  let crt_modulus = Array.fold_left (fun acc p -> Bigint.mul_int acc p) Bigint.one primes in
  let crt_q_over = Array.map (fun p -> Bigint.div crt_modulus (Bigint.of_int p)) primes in
  let crt_invs =
    Array.mapi (fun i p -> Modarith.inv_mod (Bigint.mod_int crt_q_over.(i) p) p) primes
  in
  { n; primes; ntts; crt_modulus; crt_q_over; crt_invs }

let ctx_n ctx = ctx.n
let crt_prime_count ctx = Array.length ctx.primes
let poly_zero n = Array.make n Bigint.zero

let modulus logq = Bigint.pow2 logq

let reduce ~logq a =
  let q = modulus logq in
  Array.map (fun c -> Bigint.emod c q) a

let of_centered_ints ~logq ints =
  let q = modulus logq in
  Array.map (fun c -> Bigint.emod (Bigint.of_int c) q) ints

let to_centered ~logq a =
  let q = modulus logq in
  Array.map (fun c -> Bigint.centered_mod c q) a

let add ~logq a b =
  let q = modulus logq in
  Array.init (Array.length a) (fun i ->
      let s = Bigint.add a.(i) b.(i) in
      if Bigint.compare s q >= 0 then Bigint.sub s q else s)

let sub ~logq a b =
  let q = modulus logq in
  Array.init (Array.length a) (fun i ->
      let d = Bigint.sub a.(i) b.(i) in
      if Bigint.sign d < 0 then Bigint.add d q else d)

let neg ~logq a =
  let q = modulus logq in
  Array.map (fun c -> if Bigint.is_zero c then c else Bigint.sub q c) a

let mul ctx ~logq a b =
  if Array.length a <> ctx.n || Array.length b <> ctx.n then invalid_arg "Rq_big.mul: wrong length";
  let a = to_centered ~logq a and b = to_centered ~logq b in
  let nprimes = Array.length ctx.primes in
  (* residues per prime, negacyclic NTT product *)
  let residue_prod =
    Array.init nprimes (fun k ->
        let p = ctx.primes.(k) in
        let ra = Array.map (fun c -> Bigint.mod_int c p) a in
        let rb = Array.map (fun c -> Bigint.mod_int c p) b in
        Ntt.negacyclic_mul ctx.ntts.(k) ra rb)
  in
  let q = modulus logq in
  Array.init ctx.n (fun j ->
      let acc = ref Bigint.zero in
      for k = 0 to nprimes - 1 do
        let c = Modarith.mul_mod residue_prod.(k).(j) ctx.crt_invs.(k) ctx.primes.(k) in
        acc := Bigint.add !acc (Bigint.mul_int ctx.crt_q_over.(k) c)
      done;
      (* centered reconstruction gives the exact signed integer product *)
      Bigint.emod (Bigint.centered_mod !acc ctx.crt_modulus) q)

let mul_scalar ~logq a s =
  let q = modulus logq in
  Array.map (fun c -> Bigint.emod (Bigint.mul c s) q) a

let automorphism ~logq ~g a =
  let n = Array.length a in
  let q = modulus logq in
  let index = Encoding.automorphism_index ~n ~g in
  let dst = poly_zero n in
  Array.iteri
    (fun j c ->
      let j', negate = index.(j) in
      dst.(j') <- (if negate && not (Bigint.is_zero c) then Bigint.sub q c else c))
    a;
  dst

let rescale_pow2 ~logq ~k a =
  if k >= logq then invalid_arg "Rq_big.rescale_pow2: would drop entire modulus";
  let q = modulus logq in
  let q' = modulus (logq - k) in
  let d = Bigint.pow2 k in
  Array.map (fun c -> Bigint.emod (Bigint.div_round (Bigint.centered_mod c q) d) q') a

let mod_down ~logq_to a =
  let q' = modulus logq_to in
  Array.map (fun c -> Bigint.emod c q') a

let div_round_pow2 = rescale_pow2
