(** Parser for CHET's textual tensor-circuit format — the "input is very
    similar to how these models are specified in frameworks such as
    TensorFlow" of §3.2, as a standalone text file. Weights are synthesised
    deterministically from per-operation seeds (Glorot), since the format
    describes circuit *structure* and schema.

    Grammar (newline-terminated statements, [#] comments):
    {v
    input  image : [1, 28, 28] encrypted
    c1 = conv2d   image filters=4 kernel=5 stride=1 padding=valid seed=1
    a1 = poly_act c1 a=0.1 b=1.0
    p1 = avg_pool a1 ksize=2 stride=2
    f1 = flatten  p1
    d1 = matmul   f1 out=32 seed=2
    g  = square   d1
    s  = residual d1 g
    m  = concat   c1, c2
    gp = global_avg_pool c1
    bn = batch_norm c1 seed=3
    output d1
    v} *)

exception Parse_error of string * int * int  (** message, line, column *)

val parse : name:string -> string -> Chet_nn.Circuit.t
(** @raise Parse_error on syntax or semantic errors (undefined names,
    missing keys, shape mismatches). *)

val parse_file : string -> Chet_nn.Circuit.t
(** Reads a [.chet] file; circuit name = basename. *)
