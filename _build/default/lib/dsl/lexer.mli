(** Lexer for the textual tensor-circuit format (see {!Parser} for the
    grammar). Hand-written; produces a token stream with line/column
    positions for error reporting. *)

type token =
  | Ident of string
  | Int of int
  | Float of float
  | Equals
  | Colon
  | Comma
  | Lbracket
  | Rbracket
  | Newline
  | Eof

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int  (** message, line, column *)

val tokenize : string -> positioned list
(** Comments run from [#] to end of line. Newlines are significant (they
    terminate statements); consecutive newlines collapse. *)

val pp_token : Format.formatter -> token -> unit
