module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset

exception Parse_error of string * int * int

type value = Vint of int | Vfloat of float | Vident of string

type state = {
  mutable toks : Lexer.positioned list;
  builder : Circuit.builder;
  env : (string, Circuit.node) Hashtbl.t;
  mutable output : Circuit.node option;
}

let fail (p : Lexer.positioned) fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (msg, p.Lexer.line, p.Lexer.col))) fmt

let peek st = match st.toks with [] -> assert false | p :: _ -> p

let next st =
  let p = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  p

let expect st want =
  let p = next st in
  if p.Lexer.token <> want then
    fail p "expected %a but found %a" Lexer.pp_token want Lexer.pp_token p.Lexer.token

let ident st =
  let p = next st in
  match p.Lexer.token with
  | Lexer.Ident s -> s
  | t -> fail p "expected an identifier, found %a" Lexer.pp_token t

let int_lit st =
  let p = next st in
  match p.Lexer.token with
  | Lexer.Int n -> n
  | t -> fail p "expected an integer, found %a" Lexer.pp_token t

let skip_newlines st =
  let rec loop () =
    match (peek st).Lexer.token with
    | Lexer.Newline ->
        ignore (next st);
        loop ()
    | _ -> ()
  in
  loop ()

let end_of_statement st =
  match (peek st).Lexer.token with
  | Lexer.Newline | Lexer.Eof -> ()
  | t -> fail (peek st) "unexpected %a at end of statement" Lexer.pp_token t

(* key=value arguments up to end of line *)
let parse_kvs st =
  let kvs = ref [] in
  let rec loop () =
    match (peek st).Lexer.token with
    | Lexer.Ident key ->
        let kp = next st in
        expect st Lexer.Equals;
        let vp = next st in
        let v =
          match vp.Lexer.token with
          | Lexer.Int n -> Vint n
          | Lexer.Float f -> Vfloat f
          | Lexer.Ident s -> Vident s
          | t -> fail vp "expected a value after %s=, found %a" key Lexer.pp_token t
        in
        if List.mem_assoc key !kvs then fail kp "duplicate argument %s" key;
        kvs := (key, v) :: !kvs;
        loop ()
    | _ -> ()
  in
  loop ();
  !kvs

let get_int p kvs key =
  match List.assoc_opt key kvs with
  | Some (Vint n) -> n
  | Some _ -> fail p "argument %s must be an integer" key
  | None -> fail p "missing required argument %s" key

let get_int_default kvs key default =
  match List.assoc_opt key kvs with Some (Vint n) -> Some n | None -> Some default | Some _ -> None

let get_float p kvs key =
  match List.assoc_opt key kvs with
  | Some (Vfloat f) -> f
  | Some (Vint n) -> float_of_int n
  | Some (Vident _) -> fail p "argument %s must be a number" key
  | None -> fail p "missing required argument %s" key

let lookup st p name =
  match Hashtbl.find_opt st.env name with
  | Some node -> node
  | None -> fail p "undefined tensor %s" name

let operand st = lookup st (peek st) (ident st)

let check_known p kvs allowed =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        fail p "unknown argument %s (allowed: %s)" k (String.concat ", " allowed))
    kvs

let parse_shape st =
  expect st Lexer.Lbracket;
  let dims = ref [ int_lit st ] in
  let rec loop () =
    match (peek st).Lexer.token with
    | Lexer.Comma ->
        ignore (next st);
        dims := int_lit st :: !dims;
        loop ()
    | _ -> ()
  in
  loop ();
  expect st Lexer.Rbracket;
  Array.of_list (List.rev !dims)

let parse_input st p =
  let name = ident st in
  expect st Lexer.Colon;
  let shape = parse_shape st in
  let encrypted =
    match (peek st).Lexer.token with
    | Lexer.Ident "encrypted" ->
        ignore (next st);
        true
    | Lexer.Ident "plain" ->
        ignore (next st);
        false
    | _ -> true
  in
  (try
     let node = Circuit.input st.builder ~name ~encrypted shape in
     Hashtbl.replace st.env name node
   with Invalid_argument msg -> fail p "%s" msg);
  end_of_statement st

let parse_op st target =
  let p = peek st in
  let op_name = ident st in
  let node =
    try
      match op_name with
      | "conv2d" ->
          let src = operand st in
          let kvs = parse_kvs st in
          check_known p kvs [ "filters"; "kernel"; "stride"; "padding"; "seed"; "bias" ];
          let filters = get_int p kvs "filters" in
          let kernel = get_int p kvs "kernel" in
          let stride = match get_int_default kvs "stride" 1 with Some s -> s | None -> fail p "stride must be an integer" in
          let seed = get_int p kvs "seed" in
          let padding =
            match List.assoc_opt "padding" kvs with
            | Some (Vident "same") -> Tensor.Same
            | Some (Vident "valid") | None -> Tensor.Valid
            | Some _ -> fail p "padding must be same or valid"
          in
          let with_bias =
            match List.assoc_opt "bias" kvs with
            | Some (Vident "false") -> false
            | Some (Vident "true") | None -> true
            | Some _ -> fail p "bias must be true or false"
          in
          let rs = Random.State.make [| seed |] in
          let in_c = src.Circuit.shape.(0) in
          let weights = Dataset.glorot rs [| filters; in_c; kernel; kernel |] in
          let bias = if with_bias then Some (Dataset.bias rs filters) else None in
          Circuit.conv2d st.builder src ~weights ?bias ~stride ~padding ()
      | "matmul" ->
          let src = operand st in
          let kvs = parse_kvs st in
          check_known p kvs [ "out"; "seed"; "bias" ];
          let out = get_int p kvs "out" in
          let seed = get_int p kvs "seed" in
          let rs = Random.State.make [| seed |] in
          let in_d = Tensor.numel_of_shape src.Circuit.shape in
          let weights = Dataset.glorot rs [| out; in_d |] in
          Circuit.matmul st.builder src ~weights ~bias:(Dataset.bias rs out) ()
      | "avg_pool" ->
          let src = operand st in
          let kvs = parse_kvs st in
          check_known p kvs [ "ksize"; "stride" ];
          Circuit.avg_pool st.builder src ~ksize:(get_int p kvs "ksize") ~stride:(get_int p kvs "stride")
      | "global_avg_pool" -> Circuit.global_avg_pool st.builder (operand st)
      | "poly_act" ->
          let src = operand st in
          let kvs = parse_kvs st in
          check_known p kvs [ "a"; "b" ];
          Circuit.poly_act st.builder src ~a:(get_float p kvs "a") ~b:(get_float p kvs "b")
      | "square" -> Circuit.square st.builder (operand st)
      | "batch_norm" ->
          let src = operand st in
          let kvs = parse_kvs st in
          check_known p kvs [ "seed" ];
          let rs = Random.State.make [| get_int p kvs "seed" |] in
          let c = src.Circuit.shape.(0) in
          let scale = Array.init c (fun _ -> 0.8 +. Random.State.float rs 0.4) in
          let shift = Array.init c (fun _ -> Random.State.float rs 0.1 -. 0.05) in
          Circuit.batch_norm st.builder src ~scale ~shift
      | "flatten" -> Circuit.flatten st.builder (operand st)
      | "concat" ->
          let first = operand st in
          let rest = ref [] in
          let rec loop () =
            match (peek st).Lexer.token with
            | Lexer.Comma ->
                ignore (next st);
                rest := operand st :: !rest;
                loop ()
            | _ -> ()
          in
          loop ();
          Circuit.concat st.builder (first :: List.rev !rest)
      | "residual" ->
          let a = operand st in
          let b = operand st in
          Circuit.residual st.builder a b
      | other -> fail p "unknown operation %s" other
    with Invalid_argument msg -> fail p "%s" msg
  in
  Hashtbl.replace st.env target node;
  end_of_statement st

let parse ~name src =
  let st =
    { toks = Lexer.tokenize src; builder = Circuit.builder (); env = Hashtbl.create 16; output = None }
  in
  let rec loop () =
    skip_newlines st;
    let p = peek st in
    match p.Lexer.token with
    | Lexer.Eof -> ()
    | Lexer.Ident "input" ->
        ignore (next st);
        parse_input st p;
        loop ()
    | Lexer.Ident "output" ->
        ignore (next st);
        let out = operand st in
        end_of_statement st;
        st.output <- Some out;
        loop ()
    | Lexer.Ident target ->
        ignore (next st);
        expect st Lexer.Equals;
        parse_op st target;
        loop ()
    | t -> fail p "expected a statement, found %a" Lexer.pp_token t
  in
  (try loop () with Lexer.Lex_error (msg, line, col) -> raise (Parse_error (msg, line, col)));
  match st.output with
  | None -> raise (Parse_error ("no output statement", 0, 0))
  | Some output -> (
      try Circuit.finish st.builder ~name ~output
      with Invalid_argument msg -> raise (Parse_error (msg, 0, 0)))

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse ~name:(Filename.remove_extension (Filename.basename path)) src
