type token =
  | Ident of string
  | Int of int
  | Float of float
  | Equals
  | Colon
  | Comma
  | Lbracket
  | Rbracket
  | Newline
  | Eof

type positioned = { token : token; line : int; col : int }

exception Lex_error of string * int * int

let pp_token fmt = function
  | Ident s -> Format.fprintf fmt "identifier %S" s
  | Int n -> Format.fprintf fmt "integer %d" n
  | Float f -> Format.fprintf fmt "float %g" f
  | Equals -> Format.pp_print_string fmt "'='"
  | Colon -> Format.pp_print_string fmt "':'"
  | Comma -> Format.pp_print_string fmt "','"
  | Lbracket -> Format.pp_print_string fmt "'['"
  | Rbracket -> Format.pp_print_string fmt "']'"
  | Newline -> Format.pp_print_string fmt "newline"
  | Eof -> Format.pp_print_string fmt "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit token = tokens := { token; line = !line; col = !col } :: !tokens in
  let i = ref 0 in
  let advance k =
    col := !col + k;
    i := !i + k
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      (match !tokens with
      | { token = Newline; _ } :: _ | [] -> () (* collapse blank lines *)
      | _ -> emit Newline);
      incr line;
      col := 1;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then advance 1
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '=' then begin
      emit Equals;
      advance 1
    end
    else if c = ':' then begin
      emit Colon;
      advance 1
    end
    else if c = ',' then begin
      emit Comma;
      advance 1
    end
    else if c = '[' then begin
      emit Lbracket;
      advance 1
    end
    else if c = ']' then begin
      emit Rbracket;
      advance 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      let is_float =
        !i < n
        && (src.[!i] = '.' || src.[!i] = 'e' || src.[!i] = 'E')
        && (src.[!i] <> '.' || (!i + 1 < n && is_digit src.[!i + 1]))
      in
      if is_float then begin
        if src.[!i] = '.' then begin
          incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        let text = String.sub src start (!i - start) in
        (match float_of_string_opt text with
        | Some f -> emit (Float f)
        | None -> raise (Lex_error (Printf.sprintf "bad float literal %S" text, !line, !col)));
        col := !col + (!i - start)
      end
      else begin
        let text = String.sub src start (!i - start) in
        (match int_of_string_opt text with
        | Some v -> emit (Int v)
        | None -> raise (Lex_error (Printf.sprintf "bad integer literal %S" text, !line, !col)));
        col := !col + (!i - start)
      end
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      emit (Ident (String.sub src start (!i - start)));
      col := !col + (!i - start)
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c, !line, !col))
  done;
  emit Eof;
  List.rev !tokens
