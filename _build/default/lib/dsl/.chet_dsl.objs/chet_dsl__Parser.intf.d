lib/dsl/parser.mli: Chet_nn
