lib/dsl/parser.ml: Array Chet_nn Chet_tensor Filename Format Hashtbl Lexer List Random String
