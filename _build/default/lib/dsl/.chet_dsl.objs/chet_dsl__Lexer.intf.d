lib/dsl/lexer.mli: Format
