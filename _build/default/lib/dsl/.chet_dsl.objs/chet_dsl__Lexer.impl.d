lib/dsl/lexer.ml: Format List Printf String
