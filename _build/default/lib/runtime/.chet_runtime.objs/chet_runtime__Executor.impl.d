lib/runtime/executor.ml: Array Chet_hisa Chet_nn Chet_tensor Hashtbl Kernels Layout List Stdlib
