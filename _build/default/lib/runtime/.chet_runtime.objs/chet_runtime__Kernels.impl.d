lib/runtime/kernels.ml: Array Chet_hisa Chet_tensor Float Hashtbl Layout List Stdlib
