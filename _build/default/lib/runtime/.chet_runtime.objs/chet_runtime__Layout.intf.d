lib/runtime/layout.mli: Chet_tensor Format
