lib/runtime/layout.ml: Array Chet_tensor Format Stdlib
