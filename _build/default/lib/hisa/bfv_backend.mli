(** HISA backend over the BFV integer scheme — the "FV" target of §2.2.
    [max_rescale] is constantly 1 (Table 2's prescription for schemes
    without rescaling), so fixed-point scales grow monotonically and only
    shallow circuits are practical — the paper's argument for CKKS. *)

type config = {
  ctx : Chet_crypto.Bfv.context;
  rng : Chet_crypto.Sampling.t;
  keys : Chet_crypto.Bfv.keys;
  secret : Chet_crypto.Bfv.secret_key option;
}

val make : config -> Hisa.t
