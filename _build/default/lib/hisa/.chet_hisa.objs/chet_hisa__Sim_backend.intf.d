lib/hisa/sim_backend.mli: Hisa
