lib/hisa/seal_backend.mli: Chet_crypto Hisa
