lib/hisa/clear_backend.mli: Hisa
