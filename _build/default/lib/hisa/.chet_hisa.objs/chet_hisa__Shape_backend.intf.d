lib/hisa/shape_backend.mli: Hisa
