lib/hisa/shape_backend.ml: Array Clear_backend Float Hisa Printf Stdlib
