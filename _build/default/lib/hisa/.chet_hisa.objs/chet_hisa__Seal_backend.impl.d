lib/hisa/seal_backend.ml: Array Chet_crypto Hisa List Stdlib
