lib/hisa/sim_backend.ml: Array Clear_backend Float Hisa Shape_backend Stdlib
