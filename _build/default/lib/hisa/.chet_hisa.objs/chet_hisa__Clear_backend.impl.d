lib/hisa/clear_backend.ml: Array Float Hashtbl Hisa Printf Random Stdlib
