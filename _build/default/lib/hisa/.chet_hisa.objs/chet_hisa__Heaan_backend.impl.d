lib/hisa/heaan_backend.ml: Array Chet_crypto Hisa List Stdlib
