lib/hisa/instrument.ml: Hashtbl Hisa
