lib/hisa/bfv_backend.mli: Chet_crypto Hisa
