lib/hisa/instrument.mli: Hashtbl Hisa
