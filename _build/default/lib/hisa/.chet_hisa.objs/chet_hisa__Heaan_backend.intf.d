lib/hisa/heaan_backend.mli: Chet_crypto Hisa
