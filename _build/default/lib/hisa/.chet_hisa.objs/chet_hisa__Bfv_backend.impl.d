lib/hisa/bfv_backend.ml: Array Chet_crypto Float Hisa
