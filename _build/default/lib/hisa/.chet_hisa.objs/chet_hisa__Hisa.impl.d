lib/hisa/hisa.ml:
