(* Unencrypted HISA backend: computes on cleartext float vectors while
   tracking scales and modulus consumption with the same semantics as the
   target scheme. This is both the reference inference engine and the
   execution vehicle for CHET's data-flow analyses. *)

type config = {
  slots : int;
  scheme : Hisa.scheme_kind;
  strict_modulus : bool;
      (* raise Modulus_exhausted instead of silently computing once the
         virtual modulus runs out — used by failure-injection tests *)
  encode_noise : bool;
      (* model the CKKS approximation noise of encoding: rounding the n
         coefficients perturbs each slot by ~N(0, n/12)/scale — except for
         all-equal vectors, which encode into a single coefficient
         (footnote 3 of the paper). Off by default (bit-exact reference);
         the profile-guided scale search turns it on. *)
}

exception Modulus_exhausted

type budget = Rns_level of int | Logq of int

let initial_budget = function
  | Hisa.Rns_chain primes -> Rns_level (Array.length primes)
  | Hisa.Pow2_modulus logq -> Logq logq

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = cfg.slots

    type pt = { pv : float array; pscale : float }
    type ct = { v : float array; scale : float; budget : budget }

    let fit values =
      let v = Array.make cfg.slots 0.0 in
      Array.blit values 0 v 0 (Stdlib.min (Array.length values) cfg.slots);
      v

    let encode values ~scale =
      (* model fixed-point quantisation: values are representable only at
         multiples of 1/scale, as in the real encoders — this is what makes
         the profile-guided scale search (§5.5) meaningful on this backend *)
      let s = float_of_int scale in
      let pv = Array.map (fun v -> Float.round (v *. s) /. s) (fit values) in
      if cfg.encode_noise then begin
        let all_equal = Array.for_all (fun v -> v = pv.(0)) pv in
        if not all_equal then begin
          (* deterministic per-plaintext noise: same vector -> same noise *)
          let st = Random.State.make [| Hashtbl.hash (scale, values) |] in
          let amp = sqrt (float_of_int (2 * cfg.slots) /. 12.0) /. s in
          let gauss () =
            let u1 = Random.State.float st 1.0 +. 1e-12 and u2 = Random.State.float st 1.0 in
            sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
          in
          for i = 0 to cfg.slots - 1 do
            pv.(i) <- pv.(i) +. (amp *. gauss ())
          done
        end
      end;
      { pv; pscale = s }
    let decode pt = Array.copy pt.pv
    let encrypt pt = { v = Array.copy pt.pv; scale = pt.pscale; budget = initial_budget cfg.scheme }
    let decrypt ct = { pv = Array.copy ct.v; pscale = ct.scale }
    let copy ct = { ct with v = Array.copy ct.v }
    let free _ = ()

    let rot_left ct k =
      let n = cfg.slots in
      let k = ((k mod n) + n) mod n in
      { ct with v = Array.init n (fun i -> ct.v.((i + k) mod n)) }

    let rot_right ct k = rot_left ct (-k)

    (* kernels equalise scales only approximately (integer mask factors, RNS
   rescaling drift); 1e-4 relative slack admits value error well below the
   scheme noise floor *)
let scales_compatible a b = Float.abs (a -. b) <= 1e-4 *. Float.max 1.0 (Float.max a b)

    (* binary ops silently modulus-switch to the lower operand, as the real
       backends do *)
    let budget_min a b =
      match (a, b) with
      | Rns_level x, Rns_level y -> Rns_level (Stdlib.min x y)
      | Logq x, Logq y -> Logq (Stdlib.min x y)
      | _ -> invalid_arg "Clear: mixed scheme budgets"

    let check2 name a b =
      if not (scales_compatible a.scale b.scale) then invalid_arg (name ^ ": scale mismatch")

    let map2 f a b = Array.init cfg.slots (fun i -> f a.(i) b.(i))

    let add a b =
      check2 "Clear.add" a b;
      { a with v = map2 ( +. ) a.v b.v; budget = budget_min a.budget b.budget }

    let sub a b =
      check2 "Clear.sub" a b;
      { a with v = map2 ( -. ) a.v b.v; budget = budget_min a.budget b.budget }

    let add_plain c p =
      if not (scales_compatible c.scale p.pscale) then
        invalid_arg
          (Printf.sprintf "Clear.add_plain: scale mismatch (ct %.6g vs pt %.6g)" c.scale p.pscale);
      { c with v = map2 ( +. ) c.v p.pv }

    let sub_plain c p =
      if not (scales_compatible c.scale p.pscale) then invalid_arg "Clear.sub_plain: scale mismatch";
      { c with v = map2 ( -. ) c.v p.pv }

    let add_scalar c x = { c with v = Array.map (fun a -> a +. x) c.v }
    let sub_scalar c x = add_scalar c (-.x)

    let check_depth c =
      if cfg.strict_modulus then begin
        match c.budget with
        | Rns_level l -> if l < 1 then raise Modulus_exhausted
        | Logq q -> if q < 1 then raise Modulus_exhausted
      end

    let mul a b =
      check_depth a;
      { v = map2 ( *. ) a.v b.v; scale = a.scale *. b.scale; budget = budget_min a.budget b.budget }

    let mul_plain c p =
      check_depth c;
      { c with v = map2 ( *. ) c.v p.pv; scale = c.scale *. p.pscale }

    let mul_scalar c x ~scale =
      check_depth c;
      (* the runtime multiplies by the *rounded* integer, so the reference
         must quantise identically for bit-faithful comparison *)
      let quantised = Float.round (x *. float_of_int scale) /. float_of_int scale in
      { c with v = Array.map (fun a -> a *. quantised) c.v; scale = c.scale *. float_of_int scale }

    let max_rescale ct ub =
      match (cfg.scheme, ct.budget) with
      | Hisa.Rns_chain primes, Rns_level level ->
          let prod = ref 1 and l = ref level in
          let continue_loop = ref true in
          while !continue_loop && !l > 1 do
            let q = primes.(!l - 1) in
            if !prod <= ub / q && !prod * q <= ub then begin
              prod := !prod * q;
              decr l
            end
            else continue_loop := false
          done;
          !prod
      | Hisa.Pow2_modulus _, Logq logq ->
          if ub < 2 then 1
          else begin
            let k = ref 0 in
            while 1 lsl (!k + 1) <= ub && !k + 1 < logq do
              incr k
            done;
            1 lsl !k
          end
      | _ -> assert false

    let rescale ct x =
      if x = 1 then ct
      else begin
        match (cfg.scheme, ct.budget) with
        | Hisa.Rns_chain primes, Rns_level level ->
            let l = ref level and rem = ref x in
            while !rem > 1 do
              if !l < 1 then raise Modulus_exhausted;
              let q = primes.(!l - 1) in
              if !rem mod q <> 0 then invalid_arg "Clear.rescale: not a product of next chain primes";
              rem := !rem / q;
              decr l
            done;
            { ct with scale = ct.scale /. float_of_int x; budget = Rns_level !l }
        | Hisa.Pow2_modulus _, Logq logq ->
            if x land (x - 1) <> 0 then invalid_arg "Clear.rescale: divisor must be a power of two";
            let k = int_of_float (Float.round (log (float_of_int x) /. log 2.0)) in
            if k >= logq then raise Modulus_exhausted;
            { ct with scale = ct.scale /. float_of_int x; budget = Logq (logq - k) }
        | _ -> assert false
      end

    let scale_of ct = ct.scale

    let env_of ct =
      match ct.budget with
      | Rns_level r -> { Hisa.env_n = cfg.slots * 2; env_r = r; env_log_q = 0 }
      | Logq q -> { Hisa.env_n = cfg.slots * 2; env_r = 0; env_log_q = q }
  end)
