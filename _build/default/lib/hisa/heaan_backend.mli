(** HISA backend over the real power-of-two-modulus CKKS scheme — the
    "HEAAN v1.0" target. Mirrors {!Seal_backend} with [logq] in place of an
    RNS level. *)

type config = {
  ctx : Chet_crypto.Big_ckks.context;
  rng : Chet_crypto.Sampling.t;
  keys : Chet_crypto.Big_ckks.keys;
  secret : Chet_crypto.Big_ckks.secret_key option;
}

val make : config -> Hisa.t
