(** HISA backend over the real RNS-CKKS scheme — the "SEAL v3.1" target.
    Plaintext handles encode lazily per level (memoised), and binary
    operations modulus-switch the fresher operand down automatically. *)

type config = {
  ctx : Chet_crypto.Rns_ckks.context;
  rng : Chet_crypto.Sampling.t;
  keys : Chet_crypto.Rns_ckks.keys;
  secret : Chet_crypto.Rns_ckks.secret_key option;
      (** client side only; [decrypt] fails without it *)
}

val make : config -> Hisa.t
