(* Value-free HISA backend: ciphertexts carry only (scale, modulus budget).
   This is the literal realisation of §5.1's analyses — "the ct datatype
   stores the data-flow information" — and is what the compiler passes and
   the simulation clock execute against. It is orders of magnitude faster
   than the cleartext backend because no slot vectors exist.

   Semantics of scale/budget tracking are identical to Clear_backend (the
   tests cross-check them); only the values are gone. *)

type config = { slots : int; scheme : Hisa.scheme_kind }

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = cfg.slots

    type pt = { pscale : float }
    type ct = { scale : float; budget : Clear_backend.budget }

    let encode values ~scale =
      ignore values;
      { pscale = float_of_int scale }

    let decode _ = Array.make cfg.slots 0.0
    let encrypt pt = { scale = pt.pscale; budget = Clear_backend.initial_budget cfg.scheme }
    let decrypt ct = { pscale = ct.scale }
    let copy ct = ct
    let free _ = ()
    let rot_left ct _ = ct
    let rot_right ct _ = ct

    let budget_min a b =
      match (a, b) with
      | Clear_backend.Rns_level x, Clear_backend.Rns_level y ->
          Clear_backend.Rns_level (Stdlib.min x y)
      | Clear_backend.Logq x, Clear_backend.Logq y -> Clear_backend.Logq (Stdlib.min x y)
      | _ -> invalid_arg "Shape: mixed scheme budgets"

    let scales_compatible a b = Float.abs (a -. b) <= 1e-4 *. Float.max 1.0 (Float.max a b)

    let check2 name a b =
      if not (scales_compatible a.scale b.scale) then
        invalid_arg (Printf.sprintf "%s: scale mismatch (%.6g vs %.6g)" name a.scale b.scale)

    let add a b =
      check2 "Shape.add" a b;
      { a with budget = budget_min a.budget b.budget }

    let sub = add

    let add_plain c p =
      if not (scales_compatible c.scale p.pscale) then invalid_arg "Shape.add_plain: scale mismatch";
      c

    let sub_plain = add_plain
    let add_scalar c _ = c
    let sub_scalar c _ = c
    let mul a b = { scale = a.scale *. b.scale; budget = budget_min a.budget b.budget }
    let mul_plain c p = { c with scale = c.scale *. p.pscale }
    let mul_scalar c _ ~scale = { c with scale = c.scale *. float_of_int scale }

    let max_rescale ct ub =
      match (cfg.scheme, ct.budget) with
      | Hisa.Rns_chain primes, Clear_backend.Rns_level level ->
          let prod = ref 1 and l = ref level in
          let continue_loop = ref true in
          while !continue_loop && !l > 1 do
            let q = primes.(!l - 1) in
            if !prod <= ub / q && !prod * q <= ub then begin
              prod := !prod * q;
              decr l
            end
            else continue_loop := false
          done;
          !prod
      | Hisa.Pow2_modulus _, Clear_backend.Logq logq ->
          if ub < 2 then 1
          else begin
            let k = ref 0 in
            while 1 lsl (!k + 1) <= ub && !k + 1 < logq do
              incr k
            done;
            1 lsl !k
          end
      | _ -> assert false

    let rescale ct x =
      if x = 1 then ct
      else begin
        match (cfg.scheme, ct.budget) with
        | Hisa.Rns_chain primes, Clear_backend.Rns_level level ->
            let l = ref level and rem = ref x in
            while !rem > 1 do
              if !l < 1 then raise Clear_backend.Modulus_exhausted;
              let q = primes.(!l - 1) in
              if !rem mod q <> 0 then
                invalid_arg "Shape.rescale: not a product of next chain primes";
              rem := !rem / q;
              decr l
            done;
            { scale = ct.scale /. float_of_int x; budget = Clear_backend.Rns_level !l }
        | Hisa.Pow2_modulus _, Clear_backend.Logq logq ->
            if x land (x - 1) <> 0 then invalid_arg "Shape.rescale: divisor must be a power of two";
            let k = int_of_float (Float.round (log (float_of_int x) /. log 2.0)) in
            if k >= logq then raise Clear_backend.Modulus_exhausted;
            { scale = ct.scale /. float_of_int x; budget = Clear_backend.Logq (logq - k) }
        | _ -> assert false
      end

    let scale_of ct = ct.scale

    let env_of ct =
      match ct.budget with
      | Clear_backend.Rns_level r -> { Hisa.env_n = cfg.slots * 2; env_r = r; env_log_q = 0 }
      | Clear_backend.Logq q -> { Hisa.env_n = cfg.slots * 2; env_r = 0; env_log_q = q }
  end)
