(** Value-free HISA backend: ciphertexts are just (scale, modulus budget) —
    the literal "ct datatype stores the data-flow information" of §5.1. The
    compiler's parameter and rotation-key passes and the latency simulator
    execute against it; it is orders of magnitude faster than
    {!Clear_backend} because no slot vectors exist. [decode] returns zeros. *)

type config = { slots : int; scheme : Hisa.scheme_kind }

val make : config -> Hisa.t
