(** Simulation backend: wraps another HISA backend and advances a latency
    clock per operation according to a cost model calibrated against the real
    scheme implementations. This is how "measured" latencies are produced for
    configurations too large to run through the real schemes here
    (DESIGN.md §2). *)

type clock = {
  mutable elapsed : float;  (** seconds of simulated latency *)
  mutable op_count : int;
  mutable rotate_elapsed : float;  (** rotation share (Figure 7 baseline) *)
  mutable rotate_count : int;
}

type config = {
  n : int;  (** ring dimension (slots = n/2) *)
  scheme : Hisa.scheme_kind;
  costs : Hisa.cost_model;
}

val make_over : Hisa.t -> config -> Hisa.t * clock
(** Wrap an arbitrary backend. *)

val make : config -> Hisa.t * clock
(** Over the value-free {!Shape_backend} (fast; default for benches). *)

val make_with_values : config -> Hisa.t * clock
(** Over {!Clear_backend}, when the simulated run's outputs matter. *)
