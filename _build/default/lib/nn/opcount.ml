module Tensor = Chet_tensor.Tensor

type t = { multiplies : int; additions : int; total : int }

let zero = { multiplies = 0; additions = 0; total = 0 }

let make m a = { multiplies = m; additions = a; total = m + a }

let count_node (node : Circuit.node) =
  let out_elems = Tensor.numel_of_shape node.Circuit.shape in
  match node.Circuit.op with
  | Circuit.Input _ | Circuit.Flatten _ | Circuit.Concat _ -> zero
  | Circuit.Conv2d { input; weights; bias; _ } ->
      ignore input;
      let cin = weights.Tensor.shape.(1) in
      let kh = weights.Tensor.shape.(2) and kw = weights.Tensor.shape.(3) in
      let macs = out_elems * cin * kh * kw in
      let bias_adds = match bias with Some _ -> out_elems | None -> 0 in
      make macs (macs + bias_adds)
  | Circuit.MatMul { weights; bias; _ } ->
      let in_dim = weights.Tensor.shape.(1) in
      let macs = out_elems * in_dim in
      let bias_adds = match bias with Some _ -> out_elems | None -> 0 in
      make macs (macs + bias_adds)
  | Circuit.AvgPool { ksize; _ } -> make out_elems (out_elems * ksize * ksize)
  | Circuit.GlobalAvgPool n ->
      let h = n.Circuit.shape.(1) and w = n.Circuit.shape.(2) in
      make out_elems (out_elems * h * w)
  | Circuit.PolyAct _ -> make (3 * out_elems) out_elems (* x·x, a·x², b·x, + *)
  | Circuit.Square _ -> make out_elems 0
  | Circuit.BatchNorm _ -> make out_elems out_elems
  | Circuit.Residual _ -> make 0 out_elems

let count circuit =
  List.fold_left
    (fun acc node ->
      let c = count_node node in
      {
        multiplies = acc.multiplies + c.multiplies;
        additions = acc.additions + c.additions;
        total = acc.total + c.total;
      })
    zero (Circuit.topo_order circuit)
