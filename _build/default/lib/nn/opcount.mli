(** Floating-point operation counts per circuit — the "# FP operations"
    column of Table 3. Multiply–accumulates count as two operations
    (one multiply, one add), matching the usual FLOP convention. *)

type t = {
  multiplies : int;
  additions : int;
  total : int;
}

val count : Circuit.t -> t
val count_node : Circuit.node -> t
(** Operations contributed by one node alone. *)
