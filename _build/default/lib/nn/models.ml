module Tensor = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset

type spec = {
  model_name : string;
  build : unit -> Circuit.t;
  input_channels : int;
  input_height : int;
  input_width : int;
  description : string;
}

(* Every network uses the paper's learnable degree-2 activation. With random
   (untrained) weights, the coefficients are fixed to values that keep
   magnitudes stable through depth: a small quadratic term and a near-linear
   term. *)
let act b node st =
  let a = 0.08 +. Random.State.float st 0.04 in
  let coeff_b = 0.95 +. Random.State.float st 0.1 in
  Circuit.poly_act b node ~a ~b:coeff_b

let conv b st node ~out_c ~k ~stride ~padding =
  let in_c = node.Circuit.shape.(0) in
  let weights = Dataset.glorot st [| out_c; in_c; k; k |] in
  let bias = Dataset.bias st out_c in
  Circuit.conv2d b node ~weights ~bias ~stride ~padding ()

let fc b st node ~out_d =
  let in_d = Tensor.numel_of_shape node.Circuit.shape in
  let weights = Dataset.glorot st [| out_d; in_d |] in
  let bias = Dataset.bias st out_d in
  Circuit.matmul b node ~weights ~bias ()

let make_spec model_name ~c ~h ~w ~description build =
  {
    model_name;
    build = (fun () -> build (Circuit.builder ()) (Random.State.make [| Hashtbl.hash model_name |]));
    input_channels = c;
    input_height = h;
    input_width = w;
    description;
  }

let micro =
  make_spec "micro" ~c:1 ~h:8 ~w:8 ~description:"tiny test network (1 conv, 1 fc, 2 act)"
    (fun b st ->
      let x = Circuit.input b ~name:"image" [| 1; 8; 8 |] in
      let x = conv b st x ~out_c:2 ~k:3 ~stride:1 ~padding:Tensor.Valid in
      let x = act b x st in
      let x = Circuit.flatten b x in
      let x = fc b st x ~out_d:4 in
      let x = act b x st in
      Circuit.finish b ~name:"micro" ~output:x)

(* CryptoNets (Gilad-Bachrach et al. 2016), simplified published structure:
   one strided convolution and two dense layers with square activations. *)
let cryptonets =
  make_spec "CryptoNets" ~c:1 ~h:28 ~w:28
    ~description:"CryptoNets (ICML'16) comparison network: 1 conv, 2 fc, square activations"
    (fun b st ->
      let x = Circuit.input b ~name:"image" [| 1; 28; 28 |] in
      let x = conv b st x ~out_c:5 ~k:5 ~stride:2 ~padding:Tensor.Same in
      let x = Circuit.square b x in
      let x = Circuit.flatten b x in
      let x = fc b st x ~out_d:100 in
      let x = Circuit.square b x in
      let x = fc b st x ~out_d:10 in
      Circuit.finish b ~name:"CryptoNets" ~output:x)

(* LeNet-5 family: conv-act-pool ×2, then fc-act-fc-act (2 conv, 2 FC,
   4 activations, matching Table 3's layer counts). *)
let lenet ~name ~c1 ~c2 ~fc1 ~description =
  make_spec name ~c:1 ~h:28 ~w:28 ~description (fun b st ->
      let x = Circuit.input b ~name:"image" [| 1; 28; 28 |] in
      let x = conv b st x ~out_c:c1 ~k:5 ~stride:1 ~padding:Tensor.Valid in
      let x = act b x st in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = conv b st x ~out_c:c2 ~k:5 ~stride:1 ~padding:Tensor.Valid in
      let x = act b x st in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = Circuit.flatten b x in
      let x = fc b st x ~out_d:fc1 in
      let x = act b x st in
      let x = fc b st x ~out_d:10 in
      let x = act b x st in
      Circuit.finish b ~name ~output:x)

let lenet5_small =
  lenet ~name:"LeNet-5-small" ~c1:4 ~c2:8 ~fc1:32
    ~description:"smallest LeNet-5 variant (MNIST-shaped input)"

let lenet5_medium =
  lenet ~name:"LeNet-5-medium" ~c1:16 ~c2:32 ~fc1:128
    ~description:"medium LeNet-5 variant (MNIST-shaped input)"

(* the largest variant matches TensorFlow's tutorial network: 32/64 Same
   convolutions and a 512-wide dense layer *)
let lenet5_large =
  make_spec "LeNet-5-large" ~c:1 ~h:28 ~w:28
    ~description:"TensorFlow-tutorial LeNet-5 (32/64 conv, 512 dense)"
    (fun b st ->
      let x = Circuit.input b ~name:"image" [| 1; 28; 28 |] in
      let x = conv b st x ~out_c:32 ~k:5 ~stride:1 ~padding:Tensor.Same in
      let x = act b x st in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = conv b st x ~out_c:64 ~k:5 ~stride:1 ~padding:Tensor.Same in
      let x = act b x st in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = Circuit.flatten b x in
      let x = fc b st x ~out_d:512 in
      let x = act b x st in
      let x = fc b st x ~out_d:10 in
      let x = act b x st in
      Circuit.finish b ~name:"LeNet-5-large" ~output:x)

(* A plausible reconstruction of the confidential medical-imaging network:
   5 convolutions, 2 dense layers, 6 activations, binary output (§6). *)
let industrial =
  make_spec "Industrial" ~c:1 ~h:64 ~w:64
    ~description:"5-conv/2-FC binary classifier on 64x64 medical-style images"
    (fun b st ->
      let x = Circuit.input b ~name:"scan" [| 1; 64; 64 |] in
      let x = conv b st x ~out_c:16 ~k:3 ~stride:2 ~padding:Tensor.Same in
      let x = act b x st in
      let x = conv b st x ~out_c:16 ~k:3 ~stride:1 ~padding:Tensor.Same in
      let x = act b x st in
      let x = conv b st x ~out_c:32 ~k:3 ~stride:2 ~padding:Tensor.Same in
      let x = act b x st in
      let x = conv b st x ~out_c:32 ~k:3 ~stride:1 ~padding:Tensor.Same in
      let x = act b x st in
      let x = conv b st x ~out_c:64 ~k:3 ~stride:2 ~padding:Tensor.Same in
      let x = act b x st in
      let x = Circuit.flatten b x in
      let x = fc b st x ~out_d:64 in
      let x = act b x st in
      let x = fc b st x ~out_d:2 in
      Circuit.finish b ~name:"Industrial" ~output:x)

(* SqueezeNet for CIFAR-10, following github.com/kaizouman/tensorsandbox.
   Each fire module is squeeze (1x1) + expand; the expand's parallel 1x1 and
   3x3 branches are fused into one 3x3 convolution whose first filters are
   zero outside the center tap — mathematically identical to the
   concatenation, and it keeps the paper's count of 10 convolution layers
   (1 entry + 4 fires x 2 + 1 classifier). *)
let fused_expand_weights st ~squeeze_c ~e1 ~e3 =
  let w = Tensor.create [| e1 + e3; squeeze_c; 3; 3 |] in
  let w1 = Dataset.glorot st [| e1; squeeze_c; 1; 1 |] in
  let w3 = Dataset.glorot st [| e3; squeeze_c; 3; 3 |] in
  for o = 0 to e1 - 1 do
    for c = 0 to squeeze_c - 1 do
      Tensor.set w [| o; c; 1; 1 |] (Tensor.get w1 [| o; c; 0; 0 |])
    done
  done;
  for o = 0 to e3 - 1 do
    for c = 0 to squeeze_c - 1 do
      for dy = 0 to 2 do
        for dx = 0 to 2 do
          Tensor.set w [| e1 + o; c; dy; dx |] (Tensor.get w3 [| o; c; dy; dx |])
        done
      done
    done
  done;
  w

let fire b st x ~squeeze_c ~expand_c =
  let x = conv b st x ~out_c:squeeze_c ~k:1 ~stride:1 ~padding:Tensor.Valid in
  let x = act b x st in
  let weights = fused_expand_weights st ~squeeze_c ~e1:(expand_c / 2) ~e3:(expand_c / 2) in
  let bias = Dataset.bias st expand_c in
  let x = Circuit.conv2d b x ~weights ~bias ~stride:1 ~padding:Tensor.Same () in
  act b x st

let squeezenet_cifar =
  make_spec "SqueezeNet-CIFAR" ~c:3 ~h:32 ~w:32
    ~description:"SqueezeNet with 4 fire modules for CIFAR-10-shaped input"
    (fun b st ->
      let x = Circuit.input b ~name:"image" [| 3; 32; 32 |] in
      let x = conv b st x ~out_c:32 ~k:3 ~stride:1 ~padding:Tensor.Same in
      let x = act b x st in
      let x = fire b st x ~squeeze_c:16 ~expand_c:64 in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = fire b st x ~squeeze_c:16 ~expand_c:64 in
      let x = fire b st x ~squeeze_c:32 ~expand_c:128 in
      let x = Circuit.avg_pool b x ~ksize:2 ~stride:2 in
      let x = fire b st x ~squeeze_c:32 ~expand_c:128 in
      let x = conv b st x ~out_c:10 ~k:1 ~stride:1 ~padding:Tensor.Valid in
      let x = Circuit.global_avg_pool b x in
      Circuit.finish b ~name:"SqueezeNet-CIFAR" ~output:x)

let all = [ lenet5_small; lenet5_medium; lenet5_large; industrial; squeezenet_cifar ]

let find name =
  let specs = micro :: cryptonets :: all in
  match List.find_opt (fun s -> s.model_name = name) specs with
  | Some s -> s
  | None -> raise Not_found

let input_for spec ~seed =
  Dataset.image ~seed ~channels:spec.input_channels ~height:spec.input_height
    ~width:spec.input_width
