module Tensor = Chet_tensor.Tensor

type node = { id : int; op : op; shape : int array }

and op =
  | Input of { name : string; encrypted : bool }
  | Conv2d of {
      input : node;
      weights : Tensor.t;
      bias : float array option;
      stride : int;
      padding : Tensor.padding;
    }
  | MatMul of { input : node; weights : Tensor.t; bias : float array option }
  | AvgPool of { input : node; ksize : int; stride : int }
  | GlobalAvgPool of node
  | PolyAct of { input : node; a : float; b : float }
  | Square of node
  | BatchNorm of { input : node; scale : float array; shift : float array }
  | Flatten of node
  | Concat of node list
  | Residual of node * node

type t = { name : string; input : node; output : node; node_count : int }
type builder = { mutable next_id : int; mutable input_node : node option }

let builder () = { next_id = 0; input_node = None }

let fresh b op shape =
  let node = { id = b.next_id; op; shape = Array.copy shape } in
  b.next_id <- b.next_id + 1;
  node

let input b ~name ?(encrypted = true) shape =
  let node = fresh b (Input { name; encrypted }) shape in
  (match b.input_node with
  | Some _ -> invalid_arg "Circuit.input: only one input tensor is supported"
  | None -> b.input_node <- Some node);
  node

let as_chw node =
  match node.shape with
  | [| c; h; w |] -> (c, h, w)
  | _ -> invalid_arg "Circuit: expected a [c; h; w] node"

let conv2d b node ~weights ?bias ~stride ~padding () =
  let c, h, w = as_chw node in
  (match weights.Tensor.shape with
  | [| _; cin; _; _ |] when cin = c -> ()
  | _ -> invalid_arg "Circuit.conv2d: weights do not match input channels");
  let cout = weights.Tensor.shape.(0) in
  let kh = weights.Tensor.shape.(2) and kw = weights.Tensor.shape.(3) in
  (match bias with
  | Some bs when Array.length bs <> cout -> invalid_arg "Circuit.conv2d: bias arity"
  | _ -> ());
  let oh = Tensor.conv_output_dim h kh stride padding in
  let ow = Tensor.conv_output_dim w kw stride padding in
  fresh b (Conv2d { input = node; weights; bias; stride; padding }) [| cout; oh; ow |]

let matmul b node ~weights ?bias () =
  let in_dim = Tensor.numel_of_shape node.shape in
  (match weights.Tensor.shape with
  | [| _; d |] when d = in_dim -> ()
  | _ -> invalid_arg "Circuit.matmul: weights do not match input size");
  let out_dim = weights.Tensor.shape.(0) in
  (match bias with
  | Some bs when Array.length bs <> out_dim -> invalid_arg "Circuit.matmul: bias arity"
  | _ -> ());
  fresh b (MatMul { input = node; weights; bias }) [| out_dim |]

let avg_pool b node ~ksize ~stride =
  let c, h, w = as_chw node in
  if (h - ksize) mod stride <> 0 || (w - ksize) mod stride <> 0 then
    invalid_arg "Circuit.avg_pool: window does not tile the image";
  fresh b (AvgPool { input = node; ksize; stride })
    [| c; ((h - ksize) / stride) + 1; ((w - ksize) / stride) + 1 |]

let global_avg_pool b node =
  let c, _, _ = as_chw node in
  fresh b (GlobalAvgPool node) [| c; 1; 1 |]

let poly_act b node ~a ~b:coeff_b = fresh b (PolyAct { input = node; a; b = coeff_b }) node.shape
let square b node = fresh b (Square node) node.shape

let batch_norm b node ~scale ~shift =
  let c, _, _ = as_chw node in
  if Array.length scale <> c || Array.length shift <> c then
    invalid_arg "Circuit.batch_norm: per-channel parameter arity";
  fresh b (BatchNorm { input = node; scale; shift }) node.shape

let flatten b node = fresh b (Flatten node) [| Tensor.numel_of_shape node.shape |]

let concat b nodes =
  match nodes with
  | [] -> invalid_arg "Circuit.concat: empty"
  | first :: rest ->
      let _, h, w = as_chw first in
      List.iter
        (fun n ->
          let _, h', w' = as_chw n in
          if h' <> h || w' <> w then invalid_arg "Circuit.concat: spatial dims differ")
        rest;
      let total_c = List.fold_left (fun acc n -> acc + n.shape.(0)) 0 nodes in
      fresh b (Concat nodes) [| total_c; h; w |]

let residual b x y =
  if x.shape <> y.shape then invalid_arg "Circuit.residual: shape mismatch";
  fresh b (Residual (x, y)) x.shape

let finish b ~name ~output =
  match b.input_node with
  | None -> invalid_arg "Circuit.finish: no input node"
  | Some input -> { name; input; output; node_count = b.next_id }

let predecessors node =
  match node.op with
  | Input _ -> []
  | Conv2d { input; _ } | MatMul { input; _ } | AvgPool { input; _ } | PolyAct { input; _ }
  | BatchNorm { input; _ } ->
      [ input ]
  | GlobalAvgPool n | Square n | Flatten n -> [ n ]
  | Concat ns -> ns
  | Residual (x, y) -> [ x; y ]

let topo_order t =
  let visited = Hashtbl.create 64 in
  let order = ref [] in
  let rec visit node =
    if not (Hashtbl.mem visited node.id) then begin
      Hashtbl.add visited node.id ();
      List.iter visit (predecessors node);
      order := node :: !order
    end
  in
  visit t.output;
  List.rev !order

let layer_counts t =
  List.fold_left
    (fun (conv, fc, act) node ->
      match node.op with
      | Conv2d _ -> (conv + 1, fc, act)
      | MatMul _ -> (conv, fc + 1, act)
      | PolyAct _ | Square _ -> (conv, fc, act + 1)
      | Input _ | AvgPool _ | GlobalAvgPool _ | BatchNorm _ | Flatten _ | Concat _ | Residual _ ->
          (conv, fc, act))
    (0, 0, 0) (topo_order t)

let multiplicative_depth t =
  let depth = Hashtbl.create 64 in
  let d node = Hashtbl.find depth node.id in
  List.iter
    (fun node ->
      let v =
        match node.op with
        | Input _ -> 0
        | Conv2d { input; _ } | MatMul { input; _ } | BatchNorm { input; _ } -> d input + 1
        | AvgPool { input; _ } -> d input + 1 (* the 1/k² scaling multiply *)
        | GlobalAvgPool n -> d n + 1
        | PolyAct { input; a; _ } -> d input + if a = 0.0 then 1 else 2
        | Square n -> d n + 1
        | Flatten n -> d n
        | Concat ns -> List.fold_left (fun acc n -> Stdlib.max acc (d n)) 0 ns
        | Residual (x, y) -> Stdlib.max (d x) (d y)
      in
      Hashtbl.replace depth node.id v)
    (topo_order t);
  d t.output
