module Tensor = Chet_tensor.Tensor

let eval_all circuit image =
  let values : (int, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  let v (node : Circuit.node) = Hashtbl.find values node.Circuit.id in
  List.iter
    (fun (node : Circuit.node) ->
      let result =
        match node.Circuit.op with
        | Circuit.Input _ ->
            if image.Tensor.shape <> node.shape then
              invalid_arg "Reference.eval: image does not match the input schema";
            image
        | Circuit.Conv2d { input; weights; bias; stride; padding } ->
            Tensor.conv2d ~input:(v input) ~weights ?bias ~stride ~padding ()
        | Circuit.MatMul { input; weights; bias } -> Tensor.matmul_vec ~weights ?bias (v input)
        | Circuit.AvgPool { input; ksize; stride } -> Tensor.avg_pool2d ~input:(v input) ~ksize ~stride
        | Circuit.GlobalAvgPool n -> Tensor.global_avg_pool (v n)
        | Circuit.PolyAct { input; a; b } -> Tensor.poly_act ~a ~b (v input)
        | Circuit.Square n -> Tensor.square (v n)
        | Circuit.BatchNorm { input; scale; shift } -> Tensor.batch_norm ~scale ~shift (v input)
        | Circuit.Flatten n -> Tensor.flatten (v n)
        | Circuit.Concat ns -> Tensor.concat_channels (List.map v ns)
        | Circuit.Residual (x, y) -> Tensor.add (v x) (v y)
      in
      Hashtbl.replace values node.Circuit.id result)
    (Circuit.topo_order circuit);
  values

let eval circuit image =
  Hashtbl.find (eval_all circuit image) circuit.Circuit.output.Circuit.id

let eval_node circuit image node = Hashtbl.find (eval_all circuit image) node.Circuit.id

let max_intermediate_abs circuit image =
  let values = eval_all circuit image in
  Hashtbl.fold (fun _ t acc -> Float.max acc (Tensor.max_abs t)) values 0.0
