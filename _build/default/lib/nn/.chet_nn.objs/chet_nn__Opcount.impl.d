lib/nn/opcount.ml: Array Chet_tensor Circuit List
