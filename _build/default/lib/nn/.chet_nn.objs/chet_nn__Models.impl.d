lib/nn/models.ml: Array Chet_tensor Circuit Hashtbl List Random
