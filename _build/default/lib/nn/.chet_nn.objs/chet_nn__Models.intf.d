lib/nn/models.mli: Chet_tensor Circuit
