lib/nn/circuit.mli: Chet_tensor
