lib/nn/reference.ml: Chet_tensor Circuit Float Hashtbl List
