lib/nn/circuit.ml: Array Chet_tensor Hashtbl List Stdlib
