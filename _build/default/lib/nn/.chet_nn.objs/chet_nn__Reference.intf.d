lib/nn/reference.mli: Chet_tensor Circuit
