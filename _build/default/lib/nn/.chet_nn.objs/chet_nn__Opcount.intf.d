lib/nn/opcount.mli: Circuit
