(** Tensor circuits: the DAG of tensor operations CHET compiles (§2.6, §3.2).
    Circuits are built with the smart constructors below; the input schema
    (shape, encrypted flag, fixed-point scale) comes with the input node, as
    in Figure 2. *)

module Tensor = Chet_tensor.Tensor

type node = { id : int; op : op; shape : int array (* inferred output shape *) }

and op =
  | Input of { name : string; encrypted : bool }
  | Conv2d of {
      input : node;
      weights : Tensor.t;
      bias : float array option;
      stride : int;
      padding : Tensor.padding;
    }
  | MatMul of { input : node; weights : Tensor.t; bias : float array option }
  | AvgPool of { input : node; ksize : int; stride : int }
  | GlobalAvgPool of node
  | PolyAct of { input : node; a : float; b : float }  (** [a·x² + b·x] *)
  | Square of node
  | BatchNorm of { input : node; scale : float array; shift : float array }
  | Flatten of node
  | Concat of node list  (** channel concatenation *)
  | Residual of node * node  (** elementwise add *)

type t = {
  name : string;
  input : node;
  output : node;
  node_count : int;
}

(** {1 Builders} — shapes are checked at construction *)

type builder

val builder : unit -> builder
val input : builder -> name:string -> ?encrypted:bool -> int array -> node

val conv2d :
  builder -> node -> weights:Tensor.t -> ?bias:float array -> stride:int -> padding:Tensor.padding -> unit -> node

val matmul : builder -> node -> weights:Tensor.t -> ?bias:float array -> unit -> node
val avg_pool : builder -> node -> ksize:int -> stride:int -> node
val global_avg_pool : builder -> node -> node
val poly_act : builder -> node -> a:float -> b:float -> node
val square : builder -> node -> node
val batch_norm : builder -> node -> scale:float array -> shift:float array -> node
val flatten : builder -> node -> node
val concat : builder -> node list -> node
val residual : builder -> node -> node -> node
val finish : builder -> name:string -> output:node -> t

(** {1 Traversal} *)

val topo_order : t -> node list
(** Topological order, inputs first, each node exactly once. *)

val layer_counts : t -> int * int * int
(** [(convolutions, fully-connected, activations)] — the layer statistics of
    Table 3. *)

val multiplicative_depth : t -> int
(** Ciphertext multiplicative depth of the circuit, counting plaintext
    (weight and mask-free) multiplies as depth 1 each; activations using [x²]
    add ciphertext–ciphertext depth. *)
