(** The networks of Table 3 (built with synthetic Glorot weights — see
    DESIGN.md §2 for the dataset substitution), plus a micro network used by
    integration tests against the real FHE backends.

    All networks are HE-compatible in the paper's sense: activations are
    learnable second-degree polynomials [f(x) = a·x² + b·x] and pooling is
    average pooling. *)

type spec = {
  model_name : string;
  build : unit -> Circuit.t;  (** deterministic: same weights every call *)
  input_channels : int;
  input_height : int;
  input_width : int;
  description : string;
}

val micro : spec

(** The CryptoNets network (Gilad-Bachrach et al., ICML 2016) in its usual
    simplified form (conv + square + dense + square + dense) — the prior
    system the paper compares against in §6. *)
val cryptonets : spec

val lenet5_small : spec
val lenet5_medium : spec
val lenet5_large : spec
val industrial : spec
val squeezenet_cifar : spec

val all : spec list
(** The five evaluation networks of Table 3, in the paper's order. *)

val find : string -> spec
(** Look up by [model_name] (includes [micro]).
    @raise Not_found for unknown names. *)

val input_for : spec -> seed:int -> Chet_tensor.Tensor.t
(** A synthetic input image with this network's schema. *)
