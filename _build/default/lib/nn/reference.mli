(** Unencrypted reference evaluation of tensor circuits — "CHET's unencrypted
    reference inference engine" that the paper compares latencies against and
    that the profile-guided scale selection (§5.5) uses as ground truth. *)

module Tensor = Chet_tensor.Tensor

val eval : Circuit.t -> Tensor.t -> Tensor.t
(** [eval circuit image]: run the circuit on a cleartext input. *)

val eval_node : Circuit.t -> Tensor.t -> Circuit.node -> Tensor.t
(** Value of an intermediate node (used to bound intermediate magnitudes). *)

val max_intermediate_abs : Circuit.t -> Tensor.t -> float
(** Largest absolute value appearing at any node — the quantity that must
    stay clear of the modulus for correctness. *)
