lib/tensor/dataset.mli: Random Tensor
