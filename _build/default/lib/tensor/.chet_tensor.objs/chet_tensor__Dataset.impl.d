lib/tensor/dataset.ml: Array Float List Random Stdlib Tensor
