(** Dense float tensors and the neural-network operations CHET's tensor
    circuits use. This is the unencrypted reference engine: the homomorphic
    kernels in [lib/runtime] are tested against these semantics, and the
    profile-guided scale selection compares encrypted output against it.

    Layout convention: images are [\[channels; height; width\]] (batch size 1
    throughout, as in the paper's latency experiments). *)

type t = { shape : int array; data : float array }

val create : int array -> t
val of_array : int array -> float array -> t
val numel : t -> int
val numel_of_shape : int array -> int
val copy : t -> t
val get : t -> int array -> float
val set : t -> int array -> float -> unit
val get3 : t -> int -> int -> int -> float
val set3 : t -> int -> int -> int -> float -> unit
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val add : t -> t -> t
val equal_shape : t -> t -> bool
val max_abs_diff : t -> t -> float
val max_abs : t -> float
val pp : Format.formatter -> t -> unit

type padding = Same | Valid

val conv2d : input:t -> weights:t -> ?bias:float array -> stride:int -> padding:padding -> unit -> t
(** [input]: [\[cin; h; w\]]; [weights]: [\[cout; cin; kh; kw\]]; [bias] one
    per output channel. [Same] zero-pads so that stride 1 preserves [h; w];
    kernel sides must be odd for [Same]. *)

val conv_output_dim : int -> int -> int -> padding -> int
(** [conv_output_dim size k stride padding]. *)

val matmul_vec : weights:t -> ?bias:float array -> t -> t
(** [weights]: [\[out_dim; in_dim\]]; input is flattened first. *)

val avg_pool2d : input:t -> ksize:int -> stride:int -> t
val global_avg_pool : t -> t
(** [\[c; h; w\] -> \[c; 1; 1\]]. *)

val poly_act : a:float -> b:float -> t -> t
(** The paper's HE-compatible activation [f(x) = a·x² + b·x]. *)

val square : t -> t
val batch_norm : scale:float array -> shift:float array -> t -> t
(** Per-channel affine (folded inference-time batch norm). *)

val flatten : t -> t
val concat_channels : t list -> t
val argmax : t -> int
