type t = { shape : int array; data : float array }

let numel_of_shape shape = Array.fold_left ( * ) 1 shape
let create shape = { shape = Array.copy shape; data = Array.make (numel_of_shape shape) 0.0 }

let of_array shape data =
  if numel_of_shape shape <> Array.length data then invalid_arg "Tensor.of_array: size mismatch";
  { shape = Array.copy shape; data = Array.copy data }

let numel t = Array.length t.data
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

let index t idx =
  if Array.length idx <> Array.length t.shape then invalid_arg "Tensor: rank mismatch";
  let lin = ref 0 in
  Array.iteri
    (fun d i ->
      if i < 0 || i >= t.shape.(d) then invalid_arg "Tensor: index out of bounds";
      lin := (!lin * t.shape.(d)) + i)
    idx;
  !lin

let get t idx = t.data.(index t idx)
let set t idx v = t.data.(index t idx) <- v

let index3 t c h w =
  (* fast path for [c; h; w] tensors *)
  ((c * t.shape.(1)) + h) * t.shape.(2) + w

let get3 t c h w = t.data.(index3 t c h w)
let set3 t c h w v = t.data.(index3 t c h w) <- v
let map f t = { t with data = Array.map f t.data }

let equal_shape a b = a.shape = b.shape

let map2 f a b =
  if not (equal_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.init (Array.length a.data) (fun i -> f a.data.(i) b.data.(i)) }

let add a b = map2 ( +. ) a b

let max_abs_diff a b =
  if not (equal_shape a b) then invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0.0 in
  Array.iteri (fun i v -> m := Float.max !m (Float.abs (v -. b.data.(i)))) a.data;
  !m

let max_abs a = Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0 a.data

let pp fmt t =
  Format.fprintf fmt "tensor%s[" (String.concat "x" (Array.to_list (Array.map string_of_int t.shape)));
  Array.iteri (fun i v -> if i < 8 then Format.fprintf fmt "%s%.4f" (if i > 0 then "; " else "") v) t.data;
  if Array.length t.data > 8 then Format.fprintf fmt "; …";
  Format.fprintf fmt "]"

type padding = Same | Valid

let conv_output_dim size k stride padding =
  match padding with
  | Valid -> ((size - k) / stride) + 1
  | Same -> ((size - 1) / stride) + 1

let conv2d ~input ~weights ?bias ~stride ~padding () =
  (match input.shape with
  | [| _; _; _ |] -> ()
  | _ -> invalid_arg "Tensor.conv2d: input must be [c; h; w]");
  (match weights.shape with
  | [| _; _; _; _ |] -> ()
  | _ -> invalid_arg "Tensor.conv2d: weights must be [cout; cin; kh; kw]");
  let cin = input.shape.(0) and h = input.shape.(1) and w = input.shape.(2) in
  let cout = weights.shape.(0) and kh = weights.shape.(2) and kw = weights.shape.(3) in
  if weights.shape.(1) <> cin then invalid_arg "Tensor.conv2d: channel mismatch";
  (match padding with
  | Same ->
      if kh land 1 = 0 || kw land 1 = 0 then
        invalid_arg "Tensor.conv2d: Same padding needs odd kernels"
  | Valid -> ());
  let oh = conv_output_dim h kh stride padding in
  let ow = conv_output_dim w kw stride padding in
  let ph = match padding with Same -> kh / 2 | Valid -> 0 in
  let pw = match padding with Same -> kw / 2 | Valid -> 0 in
  let out = create [| cout; oh; ow |] in
  let widx o c dy dx = (((((o * cin) + c) * kh) + dy) * kw) + dx in
  for o = 0 to cout - 1 do
    let b = match bias with Some bs -> bs.(o) | None -> 0.0 in
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        let acc = ref b in
        for c = 0 to cin - 1 do
          for dy = 0 to kh - 1 do
            for dx = 0 to kw - 1 do
              let y = (i * stride) + dy - ph and x = (j * stride) + dx - pw in
              if y >= 0 && y < h && x >= 0 && x < w then
                acc := !acc +. (get3 input c y x *. weights.data.(widx o c dy dx))
            done
          done
        done;
        set3 out o i j !acc
      done
    done
  done;
  out

let flatten t = { shape = [| Array.length t.data |]; data = Array.copy t.data }

let matmul_vec ~weights ?bias input =
  (match weights.shape with
  | [| _; _ |] -> ()
  | _ -> invalid_arg "Tensor.matmul_vec: weights must be [out; in]");
  let out_dim = weights.shape.(0) and in_dim = weights.shape.(1) in
  let x = flatten input in
  if Array.length x.data <> in_dim then invalid_arg "Tensor.matmul_vec: dimension mismatch";
  let out = create [| out_dim |] in
  for o = 0 to out_dim - 1 do
    let acc = ref (match bias with Some bs -> bs.(o) | None -> 0.0) in
    for i = 0 to in_dim - 1 do
      acc := !acc +. (weights.data.((o * in_dim) + i) *. x.data.(i))
    done;
    out.data.(o) <- !acc
  done;
  out

let avg_pool2d ~input ~ksize ~stride =
  let c = input.shape.(0) and h = input.shape.(1) and w = input.shape.(2) in
  let oh = ((h - ksize) / stride) + 1 and ow = ((w - ksize) / stride) + 1 in
  let out = create [| c; oh; ow |] in
  let inv = 1.0 /. float_of_int (ksize * ksize) in
  for ch = 0 to c - 1 do
    for i = 0 to oh - 1 do
      for j = 0 to ow - 1 do
        let acc = ref 0.0 in
        for dy = 0 to ksize - 1 do
          for dx = 0 to ksize - 1 do
            acc := !acc +. get3 input ch ((i * stride) + dy) ((j * stride) + dx)
          done
        done;
        set3 out ch i j (!acc *. inv)
      done
    done
  done;
  out

let global_avg_pool t =
  let c = t.shape.(0) and h = t.shape.(1) and w = t.shape.(2) in
  let out = create [| c; 1; 1 |] in
  let inv = 1.0 /. float_of_int (h * w) in
  for ch = 0 to c - 1 do
    let acc = ref 0.0 in
    for i = 0 to h - 1 do
      for j = 0 to w - 1 do
        acc := !acc +. get3 t ch i j
      done
    done;
    set3 out ch 0 0 (!acc *. inv)
  done;
  out

let poly_act ~a ~b t = map (fun x -> (a *. x *. x) +. (b *. x)) t
let square t = map (fun x -> x *. x) t

let batch_norm ~scale ~shift t =
  let c = t.shape.(0) in
  if Array.length scale <> c || Array.length shift <> c then
    invalid_arg "Tensor.batch_norm: per-channel parameter mismatch";
  let out = copy t in
  let hw = t.shape.(1) * t.shape.(2) in
  for ch = 0 to c - 1 do
    for k = 0 to hw - 1 do
      out.data.((ch * hw) + k) <- (t.data.((ch * hw) + k) *. scale.(ch)) +. shift.(ch)
    done
  done;
  out

let concat_channels = function
  | [] -> invalid_arg "Tensor.concat_channels: empty"
  | first :: _ as ts ->
      let h = first.shape.(1) and w = first.shape.(2) in
      List.iter
        (fun t ->
          if t.shape.(1) <> h || t.shape.(2) <> w then
            invalid_arg "Tensor.concat_channels: spatial dims differ")
        ts;
      let total_c = List.fold_left (fun acc t -> acc + t.shape.(0)) 0 ts in
      let out = create [| total_c; h; w |] in
      let pos = ref 0 in
      List.iter
        (fun t ->
          Array.blit t.data 0 out.data (!pos * h * w) (Array.length t.data);
          pos := !pos + t.shape.(0))
        ts;
      out

let argmax t =
  let best = ref 0 in
  Array.iteri (fun i v -> if v > t.data.(!best) then best := i) t.data;
  !best
