let image ~seed ~channels ~height ~width =
  let st = Random.State.make [| seed; 0x1337 |] in
  let t = Tensor.create [| channels; height; width |] in
  (* a few gaussian blobs per channel plus low-amplitude noise *)
  for c = 0 to channels - 1 do
    let blobs =
      List.init 3 (fun _ ->
          ( Random.State.float st (float_of_int height),
            Random.State.float st (float_of_int width),
            1.0 +. Random.State.float st (float_of_int (Stdlib.max 2 (height / 4))) ))
    in
    for i = 0 to height - 1 do
      for j = 0 to width - 1 do
        let v =
          List.fold_left
            (fun acc (cy, cx, s) ->
              let dy = (float_of_int i -. cy) /. s and dx = (float_of_int j -. cx) /. s in
              acc +. exp (-.((dy *. dy) +. (dx *. dx))))
            0.0 blobs
        in
        let noise = Random.State.float st 0.1 in
        Tensor.set3 t c i j (Float.min 1.0 ((v /. 2.0) +. noise))
      done
    done
  done;
  t

let batch ~seed ~count ~channels ~height ~width =
  List.init count (fun k -> image ~seed:(seed + k) ~channels ~height ~width)

let glorot st shape =
  let fan_in, fan_out =
    match shape with
    | [| out_c; in_c; kh; kw |] -> (in_c * kh * kw, out_c * kh * kw)
    | [| out_d; in_d |] -> (in_d, out_d)
    | _ -> (Tensor.numel_of_shape shape, Tensor.numel_of_shape shape)
  in
  let limit = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  let t = Tensor.create shape in
  Array.iteri (fun i _ -> t.Tensor.data.(i) <- Random.State.float st (2.0 *. limit) -. limit) t.Tensor.data;
  t

let bias st n = Array.init n (fun _ -> Random.State.float st 0.02 -. 0.01)
