(** Deterministic synthetic image generation — the stand-in for MNIST /
    CIFAR-10 / the industry partner's medical images, none of which are
    available in this offline environment (DESIGN.md §2). Images have the
    right shapes and value ranges; the experiments that consume them
    (parameter, layout and rotation-key selection; latency; output fidelity)
    depend only on shapes and circuit structure. *)

val image : seed:int -> channels:int -> height:int -> width:int -> Tensor.t
(** Smooth pseudo-image with values in [\[0, 1\]] (blobs + noise, so the
    value distribution is not degenerate). *)

val batch : seed:int -> count:int -> channels:int -> height:int -> width:int -> Tensor.t list

val glorot : Random.State.t -> int array -> Tensor.t
(** Glorot/Xavier-initialised weight tensor (fan-in/fan-out from the first
    two dimensions). *)

val bias : Random.State.t -> int -> float array
