test/test_crypto.ml: Alcotest Array Chet_bigint Chet_crypto Encoding Fft Float List Modarith Ntt Printf QCheck2 QCheck_alcotest Random Security
