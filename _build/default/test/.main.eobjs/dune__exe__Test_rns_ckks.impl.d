test/test_rns_ckks.ml: Alcotest Array Chet_crypto Complexv Float Random Rns_ckks Sampling Stdlib
