test/test_rq.ml: Alcotest Array Chet_bigint Chet_crypto Float Modarith Printf QCheck2 QCheck_alcotest Random Rq_big Rq_rns
