test/test_runtime_prop.ml: Alcotest Array Chet_hisa Chet_nn Chet_runtime Chet_tensor Float Hashtbl List Printf QCheck2 QCheck_alcotest Random
