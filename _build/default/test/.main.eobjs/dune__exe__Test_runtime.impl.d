test/test_runtime.ml: Alcotest Array Chet_crypto Chet_hisa Chet_nn Chet_runtime Chet_tensor List Random
