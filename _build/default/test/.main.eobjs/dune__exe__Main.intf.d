test/main.mli:
