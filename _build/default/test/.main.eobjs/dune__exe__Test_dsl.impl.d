test/test_dsl.ml: Alcotest Array Chet Chet_dsl Chet_nn Chet_tensor Float List String
