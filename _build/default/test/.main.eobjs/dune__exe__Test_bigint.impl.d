test/test_bigint.ml: Alcotest Chet_bigint List Printf QCheck2 QCheck_alcotest Random
