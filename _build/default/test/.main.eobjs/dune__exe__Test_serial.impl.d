test/test_serial.ml: Alcotest Array Big_ckks Chet_bigint Chet_crypto Complexv Rns_ckks Sampling Serial String
