test/test_compiler_prop.ml: Alcotest Chet Chet_crypto Chet_hisa Chet_nn Chet_runtime Float List Printf
