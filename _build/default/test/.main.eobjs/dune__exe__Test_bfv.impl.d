test/test_bfv.ml: Alcotest Array Bfv Chet_crypto Chet_hisa Chet_runtime Chet_tensor Float List Random Sampling
