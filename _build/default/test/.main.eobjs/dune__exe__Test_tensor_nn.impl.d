test/test_tensor_nn.ml: Alcotest Array Chet_nn Chet_tensor Circuit Float List Models Opcount Random Reference
