test/test_big_ckks.ml: Alcotest Array Big_ckks Chet_crypto Complexv Float Random Sampling
