test/test_hisa.ml: Alcotest Array Chet Chet_hisa List
