test/test_compiler.ml: Alcotest Chet Chet_crypto Chet_hisa Chet_nn Chet_runtime Chet_tensor List
