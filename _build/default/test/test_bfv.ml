(* Tests of the BFV integer scheme — the "FV" target the paper says CHET can
   trivially support (§2.2). BFV has no rescaling, so fixed-point scales only
   grow; the tests exercise exactly the shallow-circuit regime that made
   CryptoNets-era systems choose it. *)

open Chet_crypto
module B = Bfv

let n = 256
let params = B.default_params ~n ~plain_bits:30 ~bits:30 ~num_coeff_primes:6 ()
let ctx = B.make_context params
let rng = Sampling.create ~seed:2024
let sk, keys = B.keygen ctx rng

let () = B.add_rotation_key ctx rng sk keys 1

let slots = B.slot_count ctx
let scale = 64.0

let random_vec seed =
  let st = Random.State.make [| seed |] in
  Array.init slots (fun _ -> float_of_int (Random.State.int st 41 - 20) /. 4.0)

let encrypt_vec v = B.encrypt ctx rng keys (B.encode ctx ~scale v)
let decrypt_vec ?(scale = scale) ct = B.decode ctx (B.decrypt ctx sk ct) ~scale

let check_close ?(tol = 1e-6) msg expected got =
  Array.iteri
    (fun i e ->
      if Float.abs (e -. got.(i)) > tol then
        Alcotest.failf "%s: slot %d: %f vs %f" msg i e got.(i))
    expected

let test_encode_decode () =
  let v = random_vec 1 in
  check_close "roundtrip (no encryption)" v (B.decode ctx (B.encode ctx ~scale v) ~scale)

let test_encrypt_decrypt () =
  (* BFV is exact: decryption recovers the fixed-point values precisely *)
  let v = random_vec 2 in
  check_close "exact roundtrip" v (decrypt_vec (encrypt_vec v))

let test_add_sub () =
  let a = random_vec 3 and b = random_vec 4 in
  check_close "add" (Array.init slots (fun i -> a.(i) +. b.(i)))
    (decrypt_vec (B.add ctx (encrypt_vec a) (encrypt_vec b)));
  check_close "sub" (Array.init slots (fun i -> a.(i) -. b.(i)))
    (decrypt_vec (B.sub ctx (encrypt_vec a) (encrypt_vec b)))

let test_mul_relin () =
  let a = random_vec 5 and b = random_vec 6 in
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  let ct = B.mul ctx keys (encrypt_vec a) (encrypt_vec b) in
  (* product sits at scale^2; still exact *)
  check_close "mul" prod (decrypt_vec ~scale:(scale *. scale) ct)

let test_mul_plain () =
  let a = random_vec 7 and b = random_vec 8 in
  let pt = B.encode ctx ~scale b in
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  check_close "mul_plain" prod (decrypt_vec ~scale:(scale *. scale) (B.mul_plain ctx (encrypt_vec a) pt))

let test_add_plain_and_scalar () =
  let a = random_vec 9 and b = random_vec 10 in
  check_close "add_plain"
    (Array.init slots (fun i -> a.(i) +. b.(i)))
    (decrypt_vec (B.add_plain ctx (encrypt_vec a) (B.encode ctx ~scale b)));
  check_close "mul_scalar (by 3)" (Array.map (fun x -> 3.0 *. x) a)
    (decrypt_vec (B.mul_scalar ctx (encrypt_vec a) 3))

let test_rotate () =
  let a = random_vec 11 in
  let rotated = Array.init slots (fun i -> a.((i + 1) mod slots)) in
  check_close "rot 1" rotated (decrypt_vec (B.rotate ctx keys (encrypt_vec a) 1))

let test_depth2 () =
  (* (a*b)*c — two multiplications without rescaling *)
  let a = random_vec 12 and b = random_vec 13 and c = random_vec 14 in
  let ab = B.mul ctx keys (encrypt_vec a) (encrypt_vec b) in
  let abc = B.mul ctx keys ab (encrypt_vec c) in
  let expected = Array.init slots (fun i -> a.(i) *. b.(i) *. c.(i)) in
  check_close "depth 2" expected (decrypt_vec ~scale:(scale ** 3.0) abc)

let test_plaintext_modulus_wrap () =
  (* values beyond t/(2*scale) must wrap — the failure CHET's scale analysis
     guards against in schemes without rescaling *)
  let t = float_of_int (B.plain_modulus ctx) in
  let big = t /. scale /. 2.0 *. 1.5 in
  let v = Array.make slots big in
  let got = decrypt_vec (encrypt_vec v) in
  Alcotest.(check bool) "wrapped" true (Float.abs (got.(0) -. big) > 1.0)

let test_wrong_key () =
  let sk2, _ = B.keygen ctx (Sampling.create ~seed:555) in
  let a = random_vec 15 in
  let got = B.decode ctx (B.decrypt ctx sk2 (encrypt_vec a)) ~scale in
  Alcotest.(check bool) "garbage" true
    (Array.exists2 (fun x y -> Float.abs (x -. y) > 0.5) a got)

let suite =
  [
    ( "bfv",
      [
        Alcotest.test_case "encode/decode" `Quick test_encode_decode;
        Alcotest.test_case "encrypt/decrypt exact" `Quick test_encrypt_decrypt;
        Alcotest.test_case "add/sub" `Quick test_add_sub;
        Alcotest.test_case "mul (relinearised)" `Quick test_mul_relin;
        Alcotest.test_case "mul_plain" `Quick test_mul_plain;
        Alcotest.test_case "add_plain / mul_scalar" `Quick test_add_plain_and_scalar;
        Alcotest.test_case "rotate" `Quick test_rotate;
        Alcotest.test_case "depth 2 without rescaling" `Quick test_depth2;
        Alcotest.test_case "plaintext modulus wrap" `Quick test_plaintext_modulus_wrap;
        Alcotest.test_case "wrong key garbles" `Quick test_wrong_key;
      ] );
  ]

(* --- the CHET kernels run unchanged over the BFV HISA backend --- *)

let test_kernels_over_bfv () =
  let module Hisa = Chet_hisa.Hisa in
  let module Kernels = Chet_runtime.Kernels in
  let module Layout = Chet_runtime.Layout in
  let module T = Chet_tensor.Tensor in
  let module Dataset = Chet_tensor.Dataset in
  let backend =
    Chet_hisa.Bfv_backend.make { Chet_hisa.Bfv_backend.ctx; rng; keys; secret = Some sk }
  in
  let module H = (val backend : Hisa.S) in
  let module K = Kernels.Make (H) in
  (* small fixed-point scales: BFV cannot rescale, so the budget is t *)
  let scales = { Kernels.pc = 1 lsl 8; pw = 1 lsl 6; pu = 1 lsl 6; pm = 1 lsl 2 } in
  let meta = Layout.create ~kind:Layout.HW ~slots:H.slots ~channels:1 ~height:6 ~width:6 ~margin:1 () in
  let image = Dataset.image ~seed:9 ~channels:1 ~height:6 ~width:6 in
  let st = Random.State.make [| 17 |] in
  let weights = Dataset.glorot st [| 2; 1; 3; 3 |] in
  (* keys for every tap rotation of a 3x3 Same conv on this layout *)
  List.iter
    (fun dy ->
      List.iter (fun dx -> B.add_rotation_key ctx rng sk keys ((dy * meta.Layout.row_stride) + dx))
        [ -1; 0; 1 ])
    [ -1; 0; 1 ];
  let enc = K.encrypt_tensor scales meta image in
  let out = K.conv2d scales enc ~weights ~bias:None ~stride:1 ~padding:T.Same in
  let got = K.decrypt_tensor out in
  let expected = T.conv2d ~input:image ~weights ~stride:1 ~padding:T.Same () in
  let diff = T.max_abs_diff expected got in
  (* fixed-point quantisation at these small scales dominates the error *)
  if diff > 0.1 then Alcotest.failf "conv over BFV: diff %.4f" diff

let suite =
  match suite with
  | [ (name, cases) ] ->
      [ (name, cases @ [ Alcotest.test_case "CHET conv kernel over BFV" `Quick test_kernels_over_bfv ]) ]
  | other -> other
