(* Tests for the plaintext tensor library and the tensor-circuit IR. *)

module T = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset
open Chet_nn

let check_float = Alcotest.(check (float 1e-9))

let test_conv2d_identity () =
  (* 1x1 identity kernel leaves the image unchanged *)
  let img = Dataset.image ~seed:1 ~channels:2 ~height:5 ~width:5 in
  let w = T.create [| 2; 2; 1; 1 |] in
  T.set w [| 0; 0; 0; 0 |] 1.0;
  T.set w [| 1; 1; 0; 0 |] 1.0;
  let out = T.conv2d ~input:img ~weights:w ~stride:1 ~padding:T.Valid () in
  check_float "identity" 0.0 (T.max_abs_diff img out)

let test_conv2d_known () =
  (* 2x2 all-ones kernel, valid padding: each output is the window sum *)
  let img = T.of_array [| 1; 3; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. |] in
  let w = T.of_array [| 1; 1; 2; 2 |] [| 1.; 1.; 1.; 1. |] in
  let out = T.conv2d ~input:img ~weights:w ~stride:1 ~padding:T.Valid () in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2 |] out.T.shape;
  check_float "tl" 12.0 (T.get3 out 0 0 0);
  check_float "tr" 16.0 (T.get3 out 0 0 1);
  check_float "bl" 24.0 (T.get3 out 0 1 0);
  check_float "br" 28.0 (T.get3 out 0 1 1)

let test_conv2d_same_padding () =
  (* 3x3 all-ones kernel, same padding: corners see only 4 values *)
  let img = T.of_array [| 1; 3; 3 |] (Array.make 9 1.0) in
  let w = T.of_array [| 1; 1; 3; 3 |] (Array.make 9 1.0) in
  let out = T.conv2d ~input:img ~weights:w ~stride:1 ~padding:T.Same () in
  Alcotest.(check (array int)) "shape preserved" [| 1; 3; 3 |] out.T.shape;
  check_float "corner" 4.0 (T.get3 out 0 0 0);
  check_float "edge" 6.0 (T.get3 out 0 0 1);
  check_float "center" 9.0 (T.get3 out 0 1 1)

let test_conv2d_stride2 () =
  let img = Dataset.image ~seed:2 ~channels:1 ~height:8 ~width:8 in
  let w = Dataset.glorot (Random.State.make [| 3 |]) [| 4; 1; 3; 3 |] in
  let out = T.conv2d ~input:img ~weights:w ~stride:2 ~padding:T.Same () in
  Alcotest.(check (array int)) "shape" [| 4; 4; 4 |] out.T.shape;
  (* spot-check one strided position against a direct computation *)
  let direct o i j =
    let acc = ref 0.0 in
    for c = 0 to 0 do
      for dy = 0 to 2 do
        for dx = 0 to 2 do
          let y = (i * 2) + dy - 1 and x = (j * 2) + dx - 1 in
          if y >= 0 && y < 8 && x >= 0 && x < 8 then
            acc := !acc +. (T.get3 img c y x *. T.get w [| o; c; dy; dx |])
        done
      done
    done;
    !acc
  in
  check_float "strided value" (direct 2 1 1) (T.get3 out 2 1 1)

let test_avg_pool () =
  let img = T.of_array [| 1; 4; 4 |] (Array.init 16 float_of_int) in
  let out = T.avg_pool2d ~input:img ~ksize:2 ~stride:2 in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2 |] out.T.shape;
  check_float "tl" 2.5 (T.get3 out 0 0 0);
  check_float "br" 12.5 (T.get3 out 0 1 1)

let test_matmul () =
  let w = T.of_array [| 2; 3 |] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let x = T.of_array [| 3 |] [| 1.; 1.; 2. |] in
  let y = T.matmul_vec ~weights:w ~bias:[| 0.5; -0.5 |] x in
  check_float "y0" 9.5 (T.get y [| 0 |]);
  check_float "y1" 20.5 (T.get y [| 1 |])

let test_poly_act_and_bn () =
  let x = T.of_array [| 1; 1; 3 |] [| 1.0; -2.0; 0.5 |] in
  let y = T.poly_act ~a:0.5 ~b:1.0 x in
  check_float "1 -> 1.5" 1.5 (T.get3 y 0 0 0);
  check_float "-2 -> 0" 0.0 (T.get3 y 0 0 1);
  let z = T.batch_norm ~scale:[| 2.0 |] ~shift:[| 1.0 |] x in
  check_float "bn" 3.0 (T.get3 z 0 0 0)

let test_global_avg_pool_concat () =
  let a = T.of_array [| 1; 2; 2 |] [| 1.; 2.; 3.; 4. |] in
  let b = T.of_array [| 2; 2; 2 |] (Array.make 8 1.0) in
  let cat = T.concat_channels [ a; b ] in
  Alcotest.(check (array int)) "concat shape" [| 3; 2; 2 |] cat.T.shape;
  let g = T.global_avg_pool cat in
  check_float "gap ch0" 2.5 (T.get3 g 0 0 0);
  check_float "gap ch1" 1.0 (T.get3 g 1 0 0)

(* ------------------------------------------------------------------ *)
(* Circuits and models                                                 *)
(* ------------------------------------------------------------------ *)

let test_model_shapes () =
  List.iter
    (fun spec ->
      let circuit = (spec.Models.build) () in
      let img = Models.input_for spec ~seed:11 in
      let out = Reference.eval circuit img in
      let expected_outputs =
        match spec.Models.model_name with "Industrial" -> 2 | _ -> 10
      in
      Alcotest.(check int)
        (spec.Models.model_name ^ " output size")
        expected_outputs (T.numel out))
    Models.all

let test_layer_counts_table3 () =
  let check name (conv, fc, act) =
    let spec = Models.find name in
    Alcotest.(check (triple int int int)) name (conv, fc, act) (Circuit.layer_counts (spec.Models.build ()))
  in
  (* Table 3's layer structure *)
  check "LeNet-5-small" (2, 2, 4);
  check "LeNet-5-medium" (2, 2, 4);
  check "LeNet-5-large" (2, 2, 4);
  check "Industrial" (5, 2, 6);
  check "SqueezeNet-CIFAR" (10, 0, 9)

let test_build_deterministic () =
  let spec = Models.lenet5_small in
  let c1 = spec.Models.build () and c2 = spec.Models.build () in
  let img = Models.input_for spec ~seed:5 in
  let o1 = Reference.eval c1 img and o2 = Reference.eval c2 img in
  check_float "same output" 0.0 (T.max_abs_diff o1 o2)

let test_magnitudes_bounded () =
  (* the synthetic networks must not blow up numerically, or the fixed-point
     analysis would be meaningless *)
  List.iter
    (fun spec ->
      let circuit = (spec.Models.build) () in
      let img = Models.input_for spec ~seed:3 in
      let m = Reference.max_intermediate_abs circuit img in
      if m > 1000.0 || Float.is_nan m then
        Alcotest.failf "%s: intermediate magnitude %f" spec.Models.model_name m)
    Models.all

let test_depth_and_opcount () =
  let small = Models.lenet5_small.Models.build () in
  let large = Models.lenet5_large.Models.build () in
  Alcotest.(check bool) "large deeper or equal" true
    (Circuit.multiplicative_depth large >= Circuit.multiplicative_depth small);
  let ops_small = (Opcount.count small).Opcount.total in
  let ops_large = (Opcount.count large).Opcount.total in
  Alcotest.(check bool) "positive" true (ops_small > 0);
  Alcotest.(check bool) "large has more ops" true (ops_large > 10 * ops_small)

let test_fused_expand_equivalence () =
  (* the fused 1x1+3x3 expand convolution equals conv1x1 ++ conv3x3 *)
  let st = Random.State.make [| 42 |] in
  let x = Dataset.image ~seed:9 ~channels:4 ~height:6 ~width:6 in
  let w1 = Dataset.glorot st [| 3; 4; 1; 1 |] in
  let w3 = Dataset.glorot st [| 3; 4; 3; 3 |] in
  let fused = T.create [| 6; 4; 3; 3 |] in
  for o = 0 to 2 do
    for c = 0 to 3 do
      T.set fused [| o; c; 1; 1 |] (T.get w1 [| o; c; 0; 0 |]);
      for dy = 0 to 2 do
        for dx = 0 to 2 do
          T.set fused [| 3 + o; c; dy; dx |] (T.get w3 [| o; c; dy; dx |])
        done
      done
    done
  done;
  let direct =
    T.concat_channels
      [
        T.conv2d ~input:x ~weights:w1 ~stride:1 ~padding:T.Same ();
        T.conv2d ~input:x ~weights:w3 ~stride:1 ~padding:T.Same ();
      ]
  in
  let via_fused = T.conv2d ~input:x ~weights:fused ~stride:1 ~padding:T.Same () in
  check_float "equivalent" 0.0 (T.max_abs_diff direct via_fused)

let test_circuit_validation () =
  let b = Circuit.builder () in
  let x = Circuit.input b ~name:"i" [| 1; 8; 8 |] in
  Alcotest.(check bool) "bad channels rejected" true
    (try
       ignore (Circuit.conv2d b x ~weights:(T.create [| 2; 3; 3; 3 |]) ~stride:1 ~padding:T.Valid ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad fc rejected" true
    (try
       ignore (Circuit.matmul b x ~weights:(T.create [| 4; 99 |]) ());
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "tensor",
      [
        Alcotest.test_case "conv2d identity kernel" `Quick test_conv2d_identity;
        Alcotest.test_case "conv2d known values" `Quick test_conv2d_known;
        Alcotest.test_case "conv2d same padding" `Quick test_conv2d_same_padding;
        Alcotest.test_case "conv2d stride 2" `Quick test_conv2d_stride2;
        Alcotest.test_case "avg pool" `Quick test_avg_pool;
        Alcotest.test_case "matmul" `Quick test_matmul;
        Alcotest.test_case "poly act / batch norm" `Quick test_poly_act_and_bn;
        Alcotest.test_case "global avg pool / concat" `Quick test_global_avg_pool_concat;
      ] );
    ( "nn",
      [
        Alcotest.test_case "model output shapes" `Quick test_model_shapes;
        Alcotest.test_case "Table 3 layer counts" `Quick test_layer_counts_table3;
        Alcotest.test_case "deterministic builds" `Quick test_build_deterministic;
        Alcotest.test_case "bounded magnitudes" `Quick test_magnitudes_bounded;
        Alcotest.test_case "depth and op counts" `Quick test_depth_and_opcount;
        Alcotest.test_case "fused fire expand" `Quick test_fused_expand_equivalence;
        Alcotest.test_case "builder validation" `Quick test_circuit_validation;
      ] );
  ]
