(* Unit and property tests for the arbitrary-precision integer substrate. *)

module B = Chet_bigint.Bigint

let bi = Alcotest.testable B.pp B.equal

let check_bi = Alcotest.check bi

(* ------------------------------------------------------------------ *)
(* Unit tests                                                          *)
(* ------------------------------------------------------------------ *)

let test_of_int_roundtrip () =
  List.iter
    (fun n -> Alcotest.(check int) (string_of_int n) n (B.to_int (B.of_int n)))
    [ 0; 1; -1; 42; -42; max_int; min_int + 1; 1 lsl 31; (1 lsl 62) - 1; -(1 lsl 40) ]

let test_to_string () =
  Alcotest.(check string) "zero" "0" (B.to_string B.zero);
  Alcotest.(check string) "small" "12345" (B.to_string (B.of_int 12345));
  Alcotest.(check string) "negative" "-987654321" (B.to_string (B.of_int (-987654321)));
  Alcotest.(check string) "2^100" "1267650600228229401496703205376" (B.to_string (B.pow2 100))

let test_of_string () =
  check_bi "roundtrip" (B.of_int 123456789) (B.of_string "123456789");
  check_bi "negative" (B.of_int (-42)) (B.of_string "-42");
  check_bi "big" (B.pow2 100) (B.of_string "1267650600228229401496703205376");
  check_bi "hex" (B.of_int 255) (B.of_string "0xff");
  check_bi "hex big" (B.pow2 64) (B.of_string "0x10000000000000000");
  Alcotest.check_raises "empty" (Invalid_argument "Bigint.of_string: empty") (fun () ->
      ignore (B.of_string ""))

let test_add_sub () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "987654321098765432109876543210" in
  check_bi "a+b" (B.of_string "1111111110111111111011111111100") (B.add a b);
  check_bi "b-a" (B.of_string "864197532086419753208641975320") (B.sub b a);
  check_bi "a-b" (B.of_string "-864197532086419753208641975320") (B.sub a b);
  check_bi "a-a" B.zero (B.sub a a)

let test_mul () =
  let a = B.of_string "123456789012345678901234567890" in
  let b = B.of_string "987654321098765432109876543210" in
  check_bi "a*b"
    (B.of_string "121932631137021795226185032733622923332237463801111263526900")
    (B.mul a b);
  check_bi "sign" (B.neg (B.mul a b)) (B.mul (B.neg a) b);
  check_bi "by zero" B.zero (B.mul a B.zero)

let test_karatsuba_agrees () =
  (* Big enough operands to cross the Karatsuba threshold; verified against a
     value computed independently (python3). *)
  let a = B.pow (B.of_string "1234567890123456789") 40 in
  let b = B.pow (B.of_string "9876543210987654321") 40 in
  let product = B.mul a b in
  check_bi "div back b" a (B.div product b);
  check_bi "div back a" b (B.div product a);
  check_bi "rem" B.zero (B.rem product a)

let test_divmod () =
  let a = B.of_string "121932631137021795226185032733622923332237463801111263526901" in
  let b = B.of_string "987654321098765432109876543210" in
  let q, r = B.divmod a b in
  check_bi "q" (B.of_string "123456789012345678901234567890") q;
  check_bi "r" B.one r;
  (* Truncated semantics: sign r = sign a *)
  let q2, r2 = B.divmod (B.neg a) b in
  check_bi "q neg" (B.neg q) q2;
  check_bi "r neg" B.minus_one r2;
  Alcotest.check_raises "div by zero" Division_by_zero (fun () -> ignore (B.divmod a B.zero))

let test_ediv () =
  let a = B.of_int (-7) and b = B.of_int 3 in
  let q, r = B.ediv_rem a b in
  check_bi "q" (B.of_int (-3)) q;
  check_bi "r" (B.of_int 2) r;
  let q, r = B.ediv_rem a (B.of_int (-3)) in
  check_bi "q negdiv" (B.of_int 3) q;
  check_bi "r negdiv" (B.of_int 2) r

let test_div_round () =
  check_bi "7/2 -> 4" (B.of_int 4) (B.div_round (B.of_int 7) (B.of_int 2));
  check_bi "5/2 -> 3 (ties away)" (B.of_int 3) (B.div_round (B.of_int 5) (B.of_int 2));
  check_bi "-5/2 -> -3" (B.of_int (-3)) (B.div_round (B.of_int (-5)) (B.of_int 2));
  check_bi "4/3 -> 1" B.one (B.div_round (B.of_int 4) (B.of_int 3));
  check_bi "big" (B.pow2 50) (B.div_round (B.pow2 100) (B.pow2 50))

let test_shift () =
  check_bi "shl" (B.of_int 40) (B.shift_left (B.of_int 5) 3);
  check_bi "shr" (B.of_int 5) (B.shift_right (B.of_int 40) 3);
  check_bi "shl big" (B.pow2 131) (B.shift_left B.two 130);
  check_bi "shr all" B.zero (B.shift_right (B.of_int 5) 3);
  check_bi "shl/shr roundtrip" (B.of_string "123456789123456789")
    (B.shift_right (B.shift_left (B.of_string "123456789123456789") 200) 200)

let test_num_bits () =
  Alcotest.(check int) "zero" 0 (B.num_bits B.zero);
  Alcotest.(check int) "one" 1 (B.num_bits B.one);
  Alcotest.(check int) "255" 8 (B.num_bits (B.of_int 255));
  Alcotest.(check int) "256" 9 (B.num_bits (B.of_int 256));
  Alcotest.(check int) "2^100" 101 (B.num_bits (B.pow2 100))

let test_modpow () =
  check_bi "2^10 mod 1000" (B.of_int 24) (B.modpow B.two (B.of_int 10) (B.of_int 1000));
  (* Fermat: a^(p-1) = 1 mod p for prime p *)
  let p = B.of_int 1073741789 (* prime < 2^30 *) in
  check_bi "fermat" B.one (B.modpow (B.of_int 123456789) (B.sub p B.one) p);
  check_bi "negative base" (B.of_int 4) (B.modpow (B.of_int (-2)) B.two (B.of_int 100))

let test_centered_mod () =
  let q = B.of_int 100 in
  check_bi "30" (B.of_int 30) (B.centered_mod (B.of_int 30) q);
  check_bi "80 -> -20" (B.of_int (-20)) (B.centered_mod (B.of_int 80) q);
  check_bi "-30" (B.of_int (-30)) (B.centered_mod (B.of_int (-30)) q);
  check_bi "50 -> -50" (B.of_int (-50)) (B.centered_mod (B.of_int 50) q);
  check_bi "150 -> -50" (B.of_int (-50)) (B.centered_mod (B.of_int 150) q)

let test_gcd () =
  check_bi "gcd" (B.of_int 6) (B.gcd (B.of_int 54) (B.of_int 24));
  check_bi "gcd coprime" B.one (B.gcd (B.of_int 17) (B.of_int 31));
  check_bi "gcd zero" (B.of_int 5) (B.gcd B.zero (B.of_int 5))

let test_random_below () =
  let st = Random.State.make [| 42 |] in
  let rand31 () = Random.State.bits st in
  let bound = B.of_string "123456789012345678901234567890" in
  for _ = 1 to 100 do
    let v = B.random_below rand31 bound in
    Alcotest.(check bool) "in range" true (B.compare v bound < 0 && B.sign v >= 0)
  done

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let gen_bigint =
  (* random signed bigints of up to ~300 bits, biased towards small ones *)
  let open QCheck2.Gen in
  let* nlimbs = int_range 0 10 in
  let* limbs = list_size (return nlimbs) (int_bound ((1 lsl 30) - 1)) in
  let* neg_sign = bool in
  let mag = List.fold_left (fun acc limb -> B.add_int (B.shift_left acc 30) limb) B.zero limbs in
  return (if neg_sign then B.neg mag else mag)

let gen_pair = QCheck2.Gen.pair gen_bigint gen_bigint
let gen_triple = QCheck2.Gen.triple gen_bigint gen_bigint gen_bigint
let print_pair (a, b) = B.to_string a ^ ", " ^ B.to_string b
let print_triple (a, b, c) = B.to_string a ^ ", " ^ B.to_string b ^ ", " ^ B.to_string c

let prop name count print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

let props =
  [
    prop "add commutative" 500 print_pair gen_pair (fun (a, b) -> B.equal (B.add a b) (B.add b a));
    prop "mul commutative" 300 print_pair gen_pair (fun (a, b) -> B.equal (B.mul a b) (B.mul b a));
    prop "add assoc" 300 print_triple gen_triple (fun (a, b, c) ->
        B.equal (B.add a (B.add b c)) (B.add (B.add a b) c));
    prop "mul distributes" 300 print_triple gen_triple (fun (a, b, c) ->
        B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)));
    prop "sub inverse" 500 print_pair gen_pair (fun (a, b) -> B.equal a (B.add (B.sub a b) b));
    prop "divmod identity" 500 print_pair gen_pair (fun (a, b) ->
        QCheck2.assume (not (B.is_zero b));
        let q, r = B.divmod a b in
        B.equal a (B.add (B.mul q b) r) && B.compare (B.abs r) (B.abs b) < 0);
    prop "ediv remainder nonneg" 500 print_pair gen_pair (fun (a, b) ->
        QCheck2.assume (not (B.is_zero b));
        let q, r = B.ediv_rem a b in
        B.equal a (B.add (B.mul q b) r) && B.sign r >= 0 && B.compare r (B.abs b) < 0);
    prop "string roundtrip" 300 B.to_string gen_bigint (fun a -> B.equal a (B.of_string (B.to_string a)));
    prop "compare antisym" 500 print_pair gen_pair (fun (a, b) -> B.compare a b = -B.compare b a);
    prop "num_bits bound" 300 B.to_string gen_bigint (fun a ->
        QCheck2.assume (not (B.is_zero a));
        let n = B.num_bits a in
        B.compare (B.abs a) (B.pow2 n) < 0 && B.compare (B.abs a) (B.pow2 (n - 1)) >= 0);
    prop "shift_left is mul pow2" 300 B.to_string gen_bigint (fun a ->
        B.equal (B.shift_left a 17) (B.mul a (B.pow2 17)));
    prop "centered_mod congruent" 500 print_pair gen_pair (fun (a, q) ->
        QCheck2.assume (B.sign q > 0);
        let r = B.centered_mod a q in
        B.is_zero (B.emod (B.sub a r) q)
        && B.compare (B.mul_int r 2) q < 0
        && B.compare (B.mul_int r 2) (B.neg q) >= 0);
    prop "modpow matches pow" 200
      (fun (b, e, m) -> Printf.sprintf "%d^%d mod %d" b e m)
      QCheck2.Gen.(triple (int_bound 1000) (int_bound 12) (int_range 1 100000))
      (fun (b, e, m) ->
        B.equal
          (B.modpow (B.of_int b) (B.of_int e) (B.of_int m))
          (B.emod (B.pow (B.of_int b) e) (B.of_int m)));
  ]

let unit_tests =
  [
    Alcotest.test_case "of_int roundtrip" `Quick test_of_int_roundtrip;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    Alcotest.test_case "add/sub" `Quick test_add_sub;
    Alcotest.test_case "mul" `Quick test_mul;
    Alcotest.test_case "karatsuba agrees with division" `Quick test_karatsuba_agrees;
    Alcotest.test_case "divmod" `Quick test_divmod;
    Alcotest.test_case "euclidean division" `Quick test_ediv;
    Alcotest.test_case "div_round" `Quick test_div_round;
    Alcotest.test_case "shifts" `Quick test_shift;
    Alcotest.test_case "num_bits" `Quick test_num_bits;
    Alcotest.test_case "modpow" `Quick test_modpow;
    Alcotest.test_case "centered_mod" `Quick test_centered_mod;
    Alcotest.test_case "gcd" `Quick test_gcd;
    Alcotest.test_case "random_below" `Quick test_random_below;
  ]

let suite = [ ("bigint:unit", unit_tests); ("bigint:props", props) ]
