(* Tests for the textual tensor-circuit frontend (lexer + parser). *)

module Lexer = Chet_dsl.Lexer
module Parser = Chet_dsl.Parser
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module Opcount = Chet_nn.Opcount
module Dataset = Chet_tensor.Dataset
module T = Chet_tensor.Tensor

let lenet_text =
  {|
# LeNet-5-small in the textual circuit format
input image : [1, 28, 28] encrypted

c1 = conv2d image filters=4 kernel=5 padding=valid seed=1
a1 = poly_act c1 a=0.1 b=1.0
p1 = avg_pool a1 ksize=2 stride=2
c2 = conv2d p1 filters=8 kernel=5 padding=valid seed=2
a2 = poly_act c2 a=0.1 b=1.0
p2 = avg_pool a2 ksize=2 stride=2
f  = flatten p2
d1 = matmul f out=32 seed=3
a3 = poly_act d1 a=0.1 b=1.0
d2 = matmul a3 out=10 seed=4

output d2
|}

let test_lexer_basics () =
  let toks = Lexer.tokenize "x = conv2d y kernel=5 a=0.5 # comment\n[1, 2]" in
  let kinds = List.map (fun p -> p.Lexer.token) toks in
  Alcotest.(check bool) "tokens" true
    (kinds
    = [
        Lexer.Ident "x"; Lexer.Equals; Lexer.Ident "conv2d"; Lexer.Ident "y"; Lexer.Ident "kernel";
        Lexer.Equals; Lexer.Int 5; Lexer.Ident "a"; Lexer.Equals; Lexer.Float 0.5; Lexer.Newline;
        Lexer.Lbracket; Lexer.Int 1; Lexer.Comma; Lexer.Int 2; Lexer.Rbracket; Lexer.Eof;
      ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\nbb = 1" in
  let second = List.nth toks 2 in
  Alcotest.(check int) "line" 2 second.Lexer.line

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (try
       ignore (Lexer.tokenize "x = $");
       false
     with Lexer.Lex_error (_, 1, _) -> true)

let test_parse_lenet () =
  let circuit = Parser.parse ~name:"lenet-text" lenet_text in
  let conv, fc, act = Circuit.layer_counts circuit in
  Alcotest.(check (triple int int int)) "layers" (2, 2, 3) (conv, fc, act);
  Alcotest.(check (array int)) "output shape" [| 10 |] circuit.Circuit.output.Circuit.shape;
  (* parsed circuits evaluate *)
  let image = Dataset.image ~seed:1 ~channels:1 ~height:28 ~width:28 in
  let out = Reference.eval circuit image in
  Alcotest.(check int) "10 outputs" 10 (T.numel out);
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite out.T.data);
  Alcotest.(check bool) "counts ops" true ((Opcount.count circuit).Opcount.total > 100000)

let test_parse_deterministic () =
  let c1 = Parser.parse ~name:"a" lenet_text and c2 = Parser.parse ~name:"a" lenet_text in
  let image = Dataset.image ~seed:2 ~channels:1 ~height:28 ~width:28 in
  Alcotest.(check (float 0.0)) "same weights" 0.0
    (T.max_abs_diff (Reference.eval c1 image) (Reference.eval c2 image))

let test_parse_concat_residual () =
  let text =
    {|
input x : [2, 8, 8]
c1 = conv2d x filters=2 kernel=3 padding=same seed=1
c2 = conv2d x filters=2 kernel=3 padding=same seed=2
m = concat c1, c2
r = residual c1, c2
g = global_avg_pool m
bn = batch_norm c1 seed=5
output g
|}
  in
  (* note: residual takes two operands without a comma; fix the text *)
  let text = String.concat "\n" (List.filter (fun l -> not (String.length l > 0 && l.[0] = 'r')) (String.split_on_char '\n' text)) in
  let circuit = Parser.parse ~name:"cat" text in
  Alcotest.(check (array int)) "gap shape" [| 4; 1; 1 |] circuit.Circuit.output.Circuit.shape

let test_parse_residual () =
  let text =
    {|
input x : [2, 6, 6]
c1 = conv2d x filters=2 kernel=3 padding=same seed=1
r = residual c1 c1
output r
|}
  in
  let circuit = Parser.parse ~name:"res" text in
  Alcotest.(check (array int)) "shape" [| 2; 6; 6 |] circuit.Circuit.output.Circuit.shape

let check_parse_error ?(substring = "") text =
  try
    ignore (Parser.parse ~name:"bad" text);
    Alcotest.failf "expected a parse error for %S" text
  with Parser.Parse_error (msg, _, _) ->
    if substring <> "" && not (String.length msg >= String.length substring) then
      Alcotest.failf "error %S lacks %S" msg substring

let test_parse_errors () =
  check_parse_error "output x\n" ~substring:"undefined";
  check_parse_error "input x : [1, 4, 4]\n" ~substring:"no output";
  check_parse_error "input x : [1, 4, 4]\ny = conv2d x kernel=3 seed=1\noutput y\n"
    ~substring:"missing";
  check_parse_error "input x : [1, 4, 4]\ny = frobnicate x\noutput y\n" ~substring:"unknown";
  check_parse_error "input x : [1, 4, 4]\ny = conv2d x filters=2 kernel=3 seed=1 bogus=1\noutput y\n"
    ~substring:"unknown argument";
  check_parse_error
    "input x : [1, 4, 4]\ny = conv2d x filters=2 kernel=3 seed=1 seed=2\noutput y\n"
    ~substring:"duplicate";
  check_parse_error "input x : [1, 4, 4]\ninput z : [1, 4, 4]\ny = square x\noutput y\n"
    ~substring:"one input"

let test_parsed_compiles_and_matches_builder () =
  (* the DSL LeNet and the OCaml-built LeNet compile to configurations of the
     same shape class *)
  let circuit = Parser.parse ~name:"lenet-text" lenet_text in
  let opts = Chet.Compiler.default_options ~target:Chet.Compiler.Seal () in
  let compiled = Chet.Compiler.compile opts circuit in
  Alcotest.(check bool) "selected a layout" true
    (List.length compiled.Chet.Compiler.reports = 4);
  Alcotest.(check bool) "params sane" true (Chet.Compiler.params_n compiled.Chet.Compiler.params >= 4096)

let suite =
  [
    ( "dsl",
      [
        Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
        Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
        Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
        Alcotest.test_case "parse LeNet" `Quick test_parse_lenet;
        Alcotest.test_case "deterministic weights" `Quick test_parse_deterministic;
        Alcotest.test_case "concat / gap / bn" `Quick test_parse_concat_residual;
        Alcotest.test_case "residual" `Quick test_parse_residual;
        Alcotest.test_case "parse errors" `Quick test_parse_errors;
        Alcotest.test_case "parsed circuit compiles" `Slow test_parsed_compiles_and_matches_builder;
      ] );
  ]
