(* End-to-end tests of the HEAAN-style CKKS scheme (power-of-two modulus). *)

open Chet_crypto
module C = Big_ckks

let n = 64
let scale = 1073741824.0 (* 2^30 *)
let log_fresh = 150
let params = C.default_params ~n ~log_fresh ()
let ctx = C.make_context params
let rng = Sampling.create ~seed:777
let sk, keys = C.keygen ctx rng

let () =
  C.add_rotation_key ctx rng sk keys 1;
  C.add_power_of_two_rotation_keys ctx rng sk keys

let slots = C.slot_count ctx

let random_vec seed =
  let st = Random.State.make [| seed |] in
  Array.init slots (fun _ -> Random.State.float st 4.0 -. 2.0)

let encrypt_vec v = C.encrypt ctx rng keys.C.public (C.encode_real ctx ~logq:log_fresh ~scale v)
let decrypt_vec ct = C.decode ctx (C.decrypt ctx sk ct)

let check_close ?(tol = 5e-3) msg expected ct =
  let got = decrypt_vec ct in
  let diff = Complexv.max_abs_diff (Complexv.of_real expected) got in
  if diff > tol then
    Alcotest.failf "%s: max abs diff %.6f > %.6f (first expected %.4f got %.4f)" msg diff tol
      expected.(0) (Complexv.get_re got 0)

let test_roundtrip () =
  let v = random_vec 1 in
  check_close "roundtrip" v (encrypt_vec v)

let test_add_sub () =
  let a = random_vec 2 and b = random_vec 3 in
  check_close "add" (Array.init slots (fun i -> a.(i) +. b.(i))) (C.add ctx (encrypt_vec a) (encrypt_vec b));
  check_close "sub" (Array.init slots (fun i -> a.(i) -. b.(i))) (C.sub ctx (encrypt_vec a) (encrypt_vec b))

let test_mul_relin () =
  let a = random_vec 4 and b = random_vec 5 in
  let prod = Array.init slots (fun i -> a.(i) *. b.(i)) in
  check_close ~tol:1e-2 "mul" prod (C.mul ctx keys (encrypt_vec a) (encrypt_vec b))

let test_mul_plain_scalar () =
  let a = random_vec 6 and b = random_vec 7 in
  let pt = C.encode_real ctx ~logq:log_fresh ~scale b in
  check_close ~tol:1e-2 "mul_plain"
    (Array.init slots (fun i -> a.(i) *. b.(i)))
    (C.mul_plain ctx (encrypt_vec a) pt);
  check_close ~tol:1e-2 "mul_scalar" (Array.map (fun x -> x *. 0.5) a)
    (C.mul_scalar ctx (encrypt_vec a) 0.5 ~scale);
  check_close "add_scalar" (Array.map (fun x -> x -. 0.25) a)
    (C.add_scalar ctx (encrypt_vec a) (-0.25))

let test_rescale_powers_of_two () =
  let a = random_vec 8 and b = random_vec 9 in
  let ct = C.mul ctx keys (encrypt_vec a) (encrypt_vec b) in
  (* maxRescale semantics: largest power of two <= ub *)
  Alcotest.(check int) "pow2 cap" 1024 (C.max_rescale ctx ct 2047);
  Alcotest.(check int) "exact pow2" 2048 (C.max_rescale ctx ct 2048);
  Alcotest.(check int) "ub 1" 1 (C.max_rescale ctx ct 1);
  let d = C.max_rescale ctx ct (int_of_float scale) in
  Alcotest.(check int) "full scale" (int_of_float scale) d;
  let ct' = C.rescale ctx ct d in
  Alcotest.(check int) "logq consumed" (C.logq_of ct - 30) (C.logq_of ct');
  Alcotest.(check bool) "scale back" true (Float.abs (C.scale_of ct' -. scale) < 1.0);
  check_close ~tol:1e-2 "value" (Array.init slots (fun i -> a.(i) *. b.(i))) ct'

let test_depth_chain () =
  let v = Array.init slots (fun i -> 0.4 +. (0.01 *. float_of_int (i mod 5))) in
  let ct = ref (encrypt_vec v) in
  let expected = ref (Array.copy v) in
  for _ = 1 to 3 do
    ct := C.mul ctx keys !ct !ct;
    ct := C.rescale ctx !ct (C.max_rescale ctx !ct (int_of_float scale));
    expected := Array.map (fun x -> x *. x) !expected
  done;
  check_close ~tol:5e-2 "depth-3 squaring" !expected !ct;
  Alcotest.(check int) "modulus consumed" (log_fresh - 90) (C.logq_of !ct)

let test_rotate () =
  let a = random_vec 10 in
  check_close ~tol:1e-2 "rot 1" (Array.init slots (fun i -> a.((i + 1) mod slots)))
    (C.rotate ctx keys (encrypt_vec a) 1);
  (* composite rotation via power-of-two fallback *)
  check_close ~tol:1e-2 "rot 11" (Array.init slots (fun i -> a.((i + 11) mod slots)))
    (C.rotate ctx keys (encrypt_vec a) 11);
  check_close ~tol:1e-2 "rot -2" (Array.init slots (fun i -> a.((i - 2 + slots) mod slots)))
    (C.rotate ctx keys (encrypt_vec a) (-2))

let test_mod_down () =
  let a = random_vec 11 in
  let ct = C.mod_down ctx (encrypt_vec a) ~logq:100 in
  Alcotest.(check int) "logq" 100 (C.logq_of ct);
  check_close "value preserved" a ct

let test_modulus_exhaustion_garbles () =
  (* Keep multiplying without enough modulus head-room: the coefficients
     overflow Q and the result is garbage — the failure mode CHET's
     parameter selection exists to prevent. *)
  let v = Array.make slots 1.9 in
  let ct = ref (encrypt_vec v) in
  (* consume modulus down to barely above one scale's worth *)
  ct := C.mod_down ctx !ct ~logq:45;
  ct := C.mul ctx keys !ct !ct (* scale^2 = 2^60 > 2^45: overflow *);
  let got = decrypt_vec !ct in
  let expected = Complexv.of_real (Array.make slots (1.9 *. 1.9)) in
  Alcotest.(check bool) "overflowed result is wrong" true
    (Complexv.max_abs_diff expected got /. (C.scale_of !ct /. scale /. scale) > 0.0
    && Complexv.max_abs_diff expected got > 0.5)

let test_wrong_key () =
  let rng2 = Sampling.create ~seed:31337 in
  let sk2, _ = C.keygen ctx rng2 in
  let a = random_vec 12 in
  let got = C.decode ctx (C.decrypt ctx sk2 (encrypt_vec a)) in
  Alcotest.(check bool) "garbage" true (Complexv.max_abs_diff (Complexv.of_real a) got > 1.0)

let suite =
  [
    ( "big_ckks",
      [
        Alcotest.test_case "encrypt/decrypt" `Quick test_roundtrip;
        Alcotest.test_case "add/sub" `Quick test_add_sub;
        Alcotest.test_case "mul (relinearised)" `Quick test_mul_relin;
        Alcotest.test_case "mul_plain / scalars" `Quick test_mul_plain_scalar;
        Alcotest.test_case "rescale by powers of two" `Quick test_rescale_powers_of_two;
        Alcotest.test_case "depth-3 squaring chain" `Quick test_depth_chain;
        Alcotest.test_case "rotate" `Quick test_rotate;
        Alcotest.test_case "mod_down" `Quick test_mod_down;
        Alcotest.test_case "modulus exhaustion garbles" `Quick test_modulus_exhaustion_garbles;
        Alcotest.test_case "wrong key garbles" `Quick test_wrong_key;
      ] );
  ]
