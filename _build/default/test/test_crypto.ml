(* Tests for the crypto substrates: modular arithmetic, NTT, FFT, the CKKS
   canonical embedding, and security tables. *)

open Chet_crypto
module B = Chet_bigint.Bigint

let prop name count print gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count ~print gen f)

(* ------------------------------------------------------------------ *)
(* Modarith                                                            *)
(* ------------------------------------------------------------------ *)

let test_is_prime () =
  List.iter
    (fun (n, expected) -> Alcotest.(check bool) (string_of_int n) expected (Modarith.is_prime n))
    [
      (0, false); (1, false); (2, true); (3, true); (4, false); (17, true); (561, false);
      (* Carmichael *) (7919, true); (1073741789, true); (1073741790, false);
      ((1 lsl 31) - 1, true) (* Mersenne prime 2^31-1 *);
    ]

let test_ntt_prime_gen () =
  let n = 1024 in
  let primes = Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count:5 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "prime" true (Modarith.is_prime p);
      Alcotest.(check int) "ntt friendly" 1 (p mod (2 * n));
      Alcotest.(check bool) "30 bits" true (p < 1 lsl 30))
    primes;
  (* distinct and descending *)
  for i = 1 to 4 do
    Alcotest.(check bool) "descending" true (primes.(i) < primes.(i - 1))
  done

let test_primitive_root () =
  let p = 7681 in
  let g = Modarith.primitive_root p in
  (* order of g must be exactly p-1 *)
  Alcotest.(check int) "g^(p-1)" 1 (Modarith.pow_mod g (p - 1) p);
  List.iter
    (fun q -> Alcotest.(check bool) "proper subgroup" true (Modarith.pow_mod g ((p - 1) / q) p <> 1))
    [ 2; 3; 5 ]

let test_root_of_unity () =
  let p = 7681 in
  let w = Modarith.root_of_unity ~order:512 p in
  Alcotest.(check int) "w^512" 1 (Modarith.pow_mod w 512 p);
  Alcotest.(check bool) "w^256 <> 1" true (Modarith.pow_mod w 256 p <> 1)

let test_inv_mod () =
  let p = 1073741789 in
  for a = 1 to 50 do
    let inv = Modarith.inv_mod a p in
    Alcotest.(check int) "a * inv" 1 (Modarith.mul_mod a inv p)
  done;
  Alcotest.check_raises "non invertible" (Invalid_argument "Modarith.inv_mod: not invertible")
    (fun () -> ignore (Modarith.inv_mod 6 9))

(* ------------------------------------------------------------------ *)
(* NTT                                                                 *)
(* ------------------------------------------------------------------ *)

let ntt_n = 64
let ntt_prime = Modarith.gen_ntt_prime ~bits:30 ~modulus_of:(2 * ntt_n) ~below:(1 lsl 30)
let ntt_tbl = Ntt.make_table ~n:ntt_n ~prime:ntt_prime

let naive_negacyclic a b p =
  let n = Array.length a in
  let r = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let prod = Modarith.mul_mod a.(i) b.(j) p in
      let k = i + j in
      if k < n then r.(k) <- Modarith.add_mod r.(k) prod p
      else r.(k - n) <- Modarith.sub_mod r.(k - n) prod p
    done
  done;
  r

let test_ntt_roundtrip () =
  let rng = Random.State.make [| 7 |] in
  let a = Array.init ntt_n (fun _ -> Random.State.int rng ntt_prime) in
  let b = Array.copy a in
  Ntt.forward ntt_tbl b;
  Alcotest.(check bool) "transform changes data" true (a <> b);
  Ntt.inverse ntt_tbl b;
  Alcotest.(check (array int)) "roundtrip" a b

let test_ntt_mul_matches_naive () =
  let rng = Random.State.make [| 8 |] in
  for _ = 1 to 5 do
    let a = Array.init ntt_n (fun _ -> Random.State.int rng ntt_prime) in
    let b = Array.init ntt_n (fun _ -> Random.State.int rng ntt_prime) in
    Alcotest.(check (array int)) "negacyclic" (naive_negacyclic a b ntt_prime) (Ntt.negacyclic_mul ntt_tbl a b)
  done

let test_ntt_x_times_x () =
  (* X^(n-1) * X = X^n = -1 in the negacyclic ring *)
  let x k = Array.init ntt_n (fun i -> if i = k then 1 else 0) in
  let r = Ntt.negacyclic_mul ntt_tbl (x (ntt_n - 1)) (x 1) in
  let expected = Array.make ntt_n 0 in
  expected.(0) <- ntt_prime - 1;
  Alcotest.(check (array int)) "wraps negatively" expected r

(* ------------------------------------------------------------------ *)
(* FFT / Encoding                                                      *)
(* ------------------------------------------------------------------ *)

let test_fft_roundtrip () =
  let rng = Random.State.make [| 9 |] in
  let n = 128 in
  let re = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let im = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let re' = Array.copy re and im' = Array.copy im in
  Fft.forward ~re:re' ~im:im';
  Fft.inverse ~re:re' ~im:im';
  Array.iteri (fun i v -> Alcotest.(check (float 1e-9)) "re" v re'.(i)) re;
  Array.iteri (fun i v -> Alcotest.(check (float 1e-9)) "im" v im'.(i)) im

let test_fft_delta () =
  (* FFT of delta at 0 is constant 1 *)
  let n = 16 in
  let re = Array.make n 0.0 and im = Array.make n 0.0 in
  re.(0) <- 1.0;
  Fft.forward ~re ~im;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "flat" 1.0 v) re;
  Array.iter (fun v -> Alcotest.(check (float 1e-12)) "no imag" 0.0 v) im

let test_encoding_roundtrip () =
  let ctx = Encoding.make ~n:64 in
  let slots = Encoding.slots ctx in
  let rng = Random.State.make [| 10 |] in
  let zre = Array.init slots (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let zim = Array.init slots (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let scale = 1048576.0 in
  let coeffs = Encoding.encode ctx ~scale ~re:zre ~im:zim in
  (* coefficients are real by construction; round and decode *)
  let rounded = Array.map Float.round coeffs in
  let re', im' = Encoding.decode ctx ~scale rounded in
  Array.iteri (fun i v -> Alcotest.(check (float 1e-4)) "re" v re'.(i)) zre;
  Array.iteri (fun i v -> Alcotest.(check (float 1e-4)) "im" v im'.(i)) zim

let test_encoding_constant () =
  (* the constant polynomial c has every slot equal to c *)
  let ctx = Encoding.make ~n:32 in
  let coeffs = Array.make 32 0.0 in
  coeffs.(0) <- 42.0;
  let re, im = Encoding.decode ctx ~scale:1.0 coeffs in
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "const re" 42.0 v) re;
  Array.iter (fun v -> Alcotest.(check (float 1e-9)) "const im" 0.0 v) im

let test_encoding_rotation_automorphism () =
  (* applying X -> X^(5^r) to the coefficients rotates slots left by r *)
  let n = 64 in
  let ctx = Encoding.make ~n in
  let slots = Encoding.slots ctx in
  let rng = Random.State.make [| 11 |] in
  let zre = Array.init slots (fun _ -> Random.State.float rng 2.0 -. 1.0) in
  let zim = Array.make slots 0.0 in
  let scale = 4194304.0 in
  let coeffs = Array.map Float.round (Encoding.encode ctx ~scale ~re:zre ~im:zim) in
  let r = 3 in
  let g = Encoding.galois_element ctx r in
  let index = Encoding.automorphism_index ~n ~g in
  let rotated = Array.make n 0.0 in
  Array.iteri
    (fun k c ->
      let k', negate = index.(k) in
      rotated.(k') <- (if negate then -.c else c))
    coeffs;
  let re', _ = Encoding.decode ctx ~scale rotated in
  for j = 0 to slots - 1 do
    Alcotest.(check (float 1e-4)) (Printf.sprintf "slot %d" j) zre.((j + r) mod slots) re'.(j)
  done

let test_galois_element () =
  let ctx = Encoding.make ~n:16 in
  Alcotest.(check int) "r=0" 1 (Encoding.galois_element ctx 0);
  Alcotest.(check int) "r=1" 5 (Encoding.galois_element ctx 1);
  Alcotest.(check int) "r=2" 25 (Encoding.galois_element ctx 2);
  Alcotest.(check int) "r=-1 = r=slots-1" (Encoding.galois_element ctx 7) (Encoding.galois_element ctx (-1));
  Alcotest.(check int) "conj" 31 (Encoding.conj_element ctx)

(* ------------------------------------------------------------------ *)
(* Security tables                                                     *)
(* ------------------------------------------------------------------ *)

let test_security_table () =
  Alcotest.(check int) "8192@128" 218 (Security.max_log_q Security.Bits128 8192);
  Alcotest.(check int) "32768@128" 881 (Security.max_log_q Security.Bits128 32768);
  Alcotest.(check int) "16384@192" 305 (Security.max_log_q Security.Bits192 16384);
  Alcotest.(check int) "min dim 200" 8192 (Security.min_ring_dim Security.Bits128 ~log_q:200);
  Alcotest.(check int) "min dim 240" 16384 (Security.min_ring_dim Security.Bits128 ~log_q:240);
  Alcotest.(check int) "min dim 705" 32768 (Security.min_ring_dim Security.Bits128 ~log_q:705);
  (* the paper's SqueezeNet point: logQ=940 fits N=32768 only under the
     legacy HEAAN parameterisation *)
  Alcotest.(check int) "std 940 -> 65536" 65536 (Security.min_ring_dim Security.Bits128 ~log_q:940);
  Alcotest.(check int) "legacy 940 -> 32768" 32768 (Security.min_ring_dim_legacy ~log_q:940)

(* ------------------------------------------------------------------ *)
(* Property tests                                                      *)
(* ------------------------------------------------------------------ *)

let props =
  [
    prop "mod exp matches naive" 200
      (fun (b, e) -> Printf.sprintf "%d^%d" b e)
      QCheck2.Gen.(pair (int_bound 10000) (int_bound 30))
      (fun (b, e) ->
        let p = 1073741789 in
        let rec naive acc k = if k = 0 then acc else naive (Modarith.mul_mod acc b p) (k - 1) in
        Modarith.pow_mod b e p = naive 1 e);
    prop "ntt linear" 50
      (fun _ -> "seed")
      QCheck2.Gen.(int_bound 1000000)
      (fun seed ->
        let rng = Random.State.make [| seed |] in
        let a = Array.init ntt_n (fun _ -> Random.State.int rng ntt_prime) in
        let b = Array.init ntt_n (fun _ -> Random.State.int rng ntt_prime) in
        let fa = Array.copy a and fb = Array.copy b in
        Ntt.forward ntt_tbl fa;
        Ntt.forward ntt_tbl fb;
        let sum = Array.init ntt_n (fun i -> Modarith.add_mod a.(i) b.(i) ntt_prime) in
        Ntt.forward ntt_tbl sum;
        sum = Array.init ntt_n (fun i -> Modarith.add_mod fa.(i) fb.(i) ntt_prime));
    prop "encode/decode within tolerance" 30
      (fun _ -> "seed")
      QCheck2.Gen.(int_bound 1000000)
      (fun seed ->
        let ctx = Encoding.make ~n:32 in
        let rng = Random.State.make [| seed |] in
        let z = Array.init 16 (fun _ -> Random.State.float rng 20.0 -. 10.0) in
        let coeffs = Array.map Float.round (Encoding.encode ctx ~scale:1048576.0 ~re:z ~im:(Array.make 16 0.0)) in
        let re, _ = Encoding.decode ctx ~scale:1048576.0 coeffs in
        Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-3) z re);
  ]

let unit_tests =
  [
    Alcotest.test_case "is_prime" `Quick test_is_prime;
    Alcotest.test_case "ntt prime generation" `Quick test_ntt_prime_gen;
    Alcotest.test_case "primitive root" `Quick test_primitive_root;
    Alcotest.test_case "root of unity" `Quick test_root_of_unity;
    Alcotest.test_case "inv_mod" `Quick test_inv_mod;
    Alcotest.test_case "ntt roundtrip" `Quick test_ntt_roundtrip;
    Alcotest.test_case "ntt mul = naive negacyclic" `Quick test_ntt_mul_matches_naive;
    Alcotest.test_case "ntt X^n = -1" `Quick test_ntt_x_times_x;
    Alcotest.test_case "fft roundtrip" `Quick test_fft_roundtrip;
    Alcotest.test_case "fft delta" `Quick test_fft_delta;
    Alcotest.test_case "encoding roundtrip" `Quick test_encoding_roundtrip;
    Alcotest.test_case "encoding constant" `Quick test_encoding_constant;
    Alcotest.test_case "encoding rotation automorphism" `Quick test_encoding_rotation_automorphism;
    Alcotest.test_case "galois elements" `Quick test_galois_element;
    Alcotest.test_case "security table" `Quick test_security_table;
  ]

let suite = [ ("crypto:unit", unit_tests); ("crypto:props", props) ]
