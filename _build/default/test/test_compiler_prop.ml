(* Property-style tests of compiler invariants: parameter selection must be
   monotone in circuit depth and scale sizes, always security-table
   compliant, and rotation-key selection must be sound (every rotation the
   runtime performs has a selected key) and minimal (no unused keys). *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Security = Chet_crypto.Security
module Instrument = Chet_hisa.Instrument

let seal = Compiler.default_options ~target:Compiler.Seal ()
let heaan = Compiler.default_options ~target:Compiler.Heaan ()

let chain_circuit depth =
  let b = Circuit.builder () in
  let x = ref (Circuit.input b ~name:"x" [| 1; 8; 8 |]) in
  for _ = 1 to depth do
    x := Circuit.square b !x
  done;
  Circuit.finish b ~name:(Printf.sprintf "chain-%d" depth) ~output:!x

let test_params_monotone_in_depth () =
  List.iter
    (fun opts ->
      let prev = ref 0 in
      List.iter
        (fun depth ->
          let p = Compiler.select_params opts (chain_circuit depth) ~policy:Executor.All_hw in
          let logq = Compiler.params_log_q p in
          if logq < !prev then
            Alcotest.failf "logQ decreased with depth (%d -> %d at depth %d)" !prev logq depth;
          prev := logq)
        [ 1; 2; 4; 6; 8 ])
    [ seal; heaan ]

let test_params_monotone_in_scales () =
  (* doubling the working scale cannot shrink the selected modulus *)
  let circuit = chain_circuit 4 in
  let logq_at pc =
    let scales = { Kernels.default_scales with Kernels.pc } in
    Compiler.params_log_q
      (Compiler.select_params { seal with Compiler.scales } circuit ~policy:Executor.All_hw)
  in
  Alcotest.(check bool) "2^34 >= 2^30" true (logq_at (1 lsl 34) >= logq_at (1 lsl 30))

let test_security_invariant () =
  (* whatever the compiler selects must satisfy the security table it was
     asked to respect *)
  List.iter
    (fun spec ->
      let p =
        Compiler.select_params seal (spec.Models.build ()) ~policy:Executor.All_chw
      in
      let n = Compiler.params_n p and logq = Compiler.params_log_q p in
      Alcotest.(check bool)
        (spec.Models.model_name ^ " secure")
        true
        (logq <= Security.max_log_q Security.Bits128 n))
    [ Models.micro; Models.lenet5_small; Models.cryptonets ]

let test_rotation_keys_sound_and_minimal () =
  (* run the circuit and compare the rotations actually performed against the
     selected key set: equal as sets *)
  let circuit = Models.lenet5_small.Models.build () in
  List.iter
    (fun policy ->
      let params = Compiler.select_params seal circuit ~policy in
      let rotations, counters = Compiler.select_rotations seal circuit ~policy ~params in
      let selected = List.map fst rotations in
      let used = Instrument.distinct_rotations counters in
      let sort = List.sort compare in
      Alcotest.(check (list int))
        (Executor.policy_name policy)
        (sort used) (sort selected))
    Executor.all_policies

let test_rotation_keys_count_logarithmic () =
  (* §5.4: the selected keys are "a constant factor of log(N) in every
     case" — assert they stay well below the default 2·log2(N/2) x constant *)
  List.iter
    (fun spec ->
      let circuit = spec.Models.build () in
      let params = Compiler.select_params seal circuit ~policy:Executor.All_chw in
      let rotations, _ = Compiler.select_rotations seal circuit ~policy:Executor.All_chw ~params in
      let n = Compiler.params_n params in
      let log_n = int_of_float (Float.round (log (float_of_int n) /. log 2.0)) in
      let bound = 8 * log_n in
      if List.length rotations > bound then
        Alcotest.failf "%s: %d keys > %d (8 log N)" spec.Models.model_name
          (List.length rotations) bound)
    [ Models.micro; Models.lenet5_small; Models.cryptonets ]

let test_estimated_cost_monotone_in_n () =
  (* same circuit, larger ring: strictly more expensive *)
  let circuit = Models.micro.Models.build () in
  let params n =
    Compiler.Rns_params { n; prime_bits = 30; num_primes = 8; log_q = 270 }
  in
  let c1 = Compiler.estimate_cost seal circuit ~policy:Executor.All_hw ~params:(params 8192) in
  let c2 = Compiler.estimate_cost seal circuit ~policy:Executor.All_hw ~params:(params 16384) in
  Alcotest.(check bool) "monotone" true (c2 > c1)

let test_compilation_failure_reported () =
  (* an impossibly deep circuit must fail with the dedicated exception, not
     an obscure crash *)
  let circuit = chain_circuit 80 in
  Alcotest.(check bool) "raises Compilation_failure" true
    (try
       ignore (Compiler.compile seal circuit);
       false
     with Compiler.Compilation_failure _ -> true)

let test_cryptonets_compiles () =
  let compiled = Compiler.compile seal (Models.cryptonets.Models.build ()) in
  Alcotest.(check bool) "reasonable params" true
    (Compiler.params_n compiled.Compiler.params <= 32768)

let suite =
  [
    ( "compiler:props",
      [
        Alcotest.test_case "logQ monotone in depth" `Slow test_params_monotone_in_depth;
        Alcotest.test_case "logQ monotone in scales" `Quick test_params_monotone_in_scales;
        Alcotest.test_case "security invariant" `Slow test_security_invariant;
        Alcotest.test_case "rotation keys = used rotations" `Slow test_rotation_keys_sound_and_minimal;
        Alcotest.test_case "rotation keys O(log N)" `Slow test_rotation_keys_count_logarithmic;
        Alcotest.test_case "cost monotone in N" `Quick test_estimated_cost_monotone_in_n;
        Alcotest.test_case "compilation failure reported" `Quick test_compilation_failure_reported;
        Alcotest.test_case "CryptoNets compiles" `Slow test_cryptonets_compiles;
      ] );
  ]
