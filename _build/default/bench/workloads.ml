(* Workload plumbing shared by the table/figure reproductions: compilation
   and simulation-run caching, and latency under either rotation-key
   configuration (computed from one cached run). *)

module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Sim = Chet_hisa.Sim_backend
module Instrument = Chet_hisa.Instrument
module Hisa = Chet_hisa.Hisa

let opts_for target = Compiler.default_options ~target ()

let compile_cache : (string * Compiler.target, Compiler.compiled) Hashtbl.t = Hashtbl.create 16

let compiled_for target (spec : Models.spec) =
  match Hashtbl.find_opt compile_cache (spec.Models.model_name, target) with
  | Some c -> c
  | None ->
      let c = Compiler.compile (opts_for target) (spec.Models.build ()) in
      Hashtbl.add compile_cache (spec.Models.model_name, target) c;
      c

type key_config = Selected | Pow2_only
type cost_kind = Calibrated | Theory  (** measured constants vs raw Table-1 asymptotics *)

type sim_run = {
  base_latency : float;
  rotate_elapsed : float;
  rotate_count : int;
  slots : int;
  counters : Instrument.counters;
}

let run_cache : (string * Compiler.target * Executor.layout_policy * cost_kind, sim_run) Hashtbl.t =
  Hashtbl.create 64

let costs_for kind target =
  match (kind, target) with
  | Calibrated, Compiler.Seal -> Cost_model.seal ()
  | Calibrated, Compiler.Heaan -> Cost_model.heaan ()
  | Theory, Compiler.Seal -> Hisa.rns_cost_model ()
  | Theory, Compiler.Heaan -> Hisa.ckks_cost_model ()

(* One simulated inference under [policy] with the given parameters. *)
let sim_run ?(kind = Calibrated) target (spec : Models.spec) ~policy ~params =
  let key = (spec.Models.model_name, target, policy, kind) in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let opts = opts_for target in
      let circuit = spec.Models.build () in
      let sim, clock =
        Sim.make
          {
            Sim.n = Compiler.params_n params;
            scheme = Compiler.scheme_of_params opts params;
            costs = costs_for kind target;
          }
      in
      let backend, counters = Instrument.wrap sim in
      let module H = (val backend : Hisa.S) in
      let module E = Executor.Make (H) in
      let image = Models.input_for spec ~seed:1 in
      ignore (E.run opts.Compiler.scales circuit ~policy image);
      let r =
        {
          base_latency = clock.Sim.elapsed;
          rotate_elapsed = clock.Sim.rotate_elapsed;
          rotate_count = clock.Sim.rotate_count;
          slots = Compiler.params_n params / 2;
          counters;
        }
      in
      Hashtbl.add run_cache key r;
      r

(* Latency under a rotation-key configuration. Under [Pow2_only] every
   rotation is charged its power-of-two decomposition length (§2.4's default
   behaviour) at this run's average rotation cost. *)
let latency run ~keys =
  match keys with
  | Selected -> run.base_latency
  | Pow2_only ->
      if run.rotate_count = 0 then run.base_latency
      else begin
        let decomposed =
          Hashtbl.fold
            (fun amount uses acc ->
              acc + (uses * Bench_util.pow2_rotation_count ~slots:run.slots amount))
            run.counters.Instrument.rotation_counts 0
        in
        let avg_rot = run.rotate_elapsed /. float_of_int run.rotate_count in
        run.base_latency +. (float_of_int (decomposed - run.rotate_count) *. avg_rot)
      end

let sim_latency ?(keys = Selected) ?kind target spec ~policy ~params =
  latency (sim_run ?kind target spec ~policy ~params) ~keys

let best_policy_run ?kind target spec =
  let compiled = compiled_for target spec in
  sim_run ?kind target spec ~policy:compiled.Compiler.policy ~params:compiled.Compiler.params

let best_policy_latency ?(keys = Selected) target spec = latency (best_policy_run target spec) ~keys

(* The "Manual-HEAAN" baseline of Figure 5: an expert's typical hand-written
   starting point — HW layout everywhere (as in the paper's hand-written
   LeNet baselines), scheme-default power-of-two rotation keys, and HEAAN
   parameters selected for that layout. *)
let manual_heaan_latency spec =
  let opts = opts_for Compiler.Heaan in
  let params = Compiler.select_params opts (spec.Models.build ()) ~policy:Executor.All_hw in
  latency (sim_run Compiler.Heaan spec ~policy:Executor.All_hw ~params) ~keys:Pow2_only
