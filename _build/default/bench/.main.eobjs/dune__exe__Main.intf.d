bench/main.mli:
