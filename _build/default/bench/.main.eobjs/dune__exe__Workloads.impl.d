bench/workloads.ml: Bench_util Chet Chet_hisa Chet_nn Chet_runtime Hashtbl
