bench/main.ml: Array Bench_util Chet Chet_crypto Chet_hisa Chet_nn Chet_runtime Chet_tensor Float Format Gc List Printf Sys Unix Workloads
