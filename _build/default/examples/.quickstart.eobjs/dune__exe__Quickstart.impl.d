examples/quickstart.ml: Array Chet Chet_crypto Chet_hisa Chet_nn Chet_runtime Chet_tensor Format Printf Unix
