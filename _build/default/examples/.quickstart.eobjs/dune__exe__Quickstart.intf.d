examples/quickstart.mli:
