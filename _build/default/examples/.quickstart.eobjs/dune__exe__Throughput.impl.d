examples/throughput.ml: Chet Chet_hisa Chet_nn Chet_runtime Chet_tensor Printf Unix
