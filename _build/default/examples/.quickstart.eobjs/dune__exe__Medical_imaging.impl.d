examples/medical_imaging.ml: Array Chet Chet_hisa Chet_nn Chet_runtime Chet_tensor Format Printf
