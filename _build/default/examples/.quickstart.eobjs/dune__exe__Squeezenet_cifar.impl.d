examples/squeezenet_cifar.ml: Chet Chet_hisa Chet_nn Chet_runtime Chet_tensor Format List Printf
