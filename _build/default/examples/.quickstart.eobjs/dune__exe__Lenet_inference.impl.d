examples/lenet_inference.ml: Array Chet Chet_hisa Chet_nn Chet_runtime Chet_tensor Format List Printf Sys Unix
