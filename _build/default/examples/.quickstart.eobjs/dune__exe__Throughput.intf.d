examples/throughput.mli:
