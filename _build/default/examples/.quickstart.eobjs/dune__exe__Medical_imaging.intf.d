examples/medical_imaging.mli:
