examples/dsl_circuit.ml: Array Chet Chet_dsl Chet_hisa Chet_nn Chet_runtime Chet_tensor Filename Format Printf Sys
