examples/dsl_circuit.mli:
