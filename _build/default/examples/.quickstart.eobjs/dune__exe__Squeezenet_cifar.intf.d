examples/squeezenet_cifar.mli:
