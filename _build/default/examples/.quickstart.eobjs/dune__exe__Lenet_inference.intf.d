examples/lenet_inference.mli:
