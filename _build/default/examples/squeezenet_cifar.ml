(* SqueezeNet-CIFAR — the deepest network the paper evaluates ("to the best
   of our knowledge, the deepest neural network to be homomorphically
   evaluated", §6). This example shows the full compile → simulate pipeline
   at that scale: per-layout parameter/cost exploration, the chosen
   configuration, and a simulated encrypted inference with latency and HISA
   operation statistics.

   Run with: dune exec examples/squeezenet_cifar.exe *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module Circuit = Chet_nn.Circuit
module Opcount = Chet_nn.Opcount
module Sim = Chet_hisa.Sim_backend
module Instrument = Chet_hisa.Instrument
module Hisa = Chet_hisa.Hisa
module T = Chet_tensor.Tensor

let () =
  let spec = Models.squeezenet_cifar in
  let circuit = spec.Models.build () in
  let conv, fc, act = Circuit.layer_counts circuit in
  Printf.printf "Network: %s (%d conv, %d fc, %d act layers; %d FP ops; depth %d)\n\n"
    spec.Models.model_name conv fc act (Opcount.count circuit).Opcount.total
    (Circuit.multiplicative_depth circuit);

  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  Format.printf "%a@." Compiler.pp_compiled compiled;

  (* simulated encrypted inference with instrumented HISA stream *)
  let sim, clock =
    Sim.make_with_values
      {
        Sim.n = Compiler.params_n compiled.Compiler.params;
        scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
        costs = Chet.Cost_model.seal ();
      }
  in
  let backend, counters = Instrument.wrap sim in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let image = Models.input_for spec ~seed:99 in
  let got = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image in
  let expected = Reference.eval circuit image in
  Printf.printf "simulated latency: %.1f s\n" clock.Sim.elapsed;
  Printf.printf "HISA ops: %d rotations (%d distinct), %d ct-muls, %d plain-muls, %d scalar-muls, %d adds\n"
    (Instrument.total_rotations counters)
    (List.length (Instrument.distinct_rotations counters))
    counters.Instrument.ct_muls counters.Instrument.plain_muls counters.Instrument.scalar_muls
    counters.Instrument.adds;
  Printf.printf "class (encrypted sim) = %d, (cleartext) = %d, max |err| = %.5f\n" (T.argmax got)
    (T.argmax expected)
    (T.max_abs_diff (T.flatten expected) (T.flatten got))
