(* Quickstart: the smallest useful tour of the library.

   1. Drive the HISA directly over real RNS-CKKS: encrypt a vector, rotate,
      multiply, decrypt (the Figure 1 flavour of SIMD FHE programming).
   2. Let the CHET compiler handle a real (tiny) network end-to-end:
      parameter selection, layout selection, rotation keys, encrypted
      inference — and compare against the cleartext reference.

   Run with: dune exec examples/quickstart.exe *)

module C = Chet_crypto.Rns_ckks
module Sampling = Chet_crypto.Sampling
module Hisa = Chet_hisa.Hisa
module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module T = Chet_tensor.Tensor

let part1_hisa () =
  print_endline "== Part 1: the HISA over real RNS-CKKS ==";
  let params = C.default_params ~n:2048 ~bits:30 ~num_coeff_primes:4 () in
  let ctx = C.make_context params in
  let rng = Sampling.create ~seed:42 in
  let sk, keys = C.keygen ctx rng in
  C.add_rotation_key ctx rng sk keys 1;
  let backend =
    Chet_hisa.Seal_backend.make { Chet_hisa.Seal_backend.ctx; rng; keys; secret = Some sk }
  in
  let module H = (val backend : Hisa.S) in
  (* a, b live in the first 4 slots of a 1024-wide SIMD vector *)
  let a = H.encrypt (H.encode [| 1.0; 2.0; 3.0; 4.0 |] ~scale:(1 lsl 30)) in
  let b = H.encrypt (H.encode [| 10.0; 20.0; 30.0; 40.0 |] ~scale:(1 lsl 30)) in
  let product = H.mul a b in
  let rotated = H.rot_left product 1 in
  let result = H.decode (H.decrypt rotated) in
  Printf.printf "   (a*b) <<1  = [%.2f; %.2f; %.2f; ...] (expect [40; 90; 160])\n" result.(0)
    result.(1) result.(2)

let part2_compiler () =
  print_endline "== Part 2: compiling and running a network homomorphically ==";
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  Format.printf "%a@." Compiler.pp_compiled compiled;
  let backend = Compiler.instantiate compiled ~seed:7 ~with_secret:true () in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let image = Models.input_for spec ~seed:1 in
  let t0 = Unix.gettimeofday () in
  let encrypted_result = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image in
  let dt = Unix.gettimeofday () -. t0 in
  let reference = Reference.eval circuit image in
  Printf.printf "   encrypted inference: %.2f s, max |err| vs cleartext = %.6f\n" dt
    (T.max_abs_diff (T.flatten reference) (T.flatten encrypted_result));
  Printf.printf "   predicted class (encrypted) = %d, (cleartext) = %d\n"
    (T.argmax encrypted_result) (T.argmax reference)

let () =
  part1_hisa ();
  part2_compiler ()
