(* Compile and simulate a circuit written in the textual format — the
   workflow of Figure 2 with the circuit coming from a file instead of the
   OCaml builder API.

   Run with: dune exec examples/dsl_circuit.exe [-- path/to/circuit.chet] *)

module Parser = Chet_dsl.Parser
module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Reference = Chet_nn.Reference
module Circuit = Chet_nn.Circuit
module Dataset = Chet_tensor.Dataset
module Sim = Chet_hisa.Sim_backend
module Hisa = Chet_hisa.Hisa
module T = Chet_tensor.Tensor

let default_path = "examples/circuits/mnist_cnn.chet"

let () =
  let path = if Array.length Sys.argv > 1 then Sys.argv.(1) else default_path in
  let path = if Sys.file_exists path then path else Filename.concat (Sys.getcwd ()) path in
  let circuit =
    try Parser.parse_file path
    with Parser.Parse_error (msg, line, col) ->
      Printf.eprintf "%s:%d:%d: %s\n" path line col msg;
      exit 1
  in
  Printf.printf "parsed %s (%d nodes)\n" circuit.Circuit.name circuit.Circuit.node_count;
  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  Format.printf "%a@." Compiler.pp_compiled compiled;
  let backend, clock =
    Sim.make_with_values
      {
        Sim.n = Compiler.params_n compiled.Compiler.params;
        scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
        costs = Chet.Cost_model.seal ();
      }
  in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let shape = circuit.Circuit.input.Circuit.shape in
  let image = Dataset.image ~seed:5 ~channels:shape.(0) ~height:shape.(1) ~width:shape.(2) in
  let got = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image in
  let expected = Reference.eval circuit image in
  Printf.printf "simulated latency %.1f s; class=%d (clear %d); max |err|=%.5f\n" clock.Sim.elapsed
    (T.argmax got) (T.argmax expected)
    (T.max_abs_diff (T.flatten expected) (T.flatten got))
