(* The paper's motivating scenario (§1, §6): a hospital offloads inference on
   privacy-sensitive scans to an untrusted cloud. This example plays both
   sides of Figure 3 explicitly:

   - the CLIENT compiles the circuit, generates keys, encrypts a scan, and
     later decrypts the prediction;
   - the SERVER holds only public material (no secret key — calling
     [decrypt] there fails) and evaluates the Industrial network
     homomorphically under the simulation backend, which also reports the
     latency the cost-calibrated clock predicts.

   Run with: dune exec examples/medical_imaging.exe
   (the simulated evaluation carries real values at N=32768, so expect a few
   minutes of wall-clock for the full Industrial network) *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module Sim = Chet_hisa.Sim_backend
module Hisa = Chet_hisa.Hisa
module T = Chet_tensor.Tensor

let () =
  let spec = Models.industrial in
  let circuit = spec.Models.build () in
  Printf.printf "Network: %s — %s\n\n" spec.Models.model_name spec.Models.description;

  (* client side: compile against the SEAL-style target *)
  let opts = Compiler.default_options ~target:Compiler.Seal () in
  let compiled = Compiler.compile opts circuit in
  Format.printf "%a@." Compiler.pp_compiled compiled;

  (* server side: simulated evaluation with the calibrated clock *)
  let backend, clock =
    Sim.make_with_values
      {
        Sim.n = Compiler.params_n compiled.Compiler.params;
        scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
        costs = Chet.Cost_model.seal ();
      }
  in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let scan = Models.input_for spec ~seed:2024 in
  let prediction = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy scan in
  let reference = Reference.eval circuit scan in
  Printf.printf "simulated server latency: %.1f s over %d HISA ops\n" clock.Sim.elapsed
    clock.Sim.op_count;
  Printf.printf "diagnosis scores (encrypted): [%.4f; %.4f]  (cleartext: [%.4f; %.4f])\n"
    prediction.T.data.(0) prediction.T.data.(1) reference.T.data.(0) reference.T.data.(1);
  Printf.printf "max |err| = %.6f\n" (T.max_abs_diff (T.flatten reference) (T.flatten prediction));

  (* demonstrate that the server genuinely cannot decrypt: a backend built
     without the secret key refuses *)
  let server_only = Compiler.instantiate compiled ~seed:1 ~with_secret:false () in
  let module S = (val server_only : Hisa.S) in
  let ct = S.encrypt (S.encode [| 1.0 |] ~scale:opts.Compiler.scales.Kernels.pc) in
  (try
     ignore (S.decrypt ct);
     print_endline "BUG: server decrypted!"
   with Failure msg -> Printf.printf "server decrypt attempt: refused (%s)\n" msg)
