(* LeNet-5 on encrypted MNIST-shaped images — the paper's introductory
   workload. Compiles LeNet-5-small for both targets, prints the compiler's
   choices per layout (the §6 exploration), then runs an encrypted inference
   on the real RNS-CKKS backend and checks fidelity against cleartext.

   Run with: dune exec examples/lenet_inference.exe [-- --real] *)

module Compiler = Chet.Compiler
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Reference = Chet_nn.Reference
module Opcount = Chet_nn.Opcount
module T = Chet_tensor.Tensor
module Hisa = Chet_hisa.Hisa

let () =
  let run_real = Array.exists (( = ) "--real") Sys.argv in
  let spec = Models.lenet5_small in
  let circuit = spec.Models.build () in
  let ops = Opcount.count circuit in
  Printf.printf "Network: %s — %s\n" spec.Models.model_name spec.Models.description;
  Printf.printf "FP operations: %d (%d multiplies, %d additions)\n\n" ops.Opcount.total
    ops.Opcount.multiplies ops.Opcount.additions;
  List.iter
    (fun target ->
      let opts = Compiler.default_options ~target () in
      let compiled = Compiler.compile opts circuit in
      Format.printf "%a@." Compiler.pp_compiled compiled)
    [ Compiler.Seal; Compiler.Heaan ];
  if run_real then begin
    print_endline "Running one encrypted inference on the real RNS-CKKS backend…";
    let opts = Compiler.default_options ~target:Compiler.Seal () in
    let compiled = Compiler.compile opts circuit in
    let backend = Compiler.instantiate compiled ~seed:11 ~with_secret:true () in
    let module H = (val backend : Hisa.S) in
    let module E = Executor.Make (H) in
    let image = Models.input_for spec ~seed:3 in
    let t0 = Unix.gettimeofday () in
    let got = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image in
    Printf.printf "latency: %.1f s; max |err| = %.5f; class enc=%d clear=%d\n"
      (Unix.gettimeofday () -. t0)
      (T.max_abs_diff (T.flatten (Reference.eval circuit image)) (T.flatten got))
      (T.argmax got)
      (T.argmax (Reference.eval circuit image))
  end
  else print_endline "(pass --real to also run a full encrypted inference — takes minutes)"
