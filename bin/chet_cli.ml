(* Command-line driver: compile, inspect and run the bundled networks.

     chet models
     chet compile  LeNet-5-small  --target seal
     chet run      micro          --target seal  --real
     chet run      SqueezeNet-CIFAR               (simulated)
     chet scales   micro          --tolerance 0.05
*)

module Compiler = Chet.Compiler
module Scale_select = Chet.Scale_select
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Opcount = Chet_nn.Opcount
module Reference = Chet_nn.Reference
module Sim = Chet_hisa.Sim_backend
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module T = Chet_tensor.Tensor
open Cmdliner

let model_arg =
  let doc = "Network name (see `chet models')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let target_arg =
  let doc = "Target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)." in
  Arg.(value & opt (enum [ ("seal", Compiler.Seal); ("heaan", Compiler.Heaan) ]) Compiler.Seal
       & info [ "target" ] ~doc)

let security_arg =
  let doc = "Security level: 128, 192, 256 (HE-standard) or legacy (HEAAN v1.0 presets)." in
  Arg.(value & opt (enum [
      ("128", Compiler.Standard Chet_crypto.Security.Bits128);
      ("192", Compiler.Standard Chet_crypto.Security.Bits192);
      ("256", Compiler.Standard Chet_crypto.Security.Bits256);
      ("legacy", Compiler.Legacy_heaan);
    ]) (Compiler.Standard Chet_crypto.Security.Bits128)
    & info [ "security" ] ~doc)

let lookup_model name =
  try Models.find name
  with Not_found ->
    Printf.eprintf "unknown model %s; try `chet models'\n" name;
    exit 1

let models_cmd =
  let run () =
    List.iter
      (fun spec ->
        let circuit = spec.Models.build () in
        let conv, fc, act = Circuit.layer_counts circuit in
        Printf.printf "%-18s %2d conv  %d fc  %d act  %9d FP ops  %s\n" spec.Models.model_name conv
          fc act (Opcount.count circuit).Opcount.total spec.Models.description)
      (Models.micro :: Models.cryptonets :: Models.all)
  in
  Cmd.v (Cmd.info "models" ~doc:"List bundled networks") Term.(const run $ const ())

let compile_cmd =
  let run model target security =
    let spec = lookup_model model in
    let opts = { (Compiler.default_options ~target ()) with Compiler.security } in
    let compiled = Compiler.compile opts (spec.Models.build ()) in
    Format.printf "%a@." Compiler.pp_compiled compiled
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a network and report the chosen configuration")
    Term.(const run $ model_arg $ target_arg $ security_arg)

let run_cmd =
  let real_arg =
    Arg.(value & flag & info [ "real" ] ~doc:"Run on the real scheme (slow) instead of the simulator.")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "With --real: validate every homomorphic op's pre/postconditions at runtime \
             (scales, levels, rescale legality, NaN screening); corruption surfaces as a \
             typed FHE error instead of a garbage prediction.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Synthetic image seed.") in
  let run model target real checked seed =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = Compiler.default_options ~target () in
    let compiled = Compiler.compile opts circuit in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    let image = Models.input_for spec ~seed in
    let expected = Reference.eval circuit image in
    let run_with (backend : Hisa.t) =
      let module H = (val backend) in
      let module E = Executor.Make (H) in
      E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image
    in
    let got, latency =
      if real then begin
        let backend =
          if checked then Compiler.instantiate_checked compiled ~seed:42 ~with_secret:true ()
          else Compiler.instantiate compiled ~seed:42 ~with_secret:true ()
        in
        let t0 = Unix.gettimeofday () in
        let r = run_with backend in
        (r, Unix.gettimeofday () -. t0)
      end
      else begin
        let backend, clock =
          Sim.make_with_values
            {
              Sim.n = Compiler.params_n compiled.Compiler.params;
              scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
              costs =
                (match target with
                | Compiler.Seal -> Chet.Cost_model.seal ()
                | Compiler.Heaan -> Chet.Cost_model.heaan ());
            }
        in
        (run_with backend, clock.Sim.elapsed)
      end
    in
    Printf.printf "%s latency: %.2f s; class=%d (clear %d); max |err|=%.5f\n"
      (if real then "measured" else "simulated")
      latency (T.argmax got) (T.argmax expected)
      (T.max_abs_diff (T.flatten expected) (T.flatten got))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one encrypted inference")
    Term.(const run $ model_arg $ target_arg $ real_arg $ checked_arg $ seed_arg)

let scales_cmd =
  let tol_arg = Arg.(value & opt float 0.05 & info [ "tolerance" ] ~doc:"Output tolerance.") in
  let run model target tolerance =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = Compiler.default_options ~target () in
    let images = List.init 3 (fun i -> Models.input_for spec ~seed:(100 + i)) in
    let result =
      Scale_select.search
        ~log:(fun line -> Printf.eprintf "%s\n%!" line)
        opts circuit ~policy:Executor.All_hw ~images ~tolerance
        ~start_exponents:(34, 24, 24, 18) ()
    in
    let ec, ew, eu, em = result.Scale_select.exponents in
    Printf.printf "selected scales: Pc=2^%d Pw=2^%d Pu=2^%d Pm=2^%d (%d candidates tried, %d rejected)\n"
      ec ew eu em result.Scale_select.evaluations
      (List.length result.Scale_select.rejections)
  in
  Cmd.v (Cmd.info "scales" ~doc:"Profile-guided fixed-point scale search (§5.5)")
    Term.(const run $ model_arg $ target_arg $ tol_arg)

let () =
  let info = Cmd.info "chet" ~doc:"CHET: an optimizing compiler for FHE neural-network inference" in
  let code =
    (* render the typed failure modes as structured one-liners instead of a
       raw OCaml backtrace *)
    try Cmd.eval ~catch:false (Cmd.group info [ models_cmd; compile_cmd; run_cmd; scales_cmd ]) with
    | Herr.Fhe_error (e, c) ->
        Printf.eprintf "chet: %s\n" (Herr.to_string (e, c));
        3
    | Compiler.Compilation_failure msg ->
        Printf.eprintf "chet: compilation failed: %s\n" msg;
        3
    | Chet_crypto.Serial.Corrupt msg ->
        Printf.eprintf "chet: corrupt payload: %s\n" msg;
        3
  in
  exit code
