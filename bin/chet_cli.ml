(* Command-line driver: compile, inspect, run and serve the bundled networks.

     chet models
     chet compile  LeNet-5-small  --target seal
     chet run      micro          --target seal  --real
     chet run      SqueezeNet-CIFAR               (simulated)
     chet scales   micro          --tolerance 0.05
     chet serve    micro          --requests 24 --domains 2 --fault transient

   Exit codes: 0 ok, 2 usage error, 3 compilation failure, 4 runtime
   (FHE/serialisation) failure. *)

module Compiler = Chet.Compiler
module Scale_select = Chet.Scale_select
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Opcount = Chet_nn.Opcount
module Reference = Chet_nn.Reference
module Sim = Chet_hisa.Sim_backend
module Clear = Chet_hisa.Clear_backend
module Checked = Chet_hisa.Checked_backend
module Fault = Chet_hisa.Fault_backend
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Service = Chet_serve.Service
module T = Chet_tensor.Tensor
open Cmdliner

let model_arg =
  let doc = "Network name (see `chet models')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let target_arg =
  let doc = "Target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)." in
  Arg.(value & opt (enum [ ("seal", Compiler.Seal); ("heaan", Compiler.Heaan) ]) Compiler.Seal
       & info [ "target" ] ~doc)

let security_arg =
  let doc = "Security level: 128, 192, 256 (HE-standard) or legacy (HEAAN v1.0 presets)." in
  Arg.(value & opt (enum [
      ("128", Compiler.Standard Chet_crypto.Security.Bits128);
      ("192", Compiler.Standard Chet_crypto.Security.Bits192);
      ("256", Compiler.Standard Chet_crypto.Security.Bits256);
      ("legacy", Compiler.Legacy_heaan);
    ]) (Compiler.Standard Chet_crypto.Security.Bits128)
    & info [ "security" ] ~doc)

(* exit code 2: a usage error, same class as a flag cmdliner rejects *)
let lookup_model name =
  try Models.find name
  with Not_found ->
    Printf.eprintf "unknown model %s; try `chet models'\n" name;
    exit 2

let models_cmd =
  let run () =
    List.iter
      (fun spec ->
        let circuit = spec.Models.build () in
        let conv, fc, act = Circuit.layer_counts circuit in
        Printf.printf "%-18s %2d conv  %d fc  %d act  %9d FP ops  %s\n" spec.Models.model_name conv
          fc act (Opcount.count circuit).Opcount.total spec.Models.description)
      (Models.micro :: Models.cryptonets :: Models.all)
  in
  Cmd.v (Cmd.info "models" ~doc:"List bundled networks") Term.(const run $ const ())

let compile_cmd =
  let run model target security =
    let spec = lookup_model model in
    let opts = { (Compiler.default_options ~target ()) with Compiler.security } in
    let compiled = Compiler.compile opts (spec.Models.build ()) in
    Format.printf "%a@." Compiler.pp_compiled compiled
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a network and report the chosen configuration")
    Term.(const run $ model_arg $ target_arg $ security_arg)

let run_cmd =
  let real_arg =
    Arg.(value & flag & info [ "real" ] ~doc:"Run on the real scheme (slow) instead of the simulator.")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "With --real: validate every homomorphic op's pre/postconditions at runtime \
             (scales, levels, rescale legality, NaN screening); corruption surfaces as a \
             typed FHE error instead of a garbage prediction.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Synthetic image seed.") in
  let run model target real checked seed =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = Compiler.default_options ~target () in
    let compiled = Compiler.compile opts circuit in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    let image = Models.input_for spec ~seed in
    let expected = Reference.eval circuit image in
    let run_with (backend : Hisa.t) =
      let module H = (val backend) in
      let module E = Executor.Make (H) in
      E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image
    in
    let got, latency =
      if real then begin
        let backend =
          if checked then Compiler.instantiate_checked compiled ~seed:42 ~with_secret:true ()
          else Compiler.instantiate compiled ~seed:42 ~with_secret:true ()
        in
        let t0 = Unix.gettimeofday () in
        let r = run_with backend in
        (r, Unix.gettimeofday () -. t0)
      end
      else begin
        let backend, clock =
          Sim.make_with_values
            {
              Sim.n = Compiler.params_n compiled.Compiler.params;
              scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
              costs =
                (match target with
                | Compiler.Seal -> Chet.Cost_model.seal ()
                | Compiler.Heaan -> Chet.Cost_model.heaan ());
            }
        in
        (run_with backend, clock.Sim.elapsed)
      end
    in
    Printf.printf "%s latency: %.2f s; class=%d (clear %d); max |err|=%.5f\n"
      (if real then "measured" else "simulated")
      latency (T.argmax got) (T.argmax expected)
      (T.max_abs_diff (T.flatten expected) (T.flatten got))
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one encrypted inference")
    Term.(const run $ model_arg $ target_arg $ real_arg $ checked_arg $ seed_arg)

let scales_cmd =
  let tol_arg = Arg.(value & opt float 0.05 & info [ "tolerance" ] ~doc:"Output tolerance.") in
  let run model target tolerance =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = Compiler.default_options ~target () in
    let images = List.init 3 (fun i -> Models.input_for spec ~seed:(100 + i)) in
    let result =
      Scale_select.search
        ~log:(fun line -> Printf.eprintf "%s\n%!" line)
        opts circuit ~policy:Executor.All_hw ~images ~tolerance
        ~start_exponents:(34, 24, 24, 18) ()
    in
    let ec, ew, eu, em = result.Scale_select.exponents in
    Printf.printf "selected scales: Pc=2^%d Pw=2^%d Pu=2^%d Pm=2^%d (%d candidates tried, %d rejected)\n"
      ec ew eu em result.Scale_select.evaluations
      (List.length result.Scale_select.rejections)
  in
  Cmd.v (Cmd.info "scales" ~doc:"Profile-guided fixed-point scale search (§5.5)")
    Term.(const run $ model_arg $ target_arg $ tol_arg)

(* --- chet serve: the resilient inference service on a scripted trace --- *)

let serve_cmd =
  let requests_arg =
    Arg.(value & opt int 24 & info [ "requests" ] ~doc:"Number of requests in the scripted trace.")
  in
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker pool width (OCaml 5 domains).")
  in
  let queue_arg =
    Arg.(value & opt int 8 & info [ "queue" ] ~doc:"Queue high-water mark (requests shed above it).")
  in
  let deadline_arg =
    Arg.(value & opt float 30000.0 & info [ "deadline-ms" ] ~doc:"Per-request deadline budget.")
  in
  let tight_arg =
    Arg.(
      value & opt int 0
      & info [ "tight-every" ]
          ~doc:"Give every k-th request a 1 ms deadline (0 = off) to exercise deadline expiry.")
  in
  let fault_arg =
    Arg.(
      value
      & opt (enum [ ("none", `None); ("transient", `Transient); ("persistent", `Persistent) ]) `None
      & info [ "fault" ]
          ~doc:
            "Inject NaN-poison faults into the primary deployment: 'transient' corrupts only the \
             first attempt of each request (retries recover), 'persistent' corrupts every attempt \
             (the circuit breaker trips and traffic degrades to the fallback rung).")
  in
  let real_arg =
    Arg.(
      value & flag
      & info [ "real" ] ~doc:"Serve on the real instantiated scheme ladder instead of cleartext.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Key-generation seed (--real).") in
  let run model target requests domains queue_hw deadline_ms tight_every fault real seed =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = Compiler.default_options ~target () in
    let compiled = Compiler.compile opts circuit in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
    let slots = Compiler.params_n compiled.Compiler.params / 2 in
    let clear () =
      Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false }
    in
    let ladder =
      if real then Service.ladder_of_compiled compiled ~seed ~with_secret:true ()
      else begin
        (* cleartext twin of the deployment ladder: same circuit, policy and
           scales, with seeded fault injection on the primary rung so the
           retry/breaker machinery has something to push against *)
        let primary_backend ~req_seed ~attempt =
          let armed =
            match fault with
            | `None -> None
            | `Transient -> if attempt = 0 then Some Fault.Nan_poison else None
            | `Persistent -> Some Fault.Nan_poison
          in
          match armed with
          | None -> clear ()
          | Some f ->
              let faulty, _log = Fault.wrap (Fault.default_config ~seed:req_seed (Some f)) (clear ()) in
              Checked.wrap ~scheme faulty
        in
        [
          {
            Service.dep_label = "primary";
            dep_degraded = false;
            dep_scales = opts.Compiler.scales;
            dep_policy = compiled.Compiler.policy;
            dep_backend = primary_backend;
          };
          {
            Service.dep_label = "clear-fallback";
            dep_degraded = true;
            dep_scales = opts.Compiler.scales;
            dep_policy = compiled.Compiler.policy;
            dep_backend = (fun ~req_seed:_ ~attempt:_ -> clear ());
          };
        ]
      end
    in
    let cfg =
      {
        (Service.default_config ~domains ()) with
        Service.high_water = queue_hw;
        breaker_threshold = 3;
        breaker_cooldown_ms = 500.0;
        backoff_base_ms = 1.0;
        backoff_cap_ms = 10.0;
        default_deadline_ms = deadline_ms;
      }
    in
    let svc = Service.create cfg ~circuit ~ladder in
    (* scripted trace: one burst — bigger than the queue can hold if
       [requests] outruns [queue + domains], which is the point *)
    let tickets =
      List.init requests (fun i ->
          let deadline_ms =
            if tight_every > 0 && (i + 1) mod tight_every = 0 then 1.0 else deadline_ms
          in
          Service.submit svc ~deadline_ms (Models.input_for spec ~seed:(100 + i)))
    in
    let outcomes = List.map (Service.await svc) tickets in
    Service.shutdown svc;
    List.iter
      (fun (o : Service.outcome) ->
        match o.Service.out_result with
        | Ok t ->
            Printf.printf "req %02d: ok    class=%d via %s%s (%d attempt%s, %.1f ms)\n"
              o.Service.out_id (T.argmax t) o.Service.out_served_by
              (if o.Service.out_degraded then " [degraded]" else "")
              o.Service.out_attempts
              (if o.Service.out_attempts = 1 then "" else "s")
              o.Service.out_total_ms
        | Error (e, _) ->
            Printf.printf "req %02d: %-5s %s\n" o.Service.out_id "ERR" (Herr.error_name e))
      outcomes;
    Format.printf "%a@." Service.pp_stats (Service.stats svc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the supervised inference service on a scripted request trace (deadlines, retries, \
          load shedding, circuit-breaker degradation) and print a stats summary")
    Term.(
      const run $ model_arg $ target_arg $ requests_arg $ domains_arg $ queue_arg $ deadline_arg
      $ tight_arg $ fault_arg $ real_arg $ seed_arg)

let () =
  let info = Cmd.info "chet" ~doc:"CHET: an optimizing compiler for FHE neural-network inference" in
  let code =
    (* top-level handler: every typed failure mode renders its full context
       as a structured one-liner (never a raw backtrace) and maps to a
       distinct exit code — 2 usage, 3 compile, 4 runtime *)
    try
      match
        Cmd.eval ~catch:false
          (Cmd.group info [ models_cmd; compile_cmd; run_cmd; scales_cmd; serve_cmd ])
      with
      | c when c = Cmd.Exit.cli_error -> 2 (* cmdliner usage error *)
      | c -> c
    with
    | Herr.Fhe_error (e, c) ->
        Printf.eprintf "chet: %s\n" (Herr.to_string (e, c));
        4
    | Compiler.Compilation_failure msg ->
        Printf.eprintf "chet: compilation failed: %s\n" msg;
        3
    | Chet_crypto.Serial.Corrupt msg ->
        Printf.eprintf "chet: corrupt payload: %s\n" msg;
        4
  in
  exit code
