(* Command-line driver: compile, inspect, run and serve the bundled networks.

     chet models
     chet compile  LeNet-5-small  --target seal
     chet run      micro          --target seal  --real
     chet run      SqueezeNet-CIFAR               (simulated)
     chet scales   micro          --tolerance 0.05
     chet serve    micro          --requests 24 --domains 2 --fault transient

   Exit codes: 0 ok, 2 usage error, 3 compilation failure, 4 runtime
   (FHE/serialisation) failure. *)

module Compiler = Chet.Compiler
module Scale_select = Chet.Scale_select
module Integrity = Chet.Integrity
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Opcount = Chet_nn.Opcount
module Reference = Chet_nn.Reference
module Sim = Chet_hisa.Sim_backend
module Clear = Chet_hisa.Clear_backend
module Checked = Chet_hisa.Checked_backend
module Fault = Chet_hisa.Fault_backend
module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Service = Chet_serve.Service
module T = Chet_tensor.Tensor
module Cost_model = Chet.Cost_model
module Timed_backend = Chet_hisa.Timed_backend
module Tracer = Chet_obs.Tracer
module Jsonx = Chet_obs.Jsonx
module Rns = Chet_crypto.Rns_ckks
module Big = Chet_crypto.Big_ckks
module Sampling = Chet_crypto.Sampling
module Seal_backend = Chet_hisa.Seal_backend
module Heaan_backend = Chet_hisa.Heaan_backend
module Store = Chet_store.Store
module Bundle = Chet_store.Bundle
open Cmdliner

let model_arg =
  let doc = "Network name (see `chet models')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc)

let target_arg =
  let doc = "Target FHE scheme: seal (RNS-CKKS) or heaan (CKKS)." in
  Arg.(value & opt (enum [ ("seal", Compiler.Seal); ("heaan", Compiler.Heaan) ]) Compiler.Seal
       & info [ "target" ] ~doc)

let security_arg =
  let doc = "Security level: 128, 192, 256 (HE-standard) or legacy (HEAAN v1.0 presets)." in
  Arg.(value & opt (enum [
      ("128", Compiler.Standard Chet_crypto.Security.Bits128);
      ("192", Compiler.Standard Chet_crypto.Security.Bits192);
      ("256", Compiler.Standard Chet_crypto.Security.Bits256);
      ("legacy", Compiler.Legacy_heaan);
    ]) (Compiler.Standard Chet_crypto.Security.Bits128)
    & info [ "security" ] ~doc)

let cost_file_arg =
  let doc =
    "Load cost-model constants from a calibration JSON file written by `chet profile'; the \
     layout-selection pass then ranks candidates under the measured constants of this machine \
     instead of the shipped defaults."
  in
  Arg.(value & opt (some string) None & info [ "cost-file" ] ~docv:"FILE" ~doc)

(* calibration-file failures are runtime/serialisation failures: exit 4,
   like any other corrupt payload *)
let load_calibration_or_exit path =
  try Cost_model.load_calibration path
  with
  | Jsonx.Parse_error msg ->
      Printf.eprintf "chet: %s: bad calibration JSON: %s\n" path msg;
      exit 4
  | Failure msg ->
      Printf.eprintf "chet: %s: %s\n" path msg;
      exit 4
  | Sys_error msg ->
      Printf.eprintf "chet: %s\n" msg;
      exit 4

let apply_cost_file opts target = function
  | None -> opts
  | Some path ->
      let cal = load_calibration_or_exit path in
      let scheme = match target with Compiler.Seal -> `Seal | Compiler.Heaan -> `Heaan in
      { opts with Compiler.cost = Some (Cost_model.model_for scheme cal) }

let state_dir_arg =
  let doc =
    "Durable deployment store directory (created if absent). `compile' saves the deployment \
     bundle there; `serve' warm-restarts from it — skipping compilation and key generation — \
     and persists its breaker state on clean shutdown. Inspect with `chet store'."
  in
  Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)

(* Opening a store runs crash recovery; narrate what it found — quarantined
   generations keep their typed reason, uncommitted debris is just counted. *)
let open_store_verbose ?keep dir =
  let store, report = Store.open_ ?keep dir in
  List.iter
    (fun (name, e) ->
      Printf.eprintf "chet: store: quarantined %s/%s (%s: %s)\n" dir name (Herr.error_name e)
        (Herr.error_detail e))
    report.Store.r_quarantined;
  if report.Store.r_removed_tmp > 0 then
    Printf.eprintf "chet: store: removed %d uncommitted *.tmp entries\n" report.Store.r_removed_tmp;
  (store, report)

let save_bundle_verbose store bundle =
  let files = Bundle.files bundle in
  let bytes = List.fold_left (fun acc (_, b) -> acc + String.length b) 0 files in
  let gen = Store.save store ~files in
  Printf.printf "saved deployment bundle: generation %d, %d files, %d bytes -> %s\n" gen
    (List.length files) bytes (Store.root store);
  gen

(* --- fast-ring kernel options (DESIGN.md §15) -------------------------- *)

let kernel_domains_arg =
  let doc =
    "Kernel-domain pool width: independent RNS residue channels of each ring operation fan \
     out across $(docv) OCaml 5 domains (default: this machine's recommended domain count). \
     1 runs every kernel sequentially. Results are bit-identical for every width."
  in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let no_fast_ring_arg =
  let doc =
    "Run the scalar schoolbook ring kernels instead of the Bigarray fast path — the \
     bit-identical (and much slower) reference oracle."
  in
  Arg.(value & flag & info [ "no-fast-ring" ] ~doc)

let kernel_domains_gauge =
  lazy
    (Chet_obs.Metrics.gauge Chet_obs.Metrics.default ~help:"kernel-domain pool width"
       "chet_kernel_domains")

(* lib/crypto cannot depend on lib/obs, so the gauge is set here, at the
   layer that also owns the pool width decision *)
let apply_kernel_opts domains no_fast_ring =
  let d =
    match domains with Some d -> Stdlib.max 1 d | None -> Domain.recommended_domain_count ()
  in
  Chet_crypto.Kpool.configure ~domains:d;
  Chet_crypto.Rq.set_fast_ring (not no_fast_ring);
  Chet_obs.Metrics.set_gauge (Lazy.force kernel_domains_gauge) (float_of_int d)

let kernel_term = Term.(const apply_kernel_opts $ kernel_domains_arg $ no_fast_ring_arg)

(* serve names its worker-pool width --domains already; the kernel pool gets
   an unambiguous flag there *)
let kernel_domains_serve_arg =
  let doc =
    "Kernel-domain pool width for ring operations (distinct from --domains, the worker-pool \
     width). Defaults to 1 under serve: worker parallelism usually saturates the cores."
  in
  Arg.(value & opt int 1 & info [ "kernel-domains" ] ~docv:"N" ~doc)

let kernel_term_serve =
  Term.(const (fun d no_fast -> apply_kernel_opts (Some d) no_fast) $ kernel_domains_serve_arg
        $ no_fast_ring_arg)

(* exit code 2: a usage error, same class as a flag cmdliner rejects *)
let lookup_model name =
  try Models.find name
  with Not_found ->
    Printf.eprintf "unknown model %s; try `chet models'\n" name;
    exit 2

let models_cmd =
  let run () =
    List.iter
      (fun spec ->
        let circuit = spec.Models.build () in
        let conv, fc, act = Circuit.layer_counts circuit in
        Printf.printf "%-18s %2d conv  %d fc  %d act  %9d FP ops  %s\n" spec.Models.model_name conv
          fc act (Opcount.count circuit).Opcount.total spec.Models.description)
      (Models.micro :: Models.cryptonets :: Models.all)
  in
  Cmd.v (Cmd.info "models" ~doc:"List bundled networks") Term.(const run $ const ())

let compile_cmd =
  let seed_arg =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:"Deployment key-generation seed recorded in the bundle (--state-dir).")
  in
  let no_keys_arg =
    Arg.(
      value & flag
      & info [ "no-keys" ]
          ~doc:
            "With --state-dir: skip exporting the public evaluation keys into the bundle. \
             A warm restart then re-derives all key material from the seed (cheap for \
             cleartext serving; one keygen for real deployments).")
  in
  let run model target security cost_file state_dir seed no_keys =
    let spec = lookup_model model in
    let opts = { (Compiler.default_options ~target ()) with Compiler.security } in
    let calibration = Option.map load_calibration_or_exit cost_file in
    let opts =
      match calibration with
      | None -> opts
      | Some cal ->
          let scheme = match target with Compiler.Seal -> `Seal | Compiler.Heaan -> `Heaan in
          { opts with Compiler.cost = Some (Cost_model.model_for scheme cal) }
    in
    let compiled = Compiler.compile opts (spec.Models.build ()) in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    match state_dir with
    | None -> ()
    | Some dir ->
        let store, _report = open_store_verbose dir in
        let bundle = Bundle.build ?calibration ~with_keys:(not no_keys) compiled ~seed () in
        ignore (save_bundle_verbose store bundle)
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a network and report the chosen configuration")
    Term.(
      const run $ model_arg $ target_arg $ security_arg $ cost_file_arg $ state_dir_arg $ seed_arg
      $ no_keys_arg)

let run_cmd =
  let real_arg =
    Arg.(value & flag & info [ "real" ] ~doc:"Run on the real scheme (slow) instead of the simulator.")
  in
  let checked_arg =
    Arg.(
      value & flag
      & info [ "checked" ]
          ~doc:
            "With --real: validate every homomorphic op's pre/postconditions at runtime \
             (scales, levels, rescale legality, NaN screening); corruption surfaces as a \
             typed FHE error instead of a garbage prediction.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Synthetic image seed.") in
  let plan_arg =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:
            "Execute through the compiled plan (DESIGN.md §14): the circuit lowered once into a \
             scheduled arena program with fused kernels, then replayed. Outputs are bit-identical \
             to the interpretive executor.")
  in
  let no_plan_arg =
    Arg.(
      value & flag
      & info [ "no-plan" ]
          ~doc:"Force the interpretive executor (the default) — the --plan escape hatch.")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a Chrome trace_event JSON trace of the run — one span per circuit node \
             (node id, layer, layout, HISA op count, result scale/level) — and write it to \
             $(docv); open in chrome://tracing or Perfetto.")
  in
  let sentinel_arg =
    Arg.(
      value & flag
      & info [ "sentinel" ]
          ~doc:
            "Verify the answer end-to-end with sentinel slots (DESIGN.md §16): a known probe \
             rides the twin lane through the whole circuit and is checked against the clear \
             reference at decrypt. Forces the interpretive executor.")
  in
  let run () model target real checked want_sentinel seed plan no_plan trace cost_file =
    let use_plan = plan && not no_plan && not want_sentinel in
    if plan && want_sentinel then
      Printf.eprintf "chet: --plan: --sentinel forces the interpretive executor\n";
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let base_opts = apply_cost_file (Compiler.default_options ~target ()) target cost_file in
    let opts = { base_opts with Compiler.sentinel = want_sentinel } in
    let compiled = Compiler.compile opts circuit in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    let image = Models.input_for spec ~seed in
    let expected = Reference.eval circuit image in
    (* --trace: ambient tracer for executor node spans, plus the timed
       interceptor around the backend so spans can attribute HISA op counts *)
    let tracer = Option.map (fun _ -> Tracer.create ()) trace in
    let timer = Timed_backend.create () in
    Tracer.set_global tracer;
    let wrap b = if trace = None then b else Timed_backend.wrap timer b in
    let the_plan = if use_plan then Some (Compiler.plan compiled) else None in
    Option.iter (fun p -> Printf.printf "plan: %s\n" (Chet_plan.Plan.summary p)) the_plan;
    let isp = if want_sentinel then Some (Integrity.spec_for circuit) else None in
    let margin = ref Float.nan in
    let run_with (backend : Hisa.t) =
      let module H = (val wrap backend) in
      match the_plan with
      | Some p ->
          let module PE = Chet_plan.Plan_exec.Make (H) in
          PE.run (PE.prepare opts.Compiler.scales p) image
      | None ->
          let module E = Executor.Make (H) in
          let sentinel =
            Option.map
              (fun sp ->
                Integrity.sentinel ~observe:(fun t -> margin := Integrity.margin_bits sp t) sp)
              isp
          in
          E.run ?sentinel ~twin:want_sentinel opts.Compiler.scales circuit
            ~policy:compiled.Compiler.policy image
    in
    let finally () = Tracer.set_global None in
    let got, latency =
      Fun.protect ~finally (fun () ->
          if real then begin
            let backend =
              if checked then Compiler.instantiate_checked compiled ~seed:42 ~with_secret:true ()
              else Compiler.instantiate compiled ~seed:42 ~with_secret:true ()
            in
            let t0 = Unix.gettimeofday () in
            let r = run_with backend in
            (r, Unix.gettimeofday () -. t0)
          end
          else begin
            let backend, clock =
              Sim.make_with_values
                {
                  Sim.n = Compiler.params_n compiled.Compiler.params;
                  scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
                  costs =
                    (match opts.Compiler.cost with
                    | Some m -> m
                    | None -> (
                        match target with
                        | Compiler.Seal -> Cost_model.seal ()
                        | Compiler.Heaan -> Cost_model.heaan ()));
                }
            in
            (run_with backend, clock.Sim.elapsed)
          end)
    in
    (match trace, tracer with
    | Some path, Some tr ->
        Tracer.export_chrome tr path;
        Printf.printf "trace: %d spans (%d dropped), %d timed HISA ops -> %s\n"
          (List.length (Tracer.events tr))
          (Tracer.dropped tr) (Timed_backend.total_ops timer) path
    | _ -> ());
    Printf.printf "%s latency: %.2f s; class=%d (clear %d); max |err|=%.5f\n"
      (if real then "measured" else "simulated")
      latency (T.argmax got) (T.argmax expected)
      (T.max_abs_diff (T.flatten expected) (T.flatten got));
    if want_sentinel then
      if Float.is_nan !margin then Printf.printf "sentinel: verified (margin not observed)\n"
      else Printf.printf "sentinel: verified, margin %.2f bits\n" !margin
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one encrypted inference")
    Term.(
      const run $ kernel_term $ model_arg $ target_arg $ real_arg $ checked_arg $ sentinel_arg
      $ seed_arg $ plan_arg $ no_plan_arg $ trace_arg $ cost_file_arg)

let scales_cmd =
  let tol_arg = Arg.(value & opt float 0.05 & info [ "tolerance" ] ~doc:"Output tolerance.") in
  let run () model target tolerance cost_file =
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let opts = apply_cost_file (Compiler.default_options ~target ()) target cost_file in
    let images = List.init 3 (fun i -> Models.input_for spec ~seed:(100 + i)) in
    let result =
      Scale_select.search
        ~log:(fun line -> Printf.eprintf "%s\n%!" line)
        opts circuit ~policy:Executor.All_hw ~images ~tolerance
        ~start_exponents:(34, 24, 24, 18) ()
    in
    let ec, ew, eu, em = result.Scale_select.exponents in
    Printf.printf "selected scales: Pc=2^%d Pw=2^%d Pu=2^%d Pm=2^%d (%d candidates tried, %d rejected)\n"
      ec ew eu em result.Scale_select.evaluations
      (List.length result.Scale_select.rejections)
  in
  Cmd.v (Cmd.info "scales" ~doc:"Profile-guided fixed-point scale search (§5.5)")
    Term.(const run $ kernel_term $ model_arg $ target_arg $ tol_arg $ cost_file_arg)

(* --- chet profile: calibrate the cost model on this machine ------------- *)

(* Exercise every Table-1 op of a (timed) backend at each reachable level,
   descending the modulus chain by squaring + rescaling, so the calibrator
   sees samples across the (N, r)/(N, logQ) grid it fits against. *)
let profile_backend timer backend ~reps =
  let module H = (val Timed_backend.wrap timer backend : Hisa.S) in
  let scale = 1 lsl 30 in
  let v = Array.init H.slots (fun i -> 0.001 *. float_of_int (i mod 97)) in
  let pt = H.encode v ~scale in
  let a = ref (H.encrypt pt) in
  let b = ref (H.encrypt pt) in
  (try
     let continue = ref true in
     while !continue do
       for _ = 1 to reps do
         ignore (H.add !a !b);
         ignore (H.add_plain !a pt);
         ignore (H.add_scalar !a 0.5);
         ignore (H.mul_scalar !a 1.5 ~scale);
         ignore (H.mul_plain !a pt);
         ignore (H.mul !a !b);
         ignore (H.rot_left !a 1);
         (* fused accumulation ops — the plan path's workhorses; their cells
            let the calibrator fit the composite main+Add terms *)
         ignore (H.fma_scalar !a !b 1.5 ~scale);
         ignore (H.fma_plain !a !b pt);
         ignore (H.fma_rot !a !b 1)
       done;
       (* descend one rung: square, rescale back towards the working scale *)
       let m = H.mul !a !b in
       let d = H.max_rescale m scale in
       if d > 1 then begin
         let m' = H.rescale m d in
         a := m';
         b := H.copy m'
       end
       else continue := false
     done
   with Herr.Fhe_error _ -> (* bottom of the chain: profiling is done *) ());
  ignore (H.decode (H.decrypt !a))

let profile_cmd =
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Fewer ring sizes and repetitions (CI smoke).")
  in
  let out_arg =
    Arg.(
      value
      & opt string "chet-calibration.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Where to write the calibration JSON.")
  in
  let run () quick out =
    let reps = if quick then 3 else 12 in
    let seal_timer = Timed_backend.create () in
    let seal_sizes = if quick then [ (2048, 3) ] else [ (2048, 4); (4096, 4); (4096, 8) ] in
    List.iter
      (fun (n, primes) ->
        Printf.eprintf "profiling seal   n=%-5d primes=%d\n%!" n primes;
        let params = Rns.default_params ~n ~bits:30 ~num_coeff_primes:primes () in
        let ctx = Rns.make_context params in
        let rng = Sampling.create ~seed:1 in
        let sk, keys = Rns.keygen ctx rng in
        Rns.add_rotation_key ctx rng sk keys 1;
        profile_backend seal_timer
          (Seal_backend.make { Seal_backend.ctx; rng; keys; secret = Some sk })
          ~reps)
      seal_sizes;
    let heaan_timer = Timed_backend.create () in
    let heaan_sizes = if quick then [ (1024, 120) ] else [ (1024, 120); (2048, 120); (2048, 240) ] in
    List.iter
      (fun (n, log_fresh) ->
        Printf.eprintf "profiling heaan  n=%-5d logQ=%d\n%!" n log_fresh;
        let params = Big.default_params ~n ~log_fresh () in
        let ctx = Big.make_context params in
        let rng = Sampling.create ~seed:2 in
        let sk, keys = Big.keygen ctx rng in
        Big.add_rotation_key ctx rng sk keys 1;
        profile_backend heaan_timer
          (Heaan_backend.make { Heaan_backend.ctx; rng; keys; secret = Some sk })
          ~reps)
      heaan_sizes;
    let seal_c = Cost_model.calibrate_from ~scheme:`Seal (Timed_backend.cells seal_timer) in
    let heaan_c = Cost_model.calibrate_from ~scheme:`Heaan (Timed_backend.cells heaan_timer) in
    let cal = { Cost_model.seal_c; heaan_c } in
    Cost_model.save_calibration out cal;
    let pr name (c : Cost_model.constants) =
      Printf.printf "%-6s k_add=%.3g k_scalar_mul=%.3g k_plain_mul=%.3g k_cipher_mul=%.3g k_rotate=%.3g k_rescale=%.3g\n"
        name c.Cost_model.k_add c.Cost_model.k_scalar_mul c.Cost_model.k_plain_mul
        c.Cost_model.k_cipher_mul c.Cost_model.k_rotate c.Cost_model.k_rescale
    in
    pr "seal" seal_c;
    pr "heaan" heaan_c;
    Printf.printf "%d seal + %d heaan timed ops -> %s\n"
      (Timed_backend.total_ops seal_timer)
      (Timed_backend.total_ops heaan_timer)
      out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Microbenchmark this machine's scheme implementations through the timed HISA \
          interceptor, fit Table-1 cost-model constants from the measurements, and write a \
          calibration JSON that `compile', `run', `scales' and the benches accept via \
          --cost-file")
    Term.(const run $ kernel_term $ quick_arg $ out_arg)

(* --- chet trace: validate an exported Chrome trace ---------------------- *)

let trace_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Trace JSON file.")
  in
  let run file =
    let j =
      try Jsonx.of_file file
      with
      | Jsonx.Parse_error msg ->
          Printf.eprintf "chet: %s: bad trace JSON: %s\n" file msg;
          exit 4
      | Sys_error msg ->
          Printf.eprintf "chet: %s\n" msg;
          exit 4
    in
    match Jsonx.member "traceEvents" j with
    | Some (Jsonx.Arr evs) ->
        let well_formed e =
          Jsonx.str_member "ph" e <> None
          && Jsonx.str_member "name" e <> None
          && Jsonx.num_member "ts" e <> None
          && Jsonx.num_member "pid" e <> None
          && Jsonx.num_member "tid" e <> None
        in
        let bad = List.filter (fun e -> not (well_formed e)) evs in
        if bad <> [] then begin
          Printf.eprintf "chet: %s: %d trace events missing ph/name/ts/pid/tid\n" file
            (List.length bad);
          exit 4
        end;
        Printf.printf "%s: valid Chrome trace, %d events\n" file (List.length evs)
    | _ ->
        Printf.eprintf "chet: %s: not a Chrome trace (no \"traceEvents\" array)\n" file;
        exit 4
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Validate a Chrome trace_event JSON file written by `chet run --trace'")
    Term.(const run $ file_arg)

(* --- chet serve: the resilient inference service on a scripted trace --- *)

let serve_cmd =
  let requests_arg =
    Arg.(value & opt int 24 & info [ "requests" ] ~doc:"Number of requests in the scripted trace.")
  in
  let domains_arg =
    Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker pool width (OCaml 5 domains).")
  in
  let queue_arg =
    Arg.(value & opt int 8 & info [ "queue" ] ~doc:"Queue high-water mark (requests shed above it).")
  in
  let deadline_arg =
    Arg.(value & opt float 30000.0 & info [ "deadline-ms" ] ~doc:"Per-request deadline budget.")
  in
  let tight_arg =
    Arg.(
      value & opt int 0
      & info [ "tight-every" ]
          ~doc:"Give every k-th request a 1 ms deadline (0 = off) to exercise deadline expiry.")
  in
  let fault_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", `None);
               ("transient", `Transient);
               ("persistent", `Persistent);
               ("silent", `Silent);
             ])
          `None
      & info [ "fault" ]
          ~doc:
            "Inject faults into the primary deployment: 'transient' NaN-poisons only the first \
             attempt of each request (retries recover), 'persistent' NaN-poisons every attempt \
             (the circuit breaker trips and traffic degrades to the fallback rung), 'silent' \
             perturbs result slots with no typed error — invisible without $(b,--sentinel), \
             which catches it and degrades to the clean fallback.")
  in
  let real_arg =
    Arg.(
      value & flag
      & info [ "real" ] ~doc:"Serve on the real instantiated scheme ladder instead of cleartext.")
  in
  let sentinel_arg =
    Arg.(
      value & flag
      & info [ "sentinel" ]
          ~doc:
            "Verify every answer end-to-end with sentinel slots (DESIGN.md §16): a known probe \
             rides the interleaved twin lane through the whole circuit and is checked against \
             the clear reference before the answer is released. Mismatches surface as typed \
             Integrity_violation. Forces the interpretive executor.")
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Key-generation seed (--real).") in
  let plan_arg =
    Arg.(
      value & flag
      & info [ "plan" ]
          ~doc:
            "Serve the primary rung through the compiled execution plan (DESIGN.md §14): one \
             prepared arena executor per worker domain, bit-identical answers to the \
             interpretive path. Degraded rungs stay interpretive.")
  in
  let no_plan_arg =
    Arg.(
      value & flag
      & info [ "no-plan" ]
          ~doc:"Force the interpretive executor on every rung (the default) — the --plan escape hatch.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics-dump" ]
          ~doc:
            "After the trace, print the service's metrics registry in Prometheus text \
             exposition format (request counters, latency histogram, breaker-state gauges).")
  in
  let interarrival_arg =
    Arg.(
      value & opt float 0.0
      & info [ "interarrival-ms" ]
          ~doc:
            "Pace the scripted trace: sleep this many ms between submissions (0 = one burst). \
             Pacing gives SIGINT/SIGTERM a window to land mid-run and exercise graceful \
             shutdown.")
  in
  let run () model target requests domains queue_hw deadline_ms tight_every fault real
      want_sentinel seed plan no_plan metrics_dump state_dir interarrival_ms =
    let use_plan = plan && not no_plan in
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let sentinel = if want_sentinel then Some (Integrity.spec_for circuit) else None in
    let store = Option.map (fun d -> fst (open_store_verbose d)) state_dir in
    (* warm restart: adopt the newest valid bundle; a bundle that passes the
       store's checksums but fails schema parsing is reported (typed) and
       treated like an empty store — cold compile, then save for next time *)
    let restored =
      match store with
      | None -> None
      | Some st ->
          let tracer = Tracer.create () in
          Tracer.set_global (Some tracer);
          let t0 = Unix.gettimeofday () in
          let loaded =
            Fun.protect
              ~finally:(fun () -> Tracer.set_global None)
              (fun () ->
                Tracer.with_span ~cat:"store" "restore" (fun () ->
                    try
                      let l = Bundle.load st ~circuit in
                      Option.iter
                        (fun l ->
                          Tracer.annotate "generation" (Tracer.Int l.Bundle.l_generation);
                          Tracer.annotate "bytes" (Tracer.Int l.Bundle.l_bytes))
                        l;
                      l
                    with Herr.Fhe_error ((Herr.Corrupt_bundle _ as e), _) ->
                      Printf.eprintf "chet: store: %s: %s; falling back to cold compile\n"
                        (Herr.error_name e) (Herr.error_detail e);
                      None))
          in
          Option.iter
            (fun l ->
              Printf.printf
                "warm restart: generation %d, %d bytes restored in %.1f ms (compile%s skipped)\n"
                l.Bundle.l_generation l.Bundle.l_bytes
                ((Unix.gettimeofday () -. t0) *. 1000.0)
                (if l.Bundle.l_bundle.Bundle.b_keys <> None then " and keygen" else ""))
            loaded;
          loaded
    in
    let compiled =
      match restored with
      | Some l -> l.Bundle.l_bundle.Bundle.b_compiled
      | None ->
          let opts = Compiler.default_options ~target () in
          let compiled = Compiler.compile opts circuit in
          (* first boot against this store: persist the bundle so the next
             start is warm (keys only for real deployments) *)
          Option.iter
            (fun st ->
              ignore (save_bundle_verbose st (Bundle.build ~with_keys:real compiled ~seed ())))
            store;
          compiled
    in
    Format.printf "%a@." Compiler.pp_compiled compiled;
    let opts = compiled.Compiler.opts in
    let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
    let slots = Compiler.params_n compiled.Compiler.params / 2 in
    let clear () =
      Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false }
    in
    let ladder =
      if real then
        match restored with
        | Some l ->
            (* the bundle's seed governs: the restored deployment must be
               bit-identical to the one that wrote it *)
            let factory, _scheme =
              Bundle.restore_factory l.Bundle.l_bundle ~with_secret:true
            in
            let plan_runner =
              if not use_plan then None
              else
                match Bundle.restore_plan_runner l.Bundle.l_bundle ~with_secret:true with
                | Some (runner, _) -> Some runner
                | None ->
                    Printf.eprintf
                      "chet: --plan: bundle has no PLAN frame; serving interpretive\n";
                    None
            in
            Service.ladder_of_factory compiled ~factory ~predict_cost:true ?plan:plan_runner
              ?sentinel ()
        | None ->
            Service.ladder_of_compiled compiled ~seed ~with_secret:true ~predict_cost:true
              ?plan:(if use_plan then Some (Compiler.plan compiled) else None)
              ?sentinel ()
      else begin
        (* cleartext twin of the deployment ladder: same circuit, policy and
           scales, with seeded fault injection on the primary rung so the
           retry/breaker machinery has something to push against *)
        let primary_backend ~req_seed ~attempt =
          let armed =
            match fault with
            | `None -> None
            | `Transient -> if attempt = 0 then Some Fault.Nan_poison else None
            | `Persistent -> Some Fault.Nan_poison
            | `Silent -> Some Fault.Silent_corruption
          in
          match armed with
          | None -> clear ()
          | Some f ->
              let faulty, _log = Fault.wrap (Fault.default_config ~seed:req_seed (Some f)) (clear ()) in
              Checked.wrap ~scheme faulty
        in
        let primary_plan =
          if not use_plan then None
          else if want_sentinel then begin
            (* the plan compiles the untwinned layout; sentinels need the
               doubled strides, so verified serving stays interpretive *)
            Printf.eprintf "chet: --plan: --sentinel forces interpretive serving\n";
            None
          end
          else if fault <> `None then begin
            (* fault injection wraps the interpretive backend view; a plan
               rung would route around it, so it wins and plans are off *)
            Printf.eprintf
              "chet: --plan: --fault targets the interpretive backend; serving interpretive\n";
            None
          end
          else begin
            let p = Compiler.plan compiled in
            Printf.printf "plan: %s\n" (Chet_plan.Plan.summary p);
            let module H = (val clear () : Hisa.S) in
            let module PE = Chet_plan.Plan_exec.Make (H) in
            let mu = Mutex.create () in
            let workers : (int, PE.prepared) Hashtbl.t = Hashtbl.create 8 in
            Some
              (fun ~cancel ~worker ~req_seed:_ ~attempt:_ image ->
                (* the cleartext backend ignores the request seed (no
                   encryption randomness), so plan answers match the
                   interpretive rung exactly *)
                let prepared =
                  Mutex.protect mu (fun () ->
                      match Hashtbl.find_opt workers worker with
                      | Some pr -> pr
                      | None ->
                          let pr = PE.prepare opts.Compiler.scales p in
                          Hashtbl.add workers worker pr;
                          pr)
                in
                PE.run ~cancel prepared image)
          end
        in
        let twin = sentinel <> None in
        [
          {
            Service.dep_label = "primary";
            dep_degraded = false;
            dep_scales = opts.Compiler.scales;
            dep_policy = compiled.Compiler.policy;
            dep_cost_ms = None;
            dep_backend = primary_backend;
            dep_plan = (if twin then None else primary_plan);
            dep_sentinel = sentinel;
            dep_twin = twin;
          };
          {
            Service.dep_label = "clear-fallback";
            dep_degraded = true;
            dep_scales = opts.Compiler.scales;
            dep_policy = compiled.Compiler.policy;
            dep_cost_ms = None;
            dep_backend = (fun ~req_seed:_ ~attempt:_ -> clear ());
            dep_plan = None;
            dep_sentinel = sentinel;
            dep_twin = twin;
          };
        ]
      end
    in
    let cfg =
      {
        (Service.default_config ~domains ()) with
        Service.high_water = queue_hw;
        breaker_threshold = 3;
        breaker_cooldown_ms = 500.0;
        backoff_base_ms = 1.0;
        backoff_cap_ms = 10.0;
        default_deadline_ms = deadline_ms;
      }
    in
    let svc = Service.create cfg ~circuit ~ladder in
    (* the serving layer's learned state survives clean restarts: a rung
       whose breaker was open before the restart stays open after it *)
    Option.iter
      (fun st ->
        match Store.load_state st ~name:"service.state" with
        | None -> ()
        | Some (Ok s) -> (
            match Service.restore_state svc s with
            | Ok n -> if n > 0 then Printf.printf "restored breaker state for %d rung(s)\n" n
            | Error e ->
                Printf.eprintf "chet: store: service state ignored (%s: %s)\n" (Herr.error_name e)
                  (Herr.error_detail e))
        | Some (Error e) ->
            Printf.eprintf "chet: store: quarantined corrupt service state (%s)\n"
              (Herr.error_detail e))
      store;
    (* graceful shutdown: on SIGINT/SIGTERM stop admitting (remaining
       scripted requests are refused with the typed Overloaded vocabulary),
       drain what is in flight within its deadlines, persist state, exit 0 *)
    let stopping = Atomic.make false in
    let install sg =
      try Sys.set_signal sg (Sys.Signal_handle (fun _ -> Atomic.set stopping true))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install Sys.sigint;
    install Sys.sigterm;
    (* scripted trace: a burst by default — bigger than the queue can hold
       if [requests] outruns [queue + domains], which is the point — or
       paced with --interarrival-ms *)
    let tickets = ref [] in
    let refused = ref 0 in
    for i = 0 to requests - 1 do
      if Atomic.get stopping then incr refused
      else begin
        let deadline_ms =
          if tight_every > 0 && (i + 1) mod tight_every = 0 then 1.0 else deadline_ms
        in
        tickets := Service.submit svc ~deadline_ms (Models.input_for spec ~seed:(100 + i)) :: !tickets;
        if interarrival_ms > 0.0 && i < requests - 1 && not (Atomic.get stopping) then
          Unix.sleepf (interarrival_ms /. 1000.0)
      end
    done;
    let outcomes = List.rev_map (Service.await svc) !tickets in
    for i = requests - !refused to requests - 1 do
      Printf.printf "req %02d: %-5s %s (shutting down)\n" i "ERR"
        (Herr.error_name (Herr.Overloaded { queue_depth = 0; high_water = queue_hw }))
    done;
    Option.iter
      (fun st -> Store.save_state st ~name:"service.state" (Service.state_to_string svc))
      store;
    Service.shutdown svc;
    List.iter
      (fun (o : Service.outcome) ->
        match o.Service.out_result with
        | Ok t ->
            Printf.printf "req %02d: ok    class=%d via %s%s (%d attempt%s, %.1f ms)\n"
              o.Service.out_id (T.argmax t) o.Service.out_served_by
              (if o.Service.out_degraded then " [degraded]" else "")
              o.Service.out_attempts
              (if o.Service.out_attempts = 1 then "" else "s")
              o.Service.out_total_ms
        | Error (e, _) ->
            Printf.printf "req %02d: %-5s %s\n" o.Service.out_id "ERR" (Herr.error_name e))
      outcomes;
    Format.printf "%a@." Service.pp_stats (Service.stats svc);
    if metrics_dump then print_string (Service.metrics_snapshot svc);
    if Atomic.get stopping then begin
      Printf.printf "graceful shutdown: drained %d in-flight, refused %d, state %s\n"
        (List.length outcomes) !refused
        (if Option.is_some store then "persisted" else "not persisted (no --state-dir)");
      exit 0
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the supervised inference service on a scripted request trace (deadlines, retries, \
          load shedding, circuit-breaker degradation) and print a stats summary")
    Term.(
      const run $ kernel_term_serve $ model_arg $ target_arg $ requests_arg $ domains_arg
      $ queue_arg $ deadline_arg
      $ tight_arg $ fault_arg $ real_arg $ sentinel_arg $ seed_arg $ plan_arg $ no_plan_arg
      $ metrics_arg $ state_dir_arg $ interarrival_arg)

(* --- chet store: inspect and maintain a deployment store ---------------- *)

let store_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc:"Store directory.")
  in
  (* generation metadata for display; any damage here just degrades the
     listing (verification already vouched for the bytes) *)
  let peek_gen store id =
    let path = Filename.concat (Store.root store) (Printf.sprintf "gen-%06d/meta.chet" id) in
    match In_channel.with_open_bin path In_channel.input_all with
    | bytes -> ( try Some (Bundle.peek_meta bytes) with Chet_crypto.Serial.Corrupt _ -> None)
    | exception Sys_error _ -> None
  in
  let print_statuses store statuses =
    List.iter
      (fun (s : Store.status) ->
        match s.Store.g_result with
        | Ok bytes ->
            let desc =
              match peek_gen store s.Store.g_id with
              | Some (name, seed) -> Printf.sprintf "model=%s seed=%d" name seed
              | None -> "(no bundle metadata)"
            in
            Printf.printf "gen %06d: ok       %8d bytes  %s\n" s.Store.g_id bytes desc
        | Error e ->
            Printf.printf "gen %06d: CORRUPT  %s: %s\n" s.Store.g_id (Herr.error_name e)
              (Herr.error_detail e))
      statuses
  in
  let ls_run dir =
    let store, report = open_store_verbose dir in
    (match report.Store.r_active with
    | Some id ->
        Printf.printf "active: generation %d (%d bytes verified)\n" id
          report.Store.r_verified_bytes
    | None -> Printf.printf "active: none (store empty or all generations damaged)\n");
    print_statuses store (Store.verify store)
  in
  let verify_run dir =
    let store, report = open_store_verbose dir in
    let statuses = Store.verify store in
    let bad = List.length (List.filter (fun s -> Result.is_error s.Store.g_result) statuses) in
    print_statuses store statuses;
    let quarantined = List.length report.Store.r_quarantined in
    Printf.printf "%d generation(s) ok, %d corrupt, %d quarantined on open\n"
      (List.length statuses - bad) bad quarantined;
    if bad > 0 || quarantined > 0 then exit 4
  in
  let keep_arg =
    Arg.(value & opt int 3 & info [ "keep" ] ~doc:"How many newest generations to retain.")
  in
  let gc_run dir keep =
    if keep < 1 then begin
      Printf.eprintf "chet: store gc: --keep must be >= 1\n";
      exit 2
    end;
    let store, _report = open_store_verbose ~keep dir in
    let removed = Store.gc store ~keep in
    List.iter (fun name -> Printf.printf "removed %s\n" name) removed;
    Printf.printf "%d removed, %d generation(s) kept\n" (List.length removed)
      (List.length (Store.generations store))
  in
  Cmd.group (Cmd.info "store" ~doc:"Inspect and maintain a durable deployment store")
    [
      Cmd.v
        (Cmd.info "ls" ~doc:"List generations with integrity status and bundle metadata")
        Term.(const ls_run $ dir_arg);
      Cmd.v
        (Cmd.info "verify"
           ~doc:"Re-verify every generation's manifest and checksums; exit 4 on any damage")
        Term.(const verify_run $ dir_arg);
      Cmd.v
        (Cmd.info "gc" ~doc:"Remove generations beyond --keep and cap quarantine debris")
        Term.(const gc_run $ dir_arg $ keep_arg);
    ]

(* --- chet shard-worker / supervise / loadgen: networked serving ---------- *)

module Wire = Chet_net.Wire
module Net_server = Chet_net.Server
module Supervisor = Chet_net.Supervisor
module Loadgen = Chet_net.Loadgen

let addr_arg name ~doc =
  let doc = doc ^ " (unix:PATH or tcp:HOST:PORT)" in
  Arg.(required & opt (some string) None & info [ name ] ~docv:"ADDR" ~doc)

let parse_addr s =
  try Wire.addr_of_string s
  with Invalid_argument msg ->
    Printf.eprintf "chet: %s\n" msg;
    exit 2

let target_name = function Compiler.Seal -> "seal" | Compiler.Heaan -> "heaan"

let net_seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Determinism seed (requests, jitter, faults).")

(* One shard process: a Service behind a socket. The supervisor forks these;
   `chet shard-worker` is also runnable by hand for a single-shard server. *)
let shard_worker_cmd =
  let listen_arg = addr_arg "listen" ~doc:"Address to serve REQ1/HLTH frames on" in
  let shard_arg = Arg.(value & opt int 0 & info [ "shard" ] ~doc:"Shard id stamped into responses.") in
  let domains_arg = Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Worker pool width.") in
  let queue_arg = Arg.(value & opt int 8 & info [ "queue" ] ~doc:"Queue high-water mark.") in
  let inflight_arg =
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~doc:"Socket-level concurrent request cap.")
  in
  let fault_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", `None);
               ("transient", `Transient);
               ("persistent", `Persistent);
               ("silent", `Silent);
             ])
          `None
      & info [ "fault" ]
          ~doc:
            "Inject faults into the primary rung: $(b,transient)/$(b,persistent) NaN-poison (as \
             `chet serve'), or $(b,silent) small-magnitude corruption that evades every per-op \
             screen and is only caught by the sentinel lane (DESIGN.md §16).")
  in
  let sentinel_arg =
    Arg.(
      value & flag
      & info [ "sentinel" ]
          ~doc:
            "Verify every answer with sentinel slots before it leaves the shard (DESIGN.md §16), \
             and answer HLTH selftest probes by running a sentinel-only inference.")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 0.0
      & info [ "slow-ms" ]
          ~doc:
            "Artificially sleep this long inside every primary-rung attempt — makes this shard a \
             predictable straggler for hedging demos (scripts/hedge_smoke.sh).")
  in
  let run () model target listen shard domains queue_hw max_inflight fault want_sentinel slow_ms
      state_dir seed =
    let addr = parse_addr listen in
    let spec = lookup_model model in
    let circuit = spec.Models.build () in
    let sentinel = if want_sentinel then Some (Integrity.spec_for circuit) else None in
    let store = Option.map (fun d -> fst (open_store_verbose d)) state_dir in
    (* warm restart from the shard's own bundle (DESIGN.md §11): a corrupt or
       empty store means cold compile, then persist for the next restart —
       which is exactly what a SIGKILLed-and-respawned worker does *)
    let restored =
      match store with
      | None -> None
      | Some st -> (
          try Bundle.load st ~circuit
          with Herr.Fhe_error ((Herr.Corrupt_bundle _ as e), _) ->
            Printf.eprintf "chet: shard %d: store: %s: %s; cold compile\n" shard
              (Herr.error_name e) (Herr.error_detail e);
            None)
    in
    let compiled =
      match restored with
      | Some l -> l.Bundle.l_bundle.Bundle.b_compiled
      | None ->
          let compiled = Compiler.compile (Compiler.default_options ~target ()) circuit in
          Option.iter
            (fun st ->
              ignore (save_bundle_verbose st (Bundle.build ~with_keys:false compiled ~seed ())))
            store;
          compiled
    in
    let opts = compiled.Compiler.opts in
    let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
    let slots = Compiler.params_n compiled.Compiler.params / 2 in
    let clear () =
      Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false }
    in
    let arm_fault ~req_seed ~attempt base =
      let armed =
        match fault with
        | `None -> None
        | `Transient -> if attempt = 0 then Some Fault.Nan_poison else None
        | `Persistent -> Some Fault.Nan_poison
        | `Silent -> Some Fault.Silent_corruption
      in
      match armed with
      | None -> base
      | Some f ->
          let faulty, _log = Fault.wrap (Fault.default_config ~seed:req_seed (Some f)) base in
          Checked.wrap ~scheme faulty
    in
    let primary_backend ~req_seed ~attempt =
      if slow_ms > 0.0 then Unix.sleepf (slow_ms /. 1000.0);
      arm_fault ~req_seed ~attempt (clear ())
    in
    (* NaN-poison deliberately spares the fallback (the degradation drill:
       primary poisoned, clear rung saves the request), but silent
       corruption models a bad *host* — flaky memory corrupts every rung it
       computes on, so the Integrity_violation escapes to the supervisor
       instead of being healed by degradation *)
    let fallback_backend ~req_seed ~attempt =
      match fault with `Silent -> arm_fault ~req_seed ~attempt (clear ()) | _ -> clear ()
    in
    let ladder =
      [
        {
          Service.dep_label = "primary";
          dep_degraded = false;
          dep_scales = opts.Compiler.scales;
          dep_policy = compiled.Compiler.policy;
          dep_cost_ms = None;
          dep_backend = primary_backend;
          dep_plan = None;
          dep_sentinel = sentinel;
          dep_twin = want_sentinel;
        };
        {
          Service.dep_label = "clear-fallback";
          dep_degraded = true;
          dep_scales = opts.Compiler.scales;
          dep_policy = compiled.Compiler.policy;
          dep_cost_ms = None;
          dep_backend = fallback_backend;
          dep_plan = None;
          dep_sentinel = sentinel;
          dep_twin = want_sentinel;
        };
      ]
    in
    let cfg =
      {
        (Service.default_config ~domains ()) with
        Service.high_water = queue_hw;
        breaker_threshold = 3;
        breaker_cooldown_ms = 500.0;
        backoff_base_ms = 1.0;
        backoff_cap_ms = 10.0;
      }
    in
    let svc = Service.create cfg ~circuit ~ladder in
    Option.iter
      (fun st ->
        match Store.load_state st ~name:"service.state" with
        | Some (Ok s) -> ignore (Service.restore_state svc s)
        | Some (Error e) ->
            Printf.eprintf "chet: shard %d: corrupt service state ignored (%s)\n" shard
              (Herr.error_detail e)
        | None -> ())
      store;
    let srv_cfg =
      {
        (Net_server.default_config ~shard addr) with
        Net_server.srv_max_inflight = max_inflight;
      }
    in
    (* HLTH selftest (DESIGN.md §16): run a sentinel-only probe through the
       same primary backend the suspect answers came from — an armed silent
       fault corrupts the probe too, so the supervisor's confirm step sees
       the same Integrity_violation the client did *)
    let selftest =
      Option.map
        (fun isp () ->
          match
            let module H = (val primary_backend ~req_seed:seed ~attempt:0) in
            let module E = Executor.Make (H) in
            let margin = ref Float.nan in
            let s =
              Integrity.sentinel ~observe:(fun t -> margin := Integrity.margin_bits isp t) isp
            in
            ignore
              (E.run ~sentinel:s ~twin:true opts.Compiler.scales circuit
                 ~policy:compiled.Compiler.policy
                 (Models.input_for spec ~seed));
            !margin
          with
          | m -> Ok m
          | exception Herr.Fhe_error (e, _) -> Error (Herr.error_name e)
          | exception e -> Error (Printexc.to_string e))
        sentinel
    in
    let server = Net_server.start ?selftest srv_cfg svc in
    let stopping = Atomic.make false in
    let install sg =
      try Sys.set_signal sg (Sys.Signal_handle (fun _ -> Atomic.set stopping true))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install Sys.sigint;
    install Sys.sigterm;
    Printf.printf "shard %d: pid %d serving %s on %s%s\n%!" shard (Unix.getpid ()) model listen
      (match restored with Some l -> Printf.sprintf " (warm, gen %d)" l.Bundle.l_generation | None -> " (cold)");
    while not (Atomic.get stopping) do
      Thread.delay 0.05
    done;
    (* graceful drain (DESIGN.md §12): finish what was admitted, answer
       everything new with typed Overloaded, persist learned state, exit 0 *)
    Service.begin_drain svc;
    let drained = Service.drain svc ~timeout_ms:10_000.0 in
    Option.iter
      (fun st -> Store.save_state st ~name:"service.state" (Service.state_to_string svc))
      store;
    Net_server.stop server;
    Service.shutdown svc;
    let st = Net_server.stats server in
    Printf.printf
      "shard %d: graceful shutdown: drained=%b served=%d rejected=%d (corrupt=%d) dedup=%d \
       cancelled=%d\n\
       %!"
      shard drained st.Net_server.srv_served st.Net_server.srv_rejected st.Net_server.srv_corrupt
      st.Net_server.srv_dedup_hits st.Net_server.srv_cancelled;
    exit 0
  in
  Cmd.v
    (Cmd.info "shard-worker"
       ~doc:
         "Serve one model shard over a socket: REQ1 inference frames in, RSP1 answers (or typed \
          errors) out, HLTH pings for the supervisor. SIGTERM drains gracefully and persists \
          state; meant to be forked by `chet supervise' but runnable by hand")
    Term.(
      const run $ kernel_term_serve $ model_arg $ target_arg $ listen_arg $ shard_arg
      $ domains_arg $ queue_arg
      $ inflight_arg $ fault_arg $ sentinel_arg $ slow_ms_arg $ state_dir_arg $ net_seed_arg)

let supervise_cmd =
  let front_arg = addr_arg "front" ~doc:"Front-door address (REQ1 proxy + HLTH control)" in
  let shards_arg = Arg.(value & opt int 2 & info [ "shards" ] ~doc:"Worker processes to fork.") in
  let sock_dir_arg =
    Arg.(
      value & opt string "/tmp/chet-shards"
      & info [ "sock-dir" ] ~doc:"Directory for the per-shard unix sockets (created if absent).")
  in
  let domains_arg = Arg.(value & opt int 2 & info [ "domains" ] ~doc:"Pool width per shard.") in
  let queue_arg = Arg.(value & opt int 8 & info [ "queue" ] ~doc:"Queue high-water per shard.") in
  let duration_arg =
    Arg.(
      value & opt float 0.0
      & info [ "duration-s" ] ~doc:"Exit cleanly after this many seconds (0 = until SIGTERM).")
  in
  let fault_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("none", "none");
               ("transient", "transient");
               ("persistent", "persistent");
               ("silent", "silent");
             ])
          "none"
      & info [ "fault" ]
          ~doc:"Fault mode passed through to the shard workers (see `chet shard-worker --help').")
  in
  let fault_shard_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fault-shard" ]
          ~doc:
            "Pass $(b,--fault) to this one shard only — the deliberate corrupter of the \
             integrity chaos drill (-1 = every shard).")
  in
  let sentinel_arg =
    Arg.(
      value & flag
      & info [ "sentinel" ]
          ~doc:"Pass $(b,--sentinel) to every shard worker (DESIGN.md §16 verified serving).")
  in
  let hedge_ms_arg =
    Arg.(
      value & opt float 0.0
      & info [ "hedge-ms" ]
          ~doc:
            "Duplicate a request to a second healthy shard if the first has not answered within \
             this many milliseconds; the loser is cancelled with a CNCL frame (0 = off).")
  in
  let slow_shard_arg =
    Arg.(
      value & opt int (-1)
      & info [ "slow-shard" ]
          ~doc:"Pass --slow-ms to this one shard only (a deliberate straggler for hedging demos).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 0.0
      & info [ "slow-ms" ] ~doc:"Per-attempt delay injected into the $(b,--slow-shard) worker.")
  in
  let run model target front shards sock_dir domains queue_hw duration_s fault fault_shard
      want_sentinel hedge_ms slow_shard slow_ms state_dir seed =
    let front_addr = parse_addr front in
    (try Unix.mkdir sock_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let shard_addr i = Wire.Unix_sock (Filename.concat sock_dir (Printf.sprintf "shard-%d.sock" i)) in
    let argv_for ~shard ~addr =
      let base =
        [
          "chet"; "shard-worker"; model;
          "--listen"; Wire.addr_to_string addr;
          "--shard"; string_of_int shard;
          "--target"; target_name target;
          "--domains"; string_of_int domains;
          "--queue"; string_of_int queue_hw;
          "--seed"; string_of_int seed;
        ]
      in
      let with_fault =
        if fault <> "none" && (fault_shard < 0 || shard = fault_shard) then
          base @ [ "--fault"; fault ]
        else base
      in
      let with_sentinel = if want_sentinel then with_fault @ [ "--sentinel" ] else with_fault in
      let with_slow =
        if shard = slow_shard && slow_ms > 0.0 then
          with_sentinel @ [ "--slow-ms"; string_of_float slow_ms ]
        else with_sentinel
      in
      let with_store =
        match state_dir with
        | None -> with_slow
        | Some d ->
            with_slow @ [ "--state-dir"; Filename.concat d (Printf.sprintf "shard-%d" shard) ]
      in
      Array.of_list with_store
    in
    let cfg =
      {
        (Supervisor.default_config ~shards ~shard_addr ~front_addr) with
        Supervisor.sup_hedge_delay_s = hedge_ms /. 1000.0;
      }
    in
    let sup = Supervisor.start ~spawn:(Supervisor.exec_spawn ~argv_for) cfg in
    if not (Supervisor.await_ready sup ~timeout_s:60.0 ()) then
      Printf.eprintf "chet: supervisor: not all shards became ready within 60s; serving anyway\n";
    Printf.printf "supervisor: pid %d, %d shard(s), front %s, sockets in %s\n%!" (Unix.getpid ())
      shards front sock_dir;
    let stopping = Atomic.make false in
    let install sg =
      try Sys.set_signal sg (Sys.Signal_handle (fun _ -> Atomic.set stopping true))
      with Invalid_argument _ | Sys_error _ -> ()
    in
    install Sys.sigint;
    install Sys.sigterm;
    let started = Unix.gettimeofday () in
    while
      (not (Atomic.get stopping))
      && (duration_s <= 0.0 || Unix.gettimeofday () -. started < duration_s)
    do
      Thread.delay 0.1
    done;
    Supervisor.stop sup;
    print_string (Supervisor.metrics_snapshot sup);
    Printf.printf "supervisor: clean shutdown\n%!";
    exit 0
  in
  Cmd.v
    (Cmd.info "supervise"
       ~doc:
         "Fork N `shard-worker' processes (each warm-restarting from its own store bundle), \
          health-check them, restart crashes with capped backoff, and proxy REQ1 traffic around \
          down shards. The front door also answers HLTH control frames (ping / report / kill N)")
    Term.(
      const run $ model_arg $ target_arg $ front_arg $ shards_arg $ sock_dir_arg $ domains_arg
      $ queue_arg $ duration_arg $ fault_arg $ fault_shard_arg $ sentinel_arg $ hedge_ms_arg
      $ slow_shard_arg $ slow_ms_arg $ state_dir_arg $ net_seed_arg)

let loadgen_cmd =
  let addr_arg = addr_arg "addr" ~doc:"Target address (a shard, or the supervisor front door)" in
  let requests_arg = Arg.(value & opt int 50 & info [ "requests" ] ~doc:"Total requests.") in
  let concurrency_arg =
    Arg.(value & opt int 4 & info [ "concurrency" ] ~doc:"Concurrent client threads.")
  in
  let fault_every_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-every" ]
          ~doc:
            "Mangle every k-th request on the wire, rotating truncated frame / bit flip / \
             stalled send (0 = off). Mangled attempts must come back as typed errors and \
             succeed on retry.")
  in
  let deadline_arg =
    Arg.(value & opt float 30000.0 & info [ "deadline-ms" ] ~doc:"Per-request deadline budget.")
  in
  let retries_arg =
    Arg.(value & opt int 5 & info [ "retries" ] ~doc:"Client retry budget per request.")
  in
  let kill_after_arg =
    Arg.(
      value & opt (some int) None
      & info [ "kill-after" ]
          ~doc:"After this many completions, SIGKILL --kill-shard via --control (chaos drill).")
  in
  let kill_shard_arg =
    Arg.(value & opt int 0 & info [ "kill-shard" ] ~doc:"Shard id for --kill-after.")
  in
  let control_arg =
    Arg.(
      value & opt (some string) None
      & info [ "control" ] ~docv:"ADDR" ~doc:"Supervisor control address for --kill-after.")
  in
  let bench_arg =
    Arg.(
      value & opt (some string) None
      & info [ "bench-out" ] ~docv:"FILE"
          ~doc:"Merge throughput and p50/p95/p99 latency under the `loadgen' key of this BENCH.json.")
  in
  let verify_arg =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Re-verify every answer's sentinel lane client-side against the clear reference \
             (DESIGN.md §16) — independent of the shard's own check. Requires the target to \
             serve with $(b,--sentinel); exits 5 if any answer fails the re-check.")
  in
  let run model addr requests concurrency fault_every deadline_ms retries kill_after kill_shard
      control bench_out verify seed =
    let spec = lookup_model model in
    let shape = (Models.input_for spec ~seed:0).T.shape in
    (* client-side sentinel re-verification: the loadgen never trusts the
       shard's margin claim — it recomputes the deviation from the clear
       probe reference on the returned lane *)
    let lg_verify =
      if not verify then None
      else begin
        let circuit = spec.Models.build () in
        let isp = Integrity.spec_for circuit in
        let ref_shape = isp.Integrity.it_expected.T.shape in
        let numel = Array.fold_left ( * ) 1 ref_shape in
        Some
          (fun lane ->
            Array.length lane = numel
            && Integrity.margin_bits isp (T.of_array ref_shape lane) > 0.0)
      end
    in
    let kill_at =
      match (kill_after, control) with
      | Some after, Some c -> Some (parse_addr c, after, kill_shard)
      | Some _, None ->
          Printf.eprintf "chet: loadgen: --kill-after needs --control\n";
          exit 2
      | None, _ -> None
    in
    let cfg =
      {
        (Loadgen.default_config ~addr:(parse_addr addr) ~shape) with
        Loadgen.lg_total = requests;
        lg_concurrency = concurrency;
        lg_deadline_ms = deadline_ms;
        lg_seed = seed;
        lg_retries = retries;
        lg_fault_every = fault_every;
        lg_kill_at = kill_at;
        lg_verify;
      }
    in
    let r = Loadgen.run cfg in
    Format.printf "%a" Loadgen.pp r;
    Option.iter
      (fun path ->
        Loadgen.write_bench ~path r;
        Printf.printf "wrote %s\n" path)
      bench_out;
    (* every request must have gotten *an* answer by construction; zero
       successes against a live target is still a failed drill *)
    if r.Loadgen.r_ok = 0 then exit 4;
    (* --verify: an answer that fails the independent client-side re-check
       is a corruption that escaped the whole guard stack — never tolerable *)
    if r.Loadgen.r_client_rejected > 0 then exit 5
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive concurrent REQ1 traffic at a shard or supervisor, optionally mangling frames on \
          the wire and SIGKILLing a shard mid-run, and report typed-error counts, throughput and \
          latency percentiles")
    Term.(
      const run $ model_arg $ addr_arg $ requests_arg $ concurrency_arg $ fault_every_arg
      $ deadline_arg $ retries_arg $ kill_after_arg $ kill_shard_arg $ control_arg $ bench_arg
      $ verify_arg $ net_seed_arg)

let () =
  let info = Cmd.info "chet" ~doc:"CHET: an optimizing compiler for FHE neural-network inference" in
  let code =
    (* top-level handler: every typed failure mode renders its full context
       as a structured one-liner (never a raw backtrace) and maps to a
       distinct exit code — 2 usage, 3 compile, 4 runtime *)
    try
      match
        Cmd.eval ~catch:false
          (Cmd.group info
             [
               models_cmd; compile_cmd; run_cmd; scales_cmd; serve_cmd; profile_cmd; trace_cmd;
               store_cmd; shard_worker_cmd; supervise_cmd; loadgen_cmd;
             ])
      with
      | c when c = Cmd.Exit.cli_error -> 2 (* cmdliner usage error *)
      | c -> c
    with
    | Herr.Fhe_error (e, c) ->
        Printf.eprintf "chet: %s\n" (Herr.to_string (e, c));
        4
    | Compiler.Compilation_failure msg ->
        Printf.eprintf "chet: compilation failed: %s\n" msg;
        3
    | Chet_crypto.Serial.Corrupt msg ->
        Printf.eprintf "chet: corrupt payload: %s\n" msg;
        4
    | Unix.Unix_error (e, fn, arg) ->
        (* e.g. --state-dir pointing at a regular file, or no permission *)
        Printf.eprintf "chet: %s: %s (%s)\n" arg (Unix.error_message e) fn;
        4
    | Sys_error msg ->
        Printf.eprintf "chet: %s\n" msg;
        4
  in
  exit code
