(* Workload plumbing shared by the table/figure reproductions: compilation
   and simulation-run caching, and latency under either rotation-key
   configuration (computed from one cached run). *)

module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Executor = Chet_runtime.Executor
module Models = Chet_nn.Models
module Sim = Chet_hisa.Sim_backend
module Instrument = Chet_hisa.Instrument
module Hisa = Chet_hisa.Hisa

let opts_for target = Compiler.default_options ~target ()

let compile_cache : (string * Compiler.target, Compiler.compiled) Hashtbl.t = Hashtbl.create 16

let compiled_for target (spec : Models.spec) =
  match Hashtbl.find_opt compile_cache (spec.Models.model_name, target) with
  | Some c -> c
  | None ->
      let c = Compiler.compile (opts_for target) (spec.Models.build ()) in
      Hashtbl.add compile_cache (spec.Models.model_name, target) c;
      c

type key_config = Selected | Pow2_only

type cost_kind =
  | Calibrated  (** the shipped measured constants *)
  | Theory  (** raw Table-1 asymptotics, constant 1 per op class *)
  | Loaded  (** constants from a --cost-file calibration (this machine) *)

(* Set once at startup from --cost-file, before any cached run — [Loaded] is
   part of the run-cache key, so a late mutation would poison nothing but
   still be confusing. *)
let loaded_calibration : Cost_model.calibration option ref = ref None

type sim_run = {
  base_latency : float;
  rotate_elapsed : float;
  rotate_count : int;
  slots : int;
  counters : Instrument.counters;
}

let run_cache : (string * Compiler.target * Executor.layout_policy * cost_kind, sim_run) Hashtbl.t =
  Hashtbl.create 64

let costs_for kind target =
  match (kind, target) with
  | Calibrated, Compiler.Seal -> Cost_model.seal ()
  | Calibrated, Compiler.Heaan -> Cost_model.heaan ()
  | Theory, Compiler.Seal -> Hisa.rns_cost_model ()
  | Theory, Compiler.Heaan -> Hisa.ckks_cost_model ()
  | Loaded, t ->
      let cal = Option.value !loaded_calibration ~default:Cost_model.default_calibration in
      Cost_model.model_for (match t with Compiler.Seal -> `Seal | Compiler.Heaan -> `Heaan) cal

(* One simulated inference under [policy] with the given parameters. *)
let sim_run ?(kind = Calibrated) target (spec : Models.spec) ~policy ~params =
  let key = (spec.Models.model_name, target, policy, kind) in
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
      let opts = opts_for target in
      let circuit = spec.Models.build () in
      let sim, clock =
        Sim.make
          {
            Sim.n = Compiler.params_n params;
            scheme = Compiler.scheme_of_params opts params;
            costs = costs_for kind target;
          }
      in
      let backend, counters = Instrument.wrap sim in
      let module H = (val backend : Hisa.S) in
      let module E = Executor.Make (H) in
      let image = Models.input_for spec ~seed:1 in
      ignore (E.run opts.Compiler.scales circuit ~policy image);
      let r =
        {
          base_latency = clock.Sim.elapsed;
          rotate_elapsed = clock.Sim.rotate_elapsed;
          rotate_count = clock.Sim.rotate_count;
          slots = Compiler.params_n params / 2;
          counters;
        }
      in
      Hashtbl.add run_cache key r;
      r

(* Latency under a rotation-key configuration. Under [Pow2_only] every
   rotation is charged its power-of-two decomposition length (§2.4's default
   behaviour) at this run's average rotation cost. *)
let latency run ~keys =
  match keys with
  | Selected -> run.base_latency
  | Pow2_only ->
      if run.rotate_count = 0 then run.base_latency
      else begin
        let decomposed =
          Hashtbl.fold
            (fun amount uses acc ->
              acc + (uses * Bench_util.pow2_rotation_count ~slots:run.slots amount))
            run.counters.Instrument.rotation_counts 0
        in
        let avg_rot = run.rotate_elapsed /. float_of_int run.rotate_count in
        run.base_latency +. (float_of_int (decomposed - run.rotate_count) *. avg_rot)
      end

let sim_latency ?(keys = Selected) ?kind target spec ~policy ~params =
  latency (sim_run ?kind target spec ~policy ~params) ~keys

let best_policy_run ?kind target spec =
  let compiled = compiled_for target spec in
  sim_run ?kind target spec ~policy:compiled.Compiler.policy ~params:compiled.Compiler.params

let best_policy_latency ?(keys = Selected) target spec = latency (best_policy_run target spec) ~keys

(* The "Manual-HEAAN" baseline of Figure 5: an expert's typical hand-written
   starting point — HW layout everywhere (as in the paper's hand-written
   LeNet baselines), scheme-default power-of-two rotation keys, and HEAAN
   parameters selected for that layout. *)
let manual_heaan_latency spec =
  let opts = opts_for Compiler.Heaan in
  let params = Compiler.select_params opts (spec.Models.build ()) ~policy:Executor.All_hw in
  latency (sim_run Compiler.Heaan spec ~policy:Executor.All_hw ~params) ~keys:Pow2_only

(* ------------------------------------------------------------------ *)
(* Serving-layer sweep: queue depth vs tail latency and shed rate      *)
(* ------------------------------------------------------------------ *)

module Service = Chet_serve.Service
module Clear = Chet_hisa.Clear_backend

type serve_point = {
  sv_high_water : int;
  sv_submitted : int;
  sv_shed : int;
  sv_succeeded : int;
  sv_p50_ms : float;
  sv_p95_ms : float;
  sv_p99_ms : float;
}

(* One burst of [burst] requests submitted back-to-back against a pool of
   [domains] workers serving the micro network on the cleartext backend at
   the compiled parameters — the serving layer's control-plane costs
   (queueing, shedding, retry/breaker bookkeeping) measured without the
   multi-second FHE data plane drowning them out. Every request that is
   admitted must finish [Ok]; the sweep varies only the queue's high-water
   mark, so the shed-rate column is the direct picture of admission control
   under a fixed burst. *)
let serve_sweep ?(domains = 2) ?(burst = 48) ~high_waters () =
  let spec = Models.micro in
  let circuit = spec.Models.build () in
  let opts = opts_for Compiler.Seal in
  let compiled = compiled_for Compiler.Seal spec in
  let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
  let slots = Compiler.params_n compiled.Compiler.params / 2 in
  let dep =
    {
      Service.dep_label = "clear";
      dep_degraded = false;
      dep_scales = opts.Compiler.scales;
      dep_policy = compiled.Compiler.policy;
      dep_cost_ms = None;
      dep_backend =
        (fun ~req_seed:_ ~attempt:_ ->
          Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false });
      dep_plan = None;
      dep_sentinel = None;
      dep_twin = false;
    }
  in
  let images = Array.init burst (fun i -> Models.input_for spec ~seed:(9000 + i)) in
  List.map
    (fun high_water ->
      let cfg = { (Service.default_config ~domains ()) with Service.high_water } in
      let svc = Service.create cfg ~circuit ~ladder:[ dep ] in
      let outcomes =
        Fun.protect
          ~finally:(fun () -> Service.shutdown svc)
          (fun () ->
            let tickets =
              Array.to_list (Array.mapi (fun i img -> Service.submit svc ~seed:i img) images)
            in
            List.map (Service.await svc) tickets)
      in
      List.iter
        (fun (o : Service.outcome) ->
          match o.Service.out_result with
          | Ok _ | Error (Chet_hisa.Herr.Overloaded _, _) -> ()
          | Error (e, c) ->
              failwith
                (Printf.sprintf "serve sweep: unexpected failure: %s"
                   (Chet_hisa.Herr.to_string (e, c))))
        outcomes;
      let s = Service.stats svc in
      (* tail latency over the *served* requests; shed rejections return in
         microseconds and would only flatter the percentiles *)
      let lat =
        Array.of_list
          (List.filter_map
             (fun (o : Service.outcome) ->
               match o.Service.out_result with
               | Ok _ -> Some o.Service.out_total_ms
               | Error _ -> None)
             outcomes)
      in
      {
        sv_high_water = high_water;
        sv_submitted = s.Service.s_submitted;
        sv_shed = s.Service.s_shed;
        sv_succeeded = s.Service.s_succeeded;
        sv_p50_ms = Service.percentile lat 50.0;
        sv_p95_ms = Service.percentile lat 95.0;
        sv_p99_ms = Service.percentile lat 99.0;
      })
    high_waters
