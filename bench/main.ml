(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6). See EXPERIMENTS.md for paper-vs-measured records.

     dune exec bench/main.exe                 all tables and figures
     dune exec bench/main.exe -- --table 5    one table
     dune exec bench/main.exe -- --fast       small-network subset
     dune exec bench/main.exe -- --calibrate  refit cost-model constants *)

module Compiler = Chet.Compiler
module Cost_model = Chet.Cost_model
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels
module Models = Chet_nn.Models
module Circuit = Chet_nn.Circuit
module Opcount = Chet_nn.Opcount
module Reference = Chet_nn.Reference
module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Rns = Chet_crypto.Rns_ckks
module Big = Chet_crypto.Big_ckks
module Sampling = Chet_crypto.Sampling
module T = Chet_tensor.Tensor
open Bench_util

let fast = ref false
let networks () = if !fast then [ Models.lenet5_small; Models.lenet5_medium ] else Models.all

(* ------------------------------------------------------------------ *)
(* Table 1: asymptotic costs of HISA ops, microbenchmarked              *)
(* ------------------------------------------------------------------ *)

let rns_ops ~n ~primes =
  let params = Rns.default_params ~n ~bits:30 ~num_coeff_primes:primes () in
  let ctx = Rns.make_context params in
  let rng = Sampling.create ~seed:1 in
  let sk, keys = Rns.keygen ctx rng in
  Rns.add_rotation_key ctx rng sk keys 1;
  let scale = 1073741824.0 in
  let v = Array.init (Rns.slot_count ctx) (fun i -> 0.001 *. float_of_int (i mod 100)) in
  let pt = Rns.encode_real ctx ~level:(Rns.max_level ctx) ~scale v in
  let a = Rns.encrypt ctx rng keys.Rns.public pt in
  let b = Rns.encrypt ctx rng keys.Rns.public pt in
  [
    ("add", fun () -> ignore (Rns.add ctx a b));
    ("mulScalar", fun () -> ignore (Rns.mul_scalar ctx a 1.5 ~scale));
    ("mulPlain", fun () -> ignore (Rns.mul_plain ctx a pt));
    ("mul", fun () -> ignore (Rns.mul ctx keys a b));
    ("rotate", fun () -> ignore (Rns.rotate ctx keys a 1));
  ]

let heaan_ops ~n ~log_fresh =
  let params = Big.default_params ~n ~log_fresh () in
  let ctx = Big.make_context params in
  let rng = Sampling.create ~seed:2 in
  let sk, keys = Big.keygen ctx rng in
  Big.add_rotation_key ctx rng sk keys 1;
  ignore sk;
  let scale = 1073741824.0 in
  let v = Array.init (Big.slot_count ctx) (fun i -> 0.001 *. float_of_int (i mod 100)) in
  let pt = Big.encode_real ctx ~logq:log_fresh ~scale v in
  let a = Big.encrypt ctx rng keys.Big.public pt in
  let b = Big.encrypt ctx rng keys.Big.public pt in
  [
    ("add", fun () -> ignore (Big.add ctx a b));
    ("mulScalar", fun () -> ignore (Big.mul_scalar ctx a 1.5 ~scale));
    ("mulPlain", fun () -> ignore (Big.mul_plain ctx a pt));
    ("mul", fun () -> ignore (Big.mul ctx keys a b));
    ("rotate", fun () -> ignore (Big.rotate ctx keys a 1));
  ]

let rns_sizes () = if !fast then [ (2048, 4) ] else [ (2048, 4); (4096, 4); (4096, 8); (8192, 8) ]
let heaan_sizes () = if !fast then [ (1024, 120) ] else [ (1024, 120); (2048, 120); (2048, 240) ]

let measure_rns () =
  List.concat_map
    (fun (n, r) ->
      let tests = rns_ops ~n ~primes:r in
      List.map (fun (op, ns) -> ((n, r), op, ns)) (bechamel_ns ~quota:0.25 tests))
    (rns_sizes ())

let measure_heaan () =
  List.concat_map
    (fun (n, lq) ->
      let tests = heaan_ops ~n ~log_fresh:lq in
      List.map (fun (op, ns) -> ((n, lq), op, ns)) (bechamel_ns ~quota:0.25 tests))
    (heaan_sizes ())

let table1 () =
  print_endline "\n===== Table 1: HISA operation costs (measured, real backends) =====";
  let rows measured fmt_size =
    List.map (fun (size, op, ns) -> [ fmt_size size; op; Printf.sprintf "%.1f us" (ns /. 1e3) ]) measured
  in
  let rns = measure_rns () in
  print_table ~title:"RNS-CKKS (our SEAL-v3.1 stand-in)"
    ~headers:[ "(N, r)"; "op"; "time" ]
    (rows rns (fun (n, r) -> Printf.sprintf "(%d, %d)" n r));
  let heaan = measure_heaan () in
  print_table ~title:"CKKS (our HEAAN-v1.0 stand-in)"
    ~headers:[ "(N, logQ)"; "op"; "time" ]
    (rows heaan (fun (n, lq) -> Printf.sprintf "(%d, %d)" n lq));
  let op_points label2 measured =
    Jsonx.Arr
      (List.map
         (fun ((n, x), op, ns) ->
           Jsonx.Obj
             [
               ("n", Jsonx.Num (float_of_int n));
               (label2, Jsonx.Num (float_of_int x));
               ("op", Jsonx.Str op);
               ("ns_per_run", Jsonx.Num ns);
             ])
         measured)
  in
  add_json "table1"
    (Jsonx.Obj [ ("rns", op_points "r" rns); ("heaan", op_points "log_q" heaan) ]);
  (* scaling sanity: ciphertext mul should grow superlinearly in r; add
     roughly linearly — the shape Table 1 predicts *)
  let find sz op l = List.find_opt (fun (s, o, _) -> s = sz && o = op) l in
  (match (find (4096, 4) "mul" rns, find (4096, 8) "mul" rns, find (4096, 4) "add" rns, find (4096, 8) "add" rns) with
  | Some (_, _, m4), Some (_, _, m8), Some (_, _, a4), Some (_, _, a8) ->
      Printf.printf "\nscaling r=4 -> r=8 at N=4096: mul x%.1f (model: x4 from r^2), add x%.1f (model: x2 from r)\n"
        (m8 /. m4) (a8 /. a4)
  | _ -> ())

let calibrate () =
  print_endline "\n===== Cost-model calibration (paste into lib/core/cost_model.ml) =====";
  let logf n = log (float_of_int n) /. log 2.0 in
  let rns = measure_rns () in
  let env_of_rns (n, r) = { Hisa.env_n = n; env_r = r; env_log_q = 0 } in
  let samples op = List.filter_map (fun (sz, o, ns) -> if o = op then Some (env_of_rns sz, ns /. 1e9) else None) rns in
  let lin e = float_of_int e.Hisa.env_n *. float_of_int e.Hisa.env_r in
  let quad e = float_of_int e.Hisa.env_n *. logf e.Hisa.env_n *. float_of_int (e.Hisa.env_r * e.Hisa.env_r) in
  Printf.printf "SEAL: k_add=%.2e k_scalar_mul=%.2e k_plain_mul=%.2e k_cipher_mul=%.2e k_rotate=%.2e\n"
    (Cost_model.fit_constant lin (samples "add"))
    (Cost_model.fit_constant lin (samples "mulScalar"))
    (Cost_model.fit_constant lin (samples "mulPlain"))
    (Cost_model.fit_constant quad (samples "mul"))
    (Cost_model.fit_constant quad (samples "rotate"));
  let heaan = measure_heaan () in
  let env_of_h (n, lq) = { Hisa.env_n = n; env_r = 0; env_log_q = lq } in
  let hsamples op = List.filter_map (fun (sz, o, ns) -> if o = op then Some (env_of_h sz, ns /. 1e9) else None) heaan in
  let m_q e = float_of_int e.Hisa.env_log_q ** 1.58 /. 64.0 in
  let h_lin e = float_of_int e.Hisa.env_n *. float_of_int e.Hisa.env_log_q in
  let h_scal e = float_of_int e.Hisa.env_n *. m_q e in
  let h_nlog e = float_of_int e.Hisa.env_n *. logf e.Hisa.env_n *. m_q e in
  Printf.printf "HEAAN: k_add=%.2e k_scalar_mul=%.2e k_plain_mul=%.2e k_cipher_mul=%.2e k_rotate=%.2e\n"
    (Cost_model.fit_constant h_lin (hsamples "add"))
    (Cost_model.fit_constant h_scal (hsamples "mulScalar"))
    (Cost_model.fit_constant h_nlog (hsamples "mulPlain"))
    (Cost_model.fit_constant h_nlog (hsamples "mul"))
    (Cost_model.fit_constant h_nlog (hsamples "rotate"))

(* ------------------------------------------------------------------ *)
(* Table 3: networks                                                    *)
(* ------------------------------------------------------------------ *)

let fidelity spec =
  (* encrypted-vs-cleartext max abs output error under the compiled SEAL
     configuration (replaces the accuracy column — DESIGN.md §2) *)
  let compiled = Workloads.compiled_for Compiler.Seal spec in
  let opts = Workloads.opts_for Compiler.Seal in
  let n = Compiler.params_n compiled.Compiler.params in
  let backend =
    Clear.make
      {
        Clear.slots = n / 2;
        scheme = Compiler.scheme_of_params opts compiled.Compiler.params;
        strict_modulus = false;
        encode_noise = true;
      }
  in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let circuit = spec.Models.build () in
  let image = Models.input_for spec ~seed:7 in
  let got = E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image in
  T.max_abs_diff (T.flatten (Reference.eval circuit image)) (T.flatten got)

let table3 () =
  print_endline "\n===== Table 3: networks =====";
  let rows =
    List.map
      (fun spec ->
        let circuit = spec.Models.build () in
        let conv, fc, act = Circuit.layer_counts circuit in
        [
          spec.Models.model_name;
          string_of_int conv;
          string_of_int fc;
          string_of_int act;
          string_of_int (Opcount.count circuit).Opcount.total;
          Printf.sprintf "%.4f" (fidelity spec);
        ])
      (networks ())
  in
  print_table ~title:"networks (fidelity = max |enc - clear| output error, replaces accuracy)"
    ~headers:[ "Network"; "Conv"; "FC"; "Act"; "# FP ops"; "fidelity" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table 4: parameters selected by CHET-HEAAN                           *)
(* ------------------------------------------------------------------ *)

let table4 () =
  print_endline "\n===== Table 4: encryption parameters selected by CHET-HEAAN =====";
  let s = Kernels.default_scales in
  let log2i v = int_of_float (Float.round (log (float_of_int v) /. log 2.0)) in
  let rows =
    List.map
      (fun spec ->
        let compiled = Workloads.compiled_for Compiler.Heaan spec in
        match compiled.Compiler.params with
        | Compiler.Pow2_params { n; log_fresh; _ } ->
            [
              spec.Models.model_name;
              string_of_int n;
              string_of_int log_fresh;
              Printf.sprintf "%d %d %d %d" (log2i s.Kernels.pc) (log2i s.Kernels.pw)
                (log2i s.Kernels.pu) (log2i s.Kernels.pm);
            ]
        | Compiler.Rns_params _ -> assert false)
      (networks ())
  in
  print_table ~title:"(legacy-HEAAN security model, as in the paper's baselines)"
    ~headers:[ "Network"; "N"; "log Q"; "log(Pc Pw Pu Pm)" ]
    rows;
  (* companion: CHET-SEAL parameters at standard 128-bit security, analysed
     both with the executable backend's 30-bit primes and with the paper's
     SEAL-style 60-bit candidate list (DESIGN.md §2) *)
  let seal_rows =
    List.map
      (fun spec ->
        let circuit = spec.Models.build () in
        let with_bits prime_bits =
          (* the fixed-point scales must sit near the prime size (§5.5):
             with 60-bit primes a rescale only fires once two layers of
             scale have accumulated, so the working profile differs *)
          let scales =
            if prime_bits > 31 then
              { Kernels.pc = 1 lsl 30; pw = 1 lsl 24; pu = 1 lsl 24; pm = 1 lsl 6 }
            else Kernels.default_scales
          in
          let opts = { (Workloads.opts_for Compiler.Seal) with Compiler.prime_bits; scales } in
          let compiled_policy = (Workloads.compiled_for Compiler.Seal spec).Compiler.policy in
          try
            let p = Compiler.select_params opts circuit ~policy:compiled_policy in
            (string_of_int (Compiler.params_n p), string_of_int (Compiler.params_log_q p))
          with Compiler.Compilation_failure _ ->
            (* scale runaway between rescale opportunities: the interplay the
               paper's §5.5 profile-guided search exists to fix *)
            ("n/a", "n/a")
        in
        let n30, q30 = with_bits 30 and n60, q60 = with_bits 60 in
        [ spec.Models.model_name; n30; q30; n60; q60 ])
      (networks ())
  in
  print_table ~title:"companion: CHET-SEAL, standard 128-bit security"
    ~headers:[ "Network"; "N (30-bit primes)"; "logQ"; "N (60-bit primes)"; "logQ" ]
    seal_rows

(* ------------------------------------------------------------------ *)
(* Tables 5 & 6: latency per data layout                                *)
(* ------------------------------------------------------------------ *)

let layout_table target title =
  let rows =
    List.map
      (fun spec ->
        let compiled = Workloads.compiled_for target spec in
        let cells =
          List.map
            (fun report ->
              let l =
                Workloads.sim_latency target spec ~policy:report.Compiler.pr_policy
                  ~params:report.Compiler.pr_params
              in
              let mark = if report.Compiler.pr_policy = compiled.Compiler.policy then "*" else "" in
              fmt_seconds l ^ mark)
            compiled.Compiler.reports
        in
        spec.Models.model_name :: cells)
      (networks ())
  in
  print_table ~title ~headers:[ "Network"; "HW"; "CHW"; "HW-conv CHW-rest"; "CHW-fc HW-before" ] rows

let table5 () =
  print_endline "\n===== Table 5: simulated latency (s) per layout, CHET-SEAL =====";
  layout_table Compiler.Seal "(* marks the layout the compiler selected)"

let table6 () =
  print_endline "\n===== Table 6: simulated latency (s) per layout, CHET-HEAAN =====";
  layout_table Compiler.Heaan "(* marks the layout the compiler selected)"

(* ------------------------------------------------------------------ *)
(* Figure 5: CHET-SEAL vs CHET-HEAAN vs Manual-HEAAN                    *)
(* ------------------------------------------------------------------ *)

let figure5 () =
  print_endline "\n===== Figure 5: average inference latency (s) =====";
  let points = ref [] in
  let rows =
    List.map
      (fun spec ->
        let seal = Workloads.best_policy_latency Compiler.Seal spec in
        let heaan = Workloads.best_policy_latency Compiler.Heaan spec in
        let manual = Workloads.manual_heaan_latency spec in
        points :=
          Jsonx.Obj
            [
              ("network", Jsonx.Str spec.Models.model_name);
              ("chet_seal_s", Jsonx.Num seal);
              ("chet_heaan_s", Jsonx.Num heaan);
              ("manual_heaan_s", Jsonx.Num manual);
            ]
          :: !points;
        [
          spec.Models.model_name;
          fmt_seconds seal;
          fmt_seconds heaan;
          fmt_seconds manual;
          Printf.sprintf "%.1fx" (manual /. heaan);
        ])
      (networks ())
  in
  add_json "figure5" (Jsonx.Arr (List.rev !points));
  print_table ~title:"simulated latencies (calibrated clock)"
    ~headers:[ "Network"; "CHET-SEAL"; "CHET-HEAAN"; "Manual-HEAAN"; "manual/CHET" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 6: estimated cost vs observed latency                         *)
(* ------------------------------------------------------------------ *)

let figure6 () =
  print_endline "\n===== Figure 6: estimated cost vs observed latency =====";
  (* estimated: the compiler's *uncalibrated* asymptotic model (§5.3);
     observed: the calibrated simulation clock. These use different constants
     per op class, so agreement is informative. With --cost-file, every
     point is additionally estimated under the machine's profiled constants
     — a useful calibration correlates at least as well as the frozen
     asymptotic baseline. *)
  let with_cal = !Workloads.loaded_calibration <> None in
  let points = ref [] in
  List.iter
    (fun target ->
      List.iter
        (fun spec ->
          let compiled = Workloads.compiled_for target spec in
          List.iter
            (fun report ->
              let lat kind =
                Workloads.sim_latency ~kind target spec ~policy:report.Compiler.pr_policy
                  ~params:report.Compiler.pr_params
              in
              let estimated = lat Workloads.Theory in
              let est_cal = if with_cal then Some (lat Workloads.Loaded) else None in
              let observed = lat Workloads.Calibrated in
              points := (spec.Models.model_name, target, estimated, est_cal, observed) :: !points)
            compiled.Compiler.reports)
        (networks ()))
    [ Compiler.Seal; Compiler.Heaan ];
  let pts = List.rev !points in
  let rows =
    List.map
      (fun (name, target, est, est_cal, obs) ->
        [
          name;
          (match target with Compiler.Seal -> "SEAL" | Compiler.Heaan -> "HEAAN");
          Printf.sprintf "%.3g" est;
          (match est_cal with Some e -> fmt_seconds e | None -> "-");
          fmt_seconds obs;
        ])
      pts
  in
  print_table ~title:"per (network, scheme, layout) point"
    ~headers:[ "Network"; "scheme"; "estimated cost"; "est. calibrated (s)"; "observed (s)" ]
    rows;
  let arr f = Array.of_list (List.map f pts) in
  let obs = arr (fun (_, _, _, _, o) -> log o) in
  let est = arr (fun (_, _, e, _, _) -> log e) in
  let r_theory = pearson est obs and rho_theory = spearman est obs in
  Printf.printf "\nlog-log Pearson r = %.3f, Spearman rho = %.3f over %d points\n" r_theory
    rho_theory (Array.length est);
  let cal_stats =
    if not with_cal then []
    else begin
      let est_c = arr (fun (_, _, _, ec, _) -> log (Option.get ec)) in
      let r_cal = pearson est_c obs and rho_cal = spearman est_c obs in
      Printf.printf
        "calibrated estimates: Pearson r = %.3f, Spearman rho = %.3f (baseline r = %.3f)\n" r_cal
        rho_cal r_theory;
      [ ("pearson_calibrated", Jsonx.Num r_cal); ("spearman_calibrated", Jsonx.Num rho_cal) ]
    end
  in
  let json_points =
    List.map
      (fun (name, target, e, ec, o) ->
        Jsonx.Obj
          ([
             ("network", Jsonx.Str name);
             ( "scheme",
               Jsonx.Str (match target with Compiler.Seal -> "seal" | Compiler.Heaan -> "heaan") );
             ("estimated", Jsonx.Num e);
             ("observed_s", Jsonx.Num o);
           ]
          @ match ec with Some e -> [ ("estimated_calibrated_s", Jsonx.Num e) ] | None -> []))
      pts
  in
  add_json "figure6"
    (Jsonx.Obj
       ([
          ("points", Jsonx.Arr json_points);
          ("pearson_log_log", Jsonx.Num r_theory);
          ("spearman", Jsonx.Num rho_theory);
        ]
       @ cal_stats))

(* ------------------------------------------------------------------ *)
(* Figure 7: rotation-keys selection speedup                            *)
(* ------------------------------------------------------------------ *)

let figure7 () =
  print_endline "\n===== Figure 7: speedup of selected rotation keys over power-of-two keys =====";
  let speedups = ref [] in
  let rows =
    List.concat_map
      (fun target ->
        List.map
          (fun spec ->
            let sel = Workloads.best_policy_latency ~keys:Workloads.Selected target spec in
            let pow2 = Workloads.best_policy_latency ~keys:Workloads.Pow2_only target spec in
            let speedup = pow2 /. sel in
            speedups := speedup :: !speedups;
            [
              spec.Models.model_name;
              (match target with Compiler.Seal -> "CHET-SEAL" | Compiler.Heaan -> "CHET-HEAAN");
              fmt_seconds pow2;
              fmt_seconds sel;
              Printf.sprintf "%.2fx" speedup;
            ])
          (networks ()))
      [ Compiler.Seal; Compiler.Heaan ]
  in
  print_table ~title:"simulated latency with each key configuration"
    ~headers:[ "Network"; "scheme"; "pow2 keys (s)"; "selected keys (s)"; "speedup" ]
    rows;
  let geo =
    exp (List.fold_left (fun acc s -> acc +. log s) 0.0 !speedups /. float_of_int (List.length !speedups))
  in
  Printf.printf "\ngeometric-mean speedup: %.2fx (paper: 1.8x)\n" geo

(* ------------------------------------------------------------------ *)
(* Depth sweep: parameter growth with multiplicative depth              *)
(* ------------------------------------------------------------------ *)

let depth_sweep () =
  print_endline "\n===== Depth sweep: selected parameters vs multiplicative depth =====";
  (* squaring chains of increasing depth on a small image; the selected
     (N, logQ) should grow in the staircase pattern the security table
     imposes — the mechanism behind Table 4's growth with network depth *)
  let chain_circuit depth =
    let b = Circuit.builder () in
    let x = ref (Circuit.input b ~name:"x" [| 1; 8; 8 |]) in
    for _ = 1 to depth do
      x := Circuit.square b !x
    done;
    Circuit.finish b ~name:(Printf.sprintf "chain-%d" depth) ~output:!x
  in
  let rows =
    List.map
      (fun depth ->
        let circuit = chain_circuit depth in
        let seal =
          Compiler.select_params (Workloads.opts_for Compiler.Seal) circuit
            ~policy:Executor.All_hw
        in
        let heaan =
          Compiler.select_params (Workloads.opts_for Compiler.Heaan) circuit
            ~policy:Executor.All_hw
        in
        [
          string_of_int depth;
          string_of_int (Compiler.params_n seal);
          string_of_int (Compiler.params_log_q seal);
          string_of_int (Compiler.params_n heaan);
          string_of_int (Compiler.params_log_q heaan);
        ])
      [ 1; 2; 4; 6; 8; 10; 12 ]
  in
  print_table ~title:"squaring chains (SEAL standard 128-bit; HEAAN legacy security)"
    ~headers:[ "depth"; "SEAL N"; "SEAL logQ"; "HEAAN N"; "HEAAN logQ" ]
    rows

(* ------------------------------------------------------------------ *)
(* CryptoNets comparison (the paper's §6 "Cryptonets" paragraph)        *)
(* ------------------------------------------------------------------ *)

let cryptonets_comparison () =
  print_endline "\n===== CryptoNets comparison =====";
  let spec = Models.cryptonets in
  let compiled = Workloads.compiled_for Compiler.Seal spec in
  let lat = Workloads.best_policy_latency Compiler.Seal spec in
  let small = Workloads.best_policy_latency Compiler.Seal Models.lenet5_small in
  Printf.printf
    "CryptoNets network under CHET-SEAL: %.1f s simulated (params %s; paper: their hand-optimised\n     implementation took 250 s; our LeNet-5-small, a bigger network, takes %.1f s here).\n"
    lat
    (Format.asprintf "%a" Compiler.pp_params compiled.Compiler.params)
    small

(* ------------------------------------------------------------------ *)
(* Ablation: pruned four-policy search vs exhaustive per-node search    *)
(* ------------------------------------------------------------------ *)

let ablation () =
  print_endline "\n===== Ablation: pruned layout search (4 policies) vs exhaustive =====";
  (* The paper prunes the exponential per-tensor layout space to four
     policies with domain heuristics (§5.3). Here we enumerate *every*
     per-node HW/CHW assignment on small circuits and check how close the
     pruned search's winner comes to the true optimum (costs compared at the
     pruned winner's encryption parameters). *)
  let module Layout = Chet_runtime.Layout in
  let module Sim = Chet_hisa.Sim_backend in
  let rows =
    List.map
      (fun (spec : Models.spec) ->
        let target = Compiler.Seal in
        let circuit = spec.Models.build () in
        let compiled = Workloads.compiled_for target spec in
        let opts = Workloads.opts_for target in
        let params = compiled.Compiler.params in
        let nodes = Circuit.topo_order circuit in
        let k = List.length nodes in
        let cost_of_assignment kind_of =
          let sim, clock =
            Sim.make
              {
                Sim.n = Compiler.params_n params;
                scheme = Compiler.scheme_of_params opts params;
                costs = Cost_model.seal ();
              }
          in
          let module H = (val sim : Hisa.S) in
          let module E = Executor.Make (H) in
          let image = Models.input_for spec ~seed:1 in
          let meta = E.input_meta circuit ~kind:(kind_of circuit.Circuit.input) in
          let enc = E.K.encrypt_tensor opts.Compiler.scales meta image in
          ignore (E.run_encrypted_with opts.Compiler.scales circuit ~kind_of enc);
          clock.Sim.elapsed
        in
        let best_exhaustive = ref infinity in
        let count = 1 lsl k in
        for mask = 0 to count - 1 do
          let kind_of (node : Circuit.node) =
            let idx =
              match List.find_index (fun (n : Circuit.node) -> n.Circuit.id = node.Circuit.id) nodes with
              | Some i -> i
              | None -> 0
            in
            if (mask lsr idx) land 1 = 1 then Layout.CHW else Layout.HW
          in
          let c = cost_of_assignment kind_of in
          if c < !best_exhaustive then best_exhaustive := c
        done;
        let best_pruned =
          List.fold_left
            (fun acc r ->
              Float.min acc
                (Workloads.sim_latency target spec ~policy:r.Compiler.pr_policy ~params))
            infinity compiled.Compiler.reports
        in
        [
          spec.Models.model_name;
          string_of_int count;
          fmt_seconds !best_exhaustive;
          fmt_seconds best_pruned;
          Printf.sprintf "%.1f%%" (100.0 *. (best_pruned -. !best_exhaustive) /. !best_exhaustive);
        ])
      [ Models.micro ]
  in
  print_table
    ~title:"cost of the best assignment found (lower is better)"
    ~headers:[ "Network"; "assignments"; "exhaustive best"; "pruned best"; "gap" ]
    rows

(* ------------------------------------------------------------------ *)
(* Serving layer: queue-depth sweep (lib/serve on the clear backend)    *)
(* ------------------------------------------------------------------ *)

let serve_bench () =
  print_endline "\n===== Serving layer: queue depth vs tail latency / shed rate =====";
  let burst = 48 in
  let points =
    Workloads.serve_sweep ~domains:2 ~burst ~high_waters:[ 1; 2; 4; 8; 16; burst ] ()
  in
  let rows =
    List.map
      (fun (p : Workloads.serve_point) ->
        [
          string_of_int p.Workloads.sv_high_water;
          Printf.sprintf "%d/%d" p.Workloads.sv_succeeded p.Workloads.sv_submitted;
          Printf.sprintf "%.0f%%"
            (100.0 *. float_of_int p.Workloads.sv_shed /. float_of_int p.Workloads.sv_submitted);
          Printf.sprintf "%.1f" p.Workloads.sv_p50_ms;
          Printf.sprintf "%.1f" p.Workloads.sv_p95_ms;
          Printf.sprintf "%.1f" p.Workloads.sv_p99_ms;
        ])
      points
  in
  print_table
    ~title:
      (Printf.sprintf
         "%d-request burst, 2 domain workers, micro network on the cleartext backend" burst)
    ~headers:[ "high-water"; "served"; "shed"; "p50 ms"; "p95 ms"; "p99 ms" ]
    rows;
  add_json "serve_sweep"
    (Jsonx.Arr
       (List.map
          (fun (p : Workloads.serve_point) ->
            Jsonx.Obj
              [
                ("high_water", Jsonx.Num (float_of_int p.Workloads.sv_high_water));
                ("submitted", Jsonx.Num (float_of_int p.Workloads.sv_submitted));
                ("succeeded", Jsonx.Num (float_of_int p.Workloads.sv_succeeded));
                ("shed", Jsonx.Num (float_of_int p.Workloads.sv_shed));
                ( "shed_rate",
                  Jsonx.Num (float_of_int p.Workloads.sv_shed /. float_of_int p.Workloads.sv_submitted) );
                ("p50_ms", Jsonx.Num p.Workloads.sv_p50_ms);
                ("p95_ms", Jsonx.Num p.Workloads.sv_p95_ms);
                ("p99_ms", Jsonx.Num p.Workloads.sv_p99_ms);
              ])
          points))

(* ------------------------------------------------------------------ *)
(* Compiled plans: latency + allocation vs the interpretive executor    *)
(* ------------------------------------------------------------------ *)

(* The DESIGN.md §14 regression gate, measured: every paper model on the
   cleartext backend at the compiled ring dimension, interpretive vs plan.
   Outputs must be bit-identical; the plan must allocate less (arena reuse,
   prepare-once plaintexts, fused accumulation) and be no slower. *)
let plan_bench () =
  print_endline "\n===== Compiled plans vs interpretive executor =====";
  let alloc_words f =
    let s0 = Gc.quick_stat () in
    let r = f () in
    let s1 = Gc.quick_stat () in
    let words s = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words in
    (r, words s1 -. words s0)
  in
  let points = ref [] in
  let rows =
    List.map
      (fun (spec : Models.spec) ->
        let circuit = spec.Models.build () in
        let compiled = Workloads.compiled_for Compiler.Seal spec in
        let opts = compiled.Compiler.opts in
        let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
        let slots = Compiler.params_n compiled.Compiler.params / 2 in
        let backend () =
          Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false }
        in
        let module H = (val backend () : Hisa.S) in
        let module E = Executor.Make (H) in
        let module PE = Chet_plan.Plan_exec.Make (H) in
        let image = Models.input_for spec ~seed:7 in
        let policy = compiled.Compiler.policy in
        (* warm both paths once (layout assignment, plan prepare), then
           measure the steady per-inference state serving cares about *)
        let interp () = E.run opts.Compiler.scales circuit ~policy image in
        ignore (interp ());
        let interp_out, interp_words = alloc_words interp in
        let _, interp_s = time_once interp in
        let p = Compiler.plan compiled in
        let prepared = PE.prepare opts.Compiler.scales p in
        let planned () = PE.run prepared image in
        ignore (planned ());
        let plan_out, plan_words = alloc_words planned in
        let _, plan_s = time_once planned in
        if interp_out.T.data <> plan_out.T.data then
          failwith (spec.Models.model_name ^ ": plan output is not bit-identical");
        let ratio = interp_words /. Float.max 1.0 plan_words in
        points :=
          Jsonx.Obj
            [
              ("model", Jsonx.Str spec.Models.model_name);
              ("interp_seconds", Jsonx.Num interp_s);
              ("plan_seconds", Jsonx.Num plan_s);
              ("interp_alloc_words", Jsonx.Num interp_words);
              ("plan_alloc_words", Jsonx.Num plan_words);
              ("alloc_ratio", Jsonx.Num ratio);
              ("arena_slots", Jsonx.Num (float_of_int p.Chet_plan.Plan.p_arena));
              ("steps", Jsonx.Num (float_of_int (Array.length p.Chet_plan.Plan.p_steps)));
              ( "fused_mul_rescale",
                Jsonx.Num (float_of_int p.Chet_plan.Plan.p_stats.Chet_plan.Plan.fused_mul_rescale)
              );
              ( "fused_rot_acc",
                Jsonx.Num (float_of_int p.Chet_plan.Plan.p_stats.Chet_plan.Plan.fused_rot_acc) );
              ( "fused_mul_acc",
                Jsonx.Num (float_of_int p.Chet_plan.Plan.p_stats.Chet_plan.Plan.fused_mul_acc) );
              ("bit_identical", Jsonx.Bool true);
            ]
          :: !points;
        [
          spec.Models.model_name;
          fmt_seconds interp_s;
          fmt_seconds plan_s;
          Printf.sprintf "%.2fx" (interp_s /. Float.max 1e-9 plan_s);
          Printf.sprintf "%.1f" (interp_words /. 1e6);
          Printf.sprintf "%.1f" (plan_words /. 1e6);
          Printf.sprintf "%.1fx" ratio;
          string_of_int p.Chet_plan.Plan.p_arena;
          "yes";
        ])
      (networks ())
  in
  print_table ~title:"per-inference, cleartext backend at compiled N"
    ~headers:
      [ "network"; "interp s"; "plan s"; "speedup"; "interp Mw"; "plan Mw"; "alloc"; "arena"; "bit-id" ]
    rows;
  add_json "plan" (Jsonx.Arr (List.rev !points))

(* ------------------------------------------------------------------ *)
(* Fast ring kernels: Bigarray/Shoup path vs scalar reference           *)
(* ------------------------------------------------------------------ *)

(* The DESIGN.md §15 acceptance evidence: the fast ring path (unboxed
   Bigarray storage, Shoup multiplication, lazy cache-blocked NTT) against
   the scalar int-array reference it must match bit-for-bit. Two views:
   per-transform microbenchmarks, and one whole encrypted inference on the
   real RNS backend with the toggle flipped either way. *)
let kernels_bench () =
  print_endline "\n===== Fast ring kernels: Bigarray/Shoup vs scalar reference =====";
  let module Ntt = Chet_crypto.Ntt in
  let module Rvec = Chet_crypto.Rvec in
  let module Rq = Chet_crypto.Rq in
  let module Modarith = Chet_crypto.Modarith in
  let saved = Rq.fast_ring_enabled () in
  let time_reps reps f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do f () done;
    (Unix.gettimeofday () -. t0) /. float_of_int reps
  in
  let sizes = if !fast then [ (4096, 100) ] else [ (4096, 200); (8192, 100); (16384, 50) ] in
  let ntt_points =
    List.map
      (fun (n, reps) ->
        let p = (Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count:1).(0) in
        let tbl = Ntt.make_table ~n ~prime:p in
        let rng = Random.State.make [| 7 |] in
        let arr = Array.init n (fun _ -> Random.State.int rng p) in
        let buf = Rvec.of_int_array arr in
        Rq.set_fast_ring true;
        Ntt.forward_buf tbl buf;
        Ntt.inverse_buf tbl buf;
        let fast_s = time_reps reps (fun () -> Ntt.forward_buf tbl buf; Ntt.inverse_buf tbl buf) in
        let scalar_s = time_reps reps (fun () -> Ntt.forward tbl arr; Ntt.inverse tbl arr) in
        (n, fast_s /. 2.0, scalar_s /. 2.0))
      sizes
  in
  print_table ~title:"NTT round trip, one transform (fast must win)"
    ~headers:[ "N"; "fast us/op"; "scalar us/op"; "speedup" ]
    (List.map
       (fun (n, f, s) ->
         [
           string_of_int n;
           Printf.sprintf "%.1f" (1e6 *. f);
           Printf.sprintf "%.1f" (1e6 *. s);
           Printf.sprintf "%.2fx" (s /. f);
         ])
       ntt_points);
  (* end to end: micro network on the real RNS backend, toggle both ways *)
  let spec = Models.micro in
  let compiled = Workloads.compiled_for Compiler.Seal spec in
  let opts = compiled.Compiler.opts in
  let circuit = spec.Models.build () in
  let image = Models.input_for spec ~seed:7 in
  let infer () =
    let backend = Compiler.instantiate compiled ~seed:42 ~with_secret:true () in
    let module H = (val backend : Hisa.S) in
    let module E = Executor.Make (H) in
    time_once (fun () -> E.run opts.Compiler.scales circuit ~policy:compiled.Compiler.policy image)
  in
  Rq.set_fast_ring true;
  let fast_out, fast_s = infer () in
  Rq.set_fast_ring false;
  let ref_out, ref_s = infer () in
  Rq.set_fast_ring saved;
  if fast_out.T.data <> ref_out.T.data then
    failwith "kernels: fast-ring output is not bit-identical to the scalar reference";
  Printf.printf
    "\nmicro network, real RNS backend: fast %.2f s, scalar reference %.2f s -> %.2fx; \
     outputs bit-identical\n"
    fast_s ref_s (ref_s /. fast_s);
  add_json "kernels"
    (Jsonx.Obj
       [
         ( "ntt",
           Jsonx.Arr
             (List.map
                (fun (n, f, s) ->
                  Jsonx.Obj
                    [
                      ("n", Jsonx.Num (float_of_int n));
                      ("fast_us", Jsonx.Num (1e6 *. f));
                      ("scalar_us", Jsonx.Num (1e6 *. s));
                      ("speedup", Jsonx.Num (s /. f));
                    ])
                ntt_points) );
         ( "inference",
           Jsonx.Obj
             [
               ("model", Jsonx.Str spec.Models.model_name);
               ("fast_s", Jsonx.Num fast_s);
               ("reference_s", Jsonx.Num ref_s);
               ("speedup", Jsonx.Num (ref_s /. fast_s));
               ("bit_identical", Jsonx.Bool true);
             ] );
       ])

(* ------------------------------------------------------------------ *)
(* Result integrity: sentinel overhead & noise margins                  *)
(* ------------------------------------------------------------------ *)

(* The DESIGN.md §16 acceptance evidence: what verified serving costs per
   inference (a sentinel-twin run against the plain run, same backend, same
   slots), and how much precision headroom each zoo model has — the clean
   sentinel margin and the noise-margin guard's bound at final decrypt. *)
let integrity_bench () =
  print_endline "\n===== Result integrity: sentinel overhead & noise margins =====";
  let module Integrity = Chet.Integrity in
  let module Checked = Chet_hisa.Checked_backend in
  (* one slot count for every row: the twin layout needs 2x the live
     region, and a fair overhead ratio needs baseline and sentinel runs on
     identically sized vectors *)
  let slots = 32768 in
  let points = ref [] in
  let rows =
    List.map
      (fun (spec : Models.spec) ->
        let circuit = spec.Models.build () in
        let compiled = Workloads.compiled_for Compiler.Seal spec in
        let opts = compiled.Compiler.opts in
        let scheme = Compiler.scheme_of_params opts compiled.Compiler.params in
        let scales = opts.Compiler.scales in
        let policy = compiled.Compiler.policy in
        let image = Models.input_for spec ~seed:7 in
        let backend () =
          Clear.make { Clear.slots; scheme; strict_modulus = false; encode_noise = false }
        in
        let module H = (val backend () : Hisa.S) in
        let module E = Executor.Make (H) in
        let plain () = E.run scales circuit ~policy image in
        ignore (plain ());
        let plain_out, base_s = time_once plain in
        let isp = Integrity.spec_for circuit in
        let margin = ref Float.nan in
        let sentinel =
          Integrity.sentinel ~observe:(fun t -> margin := Integrity.margin_bits isp t) isp
        in
        let verified () = E.run ~sentinel scales circuit ~policy image in
        ignore (verified ());
        let v_out, v_s = time_once verified in
        let max_diff =
          Array.fold_left Float.max 0.0
            (Array.mapi
               (fun i v -> Float.abs (v -. plain_out.T.data.(i)))
               v_out.T.data)
        in
        if max_diff > 1e-9 then
          failwith (spec.Models.model_name ^ ": sentinel perturbed the primary answer");
        if not (!margin > 0.0) then
          failwith (Printf.sprintf "%s: clean sentinel margin %.2f" spec.Models.model_name !margin);
        (* noise-margin guard at the model's compiled scheme: the bound is
           conservative, so a fired guard is itself a reportable datum *)
        let noise_margin = ref Float.nan in
        let guard_fired = ref false in
        (let cfg =
           {
             (Checked.default_config ~scheme) with
             Checked.noise = Some (Checked.default_noise_model ());
           }
         in
         let module HN =
           (val Checked.wrap ~config:(Some cfg) ~margin:noise_margin ~scheme (backend ()) : Hisa.S)
         in
         let module EN = Executor.Make (HN) in
         try ignore (EN.run scales circuit ~policy image)
         with Chet_hisa.Herr.Fhe_error (Chet_hisa.Herr.Precision_exhausted { margin_bits; _ }, _)
         ->
           guard_fired := true;
           noise_margin := margin_bits);
        let overhead = v_s /. Float.max 1e-9 base_s in
        points :=
          Jsonx.Obj
            [
              ("model", Jsonx.Str spec.Models.model_name);
              ("baseline_seconds", Jsonx.Num base_s);
              ("sentinel_seconds", Jsonx.Num v_s);
              ("sentinel_overhead", Jsonx.Num overhead);
              ("sentinel_margin_bits", Jsonx.Num !margin);
              ( "noise_margin_bits",
                if Float.is_nan !noise_margin then Jsonx.Null else Jsonx.Num !noise_margin );
              ("noise_guard_fired", Jsonx.Bool !guard_fired);
            ]
          :: !points;
        [
          spec.Models.model_name;
          fmt_seconds base_s;
          fmt_seconds v_s;
          Printf.sprintf "%.2fx" overhead;
          Printf.sprintf "%.1f" !margin;
          (if !guard_fired then Printf.sprintf "%.1f (fired)" !noise_margin
           else Printf.sprintf "%.1f" !noise_margin);
        ])
      (networks ())
  in
  print_table ~title:"per-inference, cleartext backend, twin layout at 32768 slots"
    ~headers:
      [ "network"; "plain s"; "sentinel s"; "overhead"; "sent. margin b"; "noise margin b" ]
    rows;
  add_json "integrity" (Jsonx.Arr (List.rev !points))

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let () =
  (* large transient allocations (32k-slot plaintext vectors) balloon the
     major heap; keep the space overhead tight and compact between sections
     so the whole suite fits in modest memory *)
  Gc.set { (Gc.get ()) with Gc.space_overhead = 40 };
  let args = Array.to_list Sys.argv in
  fast := List.mem "--fast" args;
  (* --cost-file: profiled constants from `chet profile`; feeds the Loaded
     cost kind (figure 6's calibrated column) *)
  let rec cost_file = function
    | "--cost-file" :: path :: _ -> Some path
    | _ :: rest -> cost_file rest
    | [] -> None
  in
  (match cost_file args with
  | None -> ()
  | Some path ->
      Workloads.loaded_calibration := Some (Chet.Cost_model.load_calibration path);
      Printf.printf "loaded cost-model calibration from %s\n" path);
  let rec wanted = function
    | "--table" :: n :: rest -> ("t" ^ n) :: wanted rest
    | "--figure" :: n :: rest -> ("f" ^ n) :: wanted rest
    | "--calibrate" :: rest -> "cal" :: wanted rest
    | "--ablation" :: rest -> "abl" :: wanted rest
    | "--sweep" :: rest -> "swp" :: wanted rest
    | "--cryptonets" :: rest -> "cn" :: wanted rest
    | "--serve" :: rest -> "srv" :: wanted rest
    | "--plan" :: rest -> "pln" :: wanted rest
    | "--kernels" :: rest -> "krn" :: wanted rest
    | "--integrity" :: rest -> "int" :: wanted rest
    | _ :: rest -> wanted rest
    | [] -> []
  in
  let selected = wanted args in
  let all = selected = [] in
  let want k = all || List.mem k selected in
  let t0 = Unix.gettimeofday () in
  if want "t1" then begin table1 (); Gc.compact () end;
  if want "cal" then begin calibrate (); Gc.compact () end;
  if want "t3" then begin table3 (); Gc.compact () end;
  if want "t4" then begin table4 (); Gc.compact () end;
  if want "t5" then begin table5 (); Gc.compact () end;
  if want "t6" then begin table6 (); Gc.compact () end;
  if want "f5" then begin figure5 (); Gc.compact () end;
  if want "f6" then begin figure6 (); Gc.compact () end;
  if want "f7" then begin figure7 (); Gc.compact () end;
  if want "swp" then begin depth_sweep (); Gc.compact () end;
  if want "cn" then begin cryptonets_comparison (); Gc.compact () end;
  if want "srv" then begin serve_bench (); Gc.compact () end;
  if want "pln" then begin plan_bench (); Gc.compact () end;
  if want "krn" then begin kernels_bench (); Gc.compact () end;
  if want "int" then begin integrity_bench (); Gc.compact () end;
  if all || List.mem "abl" selected then ablation ();
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal bench time: %.1f s\n" total;
  write_bench_json "BENCH.json" ~fast:!fast ~total_s:total
