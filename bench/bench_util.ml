(* Shared machinery for the benchmark harness: bechamel wrappers, table
   printing, and the correlation statistics used by Figure 6. *)

let bechamel_ns ?(quota = 0.5) tests =
  (* tests: (name, thunk) list -> (name, estimated ns/run) list via OLS *)
  let open Bechamel in
  let elts = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) tests in
  let grouped = Test.make_grouped ~name:"" ~fmt:"%s%s" elts in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second quota) ~kde:None () in
  let raws = Benchmark.all cfg [ instance ] grouped in
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt raws name with
      | None -> None
      | Some raw ->
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:false ~responder:(Measure.label instance)
              ~predictors:[| Measure.run |] raw.Benchmark.lr
          in
          (match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Some (name, est)
          | _ -> None))
    tests

let time_once f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Table printing                                                      *)
(* ------------------------------------------------------------------ *)

let print_table ~title ~headers rows =
  Printf.printf "\n### %s\n\n" title;
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iteri (fun i h -> widths.(i) <- String.length h) headers;
  List.iter
    (fun row -> List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)) row)
    rows;
  let print_row cells =
    List.iteri
      (fun i cell -> Printf.printf "%s%-*s" (if i = 0 then "| " else " | ") widths.(i) cell)
      cells;
    print_string " |\n"
  in
  print_row headers;
  List.iteri (fun i _ -> Printf.printf "%s%s" (if i = 0 then "|" else "|") (String.make (widths.(i) + 2) '-')) headers;
  print_string "|\n";
  List.iter print_row rows

let fmt_seconds s =
  if s >= 100.0 then Printf.sprintf "%.0f" s
  else if s >= 1.0 then Printf.sprintf "%.1f" s
  else Printf.sprintf "%.2f" s

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let pearson xs ys =
  let mx = mean xs and my = mean ys in
  let cov = ref 0.0 and vx = ref 0.0 and vy = ref 0.0 in
  Array.iteri
    (fun i x ->
      let dx = x -. mx and dy = ys.(i) -. my in
      cov := !cov +. (dx *. dy);
      vx := !vx +. (dx *. dx);
      vy := !vy +. (dy *. dy))
    xs;
  if !vx = 0.0 || !vy = 0.0 then 0.0 else !cov /. sqrt (!vx *. !vy)

let ranks xs =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare xs.(a) xs.(b)) order;
  let r = Array.make n 0.0 in
  Array.iteri (fun rank idx -> r.(idx) <- float_of_int rank) order;
  r

let spearman xs ys = pearson (ranks xs) (ranks ys)

(* popcount-based rotation count under power-of-two keys only: a rotation by
   [a] costs one application per set bit, taking the cheaper direction *)
let pow2_rotation_count ~slots amount =
  let popcount x =
    let rec loop x acc = if x = 0 then acc else loop (x lsr 1) (acc + (x land 1)) in
    loop x 0
  in
  let a = ((amount mod slots) + slots) mod slots in
  if a = 0 then 0 else Stdlib.min (popcount a) (popcount (slots - a))

(* ------------------------------------------------------------------ *)
(* BENCH.json: machine-readable artifact                               *)
(* ------------------------------------------------------------------ *)

module Jsonx = Chet_obs.Jsonx

(* Sections accumulate as their drivers run; the main driver writes the file
   once at the end, so a partial selection (--table 5) still yields a valid
   artifact containing just what ran. *)
let json_sections : (string * Jsonx.t) list ref = ref []
let add_json name j = json_sections := (name, j) :: !json_sections

(* The bench trajectory: alongside the mutable BENCH.json snapshot, every
   run appends an immutable numbered artifact (BENCH_1.json, BENCH_2.json,
   ...) so successive PRs keep a perf baseline to diff against. *)
let next_trajectory_path dir =
  let prefix = "BENCH_" and suffix = ".json" in
  let num name =
    if String.length name > String.length prefix + String.length suffix
       && String.sub name 0 (String.length prefix) = prefix
       && Filename.check_suffix name suffix
    then
      int_of_string_opt
        (String.sub name (String.length prefix)
           (String.length name - String.length prefix - String.length suffix))
    else None
  in
  let highest =
    Array.fold_left
      (fun acc name -> match num name with Some n -> Stdlib.max acc n | None -> acc)
      0
      (try Sys.readdir dir with Sys_error _ -> [||])
  in
  Filename.concat dir (Printf.sprintf "%s%d%s" prefix (highest + 1) suffix)

let write_bench_json path ~fast ~total_s =
  let doc =
    Jsonx.Obj
      ([
         ("version", Jsonx.Num 1.0);
         ("fast", Jsonx.Bool fast);
         ("total_seconds", Jsonx.Num total_s);
       ]
      @ List.rev !json_sections)
  in
  Jsonx.to_file path doc;
  let numbered = next_trajectory_path (Filename.dirname path) in
  Jsonx.to_file numbered doc;
  Printf.printf "wrote %s and %s (%d sections)\n" path numbered (List.length !json_sections)
