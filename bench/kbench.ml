(* Ring-kernel microbenchmark: NTT and pointwise kernels, fast vs reference.
   Used by scripts/kernel_smoke.sh and for tuning the fast path by hand. *)

module Ntt = Chet_crypto.Ntt
module Rvec = Chet_crypto.Rvec
module Rq = Chet_crypto.Rq
module Modarith = Chet_crypto.Modarith

let time f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

let () =
  let n = try int_of_string Sys.argv.(1) with _ -> 8192 in
  let reps = try int_of_string Sys.argv.(2) with _ -> 200 in
  let p = (Modarith.gen_ntt_primes ~bits:30 ~modulus_of:(2 * n) ~count:1).(0) in
  let tbl = Ntt.make_table ~n ~prime:p in
  let rng = Random.State.make [| 7 |] in
  let a = Array.init n (fun _ -> Random.State.int rng p) in
  let buf = Rvec.of_int_array a in
  let arr = Array.copy a in
  (* warm up *)
  Ntt.forward_buf tbl buf;
  Ntt.inverse_buf tbl buf;
  Rq.set_fast_ring true;
  let t_fast =
    time (fun () ->
        for _ = 1 to reps do
          Ntt.forward_buf tbl buf;
          Ntt.inverse_buf tbl buf
        done)
  in
  let t_scalar =
    time (fun () ->
        for _ = 1 to reps do
          Ntt.forward tbl arr;
          Ntt.inverse tbl arr
        done)
  in
  Rq.set_fast_ring false;
  let t_bounce =
    time (fun () ->
        for _ = 1 to reps do
          Ntt.forward_buf tbl buf;
          Ntt.inverse_buf tbl buf
        done)
  in
  Rq.set_fast_ring true;
  let b = Rvec.of_int_array (Array.init n (fun _ -> Random.State.int rng p)) in
  let dst = Rvec.create n in
  let t_pw =
    time (fun () -> for _ = 1 to reps * 10 do Rvec.pointwise_mul_into dst buf b p done)
  in
  let t_pw_ref =
    time (fun () -> for _ = 1 to reps * 10 do Rvec.pointwise_mul_ref_into dst buf b p done)
  in
  Printf.printf
    "n=%d p=%d reps=%d\n  ntt fast      %8.1f us/op\n  ntt scalar    %8.1f us/op\n  ntt bounce    %8.1f us/op\n  pw fast       %8.1f us/op\n  pw ref        %8.1f us/op\n"
    n p reps
    (1e6 *. t_fast /. float_of_int (2 * reps))
    (1e6 *. t_scalar /. float_of_int (2 * reps))
    (1e6 *. t_bounce /. float_of_int (2 * reps))
    (1e6 *. t_pw /. float_of_int (reps * 10))
    (1e6 *. t_pw_ref /. float_of_int (reps * 10))
