(* Span tracer: nestable timed spans with key/value attrs, a per-domain ring
   buffer, and Chrome trace_event JSON export (loadable in chrome://tracing
   or Perfetto).

   Concurrency model ("lock-free enough"): each domain appends to its own
   ring buffer — registered once per (tracer, domain) under the tracer mutex,
   then written without any synchronisation. Export happens after the traced
   work has settled, so the benign read race on ring contents is harmless.
   A full ring overwrites its oldest events and counts them as dropped.

   The ambient *global* tracer is what the executor and kernels consult: a
   single atomic load on the fast path when tracing is disabled, which is
   what keeps the disabled-tracing overhead under the bench harness's noise
   floor. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;  (** domain id *)
  ev_ts_ns : int64;  (** span start, monotonic *)
  ev_dur_ns : int64;
  ev_attrs : (string * attr) list;
}

type ring = { r_cap : int; r_buf : event option array; mutable r_written : int }

type t = {
  id : int;
  cap : int;
  mutable rings : ring list;  (** guarded by [rm]; one per domain that traced *)
  rm : Mutex.t;
}

let next_id = Atomic.make 0

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  { id = Atomic.fetch_and_add next_id 1; cap = capacity; rings = []; rm = Mutex.create () }

(* Domain-local state: the ring of each tracer this domain has written to,
   the stack of open spans, and the HISA op tick counter. *)
type dls = {
  mutable d_rings : (int * ring) list;  (** tracer id -> this domain's ring *)
  mutable d_stack : span list;
  mutable d_ops : int;
}

and span = {
  sp_tracer : t;
  sp_name : string;
  sp_cat : string;
  sp_start : int64;
  mutable sp_attrs : (string * attr) list;
}

let dls_key = Domain.DLS.new_key (fun () -> { d_rings = []; d_stack = []; d_ops = 0 })

let ring_for t =
  let d = Domain.DLS.get dls_key in
  match List.assoc_opt t.id d.d_rings with
  | Some r -> r
  | None ->
      let r = { r_cap = t.cap; r_buf = Array.make t.cap None; r_written = 0 } in
      d.d_rings <- (t.id, r) :: d.d_rings;
      Mutex.lock t.rm;
      t.rings <- r :: t.rings;
      Mutex.unlock t.rm;
      r

let record t ev =
  let r = ring_for t in
  r.r_buf.(r.r_written mod r.r_cap) <- Some ev;
  r.r_written <- r.r_written + 1

(* ------------------------------------------------------------------ *)
(* The ambient global tracer                                           *)
(* ------------------------------------------------------------------ *)

let global : t option Atomic.t = Atomic.make None
let set_global o = Atomic.set global o
let enabled () = Atomic.get global <> None

let with_span ?(cat = "chet") ?(attrs = []) name f =
  match Atomic.get global with
  | None -> f ()
  | Some t ->
      let d = Domain.DLS.get dls_key in
      let sp =
        { sp_tracer = t; sp_name = name; sp_cat = cat; sp_start = Clock.now_ns (); sp_attrs = attrs }
      in
      d.d_stack <- sp :: d.d_stack;
      Fun.protect
        ~finally:(fun () ->
          (match d.d_stack with _ :: rest -> d.d_stack <- rest | [] -> ());
          record t
            {
              ev_name = sp.sp_name;
              ev_cat = sp.sp_cat;
              ev_tid = (Domain.self () :> int);
              ev_ts_ns = sp.sp_start;
              ev_dur_ns = Int64.sub (Clock.now_ns ()) sp.sp_start;
              ev_attrs = List.rev sp.sp_attrs;
            })
        f

(* Attach an attr to the innermost open span of this domain (no-op when
   tracing is off or no span is open): how the executor annotates a node
   span with facts only known after the node ran (result scale, op count). *)
let annotate k v =
  match (Domain.DLS.get dls_key).d_stack with
  | sp :: _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs
  | [] -> ()

(* Zero-duration marker event. *)
let instant ?(cat = "chet") ?(attrs = []) name =
  match Atomic.get global with
  | None -> ()
  | Some t ->
      record t
        {
          ev_name = name;
          ev_cat = cat;
          ev_tid = (Domain.self () :> int);
          ev_ts_ns = Clock.now_ns ();
          ev_dur_ns = 0L;
          ev_attrs = attrs;
        }

(* ------------------------------------------------------------------ *)
(* HISA op ticks (per-domain, torn-write-free by construction)         *)
(* ------------------------------------------------------------------ *)

let tick_op () =
  let d = Domain.DLS.get dls_key in
  d.d_ops <- d.d_ops + 1

let op_count () = (Domain.DLS.get dls_key).d_ops

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let ring_events r =
  let n = Stdlib.min r.r_written r.r_cap in
  let start = if r.r_written <= r.r_cap then 0 else r.r_written mod r.r_cap in
  List.init n (fun i ->
      match r.r_buf.((start + i) mod r.r_cap) with Some e -> e | None -> assert false)

let events t =
  Mutex.lock t.rm;
  let rings = t.rings in
  Mutex.unlock t.rm;
  List.concat_map ring_events rings
  |> List.sort (fun a b ->
         match Int64.compare a.ev_ts_ns b.ev_ts_ns with
         | 0 -> compare (a.ev_tid, a.ev_name) (b.ev_tid, b.ev_name)
         | c -> c)

let dropped t =
  Mutex.lock t.rm;
  let rings = t.rings in
  Mutex.unlock t.rm;
  List.fold_left (fun acc r -> acc + Stdlib.max 0 (r.r_written - r.r_cap)) 0 rings

let attr_json = function
  | Int i -> Jsonx.Num (float_of_int i)
  | Float f -> Jsonx.Num f
  | Str s -> Jsonx.Str s
  | Bool b -> Jsonx.Bool b

(* Chrome trace_event format: one "X" (complete) event per span, timestamps
   in microseconds relative to the earliest span so the viewer opens at t=0.
   tid = OCaml domain id, which renders each domain as its own track. *)
let chrome_json t =
  let evs = events t in
  let t0 = match evs with [] -> 0L | e :: _ -> e.ev_ts_ns in
  let us ns = Int64.to_float ns /. 1e3 in
  let event_json e =
    Jsonx.Obj
      [
        ("name", Jsonx.Str e.ev_name);
        ("cat", Jsonx.Str e.ev_cat);
        ("ph", Jsonx.Str "X");
        ("ts", Jsonx.Num (us (Int64.sub e.ev_ts_ns t0)));
        ("dur", Jsonx.Num (us e.ev_dur_ns));
        ("pid", Jsonx.Num 1.0);
        ("tid", Jsonx.Num (float_of_int e.ev_tid));
        ("args", Jsonx.Obj (List.map (fun (k, v) -> (k, attr_json v)) e.ev_attrs));
      ]
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.Arr (List.map event_json evs));
      ("displayTimeUnit", Jsonx.Str "ms");
      ("otherData", Jsonx.Obj [ ("dropped_events", Jsonx.Num (float_of_int (dropped t))) ]);
    ]

let export_chrome t path = Jsonx.to_file path (chrome_json t)
