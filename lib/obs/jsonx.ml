(* Minimal JSON: a value type, a writer, and a recursive-descent parser.
   Shared by the Chrome trace exporter, the cost-model calibration files and
   the bench harness's BENCH.json artifact. No external dependency (the
   container has no yojson); the subset implemented is full RFC 8259 minus
   surrogate-pair \u escapes (BMP-only, which is all we ever emit). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity: map non-finite numbers to null rather than
   emitting a file Chrome/Perfetto refuses to load. *)
let num_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> if Float.is_finite f then Buffer.add_string buf (num_to_string f) else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        vs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 1024 in
  write buf v;
  Buffer.contents buf

let to_channel oc v = output_string oc (to_string v)

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc v;
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type cursor = { s : string; mutable pos : int }

let fail cur msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg cur.pos))
let peek cur = if cur.pos < String.length cur.s then Some cur.s.[cur.pos] else None

let advance cur =
  let c = cur.s.[cur.pos] in
  cur.pos <- cur.pos + 1;
  c

let rec skip_ws cur =
  match peek cur with
  | Some (' ' | '\t' | '\n' | '\r') ->
      cur.pos <- cur.pos + 1;
      skip_ws cur
  | _ -> ()

let expect cur c =
  match peek cur with
  | Some c' when c' = c -> cur.pos <- cur.pos + 1
  | _ -> fail cur (Printf.sprintf "expected '%c'" c)

let literal cur word v =
  let n = String.length word in
  if cur.pos + n <= String.length cur.s && String.sub cur.s cur.pos n = word then begin
    cur.pos <- cur.pos + n;
    v
  end
  else fail cur (Printf.sprintf "expected %s" word)

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    if cur.pos >= String.length cur.s then fail cur "unterminated string";
    match advance cur with
    | '"' -> Buffer.contents buf
    | '\\' -> begin
        if cur.pos >= String.length cur.s then fail cur "unterminated escape";
        (match advance cur with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
            if cur.pos + 4 > String.length cur.s then fail cur "truncated \\u escape";
            let hex = String.sub cur.s cur.pos 4 in
            cur.pos <- cur.pos + 4;
            let cp = try int_of_string ("0x" ^ hex) with _ -> fail cur "bad \\u escape" in
            (* encode the BMP codepoint as UTF-8 *)
            if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
            else if cp < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
            end
        | c -> fail cur (Printf.sprintf "bad escape '\\%c'" c));
        loop ()
      end
    | c -> Buffer.add_char buf c; loop ()
  in
  loop ()

let parse_number cur =
  let start = cur.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while (match peek cur with Some c when is_num_char c -> true | _ -> false) do
    cur.pos <- cur.pos + 1
  done;
  if cur.pos = start then fail cur "expected number";
  match float_of_string_opt (String.sub cur.s start (cur.pos - start)) with
  | Some f -> Num f
  | None -> fail cur "malformed number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' -> parse_obj cur
  | Some '[' -> parse_arr cur
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some _ -> parse_number cur

and parse_arr cur =
  expect cur '[';
  skip_ws cur;
  if peek cur = Some ']' then begin
    cur.pos <- cur.pos + 1;
    Arr []
  end
  else begin
    let rec items acc =
      let v = parse_value cur in
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          cur.pos <- cur.pos + 1;
          items (v :: acc)
      | Some ']' ->
          cur.pos <- cur.pos + 1;
          Arr (List.rev (v :: acc))
      | _ -> fail cur "expected ',' or ']'"
    in
    items []
  end

and parse_obj cur =
  expect cur '{';
  skip_ws cur;
  if peek cur = Some '}' then begin
    cur.pos <- cur.pos + 1;
    Obj []
  end
  else begin
    let rec pairs acc =
      skip_ws cur;
      let k = parse_string cur in
      skip_ws cur;
      expect cur ':';
      let v = parse_value cur in
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          cur.pos <- cur.pos + 1;
          pairs ((k, v) :: acc)
      | Some '}' ->
          cur.pos <- cur.pos + 1;
          Obj (List.rev ((k, v) :: acc))
      | _ -> fail cur "expected ',' or '}'"
    in
    pairs []
  end

let of_string s =
  let cur = { s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

let of_file path =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_string s

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr vs -> Some vs | _ -> None

let num_member k v = Option.bind (member k v) to_num
let str_member k v = Option.bind (member k v) to_str
