(* Metrics registry: named counters, gauges and log-bucketed histograms,
   safe under OCaml 5 domains, with a Prometheus-style text exposition.

   Concurrency model: metric *creation* takes the registry mutex (rare);
   metric *updates* are lock-free — counters and histogram buckets are
   [Atomic.t] cells, float accumulators use a CAS retry loop. No update can
   tear or be lost, which test/test_obs.ml asserts with 4 hammering domains. *)

type labels = (string * string) list

type counter = { c_value : int Atomic.t }
type gauge = { g_value : float Atomic.t }

type histogram = {
  h_lo : float;  (** upper bound of the first bucket *)
  h_growth : float;
  h_buckets : int Atomic.t array;  (** last bucket is the +Inf overflow *)
  h_sum : float Atomic.t;
  h_count : int Atomic.t;
  h_max : float Atomic.t;
}

type data = C of counter | G of gauge | H of histogram
type metric = { m_name : string; m_help : string; m_labels : labels; m_data : data }
type t = { mutable metrics : metric list; rm : Mutex.t }

let create () = { metrics = []; rm = Mutex.create () }

let with_lock reg f =
  Mutex.lock reg.rm;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg.rm) f

let same_kind a b =
  match (a, b) with C _, C _ | G _, G _ | H _, H _ -> true | _ -> false

(* Idempotent get-or-create: per-(op, level) histograms are registered
   lazily from hot paths, so re-registration must return the existing
   metric instead of duplicating the series. *)
let get_or_create reg ~name ~help ~labels mk =
  with_lock reg (fun () ->
      match
        List.find_opt (fun m -> m.m_name = name && m.m_labels = labels) reg.metrics
      with
      | Some m ->
          let fresh = mk () in
          if not (same_kind m.m_data fresh) then
            invalid_arg (Printf.sprintf "Metrics: %s re-registered with a different kind" name);
          m.m_data
      | None ->
          let m = { m_name = name; m_help = help; m_labels = labels; m_data = mk () } in
          reg.metrics <- m :: reg.metrics;
          m.m_data)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter reg ?(help = "") ?(labels = []) name =
  match get_or_create reg ~name ~help ~labels (fun () -> C { c_value = Atomic.make 0 }) with
  | C c -> c
  | _ -> assert false

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_value by)
let counter_value c = Atomic.get c.c_value

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

let gauge reg ?(help = "") ?(labels = []) name =
  match get_or_create reg ~name ~help ~labels (fun () -> G { g_value = Atomic.make 0.0 }) with
  | G g -> g
  | _ -> assert false

let set_gauge g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

let rec atomic_max_float a x =
  let old = Atomic.get a in
  if x > old && not (Atomic.compare_and_set a old x) then atomic_max_float a x

(* Default buckets: log-spaced from 1 µs doubling 40 times (~3 days) — wide
   enough for both per-op ns latencies expressed in seconds and multi-second
   FHE inferences. *)
let histogram reg ?(help = "") ?(labels = []) ?(lo = 1e-6) ?(growth = 2.0) ?(buckets = 40) name =
  if lo <= 0.0 || growth <= 1.0 || buckets < 2 then invalid_arg "Metrics.histogram";
  match
    get_or_create reg ~name ~help ~labels (fun () ->
        H
          {
            h_lo = lo;
            h_growth = growth;
            h_buckets = Array.init buckets (fun _ -> Atomic.make 0);
            h_sum = Atomic.make 0.0;
            h_count = Atomic.make 0;
            h_max = Atomic.make neg_infinity;
          })
  with
  | H h -> h
  | _ -> assert false

let bucket_bound h i =
  (* bucket i holds values <= h_lo * growth^i; the last bucket is +Inf *)
  if i >= Array.length h.h_buckets - 1 then infinity
  else h.h_lo *. (h.h_growth ** float_of_int i)

let bucket_index h v =
  if v <= h.h_lo then 0
  else begin
    let i = int_of_float (Float.ceil (log (v /. h.h_lo) /. log h.h_growth)) in
    Stdlib.max 0 (Stdlib.min (Array.length h.h_buckets - 1) i)
  end

let observe h v =
  ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index h v) 1);
  atomic_add_float h.h_sum v;
  atomic_max_float h.h_max v;
  ignore (Atomic.fetch_and_add h.h_count 1)

let hist_count h = Atomic.get h.h_count
let hist_sum h = Atomic.get h.h_sum

(* Quantile by linear interpolation inside the containing log bucket.
   [q] in [0,1]; nan on an empty histogram. *)
let quantile h q =
  let total = hist_count h in
  if total = 0 then Float.nan
  else begin
    let target = q *. float_of_int total in
    let n = Array.length h.h_buckets in
    let rec walk i cum =
      if i >= n then Atomic.get h.h_max
      else begin
        let c = Atomic.get h.h_buckets.(i) in
        let cum' = cum +. float_of_int c in
        if cum' >= target && c > 0 then begin
          let upper =
            if i = n - 1 then Atomic.get h.h_max (* overflow bucket: cap at max seen *)
            else bucket_bound h i
          in
          let lower = if i = 0 then 0.0 else bucket_bound h (i - 1) in
          let frac = (target -. cum) /. float_of_int c in
          lower +. ((upper -. lower) *. Float.max 0.0 (Float.min 1.0 frac))
        end
        else walk (i + 1) cum'
      end
    in
    walk 0 0.0
  end

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Prometheus value rendering. The exposition format spells the non-finite
   values ["+Inf"], ["-Inf"] and ["NaN"] — [%g]'s ["inf"]/["nan"] are
   rejected by conformant scrapers, and a gauge that legitimately reaches
   infinity (an unbounded [le], a division blowup) must still parse. *)
let fmt_value f =
  if f = Float.infinity then "+Inf"
  else if f = Float.neg_infinity then "-Inf"
  else if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

(* Prometheus label-value escaping: exactly backslash, double-quote and
   newline (the exposition-format spec's list). OCaml's [%S] is close but
   not conformant — it octal-escapes other control bytes and non-ASCII,
   which Prometheus parsers take literally. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf {|\\|}
      | '"' -> Buffer.add_string buf {|\"|}
      | '\n' -> Buffer.add_string buf {|\n|}
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let fmt_labels = function
  | [] -> ""
  | kvs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) kvs)
      ^ "}"

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let expose reg =
  let metrics =
    with_lock reg (fun () ->
        List.sort
          (fun a b ->
            match compare a.m_name b.m_name with 0 -> compare a.m_labels b.m_labels | c -> c)
          reg.metrics)
  in
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun m ->
      if m.m_name <> !last_name then begin
        last_name := m.m_name;
        if m.m_help <> "" then Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" m.m_name m.m_help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" m.m_name (kind_name m.m_data))
      end;
      match m.m_data with
      | C c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" m.m_name (fmt_labels m.m_labels) (counter_value c))
      | G g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" m.m_name (fmt_labels m.m_labels) (fmt_value (gauge_value g)))
      | H h ->
          (* cumulative buckets; empty buckets are elided (the histograms
             here have 40 log buckets and most are empty), +Inf always out *)
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              let c = Atomic.get b in
              cum := !cum + c;
              if c > 0 && i < Array.length h.h_buckets - 1 then
                Buffer.add_string buf
                  (Printf.sprintf "%s_bucket%s %d\n" m.m_name
                     (fmt_labels (m.m_labels @ [ ("le", fmt_value (bucket_bound h i)) ]))
                     !cum))
            h.h_buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket%s %d\n" m.m_name
               (fmt_labels (m.m_labels @ [ ("le", "+Inf") ]))
               !cum);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" m.m_name (fmt_labels m.m_labels) (fmt_value (hist_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" m.m_name (fmt_labels m.m_labels) (hist_count h)))
    metrics;
  Buffer.contents buf

(* A process-wide default registry for components without an obvious owner
   (the timed HISA interceptor's per-op histograms when none is supplied). *)
let default = create ()
