(* Monotonic clock for the observability subsystem (and for every internal
   deadline/cooldown computation in lib/serve): wall-clock time jumps under
   NTP slew and steps, which turns deadlines and breaker cooldowns into
   lies. The C stub behind [Monotonic_clock] reads CLOCK_MONOTONIC. *)

let now_ns : unit -> int64 = Monotonic_clock.now

(* Seconds on the monotonic clock. The epoch is arbitrary (boot time);
   only differences are meaningful — which is all the serving layer's
   deadline and cooldown arithmetic ever computes. *)
let now_s () = Int64.to_float (now_ns ()) /. 1e9
