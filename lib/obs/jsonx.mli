(** Minimal JSON value type, writer and parser (RFC 8259 subset; \u escapes
    are BMP-only). Shared by the Chrome trace exporter, the cost-model
    calibration files and the bench harness's BENCH.json artifact. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact serialisation. Non-finite numbers become [null] (JSON has no
    NaN/Infinity and Chrome refuses files containing them). *)

val to_channel : out_channel -> t -> unit

val to_file : string -> t -> unit
(** Write the value plus a trailing newline. *)

val of_string : string -> t
(** @raise Parse_error on malformed input (with byte offset). *)

val of_file : string -> t

(** {1 Accessors} — all total, returning [None] on kind mismatch. *)

val member : string -> t -> t option
val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option
val num_member : string -> t -> float option
val str_member : string -> t -> string option
