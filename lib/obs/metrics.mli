(** Metrics registry (DESIGN.md §10): named counters, gauges and log-bucketed
    latency histograms, safe under OCaml 5 domains, with a Prometheus-style
    text exposition.

    Updates are lock-free ([Atomic] cells; CAS loops for float accumulators)
    so hot paths never contend; creation takes the registry mutex and is
    idempotent per (name, labels). *)

type t
type labels = (string * string) list

val create : unit -> t

val default : t
(** Process-wide registry for components without an obvious owner. *)

(** {1 Counters} *)

type counter

val counter : t -> ?help:string -> ?labels:labels -> string -> counter
(** Get-or-create. @raise Invalid_argument if (name, labels) already exists
    with a different metric kind. *)

val incr : ?by:int -> counter -> unit
val counter_value : counter -> int

(** {1 Gauges} *)

type gauge

val gauge : t -> ?help:string -> ?labels:labels -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram :
  t ->
  ?help:string ->
  ?labels:labels ->
  ?lo:float ->
  ?growth:float ->
  ?buckets:int ->
  string ->
  histogram
(** Log-bucketed: bucket [i] holds values [<= lo * growth^i], the last is
    the +Inf overflow. Defaults ([lo]=1e-6, [growth]=2, [buckets]=40) cover
    1 µs to days in seconds units. *)

val observe : histogram -> float -> unit
val hist_count : histogram -> int
val hist_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] with [q] in [0,1]: linear interpolation inside the
    containing log bucket (the overflow bucket is capped at the maximum
    observed value); [nan] when empty. *)

(** {1 Exposition} *)

val expose : t -> string
(** Prometheus text format, deterministically sorted by (name, labels).
    Histograms render cumulative [_bucket{le=...}] lines (empty buckets
    elided), [_sum] and [_count]. *)
