(** Span tracer (DESIGN.md §10): nestable timed spans with key/value attrs,
    per-domain ring buffers, and Chrome [trace_event] JSON export — load the
    file in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Recording goes through an ambient {e global} tracer so instrumentation
    points (executor nodes, HISA interceptors) cost one atomic load when
    tracing is off. Each domain owns a private ring buffer; a full ring
    overwrites oldest events and counts them as {!dropped}. *)

type attr = Int of int | Float of float | Str of string | Bool of bool

type event = {
  ev_name : string;
  ev_cat : string;
  ev_tid : int;  (** OCaml domain id — one Chrome track per domain *)
  ev_ts_ns : int64;  (** span start on the monotonic clock *)
  ev_dur_ns : int64;
  ev_attrs : (string * attr) list;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the per-domain ring size (default 65536 events). *)

val set_global : t option -> unit
val enabled : unit -> bool

val with_span : ?cat:string -> ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a timed span on the global tracer; a plain call
    when tracing is disabled. Spans nest per domain; the event is recorded
    when the span closes (exceptions included). *)

val annotate : string -> attr -> unit
(** Attach an attr to the innermost open span of this domain (no-op when
    none) — for facts only known after the work ran, e.g. a node's result
    scale. *)

val instant : ?cat:string -> ?attrs:(string * attr) list -> string -> unit
(** Zero-duration marker event. *)

(** {1 HISA op ticks} — a per-domain counter the timed interceptor bumps per
    homomorphic op, letting the executor attribute op counts to node spans
    without threading the interceptor through every call site. *)

val tick_op : unit -> unit
val op_count : unit -> int

(** {1 Export} *)

val events : t -> event list
(** All surviving events across domains, sorted by start time. *)

val dropped : t -> int

val chrome_json : t -> Jsonx.t
val export_chrome : t -> string -> unit
(** Write the Chrome trace_event JSON to [path]. *)
