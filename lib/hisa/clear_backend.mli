(** Unencrypted HISA backend: computes on cleartext float vectors while
    tracking scales and virtual modulus consumption with the target scheme's
    semantics. It is the reference inference engine, the vehicle for the
    profile-guided scale search (with [encode_noise] on), and the semantics
    that {!Shape_backend} and {!Sim_backend} reuse. *)

type config = {
  slots : int;
  scheme : Hisa.scheme_kind;
  strict_modulus : bool;
      (** raise [Herr.Fhe_error (Modulus_exhausted _, _)] on multiplies once
          the virtual modulus runs out (scale search, failure-injection
          tests) *)
  encode_noise : bool;
      (** model CKKS encoding noise (~N(0, n/12)/scale per slot) on
          non-constant plaintexts — footnote 3 of the paper *)
}

type budget = Rns_level of int | Logq of int
(** Virtual modulus state, shared with the other analysis backends. *)

val initial_budget : Hisa.scheme_kind -> budget
val make : config -> Hisa.t
