(* HISA backend over the real power-of-two CKKS scheme (the "HEAAN v1.0"
   target): {!Ckks_backend.Make} with the modulus handle read as [logq]. *)

module C = Chet_crypto.Big_ckks

type config = {
  ctx : C.context;
  rng : Chet_crypto.Sampling.t;
  keys : C.keys;
  secret : C.secret_key option;
}

module B = Ckks_backend.Make (struct
  let backend_name = "heaan"

  type context = C.context
  type keys = C.keys
  type secret_key = C.secret_key
  type plaintext = C.plaintext
  type ciphertext = C.ciphertext

  let slot_count = C.slot_count
  let ring_degree ctx = (C.params ctx).C.n
  let fresh_handle ctx = (C.params ctx).C.log_fresh
  let handle_of = C.logq_of
  let mod_to ctx ct logq = C.mod_down ctx ct ~logq
  let env_of ctx ct = { Hisa.env_n = (C.params ctx).C.n; env_r = 0; env_log_q = C.logq_of ct }
  let encode_real ctx ~handle ~scale values = C.encode_real ctx ~logq:handle ~scale values
  let decode = C.decode
  let encrypt ctx rng (keys : C.keys) pt = C.encrypt ctx rng keys.C.public pt
  let decrypt = C.decrypt
  let add = C.add
  let sub = C.sub
  let mul = C.mul
  let add_plain = C.add_plain
  let sub_plain = C.sub_plain
  let mul_plain = C.mul_plain
  let add_scalar = C.add_scalar
  let mul_scalar = C.mul_scalar
  let rotate = C.rotate
  let rescale = C.rescale
  let max_rescale = C.max_rescale
  let scale_of = C.scale_of
end)

let make (cfg : config) : Hisa.t =
  B.make { B.ctx = cfg.ctx; rng = cfg.rng; keys = cfg.keys; secret = cfg.secret }
