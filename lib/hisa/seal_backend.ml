(* HISA backend over the real RNS-CKKS scheme (the "SEAL v3.1" target).

   Plaintext handles are lazy: the underlying scheme needs plaintexts encoded
   at a specific level, which is only known when the plaintext meets a
   ciphertext, so [pt] stores the values and memoises per-level encodings. *)

module C = Chet_crypto.Rns_ckks
module Complexv = Chet_crypto.Complexv

type config = {
  ctx : C.context;
  rng : Chet_crypto.Sampling.t;
  keys : C.keys;
  secret : C.secret_key option;  (** client-side only; [decrypt] raises without it *)
}

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = C.slot_count cfg.ctx

    type pt = {
      values : float array;
      pscale : float;
      mutable cache : (int * C.plaintext) list; (* level -> encoded *)
    }

    type ct = C.ciphertext

    let encode values ~scale = { values; pscale = float_of_int scale; cache = [] }

    let encoded pt ~level =
      match List.assoc_opt level pt.cache with
      | Some p -> p
      | None ->
          let p = C.encode_real cfg.ctx ~level ~scale:pt.pscale pt.values in
          pt.cache <- (level, p) :: pt.cache;
          p

    let decode pt = Array.copy pt.values
    let encrypt pt = C.encrypt cfg.ctx cfg.rng cfg.keys.C.public (encoded pt ~level:(C.max_level cfg.ctx))

    let decrypt ct =
      match cfg.secret with
      | None ->
          Herr.raise_err ~backend:"seal" ~op:"decrypt"
            (Herr.Invalid_op { reason = "no secret key on this side" })
      | Some sk ->
          let z = C.decode cfg.ctx (C.decrypt cfg.ctx sk ct) in
          { values = z.Complexv.re; pscale = C.scale_of ct; cache = [] }

    let copy ct = ct (* ciphertexts are immutable in this implementation *)
    let free _ = ()
    let rot_left ct k = C.rotate cfg.ctx cfg.keys ct k
    let rot_right ct k = C.rotate cfg.ctx cfg.keys ct (-k)

    (* binary ops modulus-switch the fresher operand down, as SEAL's user
       code must do by hand *)
    let level_match a b =
      let l = Stdlib.min (C.level_of a) (C.level_of b) in
      (C.mod_switch_to_level cfg.ctx a l, C.mod_switch_to_level cfg.ctx b l)

    let add a b =
      let a, b = level_match a b in
      C.add cfg.ctx a b

    let sub a b =
      let a, b = level_match a b in
      C.sub cfg.ctx a b

    let mul a b =
      let a, b = level_match a b in
      C.mul cfg.ctx cfg.keys a b

    let add_plain c p = C.add_plain cfg.ctx c (encoded p ~level:(C.level_of c))
    let sub_plain c p = C.sub_plain cfg.ctx c (encoded p ~level:(C.level_of c))
    let mul_plain c p = C.mul_plain cfg.ctx c (encoded p ~level:(C.level_of c))
    let add_scalar c x = C.add_scalar cfg.ctx c x
    let sub_scalar c x = C.add_scalar cfg.ctx c (-.x)
    let mul_scalar c x ~scale = C.mul_scalar cfg.ctx c x ~scale:(float_of_int scale)

    (* fused ops compose the primitives: the win on a real scheme is the
       shared pt encoding cache, not slot-pass fusion *)
    let fma_scalar acc x w ~scale = add acc (mul_scalar x w ~scale)
    let fma_plain acc x p = add acc (mul_plain x p)
    let fma_rot acc x r = add acc (rot_left x r)
    let rescale c x = C.rescale cfg.ctx c x
    let max_rescale c ub = C.max_rescale cfg.ctx c ub
    let scale_of c = C.scale_of c

    let env_of c =
      { Hisa.env_n = (C.params cfg.ctx).C.n; env_r = C.level_of c; env_log_q = 0 }
  end)
