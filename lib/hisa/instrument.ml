(* Generic HISA interceptor: wraps any backend and records an operation
   histogram plus the multiset of rotation amounts. The compiler's
   rotation-keys selection pass (§5.4) is this recorder around the cleartext
   backend; the benches use it for op-count reporting. *)

type counters = {
  mutable encodes : int;
  mutable decodes : int;
  mutable encrypts : int;
  mutable decrypts : int;
  mutable adds : int;
  mutable plain_adds : int;
  mutable scalar_adds : int;
  mutable ct_muls : int;
  mutable plain_muls : int;
  mutable scalar_muls : int;
  mutable rescales : int;
  mutable rotation_counts : (int, int) Hashtbl.t;  (** left amount -> uses *)
}

let fresh_counters () =
  {
    encodes = 0;
    decodes = 0;
    encrypts = 0;
    decrypts = 0;
    adds = 0;
    plain_adds = 0;
    scalar_adds = 0;
    ct_muls = 0;
    plain_muls = 0;
    scalar_muls = 0;
    rescales = 0;
    rotation_counts = Hashtbl.create 32;
  }

(* Sorted so op-count reports and rotation-key listings are deterministic
   regardless of hash-table iteration order. *)
let distinct_rotations c =
  Hashtbl.fold (fun k _ acc -> k :: acc) c.rotation_counts [] |> List.sort compare

let total_rotations c = Hashtbl.fold (fun _ n acc -> acc + n) c.rotation_counts 0

let reset c =
  c.encodes <- 0;
  c.decodes <- 0;
  c.encrypts <- 0;
  c.decrypts <- 0;
  c.adds <- 0;
  c.plain_adds <- 0;
  c.scalar_adds <- 0;
  c.ct_muls <- 0;
  c.plain_muls <- 0;
  c.scalar_muls <- 0;
  c.rescales <- 0;
  Hashtbl.reset c.rotation_counts

let wrap (backend : Hisa.t) : Hisa.t * counters =
  let c = fresh_counters () in
  let module B = (val backend) in
  let record_rotation amount =
    let amount = ((amount mod B.slots) + B.slots) mod B.slots in
    if amount <> 0 then begin
      let cur = try Hashtbl.find c.rotation_counts amount with Not_found -> 0 in
      Hashtbl.replace c.rotation_counts amount (cur + 1)
    end
  in
  let wrapped =
    (module struct
      let slots = B.slots

      type pt = B.pt
      type ct = B.ct

      let encode v ~scale =
        c.encodes <- c.encodes + 1;
        B.encode v ~scale

      let decode p =
        c.decodes <- c.decodes + 1;
        B.decode p

      let encrypt p =
        c.encrypts <- c.encrypts + 1;
        B.encrypt p

      let decrypt x =
        c.decrypts <- c.decrypts + 1;
        B.decrypt x

      let copy = B.copy
      let free = B.free

      let rot_left x k =
        record_rotation k;
        B.rot_left x k

      let rot_right x k =
        record_rotation (-k);
        B.rot_right x k

      let add a b =
        c.adds <- c.adds + 1;
        B.add a b

      let sub a b =
        c.adds <- c.adds + 1;
        B.sub a b

      let add_plain a p =
        c.plain_adds <- c.plain_adds + 1;
        B.add_plain a p

      let sub_plain a p =
        c.plain_adds <- c.plain_adds + 1;
        B.sub_plain a p

      let add_scalar a x =
        c.scalar_adds <- c.scalar_adds + 1;
        B.add_scalar a x

      let sub_scalar a x =
        c.scalar_adds <- c.scalar_adds + 1;
        B.sub_scalar a x

      let mul a b =
        c.ct_muls <- c.ct_muls + 1;
        B.mul a b

      let mul_plain a p =
        c.plain_muls <- c.plain_muls + 1;
        B.mul_plain a p

      let mul_scalar a x ~scale =
        c.scalar_muls <- c.scalar_muls + 1;
        B.mul_scalar a x ~scale

      (* fused ops count as their components so op-count reports and the
         rotation-key selection pass see the same workload either way *)
      let fma_scalar acc x w ~scale =
        c.scalar_muls <- c.scalar_muls + 1;
        c.adds <- c.adds + 1;
        B.fma_scalar acc x w ~scale

      let fma_plain acc x p =
        c.plain_muls <- c.plain_muls + 1;
        c.adds <- c.adds + 1;
        B.fma_plain acc x p

      let fma_rot acc x r =
        record_rotation r;
        c.adds <- c.adds + 1;
        B.fma_rot acc x r

      let rescale a x =
        if x > 1 then c.rescales <- c.rescales + 1;
        B.rescale a x

      let max_rescale = B.max_rescale
      let scale_of = B.scale_of
      let env_of = B.env_of
    end : Hisa.S)
  in
  (wrapped, c)
