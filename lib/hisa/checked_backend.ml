(* Precondition/postcondition-validating HISA interceptor, modeled on
   Instrument: wrap any backend and every op is checked against a *shadow*
   data-flow computation of what the scale and modulus level must be —
   exactly the §5.1 trick of executing the circuit under a different
   interpretation, here used as a runtime monitor instead of an analysis.

   The checker maintains, per ciphertext:
     - a shadow scale (mirrors the scheme's scale algebra op by op), and
     - a shadow level (RNS primes remaining, or logQ bits remaining),
   and validates both against what the wrapped backend *reports* after every
   operation. Divergence means either a violated precondition upstream or a
   corrupted/faulty backend downstream (see Fault_backend), and raises a
   typed {!Herr.Fhe_error} instead of computing garbage:

     - add/sub (and the plain variants) require compatible operand scales
       -> [Scale_mismatch];
     - multiplies require modulus headroom                -> [Modulus_exhausted];
     - rescale divisors must be legal for the scheme kind -> [Illegal_rescale],
       and the backend must actually apply them (a dropped rescale is caught
       by the postcondition)                              -> [Illegal_rescale];
     - levels must evolve exactly as the scheme dictates  -> [Level_mismatch];
     - rotations must stay inside the SIMD width          -> [Slot_overflow];
     - NaN/Inf may neither enter (encode) nor leave (decode) the scheme
                                                          -> [Numeric_blowup];
     - decoded magnitudes beyond any plausible message, and any use of a
       freed handle                                       -> [Corrupt_ciphertext].

   This is the moral equivalent of SEAL's transparent-ciphertext guards and
   Intel HEXL's precondition-checking debug builds: a deployment can run the
   whole inference under [wrap] and turn silent corruption into a typed,
   per-op diagnosable error. *)

(* The noise-margin guard (DESIGN.md §16): alongside scale and level, the
   checker can track a conservative interval model of CKKS error growth —
   per ciphertext, an absolute message-space error bound [serr] and a
   message magnitude bound [smag], grown per op with the standard heuristic
   rules (LibFHE's catalogue: additive for add/rot/rescale, cross-term
   products for multiplies). When the bound crosses the deployment's
   precision tolerance, the request raises a typed [Precision_exhausted]
   *before* it decrypts to garbage — turning "the answer looked wrong" into
   a diagnosable, pre-decrypt failure. The constants are heuristics
   calibrated to this repo's backends at the default scales; the point is
   the monotone bound and the margin gauge, not a tight noise proof. *)
type noise_model = {
  nm_fresh : float;  (** message-space error of a fresh encryption *)
  nm_encode : float;  (** error contributed by encoding a plaintext *)
  nm_rot : float;  (** key-switch/relin/rescale rounding error per op *)
  nm_tolerance : float;  (** error bound at which [Precision_exhausted] fires *)
}

let default_noise_model ?(tolerance = 0.05) () =
  { nm_fresh = 1e-5; nm_encode = 1e-6; nm_rot = 1e-6; nm_tolerance = tolerance }

type config = {
  scheme : Hisa.scheme_kind;
      (** must describe the wrapped backend's *actual* modulus chain (see
          e.g. {!Compiler.instantiate_with_scheme}) *)
  tolerance : float;  (** relative slack for operand-scale compatibility *)
  value_bound : float;  (** largest plausible decoded magnitude *)
  noise : noise_model option;  (** None: noise-margin guard off *)
}

let default_config ~scheme =
  { scheme; tolerance = Herr.scale_tolerance; value_bound = 1e30; noise = None }

let log2f x = Float.log x /. Float.log 2.0

let wrap ?(config = None) ?margin ~scheme (backend : Hisa.t) : Hisa.t =
  let cfg = match config with Some c -> c | None -> default_config ~scheme in
  let nm = cfg.noise in
  let module B = (val backend) in
  (module struct
    let slots = B.slots

    type pt = { bp : B.pt; pscale : float; pmax : float }

    type ct = {
      bc : B.ct;
      cid : int;
      mutable freed : bool;
      mutable sscale : float;  (** shadow scale *)
      mutable slevel : int;  (** shadow level: RNS primes or logQ bits remaining *)
      mutable serr : float;  (** noise guard: message-space error bound *)
      mutable smag : float;  (** noise guard: message magnitude bound *)
    }

    let next_id = ref 0

    let level_of_env (e : Hisa.op_env) =
      match cfg.scheme with
      | Hisa.Rns_chain _ -> e.Hisa.env_r
      | Hisa.Pow2_modulus _ -> e.Hisa.env_log_q

    let err ~op e = Herr.raise_err ~backend:"checked" ~op e

    (* noise-guard plumbing: all bound arithmetic degenerates to zeros when
       no model is configured, so the guard never fires and costs a few
       float ops per call *)
    let nmv f = match nm with Some m -> f m | None -> 0.0

    let margin_of m e = log2f (m.nm_tolerance /. Float.max e Float.min_float)

    let guard ~op e =
      match nm with
      | Some m when e > m.nm_tolerance ->
          (match margin with Some r -> r := margin_of m e | None -> ());
          err ~op (Herr.Precision_exhausted { margin_bits = margin_of m e; tolerance = m.nm_tolerance })
      | _ -> ()

    let gauge e =
      match (nm, margin) with Some m, Some r -> r := margin_of m e | _ -> ()

    (* shadow-vs-observed scale agreement: the shadow mirrors the backend's
       own float algebra, so only representation drift (sequential vs fused
       divisions in RNS rescale) separates them *)
    let close a b =
      Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

    let compatible a b = Float.abs (a -. b) <= cfg.tolerance *. Float.max 1.0 (Float.max a b)

    let live ~op c =
      if c.freed then
        err ~op (Herr.Corrupt_ciphertext { reason = Printf.sprintf "use of freed ciphertext #%d" c.cid })

    (* Validate that the backend's report agrees with the shadow. Runs both
       as an operand precondition (catches in-place corruption) and as the
       postcondition on every fresh result. *)
    let observe ~op c =
      live ~op c;
      let rs = B.scale_of c.bc in
      if not (close rs c.sscale) then err ~op (Herr.Scale_mismatch { expected = c.sscale; got = rs });
      let rl = level_of_env (B.env_of c.bc) in
      if rl <> c.slevel then err ~op (Herr.Level_mismatch { expected = c.slevel; got = rl })

    (* Build a checked handle for a fresh backend result whose shadow values
       are [sscale]/[slevel]; verifies the postcondition, then adopts the
       backend's exact float scale so drift never accumulates. The noise
       guard fires here: the bound is monotone, so the first op to push it
       past tolerance is the one named in the error. *)
    let mk ~op bc ~sscale ~slevel ~serr ~smag =
      guard ~op serr;
      incr next_id;
      let c = { bc; cid = !next_id; freed = false; sscale; slevel; serr; smag } in
      observe ~op c;
      c.sscale <- B.scale_of bc;
      c

    let depth ~op c =
      if c.slevel < 1 then err ~op (Herr.Modulus_exhausted { level = c.slevel; requested = 1 })

    let screen ~op v =
      Array.iteri
        (fun i x ->
          if Float.is_nan x || Float.abs x = Float.infinity then
            err ~op (Herr.Numeric_blowup { slot = i; value = x }))
        v

    let screen_scalar ~op x =
      if Float.is_nan x || Float.abs x = Float.infinity then
        err ~op (Herr.Numeric_blowup { slot = -1; value = x })

    (* --- encode / encrypt / decrypt / decode ------------------------- *)

    let encode values ~scale =
      if Array.length values > slots then
        err ~op:"encode" (Herr.Slot_overflow { slots; requested = Array.length values });
      if scale < 1 then
        err ~op:"encode"
          (Herr.Invalid_op { reason = Printf.sprintf "encode scale must be >= 1, got %d" scale });
      screen ~op:"encode" values;
      let pmax = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 values in
      { bp = B.encode values ~scale; pscale = float_of_int scale; pmax }

    let decode p =
      let v = B.decode p.bp in
      screen ~op:"decode" v;
      Array.iteri
        (fun i x ->
          if Float.abs x > cfg.value_bound then
            err ~op:"decode"
              (Herr.Corrupt_ciphertext
                 {
                   reason =
                     Printf.sprintf
                       "decoded slot %d magnitude %.3g exceeds plausible bound %.3g (garbage from a corrupted ciphertext?)"
                       i x cfg.value_bound;
                 }))
        v;
      v

    let encrypt p =
      let bc = B.encrypt p.bp in
      (* fresh ciphertexts anchor the shadow level at the backend's report *)
      mk ~op:"encrypt" bc ~sscale:p.pscale ~slevel:(level_of_env (B.env_of bc))
        ~serr:(nmv (fun m -> m.nm_fresh +. m.nm_encode))
        ~smag:p.pmax

    let decrypt c =
      observe ~op:"decrypt" c;
      (* the pre-decrypt precision gate: a bound past tolerance means the
         plaintext under this ciphertext is already garbage *)
      guard ~op:"decrypt" c.serr;
      gauge c.serr;
      { bp = B.decrypt c.bc; pscale = c.sscale; pmax = c.smag }

    let copy c =
      observe ~op:"copy" c;
      mk ~op:"copy" (B.copy c.bc) ~sscale:c.sscale ~slevel:c.slevel ~serr:c.serr ~smag:c.smag

    let free c =
      live ~op:"free" c;
      c.freed <- true;
      B.free c.bc

    (* --- rotations ---------------------------------------------------- *)

    let rot ~op f c k =
      observe ~op c;
      if k >= slots || k <= -slots then err ~op (Herr.Slot_overflow { slots; requested = k });
      mk ~op (f c.bc k) ~sscale:c.sscale ~slevel:c.slevel
        ~serr:(c.serr +. nmv (fun m -> m.nm_rot))
        ~smag:c.smag

    let rot_left c k = rot ~op:"rot_left" B.rot_left c k
    let rot_right c k = rot ~op:"rot_right" B.rot_right c k

    (* --- additive ops ------------------------------------------------- *)

    let binop ~op f a b =
      observe ~op a;
      observe ~op b;
      if not (compatible a.sscale b.sscale) then
        err ~op (Herr.Scale_mismatch { expected = a.sscale; got = b.sscale });
      mk ~op (f a.bc b.bc) ~sscale:a.sscale ~slevel:(Stdlib.min a.slevel b.slevel)
        ~serr:(a.serr +. b.serr)
        ~smag:(a.smag +. b.smag)

    let add a b = binop ~op:"add" B.add a b
    let sub a b = binop ~op:"sub" B.sub a b

    let plain_add ~op f c p =
      observe ~op c;
      if not (compatible c.sscale p.pscale) then
        err ~op (Herr.Scale_mismatch { expected = c.sscale; got = p.pscale });
      mk ~op (f c.bc p.bp) ~sscale:c.sscale ~slevel:c.slevel
        ~serr:(c.serr +. nmv (fun m -> m.nm_encode))
        ~smag:(c.smag +. p.pmax)

    let add_plain c p = plain_add ~op:"add_plain" B.add_plain c p
    let sub_plain c p = plain_add ~op:"sub_plain" B.sub_plain c p

    let scalar ~op f c x =
      observe ~op c;
      screen_scalar ~op x;
      mk ~op (f c.bc x) ~sscale:c.sscale ~slevel:c.slevel ~serr:c.serr
        ~smag:(c.smag +. Float.abs x)

    let add_scalar c x = scalar ~op:"add_scalar" B.add_scalar c x
    let sub_scalar c x = scalar ~op:"sub_scalar" B.sub_scalar c x

    (* --- multiplicative ops ------------------------------------------- *)

    let mul a b =
      observe ~op:"mul" a;
      observe ~op:"mul" b;
      depth ~op:"mul" a;
      depth ~op:"mul" b;
      (* cross-term error growth: |(a+ea)(b+eb) - ab| <= ea|b| + eb|a| + ea·eb,
         plus the relinearization rounding term *)
      mk ~op:"mul" (B.mul a.bc b.bc) ~sscale:(a.sscale *. b.sscale)
        ~slevel:(Stdlib.min a.slevel b.slevel)
        ~serr:((a.serr *. b.smag) +. (b.serr *. a.smag) +. (a.serr *. b.serr) +. nmv (fun m -> m.nm_rot))
        ~smag:(a.smag *. b.smag)

    let mul_plain c p =
      observe ~op:"mul_plain" c;
      depth ~op:"mul_plain" c;
      mk ~op:"mul_plain" (B.mul_plain c.bc p.bp) ~sscale:(c.sscale *. p.pscale) ~slevel:c.slevel
        ~serr:((c.serr *. p.pmax) +. (c.smag *. nmv (fun m -> m.nm_encode)))
        ~smag:(c.smag *. p.pmax)

    let mul_scalar c x ~scale =
      observe ~op:"mul_scalar" c;
      screen_scalar ~op:"mul_scalar" x;
      depth ~op:"mul_scalar" c;
      (* the scalar is quantized to the 1/scale grid before multiplying *)
      mk ~op:"mul_scalar"
        (B.mul_scalar c.bc x ~scale)
        ~sscale:(c.sscale *. float_of_int scale)
        ~slevel:c.slevel
        ~serr:((c.serr *. Float.abs x) +. (c.smag /. float_of_int scale))
        ~smag:(c.smag *. Float.abs x)

    (* --- fused ops ----------------------------------------------------- *)

    (* Composed from this module's own checked ops: every operand and
       intermediate gets the full pre/postcondition treatment, and the
       component results are bit-identical to the fused backend ops by the
       HISA contract. *)
    let fma_scalar acc x w ~scale = add acc (mul_scalar x w ~scale)
    let fma_plain acc x p = add acc (mul_plain x p)
    let fma_rot acc x r = add acc (rot_left x (((r mod slots) + slots) mod slots))

    (* --- rescaling ---------------------------------------------------- *)

    let log2_int n =
      let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
      loop n 0

    (* Predict the level after applying divisor [x] at shadow level [l],
       raising [Illegal_rescale]/[Modulus_exhausted] when the scheme kind
       cannot apply it — §5.2's maxRescale legality, enforced. *)
    let rescale_target ~op c x =
      match cfg.scheme with
      | Hisa.Rns_chain primes ->
          let l = ref c.slevel and rem = ref x in
          while !rem > 1 do
            if !l < 1 then err ~op (Herr.Modulus_exhausted { level = c.slevel; requested = x });
            if !l > Array.length primes then
              err ~op
                (Herr.Invalid_op
                   {
                     reason =
                       Printf.sprintf "shadow level %d exceeds the declared %d-prime chain" !l
                         (Array.length primes);
                   });
            let q = primes.(!l - 1) in
            if !rem mod q <> 0 then
              err ~op
                (Herr.Illegal_rescale
                   {
                     divisor = x;
                     reason =
                       Printf.sprintf "not a product of the next chain primes (next is %d, remainder %d)" q !rem;
                   });
            rem := !rem / q;
            decr l
          done;
          !l
      | Hisa.Pow2_modulus _ ->
          if x land (x - 1) <> 0 then
            err ~op (Herr.Illegal_rescale { divisor = x; reason = "divisor must be a power of two" });
          let k = log2_int x in
          if k >= c.slevel then err ~op (Herr.Modulus_exhausted { level = c.slevel; requested = k });
          c.slevel - k

    let rescale c x =
      observe ~op:"rescale" c;
      if x < 1 then
        err ~op:"rescale" (Herr.Illegal_rescale { divisor = x; reason = "divisor must be >= 1" });
      if x = 1 then c
      else begin
        let slevel' = rescale_target ~op:"rescale" c x in
        let bc = B.rescale c.bc x in
        (* postcondition: the backend must actually have divided the scale —
           a dropped rescale otherwise silently desynchronises every
           downstream scale *)
        let expected = c.sscale /. float_of_int x in
        let rs = B.scale_of bc in
        if not (close rs expected) then
          err ~op:"rescale"
            (Herr.Illegal_rescale
               {
                 divisor = x;
                 reason =
                   Printf.sprintf "backend did not apply the divisor: scale %.6g where %.6g expected (dropped rescale?)"
                     rs expected;
               });
        mk ~op:"rescale" bc ~sscale:expected ~slevel:slevel'
          ~serr:(c.serr +. nmv (fun m -> m.nm_rot))
          ~smag:c.smag
      end

    let max_rescale c ub =
      observe ~op:"max_rescale" c;
      B.max_rescale c.bc ub

    let scale_of c =
      live ~op:"scale_of" c;
      B.scale_of c.bc

    let env_of c =
      live ~op:"env_of" c;
      B.env_of c.bc
  end : Hisa.S)
