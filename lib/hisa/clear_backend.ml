(* Unencrypted HISA backend: computes on cleartext float vectors while
   tracking scales and modulus consumption with the same semantics as the
   target scheme. This is both the reference inference engine and the
   execution vehicle for CHET's data-flow analyses. *)

type config = {
  slots : int;
  scheme : Hisa.scheme_kind;
  strict_modulus : bool;
      (* raise [Herr.Modulus_exhausted] instead of silently computing once
         the virtual modulus runs out — used by the scale search and the
         failure-injection tests *)
  encode_noise : bool;
      (* model the CKKS approximation noise of encoding: rounding the n
         coefficients perturbs each slot by ~N(0, n/12)/scale — except for
         all-equal vectors, which encode into a single coefficient
         (footnote 3 of the paper). Off by default (bit-exact reference);
         the profile-guided scale search turns it on. *)
}

type budget = Rns_level of int | Logq of int

let err ~op e = Herr.raise_err ~backend:"clear" ~op e

let initial_budget = function
  | Hisa.Rns_chain primes -> Rns_level (Array.length primes)
  | Hisa.Pow2_modulus logq -> Logq logq

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = cfg.slots

    type pt = { pv : float array; pscale : float }
    type ct = { v : float array; scale : float; budget : budget }

    let fit values =
      let v = Array.make cfg.slots 0.0 in
      Array.blit values 0 v 0 (Stdlib.min (Array.length values) cfg.slots);
      v

    let encode values ~scale =
      (* model fixed-point quantisation: values are representable only at
         multiples of 1/scale, as in the real encoders — this is what makes
         the profile-guided scale search (§5.5) meaningful on this backend *)
      let s = float_of_int scale in
      let pv = Array.map (fun v -> Float.round (v *. s) /. s) (fit values) in
      if cfg.encode_noise then begin
        let all_equal = Array.for_all (fun v -> v = pv.(0)) pv in
        if not all_equal then begin
          (* deterministic per-plaintext noise: same vector -> same noise *)
          let st = Random.State.make [| Hashtbl.hash (scale, values) |] in
          let amp = sqrt (float_of_int (2 * cfg.slots) /. 12.0) /. s in
          let gauss () =
            let u1 = Random.State.float st 1.0 +. 1e-12 and u2 = Random.State.float st 1.0 in
            sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
          in
          for i = 0 to cfg.slots - 1 do
            pv.(i) <- pv.(i) +. (amp *. gauss ())
          done
        end
      end;
      { pv; pscale = s }
    let decode pt = Array.copy pt.pv
    let encrypt pt = { v = Array.copy pt.pv; scale = pt.pscale; budget = initial_budget cfg.scheme }
    let decrypt ct = { pv = Array.copy ct.v; pscale = ct.scale }
    let copy ct = { ct with v = Array.copy ct.v }
    let free _ = ()

    let rot_left ct k =
      let n = cfg.slots in
      let k = ((k mod n) + n) mod n in
      { ct with v = Array.init n (fun i -> ct.v.((i + k) mod n)) }

    let rot_right ct k = rot_left ct (-k)

    (* kernels equalise scales only approximately (integer mask factors, RNS
       rescaling drift); [Herr.scale_tolerance] relative slack admits value
       error well below the scheme noise floor *)
    let scales_compatible = Herr.scales_compatible

    (* binary ops silently modulus-switch to the lower operand, as the real
       backends do *)
    let budget_min ~op a b =
      match (a, b) with
      | Rns_level x, Rns_level y -> Rns_level (Stdlib.min x y)
      | Logq x, Logq y -> Logq (Stdlib.min x y)
      | _ -> err ~op (Herr.Invalid_op { reason = "mixed scheme budgets (RNS vs pow2)" })

    let check2 op a b =
      if not (scales_compatible a.scale b.scale) then
        err ~op (Herr.Scale_mismatch { expected = a.scale; got = b.scale })

    let map2 f a b = Array.init cfg.slots (fun i -> f a.(i) b.(i))

    let add a b =
      check2 "add" a b;
      { a with v = map2 ( +. ) a.v b.v; budget = budget_min ~op:"add" a.budget b.budget }

    let sub a b =
      check2 "sub" a b;
      { a with v = map2 ( -. ) a.v b.v; budget = budget_min ~op:"sub" a.budget b.budget }

    let add_plain c p =
      if not (scales_compatible c.scale p.pscale) then
        err ~op:"add_plain" (Herr.Scale_mismatch { expected = c.scale; got = p.pscale });
      { c with v = map2 ( +. ) c.v p.pv }

    let sub_plain c p =
      if not (scales_compatible c.scale p.pscale) then
        err ~op:"sub_plain" (Herr.Scale_mismatch { expected = c.scale; got = p.pscale });
      { c with v = map2 ( -. ) c.v p.pv }

    let add_scalar c x = { c with v = Array.map (fun a -> a +. x) c.v }
    let sub_scalar c x = add_scalar c (-.x)

    let check_depth ~op c =
      if cfg.strict_modulus then begin
        match c.budget with
        | Rns_level l -> if l < 1 then err ~op (Herr.Modulus_exhausted { level = l; requested = 1 })
        | Logq q -> if q < 1 then err ~op (Herr.Modulus_exhausted { level = q; requested = 1 })
      end

    let log2f x = log x /. log 2.0

    (* Bits of virtual modulus left at this budget. *)
    let capacity_bits = function
      | Rns_level l -> (
          match cfg.scheme with
          | Hisa.Rns_chain primes ->
              let b = ref 0.0 in
              for i = 0 to Stdlib.min l (Array.length primes) - 1 do
                b := !b +. log2f (float_of_int primes.(i))
              done;
              !b
          | Hisa.Pow2_modulus _ -> 0.0)
      | Logq q -> float_of_int q

    (* §5.2's actual modulus constraint, enforced in strict mode: the scale
       (the fixed-point magnitude of the message) must stay below the
       remaining modulus, or the message wraps. Rescaling never descends
       below the last prime (as in the real schemes), so on a too-small
       pinned chain a multiplication backlog genuinely exhausts the budget
       here — the failure mode the scale search must degrade around. *)
    let check_capacity ~op budget result_scale =
      if cfg.strict_modulus then begin
        let cap = capacity_bits budget in
        let need = log2f result_scale in
        if need > cap then
          err ~op
            (Herr.Modulus_exhausted
               { level = int_of_float cap; requested = int_of_float (Float.ceil need) })
      end

    let mul a b =
      check_depth ~op:"mul" a;
      let budget = budget_min ~op:"mul" a.budget b.budget in
      check_capacity ~op:"mul" budget (a.scale *. b.scale);
      { v = map2 ( *. ) a.v b.v; scale = a.scale *. b.scale; budget }

    let mul_plain c p =
      check_depth ~op:"mul_plain" c;
      check_capacity ~op:"mul_plain" c.budget (c.scale *. p.pscale);
      { c with v = map2 ( *. ) c.v p.pv; scale = c.scale *. p.pscale }

    let mul_scalar c x ~scale =
      check_depth ~op:"mul_scalar" c;
      check_capacity ~op:"mul_scalar" c.budget (c.scale *. float_of_int scale);
      (* the runtime multiplies by the *rounded* integer, so the reference
         must quantise identically for bit-faithful comparison *)
      let quantised = Float.round (x *. float_of_int scale) /. float_of_int scale in
      { c with v = Array.map (fun a -> a *. quantised) c.v; scale = c.scale *. float_of_int scale }

    (* Fused accumulate ops: one result array per op instead of two
       (intermediate + sum). The per-slot expression is exactly the
       composed [add (mul_* ...)] arithmetic — same operand order, same
       quantisation — so outputs stay bit-identical to the interpretive
       path; checks replicate the composition's in order. *)
    let fma_scalar acc x w ~scale =
      check_depth ~op:"fma_scalar" x;
      check_capacity ~op:"fma_scalar" x.budget (x.scale *. float_of_int scale);
      let product_scale = x.scale *. float_of_int scale in
      if not (scales_compatible acc.scale product_scale) then
        err ~op:"fma_scalar" (Herr.Scale_mismatch { expected = acc.scale; got = product_scale });
      let quantised = Float.round (w *. float_of_int scale) /. float_of_int scale in
      {
        v = Array.init cfg.slots (fun i -> acc.v.(i) +. (x.v.(i) *. quantised));
        scale = acc.scale;
        budget = budget_min ~op:"fma_scalar" acc.budget x.budget;
      }

    let fma_plain acc x p =
      check_depth ~op:"fma_plain" x;
      check_capacity ~op:"fma_plain" x.budget (x.scale *. p.pscale);
      let product_scale = x.scale *. p.pscale in
      if not (scales_compatible acc.scale product_scale) then
        err ~op:"fma_plain" (Herr.Scale_mismatch { expected = acc.scale; got = product_scale });
      {
        v = Array.init cfg.slots (fun i -> acc.v.(i) +. (x.v.(i) *. p.pv.(i)));
        scale = acc.scale;
        budget = budget_min ~op:"fma_plain" acc.budget x.budget;
      }

    let fma_rot acc x r =
      check2 "fma_rot" acc x;
      let n = cfg.slots in
      let k = ((r mod n) + n) mod n in
      {
        acc with
        v = Array.init n (fun i -> acc.v.(i) +. x.v.((i + k) mod n));
        budget = budget_min ~op:"fma_rot" acc.budget x.budget;
      }

    let max_rescale ct ub =
      match (cfg.scheme, ct.budget) with
      | Hisa.Rns_chain primes, Rns_level level ->
          let prod = ref 1 and l = ref level in
          let continue_loop = ref true in
          while !continue_loop && !l > 1 do
            let q = primes.(!l - 1) in
            if !prod <= ub / q && !prod * q <= ub then begin
              prod := !prod * q;
              decr l
            end
            else continue_loop := false
          done;
          !prod
      | Hisa.Pow2_modulus _, Logq logq ->
          if ub < 2 then 1
          else begin
            let k = ref 0 in
            while 1 lsl (!k + 1) <= ub && !k + 1 < logq do
              incr k
            done;
            1 lsl !k
          end
      | _ -> assert false

    let rescale ct x =
      if x = 1 then ct
      else begin
        match (cfg.scheme, ct.budget) with
        | Hisa.Rns_chain primes, Rns_level level ->
            let l = ref level and rem = ref x in
            while !rem > 1 do
              if !l < 1 then
                err ~op:"rescale" (Herr.Modulus_exhausted { level; requested = x });
              let q = primes.(!l - 1) in
              if !rem mod q <> 0 then
                err ~op:"rescale"
                  (Herr.Illegal_rescale
                     {
                       divisor = x;
                       reason =
                         Printf.sprintf "not a product of the next chain primes (next is %d)" q;
                     });
              rem := !rem / q;
              decr l
            done;
            { ct with scale = ct.scale /. float_of_int x; budget = Rns_level !l }
        | Hisa.Pow2_modulus _, Logq logq ->
            if x land (x - 1) <> 0 then
              err ~op:"rescale"
                (Herr.Illegal_rescale { divisor = x; reason = "divisor must be a power of two" });
            let k = int_of_float (Float.round (log (float_of_int x) /. log 2.0)) in
            if k >= logq then
              err ~op:"rescale" (Herr.Modulus_exhausted { level = logq; requested = k });
            { ct with scale = ct.scale /. float_of_int x; budget = Logq (logq - k) }
        | _ -> assert false
      end

    let scale_of ct = ct.scale

    let env_of ct =
      match ct.budget with
      | Rns_level r -> { Hisa.env_n = cfg.slots * 2; env_r = r; env_log_q = 0 }
      | Logq q -> { Hisa.env_n = cfg.slots * 2; env_r = 0; env_log_q = q }
  end)
