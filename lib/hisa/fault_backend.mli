(** Deterministic fault-injection HISA wrapper — the adversarial twin of
    {!Checked_backend}. Wraps any backend and, once the op counter reaches
    [trigger], corrupts exactly one thing in a seeded, reproducible way, so
    tests can prove each corruption class the monitors claim to catch
    actually surfaces as the matching typed {!Chet_herr.Herr.Fhe_error}. *)

type fault =
  | Scale_corruption
      (** the next fresh ciphertext's [scale_of] lies by a multiplicative
          factor -> caught as [Scale_mismatch] *)
  | Premature_level_drop
      (** the next fresh ciphertext's [env_of] under-reports its level
          -> caught as [Level_mismatch] *)
  | Slot_scramble
      (** decode rotates the slot vector and drags in masked garbage
          -> caught as [Corrupt_ciphertext] by the magnitude screen *)
  | Nan_poison  (** decode poisons one seeded slot with NaN -> [Numeric_blowup] *)
  | Dropped_rescale
      (** one rescale silently becomes the identity -> [Illegal_rescale] *)
  | Silent_corruption
      (** decode perturbs every slot by a seeded small-magnitude offset that
          passes every per-op screen; only the end-to-end sentinel lane
          (DESIGN.md §16) catches it -> [Integrity_violation], raised by the
          sentinel verifier rather than any wrapper *)

val fault_name : fault -> string

type config = {
  fault : fault option;  (** [None] = transparent pass-through *)
  trigger : int;  (** op count at which the fault arms itself *)
  seed : int;  (** drives which slot / rotation the corruption picks *)
}

val default_config : ?trigger:int -> ?seed:int -> fault option -> config

type injection_log = {
  mutable fired : bool;  (** did the armed fault actually corrupt something? *)
  mutable fired_at_op : int;  (** op counter value when it fired *)
  mutable fired_in : string;  (** HISA op name it fired inside *)
}

val wrap : config -> Hisa.t -> Hisa.t * injection_log
(** Faulting view of the backend plus the log that records whether, where
    and inside which op the armed fault fired. Faults fire once (first
    opportunity at or after [trigger]); with [fault = None] the wrapper is
    observationally identical to the bare backend. *)
