module Complexv = Chet_crypto.Complexv

module type SCHEME = sig
  val backend_name : string

  type context
  type keys
  type secret_key
  type plaintext
  type ciphertext

  val slot_count : context -> int
  val ring_degree : context -> int

  val fresh_handle : context -> int
  (** Modulus handle of a fresh ciphertext: the max RNS level (SEAL) or
      [log_fresh] (HEAAN). *)

  val handle_of : ciphertext -> int
  val mod_to : context -> ciphertext -> int -> ciphertext
  val env_of : context -> ciphertext -> Hisa.op_env
  val encode_real : context -> handle:int -> scale:float -> float array -> plaintext
  val decode : context -> plaintext -> Complexv.t
  val encrypt : context -> Chet_crypto.Sampling.t -> keys -> plaintext -> ciphertext
  val decrypt : context -> secret_key -> ciphertext -> plaintext
  val add : context -> ciphertext -> ciphertext -> ciphertext
  val sub : context -> ciphertext -> ciphertext -> ciphertext
  val mul : context -> keys -> ciphertext -> ciphertext -> ciphertext
  val add_plain : context -> ciphertext -> plaintext -> ciphertext
  val sub_plain : context -> ciphertext -> plaintext -> ciphertext
  val mul_plain : context -> ciphertext -> plaintext -> ciphertext
  val add_scalar : context -> ciphertext -> float -> ciphertext
  val mul_scalar : context -> ciphertext -> float -> scale:float -> ciphertext
  val rotate : context -> keys -> ciphertext -> int -> ciphertext
  val rescale : context -> ciphertext -> int -> ciphertext
  val max_rescale : context -> ciphertext -> int -> int
  val scale_of : ciphertext -> float
end

module Make (S : SCHEME) = struct
  type config = {
    ctx : S.context;
    rng : Chet_crypto.Sampling.t;
    keys : S.keys;
    secret : S.secret_key option;  (** client-side only; [decrypt] raises without it *)
  }

  let make (cfg : config) : Hisa.t =
    (module struct
      let slots = S.slot_count cfg.ctx

      (* Plaintext handles are lazy: the underlying scheme needs plaintexts
         encoded at a specific modulus handle, which is only known when the
         plaintext meets a ciphertext, so [pt] stores the values and memoises
         per-handle encodings. *)
      type pt = {
        values : float array;
        pscale : float;
        mutable cache : (int * S.plaintext) list; (* handle -> encoded *)
      }

      type ct = S.ciphertext

      let encode values ~scale = { values; pscale = float_of_int scale; cache = [] }

      let encoded pt ~handle =
        match List.assoc_opt handle pt.cache with
        | Some p -> p
        | None ->
            let p = S.encode_real cfg.ctx ~handle ~scale:pt.pscale pt.values in
            pt.cache <- (handle, p) :: pt.cache;
            p

      let decode pt = Array.copy pt.values

      let encrypt pt =
        S.encrypt cfg.ctx cfg.rng cfg.keys (encoded pt ~handle:(S.fresh_handle cfg.ctx))

      let decrypt ct =
        match cfg.secret with
        | None ->
            Herr.raise_err ~backend:S.backend_name ~op:"decrypt"
              (Herr.Invalid_op { reason = "no secret key on this side" })
        | Some sk ->
            let z = S.decode cfg.ctx (S.decrypt cfg.ctx sk ct) in
            { values = z.Complexv.re; pscale = S.scale_of ct; cache = [] }

      let copy ct = ct (* ciphertexts are immutable in this implementation *)
      let free _ = ()
      let rot_left ct k = S.rotate cfg.ctx cfg.keys ct k
      let rot_right ct k = S.rotate cfg.ctx cfg.keys ct (-k)

      (* binary ops modulus-switch the fresher operand down, as the scheme's
         user code must do by hand *)
      let handle_match a b =
        let h = Stdlib.min (S.handle_of a) (S.handle_of b) in
        (S.mod_to cfg.ctx a h, S.mod_to cfg.ctx b h)

      let add a b =
        let a, b = handle_match a b in
        S.add cfg.ctx a b

      let sub a b =
        let a, b = handle_match a b in
        S.sub cfg.ctx a b

      let mul a b =
        let a, b = handle_match a b in
        S.mul cfg.ctx cfg.keys a b

      let add_plain c p = S.add_plain cfg.ctx c (encoded p ~handle:(S.handle_of c))
      let sub_plain c p = S.sub_plain cfg.ctx c (encoded p ~handle:(S.handle_of c))
      let mul_plain c p = S.mul_plain cfg.ctx c (encoded p ~handle:(S.handle_of c))
      let add_scalar c x = S.add_scalar cfg.ctx c x
      let sub_scalar c x = S.add_scalar cfg.ctx c (-.x)
      let mul_scalar c x ~scale = S.mul_scalar cfg.ctx c x ~scale:(float_of_int scale)

      (* fused ops compose the primitives: the win on a real scheme is the
         shared pt encoding cache, not slot-pass fusion *)
      let fma_scalar acc x w ~scale = add acc (mul_scalar x w ~scale)
      let fma_plain acc x p = add acc (mul_plain x p)
      let fma_rot acc x r = add acc (rot_left x r)
      let rescale c x = S.rescale cfg.ctx c x
      let max_rescale c ub = S.max_rescale cfg.ctx c ub
      let scale_of c = S.scale_of c
      let env_of c = S.env_of cfg.ctx c
    end)
end
