(* Simulation backend: wraps another HISA backend and advances a latency
   clock per operation according to a cost model. The default wraps the
   value-free Shape_backend (fast — this is what the compiler's cost pass and
   the latency benches run); [make_with_values] wraps the cleartext backend
   when the simulated run's outputs matter (examples that print predictions).

   The clock is calibrated against microbenchmarks of the real backends
   (bench/main.exe --calibrate). *)

type clock = {
  mutable elapsed : float;
  mutable op_count : int;
  mutable rotate_elapsed : float;
  mutable rotate_count : int;
}

type config = {
  n : int;  (** ring dimension (slots = n/2) *)
  scheme : Hisa.scheme_kind;
  costs : Hisa.cost_model;
}

let budget_env (cfg : config) = function
  | Clear_backend.Rns_level r -> { Hisa.env_n = cfg.n; env_r = r; env_log_q = 0 }
  | Clear_backend.Logq q -> { Hisa.env_n = cfg.n; env_r = 0; env_log_q = q }

let make_over (inner : Hisa.t) (cfg : config) : Hisa.t * clock =
  let clock = { elapsed = 0.0; op_count = 0; rotate_elapsed = 0.0; rotate_count = 0 } in
  let module Inner = (val inner) in
  let backend =
    (module struct
      let slots = Inner.slots

      type pt = Inner.pt
      (* the modulus budget needed for cost evaluation is tracked in
         parallel with the inner backend's own state *)
      type ct = { ict : Inner.ct; budget : Clear_backend.budget }

      let tick cost_of budget =
        clock.elapsed <- clock.elapsed +. cost_of (budget_env cfg budget);
        clock.op_count <- clock.op_count + 1

      let encode = Inner.encode
      let decode = Inner.decode
      let encrypt pt = { ict = Inner.encrypt pt; budget = Clear_backend.initial_budget cfg.scheme }
      let decrypt ct = Inner.decrypt ct.ict
      let copy ct = { ct with ict = Inner.copy ct.ict }
      let free _ = ()

      let budget_min a b =
        match (a, b) with
        | Clear_backend.Rns_level x, Clear_backend.Rns_level y ->
            Clear_backend.Rns_level (Stdlib.min x y)
        | Clear_backend.Logq x, Clear_backend.Logq y -> Clear_backend.Logq (Stdlib.min x y)
        | _ ->
            Herr.raise_err ~backend:"sim" ~op:"binop"
              (Herr.Invalid_op { reason = "mixed scheme budgets (RNS vs pow2)" })

      let tick_rotation budget =
        let cost = cfg.costs.Hisa.cm_rotate (budget_env cfg budget) in
        clock.rotate_elapsed <- clock.rotate_elapsed +. cost;
        clock.rotate_count <- clock.rotate_count + 1;
        tick cfg.costs.Hisa.cm_rotate budget

      let rot_left ct k =
        tick_rotation ct.budget;
        { ct with ict = Inner.rot_left ct.ict k }

      let rot_right ct k =
        tick_rotation ct.budget;
        { ct with ict = Inner.rot_right ct.ict k }

      let binop cost f a b =
        let budget = budget_min a.budget b.budget in
        tick cost budget;
        { ict = f a.ict b.ict; budget }

      let add a b = binop cfg.costs.Hisa.cm_add Inner.add a b
      let sub a b = binop cfg.costs.Hisa.cm_add Inner.sub a b

      let plainop cost f c p =
        tick cost c.budget;
        { c with ict = f c.ict p }

      let add_plain c p = plainop cfg.costs.Hisa.cm_add Inner.add_plain c p
      let sub_plain c p = plainop cfg.costs.Hisa.cm_add Inner.sub_plain c p

      let add_scalar c x =
        tick cfg.costs.Hisa.cm_add c.budget;
        { c with ict = Inner.add_scalar c.ict x }

      let sub_scalar c x =
        tick cfg.costs.Hisa.cm_add c.budget;
        { c with ict = Inner.sub_scalar c.ict x }

      let mul a b = binop cfg.costs.Hisa.cm_cipher_mul Inner.mul a b
      let mul_plain c p = plainop cfg.costs.Hisa.cm_plain_mul Inner.mul_plain c p

      let mul_scalar c x ~scale =
        tick cfg.costs.Hisa.cm_scalar_mul c.budget;
        { c with ict = Inner.mul_scalar c.ict x ~scale }

      (* fused ops charge both component costs so the simulated clock stays
         comparable whether a circuit runs fused or interpretive *)
      let fma_scalar acc x w ~scale =
        let budget = budget_min acc.budget x.budget in
        tick cfg.costs.Hisa.cm_scalar_mul x.budget;
        tick cfg.costs.Hisa.cm_add budget;
        { ict = Inner.fma_scalar acc.ict x.ict w ~scale; budget }

      let fma_plain acc x p =
        let budget = budget_min acc.budget x.budget in
        tick cfg.costs.Hisa.cm_plain_mul x.budget;
        tick cfg.costs.Hisa.cm_add budget;
        { ict = Inner.fma_plain acc.ict x.ict p; budget }

      let fma_rot acc x r =
        let budget = budget_min acc.budget x.budget in
        tick_rotation x.budget;
        tick cfg.costs.Hisa.cm_add budget;
        { ict = Inner.fma_rot acc.ict x.ict r; budget }

      let rescale ct x =
        tick cfg.costs.Hisa.cm_rescale ct.budget;
        let budget =
          match (cfg.scheme, ct.budget) with
          | _, _ when x = 1 -> ct.budget
          | Hisa.Rns_chain primes, Clear_backend.Rns_level l ->
              let l = ref l and rem = ref x in
              while !rem > 1 do
                rem := !rem / primes.(!l - 1);
                decr l
              done;
              Clear_backend.Rns_level !l
          | Hisa.Pow2_modulus _, Clear_backend.Logq q ->
              let k = int_of_float (Float.round (log (float_of_int x) /. log 2.0)) in
              Clear_backend.Logq (q - k)
          | _ -> assert false
        in
        { ict = Inner.rescale ct.ict x; budget }

      let max_rescale ct ub = Inner.max_rescale ct.ict ub
      let scale_of ct = Inner.scale_of ct.ict
      let env_of ct = budget_env cfg ct.budget
    end : Hisa.S)
  in
  (backend, clock)

let make (cfg : config) : Hisa.t * clock =
  make_over (Shape_backend.make { Shape_backend.slots = cfg.n / 2; scheme = cfg.scheme }) cfg

let make_with_values (cfg : config) : Hisa.t * clock =
  make_over
    (Clear_backend.make
       { Clear_backend.slots = cfg.n / 2; scheme = cfg.scheme; strict_modulus = false; encode_noise = false })
    cfg
