(** Generic HISA interceptor: wraps any backend and records an operation
    histogram plus the multiset of (normalised, left) rotation amounts. The
    rotation-keys selection pass (§5.4) is this recorder around the
    value-free backend; benches use it for op-count reporting. *)

type counters = {
  mutable encodes : int;
  mutable decodes : int;
  mutable encrypts : int;
  mutable decrypts : int;
  mutable adds : int;
  mutable plain_adds : int;
  mutable scalar_adds : int;
  mutable ct_muls : int;
  mutable plain_muls : int;
  mutable scalar_muls : int;
  mutable rescales : int;
  mutable rotation_counts : (int, int) Hashtbl.t;  (** left amount → uses *)
}

val fresh_counters : unit -> counters

val distinct_rotations : counters -> int list
(** Sorted ascending, for deterministic reports. *)

val total_rotations : counters -> int

val reset : counters -> unit
(** Zero every counter and clear the rotation multiset, so one recorder can
    be reused across phases (e.g. per-layer op deltas). *)

val wrap : Hisa.t -> Hisa.t * counters
