(* Value-free HISA backend: ciphertexts carry only (scale, modulus budget).
   This is the literal realisation of §5.1's analyses — "the ct datatype
   stores the data-flow information" — and is what the compiler passes and
   the simulation clock execute against. It is orders of magnitude faster
   than the cleartext backend because no slot vectors exist.

   Semantics of scale/budget tracking are identical to Clear_backend (the
   tests cross-check them); only the values are gone. *)

type config = { slots : int; scheme : Hisa.scheme_kind }

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = cfg.slots

    type pt = { pscale : float }
    type ct = { scale : float; budget : Clear_backend.budget }

    let encode values ~scale =
      ignore values;
      { pscale = float_of_int scale }

    let decode _ = Array.make cfg.slots 0.0
    let encrypt pt = { scale = pt.pscale; budget = Clear_backend.initial_budget cfg.scheme }
    let decrypt ct = { pscale = ct.scale }
    let copy ct = ct
    let free _ = ()
    let rot_left ct _ = ct
    let rot_right ct _ = ct

    let err ~op e = Herr.raise_err ~backend:"shape" ~op e

    let budget_min ~op a b =
      match (a, b) with
      | Clear_backend.Rns_level x, Clear_backend.Rns_level y ->
          Clear_backend.Rns_level (Stdlib.min x y)
      | Clear_backend.Logq x, Clear_backend.Logq y -> Clear_backend.Logq (Stdlib.min x y)
      | _ -> err ~op (Herr.Invalid_op { reason = "mixed scheme budgets (RNS vs pow2)" })

    let scales_compatible = Herr.scales_compatible

    let check2 op a b =
      if not (scales_compatible a.scale b.scale) then
        err ~op (Herr.Scale_mismatch { expected = a.scale; got = b.scale })

    let add a b =
      check2 "add" a b;
      { a with budget = budget_min ~op:"add" a.budget b.budget }

    let sub = add

    let add_plain c p =
      if not (scales_compatible c.scale p.pscale) then
        err ~op:"add_plain" (Herr.Scale_mismatch { expected = c.scale; got = p.pscale });
      c

    let sub_plain = add_plain
    let add_scalar c _ = c
    let sub_scalar c _ = c
    let mul a b = { scale = a.scale *. b.scale; budget = budget_min ~op:"mul" a.budget b.budget }
    let mul_plain c p = { c with scale = c.scale *. p.pscale }
    let mul_scalar c _ ~scale = { c with scale = c.scale *. float_of_int scale }

    (* fused ops: same scale/budget facts as the composition they replace *)
    let fma_scalar acc x _ ~scale =
      let product_scale = x.scale *. float_of_int scale in
      if not (scales_compatible acc.scale product_scale) then
        err ~op:"fma_scalar" (Herr.Scale_mismatch { expected = acc.scale; got = product_scale });
      { acc with budget = budget_min ~op:"fma_scalar" acc.budget x.budget }

    let fma_plain acc x p =
      let product_scale = x.scale *. p.pscale in
      if not (scales_compatible acc.scale product_scale) then
        err ~op:"fma_plain" (Herr.Scale_mismatch { expected = acc.scale; got = product_scale });
      { acc with budget = budget_min ~op:"fma_plain" acc.budget x.budget }

    let fma_rot acc x _ =
      check2 "fma_rot" acc x;
      { acc with budget = budget_min ~op:"fma_rot" acc.budget x.budget }

    let max_rescale ct ub =
      match (cfg.scheme, ct.budget) with
      | Hisa.Rns_chain primes, Clear_backend.Rns_level level ->
          let prod = ref 1 and l = ref level in
          let continue_loop = ref true in
          while !continue_loop && !l > 1 do
            let q = primes.(!l - 1) in
            if !prod <= ub / q && !prod * q <= ub then begin
              prod := !prod * q;
              decr l
            end
            else continue_loop := false
          done;
          !prod
      | Hisa.Pow2_modulus _, Clear_backend.Logq logq ->
          if ub < 2 then 1
          else begin
            let k = ref 0 in
            while 1 lsl (!k + 1) <= ub && !k + 1 < logq do
              incr k
            done;
            1 lsl !k
          end
      | _ -> assert false

    let rescale ct x =
      if x = 1 then ct
      else begin
        match (cfg.scheme, ct.budget) with
        | Hisa.Rns_chain primes, Clear_backend.Rns_level level ->
            let l = ref level and rem = ref x in
            while !rem > 1 do
              if !l < 1 then
                err ~op:"rescale" (Herr.Modulus_exhausted { level; requested = x });
              let q = primes.(!l - 1) in
              if !rem mod q <> 0 then
                err ~op:"rescale"
                  (Herr.Illegal_rescale
                     {
                       divisor = x;
                       reason =
                         Printf.sprintf "not a product of the next chain primes (next is %d)" q;
                     });
              rem := !rem / q;
              decr l
            done;
            { scale = ct.scale /. float_of_int x; budget = Clear_backend.Rns_level !l }
        | Hisa.Pow2_modulus _, Clear_backend.Logq logq ->
            if x land (x - 1) <> 0 then
              err ~op:"rescale"
                (Herr.Illegal_rescale { divisor = x; reason = "divisor must be a power of two" });
            let k = int_of_float (Float.round (log (float_of_int x) /. log 2.0)) in
            if k >= logq then
              err ~op:"rescale" (Herr.Modulus_exhausted { level = logq; requested = k });
            { scale = ct.scale /. float_of_int x; budget = Clear_backend.Logq (logq - k) }
        | _ -> assert false
      end

    let scale_of ct = ct.scale

    let env_of ct =
      match ct.budget with
      | Clear_backend.Rns_level r -> { Hisa.env_n = cfg.slots * 2; env_r = r; env_log_q = 0 }
      | Clear_backend.Logq q -> { Hisa.env_n = cfg.slots * 2; env_r = 0; env_log_q = q }
  end)
