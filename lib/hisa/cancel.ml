(* Re-export so layers above the HISA (runtime executor, serving stack) can
   share one cancel-token type without depending on [Chet_herr] directly —
   mirroring how [Herr] itself is re-exported here. *)
include Chet_herr.Cancel
