(* The Homomorphic Instruction Set Architecture (Table 2 of the paper): the
   interface between the CHET runtime kernels and an FHE scheme. Backends:

   - Seal_backend  : real RNS-CKKS ("SEAL v3.1")
   - Heaan_backend : real power-of-two CKKS ("HEAAN v1.0")
   - Clear_backend : unencrypted reference that mimics scale/modulus
     semantics — CHET's "different interpretation" execution vehicle
   - Sim_backend   : Clear + a latency clock driven by a cost model

   The compiler's data-flow analyses (lib/core) are further implementations
   of this signature whose [ct] is the data-flow fact. *)

(** How the target scheme restricts [rescale] divisors — the only scheme
    behaviour the analyses must reproduce exactly (§5.2). *)
type scheme_kind =
  | Rns_chain of int array  (** remaining divisors are next chain primes *)
  | Pow2_modulus of int  (** any power of two [< Q]; field is [log2 Q] *)

(** Status of a ciphertext's modulus when an op executes: [r] is the number
    of active RNS primes (RNS-CKKS), [log_q] the current modulus bits
    (CKKS). Cost models read whichever their scheme needs. *)
type op_env = { env_n : int; env_r : int; env_log_q : int }

module type S = sig
  val slots : int
  (** SIMD width ([N/2] for CKKS schemes; 1 for schemes without batching). *)

  type pt
  type ct

  val encode : float array -> scale:int -> pt
  val decode : pt -> float array
  val encrypt : pt -> ct
  val decrypt : ct -> pt
  val copy : ct -> ct
  val free : ct -> unit
  val rot_left : ct -> int -> ct
  val rot_right : ct -> int -> ct
  val add : ct -> ct -> ct
  val add_plain : ct -> pt -> ct
  val add_scalar : ct -> float -> ct
  val sub : ct -> ct -> ct
  val sub_plain : ct -> pt -> ct
  val sub_scalar : ct -> float -> ct
  val mul : ct -> ct -> ct
  val mul_plain : ct -> pt -> ct

  val mul_scalar : ct -> float -> scale:int -> ct
  (** Multiply by [round(x · scale)], a plaintext integer constant applied to
      every slot — cheaper than [mul_plain] in CKKS (Table 1). *)

  val fma_scalar : ct -> ct -> float -> scale:int -> ct
  (** [fma_scalar acc x w ~scale] = [add acc (mul_scalar x w ~scale)] as one
      fused step: the accumulate pattern of every convolution tap. Backends
      that hold slot values fuse the two passes into one (no intermediate
      ciphertext); the per-slot arithmetic order is identical to the
      composition, so results are bit-identical. *)

  val fma_plain : ct -> ct -> pt -> ct
  (** [fma_plain acc x p] = [add acc (mul_plain x p)], fused. *)

  val fma_rot : ct -> ct -> int -> ct
  (** [fma_rot acc x r] = [add acc (rot_left x r)], fused — the
      rotate-accumulate step of fold/reduce trees. [r] is normalised modulo
      [slots]; [r = 0] degenerates to [add]. [acc == x] is permitted (the
      self-fold case): the result is a fresh ciphertext. *)

  val rescale : ct -> int -> ct
  (** Divisor must come from {!max_rescale}. *)

  val max_rescale : ct -> int -> int
  val scale_of : ct -> float

  val env_of : ct -> op_env
  (** Ring dimension and current modulus status — what the compiler's
      analyses need to observe (consumed levels, current logQ). *)
end

type t = (module S)

(* ------------------------------------------------------------------ *)
(* Cost models (Table 1)                                               *)
(* ------------------------------------------------------------------ *)

type cost_model = {
  cm_add : op_env -> float;
  cm_scalar_mul : op_env -> float;
  cm_plain_mul : op_env -> float;
  cm_cipher_mul : op_env -> float;
  cm_rotate : op_env -> float;
  cm_rescale : op_env -> float;
}

let logf n = log (float_of_int n) /. log 2.0

(* Asymptotics of Table 1 with unit constants; calibrated variants are built
   by Cost_calibration (bench) and Chet.Cost_model. *)
let rns_cost_model ?(c = 1e-9) () =
  let n e = float_of_int e.env_n in
  let r e = float_of_int e.env_r in
  {
    cm_add = (fun e -> c *. n e *. r e);
    cm_scalar_mul = (fun e -> c *. n e *. r e);
    cm_plain_mul = (fun e -> c *. n e *. r e);
    cm_cipher_mul = (fun e -> c *. n e *. logf e.env_n *. r e *. r e);
    cm_rotate = (fun e -> c *. n e *. logf e.env_n *. r e *. r e);
    cm_rescale = (fun e -> c *. n e *. logf e.env_n *. r e);
  }

let ckks_cost_model ?(c = 1e-9) () =
  let n e = float_of_int e.env_n in
  let lq e = float_of_int e.env_log_q in
  (* M(Q) = O(logQ^1.58) — Karatsuba-style big-integer multiplication *)
  let m_q e = lq e ** 1.58 /. 64.0 in
  {
    cm_add = (fun e -> c *. n e *. lq e);
    cm_scalar_mul = (fun e -> c *. n e *. m_q e);
    cm_plain_mul = (fun e -> c *. n e *. logf e.env_n *. m_q e);
    cm_cipher_mul = (fun e -> c *. n e *. logf e.env_n *. m_q e);
    cm_rotate = (fun e -> c *. n e *. logf e.env_n *. m_q e);
    cm_rescale = (fun e -> c *. n e *. lq e);
  }
