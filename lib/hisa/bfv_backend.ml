(* HISA backend over the BFV integer scheme — the "FV" target of §2.2. BFV
   has no rescaling, so [max_rescale] is constantly 1, exactly the behaviour
   Table 2 prescribes for schemes without rescaling support: fixed-point
   scales grow monotonically and only shallow circuits are practical, which
   is the paper's argument for preferring CKKS. *)

module C = Chet_crypto.Bfv

type config = {
  ctx : C.context;
  rng : Chet_crypto.Sampling.t;
  keys : C.keys;
  secret : C.secret_key option;
}

let make (cfg : config) : Hisa.t =
  (module struct
    let slots = C.slot_count cfg.ctx

    type pt = { values : float array; pscale : float }
    type ct = C.ciphertext

    let encode values ~scale = { values; pscale = float_of_int scale }
    let decode pt = Array.copy pt.values
    let encoded pt = C.encode cfg.ctx ~scale:pt.pscale pt.values
    let encrypt pt = C.encrypt cfg.ctx cfg.rng cfg.keys (encoded pt)

    let decrypt ct =
      match cfg.secret with
      | None ->
          Herr.raise_err ~backend:"bfv" ~op:"decrypt"
            (Herr.Invalid_op { reason = "no secret key on this side" })
      | Some sk ->
          let values = C.decode cfg.ctx (C.decrypt cfg.ctx sk ct) ~scale:(C.scale_of ct) in
          { values; pscale = C.scale_of ct }

    let copy ct = ct
    let free _ = ()
    let rot_left ct k = C.rotate cfg.ctx cfg.keys ct k
    let rot_right ct k = C.rotate cfg.ctx cfg.keys ct (-k)
    let add a b = C.add cfg.ctx a b
    let sub a b = C.sub cfg.ctx a b
    let add_plain c p = C.add_plain cfg.ctx c (encoded p)
    let sub_plain c p = C.sub_plain cfg.ctx c (encoded p)

    let add_scalar c x =
      let v = Array.make slots x in
      C.add_plain cfg.ctx c (C.encode cfg.ctx ~scale:(C.scale_of c) v)

    let sub_scalar c x = add_scalar c (-.x)
    let mul a b = C.mul cfg.ctx cfg.keys a b
    let mul_plain c p = C.mul_plain cfg.ctx c (encoded p)

    let mul_scalar c x ~scale =
      let k = int_of_float (Float.round (x *. float_of_int scale)) in
      C.adjust_scale (C.mul_scalar cfg.ctx c k) (float_of_int scale)

    let fma_scalar acc x w ~scale = add acc (mul_scalar x w ~scale)
    let fma_plain acc x p = add acc (mul_plain x p)
    let fma_rot acc x r = add acc (rot_left x r)

    (* no rescaling in BFV: Table 2's maxRescale = 1 *)
    let max_rescale _ _ = 1

    let rescale c x =
      if x = 1 then c
      else
        Herr.raise_err ~backend:"bfv" ~op:"rescale"
          (Herr.Illegal_rescale { divisor = x; reason = "BFV does not support rescaling" })

    let scale_of = C.scale_of

    let env_of _ =
      (* the modulus is fixed for the ciphertext's lifetime *)
      { Hisa.env_n = 2 * slots; env_r = 1; env_log_q = 0 }
  end)
