(* The typed FHE error taxonomy, re-exported at the HISA layer.

   The definitions live in the dependency-free [Chet_herr] library so that
   [Chet_crypto] (which [Chet_hisa] depends on) can raise the same
   [Fhe_error]; everything at or above the HISA refers to it as
   [Chet_hisa.Herr]. See lib/herr/herr.ml for the taxonomy itself. *)

include Chet_herr.Herr
