(** Precondition/postcondition-validating HISA interceptor: wrap any
    backend and every op is checked against a shadow data-flow computation
    of what the scale and modulus level must be — §5.1's
    different-interpretation trick used as a runtime monitor. Divergence
    (violated precondition upstream, corrupted backend downstream) raises a
    typed {!Chet_herr.Herr.Fhe_error} instead of computing garbage.

    With a {!noise_model} configured, the checker additionally tracks a
    conservative per-ciphertext bound on accumulated CKKS error (DESIGN.md
    §16) and raises [Precision_exhausted] the moment the bound crosses the
    deployment's tolerance — *before* the request decrypts to garbage. *)

(** Conservative CKKS error-growth model: per-ciphertext absolute
    message-space error bound, grown per op (additive for add/rot/rescale,
    cross-term products for multiplies). The constants are heuristics
    calibrated to this repo's backends at the default scales; the value is
    the monotone bound and the margin gauge, not a tight noise proof. *)
type noise_model = {
  nm_fresh : float;  (** message-space error of a fresh encryption *)
  nm_encode : float;  (** error contributed by encoding a plaintext *)
  nm_rot : float;  (** key-switch/relin/rescale rounding error per op *)
  nm_tolerance : float;  (** error bound at which [Precision_exhausted] fires *)
}

val default_noise_model : ?tolerance:float -> unit -> noise_model
(** Heuristic defaults; [tolerance] defaults to 0.05, the fidelity bar the
    compiled-deployment tests hold real backends to. *)

type config = {
  scheme : Hisa.scheme_kind;
      (** must describe the wrapped backend's *actual* modulus chain (see
          e.g. {!Chet.Compiler.instantiate_with_scheme}) *)
  tolerance : float;  (** relative slack for operand-scale compatibility *)
  value_bound : float;  (** largest plausible decoded magnitude *)
  noise : noise_model option;  (** [None]: noise-margin guard off *)
}

val default_config : scheme:Hisa.scheme_kind -> config
(** Scale tolerance {!Chet_herr.Herr.scale_tolerance}, value bound [1e30],
    noise guard off. *)

val wrap : ?config:config option -> ?margin:float ref -> scheme:Hisa.scheme_kind -> Hisa.t -> Hisa.t
(** Checked view of [backend]. [margin] (noise guard only) receives the
    remaining precision headroom in bits, [log2 (tolerance / error bound)],
    updated at every decrypt — the serving layer's margin gauge.
    @raise Chet_herr.Herr.Fhe_error
      typed per-op diagnoses: [Scale_mismatch], [Level_mismatch],
      [Modulus_exhausted], [Illegal_rescale], [Slot_overflow],
      [Numeric_blowup], [Corrupt_ciphertext] — and, with a noise model,
      [Precision_exhausted] on the first op whose error bound crosses the
      tolerance. *)
