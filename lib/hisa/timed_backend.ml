(* Timed HISA interceptor, in the Instrument functor style: wraps any
   backend and records per-op wall-time statistics keyed by (op, level/r),
   plus optional per-op latency histograms in a metrics registry. This is
   the measurement layer under the cost-model calibrator (`chet profile`)
   and the per-node op attribution in traced runs (every op also ticks
   {!Chet_obs.Tracer.tick_op}).

   The recorder is shared across ops under a mutex: one lock/unlock pair per
   homomorphic op, which is noise next to even the cleartext backend's
   slot-vector arithmetic. *)

module Obs_clock = Chet_obs.Clock
module Obs_tracer = Chet_obs.Tracer
module Metrics = Chet_obs.Metrics

type cell = {
  tc_op : string;
  tc_env : Hisa.op_env;
  mutable tc_count : int;
  mutable tc_sum_ns : float;
  tc_hist : Metrics.histogram option;
}

type t = {
  mutex : Mutex.t;
  cells : (string * int * int * int, cell) Hashtbl.t;  (** (op, n, r, logq) *)
  registry : Metrics.t option;
}

let create ?registry () = { mutex = Mutex.create (); cells = Hashtbl.create 64; registry }

(* The histogram/cost-model key: active RNS primes for RNS-CKKS, current
   logQ for pow2-CKKS — whichever the scheme consumes. *)
let level_of (env : Hisa.op_env) = if env.Hisa.env_r > 0 then env.Hisa.env_r else env.Hisa.env_log_q

let record t op (env : Hisa.op_env) dt_ns =
  Mutex.lock t.mutex;
  let key = (op, env.Hisa.env_n, env.Hisa.env_r, env.Hisa.env_log_q) in
  let cell =
    match Hashtbl.find_opt t.cells key with
    | Some c -> c
    | None ->
        let hist =
          Option.map
            (fun reg ->
              Metrics.histogram reg ~help:"wall time of HISA ops by (op, level)" ~lo:1e-8
                ~labels:
                  [ ("op", op); ("n", string_of_int env.Hisa.env_n);
                    ("level", string_of_int (level_of env)) ]
                "chet_hisa_op_seconds")
            t.registry
        in
        let c = { tc_op = op; tc_env = env; tc_count = 0; tc_sum_ns = 0.0; tc_hist = hist } in
        Hashtbl.add t.cells key c;
        c
  in
  cell.tc_count <- cell.tc_count + 1;
  cell.tc_sum_ns <- cell.tc_sum_ns +. dt_ns;
  Mutex.unlock t.mutex;
  (* observe outside the recorder lock: the histogram is lock-free *)
  Option.iter (fun h -> Metrics.observe h (dt_ns /. 1e9)) cell.tc_hist

(* Measurement cells: (op, env, count, mean seconds) — the calibrator's
   input. Sorted for deterministic reports. *)
let cells t =
  Mutex.lock t.mutex;
  let l =
    Hashtbl.fold
      (fun _ c acc -> (c.tc_op, c.tc_env, c.tc_count, c.tc_sum_ns /. float_of_int c.tc_count /. 1e9) :: acc)
      t.cells []
  in
  Mutex.unlock t.mutex;
  List.sort compare l

let total_ops t =
  Mutex.lock t.mutex;
  let n = Hashtbl.fold (fun _ c acc -> acc + c.tc_count) t.cells 0 in
  Mutex.unlock t.mutex;
  n

let wrap t (backend : Hisa.t) : Hisa.t =
  let module B = (val backend) in
  (module struct
    let slots = B.slots

    type pt = B.pt
    type ct = B.ct

    (* env for ops with no ciphertext operand (encode/encrypt/decode) *)
    let fresh_env = { Hisa.env_n = 2 * B.slots; env_r = 0; env_log_q = 0 }

    let timed op env f =
      Obs_tracer.tick_op ();
      let t0 = Obs_clock.now_ns () in
      let r = f () in
      record t op env (Int64.to_float (Int64.sub (Obs_clock.now_ns ()) t0));
      r

    let encode v ~scale = timed "encode" fresh_env (fun () -> B.encode v ~scale)
    let decode p = timed "decode" fresh_env (fun () -> B.decode p)
    let encrypt p = timed "encrypt" fresh_env (fun () -> B.encrypt p)
    let decrypt c = timed "decrypt" (B.env_of c) (fun () -> B.decrypt c)
    let copy = B.copy
    let free = B.free
    let rot_left c k = timed "rot_left" (B.env_of c) (fun () -> B.rot_left c k)
    let rot_right c k = timed "rot_right" (B.env_of c) (fun () -> B.rot_right c k)
    let add a b = timed "add" (B.env_of a) (fun () -> B.add a b)
    let sub a b = timed "sub" (B.env_of a) (fun () -> B.sub a b)
    let add_plain c p = timed "add_plain" (B.env_of c) (fun () -> B.add_plain c p)
    let sub_plain c p = timed "sub_plain" (B.env_of c) (fun () -> B.sub_plain c p)
    let add_scalar c x = timed "add_scalar" (B.env_of c) (fun () -> B.add_scalar c x)
    let sub_scalar c x = timed "sub_scalar" (B.env_of c) (fun () -> B.sub_scalar c x)
    let mul a b = timed "mul" (B.env_of a) (fun () -> B.mul a b)
    let mul_plain c p = timed "mul_plain" (B.env_of c) (fun () -> B.mul_plain c p)
    let mul_scalar c x ~scale = timed "mul_scalar" (B.env_of c) (fun () -> B.mul_scalar c x ~scale)

    (* fused ops get their own cells so the calibrator can fit them *)
    let fma_scalar acc x w ~scale =
      timed "fma_scalar" (B.env_of acc) (fun () -> B.fma_scalar acc x w ~scale)

    let fma_plain acc x p = timed "fma_plain" (B.env_of acc) (fun () -> B.fma_plain acc x p)
    let fma_rot acc x r = timed "fma_rot" (B.env_of acc) (fun () -> B.fma_rot acc x r)

    let rescale c x =
      if x > 1 then timed "rescale" (B.env_of c) (fun () -> B.rescale c x) else B.rescale c x

    let max_rescale = B.max_rescale
    let scale_of = B.scale_of
    let env_of = B.env_of
  end : Hisa.S)
