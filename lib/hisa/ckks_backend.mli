(** The shared shape of the two real-scheme HISA backends.

    {!Seal_backend} (RNS-CKKS) and {!Heaan_backend} (power-of-two CKKS)
    differ only in how a ciphertext's modulus is named — an RNS level or a
    [logq] exponent. {!Make} abstracts that into an integer [handle] and
    builds the whole {!Hisa.S} implementation (lazy per-handle plaintext
    encoding cache, modulus equalisation before binary ops, fused ops) once. *)

module Complexv = Chet_crypto.Complexv

(** What a concrete CKKS scheme must provide. *)
module type SCHEME = sig
  val backend_name : string

  type context
  type keys
  type secret_key
  type plaintext
  type ciphertext

  val slot_count : context -> int
  val ring_degree : context -> int

  val fresh_handle : context -> int
  (** Modulus handle of a fresh ciphertext: the max RNS level (SEAL) or
      [log_fresh] (HEAAN). *)

  val handle_of : ciphertext -> int
  val mod_to : context -> ciphertext -> int -> ciphertext
  val env_of : context -> ciphertext -> Hisa.op_env
  val encode_real : context -> handle:int -> scale:float -> float array -> plaintext
  val decode : context -> plaintext -> Complexv.t
  val encrypt : context -> Chet_crypto.Sampling.t -> keys -> plaintext -> ciphertext
  val decrypt : context -> secret_key -> ciphertext -> plaintext
  val add : context -> ciphertext -> ciphertext -> ciphertext
  val sub : context -> ciphertext -> ciphertext -> ciphertext
  val mul : context -> keys -> ciphertext -> ciphertext -> ciphertext
  val add_plain : context -> ciphertext -> plaintext -> ciphertext
  val sub_plain : context -> ciphertext -> plaintext -> ciphertext
  val mul_plain : context -> ciphertext -> plaintext -> ciphertext
  val add_scalar : context -> ciphertext -> float -> ciphertext
  val mul_scalar : context -> ciphertext -> float -> scale:float -> ciphertext
  val rotate : context -> keys -> ciphertext -> int -> ciphertext
  val rescale : context -> ciphertext -> int -> ciphertext
  val max_rescale : context -> ciphertext -> int -> int
  val scale_of : ciphertext -> float
end

module Make (S : SCHEME) : sig
  type config = {
    ctx : S.context;
    rng : Chet_crypto.Sampling.t;
    keys : S.keys;
    secret : S.secret_key option;  (** client-side only; [decrypt] raises without it *)
  }

  val make : config -> Hisa.t
end
