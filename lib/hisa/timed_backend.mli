(** Timed HISA interceptor: wraps any backend and records per-op wall-time
    statistics keyed by (op, level/r) on the monotonic clock — the
    measurement layer under the cost-model calibrator and traced runs.
    Every timed op also ticks {!Chet_obs.Tracer.tick_op} so executor node
    spans can attribute op counts. *)

type t

val create : ?registry:Chet_obs.Metrics.t -> unit -> t
(** With [registry], each (op, n, level) cell additionally feeds a
    [chet_hisa_op_seconds] latency histogram in it. *)

val wrap : t -> Hisa.t -> Hisa.t

val cells : t -> (string * Hisa.op_env * int * float) list
(** Sorted measurement cells: (op, env, sample count, mean seconds). Ops
    with no ciphertext operand (encode/encrypt/decode) carry a fresh env
    with [env_r = env_log_q = 0]. [rescale] is only timed when it actually
    drops modulus ([divisor > 1]), mirroring {!Instrument}. *)

val total_ops : t -> int

val level_of : Hisa.op_env -> int
(** Active RNS primes for RNS-CKKS, current logQ for pow2-CKKS. *)
