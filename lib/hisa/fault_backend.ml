(* Deterministic fault-injection HISA wrapper — the adversarial twin of
   {!Checked_backend}. Wraps any backend and, once the op counter reaches
   [trigger], corrupts exactly one thing in a seeded, reproducible way. The
   point is not to model realistic hardware faults but to prove, in
   test/test_fault.ml, that every corruption class the checker claims to
   catch actually surfaces as the matching typed {!Herr.Fhe_error} instead
   of silently producing garbage predictions.

   Fault classes and how they manifest through the [Hisa.S] surface (the
   only surface a checker can see):

   - [Scale_corruption]: after the trigger, the next fresh ciphertext's
     [scale_of] lies by a multiplicative factor. Caught by the checker's
     shadow-scale postcondition -> [Scale_mismatch].
   - [Premature_level_drop]: the next fresh ciphertext's [env_of] reports
     one level/prime (or 60 logQ bits) fewer than reality. Caught by the
     shadow-level postcondition -> [Level_mismatch].
   - [Slot_scramble]: decode rotates the slot vector and drags in a huge
     masked-garbage value, the way a misapplied Galois element drags
     non-message coefficients into the message region. Caught by the
     decode magnitude screen -> [Corrupt_ciphertext].
   - [Nan_poison]: decode poisons one seeded slot with NaN. Caught by the
     decode NaN/Inf screen -> [Numeric_blowup].
   - [Dropped_rescale]: one rescale silently becomes the identity (the
     backend "forgets" to divide). Caught by the rescale postcondition
     -> [Illegal_rescale].
   - [Silent_corruption]: decode perturbs every slot by a seeded
     small-magnitude offset (order 10x the deployment precision tolerance,
     nowhere near the magnitude screen's bound and never NaN/Inf). This is
     the fault class NO per-op checker can see — scale, level, magnitude
     and NaN screens all pass — and exists to prove that only the
     end-to-end sentinel lane (DESIGN.md §16) catches it
     -> [Integrity_violation], raised by the sentinel verifier, not here.

   Faults fire once (first opportunity at or after the trigger) so a single
   run exercises exactly one corruption; [injection_log] records what fired
   and where, letting tests assert the fault actually happened and was not
   simply never reached. With [fault = None] the wrapper is observationally
   identical to the bare backend — also asserted by the tests. *)

type fault =
  | Scale_corruption
  | Premature_level_drop
  | Slot_scramble
  | Nan_poison
  | Dropped_rescale
  | Silent_corruption

let fault_name = function
  | Scale_corruption -> "scale corruption"
  | Premature_level_drop -> "premature level drop"
  | Slot_scramble -> "slot scramble"
  | Nan_poison -> "nan poison"
  | Dropped_rescale -> "dropped rescale"
  | Silent_corruption -> "silent corruption"

type config = {
  fault : fault option;  (** [None] = transparent pass-through *)
  trigger : int;  (** op count at which the fault arms itself *)
  seed : int;  (** drives which slot / rotation the corruption picks *)
}

let default_config ?(trigger = 0) ?(seed = 0x5eed) fault = { fault; trigger; seed }

type injection_log = {
  mutable fired : bool;  (** did the armed fault actually corrupt something? *)
  mutable fired_at_op : int;  (** op counter value when it fired *)
  mutable fired_in : string;  (** HISA op name it fired inside *)
}

let wrap (cfg : config) (backend : Hisa.t) : Hisa.t * injection_log =
  let module B = (val backend) in
  let log = { fired = false; fired_at_op = -1; fired_in = "" } in
  let ops = ref 0 in
  let rng = Random.State.make [| cfg.seed; 0x7a_017; cfg.trigger |] in
  (* Should the given fault class corrupt *this* op? Arms at [trigger],
     fires exactly once. *)
  let firing f ~op =
    match cfg.fault with
    | Some g when g = f && (not log.fired) && !ops >= cfg.trigger ->
        log.fired <- true;
        log.fired_at_op <- !ops;
        log.fired_in <- op;
        true
    | _ -> false
  in
  let backend_mod =
    (module struct
      let slots = B.slots

      type pt = B.pt

      (* [fscale]: multiplicative lie applied to [scale_of]'s report.
         [fdrop]: levels/bits subtracted from [env_of]'s report. *)
      type ct = { bc : B.ct; fscale : float; fdrop : int }

      let count op =
        incr ops;
        op

      (* Wrap a fresh backend result, applying any armed fresh-ciphertext
         metadata lie exactly once. The level-drop lie never fires at
         [encrypt]: a fresh encryption is where any monitor must anchor its
         level book-keeping (there is no prior state to contradict), so a lie
         there is undetectable by construction — firing it would only waste
         the injection. *)
      let mk ~op bc =
        let fscale = if firing Scale_corruption ~op then 1.375 else 1.0 in
        let fdrop = if op <> "encrypt" && firing Premature_level_drop ~op then 1 else 0 in
        { bc; fscale; fdrop }

      let encode values ~scale = B.encode values ~scale

      let decode p =
        let op = count "decode" in
        let v = B.decode p in
        if firing Nan_poison ~op then begin
          let v = Array.copy v in
          if Array.length v > 0 then v.(Random.State.int rng (Array.length v)) <- Float.nan;
          v
        end
        else if firing Slot_scramble ~op then begin
          let n = Array.length v in
          if n = 0 then v
          else begin
            let r = 1 + Random.State.int rng (Stdlib.max 1 (n - 1)) in
            let w = Array.init n (fun i -> v.((i + r) mod n)) in
            (* the masked garbage a real scramble drags into the message
               region: far beyond any plausible decoded magnitude *)
            w.(Random.State.int rng n) <- 6.9e33;
            w
          end
        end
        else if firing Silent_corruption ~op then
          (* small seeded perturbation on every slot: passes every per-op
             screen, only the sentinel lane can tell *)
          Array.map
            (fun x ->
              let sign = if Random.State.bool rng then 1.0 else -1.0 in
              x +. (sign *. (0.2 +. (0.6 *. Random.State.float rng 1.0))))
            v
        else v

      let encrypt p = mk ~op:(count "encrypt") (B.encrypt p)
      let decrypt c = B.decrypt c.bc
      let copy c = { c with bc = B.copy c.bc }
      let free c = B.free c.bc

      (* Fresh results of arithmetic and rotations are fair game for
         fresh-ct lies, and additionally inherit any operand lie so a
         corrupted handle stays corrupted downstream. *)
      let res2 ~op a b bc =
        let m = mk ~op bc in
        {
          m with
          fscale = m.fscale *. Float.max a.fscale b.fscale;
          fdrop = Stdlib.max m.fdrop (Stdlib.max a.fdrop b.fdrop);
        }

      let res1 ~op a bc =
        let m = mk ~op bc in
        { m with fscale = m.fscale *. a.fscale; fdrop = Stdlib.max m.fdrop a.fdrop }

      let rot_left c k = res1 ~op:(count "rot_left") c (B.rot_left c.bc k)
      let rot_right c k = res1 ~op:(count "rot_right") c (B.rot_right c.bc k)

      let add a b = res2 ~op:(count "add") a b (B.add a.bc b.bc)
      let sub a b = res2 ~op:(count "sub") a b (B.sub a.bc b.bc)
      let add_plain c p = res1 ~op:(count "add_plain") c (B.add_plain c.bc p)
      let sub_plain c p = res1 ~op:(count "sub_plain") c (B.sub_plain c.bc p)
      let add_scalar c x = res1 ~op:(count "add_scalar") c (B.add_scalar c.bc x)
      let sub_scalar c x = res1 ~op:(count "sub_scalar") c (B.sub_scalar c.bc x)
      let mul a b = res2 ~op:(count "mul") a b (B.mul a.bc b.bc)
      let mul_plain c p = res1 ~op:(count "mul_plain") c (B.mul_plain c.bc p)
      let mul_scalar c x ~scale = res1 ~op:(count "mul_scalar") c (B.mul_scalar c.bc x ~scale)

      (* fused ops count once and forward to the backend's fused op; operand
         lies propagate exactly as for [add] *)
      let fma_scalar acc x w ~scale =
        res2 ~op:(count "fma_scalar") acc x (B.fma_scalar acc.bc x.bc w ~scale)

      let fma_plain acc x p = res2 ~op:(count "fma_plain") acc x (B.fma_plain acc.bc x.bc p)
      let fma_rot acc x r = res2 ~op:(count "fma_rot") acc x (B.fma_rot acc.bc x.bc r)

      let rescale c x =
        let op = count "rescale" in
        if firing Dropped_rescale ~op then
          (* the silent no-op: hand back the undivided ciphertext *)
          { c with bc = B.copy c.bc }
        else res1 ~op c (B.rescale c.bc x)

      let max_rescale c ub = B.max_rescale c.bc ub
      let scale_of c = B.scale_of c.bc *. c.fscale

      let env_of c =
        let e = B.env_of c.bc in
        if c.fdrop = 0 then e
        else
          {
            e with
            Hisa.env_r = Stdlib.max 0 (e.Hisa.env_r - c.fdrop);
            Hisa.env_log_q = Stdlib.max 0 (e.Hisa.env_log_q - (60 * c.fdrop));
          }
    end : Hisa.S)
  in
  (backend_mod, log)
