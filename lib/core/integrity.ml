(* Sentinel-slot result integrity (DESIGN.md §16).

   CHET's §4.1 batching observation — the CKKS slot count vastly exceeds the
   image extent — leaves most of every ciphertext unused. We spend that
   slack on an end-to-end integrity channel: the layout interleaves a twin
   copy of every logical position (Layout.twin), the encryptor packs a
   *known* probe image into the twin slots, the homomorphic circuit
   transforms probe and user data side by side under the exact same ops and
   keys, and at decrypt time the twin output is compared against the clear
   reference model's prediction. Any silent corruption of the ciphertext
   stream — a bit flip, a buggy kernel, a faulty shard — perturbs the twin
   slots along with the primary ones and surfaces as a typed
   [Herr.Integrity_violation] instead of being served as a valid answer.

   This module owns the policy half: probe generation, the reference
   prediction, the tolerance, and the verdict. The mechanism half (twin
   layouts, parity isolation, packing) lives in Chet_runtime.Layout. *)

module Tensor = Chet_tensor.Tensor
module Dataset = Chet_tensor.Dataset
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module Herr = Chet_hisa.Herr
module Hisa = Chet_hisa.Hisa
module Clear = Chet_hisa.Clear_backend
module Executor = Chet_runtime.Executor
module Kernels = Chet_runtime.Kernels

type spec = {
  it_probe : Tensor.t;  (* packed into the twin slots at encrypt time *)
  it_expected : Tensor.t;  (* Reference.eval circuit it_probe, computed once *)
  it_tolerance : float;  (* max |got - expected| accepted per output *)
}

(* Matches the fidelity bar the compiled-deployment tests hold the real
   backends to (max abs output deviation 0.05): a clean inference sits well
   inside it, while the smallest silent fault worth injecting (Fault_backend
   perturbs slots by ~10x this) sails past it. *)
let default_tolerance = 0.05

let probe_for ?(seed = 0x5e9719) circuit =
  match circuit.Circuit.input.Circuit.shape with
  | [| c; h; w |] -> Dataset.image ~seed ~channels:c ~height:h ~width:w
  | shape ->
      Herr.raise_err ~backend:"integrity" ~op:"probe_for"
        (Herr.Shape_mismatch
           {
             expected = "[c; h; w]";
             got =
               "[" ^ String.concat "; " (Array.to_list (Array.map string_of_int shape)) ^ "]";
           })

let spec_for ?seed ?(tolerance = default_tolerance) circuit =
  let probe = probe_for ?seed circuit in
  { it_probe = probe; it_expected = Reference.eval circuit probe; it_tolerance = tolerance }

(* Worst sentinel deviation: (flat output index, expected, got, |diff|). *)
let worst_deviation spec (got : Tensor.t) =
  let e = spec.it_expected.Tensor.data in
  let g = got.Tensor.data in
  let n = Stdlib.min (Array.length e) (Array.length g) in
  let idx = ref 0 and dev = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Float.abs (g.(i) -. e.(i)) in
    (* NaN poisoning must rank as the worst possible deviation, but NaN
       comparisons are all false — map it to infinity explicitly *)
    let d = if Float.is_nan d then Float.infinity else d in
    if d > !dev then begin
      dev := d;
      idx := i
    end
  done;
  if Array.length e <> Array.length g then (0, 0.0, Float.nan, Float.infinity)
  else (!idx, e.(!idx), g.(!idx), !dev)

(* Remaining headroom in bits: log2(tolerance / worst deviation). Positive
   means the sentinel is comfortably clean; <= 0 is a violation. Clamped so
   a perfectly clean probe does not export an infinite gauge. *)
let margin_bits spec got =
  let _, _, _, dev = worst_deviation spec got in
  if dev <= 0.0 then 60.0
  else Stdlib.min 60.0 (Float.log (spec.it_tolerance /. dev) /. Float.log 2.0)

let verify spec got =
  let slot, expected, got_v, dev = worst_deviation spec got in
  if not (dev <= spec.it_tolerance) then
    Herr.raise_err ~backend:"integrity" ~op:"sentinel_verify"
      (Herr.Integrity_violation { slot; expected; got = got_v })

(* The executor-facing hook: packs the probe, verifies the twin output, and
   (optionally) hands the raw twin tensor to [observe] first — the serving
   layer uses that to export margin gauges and to forward the decrypted
   sentinels in RSP1 for independent supervisor-side verification. *)
let sentinel ?observe spec =
  {
    Executor.sn_probe = spec.it_probe;
    sn_verify =
      (fun twin ->
        (match observe with Some f -> f twin | None -> ());
        verify spec twin);
  }

(* Deployment-time self-check: run the circuit end to end on a twin layout
   through the clear backend, with the probe in *both* lanes, and verify
   both lanes against the reference prediction. This exercises the true
   kernels (not a static model of them), so it proves this circuit/policy
   combination propagates the twin faithfully — layout overflows surface as
   the usual typed [Slot_overflow], and any kernel that mixed the lanes
   would fail the comparison. Returns the sentinel margin of the clean run. *)
let validate spec circuit ~scales ~policy ~slots =
  let backend =
    Clear.make
      {
        Clear.slots;
        scheme = Hisa.Pow2_modulus 8000;
        strict_modulus = false;
        encode_noise = false;
      }
  in
  let module H = (val backend : Hisa.S) in
  let module E = Executor.Make (H) in
  let out = E.run ~sentinel:(sentinel spec) scales circuit ~policy spec.it_probe in
  (* the primary lane carried the probe too: it must meet the same bar *)
  verify spec out;
  margin_bits spec out
