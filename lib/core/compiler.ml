module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Clear = Chet_hisa.Clear_backend
module Shape = Chet_hisa.Shape_backend
module Sim = Chet_hisa.Sim_backend
module Checked = Chet_hisa.Checked_backend
module Instrument = Chet_hisa.Instrument
module Security = Chet_crypto.Security
module Modarith = Chet_crypto.Modarith
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Kernels = Chet_runtime.Kernels
module Layout = Chet_runtime.Layout
module Executor = Chet_runtime.Executor

type target = Seal | Heaan
type security = Standard of Security.level | Legacy_heaan

type options = {
  target : target;
  security : security;
  prime_bits : int;
  value_headroom_bits : int;
  scales : Kernels.scales;
  cost : Hisa.cost_model option;
  max_n : int;
  sentinel : bool;
}

let default_options ?(target = Seal) () =
  {
    target;
    security = (match target with Seal -> Standard Security.Bits128 | Heaan -> Legacy_heaan);
    prime_bits = 30;
    value_headroom_bits = 12;
    scales = Kernels.default_scales;
    cost = None;
    max_n = 65536;
    sentinel = false;
  }

type params_choice =
  | Rns_params of { n : int; prime_bits : int; num_primes : int; log_q : int }
  | Pow2_params of { n : int; log_fresh : int; log_special : int }

let params_n = function Rns_params { n; _ } -> n | Pow2_params { n; _ } -> n

let params_log_q = function
  | Rns_params { log_q; _ } -> log_q
  | Pow2_params { log_fresh; _ } -> log_fresh

let pp_params fmt = function
  | Rns_params { n; prime_bits; num_primes; log_q } ->
      Format.fprintf fmt "RNS-CKKS N=%d, %d x %d-bit primes (+special), logQ=%d" n num_primes
        prime_bits log_q
  | Pow2_params { n; log_fresh; log_special } ->
      Format.fprintf fmt "CKKS N=%d, logQ=%d, logP=%d" n log_fresh log_special

type policy_report = {
  pr_policy : Executor.layout_policy;
  pr_params : params_choice;
  pr_cost : float;
}

type compiled = {
  circuit : Circuit.t;
  opts : options;
  policy : Executor.layout_policy;
  params : params_choice;
  rotations : (int * int) list;
  op_counters : Instrument.counters;
  reports : policy_report list;
}

exception Compilation_failure of string

(* ------------------------------------------------------------------ *)
(* Analysis plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let log2f x = log x /. log 2.0

(* Candidate modulus chain for the analysis (the paper's "global list
   Q1..Qn of pre-generated candidate moduli for sufficiently large n"). *)
let analysis_chain_length = 192

let candidate_chain opts ~n =
  if opts.prime_bits <= 31 then
    (* mirror the executable backend's actual NTT primes where possible *)
    try Modarith.gen_ntt_primes ~bits:opts.prime_bits ~modulus_of:(2 * n) ~count:analysis_chain_length
    with Not_found ->
      Array.init analysis_chain_length (fun i -> (1 lsl opts.prime_bits) - 1 - (2 * i))
  else Array.init analysis_chain_length (fun i -> (1 lsl opts.prime_bits) - 1 - (2 * i))

let analysis_scheme opts ~n =
  match opts.target with
  | Seal -> Hisa.Rns_chain (candidate_chain opts ~n)
  | Heaan -> Hisa.Pow2_modulus 4000

let zero_image circuit =
  match circuit.Circuit.input.Circuit.shape with
  | [| c; h; w |] -> Tensor.create [| c; h; w |]
  | shape -> Tensor.create shape

(* Execute the circuit through a backend and hand back the output tensor's
   first ciphertext observations. Raises [Herr.Fhe_error (Slot_overflow _, _)]
   when the layout does not fit [slots] — callers treat that as "N too
   small". *)
let run_through (backend : Hisa.t) opts circuit ~policy =

  let module H = (val backend) in
  let module E = Executor.Make (H) in
  let kind_of = Executor.assign policy circuit in
  (* sentinel deployments execute on the interleaved twin layout, so every
     analysis pass must see that geometry: its extents (parameter
     selection), its op mix (cost), and its doubled rotation amounts
     (rotation-key selection) *)
  let meta = E.input_meta ~twin:opts.sentinel circuit ~kind:(kind_of circuit.Circuit.input) in
  let enc = E.K.encrypt_tensor opts.scales meta (zero_image circuit) in
  let out = E.run_encrypted opts.scales circuit ~policy enc in
  (H.scale_of out.E.K.cts.(0), H.env_of out.E.K.cts.(0))

(* ------------------------------------------------------------------ *)
(* §5.2 Encryption parameter selection                                  *)
(* ------------------------------------------------------------------ *)

let security_min_n opts ~log_q =
  match opts.security with
  | Standard level -> Security.min_ring_dim level ~log_q
  | Legacy_heaan -> Security.min_ring_dim_legacy ~log_q

let params_for_consumption opts ~n ~s_out ~env =
  match opts.target with
  | Seal ->
      let consumed = analysis_chain_length - env.Hisa.env_r in
      let remaining_bits = log2f s_out +. float_of_int opts.value_headroom_bits in
      let rem_primes =
        Stdlib.max 1 (int_of_float (Float.ceil (remaining_bits /. float_of_int opts.prime_bits)))
      in
      let num_primes = consumed + rem_primes in
      (* +1: the key-switching special prime also counts towards security *)
      let log_q = (num_primes + 1) * opts.prime_bits in
      Rns_params { n; prime_bits = opts.prime_bits; num_primes; log_q }
  | Heaan ->
      let consumed_bits = 4000 - env.Hisa.env_log_q in
      let log_fresh =
        consumed_bits
        + int_of_float (Float.ceil (log2f s_out))
        + opts.value_headroom_bits
      in
      Pow2_params { n; log_fresh; log_special = log_fresh }

(* security lookup uses the ciphertext modulus the way each library reports
   it: total chain (incl. special) for SEAL; the fresh-ciphertext logQ for
   HEAAN (its presets were specified that way, which is also how the paper's
   Table 4 reports parameters) *)
let security_log_q = function
  | Rns_params { log_q; _ } -> log_q
  | Pow2_params { log_fresh; _ } -> log_fresh

let select_params opts circuit ~policy =
  let rec iterate n tries =
    if n > opts.max_n then
      raise (Compilation_failure (Printf.sprintf "no secure N <= %d accommodates this circuit" opts.max_n));
    let attempt =
      try
        let scheme = analysis_scheme opts ~n in
        (* run the analysis under the checked wrapper: a compiler bug that
           desynchronises scales or levels surfaces here as a typed error
           instead of propagating garbage into the parameter choice *)
        let backend =
          Checked.wrap ~scheme (Shape.make { Shape.slots = n / 2; scheme })
        in
        Some (run_through backend opts circuit ~policy)
      with
      | Herr.Fhe_error (Herr.Slot_overflow _, _) | Invalid_argument _ ->
          None (* layout does not fit this SIMD width: grow N *)
      | Herr.Fhe_error _ as e ->
          (* the candidate chain is policy-independent, so growing N cannot
             repair a modulus/scale violation — report it structurally *)
          raise (Compilation_failure ("parameter analysis failed: " ^ Printexc.to_string e))
    in
    match attempt with
    | None -> iterate (n * 2) tries (* layout does not fit this SIMD width *)
    | Some (s_out, env) ->
        let params = params_for_consumption opts ~n ~s_out ~env in
        let n_sec =
          try security_min_n opts ~log_q:(security_log_q params)
          with Not_found ->
            raise (Compilation_failure "required modulus exceeds the security table at every N")
        in
        if n_sec > n && tries < 8 then iterate (Stdlib.max n_sec (n * 2)) (tries + 1)
        else if n_sec > n then raise (Compilation_failure "parameter selection did not converge")
        else begin
          match params with
          | Rns_params p -> Rns_params { p with n }
          | Pow2_params p -> Pow2_params { p with n }
        end
  in
  iterate 2048 0

(* ------------------------------------------------------------------ *)
(* §5.3 Cost estimation / data layout selection                         *)
(* ------------------------------------------------------------------ *)

let scheme_of_params opts = function
  | Rns_params { n; num_primes; _ } ->
      let chain = candidate_chain opts ~n in
      Hisa.Rns_chain (Array.sub chain 0 (Stdlib.min num_primes (Array.length chain)))
  | Pow2_params { log_fresh; _ } -> Hisa.Pow2_modulus log_fresh

let default_cost_model opts =
  match opts.cost with
  | Some cm -> cm
  | None -> ( match opts.target with Seal -> Cost_model.seal () | Heaan -> Cost_model.heaan () )

let estimate_cost opts circuit ~policy ~params =
  let backend, clock =
    Sim.make
      { Sim.n = params_n params; scheme = scheme_of_params opts params; costs = default_cost_model opts }
  in
  (try ignore (run_through backend opts circuit ~policy) with
  | Invalid_argument msg -> raise (Compilation_failure ("cost analysis failed: " ^ msg))
  | Herr.Fhe_error _ as e ->
      raise (Compilation_failure ("cost analysis failed: " ^ Printexc.to_string e)));
  clock.Sim.elapsed

(* ------------------------------------------------------------------ *)
(* §5.4 Rotation-keys selection                                         *)
(* ------------------------------------------------------------------ *)

let select_rotations opts circuit ~policy ~params =
  let n = params_n params in
  let shape = Shape.make { Shape.slots = n / 2; scheme = scheme_of_params opts params } in
  let backend, counters = Instrument.wrap shape in
  (try ignore (run_through backend opts circuit ~policy) with
  | Invalid_argument msg -> raise (Compilation_failure ("rotation analysis failed: " ^ msg))
  | Herr.Fhe_error _ as e ->
      raise (Compilation_failure ("rotation analysis failed: " ^ Printexc.to_string e)));
  let rotations =
    Hashtbl.fold (fun amount uses acc -> (amount, uses) :: acc) counters.Instrument.rotation_counts []
    |> List.sort compare
  in
  (rotations, counters)

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let compile opts circuit =
  let reports =
    List.map
      (fun policy ->
        let params = select_params opts circuit ~policy in
        let cost = estimate_cost opts circuit ~policy ~params in
        { pr_policy = policy; pr_params = params; pr_cost = cost })
      Executor.all_policies
  in
  let best =
    List.fold_left (fun acc r -> if r.pr_cost < acc.pr_cost then r else acc) (List.hd reports)
      (List.tl reports)
  in
  let rotations, op_counters =
    select_rotations opts circuit ~policy:best.pr_policy ~params:best.pr_params
  in
  {
    circuit;
    opts;
    policy = best.pr_policy;
    params = best.pr_params;
    rotations;
    op_counters;
    reports;
  }

let pp_compiled fmt c =
  Format.fprintf fmt "@[<v>%s compiled for %s:@,  layout: %s@,  params: %a@,  rotation keys: %d@,"
    c.circuit.Circuit.name
    (match c.opts.target with Seal -> "SEAL (RNS-CKKS)" | Heaan -> "HEAAN (CKKS)")
    (Executor.policy_name c.policy) pp_params c.params (List.length c.rotations);
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-18s est. %8.2f s  (N=%d, logQ=%d)@," (Executor.policy_name r.pr_policy)
        r.pr_cost (params_n r.pr_params) (params_log_q r.pr_params))
    c.reports;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Deployment                                                           *)
(* ------------------------------------------------------------------ *)

type rotation_key_policy = Selected_keys | Power_of_two_keys

let instantiate_with_scheme compiled ~seed ?(rotation_keys = Selected_keys) ~with_secret () =
  let rng = Chet_crypto.Sampling.create ~seed in
  match compiled.params with
  | Rns_params { n; prime_bits; num_primes; _ } ->
      let module C = Chet_crypto.Rns_ckks in
      let params = C.default_params ~n ~bits:prime_bits ~num_coeff_primes:num_primes () in
      let ctx = C.make_context params in
      let sk, keys = C.keygen ctx rng in
      (match rotation_keys with
      | Selected_keys ->
          List.iter (fun (amount, _) -> C.add_rotation_key ctx rng sk keys amount) compiled.rotations
      | Power_of_two_keys -> C.add_power_of_two_rotation_keys ctx rng sk keys);
      let backend =
        Chet_hisa.Seal_backend.make
          { Chet_hisa.Seal_backend.ctx; rng; keys; secret = (if with_secret then Some sk else None) }
      in
      (* the *actual* chain of the instantiated context (the analysis-time
         candidate chain differs: its largest prime became the special
         prime), so a checked wrapper validates against deployment truth *)
      (backend, Hisa.Rns_chain (C.coeff_primes ctx))
  | Pow2_params { n; log_fresh; log_special } ->
      let module C = Chet_crypto.Big_ckks in
      let params = C.default_params ~n ~log_special ~log_fresh () in
      let ctx = C.make_context params in
      let sk, keys = C.keygen ctx rng in
      (match rotation_keys with
      | Selected_keys ->
          List.iter (fun (amount, _) -> C.add_rotation_key ctx rng sk keys amount) compiled.rotations
      | Power_of_two_keys -> C.add_power_of_two_rotation_keys ctx rng sk keys);
      let backend =
        Chet_hisa.Heaan_backend.make
          { Chet_hisa.Heaan_backend.ctx; rng; keys; secret = (if with_secret then Some sk else None) }
      in
      (backend, Hisa.Pow2_modulus log_fresh)

let instantiate compiled ~seed ?(rotation_keys = Selected_keys) ~with_secret () =
  fst (instantiate_with_scheme compiled ~seed ~rotation_keys ~with_secret ())

(* Derive a per-request RNG seed from the deployment seed: requests must not
   share an encryption-randomness stream (their results would then depend on
   scheduling order), and distinct requests must not collide. An odd
   multiplier keeps the map injective over the integers. *)
let request_seed ~seed ~req_seed = seed lxor (0x2545F4914F6CDD1D * ((2 * req_seed) + 1))

type backend_factory = req_seed:int -> Hisa.t

(* Deployment for a *stream* of requests (the serving layer): key generation
   happens once here, then every [factory ~req_seed] call is a cheap backend
   view sharing the immutable context/keys but drawing encryption randomness
   from its own seeded stream. Contexts and key tables are read-only after
   this function returns (rotation keys are pre-generated), so the views are
   safe to use from concurrent domains, and a request's ciphertexts are a
   pure function of (inputs, req_seed) — independent of which worker runs it
   or in what order. *)
(* Shared deployment context behind every factory-style entry point: key
   generation once (optionally loading the public evaluation material from a
   stored RKY2 payload instead of regenerating rotation keys — the warm
   restart path), then cheap backend views over the immutable context/keys,
   one per caller-supplied sampler. Contexts and key tables are read-only
   after this returns, so views are safe to use from concurrent domains. *)
let deployment_views compiled ~seed ~rotation_keys ~keys_bytes ~with_secret :
    (Chet_crypto.Sampling.t -> Hisa.t) * Hisa.scheme_kind =
  let rng = Chet_crypto.Sampling.create ~seed in
  match compiled.params with
  | Rns_params { n; prime_bits; num_primes; _ } ->
      let module C = Chet_crypto.Rns_ckks in
      let params = C.default_params ~n ~bits:prime_bits ~num_coeff_primes:num_primes () in
      let ctx = C.make_context params in
      (* base keygen always runs: it re-derives the secret key from the
         deployment seed (never persisted). With a stored key payload the
         regenerated public material is discarded and rotation-key
         generation — the expensive part — is skipped entirely. *)
      let sk, keys = C.keygen ctx rng in
      let keys =
        match keys_bytes with
        | Some bytes ->
            Chet_crypto.Serial.read_rns_keys (Chet_crypto.Serial.reader bytes) (C.rq_ctx ctx)
        | None ->
            (match rotation_keys with
            | Selected_keys ->
                List.iter
                  (fun (amount, _) -> C.add_rotation_key ctx rng sk keys amount)
                  compiled.rotations
            | Power_of_two_keys -> C.add_power_of_two_rotation_keys ctx rng sk keys);
            keys
      in
      let secret = if with_secret then Some sk else None in
      let view vrng =
        Chet_hisa.Seal_backend.make
          { Chet_hisa.Seal_backend.ctx; rng = vrng; keys; secret }
      in
      (view, Hisa.Rns_chain (C.coeff_primes ctx))
  | Pow2_params { n; log_fresh; log_special } ->
      let module C = Chet_crypto.Big_ckks in
      let params = C.default_params ~n ~log_special ~log_fresh () in
      let ctx = C.make_context params in
      let sk, keys = C.keygen ctx rng in
      (match rotation_keys with
      | Selected_keys ->
          List.iter (fun (amount, _) -> C.add_rotation_key ctx rng sk keys amount) compiled.rotations
      | Power_of_two_keys -> C.add_power_of_two_rotation_keys ctx rng sk keys);
      let secret = if with_secret then Some sk else None in
      let view vrng =
        Chet_hisa.Heaan_backend.make
          { Chet_hisa.Heaan_backend.ctx; rng = vrng; keys; secret }
      in
      (view, Hisa.Pow2_modulus log_fresh)

let instantiate_factory compiled ~seed ?(rotation_keys = Selected_keys) ~with_secret () :
    backend_factory * Hisa.scheme_kind =
  let view, scheme = deployment_views compiled ~seed ~rotation_keys ~keys_bytes:None ~with_secret in
  let factory ~req_seed =
    view (Chet_crypto.Sampling.create ~seed:(request_seed ~seed ~req_seed))
  in
  (factory, scheme)

let instantiate_checked compiled ~seed ?(rotation_keys = Selected_keys) ~with_secret () =
  let backend, scheme = instantiate_with_scheme compiled ~seed ~rotation_keys ~with_secret () in
  Checked.wrap ~scheme backend

(* ------------------------------------------------------------------ *)
(* Durable deployments: compiled-metadata and key persistence           *)
(* ------------------------------------------------------------------ *)

module Serial = Chet_crypto.Serial

(* The CMPD frame: the full compile result minus the circuit (stored by
   name; the caller re-supplies the circuit and the reader verifies the
   name). Bumping the layout bumps [compiled_version] — an old frame then
   surfaces as a typed [Serial.Corrupt], never a misparse. *)
let compiled_version = 2

let int_of_policy = function
  | Executor.All_hw -> 0
  | Executor.All_chw -> 1
  | Executor.Hw_conv_chw_rest -> 2
  | Executor.Chw_fc_hw_before -> 3

let policy_of_int = function
  | 0 -> Executor.All_hw
  | 1 -> Executor.All_chw
  | 2 -> Executor.Hw_conv_chw_rest
  | 3 -> Executor.Chw_fc_hw_before
  | n -> raise (Serial.Corrupt (Printf.sprintf "bad layout policy %d" n))

let write_params w = function
  | Rns_params { n; prime_bits; num_primes; log_q } ->
      Serial.write_int w 0;
      Serial.write_int w n;
      Serial.write_int w prime_bits;
      Serial.write_int w num_primes;
      Serial.write_int w log_q
  | Pow2_params { n; log_fresh; log_special } ->
      Serial.write_int w 1;
      Serial.write_int w n;
      Serial.write_int w log_fresh;
      Serial.write_int w log_special

let read_params r =
  match Serial.read_int r with
  | 0 ->
      let n = Serial.read_int r in
      let prime_bits = Serial.read_int r in
      let num_primes = Serial.read_int r in
      let log_q = Serial.read_int r in
      if n < 2 || n land (n - 1) <> 0 || prime_bits < 2 || num_primes < 1 then
        raise (Serial.Corrupt "implausible RNS parameters");
      Rns_params { n; prime_bits; num_primes; log_q }
  | 1 ->
      let n = Serial.read_int r in
      let log_fresh = Serial.read_int r in
      let log_special = Serial.read_int r in
      if n < 2 || n land (n - 1) <> 0 || log_fresh < 1 then
        raise (Serial.Corrupt "implausible pow2 parameters");
      Pow2_params { n; log_fresh; log_special }
  | k -> raise (Serial.Corrupt (Printf.sprintf "bad params kind %d" k))

let write_counted_pairs w pairs =
  Serial.write_int w (List.length pairs);
  List.iter
    (fun (a, b) ->
      Serial.write_int w a;
      Serial.write_int w b)
    pairs

let read_counted_pairs r =
  let n = Serial.read_int r in
  if n < 0 || n > 1 lsl 20 then raise (Serial.Corrupt "bad pair count");
  List.init n (fun _ ->
      let a = Serial.read_int r in
      let b = Serial.read_int r in
      (a, b))

let write_compiled w c =
  Serial.write_frame w "CMPD" (fun w ->
      Serial.write_int w compiled_version;
      Serial.write_string w c.circuit.Circuit.name;
      Serial.write_int w (match c.opts.target with Seal -> 0 | Heaan -> 1);
      Serial.write_int w
        (match c.opts.security with
        | Standard Security.Bits128 -> 0
        | Standard Security.Bits192 -> 1
        | Standard Security.Bits256 -> 2
        | Legacy_heaan -> 3);
      Serial.write_int w c.opts.prime_bits;
      Serial.write_int w c.opts.value_headroom_bits;
      Serial.write_int w c.opts.scales.Kernels.pc;
      Serial.write_int w c.opts.scales.Kernels.pw;
      Serial.write_int w c.opts.scales.Kernels.pu;
      Serial.write_int w c.opts.scales.Kernels.pm;
      Serial.write_int w c.opts.max_n;
      Serial.write_int w (if c.opts.sentinel then 1 else 0);
      Serial.write_int w (int_of_policy c.policy);
      write_params w c.params;
      write_counted_pairs w c.rotations;
      let k = c.op_counters in
      List.iter (Serial.write_int w)
        Instrument.
          [
            k.encodes; k.decodes; k.encrypts; k.decrypts; k.adds; k.plain_adds; k.scalar_adds;
            k.ct_muls; k.plain_muls; k.scalar_muls; k.rescales;
          ];
      write_counted_pairs w
        (Hashtbl.fold (fun a u acc -> (a, u) :: acc) c.op_counters.Instrument.rotation_counts []
        |> List.sort compare);
      Serial.write_int w (List.length c.reports);
      List.iter
        (fun rp ->
          Serial.write_int w (int_of_policy rp.pr_policy);
          write_params w rp.pr_params;
          Serial.write_float w rp.pr_cost)
        c.reports)

let read_compiled ~circuit r =
  Serial.read_frame r "CMPD" (fun r ->
      let v = Serial.read_int r in
      if v <> compiled_version then
        raise (Serial.Corrupt (Printf.sprintf "unsupported compiled version %d" v));
      let name = Serial.read_string r in
      if name <> circuit.Circuit.name then
        raise
          (Serial.Corrupt
             (Printf.sprintf "compiled for circuit %S, asked to restore %S" name
                circuit.Circuit.name));
      let target =
        match Serial.read_int r with
        | 0 -> Seal
        | 1 -> Heaan
        | k -> raise (Serial.Corrupt (Printf.sprintf "bad target %d" k))
      in
      let security =
        match Serial.read_int r with
        | 0 -> Standard Security.Bits128
        | 1 -> Standard Security.Bits192
        | 2 -> Standard Security.Bits256
        | 3 -> Legacy_heaan
        | k -> raise (Serial.Corrupt (Printf.sprintf "bad security level %d" k))
      in
      let prime_bits = Serial.read_int r in
      let value_headroom_bits = Serial.read_int r in
      let pc = Serial.read_int r in
      let pw = Serial.read_int r in
      let pu = Serial.read_int r in
      let pm = Serial.read_int r in
      if pc < 1 || pw < 1 || pu < 1 || pm < 1 then raise (Serial.Corrupt "bad scales");
      let max_n = Serial.read_int r in
      let sentinel =
        match Serial.read_int r with
        | 0 -> false
        | 1 -> true
        | k -> raise (Serial.Corrupt (Printf.sprintf "bad sentinel flag %d" k))
      in
      let opts =
        {
          target;
          security;
          prime_bits;
          value_headroom_bits;
          scales = { Kernels.pc; pw; pu; pm };
          cost = None;
          max_n;
          sentinel;
        }
      in
      let policy = policy_of_int (Serial.read_int r) in
      let params = read_params r in
      let rotations = read_counted_pairs r in
      let k = Instrument.fresh_counters () in
      k.Instrument.encodes <- Serial.read_int r;
      k.Instrument.decodes <- Serial.read_int r;
      k.Instrument.encrypts <- Serial.read_int r;
      k.Instrument.decrypts <- Serial.read_int r;
      k.Instrument.adds <- Serial.read_int r;
      k.Instrument.plain_adds <- Serial.read_int r;
      k.Instrument.scalar_adds <- Serial.read_int r;
      k.Instrument.ct_muls <- Serial.read_int r;
      k.Instrument.plain_muls <- Serial.read_int r;
      k.Instrument.scalar_muls <- Serial.read_int r;
      k.Instrument.rescales <- Serial.read_int r;
      List.iter (fun (a, u) -> Hashtbl.replace k.Instrument.rotation_counts a u)
        (read_counted_pairs r);
      let nreports = Serial.read_int r in
      if nreports < 0 || nreports > 64 then raise (Serial.Corrupt "bad report count");
      let reports =
        List.init nreports (fun _ ->
            let pr_policy = policy_of_int (Serial.read_int r) in
            let pr_params = read_params r in
            let pr_cost = Serial.read_float r in
            { pr_policy; pr_params; pr_cost })
      in
      { circuit; opts; policy; params; rotations; op_counters = k; reports })

(* Public evaluation material for the compiled deployment, as the RKY2 wire
   frame. Runs the same deterministic keygen as [instantiate_factory] —
   including the rotation-key selection — and serialises everything except
   the secret key, which a restore re-derives from the seed instead of ever
   touching disk. *)
let export_keys compiled ~seed ?(rotation_keys = Selected_keys) () =
  let rng = Chet_crypto.Sampling.create ~seed in
  match compiled.params with
  | Rns_params { n; prime_bits; num_primes; _ } ->
      let module C = Chet_crypto.Rns_ckks in
      let params = C.default_params ~n ~bits:prime_bits ~num_coeff_primes:num_primes () in
      let ctx = C.make_context params in
      let sk, keys = C.keygen ctx rng in
      (match rotation_keys with
      | Selected_keys ->
          List.iter (fun (amount, _) -> C.add_rotation_key ctx rng sk keys amount) compiled.rotations
      | Power_of_two_keys -> C.add_power_of_two_rotation_keys ctx rng sk keys);
      let w = Serial.writer () in
      Serial.write_rns_keys w (C.rq_ctx ctx) keys;
      Some (Serial.contents w)
  | Pow2_params _ -> None

let instantiate_factory_restored compiled ~seed ?(rotation_keys = Selected_keys) ~keys:keys_bytes
    ~with_secret () =
  match (compiled.params, keys_bytes) with
  | Rns_params _, Some _ ->
      let view, scheme =
        deployment_views compiled ~seed ~rotation_keys ~keys_bytes ~with_secret
      in
      let factory ~req_seed =
        view (Chet_crypto.Sampling.create ~seed:(request_seed ~seed ~req_seed))
      in
      (factory, scheme)
  | _, _ -> instantiate_factory compiled ~seed ~rotation_keys ~with_secret ()

(* ------------------------------------------------------------------ *)
(* Compiled execution plans (DESIGN.md §14)                            *)
(* ------------------------------------------------------------------ *)

module Plan = Chet_plan.Plan

(* Compile the chosen policy into an executable plan at the compiled ring
   dimension. Pure metadata — no keys, no ciphertexts — so this runs at
   compile/bundle time and serialises into the Bundle's PLAN frame. A
   zero-budget prepare against the shape backend fills in the static fusion
   counts (they are the same for every backend) without encoding a single
   plaintext. *)
let plan compiled =
  let slots = params_n compiled.params / 2 in
  let p = Plan.build ~slots ~policy:compiled.policy compiled.circuit in
  let shape =
    Shape.make { Shape.slots; scheme = scheme_of_params compiled.opts compiled.params }
  in
  let module H = (val shape : Hisa.S) in
  let module PE = Chet_plan.Plan_exec.Make (H) in
  ignore (PE.prepare ~pt_budget:0 compiled.opts.scales p);
  p

type plan_runner = ?cancel:Chet_hisa.Cancel.t -> worker:int -> req_seed:int -> Tensor.t -> Tensor.t

(* One long-lived prepared executor per worker, created lazily on the
   worker's first request. The worker's backend view owns a single sampler
   that is re-pointed (Sampling.reseed) at the request's derived seed before
   each run, which restarts exactly the stream a fresh per-request backend
   would draw — so results stay bit-identical to the interpretive
   [backend_factory] path while the crypto context, staged kernels and
   encoded plaintexts are reused across requests instead of being re-derived
   per inference. *)
let instantiate_plan_runner compiled ~plan:the_plan ~seed ?(rotation_keys = Selected_keys)
    ?(pt_budget = 1024) ?keys:keys_bytes ~with_secret () : plan_runner * Hisa.scheme_kind =
  let keys_bytes =
    match (compiled.params, keys_bytes) with Rns_params _, Some b -> Some b | _ -> None
  in
  let view, scheme = deployment_views compiled ~seed ~rotation_keys ~keys_bytes ~with_secret in
  let lock = Mutex.create () in
  let workers :
      (int, ?cancel:Chet_hisa.Cancel.t -> req_seed:int -> Tensor.t -> Tensor.t) Hashtbl.t =
    Hashtbl.create 8
  in
  let make_worker () =
    let rng = Chet_crypto.Sampling.create ~seed in
    let backend = view rng in
    let module H = (val backend : Hisa.S) in
    let module PE = Chet_plan.Plan_exec.Make (H) in
    let prepared = PE.prepare ~pt_budget compiled.opts.scales the_plan in
    fun ?cancel ~req_seed image ->
      Chet_crypto.Sampling.reseed rng ~seed:(request_seed ~seed ~req_seed);
      PE.run ?cancel prepared image
  in
  let runner ?cancel ~worker ~req_seed image =
    let w =
      Mutex.protect lock (fun () ->
          match Hashtbl.find_opt workers worker with
          | Some w -> w
          | None ->
              let w = make_worker () in
              Hashtbl.replace workers worker w;
              w)
    in
    w ?cancel ~req_seed image
  in
  (runner, scheme)
