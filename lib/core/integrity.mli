(** Sentinel-slot result integrity (DESIGN.md §16): policy for the
    interleaved twin layouts of {!Chet_runtime.Layout} — probe generation,
    the clear-reference prediction, the precision tolerance, and the
    verdict. A sentinel mismatch surfaces as a typed
    [Chet_hisa.Herr.Integrity_violation]; the serving and networking layers
    turn that into same-request failover and shard quarantine. *)

module Tensor = Chet_tensor.Tensor
module Circuit = Chet_nn.Circuit

type spec = {
  it_probe : Tensor.t;  (** known input packed into the twin slots *)
  it_expected : Tensor.t;  (** [Reference.eval circuit it_probe], computed once *)
  it_tolerance : float;  (** max accepted |got - expected| per output *)
}

val default_tolerance : float
(** 0.05 — the same max-abs-deviation bar the compiled-deployment fidelity
    tests hold the real backends to. *)

val probe_for : ?seed:int -> Circuit.t -> Tensor.t
(** Deterministic probe image with the circuit's input schema. *)

val spec_for : ?seed:int -> ?tolerance:float -> Circuit.t -> spec
(** Build the deployment's sentinel spec: generate the probe and evaluate it
    through the clear reference model once. *)

val worst_deviation : spec -> Tensor.t -> int * float * float * float
(** [(flat index, expected, got, |diff|)] of the worst sentinel output; NaN
    deviations rank as infinite. *)

val margin_bits : spec -> Tensor.t -> float
(** Remaining precision headroom, [log2 (tolerance / worst deviation)],
    clamped to 60. Positive is clean; [<= 0] is a violation. *)

val verify : spec -> Tensor.t -> unit
(** @raise Chet_hisa.Herr.Fhe_error ([Integrity_violation]) if the decrypted
    twin output strays beyond the tolerance. *)

val sentinel : ?observe:(Tensor.t -> unit) -> spec -> Chet_runtime.Executor.sentinel
(** The executor-facing hook: pack the probe at encrypt time, verify the
    decrypted twin output, calling [observe] on it first (margin gauges,
    RSP1 sentinel forwarding). *)

val validate :
  spec -> Circuit.t -> scales:Chet_runtime.Kernels.scales ->
  policy:Chet_runtime.Executor.layout_policy -> slots:int -> float
(** Deployment-time self-check: run the circuit on a twin layout through the
    clear backend with the probe in both lanes and verify both against the
    reference. Proves the circuit/policy propagates the twin faithfully
    through the real kernels; returns the clean run's sentinel margin.
    @raise Chet_hisa.Herr.Fhe_error on layout overflow or lane mixing. *)
