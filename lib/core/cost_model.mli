(** Cost models for the HISA primitives (Table 1), with constants calibrated
    against microbenchmarks of this repository's scheme implementations
    ([bench/main.exe --calibrate] refits and prints them). *)

module Hisa = Chet_hisa.Hisa

type constants = {
  k_add : float;
  k_scalar_mul : float;
  k_plain_mul : float;
  k_cipher_mul : float;
  k_rotate : float;
  k_rescale : float;
}
(** Seconds per elementary unit of each Table-1 asymptotic term. *)

val seal_defaults : constants
val heaan_defaults : constants

val seal : ?c:constants -> unit -> Hisa.cost_model
(** RNS-CKKS: linear terms in [N·r]; mul/rotate in [N·logN·r²]. *)

val heaan : ?c:constants -> unit -> Hisa.cost_model
(** CKKS: [M(Q) = logQ^1.58] big-integer multiplication inside each term. *)

val fit_constant : (Hisa.op_env -> float) -> (Hisa.op_env * float) list -> float
(** Least-squares constant for one op given (env, measured seconds) samples
    and the op's asymptotic term. *)

val fit_constant_weighted :
  (Hisa.op_env -> float) -> (Hisa.op_env * float * float) list -> float
(** Like {!fit_constant} but each sample is [(env, seconds, weight)]; the
    profile path weights by the number of timed operations behind a mean. *)

(** {2 Profile-driven calibration}

    [chet profile] times real scheme operations through
    [Chet_hisa.Timed_backend], fits Table-1 constants from the resulting
    cells, and persists them as JSON
    ([{"version":1,"constants":{"seal":{...},"heaan":{...}}}]). The
    compiler's layout search and the Figure-6 bench load the same file. *)

type scheme = [ `Seal | `Heaan ]

type op_class = Add | Scalar_mul | Plain_mul | Cipher_mul | Rotate | Rescale

val class_of_op : string -> op_class option
(** Cost-model class for a timed HISA op name; [None] for client-side ops
    (encode/encrypt/decrypt/decode) outside Table 1. The fused ops
    ([fma_scalar]/[fma_plain]/[fma_rot]) map to their main class. *)

val fused_main_class : string -> op_class option
(** [Some main] iff the op is a fused multiply/rotate-accumulate, whose cost
    decomposes as [main] plus {!Add}. {!calibrate_from} fits fused cells
    against that composite term. *)

val term_of : scheme -> op_class -> Hisa.op_env -> float
(** The asymptotic Table-1 term of a (scheme, class) pair, sans constant. *)

val calibrate_from :
  scheme:scheme -> (string * Hisa.op_env * int * float) list -> constants
(** Fit constants from timed cells [(op, env, count, mean_seconds)] — the
    shape returned by [Chet_hisa.Timed_backend.cells]. Classes with no
    samples keep the scheme's shipped defaults. Fused cells ([fma_*], from a
    [chet profile] grid or a plan-path trace) are fitted as composite
    samples: the Add component is credited at the fitted [k_add] and the
    residual folds into the main class. *)

type calibration = { seal_c : constants; heaan_c : constants }

val default_calibration : calibration

val calibration_to_json : calibration -> Chet_obs.Jsonx.t
val calibration_of_json : Chet_obs.Jsonx.t -> calibration
(** @raise Failure on missing/unsupported version or malformed constants. *)

val save_calibration : string -> calibration -> unit

val load_calibration : string -> calibration
(** @raise Chet_obs.Jsonx.Parse_error on malformed JSON, [Failure] on a
    structurally wrong file, [Sys_error] if unreadable. *)

val model_for : scheme -> calibration -> Hisa.cost_model
(** The scheme's cost model under a calibration's constants. *)
