module Hisa = Chet_hisa.Hisa
module Herr = Chet_hisa.Herr
module Clear = Chet_hisa.Clear_backend
module Checked = Chet_hisa.Checked_backend
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Reference = Chet_nn.Reference
module Tensor = Chet_tensor.Tensor

type verdict =
  | Accepted
  | Tolerance_exceeded of float  (** worst max-abs deviation over the test images *)
  | Fhe_rejected of Herr.error * Herr.context
      (** the candidate violated an FHE invariant (typically
          [Modulus_exhausted] under pinned parameters) *)
  | Infeasible of string  (** parameter selection itself failed *)

let verdict_reason = function
  | Accepted -> "accepted"
  | Tolerance_exceeded d -> Printf.sprintf "output tolerance exceeded (max-abs %.3g)" d
  | Fhe_rejected (e, c) -> Herr.to_string (e, c)
  | Infeasible msg -> msg

type rejection = { rej_exponents : int * int * int * int; rej_verdict : verdict }

type result = {
  scales : Kernels.scales;
  exponents : int * int * int * int;
  evaluations : int;
  rejections : rejection list;
}

let scales_of (ec, ew, eu, em) =
  { Kernels.pc = 1 lsl ec; pw = 1 lsl ew; pu = 1 lsl eu; pm = 1 lsl em }

(* Evaluate one candidate on the quantising cleartext backend, run under
   {!Checked_backend} so that any scale/level desynchronisation the candidate
   causes is caught as a typed error, never as garbage in the comparison.

   The ring dimension only has to be large enough for the layout, so we let
   parameter selection find it once per call (scales change modulus
   consumption, but not whether the layout fits) — unless the deployment's
   parameters are pinned ([fixed_params]), in which case the candidate must
   live within that fixed modulus budget and a too-large scale genuinely
   exhausts it ([Modulus_exhausted], §5.2's failure mode). *)
let evaluate ?fixed_params opts circuit ~policy ~images ~tolerance (scales : Kernels.scales) =
  let opts = { opts with Compiler.scales } in
  match
    match fixed_params with
    | Some params -> Ok params
    | None -> (
        try Ok (Compiler.select_params opts circuit ~policy)
        with Compiler.Compilation_failure msg -> Error msg)
  with
  | Error msg -> Infeasible msg
  | Ok params -> (
      let n = Compiler.params_n params in
      let scheme = Compiler.scheme_of_params opts params in
      (* pinned parameters are a hard budget: enforce exhaustion strictly *)
      let strict_modulus = fixed_params <> None in
      let backend =
        Checked.wrap ~scheme
          (Clear.make { Clear.slots = n / 2; scheme; strict_modulus; encode_noise = true })
      in
      let module H = (val backend) in
      let module E = Executor.Make (H) in
      try
        let worst = ref 0.0 in
        List.iter
          (fun image ->
            let expected = Reference.eval circuit image in
            let got = E.run scales circuit ~policy image in
            let d = Tensor.max_abs_diff (Tensor.flatten expected) (Tensor.flatten got) in
            if d > !worst then worst := d)
          images;
        if !worst <= tolerance then Accepted else Tolerance_exceeded !worst
      with
      | Herr.Fhe_error (e, c) -> Fhe_rejected (e, c)
      | Invalid_argument msg -> Infeasible msg)

let acceptable ?fixed_params opts circuit ~policy ~images ~tolerance scales =
  match evaluate ?fixed_params opts circuit ~policy ~images ~tolerance scales with
  | Accepted -> true
  | Tolerance_exceeded _ | Fhe_rejected _ | Infeasible _ -> false

(* The candidate ladder tried when a starting configuration is rejected:
   §5.5's search assumes the first (largest) scales are valid, but under a
   pinned modulus budget the largest scales may exhaust the chain — the
   compiler degrades gracefully by logging the typed rejection and retrying
   the next, smaller, candidate instead of aborting. *)
let fallback_starts (ec, ew, eu, em) =
  List.init 12 (fun i ->
      let d = 2 * (i + 1) in
      (Stdlib.max 8 (ec - d), Stdlib.max 6 (ew - d / 2), Stdlib.max 6 (eu - d / 2), Stdlib.max 6 (em - d / 2)))

let search ?fixed_params ?log opts circuit ~policy ~images ~tolerance
    ?(start_exponents = (40, 30, 30, 20)) ?(min_exponent = 4) () =
  let evaluations = ref 0 in
  let rejections = ref [] in
  let note exps verdict =
    rejections := { rej_exponents = exps; rej_verdict = verdict } :: !rejections;
    match log with
    | Some f ->
        let ec, ew, eu, em = exps in
        f
          (Printf.sprintf "scale search: rejected (Pc,Pw,Pu,Pm)=2^(%d,%d,%d,%d): %s" ec ew eu em
             (verdict_reason verdict))
    | None -> ()
  in
  let try_candidate exps =
    incr evaluations;
    match evaluate ?fixed_params opts circuit ~policy ~images ~tolerance (scales_of exps) with
    | Accepted -> true
    | v ->
        note exps v;
        false
  in
  (* find a feasible starting point, degrading along the ladder *)
  let start =
    if try_candidate start_exponents then start_exponents
    else begin
      match List.find_opt try_candidate (fallback_starts start_exponents) with
      | Some s -> s
      | None ->
          raise
            (Compiler.Compilation_failure
               (Printf.sprintf
                  "scale search: no starting scaling factors are acceptable (%d candidates \
                   rejected; last: %s)"
                  !evaluations
                  (match !rejections with
                  | { rej_verdict; _ } :: _ -> verdict_reason rej_verdict
                  | [] -> "none tried")))
    end
  in
  let current = ref start in
  let progress = ref true in
  (* round-robin: shave one bit off each factor in turn while acceptable *)
  while !progress do
    progress := false;
    for i = 0 to 3 do
      let ec, ew, eu, em = !current in
      let candidate =
        match i with
        | 0 -> (ec - 1, ew, eu, em)
        | 1 -> (ec, ew - 1, eu, em)
        | 2 -> (ec, ew, eu - 1, em)
        | _ -> (ec, ew, eu, em - 1)
      in
      let c0, c1, c2, c3 = candidate in
      if c0 >= min_exponent && c1 >= min_exponent && c2 >= min_exponent && c3 >= min_exponent
         && try_candidate candidate
      then begin
        current := candidate;
        progress := true
      end
    done
  done;
  {
    scales = scales_of !current;
    exponents = !current;
    evaluations = !evaluations;
    rejections = List.rev !rejections;
  }
