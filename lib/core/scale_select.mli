(** Profile-guided fixed-point scale selection (§5.5), with graceful
    degradation.

    Instead of asking the user for the four fixed-point scaling factors
    (image [Pc], plaintext weights [Pw], scalar weights [Pu], masks [Pm]),
    CHET searches for the smallest acceptable ones given representative
    inputs and an output tolerance. Candidate configurations are evaluated by
    running the homomorphic circuit on the quantising cleartext backend —
    wrapped in {!Chet_hisa.Checked_backend}, so a candidate that violates an
    FHE invariant surfaces as a typed [Chet_herr.Herr.Fhe_error] — and
    comparing against the reference engine.

    The search is the paper's round-robin: all four exponents start high and
    each is decremented in turn as long as every test input stays within
    tolerance, until no exponent can shrink.

    Hardening beyond the paper: when the deployment's encryption parameters
    are pinned ([fixed_params]), the candidate scales must live within that
    fixed modulus budget; a too-large starting candidate then fails with
    [Modulus_exhausted], and instead of aborting the search logs the typed
    rejection and retries smaller fallback candidates. Every rejected
    configuration is recorded in {!result.rejections} with its structured
    reason. *)

module Herr = Chet_hisa.Herr
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor

type verdict =
  | Accepted
  | Tolerance_exceeded of float  (** worst max-abs deviation over the test images *)
  | Fhe_rejected of Herr.error * Herr.context
      (** the candidate violated an FHE invariant (typically
          [Modulus_exhausted] under pinned parameters) *)
  | Infeasible of string  (** parameter selection itself failed *)

val verdict_reason : verdict -> string

type rejection = { rej_exponents : int * int * int * int; rej_verdict : verdict }

type result = {
  scales : Kernels.scales;
  exponents : int * int * int * int;  (** (log2 Pc, log2 Pw, log2 Pu, log2 Pm) *)
  evaluations : int;  (** number of candidate configurations tried *)
  rejections : rejection list;  (** rejected candidates, in evaluation order *)
}

val evaluate :
  ?fixed_params:Compiler.params_choice -> Compiler.options -> Circuit.t ->
  policy:Executor.layout_policy -> images:Tensor.t list -> tolerance:float -> Kernels.scales ->
  verdict
(** Evaluate one candidate configuration. [fixed_params] pins the encryption
    parameters (a deployed modulus budget) instead of re-running §5.2; the
    virtual modulus is then enforced strictly, making [Modulus_exhausted]
    reachable. *)

val acceptable :
  ?fixed_params:Compiler.params_choice -> Compiler.options -> Circuit.t ->
  policy:Executor.layout_policy -> images:Tensor.t list -> tolerance:float -> Kernels.scales ->
  bool
(** [evaluate] collapsed to a boolean: does this configuration keep every
    test image's output within [tolerance] (max-abs) of the unencrypted
    reference (and within the modulus budget, if pinned)? *)

val search :
  ?fixed_params:Compiler.params_choice -> ?log:(string -> unit) -> Compiler.options -> Circuit.t ->
  policy:Executor.layout_policy -> images:Tensor.t list -> tolerance:float ->
  ?start_exponents:int * int * int * int -> ?min_exponent:int -> unit -> result
(** [log] receives one line per rejected candidate (structured reason
    included). If the starting configuration is rejected, a ladder of
    smaller fallback starts is tried before giving up.
    @raise Compiler.Compilation_failure if no starting configuration is
    acceptable. *)
