(** The CHET compiler (§5): given a tensor circuit and a target FHE scheme,
    select encryption parameters that are secure and correct (§5.2), the
    cheapest data layout under the scheme's cost model (§5.3), and the
    rotation keys the circuit actually uses (§5.4).

    Every pass executes the homomorphic tensor circuit under a different
    interpretation of the HISA (§5.1): parameter selection observes modulus
    consumption through {!Chet_hisa.Clear_backend}, cost estimation runs
    {!Chet_hisa.Sim_backend} with the target's cost model, and rotation-key
    selection records rotations with {!Chet_hisa.Instrument}. *)

module Hisa = Chet_hisa.Hisa
module Circuit = Chet_nn.Circuit
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor

type target = Seal | Heaan
type security = Standard of Chet_crypto.Security.level | Legacy_heaan

type options = {
  target : target;
  security : security;
  prime_bits : int;  (** RNS chain prime size; 30 for the executable backend, 60 to mirror SEAL's shipped list *)
  value_headroom_bits : int;  (** extra modulus bits above the output scale, covering message magnitude *)
  scales : Kernels.scales;
  cost : Hisa.cost_model option;  (** default: the target's calibrated model *)
  max_n : int;  (** largest ring dimension to consider (default 65536) *)
  sentinel : bool;
      (** compile for sentinel-slot integrity checking (DESIGN.md §16): the
          deployment executes on an interleaved twin layout (odd slots carry
          a known probe), so every analysis pass — parameter selection,
          cost, rotation keys — runs on that doubled geometry *)
}

val default_options : ?target:target -> unit -> options

type params_choice =
  | Rns_params of { n : int; prime_bits : int; num_primes : int; log_q : int }
      (** [log_q] includes the special prime, matching how SEAL reports it *)
  | Pow2_params of { n : int; log_fresh : int; log_special : int }

val params_n : params_choice -> int
val params_log_q : params_choice -> int
val pp_params : Format.formatter -> params_choice -> unit

type policy_report = {
  pr_policy : Executor.layout_policy;
  pr_params : params_choice;
  pr_cost : float;  (** estimated seconds under the cost model *)
}

type compiled = {
  circuit : Circuit.t;
  opts : options;
  policy : Executor.layout_policy;
  params : params_choice;
  rotations : (int * int) list;  (** (left-rotation amount, use count) — the keys to generate *)
  op_counters : Chet_hisa.Instrument.counters;
  reports : policy_report list;  (** one per layout policy (Tables 5–6) *)
}

exception Compilation_failure of string

val scheme_of_params : options -> params_choice -> Hisa.scheme_kind
(** The virtual scheme an analysis backend should emulate for these
    parameters (used by the cost, rotation and scale-selection passes). *)

val select_params : options -> Circuit.t -> policy:Executor.layout_policy -> params_choice
(** §5.2 as a standalone pass (re-run per layout choice by {!compile}). *)

val estimate_cost : options -> Circuit.t -> policy:Executor.layout_policy -> params:params_choice -> float
(** §5.3's cost analysis for one layout choice. *)

val select_rotations :
  options -> Circuit.t -> policy:Executor.layout_policy -> params:params_choice ->
  (int * int) list * Chet_hisa.Instrument.counters
(** §5.4: distinct rotation amounts used (with use counts). *)

val compile : options -> Circuit.t -> compiled
(** The full pipeline: explore all four layout policies, pick the cheapest,
    fix parameters and rotation keys. *)

val pp_compiled : Format.formatter -> compiled -> unit

(** {1 Deployment}

    Build a real backend configured exactly as compiled: ring dimension,
    modulus chain, and only the selected rotation keys (plus, optionally,
    the scheme-default power-of-two set instead — the Figure 7 baseline). *)

type rotation_key_policy = Selected_keys | Power_of_two_keys

val instantiate :
  compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> with_secret:bool -> unit -> Hisa.t

val instantiate_with_scheme :
  compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> with_secret:bool -> unit ->
  Hisa.t * Hisa.scheme_kind
(** Like {!instantiate}, but also return the {e actual} scheme description of
    the instantiated context (its real modulus chain / fresh logQ) — exactly
    what {!Chet_hisa.Checked_backend.wrap} needs to validate the deployment.
    Note this differs from {!scheme_of_params}: the analysis-time candidate
    chain reserves its largest prime as the key-switching special prime. *)

val instantiate_checked :
  compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> with_secret:bool -> unit -> Hisa.t
(** {!instantiate_with_scheme} composed with {!Chet_hisa.Checked_backend}:
    a deployment backend on which every HISA op validates its pre- and
    postconditions, turning silent corruption into typed
    [Chet_herr.Herr.Fhe_error]s. *)

type backend_factory = req_seed:int -> Hisa.t
(** A deployed keyset serving a stream of requests: each call is a cheap
    backend view over the shared (immutable, domain-safe) context and keys,
    with encryption randomness derived from [req_seed] alone — so a
    request's ciphertexts do not depend on scheduling order. *)

val instantiate_factory :
  compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> with_secret:bool -> unit ->
  backend_factory * Hisa.scheme_kind
(** Key generation once, then per-request backend views. This is the
    deployment primitive behind {!Chet_serve.Service}'s degradation ladder;
    the returned scheme describes the instantiated context, as in
    {!instantiate_with_scheme}. *)

(** {1 Durable deployments}

    Compile-once / infer-many (§3.2) made persistent: the offline artifacts
    — the compiled configuration and the public evaluation keys — serialise
    through {!Chet_crypto.Serial}'s checksummed frames so a deployment
    survives a process restart without repeating parameter selection,
    layout search or (for RNS targets) rotation-key generation.
    {!Chet_store.Bundle} composes these into an on-disk bundle. *)

val write_compiled : Chet_crypto.Serial.writer -> compiled -> unit
(** Everything in {!compiled} except the circuit itself (stored by name),
    as a [CMPD] integrity frame: options, chosen policy and parameters,
    rotation selection, op counters and the per-policy reports. The cost
    model override ([opts.cost]) is not persisted — reattach a calibration
    via {!Cost_model.model_for} after restore. *)

val read_compiled : circuit:Circuit.t -> Chet_crypto.Serial.reader -> compiled
(** @raise Chet_crypto.Serial.Corrupt on any integrity or structural
    violation, including a frame compiled for a different circuit name. *)

val export_keys : compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> unit -> string option
(** Run key generation for this deployment and serialise the {e public}
    evaluation material (public + relin + selected rotation keys) as an
    [RKY2] frame. The secret key is deliberately never exported — a durable
    deployment re-derives it from [seed] at restore time. [None] for
    power-of-two (HEAAN) targets, whose key material has no wire format;
    those deployments re-run keygen from [seed] on restore. *)

val instantiate_factory_restored :
  compiled -> seed:int -> ?rotation_keys:rotation_key_policy -> keys:string option ->
  with_secret:bool -> unit -> backend_factory * Hisa.scheme_kind
(** {!instantiate_factory}, but loading the evaluation keys from a
    {!export_keys} payload instead of regenerating them — the warm-restart
    path. The (cheap, deterministic) base keygen still runs to re-derive
    the secret key from [seed]; the rotation-key bulk comes off the wire.
    With [keys = None] this degrades to {!instantiate_factory}. The
    restored deployment is bit-identical to the one {!export_keys} saw:
    same keys, and per-request randomness derived from [seed]/[req_seed]
    exactly as before.
    @raise Chet_crypto.Serial.Corrupt if the key payload is damaged. *)

(** {1 Compiled execution plans}

    The plan path (DESIGN.md §14): the compiled circuit lowered once into an
    explicit schedule over a ciphertext arena ({!Chet_plan.Plan}), then
    executed through prepare-once staged kernels with fused HISA dispatch.
    Outputs are bit-identical to the interpretive executor; what changes is
    per-request work — no layout re-derivation, no plaintext re-encoding,
    one ciphertext allocation per accumulation step. *)

val plan : compiled -> Chet_plan.Plan.t
(** Lower the compiled policy into an executable plan at the compiled ring
    dimension. Pure metadata (no keys or ciphertexts); serialises into the
    {!Chet_store.Bundle} PLAN frame. *)

type plan_runner =
  ?cancel:Chet_hisa.Cancel.t -> worker:int -> req_seed:int -> Chet_tensor.Tensor.t -> Chet_tensor.Tensor.t
(** Full-roundtrip plan inference: encrypt at the plan's input layout with
    the request's derived randomness, execute the plan, decrypt. [worker]
    selects a long-lived prepared executor (created lazily per worker id);
    calls with the same [worker] must not run concurrently, different
    workers may. *)

val instantiate_plan_runner :
  compiled -> plan:Chet_plan.Plan.t -> seed:int -> ?rotation_keys:rotation_key_policy ->
  ?pt_budget:int -> ?keys:string -> with_secret:bool -> unit -> plan_runner * Hisa.scheme_kind
(** Key generation once (or loaded from a {!export_keys} payload via
    [?keys], as in {!instantiate_factory_restored}), one prepared executor
    per worker after that. Per-worker samplers are re-seeded to
    [request_seed seed req_seed] before each run, so results are
    bit-identical to {!instantiate_factory}'s per-request backends.
    [pt_budget] bounds how many weight/mask plaintexts each worker keeps
    encoded in memory (default 1024); beyond it, staged kernels fall back to
    per-inference encoding. *)
