(* Cost models for the HISA primitives (Table 1), with constants tuned
   against microbenchmarks of this repository's own scheme implementations
   (bench/main.exe --calibrate prints freshly measured constants; the
   defaults below were obtained that way on the development machine).

   The RNS-CKKS model is in terms of (N, r); the CKKS model in terms of
   (N, logQ) with M(Q) = logQ^1.58 for big-integer multiplication. *)

module Hisa = Chet_hisa.Hisa

type constants = {
  k_add : float;
  k_scalar_mul : float;
  k_plain_mul : float;
  k_cipher_mul : float;
  k_rotate : float;
  k_rescale : float;
}

(* seconds per elementary unit of the Table 1 asymptotic term; values from
   `bench/main.exe --calibrate` against this repository's scheme
   implementations *)
let seal_defaults =
  {
    k_add = 5.97e-8;
    k_scalar_mul = 1.95e-8;
    k_plain_mul = 1.88e-8;
    k_cipher_mul = 2.76e-8;
    k_rotate = 3.42e-8;
    k_rescale = 2.0e-8;
  }

let heaan_defaults =
  {
    k_add = 2.22e-9;
    k_scalar_mul = 1.48e-8;
    k_plain_mul = 7.04e-8;
    k_cipher_mul = 2.27e-7;
    k_rotate = 9.10e-8;
    k_rescale = 5.0e-9;
  }

let logf n = log (float_of_int n) /. log 2.0

let seal ?(c = seal_defaults) () =
  let n e = float_of_int e.Hisa.env_n in
  let r e = float_of_int (Stdlib.max 1 e.Hisa.env_r) in
  {
    Hisa.cm_add = (fun e -> c.k_add *. n e *. r e);
    cm_scalar_mul = (fun e -> c.k_scalar_mul *. n e *. r e);
    cm_plain_mul = (fun e -> c.k_plain_mul *. n e *. r e);
    cm_cipher_mul = (fun e -> c.k_cipher_mul *. n e *. logf e.Hisa.env_n *. r e *. r e);
    cm_rotate = (fun e -> c.k_rotate *. n e *. logf e.Hisa.env_n *. r e *. r e);
    cm_rescale = (fun e -> c.k_rescale *. n e *. logf e.Hisa.env_n *. r e);
  }

let heaan ?(c = heaan_defaults) () =
  let n e = float_of_int e.Hisa.env_n in
  let lq e = float_of_int (Stdlib.max 1 e.Hisa.env_log_q) in
  let m_q e = lq e ** 1.58 /. 64.0 in
  {
    Hisa.cm_add = (fun e -> c.k_add *. n e *. lq e);
    cm_scalar_mul = (fun e -> c.k_scalar_mul *. n e *. m_q e);
    cm_plain_mul = (fun e -> c.k_plain_mul *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_cipher_mul = (fun e -> c.k_cipher_mul *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_rotate = (fun e -> c.k_rotate *. n e *. logf e.Hisa.env_n *. m_q e);
    cm_rescale = (fun e -> c.k_rescale *. n e *. lq e);
  }

(* Calibration: given measured (env, seconds) samples for one op and that
   op's asymptotic term, the constant is the least-squares ratio. *)
let fit_constant term samples =
  let num = List.fold_left (fun acc (env, t) -> acc +. (t *. term env)) 0.0 samples in
  let den = List.fold_left (fun acc (env, _) -> acc +. (term env *. term env)) 0.0 samples in
  if den = 0.0 then 0.0 else num /. den

(* Weighted variant: each sample carries how many timed operations it
   averages over, so heavily exercised (op, env) cells pull the fit harder
   than cells observed once. *)
let fit_constant_weighted term samples =
  let num =
    List.fold_left (fun acc (env, t, w) -> acc +. (w *. t *. term env)) 0.0 samples
  in
  let den =
    List.fold_left (fun acc (env, _, w) -> acc +. (w *. term env *. term env)) 0.0 samples
  in
  if den = 0.0 then 0.0 else num /. den

(* ---- Profile-driven calibration (the `chet profile` path) ---------------- *)

type scheme = [ `Seal | `Heaan ]

(* Cost-model op class for a timed HISA op name, or [None] for ops outside
   Table 1 (encode / encrypt / decrypt / decode are client-side). *)
type op_class = Add | Scalar_mul | Plain_mul | Cipher_mul | Rotate | Rescale

let class_of_op = function
  | "add" | "sub" | "add_plain" | "sub_plain" | "add_scalar" | "sub_scalar" -> Some Add
  | "mul_scalar" | "fma_scalar" -> Some Scalar_mul
  | "mul_plain" | "fma_plain" -> Some Plain_mul
  | "mul" -> Some Cipher_mul
  | "rot_left" | "rot_right" | "fma_rot" -> Some Rotate
  | "rescale" -> Some Rescale
  | _ -> None

(* The fused HISA ops decompose as a main-class op plus an addition; a timed
   fma cell is a sample of that composite term, not of the main class alone. *)
let fused_main_class = function
  | "fma_scalar" -> Some Scalar_mul
  | "fma_plain" -> Some Plain_mul
  | "fma_rot" -> Some Rotate
  | _ -> None

(* The asymptotic term of each (scheme, class) pair — the model bodies above
   without their constants. *)
let term_of scheme cls =
  let n e = float_of_int e.Hisa.env_n in
  let r e = float_of_int (Stdlib.max 1 e.Hisa.env_r) in
  let lq e = float_of_int (Stdlib.max 1 e.Hisa.env_log_q) in
  let m_q e = lq e ** 1.58 /. 64.0 in
  match scheme with
  | `Seal -> begin
      match cls with
      | Add -> fun e -> n e *. r e
      | Scalar_mul -> fun e -> n e *. r e
      | Plain_mul -> fun e -> n e *. r e
      | Cipher_mul -> fun e -> n e *. logf e.Hisa.env_n *. r e *. r e
      | Rotate -> fun e -> n e *. logf e.Hisa.env_n *. r e *. r e
      | Rescale -> fun e -> n e *. logf e.Hisa.env_n *. r e
    end
  | `Heaan -> begin
      match cls with
      | Add -> fun e -> n e *. lq e
      | Scalar_mul -> fun e -> n e *. m_q e
      | Plain_mul -> fun e -> n e *. logf e.Hisa.env_n *. m_q e
      | Cipher_mul -> fun e -> n e *. logf e.Hisa.env_n *. m_q e
      | Rotate -> fun e -> n e *. logf e.Hisa.env_n *. m_q e
      | Rescale -> fun e -> n e *. lq e
    end

let defaults_of = function `Seal -> seal_defaults | `Heaan -> heaan_defaults

(* Fit Table-1 constants from timed-backend cells
   [(op, env, count, mean_seconds)]. Classes with no samples keep the
   scheme's shipped defaults, so a partial profile still yields a usable
   model. *)
let calibrate_from ~scheme cells =
  let d = defaults_of scheme in
  let pure_samples cls =
    List.filter_map
      (fun (op, env, count, mean_s) ->
        match (fused_main_class op, class_of_op op) with
        | None, Some c when c = cls && count > 0 && mean_s > 0.0 ->
            Some (env, mean_s, float_of_int count)
        | _ -> None)
      cells
  in
  let fit_pure cls fallback =
    match pure_samples cls with
    | [] -> fallback
    | samples ->
        let k = fit_constant_weighted (term_of scheme cls) samples in
        if k > 0.0 then k else fallback
  in
  let k_add = fit_pure Add d.k_add in
  (* a fused cell is a composite sample (main term + Add term): credit the
     addition at the just-fitted k_add and fold the residual into the main
     class, so plan-path timings keep the interpretive constants honest *)
  let fused_samples cls =
    List.filter_map
      (fun (op, env, count, mean_s) ->
        match fused_main_class op with
        | Some c when c = cls && count > 0 && mean_s > 0.0 ->
            let residual = mean_s -. (k_add *. term_of scheme Add env) in
            if residual > 0.0 then Some (env, residual, float_of_int count) else None
        | _ -> None)
      cells
  in
  let fit cls fallback =
    match pure_samples cls @ fused_samples cls with
    | [] -> fallback
    | samples ->
        let k = fit_constant_weighted (term_of scheme cls) samples in
        if k > 0.0 then k else fallback
  in
  {
    k_add;
    k_scalar_mul = fit Scalar_mul d.k_scalar_mul;
    k_plain_mul = fit Plain_mul d.k_plain_mul;
    k_cipher_mul = fit Cipher_mul d.k_cipher_mul;
    k_rotate = fit Rotate d.k_rotate;
    k_rescale = fit Rescale d.k_rescale;
  }

(* ---- Persistence ---------------------------------------------------------
   {"version": 1,
    "constants": {"seal": {"k_add": ..., ...}, "heaan": {...}}} *)

module Jsonx = Chet_obs.Jsonx

type calibration = { seal_c : constants; heaan_c : constants }

let default_calibration = { seal_c = seal_defaults; heaan_c = heaan_defaults }

let constants_to_json c =
  Jsonx.Obj
    [
      ("k_add", Jsonx.Num c.k_add);
      ("k_scalar_mul", Jsonx.Num c.k_scalar_mul);
      ("k_plain_mul", Jsonx.Num c.k_plain_mul);
      ("k_cipher_mul", Jsonx.Num c.k_cipher_mul);
      ("k_rotate", Jsonx.Num c.k_rotate);
      ("k_rescale", Jsonx.Num c.k_rescale);
    ]

let constants_of_json j =
  let f name =
    match Jsonx.num_member name j with
    | Some v -> v
    | None -> failwith (Printf.sprintf "calibration file: missing constant %S" name)
  in
  {
    k_add = f "k_add";
    k_scalar_mul = f "k_scalar_mul";
    k_plain_mul = f "k_plain_mul";
    k_cipher_mul = f "k_cipher_mul";
    k_rotate = f "k_rotate";
    k_rescale = f "k_rescale";
  }

let calibration_to_json cal =
  Jsonx.Obj
    [
      ("version", Jsonx.Num 1.0);
      ( "constants",
        Jsonx.Obj
          [
            ("seal", constants_to_json cal.seal_c);
            ("heaan", constants_to_json cal.heaan_c);
          ] );
    ]

let calibration_of_json j =
  (match Jsonx.member "version" j with
  | Some (Jsonx.Num v) when v = 1.0 -> ()
  | Some (Jsonx.Num v) ->
      failwith (Printf.sprintf "unsupported calibration version %g (expected 1)" v)
  | _ -> failwith "calibration file: missing \"version\"");
  match Jsonx.member "constants" j with
  | None -> failwith "calibration file: missing \"constants\""
  | Some consts ->
      let section name fallback =
        match Jsonx.member name consts with
        | None -> fallback
        | Some s -> constants_of_json s
      in
      {
        seal_c = section "seal" seal_defaults;
        heaan_c = section "heaan" heaan_defaults;
      }

let save_calibration path cal = Jsonx.to_file path (calibration_to_json cal)
let load_calibration path = calibration_of_json (Jsonx.of_file path)

let model_for scheme cal =
  match scheme with
  | `Seal -> seal ~c:cal.seal_c ()
  | `Heaan -> heaan ~c:cal.heaan_c ()
