(* Per-deployment circuit breaker (DESIGN.md §9).

   Each rung of the degradation ladder owns one of these. The service records
   a *failure* when a request exhausts its retries on (or hard-fails out of)
   that rung, and a *success* when the rung answers. After [threshold]
   consecutive failures the breaker trips [Open]: the rung is skipped
   entirely — no point burning a worker's time (and the request's deadline)
   on a deployment that has exhausted its modulus chain or whose checked
   backend keeps tripping. After [cooldown] seconds the breaker half-opens
   and admits a bounded number of probe requests; one probe success closes it
   again, a probe failure re-opens it for another cooldown.

   The clock is injected so tests can drive the state machine without
   sleeping. Thread-safe: the service consults breakers from many domains. *)

type state = Closed | Open | Half_open

let state_name = function Closed -> "closed" | Open -> "open" | Half_open -> "half-open"

type t = {
  mutex : Mutex.t;
  threshold : int;  (** consecutive failures that trip the breaker *)
  cooldown : float;  (** seconds [Open] before probing again *)
  probes : int;  (** concurrent probe budget while [Half_open] *)
  now : unit -> float;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable opened_at : float;
  mutable probes_in_flight : int;
  mutable trips : int;  (** lifetime Closed/Half_open -> Open transitions *)
}

(* Default clock is monotonic (Chet_obs.Clock): a wall-clock step (NTP slew,
   manual adjustment) must not spuriously hold a breaker open or snap it
   half-open early. Tests still inject their own [now]. *)
let create ?(threshold = 3) ?(cooldown = 30.0) ?(probes = 1) ?(now = Chet_obs.Clock.now_s) () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold must be >= 1";
  {
    mutex = Mutex.create ();
    threshold;
    cooldown;
    probes;
    now;
    st = Closed;
    consecutive_failures = 0;
    opened_at = neg_infinity;
    probes_in_flight = 0;
    trips = 0;
  }

let with_lock b f =
  Mutex.lock b.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock b.mutex) f

let state b = with_lock b (fun () -> b.st)
let trip_count b = with_lock b (fun () -> b.trips)

let trip b =
  b.st <- Open;
  b.opened_at <- b.now ();
  b.probes_in_flight <- 0;
  b.trips <- b.trips + 1

(* May this request use the guarded deployment? Also the place where an
   [Open] breaker past its cooldown transitions to [Half_open]: admission is
   the only event that needs to observe the timeout.

   Exactly-one-probe invariant: while [Half_open], at most [probes]
   (default 1) admissions may be outstanding at any instant — the
   Open->Half_open transition *is* the first admission, and every further
   [allow] is refused until that probe resolves ([record_success],
   [record_failure]) or hands its slot back ([release]). Concurrent callers
   race on the mutex, never on the state: whichever domain takes the
   transition gets the probe, the loser observes [Half_open] with the
   budget spent. test/test_serve.ml hammers this from 2 domains. *)
let allow b =
  with_lock b (fun () ->
      match b.st with
      | Closed -> true
      | Open when b.now () -. b.opened_at >= b.cooldown ->
          b.st <- Half_open;
          b.probes_in_flight <- 1;
          true
      | Open -> false
      | Half_open when b.probes_in_flight < b.probes ->
          b.probes_in_flight <- b.probes_in_flight + 1;
          true
      | Half_open -> false)

(* An admitted probe that reaches no verdict — its request's deadline fired
   (or the caller abandoned it) before any attempt produced a success or
   failure — must return its slot, or the breaker would sit [Half_open] with
   a phantom probe forever and the rung could never be probed again. *)
let release b =
  with_lock b (fun () ->
      match b.st with
      | Half_open -> b.probes_in_flight <- Stdlib.max 0 (b.probes_in_flight - 1)
      | Open | Closed -> ())

let record_success b =
  with_lock b (fun () ->
      b.consecutive_failures <- 0;
      match b.st with
      | Half_open | Open ->
          (* a probe (or straggler from before the trip) came back healthy *)
          b.st <- Closed;
          b.probes_in_flight <- 0
      | Closed -> ())

(* --- persistence (DESIGN.md §11) ---

   A breaker's memory should survive a clean restart: a rung that had
   exhausted its modulus chain before the restart is still broken after it,
   and re-learning that costs [threshold] real requests. The snapshot is
   clock-free — [Open] carries its *remaining* cooldown, not an absolute
   timestamp, because the monotonic clock restarts with the process. *)

type snapshot = {
  sn_state : state;
  sn_consecutive_failures : int;
  sn_trips : int;
  sn_cooldown_remaining : float;  (** seconds left before probing; 0 unless [Open] *)
}

let snapshot b =
  with_lock b (fun () ->
      {
        sn_state = b.st;
        sn_consecutive_failures = b.consecutive_failures;
        sn_trips = b.trips;
        sn_cooldown_remaining =
          (match b.st with
          | Open -> Float.max 0.0 (b.cooldown -. (b.now () -. b.opened_at))
          | Closed | Half_open -> 0.0);
      })

let restore b sn =
  with_lock b (fun () ->
      b.consecutive_failures <- Stdlib.max 0 sn.sn_consecutive_failures;
      b.trips <- Stdlib.max 0 sn.sn_trips;
      b.probes_in_flight <- 0;
      match sn.sn_state with
      | Closed -> b.st <- Closed
      | Half_open ->
          (* in-flight probes died with the old process: re-open with the
             cooldown already elapsed, so the next admission probes at once *)
          b.st <- Open;
          b.opened_at <- b.now () -. b.cooldown
      | Open ->
          b.st <- Open;
          b.opened_at <-
            b.now () -. (b.cooldown -. Float.min b.cooldown (Float.max 0.0 sn.sn_cooldown_remaining)))

let record_failure b =
  with_lock b (fun () ->
      match b.st with
      | Half_open -> trip b (* failed probe: back to cooldown *)
      | Open -> () (* straggler failure while already open *)
      | Closed ->
          b.consecutive_failures <- b.consecutive_failures + 1;
          if b.consecutive_failures >= b.threshold then trip b)
