(** Per-deployment circuit breaker (DESIGN.md §9).

    Each rung of the degradation ladder owns one. [threshold] consecutive
    failures trip it [Open]; after [cooldown] seconds it half-opens and
    admits up to [probes] concurrent probe requests — one probe success
    closes it, a probe failure re-opens it. Thread-safe; the clock is
    injected so tests can drive the state machine without sleeping. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type t

val create : ?threshold:int -> ?cooldown:float -> ?probes:int -> ?now:(unit -> float) -> unit -> t
(** Defaults: [threshold = 3], [cooldown = 30.0], [probes = 1], monotonic
    clock. @raise Invalid_argument if [threshold < 1]. *)

val state : t -> state
val trip_count : t -> int
(** Lifetime count of Closed/Half_open → Open transitions. *)

val allow : t -> bool
(** May this request use the guarded deployment? Also performs the
    Open → Half_open transition once the cooldown has elapsed; that
    admission {e is} the probe, and further [allow] calls are refused until
    it resolves or releases its slot. *)

val release : t -> unit
(** Return an admitted probe's slot without a verdict (deadline fired or
    caller abandoned the request before any attempt concluded). *)

val record_success : t -> unit
val record_failure : t -> unit

(** {1 Persistence (DESIGN.md §11)}

    Clock-free snapshot: [Open] carries its {e remaining} cooldown, not an
    absolute timestamp, because the monotonic clock restarts with the
    process. A [Half_open] snapshot restores as [Open] with the cooldown
    already elapsed (its in-flight probes died with the old process). *)

type snapshot = {
  sn_state : state;
  sn_consecutive_failures : int;
  sn_trips : int;
  sn_cooldown_remaining : float;  (** seconds left before probing; 0 unless [Open] *)
}

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
