(* Bounded multi-producer / multi-consumer job queue — the admission-control
   half of the serving layer (DESIGN.md §9).

   Producers never block: a push against a queue at or past its high-water
   mark is *shed* immediately (the caller turns that into a typed
   [Herr.Overloaded] rejection), because in an FHE serving system queueing an
   inference the pool cannot reach before its deadline only converts an
   honest fast rejection into a slow one. Consumers block on a condition
   variable until work or shutdown.

   All counters are folded under the one mutex; this queue moves whole
   encrypted-inference jobs (tens of milliseconds to minutes each), so lock
   traffic is noise. *)

type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  items : 'a Stdlib.Queue.t;
  high_water : int;  (** shed pushes once [length >= high_water] *)
  mutable closed : bool;
  (* statistics, all under [mutex] *)
  mutable pushed : int;
  mutable shed : int;
  mutable popped : int;
  mutable max_depth : int;
}

type stats = { q_pushed : int; q_shed : int; q_popped : int; q_max_depth : int }

let create ~high_water () =
  if high_water < 1 then invalid_arg "Queue.create: high_water must be >= 1";
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    items = Stdlib.Queue.create ();
    high_water;
    closed = false;
    pushed = 0;
    shed = 0;
    popped = 0;
    max_depth = 0;
  }

let with_lock q f =
  Mutex.lock q.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock q.mutex) f

let high_water q = q.high_water

let length q = with_lock q (fun () -> Stdlib.Queue.length q.items)

(* [push q x] admits [x] unless the queue is closed or at its high-water
   mark. Returns [Error depth] (the depth observed at rejection time) when
   shedding so the caller can report a structured [Overloaded]. *)
let push q x =
  with_lock q (fun () ->
      if q.closed then begin
        (* a push against a closed queue is a rejection like any other shed *)
        q.shed <- q.shed + 1;
        Error (Stdlib.Queue.length q.items)
      end
      else begin
        let depth = Stdlib.Queue.length q.items in
        if depth >= q.high_water then begin
          q.shed <- q.shed + 1;
          Error depth
        end
        else begin
          Stdlib.Queue.push x q.items;
          q.pushed <- q.pushed + 1;
          q.max_depth <- Stdlib.max q.max_depth (depth + 1);
          Condition.signal q.not_empty;
          Ok ()
        end
      end)

(* Blocking pop; [None] once the queue is closed *and* drained, which is the
   worker-shutdown signal. *)
let pop q =
  with_lock q (fun () ->
      let rec wait () =
        if not (Stdlib.Queue.is_empty q.items) then begin
          q.popped <- q.popped + 1;
          Some (Stdlib.Queue.pop q.items)
        end
        else if q.closed then None
        else begin
          Condition.wait q.not_empty q.mutex;
          wait ()
        end
      in
      wait ())

(* Close the queue: pending items still drain, new pushes are rejected, and
   every blocked consumer wakes up (to observe [None] once drained). *)
let close q =
  with_lock q (fun () ->
      q.closed <- true;
      Condition.broadcast q.not_empty)

let stats q =
  with_lock q (fun () ->
      { q_pushed = q.pushed; q_shed = q.shed; q_popped = q.popped; q_max_depth = q.max_depth })
