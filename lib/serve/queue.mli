(** Bounded multi-producer / multi-consumer job queue — the
    admission-control half of the serving layer (DESIGN.md §9).

    Producers never block: a push at or past the high-water mark is shed
    immediately with the observed depth, which the caller turns into a
    typed [Herr.Overloaded] rejection. Consumers block until work or
    shutdown. *)

type 'a t

type stats = { q_pushed : int; q_shed : int; q_popped : int; q_max_depth : int }

val create : high_water:int -> unit -> 'a t
(** @raise Invalid_argument if [high_water < 1]. *)

val high_water : 'a t -> int
val length : 'a t -> int

val push : 'a t -> 'a -> (unit, int) result
(** [Error depth] when shed (queue closed or at high water). *)

val pop : 'a t -> 'a option
(** Blocking; [None] once the queue is closed {e and} drained — the
    worker-shutdown signal. *)

val close : 'a t -> unit
(** Pending items still drain; new pushes are rejected; every blocked
    consumer wakes. *)

val stats : 'a t -> stats
