(* The supervised encrypted-inference service: bounded queue -> domain pool
   -> degradation ladder, with deadlines, retries and circuit breakers.
   Interface documentation in service.mli; architecture in DESIGN.md §9. *)

module Herr = Chet_hisa.Herr
module Hisa = Chet_hisa.Hisa
module Cancel = Chet_hisa.Cancel
module Clear = Chet_hisa.Clear_backend
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Compiler = Chet.Compiler
module Integrity = Chet.Integrity
module Metrics = Chet_obs.Metrics

(* ------------------------------------------------------------------ *)
(* Deployments                                                          *)
(* ------------------------------------------------------------------ *)

type deployment = {
  dep_label : string;
  dep_degraded : bool;
  dep_scales : Kernels.scales;
  dep_policy : Executor.layout_policy;
  dep_cost_ms : float option;
      (* calibrated cost-model prediction of one inference on this rung;
         None = unknown, the rung is always admitted *)
  dep_backend : req_seed:int -> attempt:int -> Hisa.t;
  dep_plan :
    (cancel:Cancel.t -> worker:int -> req_seed:int -> attempt:int -> Tensor.t -> Tensor.t) option;
      (* when present, workers execute this rung through a prepared plan
         (DESIGN.md §14) instead of the interpretive executor — same
         request/attempt seed derivation, bit-identical answers, but no
         per-request layout or plaintext re-derivation *)
  dep_sentinel : Integrity.spec option;
      (* verify every answer against the sentinel lane (DESIGN.md §16);
         forces the interpretive executor *)
  dep_twin : bool;
      (* run on twin layouts even without verification — required of every
         FHE rung of a sentinel-compiled deployment, whose rotation keys
         cover only the doubled (twin) rotation amounts *)
}

(* Shrink the scale exponents the way Scale_select's fallback ladder does:
   rung k costs the image scale 2k bits and each weight/mask scale k bits,
   preserving the kernels' pw*pm = pu*pm = pc rescale invariant. *)
let reduced_scales (s : Kernels.scales) k =
  let e v = Stdlib.max 1 (int_of_float (Float.round (log (float_of_int v) /. log 2.0))) in
  {
    Kernels.pc = 1 lsl Stdlib.max 8 (e s.Kernels.pc - (2 * k));
    pw = 1 lsl Stdlib.max 6 (e s.Kernels.pw - k);
    pu = 1 lsl Stdlib.max 6 (e s.Kernels.pu - k);
    pm = 1 lsl Stdlib.max 6 (e s.Kernels.pm - k);
  }

let ladder_of_factory compiled ~(factory : Compiler.backend_factory) ?(reduced_rungs = 1)
    ?(clear_fallback = true) ?(predict_cost = false) ?plan ?sentinel () =
  let scales = compiled.Compiler.opts.Compiler.scales in
  let policy = compiled.Compiler.policy in
  (* the admission-control prediction comes for free: [compile] already
     ranked every layout policy under the calibrated cost model, and the
     chosen policy's report is the per-inference latency of the FHE rungs.
     Reduced-scale rungs run the same op sequence at the same parameters, so
     they share the estimate; the cleartext rung is orders of magnitude
     cheaper than any FHE rung and is treated as always fitting. *)
  let scheme_cost_ms =
    if not predict_cost then None
    else
      List.find_map
        (fun r ->
          if r.Compiler.pr_policy = policy then Some (r.Compiler.pr_cost *. 1000.0) else None)
        compiled.Compiler.reports
  in
  (* different attempts of one request must not replay the identical
     encryption randomness (a deterministic corruption would simply recur),
     so the attempt index perturbs the per-request seed *)
  let backend ~req_seed ~attempt = factory ~req_seed:(req_seed + (attempt * 7919)) in
  (* the plan rung perturbs the attempt seed by the same formula, so a plan
     answer for (req_seed, attempt) is bit-identical to the interpretive one *)
  let dep_plan =
    Option.map
      (fun (runner : Compiler.plan_runner) ->
        fun ~cancel ~worker ~req_seed ~attempt image ->
         runner ~cancel ~worker ~req_seed:(req_seed + (attempt * 7919)) image)
      plan
  in
  (* sentinel verification forces the interpretive executor: a plan is
     prepared on twin-less layouts and cannot carry the probe lane *)
  let dep_plan = if sentinel = None then dep_plan else None in
  let twin = sentinel <> None in
  let primary =
    { dep_label = "primary"; dep_degraded = false; dep_scales = scales; dep_policy = policy;
      dep_cost_ms = scheme_cost_ms; dep_backend = backend; dep_plan; dep_sentinel = sentinel;
      dep_twin = twin }
  in
  let reduced =
    List.init reduced_rungs (fun i ->
        let k = i + 1 in
        {
          dep_label = Printf.sprintf "reduced-scale-%d" k;
          dep_degraded = true;
          dep_scales = reduced_scales scales k;
          dep_policy = policy;
          dep_cost_ms = scheme_cost_ms;
          dep_backend = backend;
          (* the plan's staged plaintexts are encoded at the primary scales;
             reduced rungs change scales, so they stay interpretive *)
          dep_plan = None;
          (* a reduced rung trades precision for headroom by design, so the
             full-precision sentinel tolerance would reject honest degraded
             answers — it runs twin (the deployment's rotation keys cover
             only doubled amounts) but unverified *)
          dep_sentinel = None;
          dep_twin = twin;
        })
  in
  let clear =
    if not clear_fallback then []
    else begin
      let n = Compiler.params_n compiled.Compiler.params in
      let scheme = Compiler.scheme_of_params compiled.Compiler.opts compiled.Compiler.params in
      [
        {
          dep_label = "clear-sim";
          dep_degraded = true;
          dep_scales = scales;
          dep_policy = policy;
          dep_cost_ms = (if predict_cost then Some 0.0 else None);
          dep_backend =
            (fun ~req_seed:_ ~attempt:_ ->
              Clear.make
                { Clear.slots = n / 2; scheme; strict_modulus = false; encode_noise = false });
          dep_plan = None;
          (* the cleartext rung is exact, so sentinel verification is free
             and keeps the end-to-end integrity contract on the last rung *)
          dep_sentinel = sentinel;
          dep_twin = twin;
        };
      ]
    end
  in
  (primary :: reduced) @ clear

let ladder_of_compiled compiled ~seed ?rotation_keys ?reduced_rungs ?clear_fallback ?predict_cost
    ?plan ?sentinel ~with_secret () =
  let factory, _scheme =
    Compiler.instantiate_factory compiled ~seed ?rotation_keys ~with_secret ()
  in
  let plan_runner =
    Option.map
      (fun p ->
        fst (Compiler.instantiate_plan_runner compiled ~plan:p ~seed ?rotation_keys ~with_secret ()))
      plan
  in
  ladder_of_factory compiled ~factory ?reduced_rungs ?clear_fallback ?predict_cost ?plan:plan_runner
    ?sentinel ()

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

type config = {
  domains : int;
  high_water : int;
  max_retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  backoff_jitter : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
  default_deadline_ms : float;
  now : unit -> float;
  sleep_ms : float -> unit;
}

let default_config ?domains () =
  let domains =
    match domains with
    | Some d -> d
    | None -> Stdlib.max 1 (Stdlib.min 4 (Domain.recommended_domain_count () - 1))
  in
  {
    domains;
    high_water = 64;
    max_retries = 2;
    backoff_base_ms = 5.0;
    backoff_cap_ms = 100.0;
    backoff_jitter = 0.2;
    breaker_threshold = 3;
    breaker_cooldown_ms = 1000.0;
    default_deadline_ms = 300_000.0;
    (* monotonic by default — deadlines and breaker cooldowns must not move
       with wall-clock adjustments; tests inject a manual clock instead *)
    now = Chet_obs.Clock.now_s;
    sleep_ms = (fun ms -> if ms > 0.0 then Unix.sleepf (ms /. 1000.0));
  }

(* ------------------------------------------------------------------ *)
(* Requests and outcomes                                                *)
(* ------------------------------------------------------------------ *)

type outcome = {
  out_id : int;
  out_result : (Tensor.t, Herr.error * Herr.context) result;
  out_served_by : string;
  out_degraded : bool;
  out_attempts : int;
  out_queue_ms : float;
  out_total_ms : float;
  out_margin_bits : float;
      (* measured sentinel margin of the winning attempt; nan when the
         serving rung ran without a sentinel lane (DESIGN.md §16) *)
  out_sentinel : float array;
      (* decrypted sentinel twin lane, [||] when unverified — carried to the
         wire so clients can re-verify independently of the shard *)
}

(* The rendezvous between the submitting caller and the worker. No timed
   condition-variable wait exists in the stdlib, so [await] polls the cell
   under its mutex on the injected clock — a few microseconds of lock
   traffic per poll against inferences measured in milliseconds. *)
type cell = { cm : Mutex.t; mutable result : outcome option; mutable abandoned : bool }

type ticket = {
  req_id : int;
  req_image : Tensor.t;
  req_seed : int;
  req_budget_ms : float;
  req_deadline : float;  (* absolute, on the service clock *)
  req_submitted : float;
  req_cancel : Cancel.t;
      (* one token per request, armed with the deadline on the service
         clock; threaded through the pool into the executor's per-node
         poll (DESIGN.md §13) *)
  cell : cell;
}

type mutable_stats = {
  sm : Mutex.t;
  mutable submitted : int;
  mutable succeeded : int;
  mutable failed : int;
  mutable shed : int;
  mutable deadline : int;
  mutable degraded : int;
  mutable retries : int;
  mutable worker_crashes : int;
  mutable late_results : int;
  mutable cancelled : int;
  mutable admission_rejects : int;
  mutable integrity_failures : int;
  mutable latencies : float list;
}

(* Prometheus-facing mirror of [mutable_stats]: a per-service registry (so
   concurrent services — and tests — never share state) updated on the same
   code paths, plus an end-to-end latency histogram. [metrics_snapshot]
   renders it as text exposition. *)
type metric_handles = {
  registry : Metrics.t;
  mx_submitted : Metrics.counter;
  mx_succeeded : Metrics.counter;
  mx_failed : Metrics.counter;
  mx_shed : Metrics.counter;
  mx_deadline : Metrics.counter;
  mx_degraded : Metrics.counter;
  mx_retries : Metrics.counter;
  mx_worker_crashes : Metrics.counter;
  mx_late : Metrics.counter;
  mx_cancelled : Metrics.counter;
  mx_admission : Metrics.counter;
  mx_cancel_saved_ms : Metrics.counter;
  mx_integrity : Metrics.counter;
  mx_margin : Metrics.gauge;
  mx_latency : Metrics.histogram;
}

let make_metrics () =
  let registry = Metrics.create () in
  let c name help = Metrics.counter registry ~help name in
  {
    registry;
    mx_submitted = c "chet_serve_requests_submitted_total" "requests admitted or shed at submit";
    mx_succeeded = c "chet_serve_requests_succeeded_total" "requests answered with a tensor";
    mx_failed = c "chet_serve_requests_failed_total" "typed failures other than shed/deadline";
    mx_shed = c "chet_serve_requests_shed_total" "requests rejected at the high-water mark";
    mx_deadline = c "chet_serve_requests_deadline_total" "requests that exceeded their deadline";
    mx_degraded = c "chet_serve_requests_degraded_total" "successes served by a degraded rung";
    mx_retries = c "chet_serve_retries_total" "inference attempts beyond the first";
    mx_worker_crashes = c "chet_serve_worker_crashes_total" "non-FHE exceptions in workers";
    mx_late = c "chet_serve_late_results_total" "results finished after the caller gave up";
    mx_cancelled = c "chet_serve_requests_cancelled_total" "outcomes delivered as typed Cancelled";
    mx_admission =
      c "chet_serve_admission_rejects_total"
        "requests rejected because no rung's predicted cost fit the budget";
    mx_cancel_saved_ms =
      c "chet_serve_cancel_saved_ms_total"
        "predicted milliseconds of wasted work avoided by mid-circuit cancellation";
    mx_integrity =
      c "chet_integrity_failures_total" "attempts whose sentinel lane failed verification";
    mx_margin =
      Metrics.gauge registry
        ~help:"measured precision headroom of the last verified answer, log2(tolerance/deviation)"
        "chet_serve_sentinel_margin_bits";
    mx_latency =
      Metrics.histogram registry ~help:"end-to-end request latency" ~lo:1e-4 ~growth:2.0
        ~buckets:28 "chet_serve_latency_seconds";
  }

type stats = {
  s_submitted : int;
  s_succeeded : int;
  s_failed : int;
  s_shed : int;
  s_deadline : int;
  s_degraded : int;
  s_retries : int;
  s_breaker_trips : int;
  s_worker_crashes : int;
  s_late_results : int;
  s_cancelled : int;
  s_admission_rejects : int;
  s_integrity_failures : int;
  s_queue : Queue.stats;
  s_latencies_ms : float array;
}

type t = {
  cfg : config;
  circuit : Circuit.t;
  ladder : (deployment * Breaker.t) array;
  queue : Pool.job Queue.t;
  pool : Pool.t;
  next_id : int Atomic.t;
  ms : mutable_stats;
  mx : metric_handles;
  (* graceful drain (DESIGN.md §12): once [draining], new admissions are
     refused with a typed [Overloaded] while everything already admitted
     runs to its outcome; [inflight_count] tracks admitted-but-undelivered
     requests so [drain] knows when the pipe is empty. *)
  draining : bool Atomic.t;
  inflight_count : int Atomic.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let transient_error = function
  | Herr.Scale_mismatch _ | Herr.Level_mismatch _ | Herr.Illegal_rescale _
  | Herr.Numeric_blowup _ | Herr.Corrupt_ciphertext _
  (* a torn/bit-flipped wire frame is the network twin of a corrupt
     ciphertext: a fresh attempt over a fresh connection can clear it *)
  | Herr.Corrupt_frame _
  (* a sentinel mismatch means *this attempt's* ciphertexts went bad; a
     fresh attempt (different derived randomness, and — over the network —
     a different shard) can produce a clean answer *)
  | Herr.Integrity_violation _ ->
      true
  | Herr.Modulus_exhausted _ | Herr.Slot_overflow _ | Herr.Shape_mismatch _ | Herr.Missing_node _
  | Herr.Missing_rotation_key _ | Herr.Invalid_op _ | Herr.Overloaded _
  | Herr.Deadline_exceeded _ | Herr.Worker_crashed _ | Herr.Corrupt_bundle _
  (* the deployment's modulus budget cannot produce a precise answer for
     this circuit — deterministic, so retrying reproduces it; only the
     degradation ladder (a differently-compiled rung) can help *)
  | Herr.Precision_exhausted _
  (* the requester no longer wants the answer; retrying would be the exact
     wasted work cancellation exists to avoid *)
  | Herr.Cancelled _ ->
      false

(* ------------------------------------------------------------------ *)
(* Worker side                                                          *)
(* ------------------------------------------------------------------ *)

let run_attempt t dep req ~attempt ~worker =
  try
    match dep.dep_plan with
    | Some plan_run ->
        Ok
          ( plan_run ~cancel:req.req_cancel ~worker ~req_seed:req.req_seed ~attempt req.req_image,
            Float.nan,
            [||] )
    | None ->
        let backend = dep.dep_backend ~req_seed:req.req_seed ~attempt in
        let module H = (val backend : Hisa.S) in
        let module E = Executor.Make (H) in
        let margin = ref Float.nan in
        let lane = ref [||] in
        let sentinel =
          Option.map
            (fun spec ->
              Integrity.sentinel
                ~observe:(fun twin ->
                  (* the *measured* precision headroom of this answer — the
                     noise model's predicted margin is its forecast *)
                  let m = Integrity.margin_bits spec twin in
                  margin := m;
                  lane := Array.copy twin.Tensor.data;
                  Metrics.set_gauge t.mx.mx_margin m)
                spec)
            dep.dep_sentinel
        in
        let tensor =
          E.run ~cancel:req.req_cancel ?sentinel ~twin:dep.dep_twin dep.dep_scales t.circuit
            ~policy:dep.dep_policy req.req_image
        in
        Ok (tensor, !margin, !lane)
  with
  | Herr.Fhe_error ((Herr.Integrity_violation _ as e), c) ->
      with_lock t.ms.sm (fun () -> t.ms.integrity_failures <- t.ms.integrity_failures + 1);
      Metrics.incr t.mx.mx_integrity;
      Error (e, c)
  | Herr.Fhe_error (e, c) -> Error (e, c)
  | exn ->
      (* a non-FHE exception is a backend bug: convert it to the typed
         taxonomy so it flows through retry/breaker/outcome like any other
         failure — and never takes the worker domain down *)
      with_lock t.ms.sm (fun () -> t.ms.worker_crashes <- t.ms.worker_crashes + 1);
      Metrics.incr t.mx.mx_worker_crashes;
      Error
        ( Herr.Worker_crashed { worker; reason = Printexc.to_string exn },
          Herr.context ~backend:dep.dep_label "infer" )

(* Sleep before the next retry — clamped to the request's remaining budget,
   and honest about exhaustion: [`Exhausted] means the budget ran out before
   or during the sleep, and the caller must fail fast with the typed
   [Deadline_exceeded] instead of burning another attempt it cannot finish. *)
let backoff t req ~attempt =
  let base = t.cfg.backoff_base_ms *. (2.0 ** float_of_int attempt) in
  let d = Float.min t.cfg.backoff_cap_ms base in
  let jit =
    (* jitter is seeded from (req_seed, attempt) alone — not a shared RNG
       behind a mutex — so a request's backoff schedule is a pure function
       of the request, independent of scheduling order, like its answer *)
    let rng = Random.State.make [| 0x5e12e; req.req_seed; attempt |] in
    d *. t.cfg.backoff_jitter *. (Random.State.float rng 2.0 -. 1.0)
  in
  let remaining_ms = (req.req_deadline -. t.cfg.now ()) *. 1000.0 in
  if remaining_ms <= 0.0 then `Exhausted
  else begin
    let d = Float.min (Float.max 0.0 (d +. jit)) remaining_ms in
    if d > 0.0 then t.cfg.sleep_ms d;
    if t.cfg.now () >= req.req_deadline then `Exhausted else `Slept
  end

let deadline_error req ~elapsed_ms ~op =
  ( Herr.Deadline_exceeded { budget_ms = req.req_budget_ms; elapsed_ms },
    Herr.context ~backend:"serve" op )

(* Hand the outcome to the caller — unless the caller already gave up, in
   which case the computed result is discarded (and counted: a late result
   is wasted work the deadline was supposed to prevent). *)
let deliver t req out =
  Atomic.decr t.inflight_count;
  let late = with_lock req.cell.cm (fun () ->
      if req.cell.abandoned then true
      else begin
        (if req.cell.result = None then req.cell.result <- Some out);
        false
      end)
  in
  with_lock t.ms.sm (fun () ->
      if late then t.ms.late_results <- t.ms.late_results + 1
      else begin
        t.ms.retries <- t.ms.retries + Stdlib.max 0 (out.out_attempts - 1);
        t.ms.latencies <- out.out_total_ms :: t.ms.latencies;
        match out.out_result with
        | Ok _ ->
            t.ms.succeeded <- t.ms.succeeded + 1;
            if out.out_degraded then t.ms.degraded <- t.ms.degraded + 1
        | Error (Herr.Deadline_exceeded _, _) -> t.ms.deadline <- t.ms.deadline + 1
        | Error (Herr.Cancelled _, _) -> t.ms.cancelled <- t.ms.cancelled + 1
        | Error _ -> t.ms.failed <- t.ms.failed + 1
      end);
  if late then Metrics.incr t.mx.mx_late
  else begin
    Metrics.incr ~by:(Stdlib.max 0 (out.out_attempts - 1)) t.mx.mx_retries;
    Metrics.observe t.mx.mx_latency (out.out_total_ms /. 1000.0);
    match out.out_result with
    | Ok _ ->
        Metrics.incr t.mx.mx_succeeded;
        if out.out_degraded then Metrics.incr t.mx.mx_degraded
    | Error (Herr.Deadline_exceeded _, _) -> Metrics.incr t.mx.mx_deadline
    | Error (Herr.Cancelled _, _) -> Metrics.incr t.mx.mx_cancelled
    | Error _ -> Metrics.incr t.mx.mx_failed
  end

let abandoned req = with_lock req.cell.cm (fun () -> req.cell.abandoned)

let process t req ~worker =
  let pickup = t.cfg.now () in
  let queue_ms = (pickup -. req.req_submitted) *. 1000.0 in
  let mk ?(served_by = "") ?(degraded = false) ?(margin_bits = Float.nan) ?(sentinel = [||])
      ~attempts result =
    {
      out_id = req.req_id;
      out_result = result;
      out_served_by = served_by;
      out_degraded = degraded;
      out_attempts = attempts;
      out_queue_ms = queue_ms;
      out_total_ms = (t.cfg.now () -. req.req_submitted) *. 1000.0;
      out_margin_bits = margin_bits;
      out_sentinel = sentinel;
    }
  in
  (* expired or cancelled while queued: never start work (not even backend
     construction — key generation is the expensive part) the caller no
     longer wants *)
  let dead_at_dequeue =
    match Cancel.status req.req_cancel with
    | Some Cancel.Deadline -> Some (deadline_error req ~elapsed_ms:queue_ms ~op:"dequeue")
    | Some r ->
        Some
          ( Herr.Cancelled { node_id = None; reason = Cancel.reason_label r },
            Herr.context ~backend:"serve" "dequeue" )
    | None ->
        if pickup >= req.req_deadline || abandoned req then
          Some (deadline_error req ~elapsed_ms:queue_ms ~op:"dequeue")
        else None
  in
  match dead_at_dequeue with
  | Some err -> deliver t req (mk ~attempts:0 (Error err))
  | None -> begin
    let attempts = ref 0 in
    let last_err = ref None in
    let served = ref None in
    let rungs = t.ladder in
    let stop = ref false in
    let skipped_unfit = ref 0 in
    let i = ref 0 in
    while (not !stop) && !served = None && !i < Array.length rungs do
      let dep, brk = rungs.(!i) in
      (* deadline-aware rung selection (DESIGN.md §13): the ladder is ordered
         highest-fidelity first, so the first rung whose predicted cost fits
         the remaining budget is the best answer we can still deliver in
         time. The fit check runs *before* [Breaker.allow] so an unfit rung
         never consumes a half-open probe slot. *)
      let fits =
        match dep.dep_cost_ms with
        | None -> true
        | Some c -> c <= (req.req_deadline -. t.cfg.now ()) *. 1000.0
      in
      if not fits then incr skipped_unfit
      else if Breaker.allow brk then begin
        (* retry loop on this rung. [verdict] tracks whether the admission
           (possibly a half-open probe) was resolved against the breaker;
           an exit with no verdict — deadline fired, caller abandoned —
           must hand the probe slot back or the breaker wedges Half_open. *)
        let verdict = ref false in
        let rung_done = ref false in
        let attempt = ref 0 in
        while not !rung_done do
          if t.cfg.now () >= req.req_deadline || abandoned req then begin
            let elapsed_ms = (t.cfg.now () -. req.req_submitted) *. 1000.0 in
            last_err := Some (deadline_error req ~elapsed_ms ~op:"infer");
            rung_done := true;
            stop := true
          end
          else begin
            incr attempts;
            let attempt_start = t.cfg.now () in
            match run_attempt t dep req ~attempt:!attempt ~worker with
            | Ok (tensor, margin_bits, lane) ->
                Breaker.record_success brk;
                verdict := true;
                served := Some (dep, tensor, margin_bits, lane);
                rung_done := true
            | Error ((Herr.Cancelled _, _) as cancelled) ->
                (* the token tripped mid-circuit. No breaker verdict: a
                   cancellation says nothing about this rung's health, so the
                   probe slot is handed back via [release] below. Credit the
                   wasted-work metric with the predicted remainder of the
                   inference the worker did *not* have to run. *)
                (match dep.dep_cost_ms with
                | Some c ->
                    let done_ms = (t.cfg.now () -. attempt_start) *. 1000.0 in
                    let saved = int_of_float (Float.max 0.0 (c -. done_ms)) in
                    if saved > 0 then Metrics.incr ~by:saved t.mx.mx_cancel_saved_ms
                | None -> ());
                let elapsed_ms = (t.cfg.now () -. req.req_submitted) *. 1000.0 in
                (* a deadline-reason trip keeps the deadline's established
                   observable surface: callers see the same typed
                   [Deadline_exceeded] whether the budget expired in the
                   queue, between nodes, or mid-node *)
                (match Cancel.status req.req_cancel with
                | Some Cancel.Deadline ->
                    last_err := Some (deadline_error req ~elapsed_ms ~op:"infer")
                | _ -> last_err := Some cancelled);
                rung_done := true;
                stop := true
            | Error (e, c) ->
                last_err := Some (e, c);
                if transient_error e && !attempt < t.cfg.max_retries then begin
                  match backoff t req ~attempt:!attempt with
                  | `Slept -> incr attempt
                  | `Exhausted ->
                      (* the budget died during (or before) the backoff
                         sleep: fail fast with the typed deadline instead of
                         starting an attempt that cannot finish *)
                      let elapsed_ms = (t.cfg.now () -. req.req_submitted) *. 1000.0 in
                      last_err := Some (deadline_error req ~elapsed_ms ~op:"backoff");
                      rung_done := true;
                      stop := true
                end
                else begin
                  (* retries exhausted, or a hard failure: this rung failed
                     the request — feed its breaker and degrade *)
                  Breaker.record_failure brk;
                  verdict := true;
                  rung_done := true
                end
          end
        done;
        if not !verdict then Breaker.release brk
      end;
      incr i
    done;
    let out =
      match !served with
      | Some (dep, tensor, margin_bits, lane) ->
          mk ~served_by:dep.dep_label ~degraded:dep.dep_degraded ~margin_bits ~sentinel:lane
            ~attempts:!attempts (Ok tensor)
      | None ->
          let e, c =
            match !last_err with
            | Some ec -> ec
            | None when !skipped_unfit > 0 ->
                (* admission control at dequeue: every reachable rung's
                   predicted cost exceeded the remaining budget, so no work
                   was started at all — the honest answer is the typed
                   deadline, issued in O(ladder) time *)
                with_lock t.ms.sm (fun () ->
                    t.ms.admission_rejects <- t.ms.admission_rejects + 1);
                Metrics.incr t.mx.mx_admission;
                let elapsed_ms = (t.cfg.now () -. req.req_submitted) *. 1000.0 in
                deadline_error req ~elapsed_ms ~op:"admission"
            | None ->
                ( Herr.Invalid_op { reason = "no deployment available (all circuit breakers open)" },
                  Herr.context ~backend:"serve" "infer" )
          in
          mk ~attempts:!attempts (Error (e, c))
    in
    deliver t req out
  end

(* ------------------------------------------------------------------ *)
(* Client side                                                          *)
(* ------------------------------------------------------------------ *)

let create cfg ~circuit ~ladder =
  if ladder = [] then invalid_arg "Service.create: empty deployment ladder";
  let queue = Queue.create ~high_water:cfg.high_water () in
  let ms =
    {
      sm = Mutex.create ();
      submitted = 0;
      succeeded = 0;
      failed = 0;
      shed = 0;
      deadline = 0;
      degraded = 0;
      retries = 0;
      worker_crashes = 0;
      late_results = 0;
      cancelled = 0;
      admission_rejects = 0;
      integrity_failures = 0;
      latencies = [];
    }
  in
  let mx = make_metrics () in
  let pool =
    Pool.create ~domains:cfg.domains queue
      ~on_crash:(fun ~worker:_ _exn ->
        (* [process] converts everything to typed outcomes; anything landing
           here is a harness bug — count it, keep serving *)
        with_lock ms.sm (fun () -> ms.worker_crashes <- ms.worker_crashes + 1);
        Metrics.incr mx.mx_worker_crashes)
  in
  let breakers =
    List.map
      (fun dep ->
        ( dep,
          Breaker.create ~threshold:cfg.breaker_threshold
            ~cooldown:(cfg.breaker_cooldown_ms /. 1000.0) ~now:cfg.now () ))
      ladder
  in
  {
    cfg;
    circuit;
    ladder = Array.of_list breakers;
    queue;
    pool;
    next_id = Atomic.make 0;
    ms;
    mx;
    draining = Atomic.make false;
    inflight_count = Atomic.make 0;
  }

let submit t ?deadline_ms ?seed image =
  let id = Atomic.fetch_and_add t.next_id 1 in
  let budget_ms = Option.value deadline_ms ~default:t.cfg.default_deadline_ms in
  let submitted = t.cfg.now () in
  let deadline = submitted +. (budget_ms /. 1000.0) in
  let req =
    {
      req_id = id;
      req_image = image;
      req_seed = Option.value seed ~default:id;
      req_budget_ms = budget_ms;
      req_deadline = deadline;
      req_submitted = submitted;
      req_cancel = Cancel.make ~deadline ~now:t.cfg.now ();
      cell = { cm = Mutex.create (); result = None; abandoned = false };
    }
  in
  with_lock t.ms.sm (fun () -> t.ms.submitted <- t.ms.submitted + 1);
  Metrics.incr t.mx.mx_submitted;
  let reject out_result =
    let out =
      {
        out_id = id;
        out_result;
        out_served_by = "";
        out_degraded = false;
        out_attempts = 0;
        out_queue_ms = 0.0;
        out_total_ms = 0.0;
        out_margin_bits = Float.nan;
        out_sentinel = [||];
      }
    in
    with_lock req.cell.cm (fun () -> req.cell.result <- Some out)
  in
  (* admission control at submit (DESIGN.md §13): if no rung of the ladder
     could finish inside the *full* budget even starting right now, the
     request can never be served — fail fast with the typed deadline without
     enqueueing, so it never occupies a domain. (Rungs whose cost is unknown
     count as fitting; the dequeue-side check re-evaluates against the
     budget actually remaining after queueing.) *)
  let admissible =
    Array.exists
      (fun (dep, _) ->
        match dep.dep_cost_ms with None -> true | Some c -> c <= budget_ms)
      t.ladder
  in
  if not admissible then begin
    with_lock t.ms.sm (fun () ->
        t.ms.admission_rejects <- t.ms.admission_rejects + 1;
        t.ms.deadline <- t.ms.deadline + 1);
    Metrics.incr t.mx.mx_admission;
    Metrics.incr t.mx.mx_deadline;
    reject (Error (deadline_error req ~elapsed_ms:0.0 ~op:"admission"));
    req
  end
  else begin
    let admit () =
      if Atomic.get t.draining then
        (* draining: the typed refusal clients already understand — retry
           against another instance, this one is on its way down *)
        Error (Queue.length t.queue)
      else begin
        Atomic.incr t.inflight_count;
        match
          Queue.push t.queue
            {
              Pool.job_cancel = Some req.req_cancel;
              job_run = (fun ~worker -> process t req ~worker);
            }
        with
        | Ok () -> Ok ()
        | Error depth ->
            Atomic.decr t.inflight_count;
            Error depth
      end
    in
    (match admit () with
    | Ok () -> ()
    | Error depth ->
        (* shed at admission: the typed rejection is the response *)
        with_lock t.ms.sm (fun () -> t.ms.shed <- t.ms.shed + 1);
        Metrics.incr t.mx.mx_shed;
        reject
          (Error
             ( Herr.Overloaded { queue_depth = depth; high_water = Queue.high_water t.queue },
               Herr.context ~backend:"serve" "submit" )));
    req
  end

let await t (req : ticket) =
  let poll_ms = 1.0 in
  let rec loop () =
    let ready = with_lock req.cell.cm (fun () -> req.cell.result) in
    match ready with
    | Some o -> o
    | None ->
        let now = t.cfg.now () in
        if now >= req.req_deadline then begin
          (* give up: mark the request abandoned (checked again under the
             cell lock so a just-delivered result wins the race) *)
          let raced =
            with_lock req.cell.cm (fun () ->
                match req.cell.result with
                | Some o -> Some o
                | None ->
                    req.cell.abandoned <- true;
                    None)
          in
          match raced with
          | Some o -> o
          | None ->
              (* free the worker too: if the request is mid-circuit, the
                 executor's next node-boundary poll sees the trip *)
              Cancel.trip req.req_cancel Cancel.Abandoned;
              let elapsed_ms = (now -. req.req_submitted) *. 1000.0 in
              let out =
                {
                  out_id = req.req_id;
                  out_result = Error (deadline_error req ~elapsed_ms ~op:"await");
                  out_served_by = "";
                  out_degraded = false;
                  out_attempts = 0;
                  out_queue_ms = 0.0;
                  out_total_ms = elapsed_ms;
                  out_margin_bits = Float.nan;
                  out_sentinel = [||];
                }
              in
              with_lock t.ms.sm (fun () ->
                  t.ms.deadline <- t.ms.deadline + 1;
                  t.ms.latencies <- elapsed_ms :: t.ms.latencies);
              Metrics.incr t.mx.mx_deadline;
              Metrics.observe t.mx.mx_latency (elapsed_ms /. 1000.0);
              out
        end
        else begin
          t.cfg.sleep_ms poll_ms;
          loop ()
        end
  in
  loop ()

let infer t ?deadline_ms ?seed image = await t (submit t ?deadline_ms ?seed image)

(* Explicit cancellation (the CNCL frame lands here): trip the ticket's
   token and let the machinery already in place do the rest — queued
   requests die at dequeue, running ones at the next node boundary. *)
let cancel (req : ticket) ~reason = Cancel.trip req.req_cancel (Cancel.Requested reason)
let ticket_id (req : ticket) = req.req_id
let shutdown t = Pool.shutdown t.pool

(* ------------------------------------------------------------------ *)
(* Graceful drain (DESIGN.md §12)                                       *)
(* ------------------------------------------------------------------ *)

let begin_drain t = Atomic.set t.draining true
let is_draining t = Atomic.get t.draining
let inflight t = Atomic.get t.inflight_count

(* Wait (on the injected clock) for every admitted request to reach its
   outcome. In-flight work completes within its own deadlines, so a bounded
   wait suffices: [true] = fully drained, [false] = timed out with work
   still in flight (the caller decides whether to hard-stop anyway). *)
let drain t ~timeout_ms =
  let deadline = t.cfg.now () +. (timeout_ms /. 1000.0) in
  let rec loop () =
    if Atomic.get t.inflight_count = 0 then true
    else if t.cfg.now () >= deadline then false
    else begin
      t.cfg.sleep_ms 1.0;
      loop ()
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Introspection                                                        *)
(* ------------------------------------------------------------------ *)

let breaker_states t =
  Array.to_list (Array.map (fun (dep, brk) -> (dep.dep_label, Breaker.state brk)) t.ladder)

let stats t =
  let trips = Array.fold_left (fun acc (_, brk) -> acc + Breaker.trip_count brk) 0 t.ladder in
  with_lock t.ms.sm (fun () ->
      {
        s_submitted = t.ms.submitted;
        s_succeeded = t.ms.succeeded;
        s_failed = t.ms.failed;
        s_shed = t.ms.shed;
        s_deadline = t.ms.deadline;
        s_degraded = t.ms.degraded;
        s_retries = t.ms.retries;
        s_breaker_trips = trips;
        s_worker_crashes = t.ms.worker_crashes;
        s_late_results = t.ms.late_results;
        s_cancelled = t.ms.cancelled;
        s_admission_rejects = t.ms.admission_rejects;
        s_integrity_failures = t.ms.integrity_failures;
        s_queue = Queue.stats t.queue;
        s_latencies_ms = Array.of_list (List.rev t.ms.latencies);
      })

(* Nearest-rank percentile on a sorted copy. *)
let percentile xs p =
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let s = Array.copy xs in
    Array.sort compare s;
    let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
    s.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

(* Prometheus text exposition of the service registry. Point-in-time state
   (breaker per rung, queue depths) is refreshed into gauges here rather
   than on the hot path — the counters and the latency histogram were
   updated live. *)
let metrics_snapshot t =
  Array.iter
    (fun (dep, brk) ->
      let g =
        Metrics.gauge t.mx.registry
          ~help:"0 = closed, 1 = half-open, 2 = open"
          ~labels:[ ("rung", dep.dep_label) ]
          "chet_serve_breaker_state"
      in
      Metrics.set_gauge g
        (match Breaker.state brk with Breaker.Closed -> 0.0 | Breaker.Half_open -> 1.0
        | Breaker.Open -> 2.0);
      let trips =
        Metrics.gauge t.mx.registry ~help:"lifetime breaker trips"
          ~labels:[ ("rung", dep.dep_label) ]
          "chet_serve_breaker_trips"
      in
      Metrics.set_gauge trips (float_of_int (Breaker.trip_count brk)))
    t.ladder;
  let q = Queue.stats t.queue in
  let qg name help v =
    Metrics.set_gauge (Metrics.gauge t.mx.registry ~help name) (float_of_int v)
  in
  qg "chet_serve_queue_pushed" "jobs admitted to the queue" q.Queue.q_pushed;
  qg "chet_serve_queue_shed" "jobs shed at the high-water mark" q.Queue.q_shed;
  qg "chet_serve_queue_max_depth" "deepest queue occupancy seen" q.Queue.q_max_depth;
  Metrics.expose t.mx.registry

(* ------------------------------------------------------------------ *)
(* State persistence (DESIGN.md §11)                                    *)
(* ------------------------------------------------------------------ *)

(* The serving layer's learned state — per-rung breaker memory — as an SRVC
   checksum frame, keyed by rung label so a restart with a different ladder
   shape restores what still matches and ignores the rest. *)

module Serial = Chet_crypto.Serial

let service_state_version = 1

let int_of_breaker_state = function
  | Breaker.Closed -> 0
  | Breaker.Open -> 1
  | Breaker.Half_open -> 2

let breaker_state_of_int = function
  | 0 -> Breaker.Closed
  | 1 -> Breaker.Open
  | 2 -> Breaker.Half_open
  | k -> raise (Serial.Corrupt (Printf.sprintf "SRVC: unknown breaker state %d" k))

let state_to_string t =
  let w = Serial.writer () in
  Serial.write_frame w "SRVC" (fun w ->
      Serial.write_int w service_state_version;
      Serial.write_int w (Array.length t.ladder);
      Array.iter
        (fun (dep, brk) ->
          let sn = Breaker.snapshot brk in
          Serial.write_string w dep.dep_label;
          Serial.write_int w (int_of_breaker_state sn.Breaker.sn_state);
          Serial.write_int w sn.Breaker.sn_consecutive_failures;
          Serial.write_int w sn.Breaker.sn_trips;
          Serial.write_float w sn.Breaker.sn_cooldown_remaining)
        t.ladder);
  Serial.contents w

let restore_state t bytes =
  match
    let r = Serial.reader bytes in
    let v =
      Serial.read_frame r "SRVC" (fun r ->
          let version = Serial.read_int r in
          if version <> service_state_version then
            raise (Serial.Corrupt (Printf.sprintf "SRVC: unsupported version %d" version));
          let count = Serial.read_int r in
          if count < 0 || count > 1024 then raise (Serial.Corrupt "SRVC: bad rung count");
          List.init count (fun _ ->
              let label = Serial.read_string r in
              let st = breaker_state_of_int (Serial.read_int r) in
              let fails = Serial.read_int r in
              let trips = Serial.read_int r in
              let remaining = Serial.read_float r in
              if fails < 0 || trips < 0 || not (Float.is_finite remaining) then
                raise (Serial.Corrupt "SRVC: implausible breaker snapshot");
              ( label,
                {
                  Breaker.sn_state = st;
                  sn_consecutive_failures = fails;
                  sn_trips = trips;
                  sn_cooldown_remaining = remaining;
                } )))
    in
    if not (Serial.reader_eof r) then raise (Serial.Corrupt "SRVC: trailing bytes");
    v
  with
  | exception Serial.Corrupt reason ->
      Error (Herr.Corrupt_bundle { path = "service-state"; reason })
  | snapshots ->
      let restored = ref 0 in
      Array.iter
        (fun (dep, brk) ->
          match List.assoc_opt dep.dep_label snapshots with
          | Some sn ->
              Breaker.restore brk sn;
              incr restored
          | None -> ())
        t.ladder;
      Ok !restored

let pp_stats fmt s =
  let pct p = percentile s.s_latencies_ms p in
  Format.fprintf fmt
    "@[<v>requests: %d submitted, %d ok (%d degraded), %d failed, %d shed, %d deadline-expired@,\
     retries: %d; breaker trips: %d; worker crashes: %d; late results: %d@,\
     cancelled: %d; admission rejects: %d; integrity failures: %d@,\
     queue: %d admitted, %d shed, max depth %d@,\
     latency ms: p50 %.1f  p95 %.1f  p99 %.1f@]"
    s.s_submitted s.s_succeeded s.s_degraded s.s_failed s.s_shed s.s_deadline s.s_retries
    s.s_breaker_trips s.s_worker_crashes s.s_late_results s.s_cancelled s.s_admission_rejects
    s.s_integrity_failures s.s_queue.Queue.q_pushed s.s_queue.Queue.q_shed
    s.s_queue.Queue.q_max_depth (pct 50.0) (pct 95.0) (pct 99.0)
