(** OCaml 5 domain worker pool over a bounded {!Queue} (DESIGN.md §9).

    Each worker is one [Domain.t] looping pop → run. Jobs must not let
    exceptions escape; if one does anyway the worker catches it, reports it
    through [on_crash], and keeps serving. Workers exit when the queue is
    closed and drained.

    Distinct from {!Chet_crypto.Kpool}: this pool runs whole inference jobs
    (coarse, queue-fed, long-lived); Kpool fans the residue channels of a
    single ring operation across domains. A Kpool-parallel kernel running
    {e inside} a Pool job composes without oversubscription because Kpool
    falls back to sequential execution on nested entry. *)

module Cancel = Chet_hisa.Cancel

type job = {
  job_cancel : Cancel.t option;
      (** token of the request this job runs, if cancellable *)
  job_run : worker:int -> unit;
}

type t

val create : ?on_crash:(worker:int -> exn -> unit) -> domains:int -> job Queue.t -> t
(** Spawn [domains] workers consuming from the queue.
    @raise Invalid_argument if [domains < 1]. *)

val size : t -> int
val crash_count : t -> int

val cancel_inflight : t -> Cancel.reason -> int
(** Trip the cancel token of every job currently on a worker (e.g. at
    shutdown); queued-but-unstarted jobs are untouched. Returns how many
    live tokens were tripped. *)

val shutdown : t -> unit
(** Close the queue, drain what is left, join every domain. Idempotent. *)
