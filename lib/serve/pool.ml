(* OCaml 5 domain worker pool over a bounded {!Queue} (DESIGN.md §9).

   Each worker is one [Domain.t] looping [Queue.pop -> job]. A job is a
   closure that must *not* let exceptions escape (the service converts every
   failure into a typed outcome before the job returns); if one escapes
   anyway — a bug in a backend, not a typed FHE failure — the worker catches
   it, reports it through [on_crash], and keeps serving. Workers only exit
   when the queue is closed and drained.

   Nothing here knows about inference: the pool moves [worker:int -> unit]
   thunks so tests can drive it with plain closures. The worker id is passed
   through so jobs can use worker-private resources (e.g. a per-domain
   backend instance).

   Jobs may carry a cancel token (DESIGN.md §13). The pool publishes the
   token of whatever each worker is currently running, so [cancel_inflight]
   can trip every in-flight request — e.g. at shutdown — without knowing
   anything about what the jobs compute. *)

module Cancel = Chet_hisa.Cancel

type job = {
  job_cancel : Cancel.t option;
      (** token of the request this job runs, if cancellable *)
  job_run : worker:int -> unit;
}

type t = {
  queue : job Queue.t;
  domains : unit Domain.t array;
  (* what each worker is running right now: written by the worker around
     each job, read by [cancel_inflight]. One atomic per worker, no lock. *)
  running : Cancel.t option Atomic.t array;
  crashes : int Atomic.t;
  on_crash : worker:int -> exn -> unit;
}

let worker_loop pool id =
  let slot = pool.running.(id) in
  let rec loop () =
    match Queue.pop pool.queue with
    | None -> () (* closed and drained: clean exit *)
    | Some job ->
        Atomic.set slot job.job_cancel;
        (try job.job_run ~worker:id with
        | exn ->
            (* never let a job take the worker down with it *)
            Atomic.incr pool.crashes;
            (try pool.on_crash ~worker:id exn with _ -> ()));
        Atomic.set slot None;
        loop ()
  in
  loop ()

let create ?(on_crash = fun ~worker:_ _ -> ()) ~domains queue =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      queue;
      domains = [||];
      running = Array.init domains (fun _ -> Atomic.make None);
      crashes = Atomic.make 0;
      on_crash;
    }
  in
  let spawned = Array.init domains (fun id -> Domain.spawn (fun () -> worker_loop pool id)) in
  { pool with domains = spawned }

let size pool = Array.length pool.domains
let crash_count pool = Atomic.get pool.crashes

(* Trip the token of every job currently on a worker. Queued-but-unstarted
   jobs are untouched (their own deadline/cancel discipline applies when a
   worker picks them up). Returns how many live tokens were tripped. *)
let cancel_inflight pool reason =
  Array.fold_left
    (fun acc slot ->
      match Atomic.get slot with
      | Some tok ->
          Cancel.trip tok reason;
          acc + 1
      | None -> acc)
    0 pool.running

(* Graceful shutdown: stop admitting, drain what is queued, join every
   domain. Idempotent ([Domain.join] on a finished domain returns). *)
let shutdown pool =
  Queue.close pool.queue;
  Array.iter Domain.join pool.domains
