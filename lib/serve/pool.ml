(* OCaml 5 domain worker pool over a bounded {!Queue} (DESIGN.md §9).

   Each worker is one [Domain.t] looping [Queue.pop -> job]. A job is a
   closure that must *not* let exceptions escape (the service converts every
   failure into a typed outcome before the job returns); if one escapes
   anyway — a bug in a backend, not a typed FHE failure — the worker catches
   it, reports it through [on_crash], and keeps serving. Workers only exit
   when the queue is closed and drained.

   Nothing here knows about inference: the pool moves [worker:int -> unit]
   thunks so tests can drive it with plain closures. The worker id is passed
   through so jobs can use worker-private resources (e.g. a per-domain
   backend instance). *)

type job = worker:int -> unit

type t = {
  queue : job Queue.t;
  domains : unit Domain.t array;
  crashes : int Atomic.t;
  on_crash : worker:int -> exn -> unit;
}

let worker_loop pool id =
  let rec loop () =
    match Queue.pop pool.queue with
    | None -> () (* closed and drained: clean exit *)
    | Some job ->
        (try job ~worker:id with
        | exn ->
            (* never let a job take the worker down with it *)
            Atomic.incr pool.crashes;
            (try pool.on_crash ~worker:id exn with _ -> ()));
        loop ()
  in
  loop ()

let create ?(on_crash = fun ~worker:_ _ -> ()) ~domains queue =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool = { queue; domains = [||]; crashes = Atomic.make 0; on_crash } in
  let spawned = Array.init domains (fun id -> Domain.spawn (fun () -> worker_loop pool id)) in
  { pool with domains = spawned }

let size pool = Array.length pool.domains
let crash_count pool = Atomic.get pool.crashes

(* Graceful shutdown: stop admitting, drain what is queued, join every
   domain. Idempotent ([Domain.join] on a finished domain returns). *)
let shutdown pool =
  Queue.close pool.queue;
  Array.iter Domain.join pool.domains
