(** Supervised encrypted-inference service (DESIGN.md §9).

    CHET's deployment model is compile-once / infer-many (§3.2): parameter
    and layout selection, key generation and scale search happen offline,
    then one fixed deployment answers a stream of encrypted requests. This
    module is the serving substrate around that stream: a bounded job queue
    feeding a pool of OCaml 5 domain workers, with

    - {b deadlines}: every request carries a latency budget; a request whose
      deadline passes while queued is never started, a request whose
      predicted cost cannot fit the budget on any rung is refused up front
      (admission control, DESIGN.md §13), and a caller whose deadline passes
      mid-inference gets a typed [Deadline_exceeded] while the abandoned
      attempt is freed at the executor's next circuit-node boundary via its
      cancel token — a worker is lost for one node, not one inference;
    - {b retries}: transient typed failures ([Numeric_blowup],
      [Corrupt_ciphertext], and the other checked-backend detections) are
      retried with capped exponential backoff + jitter, within the deadline;
    - {b load shedding}: once the queue reaches its high-water mark, new
      requests are rejected immediately with a typed [Overloaded] — an
      honest fast "try again later" instead of a slow deadline miss;
    - {b graceful degradation}: the service owns a {e ladder} of deployments
      (full-precision first, reduced-scale rungs after, optionally a
      cleartext simulation as last resort). A per-rung circuit breaker trips
      after consecutive hard failures ([Modulus_exhausted], exhausted
      retries) and routes traffic to the next rung — with the response
      carrying an explicit [degraded : true] — then half-opens and probes
      its way back.

    Determinism: a request's answer is a pure function of (image, request
    seed, serving rung) — each attempt builds its backend through
    [dep_backend ~req_seed ~attempt], so N concurrent domains produce
    results bit-identical to sequential execution (asserted by
    test/test_serve.ml). *)

module Herr = Chet_hisa.Herr
module Hisa = Chet_hisa.Hisa
module Kernels = Chet_runtime.Kernels
module Executor = Chet_runtime.Executor
module Circuit = Chet_nn.Circuit
module Tensor = Chet_tensor.Tensor
module Compiler = Chet.Compiler

(** {1 Deployments and the degradation ladder} *)

type deployment = {
  dep_label : string;  (** e.g. ["primary"], ["reduced-scale-1"], ["clear-sim"] *)
  dep_degraded : bool;  (** surfaced as [degraded] on every response it serves *)
  dep_scales : Kernels.scales;
  dep_policy : Executor.layout_policy;
  dep_cost_ms : float option;
      (** calibrated cost-model prediction of one inference on this rung,
          used by admission control and deadline-aware rung selection
          (DESIGN.md §13); [None] = unknown, the rung is always admitted *)
  dep_backend : req_seed:int -> attempt:int -> Hisa.t;
      (** Fresh backend view per attempt. Implementations share the heavy
          immutable state (context, evaluation keys) and derive only the
          encryption randomness from [req_seed] — which is what makes
          concurrent execution bit-identical to sequential. *)
  dep_plan :
    (cancel:Chet_hisa.Cancel.t -> worker:int -> req_seed:int -> attempt:int -> Tensor.t -> Tensor.t)
    option;
      (** When present, workers run this rung through a compiled execution
          plan (DESIGN.md §14) instead of the interpretive executor:
          prepare-once staged kernels over a ciphertext arena, with weight
          and mask plaintexts already encoded. Implementations must fold
          [attempt] into the request seed exactly as [dep_backend] does, so
          answers stay bit-identical across the two paths. [dep_backend]
          remains the fallback (and the contract for checked/fault
          wrapping); [None] means the rung is always interpretive. *)
  dep_sentinel : Chet.Integrity.spec option;
      (** When present, every answer this rung produces is verified against
          the sentinel lane (DESIGN.md §16): the probe rides the odd twin
          slots through the whole circuit and its decrypted value must match
          the clear-reference prediction within the spec's tolerance. A
          mismatch surfaces as a typed [Integrity_violation] — transient, so
          the attempt is retried with fresh randomness (and, over the
          network, on a different shard). Forces the interpretive executor. *)
  dep_twin : bool;
      (** Run on twin (interleaved-sentinel) layouts even without
          verification. Every FHE rung of a sentinel-compiled deployment
          must set this: its rotation keys cover only the doubled (twin)
          rotation amounts. *)
}

val ladder_of_compiled :
  Compiler.compiled ->
  seed:int ->
  ?rotation_keys:Compiler.rotation_key_policy ->
  ?reduced_rungs:int ->
  ?clear_fallback:bool ->
  ?predict_cost:bool ->
  ?plan:Chet_plan.Plan.t ->
  ?sentinel:Chet.Integrity.spec ->
  with_secret:bool ->
  unit ->
  deployment list
(** Build the default degradation ladder from a compiled circuit: rung 0 is
    the full deployment at the compiled parameters ({!Compiler.instantiate_factory}
    — shared keys, per-request randomness); each of the [reduced_rungs]
    (default 1) reuses the same instantiated context with scale exponents
    shrunk along the {!Chet.Scale_select} fallback ladder (lower precision,
    more modulus headroom, marked degraded); if [clear_fallback] (default
    true) the last rung executes on the cleartext {!Chet_hisa.Clear_backend}
    with the same virtual scheme — an availability-over-confidentiality last
    resort that callers can veto.

    With [predict_cost] (default false), the FHE rungs carry [dep_cost_ms]
    taken from the chosen policy's {!Compiler.policy_report} — the calibrated
    cost model already priced every layout during compilation, so admission
    control costs nothing extra — and the cleartext rung carries [Some 0.]
    (orders of magnitude cheaper than any FHE rung).

    With [?plan] (typically {!Compiler.plan}[ compiled]), the primary rung
    executes through {!Compiler.instantiate_plan_runner} — one prepared
    executor per worker domain, bit-identical answers. Degraded rungs stay
    interpretive: the plan's staged plaintexts are encoded at the primary
    scales.

    With [?sentinel] (the circuit must have been compiled with
    [opts.sentinel = true] so parameters and rotation keys match the twin
    geometry), the primary and cleartext rungs verify every answer against
    the sentinel lane and the plan path is disabled; reduced rungs run twin
    but unverified — their deliberate precision loss would trip the
    full-precision tolerance. *)

val ladder_of_factory :
  Compiler.compiled ->
  factory:Compiler.backend_factory ->
  ?reduced_rungs:int ->
  ?clear_fallback:bool ->
  ?predict_cost:bool ->
  ?plan:Compiler.plan_runner ->
  ?sentinel:Chet.Integrity.spec ->
  unit ->
  deployment list
(** {!ladder_of_compiled} around an already-instantiated deployment —
    what a warm restart hands over after
    {!Compiler.instantiate_factory_restored} rebuilt the keyset from a
    stored bundle instead of regenerating it. [?plan] attaches an
    already-instantiated plan runner (e.g. {!Chet_store.Bundle.restore_plan_runner})
    to the primary rung. *)

(** {1 Configuration} *)

type config = {
  domains : int;  (** pool width *)
  high_water : int;  (** queue depth beyond which requests are shed *)
  max_retries : int;  (** per-rung retry budget for transient failures *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  backoff_jitter : float;  (** fraction of the delay randomised, in [0,1] *)
  breaker_threshold : int;  (** consecutive rung failures before it trips *)
  breaker_cooldown_ms : float;
  default_deadline_ms : float;
  now : unit -> float;  (** injectable clock, seconds *)
  sleep_ms : float -> unit;  (** injectable sleep (backoff, await polling) *)
}

val default_config : ?domains:int -> unit -> config

(** {1 Requests and outcomes} *)

type outcome = {
  out_id : int;
  out_result : (Tensor.t, Herr.error * Herr.context) result;
  out_served_by : string;  (** label of the rung that answered ([""] if none ran) *)
  out_degraded : bool;  (** the explicit degraded flag of the response *)
  out_attempts : int;  (** inference attempts across all rungs *)
  out_queue_ms : float;  (** submission -> worker pickup *)
  out_total_ms : float;  (** submission -> outcome *)
  out_margin_bits : float;
      (** measured sentinel margin of the winning attempt; [nan] when the
          serving rung ran without a sentinel lane (DESIGN.md §16) *)
  out_sentinel : float array;
      (** decrypted sentinel twin lane, [[||]] when unverified — carried to
          the wire so clients can re-verify independently of the shard *)
}

type ticket

type t

val create : config -> circuit:Circuit.t -> ladder:deployment list -> t
(** @raise Invalid_argument on an empty ladder. *)

val submit : t -> ?deadline_ms:float -> ?seed:int -> Tensor.t -> ticket
(** Non-blocking admission. A request arriving over the high-water mark is
    shed: its ticket already holds an [Overloaded] outcome. [seed] defaults
    to the request id. *)

val await : t -> ticket -> outcome
(** Block (polling on the injected clock) until the outcome is ready or the
    request's deadline passes — in which case the in-flight attempt is
    abandoned and a [Deadline_exceeded] outcome returned. *)

val infer : t -> ?deadline_ms:float -> ?seed:int -> Tensor.t -> outcome
(** [submit] composed with [await]. *)

val cancel : ticket -> reason:string -> unit
(** Cooperative cancellation (DESIGN.md §13): trip the request's cancel
    token with an explicit reason (e.g. a [CNCL] wire frame, or a hedge
    sibling winning). First trip wins and the call is idempotent. A queued
    request dies at dequeue without touching a backend; a running one is
    freed at the executor's next circuit-node boundary, delivering a typed
    [Cancelled] that carries the node at which the worker noticed. *)

val ticket_id : ticket -> int
(** The service-assigned request id (matches [out_id] of the outcome). *)

val shutdown : t -> unit
(** Close the queue, drain in-flight work, join the worker domains. *)

(** {1 Graceful drain}

    The SIGTERM protocol (DESIGN.md §12): {!begin_drain} flips the service
    into refuse-new-admits mode — every subsequent {!submit} is shed with a
    typed [Overloaded] — while requests already admitted run to their
    outcomes; {!drain} then waits for the in-flight count to reach zero.
    The networked shard worker composes these as
    [begin_drain; drain; persist state; exit 0]. *)

val begin_drain : t -> unit
(** Stop admitting. Idempotent; already-admitted requests are unaffected. *)

val is_draining : t -> bool

val inflight : t -> int
(** Requests admitted but not yet delivered an outcome. *)

val drain : t -> timeout_ms:float -> bool
(** Block (polling the injected clock) until {!inflight} reaches zero;
    [false] if [timeout_ms] elapsed first. *)

(** {1 Introspection} *)

type stats = {
  s_submitted : int;
  s_succeeded : int;
  s_failed : int;  (** typed failure other than shed/deadline *)
  s_shed : int;
  s_deadline : int;
  s_degraded : int;  (** successes served by a degraded rung *)
  s_retries : int;  (** attempts beyond the first, summed over requests *)
  s_breaker_trips : int;  (** summed over rungs *)
  s_worker_crashes : int;  (** non-FHE exceptions converted to [Worker_crashed] *)
  s_late_results : int;  (** attempts that finished after their caller gave up *)
  s_cancelled : int;  (** outcomes delivered as typed [Cancelled] *)
  s_admission_rejects : int;
      (** requests refused because no rung's predicted cost fit the budget *)
  s_integrity_failures : int;
      (** attempts whose sentinel lane failed verification (each retried or
          degraded per {!transient_error}) *)
  s_queue : Queue.stats;
  s_latencies_ms : float array;  (** total latency of every finished outcome *)
}

val stats : t -> stats
val breaker_states : t -> (string * Breaker.state) list

val metrics_snapshot : t -> string
(** Prometheus text exposition of the service's private
    {!Chet_obs.Metrics} registry: request counters
    ([chet_serve_requests_*_total]), retry/crash/late counters, the
    [chet_serve_latency_seconds] histogram, and point-in-time gauges for
    per-rung breaker state and queue depths (refreshed at snapshot time).
    [chet serve --metrics-dump] prints this after its demo run. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100]; nearest-rank on a sorted copy;
    [nan] on empty input. *)

val transient_error : Herr.error -> bool
(** The retry classification: checked-backend detections that a fresh
    attempt can plausibly clear (scale/level lies, corrupt decode, NaN
    poison, dropped rescale). Hard failures — [Modulus_exhausted],
    structural shape/key errors, [Worker_crashed] — skip the retry budget
    and count toward the rung's breaker immediately. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 State persistence}

    The serving layer's learned state — each rung's circuit-breaker memory —
    survives a clean restart (DESIGN.md §11): [chet serve --state-dir]
    persists it as a store sidecar on graceful shutdown and restores it on
    boot, so a rung that was known-broken before the restart stays tripped
    instead of costing [breaker_threshold] fresh failures to re-learn. *)

val state_to_string : t -> string
(** The per-rung breaker snapshots as an [SRVC] checksum frame, keyed by
    rung label. Clock-free: open breakers record {e remaining} cooldown. *)

val restore_state : t -> string -> (int, Herr.error) result
(** Apply a {!state_to_string} payload: rungs are matched by label (unknown
    labels are ignored — the ladder may have changed shape across the
    restart); returns how many rungs were restored. [Error] carries a typed
    {!Herr.Corrupt_bundle} if the payload fails its integrity check. *)
