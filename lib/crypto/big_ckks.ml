(* HEAAN-style CKKS. See big_ckks.mli.

   Key switching: for a target secret s' (s² for relinearisation, φ_g(s) for
   rotations) the key is (k0, k1) mod Q0·P with k0 = -k1·s + e + P·s'.
   Switching a polynomial d: (d·k0, d·k1) mod q·P, divided by P with
   rounding, yields a pair decrypting to d·s' + noise mod q, with noise
   ≈ ‖d·e‖/P — small because P ≥ q always. *)

module Bigint = Chet_bigint.Bigint
module Herr = Chet_herr.Herr

let err ~op e = Herr.raise_err ~backend:"big_ckks" ~op e

type params = { n : int; log_fresh : int; log_special : int; sigma : float }

let default_params ?(n = 8192) ?log_special ~log_fresh () =
  let log_special = match log_special with Some l -> l | None -> log_fresh in
  { n; log_fresh; log_special; sigma = 3.2 }

type context = { params : params; rq : Rq_big.ctx; enc : Encoding.ctx }

let log2_int n =
  let rec loop n acc = if n <= 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let make_context params =
  if params.log_special < params.log_fresh then
    invalid_arg "Big_ckks.make_context: log_special must be >= log_fresh";
  let max_product_bits = (2 * (params.log_fresh + params.log_special)) + log2_int params.n + 4 in
  {
    params;
    rq = Rq_big.make_ctx ~n:params.n ~max_product_bits;
    enc = Encoding.make ~n:params.n;
  }

let params ctx = ctx.params
let slot_count ctx = ctx.params.n / 2
let encoding ctx = ctx.enc
let total_modulus_bits ctx = ctx.params.log_fresh + ctx.params.log_special

type secret_key = { s : int array (* ternary *) }
type public_key = { pk0 : Rq_big.t; pk1 : Rq_big.t (* mod 2^log_fresh *) }
type kswitch_key = { k0 : Rq_big.t; k1 : Rq_big.t (* mod 2^(log_fresh+log_special) *) }

type keys = {
  public : public_key;
  relin : kswitch_key;
  rotation : (int, kswitch_key) Hashtbl.t;
}

type plaintext = { poly : Rq_big.t; pt_scale : float }
type ciphertext = { c0 : Rq_big.t; c1 : Rq_big.t; scale : float }

let logq_of ct = Rq_big.mode_of ct.c0
let scale_of ct = ct.scale
let pt_logq pt = Rq_big.mode_of pt.poly

let s_poly ctx ~logq (sk : secret_key) = Rq_big.of_centered_coeffs ctx.rq logq sk.s

let sample_gaussian_poly ctx rng ~logq =
  Rq_big.of_centered_coeffs ctx.rq logq (Sampling.gaussian rng ~sigma:ctx.params.sigma ctx.params.n)

let sample_uniform_poly ctx rng ~logq =
  Rq_big.of_reduced_coeffs ~logq
    (Sampling.uniform_bigint_poly rng ~modulus:(Bigint.pow2 logq) ctx.params.n)

let keygen_kswitch ctx rng sk (target : Rq_big.t) =
  let logqp = ctx.params.log_fresh + ctx.params.log_special in
  let k1 = sample_uniform_poly ctx rng ~logq:logqp in
  let e = sample_gaussian_poly ctx rng ~logq:logqp in
  let p_target = Rq_big.mul_bigint ctx.rq target (Bigint.pow2 ctx.params.log_special) in
  let k0 =
    Rq_big.add ctx.rq
      (Rq_big.sub ctx.rq e (Rq_big.mul ctx.rq k1 (s_poly ctx ~logq:logqp sk)))
      p_target
  in
  { k0; k1 }

let keygen ctx rng =
  let sk = { s = Sampling.ternary rng ctx.params.n } in
  let logq = ctx.params.log_fresh in
  let pk1 = sample_uniform_poly ctx rng ~logq in
  let e = sample_gaussian_poly ctx rng ~logq in
  let pk0 = Rq_big.sub ctx.rq e (Rq_big.mul ctx.rq pk1 (s_poly ctx ~logq sk)) in
  let logqp = ctx.params.log_fresh + ctx.params.log_special in
  let s_qp = s_poly ctx ~logq:logqp sk in
  let s_sq = Rq_big.mul ctx.rq s_qp s_qp in
  let relin = keygen_kswitch ctx rng sk s_sq in
  (sk, { public = { pk0; pk1 }; relin; rotation = Hashtbl.create 16 })

let galois_of_rotation ctx r = Encoding.galois_element ctx.enc r

let add_rotation_key ctx rng sk keys r =
  let g = galois_of_rotation ctx r in
  if not (Hashtbl.mem keys.rotation g) then begin
    let logqp = ctx.params.log_fresh + ctx.params.log_special in
    let s_g = Rq_big.automorphism ctx.rq (s_poly ctx ~logq:logqp sk) ~g in
    Hashtbl.replace keys.rotation g (keygen_kswitch ctx rng sk s_g)
  end

let add_power_of_two_rotation_keys ctx rng sk keys =
  let slots = slot_count ctx in
  let k = ref 1 in
  while !k < slots do
    add_rotation_key ctx rng sk keys !k;
    add_rotation_key ctx rng sk keys (slots - !k);
    k := !k lsl 1
  done

let rotation_key_count keys = Hashtbl.length keys.rotation

let encode ctx ~logq ~scale (z : Complexv.t) =
  let coeffs = Encoding.encode ctx.enc ~scale ~re:z.Complexv.re ~im:z.Complexv.im in
  let q = Bigint.pow2 logq in
  let poly =
    Array.map
      (fun c ->
        (* float coefficients are exact up to 2^53; beyond that we accept the
           representation error, which is far below the CKKS noise floor *)
        let sign = if c < 0.0 then -1.0 else 1.0 in
        let a = Float.abs c in
        if a < 9.0e15 then Bigint.emod (Bigint.of_int (int_of_float (Float.round c))) q
        else begin
          (* split into high/low 45-bit chunks to convert losslessly-ish *)
          let hi = Float.round (a /. 3.5184372088832e13) (* 2^45 *) in
          let lo = Float.round (a -. (hi *. 3.5184372088832e13)) in
          let v =
            Bigint.add
              (Bigint.shift_left (Bigint.of_int (int_of_float hi)) 45)
              (Bigint.of_int (int_of_float lo))
          in
          Bigint.emod (if sign < 0.0 then Bigint.neg v else v) q
        end)
      coeffs
  in
  { poly = Rq_big.of_reduced_coeffs ~logq poly; pt_scale = scale }

let encode_real ctx ~logq ~scale values = encode ctx ~logq ~scale (Complexv.of_real values)

let decode ctx pt =
  let centered = Rq_big.to_centered_bigint_coeffs ctx.rq pt.poly in
  let floats = Array.map Bigint.to_float centered in
  let re, im = Encoding.decode ctx.enc ~scale:pt.pt_scale floats in
  Complexv.of_complex re im

let encrypt ctx rng (pk : public_key) pt =
  if pt_logq pt <> ctx.params.log_fresh then
    err ~op:"encrypt" (Herr.Level_mismatch { expected = ctx.params.log_fresh; got = pt_logq pt });
  let logq = ctx.params.log_fresh in
  let u = Rq_big.of_centered_coeffs ctx.rq logq (Sampling.ternary rng ctx.params.n) in
  let e0 = sample_gaussian_poly ctx rng ~logq in
  let e1 = sample_gaussian_poly ctx rng ~logq in
  let c0 = Rq_big.add ctx.rq (Rq_big.add ctx.rq (Rq_big.mul ctx.rq pk.pk0 u) e0) pt.poly in
  let c1 = Rq_big.add ctx.rq (Rq_big.mul ctx.rq pk.pk1 u) e1 in
  { c0; c1; scale = pt.pt_scale }

let decrypt ctx sk ct =
  let logq = logq_of ct in
  let m = Rq_big.add ctx.rq ct.c0 (Rq_big.mul ctx.rq ct.c1 (s_poly ctx ~logq sk)) in
  { poly = m; pt_scale = ct.scale }

(* kernels equalise scales only approximately (integer mask factors, RNS
   rescaling drift); [Herr.scale_tolerance] relative slack admits value
   error well below the scheme noise floor *)
let scales_compatible = Herr.scales_compatible

let check_binop op a b =
  if logq_of a <> logq_of b then
    err ~op (Herr.Level_mismatch { expected = logq_of a; got = logq_of b });
  if not (scales_compatible a.scale b.scale) then
    err ~op (Herr.Scale_mismatch { expected = a.scale; got = b.scale })

let add ctx a b =
  check_binop "add" a b;
  { a with c0 = Rq_big.add ctx.rq a.c0 b.c0; c1 = Rq_big.add ctx.rq a.c1 b.c1 }

let sub ctx a b =
  check_binop "sub" a b;
  { a with c0 = Rq_big.sub ctx.rq a.c0 b.c0; c1 = Rq_big.sub ctx.rq a.c1 b.c1 }

let negate ctx a = { a with c0 = Rq_big.neg ctx.rq a.c0; c1 = Rq_big.neg ctx.rq a.c1 }

let check_plain op (ct : ciphertext) (pt : plaintext) =
  if logq_of ct <> pt_logq pt then
    err ~op (Herr.Level_mismatch { expected = logq_of ct; got = pt_logq pt })

let add_plain ctx ct pt =
  check_plain "add_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    err ~op:"add_plain" (Herr.Scale_mismatch { expected = ct.scale; got = pt.pt_scale });
  { ct with c0 = Rq_big.add ctx.rq ct.c0 pt.poly }

let sub_plain ctx ct pt =
  check_plain "sub_plain" ct pt;
  if not (scales_compatible ct.scale pt.pt_scale) then
    err ~op:"sub_plain" (Herr.Scale_mismatch { expected = ct.scale; got = pt.pt_scale });
  { ct with c0 = Rq_big.sub ctx.rq ct.c0 pt.poly }

let mul_plain ctx ct pt =
  check_plain "mul_plain" ct pt;
  {
    c0 = Rq_big.mul ctx.rq ct.c0 pt.poly;
    c1 = Rq_big.mul ctx.rq ct.c1 pt.poly;
    scale = ct.scale *. pt.pt_scale;
  }

let mul_scalar ctx ct x ~scale =
  let s = Bigint.of_int (int_of_float (Float.round (x *. scale))) in
  {
    c0 = Rq_big.mul_bigint ctx.rq ct.c0 s;
    c1 = Rq_big.mul_bigint ctx.rq ct.c1 s;
    scale = ct.scale *. scale;
  }

let add_scalar ctx ct x =
  ignore ctx;
  let logq = logq_of ct in
  let q = Bigint.pow2 logq in
  let c = Bigint.emod (Bigint.of_int (int_of_float (Float.round (x *. ct.scale)))) q in
  let c0 = Rq_big.coeffs ct.c0 in
  c0.(0) <- Bigint.emod (Bigint.add c0.(0) c) q;
  { ct with c0 = Rq_big.of_reduced_coeffs ~logq c0 }

let keyswitch ctx (d : Rq_big.t) (key : kswitch_key) =
  let log_p = ctx.params.log_special in
  let logqp = Rq_big.mode_of d + log_p in
  (* centered lift of d from mod q into mod q·P *)
  let d = Rq_big.of_bigint_coeffs ctx.rq logqp (Rq_big.to_centered_bigint_coeffs ctx.rq d) in
  let k0 = Rq_big.mod_down ctx.rq key.k0 logqp in
  let k1 = Rq_big.mod_down ctx.rq key.k1 logqp in
  let t0 = Rq_big.mul ctx.rq d k0 in
  let t1 = Rq_big.mul ctx.rq d k1 in
  (Rq_big.div_round_pow2 ctx.rq t0 ~k:log_p, Rq_big.div_round_pow2 ctx.rq t1 ~k:log_p)

let mul ctx keys a b =
  if logq_of a <> logq_of b then
    err ~op:"mul" (Herr.Level_mismatch { expected = logq_of a; got = logq_of b });
  let d0 = Rq_big.mul ctx.rq a.c0 b.c0 in
  let d1 = Rq_big.add ctx.rq (Rq_big.mul ctx.rq a.c0 b.c1) (Rq_big.mul ctx.rq a.c1 b.c0) in
  let d2 = Rq_big.mul ctx.rq a.c1 b.c1 in
  let k0, k1 = keyswitch ctx d2 keys.relin in
  { c0 = Rq_big.add ctx.rq d0 k0; c1 = Rq_big.add ctx.rq d1 k1; scale = a.scale *. b.scale }

let max_rescale ctx ct ub =
  ignore ctx;
  if ub < 2 then 1
  else begin
    let logq = logq_of ct in
    let k = ref 0 in
    while 1 lsl (!k + 1) <= ub && !k + 1 < logq do
      incr k
    done;
    1 lsl !k
  end

let rescale ctx ct x =
  if x = 1 then ct
  else begin
    if x land (x - 1) <> 0 then
      err ~op:"rescale"
        (Herr.Illegal_rescale { divisor = x; reason = "divisor must be a power of two" });
    let k = log2_int x in
    if k >= logq_of ct then
      err ~op:"rescale" (Herr.Modulus_exhausted { level = logq_of ct; requested = k });
    {
      c0 = Rq_big.div_round_pow2 ctx.rq ct.c0 ~k;
      c1 = Rq_big.div_round_pow2 ctx.rq ct.c1 ~k;
      scale = ct.scale /. float_of_int x;
    }
  end

let mod_down ctx ct ~logq =
  if logq > logq_of ct then
    err ~op:"mod_down" (Herr.Level_mismatch { expected = logq_of ct; got = logq });
  { ct with c0 = Rq_big.mod_down ctx.rq ct.c0 logq; c1 = Rq_big.mod_down ctx.rq ct.c1 logq }

let apply_galois ?(amount = 0) ctx keys ct g =
  let key =
    match Hashtbl.find_opt keys.rotation g with
    | Some k -> k
    | None -> err ~op:"rotate" (Herr.Missing_rotation_key { amount })
  in
  let c0 = Rq_big.automorphism ctx.rq ct.c0 ~g in
  let c1 = Rq_big.automorphism ctx.rq ct.c1 ~g in
  let k0, k1 = keyswitch ctx c1 key in
  { ct with c0 = Rq_big.add ctx.rq c0 k0; c1 = k1 }

let rotate ctx keys ct r =
  let slots = slot_count ctx in
  let r = ((r mod slots) + slots) mod slots in
  if r = 0 then ct
  else begin
    let g = galois_of_rotation ctx r in
    if Hashtbl.mem keys.rotation g then apply_galois ~amount:r ctx keys ct g
    else begin
      let ct = ref ct and k = ref 1 and rem = ref r in
      while !rem > 0 do
        if !rem land 1 = 1 then begin
          let g = galois_of_rotation ctx !k in
          if not (Hashtbl.mem keys.rotation g) then
            err ~op:"rotate" (Herr.Missing_rotation_key { amount = r });
          ct := apply_galois ~amount:!k ctx keys !ct g
        end;
        rem := !rem lsr 1;
        k := !k lsl 1
      done;
      !ct
    end
  end

let rotate_key_available keys ctx r = Hashtbl.mem keys.rotation (galois_of_rotation ctx r)
