(* A reusable kernel-domain pool for limb-parallel crypto kernels
   (DESIGN.md §15).

   This is the lighter sibling of lib/serve's Pool: serve's pool owns
   long-lived *tasks* (whole inference requests) with crash containment and
   cancellation; this pool fans out *chunks* of one data-parallel kernel
   (independent RNS residue channels) and returns when every chunk is done.
   The two compose without oversubscription: the process spawns (domains-1)
   helper domains once, every caller — including a serve worker domain —
   participates in its own kernel, and helpers steal chunks via an atomic
   cursor. A kernel issued from inside another kernel's chunk (or from a
   helper) runs sequentially in the caller, so nesting can never deadlock
   or multiply domains.

   Determinism: chunk index [i] fully determines which output a chunk
   writes, and chunks write disjoint outputs, so results are bit-identical
   for every pool width — the k-domain determinism property test. *)

type job = {
  work : int -> unit;
  total : int;
  next : int Atomic.t; (* chunk-stealing cursor *)
  finished : int Atomic.t;
  failed : exn Atomic.t option Atomic.t;
}

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  jobs : job Queue.t;
  mutable helpers : unit Domain.t array;
  mutable stopping : bool;
}

let pool =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    jobs = Queue.create ();
    helpers = [||];
    stopping = false;
  }

let configured = Atomic.make 1
let jobs_run = Atomic.make 0
let chunks_stolen = Atomic.make 0 (* chunks executed by helper domains *)

(* set while a domain is executing kernel chunks: nested [run]s go
   sequential instead of re-entering the pool *)
let in_kernel = Domain.DLS.new_key (fun () -> false)

let exec_chunk job i =
  try job.work i
  with e ->
    let box = Atomic.make e in
    ignore (Atomic.compare_and_set job.failed None (Some box))

let steal ~helper job =
  let rec loop () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      if helper then Atomic.incr chunks_stolen;
      exec_chunk job i;
      Atomic.incr job.finished;
      loop ()
    end
  in
  loop ()

let rec helper_loop () =
  Mutex.lock pool.lock;
  while (not pool.stopping) && Queue.is_empty pool.jobs do
    Condition.wait pool.nonempty pool.lock
  done;
  if pool.stopping then Mutex.unlock pool.lock
  else begin
    let job = Queue.peek pool.jobs in
    if Atomic.get job.next >= job.total then begin
      (* exhausted: drop it from the head so we can wait on fresh work *)
      ignore (Queue.pop pool.jobs);
      Mutex.unlock pool.lock
    end
    else begin
      Mutex.unlock pool.lock;
      steal ~helper:true job
    end;
    helper_loop ()
  end

let spawn_helpers k = Array.init k (fun _ -> Domain.spawn (fun () ->
    Domain.DLS.set in_kernel true;
    helper_loop ()))

let domain_count () = Atomic.get configured

let configure ~domains =
  let domains = max 1 domains in
  Mutex.lock pool.lock;
  pool.stopping <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  Array.iter Domain.join pool.helpers;
  Mutex.lock pool.lock;
  pool.helpers <- [||];
  pool.stopping <- false;
  Atomic.set configured domains;
  Mutex.unlock pool.lock;
  if domains > 1 then pool.helpers <- spawn_helpers (domains - 1)

let run_seq n f =
  for i = 0 to n - 1 do
    f i
  done

let run n f =
  if n <= 0 then ()
  else if n = 1 || Array.length pool.helpers = 0 || Domain.DLS.get in_kernel then run_seq n f
  else begin
    Atomic.incr jobs_run;
    let job =
      { work = f; total = n; next = Atomic.make 0; finished = Atomic.make 0; failed = Atomic.make None }
    in
    Mutex.lock pool.lock;
    Queue.push job pool.jobs;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.lock;
    (* the caller participates; nested kernels inside chunks run sequential *)
    Domain.DLS.set in_kernel true;
    steal ~helper:false job;
    Domain.DLS.set in_kernel false;
    (* chunks are short (one residue channel); spin for the helpers' tail *)
    while Atomic.get job.finished < job.total do
      Domain.cpu_relax ()
    done;
    (* drop the job if a helper has not already popped it *)
    Mutex.lock pool.lock;
    let keep = Queue.create () in
    Queue.iter (fun j -> if j != job then Queue.push j keep) pool.jobs;
    Queue.clear pool.jobs;
    Queue.transfer keep pool.jobs;
    Mutex.unlock pool.lock;
    match Atomic.get job.failed with
    | Some box -> raise (Atomic.get box)
    | None -> ()
  end

type stats = { st_domains : int; st_jobs : int; st_chunks_stolen : int }

let stats () =
  {
    st_domains = domain_count ();
    st_jobs = Atomic.get jobs_run;
    st_chunks_stolen = Atomic.get chunks_stolen;
  }
