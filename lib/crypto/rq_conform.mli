(** Compile-time conformance of {!Rq_rns} ([mode = int array], the RNS
    basis) and {!Rq_big} ([mode = int], the modulus exponent) to the
    unified ring signature {!Rq.S}. Intentionally empty. *)
