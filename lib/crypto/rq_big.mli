(** Polynomials in [Z_Q\[X\]/(X^n+1)] with big-integer coefficients and a
    power-of-two modulus [Q = 2^logq] — the representation used by the
    HEAAN-style CKKS scheme ({!Big_ckks}).

    An instance of the unified ring signature {!Rq.S} with [mode = int]
    (the modulus exponent [logq]); see {!Rq_conform}. Coefficients are
    stored in [\[0, Q)]. Multiplication converts to a CRT basis of
    word-sized NTT primes (the same trick HEAAN itself uses), runs
    negacyclic NTT products over unboxed {!Rvec} buffers — fanned across
    the {!Kpool} kernel domains — and reconstructs; exact as long as the
    true product coefficients fit the configured head-room. *)

module Bigint = Chet_bigint.Bigint

type ctx

val make_ctx : n:int -> max_product_bits:int -> ctx
(** [max_product_bits]: an upper bound on [log2] of any product coefficient
    magnitude this context will ever see (typically
    [2·(logq + log_special) + log2 n + 2]). *)

val ctx_n : ctx -> int
val n : ctx -> int
val crt_prime_count : ctx -> int

type mode = int
(** The modulus exponent: an element's mode is its [logq]. *)

type t
(** A ring element: coefficients in [\[0, 2^logq)] plus its [logq]. *)

val mode_of : t -> int
val modulus : ctx -> int -> Bigint.t
val zero : ctx -> int -> t
val copy : t -> t

val of_centered_coeffs : ctx -> int -> int array -> t
(** Coefficients given as centered native ints, reduced into [\[0, Q)]. *)

val of_bigint_coeffs : ctx -> int -> Bigint.t array -> t
(** Arbitrary (signed) big-integer coefficients, reduced into [\[0, Q)]. *)

val of_reduced_coeffs : logq:int -> Bigint.t array -> t
(** Coefficients that must already lie in [\[0, Q)] — the deserialization
    and sampling boundary (ctx-free; degree is checked by the first ring
    op). @raise Invalid_argument if any is out of range. *)

val coeffs : t -> Bigint.t array
(** Fresh copy of the canonical coefficients (ctx-free {!to_bigint_coeffs},
    for the serialization boundary). *)

val to_bigint_coeffs : ctx -> t -> Bigint.t array
(** Fresh copy of the canonical coefficients in [\[0, Q)]. *)

val to_centered_bigint_coeffs : ctx -> t -> Bigint.t array

val to_eval : ctx -> t -> t
(** Identity: the big ring has no persistent evaluation form (products run
    through a transient CRT basis inside {!mul}). *)

val from_eval : ctx -> t -> t

val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
val neg : ctx -> t -> t

val mul : ctx -> t -> t -> t
(** Negacyclic product mod [2^logq]. Operands are centered internally to
    keep the CRT head-room small. *)

val mul_scalar : ctx -> t -> int -> t
val mul_bigint : ctx -> t -> Bigint.t -> t
val automorphism : ctx -> t -> g:int -> t

val rescale : ctx -> t -> divisor:int -> t
(** CKKS rescale by a power-of-two [divisor]: divide centered lifts by
    [divisor] with rounding; result has [logq - log2 divisor]. *)

val div_round_pow2 : ctx -> t -> k:int -> t
(** Like {!rescale} but takes the exponent directly, so drops larger than
    62 bits (the [/P] step of HEAAN key switching) are expressible. *)

val mod_down : ctx -> t -> int -> t
(** Reduce to a smaller power-of-two modulus (exact modulus switching). *)

val equal : t -> t -> bool

val to_bytes : ctx -> t -> string
(** Self-contained encoding of one element ([n], [logq], length-prefixed
    decimal coefficients). Distinct from the {!Serial} wire format. *)

val of_bytes : ctx -> string -> t
(** Inverse of {!to_bytes}; validates degree, modulus and coefficient
    ranges. @raise Invalid_argument on malformed input. *)
