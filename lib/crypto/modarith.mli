(** Modular arithmetic for word-sized primes.

    All moduli are required to be below [2^31] so that products of residues
    stay within OCaml's native 63-bit integers. This is the substitute for
    SEAL's 60-bit "small modulus" arithmetic (see DESIGN.md §2): the RNS
    structure is identical, only the limb width differs. *)

val add_mod : int -> int -> int -> int
(** [add_mod a b p] for [0 <= a, b < p]. *)

val sub_mod : int -> int -> int -> int
val neg_mod : int -> int -> int

val mul_mod : int -> int -> int -> int
(** [mul_mod a b p]; exact for [p < 2^31]. *)

val pow_mod : int -> int -> int -> int
(** [pow_mod b e p] for [e >= 0]. *)

val inv_mod : int -> int -> int
(** Modular inverse by extended Euclid.
    @raise Invalid_argument if not invertible. *)

val reduce : int -> int -> int
(** [reduce a p] maps any native int (possibly negative) into [\[0, p)]. *)

val shoup : int -> int -> int
(** [shoup w p = (w << 31) / p], the precomputed companion word for
    {!mul_mod_shoup}. Requires [0 <= w < p < 2^31]. *)

val mul_mod_shoup : int -> int -> int -> int -> int
(** [mul_mod_shoup w wsh x p] computes [w * x mod p] using the companion
    [wsh = shoup w p], with one predicted shift-quotient instead of a
    hardware divide. Exact for any [x < 2^31] (canonical or lazy). *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all [n < 3_215_031_751]
    (covers every modulus we use). *)

val gen_ntt_prime : bits:int -> modulus_of:int -> below:int -> int
(** [gen_ntt_prime ~bits ~modulus_of:m ~below] finds the largest prime
    [p < min(2^bits, below)] with [p ≡ 1 (mod m)] — the condition for a
    [2N]-th root of unity to exist when [m = 2N].
    @raise Not_found if none exists in range. *)

val gen_ntt_primes : bits:int -> modulus_of:int -> count:int -> int array
(** [count] distinct NTT-friendly primes of about [bits] bits, descending. *)

val primitive_root : int -> int
(** A generator of the multiplicative group mod prime [p]. *)

val root_of_unity : order:int -> int -> int
(** [root_of_unity ~order p]: an element of multiplicative order exactly
    [order] mod prime [p]. Requires [order | p - 1]. *)
