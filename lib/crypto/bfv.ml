module Rq = Rq_rns
module Bigint = Chet_bigint.Bigint

type params = {
  n : int;
  plain_modulus_bits : int;
  coeff_modulus_bits : int;
  num_coeff_primes : int;
  sigma : float;
}

let default_params ?(n = 1024) ?(plain_bits = 30) ?(bits = 30) ~num_coeff_primes () =
  { n; plain_modulus_bits = plain_bits; coeff_modulus_bits = bits; num_coeff_primes; sigma = 3.2 }

type context = {
  params : params;
  rq : Rq.ctx;  (* coeff primes ++ [special] *)
  num_coeff : int;
  special_index : int;
  t : int;  (* plaintext modulus, 1 mod 2n *)
  psi_t : int;  (* 2n-th root of unity mod t *)
  inv_n_t : int;
  slot_exp : int array;  (* 5^j mod 2n, j < n/2 *)
  q_big : Bigint.t;  (* product of coeff primes *)
  delta_mod : int array;  (* floor(Q/t) mod q_i per coeff prime *)
  big : Rq_big.ctx;  (* exact integer polynomial products *)
  big_bits : int;
}

let make_context params =
  let two_n = 2 * params.n in
  (* the plaintext prime must avoid the ciphertext chain *)
  let chain =
    Modarith.gen_ntt_primes ~bits:params.coeff_modulus_bits ~modulus_of:two_n
      ~count:(params.num_coeff_primes + 1)
  in
  let special = chain.(0) in
  let coeff = Array.sub chain 1 params.num_coeff_primes in
  let t =
    let rec pick below =
      let p = Modarith.gen_ntt_prime ~bits:params.plain_modulus_bits ~modulus_of:two_n ~below in
      if Array.exists (( = ) p) chain then pick p else p
    in
    pick (1 lsl params.plain_modulus_bits)
  in
  let q_big = Array.fold_left (fun acc p -> Bigint.mul_int acc p) Bigint.one coeff in
  let delta = Bigint.div q_big (Bigint.of_int t) in
  let slot_exp =
    let e = ref 1 in
    Array.init (params.n / 2) (fun _ ->
        let v = !e in
        e := !e * 5 mod two_n;
        v)
  in
  let log2_q = params.num_coeff_primes * params.coeff_modulus_bits in
  let big_bits = (2 * log2_q) + 2 + (2 * params.plain_modulus_bits) +
    (let rec lg n acc = if n <= 1 then acc else lg (n / 2) (acc + 1) in lg params.n 0) in
  {
    params;
    rq = Rq.make_ctx ~n:params.n ~primes:(Array.append coeff [| special |]);
    num_coeff = params.num_coeff_primes;
    special_index = params.num_coeff_primes;
    t;
    psi_t = Modarith.root_of_unity ~order:two_n t;
    inv_n_t = Modarith.inv_mod params.n t;
    slot_exp;
    q_big;
    delta_mod = Array.map (fun p -> Bigint.mod_int delta p) coeff;
    big = Rq_big.make_ctx ~n:params.n ~max_product_bits:big_bits;
    big_bits;
  }

let plain_modulus ctx = ctx.t
let slot_count ctx = ctx.params.n / 2
let coeff_basis ctx = Array.init ctx.num_coeff (fun i -> i)
let full_basis ctx = Array.init (ctx.num_coeff + 1) (fun i -> i)

type secret_key = { s : Rq.t (* full basis, NTT *) }
type kswitch_key = { pairs : (Rq.t * Rq.t) array }

type keys = {
  pk0 : Rq.t;
  pk1 : Rq.t;
  relin : kswitch_key;
  rotation : (int, kswitch_key) Hashtbl.t;
}

type plaintext = { m : int array (* coefficients mod t *); pscale : float }
type ciphertext = { c0 : Rq.t; c1 : Rq.t; scale : float }

let scale_of ct = ct.scale
let adjust_scale ct f = { ct with scale = ct.scale *. f }

(* --- sampling (as in Rns_ckks) --- *)

let sample_uniform_ntt ctx rng basis =
  let primes = Rq.ctx_primes ctx.rq in
  let comps = Array.map (fun i -> Sampling.uniform_poly rng ~modulus:primes.(i) ctx.params.n) basis in
  Rq.of_components ~basis ~comps ~ntt:true

let sample_gaussian ctx rng basis =
  Rq.to_ntt ctx.rq
    (Rq.of_centered_coeffs ctx.rq basis (Sampling.gaussian rng ~sigma:ctx.params.sigma ctx.params.n))

let sample_ternary ctx rng basis =
  Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq basis (Sampling.ternary rng ctx.params.n))

let keygen_kswitch ctx rng (sk : secret_key) (target : Rq.t) =
  let basis = full_basis ctx in
  let primes = Rq.ctx_primes ctx.rq in
  let special = primes.(ctx.special_index) in
  {
    pairs =
      Array.init ctx.num_coeff (fun i ->
          let a = sample_uniform_ntt ctx rng basis in
          let e = sample_gaussian ctx rng basis in
          let w_target = Rq.scale_component ctx.rq target ~basis_index:i ~scalar:(special mod primes.(i)) in
          let b = Rq.add ctx.rq (Rq.add ctx.rq (Rq.neg ctx.rq (Rq.mul ctx.rq a sk.s)) e) w_target in
          (b, a));
  }

let keygen ctx rng =
  let sk = { s = sample_ternary ctx rng (full_basis ctx) } in
  let top = coeff_basis ctx in
  let s_top = Rq.subset sk.s top in
  let a = sample_uniform_ntt ctx rng top in
  let e = sample_gaussian ctx rng top in
  let pk0 = Rq.add ctx.rq (Rq.neg ctx.rq (Rq.mul ctx.rq a s_top)) e in
  let s_sq = Rq.mul ctx.rq sk.s sk.s in
  (sk, { pk0; pk1 = a; relin = keygen_kswitch ctx rng sk s_sq; rotation = Hashtbl.create 8 })

let galois_of_rotation ctx r =
  let two_n = 2 * ctx.params.n in
  let slots = ctx.params.n / 2 in
  let r = ((r mod slots) + slots) mod slots in
  let g = ref 1 in
  for _ = 1 to r do
    g := !g * 5 mod two_n
  done;
  !g

let add_rotation_key ctx rng sk keys r =
  let g = galois_of_rotation ctx r in
  if not (Hashtbl.mem keys.rotation g) then begin
    let s_g = Rq.to_ntt ctx.rq (Rq.automorphism ctx.rq (Rq.from_ntt ctx.rq sk.s) ~g) in
    Hashtbl.replace keys.rotation g (keygen_kswitch ctx rng sk s_g)
  end

(* --- batching over Z_t (powers-of-5 slot orbit, direct O(n^2)) --- *)

let encode ctx ~scale values =
  let t = ctx.t in
  let slots = slot_count ctx in
  let evals = Array.make (2 * ctx.params.n) (-1) in
  (* evaluation target per odd exponent; row 1 (exponents -5^j) stays zero *)
  Array.iteri
    (fun j e ->
      let v = if j < Array.length values then values.(j) else 0.0 in
      evals.(e) <- Modarith.reduce (int_of_float (Float.round (v *. scale))) t)
    ctx.slot_exp;
  for j = 0 to slots - 1 do
    let e = (2 * ctx.params.n) - ctx.slot_exp.(j) in
    evals.(e) <- 0
  done;
  (* m_k = n^{-1} * sum over odd e of E_e * psi^{-ek} *)
  let psi_inv = Modarith.inv_mod ctx.psi_t t in
  let m =
    Array.init ctx.params.n (fun k ->
        let acc = ref 0 in
        let w = Modarith.pow_mod psi_inv k t in
        (* iterate only the n populated odd exponents *)
        Array.iteri
          (fun j e ->
            let we = Modarith.pow_mod w e t in
            acc := Modarith.add_mod !acc (Modarith.mul_mod evals.(e) we t) t;
            ignore j)
          ctx.slot_exp;
        (* the conjugate-orbit evaluations are zero: no contribution *)
        Modarith.mul_mod !acc ctx.inv_n_t t)
  in
  { m; pscale = scale }

let decode ctx pt ~scale =
  let t = ctx.t in
  Array.map
    (fun e ->
      let psi_e = Modarith.pow_mod ctx.psi_t e t in
      let acc = ref 0 and x = ref 1 in
      for k = 0 to ctx.params.n - 1 do
        acc := Modarith.add_mod !acc (Modarith.mul_mod pt.m.(k) !x t) t;
        x := Modarith.mul_mod !x psi_e t
      done;
      let centered = if !acc > t / 2 then !acc - t else !acc in
      float_of_int centered /. scale)
    ctx.slot_exp

(* --- encryption --- *)

let delta_times ctx (m : int array) =
  let basis = coeff_basis ctx in
  let primes = Rq.ctx_primes ctx.rq in
  let comps =
    Array.map
      (fun i ->
        let p = primes.(i) and d = ctx.delta_mod.(i) in
        Array.map (fun mk -> Modarith.mul_mod (Modarith.reduce mk p) d p) m)
      basis
  in
  Rq.to_ntt ctx.rq (Rq.of_components ~basis ~comps ~ntt:false)

let encrypt ctx rng keys pt =
  let basis = coeff_basis ctx in
  let u = sample_ternary ctx rng basis in
  let e0 = sample_gaussian ctx rng basis in
  let e1 = sample_gaussian ctx rng basis in
  {
    c0 = Rq.add ctx.rq (Rq.add ctx.rq (Rq.mul ctx.rq keys.pk0 u) e0) (delta_times ctx pt.m);
    c1 = Rq.add ctx.rq (Rq.mul ctx.rq keys.pk1 u) e1;
    scale = pt.pscale;
  }

let decrypt ctx sk ct =
  let s = Rq.subset sk.s (coeff_basis ctx) in
  let u = Rq.add ctx.rq ct.c0 (Rq.mul ctx.rq ct.c1 s) in
  let coeffs = Rq.to_centered_bigint_coeffs ctx.rq (Rq.from_ntt ctx.rq u) in
  let t_big = Bigint.of_int ctx.t in
  let m =
    Array.map
      (fun c -> Bigint.to_int (Bigint.emod (Bigint.div_round (Bigint.mul c t_big) ctx.q_big) t_big))
      coeffs
  in
  { m; pscale = ct.scale }

(* --- arithmetic --- *)

let add ctx a b = { a with c0 = Rq.add ctx.rq a.c0 b.c0; c1 = Rq.add ctx.rq a.c1 b.c1 }
let sub ctx a b = { a with c0 = Rq.sub ctx.rq a.c0 b.c0; c1 = Rq.sub ctx.rq a.c1 b.c1 }

let add_plain ctx ct pt = { ct with c0 = Rq.add ctx.rq ct.c0 (delta_times ctx pt.m) }
let sub_plain ctx ct pt = { ct with c0 = Rq.sub ctx.rq ct.c0 (delta_times ctx pt.m) }

let plain_poly ctx m = Rq.to_ntt ctx.rq (Rq.of_centered_coeffs ctx.rq (coeff_basis ctx) m)

let mul_plain ctx ct pt =
  let p = plain_poly ctx pt.m in
  {
    c0 = Rq.mul ctx.rq ct.c0 p;
    c1 = Rq.mul ctx.rq ct.c1 p;
    scale = ct.scale *. pt.pscale;
  }

let mul_scalar ctx ct k =
  { ct with c0 = Rq.mul_scalar ctx.rq ct.c0 k; c1 = Rq.mul_scalar ctx.rq ct.c1 k }

let keyswitch ctx (d : Rq.t) (key : kswitch_key) =
  let d = Rq.from_ntt ctx.rq d in
  let kb = full_basis ctx in
  let primes = Rq.ctx_primes ctx.rq in
  let acc0 = ref (Rq.to_ntt ctx.rq (Rq.zero ctx.rq kb)) in
  let acc1 = ref !acc0 in
  for i = 0 to ctx.num_coeff - 1 do
    let digit = Rq.component d ~basis_index:i in
    let comps = Array.map (fun j -> Array.map (fun v -> v mod primes.(j)) digit) kb in
    let digit_poly = Rq.to_ntt ctx.rq (Rq.of_components ~basis:kb ~comps ~ntt:false) in
    let b_i, a_i = key.pairs.(i) in
    acc0 := Rq.add ctx.rq !acc0 (Rq.mul ctx.rq digit_poly b_i);
    acc1 := Rq.add ctx.rq !acc1 (Rq.mul ctx.rq digit_poly a_i)
  done;
  let down u = Rq.to_ntt ctx.rq (Rq.drop_last ctx.rq (Rq.from_ntt ctx.rq u) ~rounded:true) in
  (down !acc0, down !acc1)

let mul ctx keys a b =
  (* exact integer tensor product, scaled by t/Q with rounding *)
  let centered c = Rq.to_centered_bigint_coeffs ctx.rq (Rq.from_ntt ctx.rq c) in
  let a0 = centered a.c0 and a1 = centered a.c1 in
  let b0 = centered b.c0 and b1 = centered b.c1 in
  let logq = ctx.big_bits in
  let lift x = Rq_big.of_bigint_coeffs ctx.big logq x in
  let prod x y = Rq_big.to_centered_bigint_coeffs ctx.big (Rq_big.mul ctx.big (lift x) (lift y)) in
  let t_big = Bigint.of_int ctx.t in
  let scale_down poly =
    Rq.to_ntt ctx.rq
      (Rq.of_bigint_coeffs ctx.rq (coeff_basis ctx)
         (Array.map (fun c -> Bigint.div_round (Bigint.mul c t_big) ctx.q_big) poly))
  in
  let d0 = scale_down (prod a0 b0) in
  let d1 =
    scale_down (Array.map2 Bigint.add (prod a0 b1) (prod a1 b0))
  in
  let d2 = scale_down (prod a1 b1) in
  let k0, k1 = keyswitch ctx d2 keys.relin in
  { c0 = Rq.add ctx.rq d0 k0; c1 = Rq.add ctx.rq d1 k1; scale = a.scale *. b.scale }

let rotate ctx keys ct r =
  let slots = slot_count ctx in
  let r = ((r mod slots) + slots) mod slots in
  if r = 0 then ct
  else begin
    let g = galois_of_rotation ctx r in
    let key =
      match Hashtbl.find_opt keys.rotation g with
      | Some k -> k
      | None ->
          Chet_herr.Herr.raise_err ~backend:"bfv" ~op:"rotate"
            (Chet_herr.Herr.Missing_rotation_key { amount = r })
    in
    let c0 = Rq.automorphism ctx.rq (Rq.from_ntt ctx.rq ct.c0) ~g in
    let c1 = Rq.automorphism ctx.rq (Rq.from_ntt ctx.rq ct.c1) ~g in
    let k0, k1 = keyswitch ctx (Rq.to_ntt ctx.rq c1) key in
    { ct with c0 = Rq.add ctx.rq (Rq.to_ntt ctx.rq c0) k0; c1 = k1 }
  end
