(* The unified polynomial-ring interface (DESIGN.md §15).

   Two ring representations implement this signature:
   - {!Rq_rns}: double-CRT (RNS residues per word-sized prime, NTT form for
     products) — the representation behind the SEAL-style backend;
   - {!Rq_big}: single big-integer modulus [2^logq] with CRT/NTT products —
     the HEAAN-style backend.

   The [mode] type is what parameterises an element's modulus within a
   context: a basis of prime indices for RNS, a bit-width for the
   power-of-two ring. Scheme layers ([Rns_ckks], [Big_ckks]) and everything
   above them program against this shape, so the storage representation
   (boxed int arrays vs unboxed Bigarray buffers) never leaks past
   lib/crypto. Conformance of both instances is checked in {!Rq_conform}. *)

module Bigint = Chet_bigint.Bigint

module type S = sig
  type ctx
  type mode
  (** What selects an element's modulus inside a context: a residue basis
      (int array of prime indices) for RNS, a modulus bit-width for the
      big-integer ring. *)

  type t

  val n : ctx -> int
  val mode_of : t -> mode
  val zero : ctx -> mode -> t
  val copy : t -> t
  val of_centered_coeffs : ctx -> mode -> int array -> t
  val of_bigint_coeffs : ctx -> mode -> Bigint.t array -> t
  val to_bigint_coeffs : ctx -> t -> Bigint.t array
  val to_centered_bigint_coeffs : ctx -> t -> Bigint.t array
  val modulus : ctx -> mode -> Bigint.t

  val to_eval : ctx -> t -> t
  (** Move to the evaluation (NTT/pointwise) domain; the identity for
      representations whose products do not expose a transform domain. *)

  val from_eval : ctx -> t -> t
  val add : ctx -> t -> t -> t
  val sub : ctx -> t -> t -> t
  val neg : ctx -> t -> t
  val mul : ctx -> t -> t -> t
  val mul_scalar : ctx -> t -> int -> t
  val automorphism : ctx -> t -> g:int -> t

  val rescale : ctx -> t -> divisor:int -> t
  (** Divide by [divisor] with rounding, shrinking the modulus by the same
      factor. RNS: [divisor] must be a product of trailing basis primes;
      big ring: a power of two. *)

  val mod_down : ctx -> t -> mode -> t
  (** Forget modulus down to a smaller [mode] (no rounding). *)

  val equal : t -> t -> bool
  val to_bytes : ctx -> t -> string
  val of_bytes : ctx -> string -> t
end

(* --- the fast-ring toggle ---

   [true] selects the Bigarray fast kernels (Shoup / lazy-window
   NTT); [false] selects the schoolbook scalar reference path, kept as the
   bit-identical oracle behind [--no-fast-ring]. An atomic so serve worker
   domains observe a consistent value; flipped only at process start-up. *)

let fast = Atomic.make true
let set_fast_ring b = Atomic.set fast b
let fast_ring_enabled () = Atomic.get fast
