(* Negacyclic NTT with psi-power tables in bit-reversed order (the scheme of
   Longa & Naehrig, as implemented in SEAL): the twist by powers of the 2n-th
   root psi is fused into the butterflies, so forward/inverse are single
   passes with no separate pre/post scaling. *)

(* Fast-path companion tables: the same psi powers in unboxed buffers plus
   their Shoup words. Built only for primes p <= 2^30, where the lazy
   [0, 2p) representation stays below the Shoup operand bound of 2^31. *)
type fast = {
  fw : Rvec.buf; (* psi_rev *)
  fw_sh : Rvec.buf;
  fi : Rvec.buf; (* psi_inv_rev *)
  fi_sh : Rvec.buf;
  f_ninv : int;
  f_ninv_sh : int;
}

type table = {
  n : int;
  prime : int;
  psi_rev : int array; (* psi^bitrev(i), i < n *)
  psi_inv_rev : int array;
  n_inv : int;
  fast : fast option;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let bit_reverse x bits =
  let r = ref 0 in
  for i = 0 to bits - 1 do
    if (x lsr i) land 1 = 1 then r := !r lor (1 lsl (bits - 1 - i))
  done;
  !r

let log2 n =
  let rec loop n acc = if n = 1 then acc else loop (n lsr 1) (acc + 1) in
  loop n 0

let make_table ~n ~prime =
  if not (is_pow2 n) then invalid_arg "Ntt.make_table: n must be a power of two";
  if (prime - 1) mod (2 * n) <> 0 then invalid_arg "Ntt.make_table: prime must be 1 mod 2n";
  let psi = Modarith.root_of_unity ~order:(2 * n) prime in
  let psi_inv = Modarith.inv_mod psi prime in
  let bits = log2 n in
  let powers root =
    let tbl = Array.make n 1 in
    let cur = ref 1 in
    let linear = Array.make n 1 in
    for i = 1 to n - 1 do
      cur := Modarith.mul_mod !cur root prime;
      linear.(i) <- !cur
    done;
    for i = 0 to n - 1 do
      tbl.(i) <- linear.(bit_reverse i bits)
    done;
    tbl
  in
  let psi_rev = powers psi in
  let psi_inv_rev = powers psi_inv in
  let n_inv = Modarith.inv_mod n prime in
  let fast =
    if prime > 1 lsl 30 then None
    else begin
      let with_shoup src =
        let b = Rvec.of_int_array src in
        let sh = Rvec.create n in
        for i = 0 to n - 1 do
          Rvec.set sh i (Modarith.shoup src.(i) prime)
        done;
        (b, sh)
      in
      let fw, fw_sh = with_shoup psi_rev in
      let fi, fi_sh = with_shoup psi_inv_rev in
      Some { fw; fw_sh; fi; fi_sh; f_ninv = n_inv; f_ninv_sh = Modarith.shoup n_inv prime }
    end
  in
  { n; prime; psi_rev; psi_inv_rev; n_inv; fast }

let n t = t.n
let prime t = t.prime
let has_fast t = t.fast <> None

let forward t a =
  let p = t.prime and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.forward: wrong length";
  let t_len = ref n in
  let m = ref 1 in
  while !m < n do
    t_len := !t_len lsr 1;
    for i = 0 to !m - 1 do
      let j1 = 2 * i * !t_len in
      let s = t.psi_rev.(!m + i) in
      for j = j1 to j1 + !t_len - 1 do
        let u = a.(j) in
        let v = a.(j + !t_len) * s mod p in
        let sum = u + v in
        a.(j) <- (if sum >= p then sum - p else sum);
        let d = u - v in
        a.(j + !t_len) <- (if d < 0 then d + p else d)
      done
    done;
    m := !m lsl 1
  done

let inverse t a =
  let p = t.prime and n = t.n in
  if Array.length a <> n then invalid_arg "Ntt.inverse: wrong length";
  let t_len = ref 1 in
  let m = ref n in
  while !m > 1 do
    let j1 = ref 0 in
    let h = !m lsr 1 in
    for i = 0 to h - 1 do
      let s = t.psi_inv_rev.(h + i) in
      for j = !j1 to !j1 + !t_len - 1 do
        let u = a.(j) in
        let v = a.(j + !t_len) in
        let sum = u + v in
        a.(j) <- (if sum >= p then sum - p else sum);
        let d = u - v in
        let d = if d < 0 then d + p else d in
        a.(j + !t_len) <- d * s mod p
      done;
      j1 := !j1 + (2 * !t_len)
    done;
    t_len := !t_len lsl 1;
    m := h
  done;
  for j = 0 to n - 1 do
    a.(j) <- a.(j) * t.n_inv mod p
  done

(* --- fast path: cache-blocked butterflies over unboxed buffers ---

   Same butterfly network and twiddle tables as the scalar loops above, so
   results are bit-identical; only the traversal order and the reduction
   strategy differ. The iterative loops stream the whole array once per
   level (log n passes); here each transform recurses down the butterfly
   tree until a subtree fits in L1 ([leaf_len] words), then finishes that
   subtree with the iterative schedule while it is cache-hot. Twiddle
   indexing: tree node [mi] (root 1, children [2mi], [2mi+1]) uses
   psi_rev.(mi) — the iterative stage-[m] group-[i] index [m + i] is
   exactly the node id — and within a leaf at node [mi], local stage [m']
   group [i'] uses index [mi * m' + i'].

   Values between levels live in the lazy window [0, 2p): one branchless
   fold per operand replaces the two exact reductions of the scalar path,
   and a final canonicalisation pass restores [0, p). (Harvey's wider
   [0, 4p) window would push operands past the 2^31 Shoup bound for our
   30-bit primes.) *)

let leaf_len = 1024 (* 8 KB of residues: comfortably inside L1 *)

(* Concrete-typed wrappers so the primitive inlines as a word load/store
   (see the note in rvec.ml: an eta-reduced alias goes through the generic
   bigarray stub). *)
let[@inline] uget (b : Rvec.buf) i : int = Bigarray.Array1.unsafe_get b i
let[@inline] uset (b : Rvec.buf) i (v : int) = Bigarray.Array1.unsafe_set b i v

let forward_fast (f : fast) p (a : Rvec.buf) n =
  let w = f.fw and wsh = f.fw_sh in
  (* butterflies pairing [base+j] with [base+h+j]; inputs/outputs [0, 2p) *)
  let row base h s ssh =
    for j = base to base + h - 1 do
      let u = uget a j and x = uget a (j + h) in
      let u =
        let d = u - p in
        d + (p land (d asr 62))
      in
      let t =
        let q = (ssh * x) lsr 31 in
        let r = (s * x) - (q * p) - p in
        r + (p land (r asr 62))
      in
      uset a j (u + t);
      uset a (j + h) (u - t + p)
    done
  in
  let rec node base len mi =
    if len <= leaf_len then begin
      let m' = ref 1 and t = ref (len lsr 1) in
      while !t >= 1 do
        let idx0 = mi * !m' in
        for i = 0 to !m' - 1 do
          row (base + (2 * i * !t)) !t (uget w (idx0 + i)) (uget wsh (idx0 + i))
        done;
        m' := !m' lsl 1;
        t := !t lsr 1
      done
    end
    else begin
      let h = len lsr 1 in
      row base h (uget w mi) (uget wsh mi);
      node base h (2 * mi);
      node (base + h) h ((2 * mi) + 1)
    end
  in
  node 0 n 1;
  for j = 0 to n - 1 do
    let d = uget a j - p in
    uset a j (d + (p land (d asr 62)))
  done

let inverse_fast (f : fast) p (a : Rvec.buf) n =
  let w = f.fi and wsh = f.fi_sh in
  let p2 = 2 * p in
  let row base h s ssh =
    for j = base to base + h - 1 do
      let u = uget a j and v = uget a (j + h) in
      let s0 = u + v - p2 in
      uset a j (s0 + (p2 land (s0 asr 62)));
      let dd = u - v + p2 in
      let dd =
        let d = dd - p2 in
        d + (p2 land (d asr 62))
      in
      let q = (ssh * dd) lsr 31 in
      uset a (j + h) ((s * dd) - (q * p))
    done
  in
  let rec node base len mi =
    if len <= leaf_len then begin
      let t = ref 1 and hh = ref (len lsr 1) in
      while !hh >= 1 do
        let idx0 = mi * !hh in
        for i = 0 to !hh - 1 do
          row (base + (2 * i * !t)) !t (uget w (idx0 + i)) (uget wsh (idx0 + i))
        done;
        t := !t lsl 1;
        hh := !hh lsr 1
      done
    end
    else begin
      let h = len lsr 1 in
      node base h (2 * mi);
      node (base + h) h ((2 * mi) + 1);
      row base h (uget w mi) (uget wsh mi)
    end
  in
  node 0 n 1;
  let ninv = f.f_ninv and ninv_sh = f.f_ninv_sh in
  for j = 0 to n - 1 do
    let x = uget a j in
    let q = (ninv_sh * x) lsr 31 in
    let r = (ninv * x) - (q * p) - p in
    uset a j (r + (p land (r asr 62)))
  done

(* Buffer entry points. The scalar loops above remain the reference: when
   the table has no fast companion (prime > 2^30) or the fast ring is
   toggled off, the buffer is bounced through an int array and transformed
   by the exact schoolbook path. *)

let forward_buf t (buf : Rvec.buf) =
  if Rvec.length buf <> t.n then invalid_arg "Ntt.forward_buf: wrong length";
  match t.fast with
  | Some f when Rq.fast_ring_enabled () -> forward_fast f t.prime buf t.n
  | _ ->
      let a = Rvec.to_int_array buf in
      forward t a;
      Rvec.blit_from_array a buf

let inverse_buf t (buf : Rvec.buf) =
  if Rvec.length buf <> t.n then invalid_arg "Ntt.inverse_buf: wrong length";
  match t.fast with
  | Some f when Rq.fast_ring_enabled () -> inverse_fast f t.prime buf t.n
  | _ ->
      let a = Rvec.to_int_array buf in
      inverse t a;
      Rvec.blit_from_array a buf

let pointwise_mul t a b =
  let p = t.prime in
  Array.init t.n (fun i -> a.(i) * b.(i) mod p)

let negacyclic_mul t a b =
  let fa = Array.copy a and fb = Array.copy b in
  forward t fa;
  forward t fb;
  let r = pointwise_mul t fa fb in
  inverse t r;
  r
