(** Binary serialisation for the client/server protocol of Figure 3: the
    client ships an encrypted image and public evaluation keys to the server
    and receives an encrypted prediction back.

    The format is a simple length-prefixed little-endian encoding with a
    magic tag per payload kind — enough to make the loopback protocol real
    (and testable), not a standardised wire format. *)

module Bigint = Chet_bigint.Bigint

type writer
type reader

exception Corrupt of string

val writer : unit -> writer
val contents : writer -> string
val reader : string -> reader
val reader_eof : reader -> bool

(** {1 Primitives} *)

val write_int : writer -> int -> unit
val read_int : reader -> int
val write_float : writer -> float -> unit
val read_float : reader -> float
val write_string : writer -> string -> unit
val read_string : reader -> string
val write_int_array : writer -> int array -> unit
val read_int_array : reader -> int array
val write_float_array : writer -> float array -> unit
val read_float_array : reader -> float array
val write_bigint : writer -> Bigint.t -> unit
val read_bigint : reader -> Bigint.t
val write_bigint_array : writer -> Bigint.t array -> unit
val read_bigint_array : reader -> Bigint.t array

val write_raw_int64 : writer -> int64 -> unit
val read_raw_int64 : reader -> int64
(** Full-width 64-bit values (checksums). [write_int]/[read_int] go through
    OCaml's 63-bit [int] and would silently fold the top bit of an FNV-1a-64
    digest; manifests store their per-file hashes through these instead. *)

(** {1 Tagged payloads} *)

val write_tag : writer -> string -> unit
(** 4-character payload tag. *)

val expect_tag : reader -> string -> unit
(** @raise Corrupt if the next tag differs. *)

(** {1 Checksummed frames}

    Tagged payloads are wrapped in an integrity frame:
    [tag | body length | FNV-1a-64 of body | body]. The checksum is verified
    {e before} the body is parsed, so a flipped bit or truncated transmission
    is rejected at the frame boundary rather than surfacing as a
    structurally-valid-but-garbage ciphertext. *)

val fnv1a64 : string -> pos:int -> len:int -> int64
(** The frame checksum (FNV-1a, 64-bit) over [s.[pos .. pos+len-1]]. *)

val write_frame : writer -> string -> (writer -> unit) -> unit
(** [write_frame w tag body] serialises [body] into a fresh buffer and emits
    the framed payload. *)

val read_frame : reader -> string -> (reader -> 'a) -> 'a
(** [read_frame r tag payload] checks the tag, length and checksum, then runs
    [payload]; the parser must consume exactly the framed length.
    @raise Corrupt on any integrity violation. The message always names the
    frame tag (e.g. ["RKY2: checksum mismatch"]), so a rejection escaping a
    multi-payload protocol identifies which wire object was mangled. *)

val read_frame_prefix : reader -> string -> (reader -> 'a) -> 'a
(** Like {!read_frame}, but the parser may consume only a prefix of the
    body; the (already checksummed) remainder is skipped. For peeking at a
    frame's leading fields without parsing the whole payload. *)

(** {1 RNS-CKKS ciphertexts} *)

val write_rns_ciphertext : writer -> Rq_rns.ctx -> Rns_ckks.ciphertext -> unit
val read_rns_ciphertext : reader -> Rq_rns.ctx -> Rns_ckks.ciphertext

(** {1 RNS-CKKS public evaluation material}

    The full key bundle the client ships to the server: public key,
    relinearisation key, and the compiler-selected rotation keys. *)

val write_rns_keys : writer -> Rq_rns.ctx -> Rns_ckks.keys -> unit
val read_rns_keys : reader -> Rq_rns.ctx -> Rns_ckks.keys

(** {1 CKKS (power-of-two) ciphertexts} *)

val write_big_ciphertext : writer -> Big_ckks.ciphertext -> unit
val read_big_ciphertext : reader -> Big_ckks.ciphertext

(** {1 Networked serving frames (DESIGN.md §12)}

    The Figure 3 client/server protocol on sockets: [REQ1] carries one
    inference request, [RSP1] its answer (a tensor or the full typed
    {!Chet_herr.Herr.error} taxonomy, round-tripped bijectively), [HLTH]
    the supervisor's health/control channel. Same checksummed frame
    discipline as the ciphertext payloads: every mangled transmission is a
    typed [Corrupt] at the frame boundary. *)

module Herr = Chet_herr.Herr

val wire_version : int

type wire_request = {
  rq_id : int;
      (** client-assigned request id: the idempotency key the shard-side
          dedupe cache and the [CNCL] cancel frame are keyed by *)
  rq_seed : int;  (** drives the shard's per-request encryption randomness *)
  rq_hedge : int;
      (** hedge generation: [0] = the original send, [k] = the k-th
          duplicate launched after the hedge delay. Same id + different
          generation is the same logical request. *)
  rq_deadline_ms : float;
  rq_shape : int array;
  rq_image : float array;
}

type wire_cancel = {
  cn_id : int;  (** request id (the client-assigned [rq_id]) to cancel *)
  cn_reason : string;
}

type wire_response = {
  rs_id : int;
  rs_shard : int;  (** shard that answered; [-1] = the front end itself *)
  rs_served_by : string;
  rs_degraded : bool;
  rs_attempts : int;
  rs_margin_bits : float;
      (** sentinel margin of the answer's verified run; [nan] = the serving
          deployment ran without a sentinel lane (DESIGN.md §16) *)
  rs_sentinel : float array;
      (** decrypted sentinel twin lane, [[||]] when unverified — shipped so
          the client can re-verify integrity independently of the shard's
          own claim *)
  rs_result : (int array * float array, Herr.error * Herr.context) result;
}

type shard_report = {
  hs_shard : int;
  hs_pid : int;
  hs_up : bool;
  hs_restarts : int;
  hs_last_error : string;  (** [""] when healthy *)
}

type wire_health =
  | Health_ping
  | Health_kill of int  (** supervisor kill endpoint: SIGKILL this shard *)
  | Health_report of { hr_uptime_s : float; hr_shards : shard_report list }
  | Health_ack of { ha_ok : bool; ha_detail : string }
  | Health_selftest
      (** run a sentinel-only probe inference locally and ack whether its
          lane verified — how the supervisor confirms a suspect shard really
          corrupts results before quarantining it (DESIGN.md §16) *)

val write_herr_error : writer -> Herr.error -> unit
val read_herr_error : reader -> Herr.error
val write_herr_context : writer -> Herr.context -> unit
val read_herr_context : reader -> Herr.context

val write_request : writer -> wire_request -> unit
val read_request : reader -> wire_request
(** @raise Corrupt on integrity or schema damage — including a tensor whose
    shape and data length disagree, which would otherwise become an
    out-of-bounds index deep in the runtime. *)

val write_response : writer -> wire_response -> unit
val read_response : reader -> wire_response
val write_health : writer -> wire_health -> unit
val read_health : reader -> wire_health

val write_cancel : writer -> wire_cancel -> unit

val read_cancel : reader -> wire_cancel
(** [CNCL] control frame (DESIGN.md §13): trips the cancel token of the
    in-flight request carrying this id. Answered with an HLTH [Health_ack]
    whose [ha_ok] says whether the request was found in flight. *)
