module Bigint = Chet_bigint.Bigint

type writer = Buffer.t
type reader = { data : string; mutable pos : int }

exception Corrupt of string

let writer () = Buffer.create 4096
let contents w = Buffer.contents w
let reader data = { data; pos = 0 }
let reader_eof r = r.pos >= String.length r.data

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated payload")

let write_int w v = Buffer.add_int64_le w (Int64.of_int v)

let read_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_float w f = Buffer.add_int64_le w (Int64.bits_of_float f)

let read_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_string w s =
  write_int w (String.length s);
  Buffer.add_string w s

let read_string r =
  let len = read_int r in
  if len < 0 || len > String.length r.data - r.pos then raise (Corrupt "bad string length");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let write_int_array w a =
  write_int w (Array.length a);
  Array.iter (write_int w) a

let read_int_array r =
  let len = read_int r in
  if len < 0 || len > (String.length r.data - r.pos) / 8 then raise (Corrupt "bad array length");
  Array.init len (fun _ -> read_int r)

let write_float_array w a =
  write_int w (Array.length a);
  Array.iter (write_float w) a

let read_float_array r =
  let len = read_int r in
  if len < 0 || len > (String.length r.data - r.pos) / 8 then raise (Corrupt "bad array length");
  Array.init len (fun _ -> read_float r)

let write_bigint w v = write_string w (Bigint.to_string v)

let read_bigint r =
  let s = read_string r in
  try Bigint.of_string s with Invalid_argument _ -> raise (Corrupt "bad bigint")

let write_bigint_array w a =
  write_int w (Array.length a);
  Array.iter (write_bigint w) a

let read_bigint_array r =
  let len = read_int r in
  if len < 0 || len > String.length r.data - r.pos then raise (Corrupt "bad array length");
  Array.init len (fun _ -> read_bigint r)

let write_raw_int64 w v = Buffer.add_int64_le w v

let read_raw_int64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let write_tag w tag =
  assert (String.length tag = 4);
  Buffer.add_string w tag

let expect_tag r tag =
  need r 4;
  let got = String.sub r.data r.pos 4 in
  r.pos <- r.pos + 4;
  if got <> tag then raise (Corrupt (Printf.sprintf "expected %s payload, found %s" tag got))

(* --- checksummed frames ---

   Every tagged payload is wrapped in a frame: [tag | length | FNV-1a-64 of
   the body | body].  The checksum is verified BEFORE the body is parsed, so
   a flipped bit or a truncated transmission surfaces as a typed [Corrupt]
   at the frame boundary instead of as a structurally-valid-but-garbage
   ciphertext deeper in the protocol. *)

let fnv1a64 s ~pos ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) 0x100000001b3L
  done;
  !h

let read_hash r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let write_frame w tag body =
  write_tag w tag;
  let b = Buffer.create 1024 in
  body b;
  let payload = Buffer.contents b in
  write_int w (String.length payload);
  Buffer.add_int64_le w (fnv1a64 payload ~pos:0 ~len:(String.length payload));
  Buffer.add_string w payload

(* Frame-boundary failures are tagged with the frame kind ("RKY2: checksum
   mismatch"), so a [Corrupt] escaping a multi-payload protocol still says
   *which* wire object (ciphertext, key bundle, relin frame) was mangled —
   the Corrupt_ciphertext-family contract the fuzz tests assert. *)
let contains_tag msg tag =
  let n = String.length msg and k = String.length tag in
  let rec scan i = i + k <= n && (String.sub msg i k = tag || scan (i + 1)) in
  scan 0

let corrupt_in tag msg = raise (Corrupt (if contains_tag msg tag then msg else tag ^ ": " ^ msg))

(* The length sits in the frame header, OUTSIDE checksum coverage, so it must
   be validated at full 64-bit width: [read_int] narrows through
   [Int64.to_int], which would silently drop a flipped top bit and let a
   mangled header parse as if pristine. *)
let read_frame_len r =
  let len64 = read_raw_int64 r in
  if Int64.compare len64 0L < 0 || Int64.compare len64 (Int64.of_int max_int) > 0 then
    raise (Corrupt "bad frame length");
  Int64.to_int len64

let read_frame r tag payload =
  (try expect_tag r tag with Corrupt msg -> corrupt_in tag msg);
  (try
     let len = read_frame_len r in
     if len > String.length r.data - r.pos - 8 then raise (Corrupt "truncated frame");
     let h = read_hash r in
     if not (Int64.equal h (fnv1a64 r.data ~pos:r.pos ~len)) then raise (Corrupt "checksum mismatch");
     let stop = r.pos + len in
     let v = payload r in
     if r.pos <> stop then raise (Corrupt "frame length mismatch");
     v
   with Corrupt msg -> corrupt_in tag msg)

let read_frame_prefix r tag payload =
  (try expect_tag r tag with Corrupt msg -> corrupt_in tag msg);
  (try
     let len = read_frame_len r in
     if len > String.length r.data - r.pos - 8 then raise (Corrupt "truncated frame");
     let h = read_hash r in
     if not (Int64.equal h (fnv1a64 r.data ~pos:r.pos ~len)) then raise (Corrupt "checksum mismatch");
     let stop = r.pos + len in
     let v = payload r in
     if r.pos > stop then raise (Corrupt "frame length mismatch");
     r.pos <- stop;
     v
   with Corrupt msg -> corrupt_in tag msg)

(* --- RNS-CKKS --- *)

let write_rq w (p : Rq_rns.t) =
  write_int_array w (Rq_rns.basis p);
  write_int w (if Rq_rns.is_ntt p then 1 else 0);
  Array.iter (fun i -> write_int_array w (Rq_rns.component p ~basis_index:i)) (Rq_rns.basis p)

let read_rq r ctx =
  let basis = read_int_array r in
  let nprimes = Array.length (Rq_rns.ctx_primes ctx) in
  Array.iter (fun i -> if i < 0 || i >= nprimes then raise (Corrupt "bad basis index")) basis;
  let ntt = read_int r = 1 in
  let n = Rq_rns.ctx_n ctx in
  let comps =
    Array.map
      (fun i ->
        let c = read_int_array r in
        if Array.length c <> n then raise (Corrupt "bad component length");
        let p = (Rq_rns.ctx_primes ctx).(i) in
        Array.iter (fun v -> if v < 0 || v >= p then raise (Corrupt "residue out of range")) c;
        c)
      basis
  in
  Rq_rns.of_components ~basis ~comps ~ntt

let write_rns_ciphertext w ctx (ct : Rns_ckks.ciphertext) =
  ignore ctx;
  write_frame w "RCT2" (fun w ->
      write_int w ct.Rns_ckks.level;
      write_float w ct.Rns_ckks.scale;
      write_rq w ct.Rns_ckks.c0;
      write_rq w ct.Rns_ckks.c1)

let read_rns_ciphertext r ctx =
  read_frame r "RCT2" (fun r ->
      let level = read_int r in
      let scale = read_float r in
      let c0 = read_rq r ctx in
      let c1 = read_rq r ctx in
      { Rns_ckks.c0; c1; level; scale })

let write_kswitch w k =
  let pairs = Rns_ckks.kswitch_pairs k in
  write_int w (Array.length pairs);
  Array.iter
    (fun (b, a) ->
      write_rq w b;
      write_rq w a)
    pairs

let read_kswitch r ctx =
  let len = read_int r in
  if len < 0 || len > 4096 then raise (Corrupt "bad key pair count");
  Rns_ckks.kswitch_of_pairs
    (Array.init len (fun _ ->
         let b = read_rq r ctx in
         let a = read_rq r ctx in
         (b, a)))

let write_rns_keys w ctx (keys : Rns_ckks.keys) =
  ignore ctx;
  write_frame w "RKY2" (fun w ->
      let pk0, pk1 = Rns_ckks.public_key_parts keys.Rns_ckks.public in
      write_rq w pk0;
      write_rq w pk1;
      write_kswitch w keys.Rns_ckks.relin;
      write_int w (Hashtbl.length keys.Rns_ckks.rotation);
      Hashtbl.iter
        (fun galois k ->
          write_int w galois;
          write_kswitch w k)
        keys.Rns_ckks.rotation)

let read_rns_keys r ctx =
  read_frame r "RKY2" (fun r ->
      let pk0 = read_rq r ctx in
      let pk1 = read_rq r ctx in
      let relin = read_kswitch r ctx in
      let count = read_int r in
      if count < 0 || count > 65536 then raise (Corrupt "bad rotation key count");
      let rotation = Hashtbl.create (Stdlib.max 1 count) in
      for _ = 1 to count do
        let galois = read_int r in
        Hashtbl.replace rotation galois (read_kswitch r ctx)
      done;
      { Rns_ckks.public = Rns_ckks.public_key_of_parts (pk0, pk1); relin; rotation })

(* --- power-of-two CKKS --- *)

let write_big_ciphertext w (ct : Big_ckks.ciphertext) =
  write_frame w "BCT2" (fun w ->
      write_int w (Big_ckks.logq_of ct);
      write_float w ct.Big_ckks.scale;
      write_bigint_array w (Rq_big.coeffs ct.Big_ckks.c0);
      write_bigint_array w (Rq_big.coeffs ct.Big_ckks.c1))

let read_big_ciphertext r =
  read_frame r "BCT2" (fun r ->
      let logq = read_int r in
      let scale = read_float r in
      let c0 = read_bigint_array r in
      let c1 = read_bigint_array r in
      if Array.length c0 <> Array.length c1 then raise (Corrupt "component length mismatch");
      match Rq_big.of_reduced_coeffs ~logq c0, Rq_big.of_reduced_coeffs ~logq c1 with
      | c0, c1 -> { Big_ckks.c0; c1; scale }
      | exception Invalid_argument _ -> raise (Corrupt "big ciphertext coefficient out of range"))

(* --- networked serving frames (DESIGN.md §12) ---

   The client/server protocol of Figure 3 carried over sockets: REQ1 is one
   inference request, RSP1 its answer (a tensor, or the full typed error
   taxonomy round-tripped so the client sees the *same* [Herr.error] the
   server raised), HLTH the supervisor's health/control channel. All three
   ride the same FNV-1a checksum frame discipline as the ciphertext and key
   payloads, so a torn or bit-flipped transmission is a typed rejection at
   the frame boundary — never a hang, never garbage parsed as a tensor. *)

module Herr = Chet_herr.Herr

(* v3: RSP1 carries the sentinel lane (rs_margin_bits + rs_sentinel) and
   HLTH gains the supervisor's Health_selftest probe (DESIGN.md §16). *)
let wire_version = 3

type wire_request = {
  rq_id : int;
      (** client-assigned request id: the idempotency key the shard-side
          dedupe cache and the CNCL cancel frame are keyed by *)
  rq_seed : int;  (** drives per-request encryption randomness in the shard *)
  rq_hedge : int;
      (** hedge generation: 0 = the original send, k = the k-th duplicate
          launched after the hedge delay. Same id + different generation is
          the same logical request; the answer must be bit-identical. *)
  rq_deadline_ms : float;
  rq_shape : int array;
  rq_image : float array;
}

type wire_cancel = {
  cn_id : int;  (** request id (the client-assigned [rq_id]) to cancel *)
  cn_reason : string;
}

type wire_response = {
  rs_id : int;
  rs_shard : int;  (** shard that answered; -1 = the front end itself *)
  rs_served_by : string;
  rs_degraded : bool;
  rs_attempts : int;
  rs_margin_bits : float;
      (** measured sentinel precision headroom of this answer; NaN when the
          serving rung did not verify a sentinel lane *)
  rs_sentinel : float array;
      (** the decrypted sentinel outputs, so the receiver can re-verify the
          answer against its own clear-reference prediction independently of
          the shard's claim; [[||]] when no sentinel lane ran *)
  rs_result : (int array * float array, Herr.error * Herr.context) result;
}

type shard_report = {
  hs_shard : int;
  hs_pid : int;
  hs_up : bool;
  hs_restarts : int;
  hs_last_error : string;  (** "" when healthy *)
}

type wire_health =
  | Health_ping
  | Health_kill of int  (** supervisor kill endpoint: SIGKILL this shard *)
  | Health_report of { hr_uptime_s : float; hr_shards : shard_report list }
  | Health_ack of { ha_ok : bool; ha_detail : string }
  | Health_selftest
      (** run a sentinel-only probe inference locally and ack whether its
          lane verified — how the supervisor confirms a suspect shard really
          corrupts results before quarantining it (DESIGN.md §16) *)

(* Full bijective codec for the error taxonomy: the client must receive the
   same typed value the server raised, not a stringified shadow of it. *)

let write_herr_error w (e : Herr.error) =
  match e with
  | Herr.Scale_mismatch { expected; got } ->
      write_int w 0;
      write_float w expected;
      write_float w got
  | Herr.Level_mismatch { expected; got } ->
      write_int w 1;
      write_int w expected;
      write_int w got
  | Herr.Modulus_exhausted { level; requested } ->
      write_int w 2;
      write_int w level;
      write_int w requested
  | Herr.Slot_overflow { slots; requested } ->
      write_int w 3;
      write_int w slots;
      write_int w requested
  | Herr.Illegal_rescale { divisor; reason } ->
      write_int w 4;
      write_int w divisor;
      write_string w reason
  | Herr.Numeric_blowup { slot; value } ->
      write_int w 5;
      write_int w slot;
      write_float w value
  | Herr.Corrupt_ciphertext { reason } ->
      write_int w 6;
      write_string w reason
  | Herr.Shape_mismatch { expected; got } ->
      write_int w 7;
      write_string w expected;
      write_string w got
  | Herr.Missing_node { node_id } ->
      write_int w 8;
      write_int w node_id
  | Herr.Missing_rotation_key { amount } ->
      write_int w 9;
      write_int w amount
  | Herr.Invalid_op { reason } ->
      write_int w 10;
      write_string w reason
  | Herr.Overloaded { queue_depth; high_water } ->
      write_int w 11;
      write_int w queue_depth;
      write_int w high_water
  | Herr.Deadline_exceeded { budget_ms; elapsed_ms } ->
      write_int w 12;
      write_float w budget_ms;
      write_float w elapsed_ms
  | Herr.Worker_crashed { worker; reason } ->
      write_int w 13;
      write_int w worker;
      write_string w reason
  | Herr.Corrupt_bundle { path; reason } ->
      write_int w 14;
      write_string w path;
      write_string w reason
  | Herr.Corrupt_frame { frame; reason } ->
      write_int w 15;
      write_string w frame;
      write_string w reason
  | Herr.Cancelled { node_id; reason } ->
      write_int w 16;
      (match node_id with
      | None -> write_int w 0
      | Some id ->
          write_int w 1;
          write_int w id);
      write_string w reason
  | Herr.Integrity_violation { slot; expected; got } ->
      write_int w 17;
      write_int w slot;
      write_float w expected;
      write_float w got
  | Herr.Precision_exhausted { margin_bits; tolerance } ->
      write_int w 18;
      write_float w margin_bits;
      write_float w tolerance

let read_herr_error r : Herr.error =
  match read_int r with
  | 0 ->
      let expected = read_float r in
      let got = read_float r in
      Herr.Scale_mismatch { expected; got }
  | 1 ->
      let expected = read_int r in
      let got = read_int r in
      Herr.Level_mismatch { expected; got }
  | 2 ->
      let level = read_int r in
      let requested = read_int r in
      Herr.Modulus_exhausted { level; requested }
  | 3 ->
      let slots = read_int r in
      let requested = read_int r in
      Herr.Slot_overflow { slots; requested }
  | 4 ->
      let divisor = read_int r in
      let reason = read_string r in
      Herr.Illegal_rescale { divisor; reason }
  | 5 ->
      let slot = read_int r in
      let value = read_float r in
      Herr.Numeric_blowup { slot; value }
  | 6 -> Herr.Corrupt_ciphertext { reason = read_string r }
  | 7 ->
      let expected = read_string r in
      let got = read_string r in
      Herr.Shape_mismatch { expected; got }
  | 8 -> Herr.Missing_node { node_id = read_int r }
  | 9 -> Herr.Missing_rotation_key { amount = read_int r }
  | 10 -> Herr.Invalid_op { reason = read_string r }
  | 11 ->
      let queue_depth = read_int r in
      let high_water = read_int r in
      Herr.Overloaded { queue_depth; high_water }
  | 12 ->
      let budget_ms = read_float r in
      let elapsed_ms = read_float r in
      Herr.Deadline_exceeded { budget_ms; elapsed_ms }
  | 13 ->
      let worker = read_int r in
      let reason = read_string r in
      Herr.Worker_crashed { worker; reason }
  | 14 ->
      let path = read_string r in
      let reason = read_string r in
      Herr.Corrupt_bundle { path; reason }
  | 15 ->
      let frame = read_string r in
      let reason = read_string r in
      Herr.Corrupt_frame { frame; reason }
  | 16 ->
      let node_id =
        match read_int r with
        | 0 -> None
        | 1 -> Some (read_int r)
        | k -> raise (Corrupt (Printf.sprintf "bad cancel node-id flag %d" k))
      in
      let reason = read_string r in
      Herr.Cancelled { node_id; reason }
  | 17 ->
      let slot = read_int r in
      let expected = read_float r in
      let got = read_float r in
      Herr.Integrity_violation { slot; expected; got }
  | 18 ->
      let margin_bits = read_float r in
      let tolerance = read_float r in
      Herr.Precision_exhausted { margin_bits; tolerance }
  | k -> raise (Corrupt (Printf.sprintf "unknown error code %d" k))

let write_herr_context w (c : Herr.context) =
  write_string w c.Herr.op;
  write_string w c.Herr.backend;
  (match c.Herr.node_id with
  | None -> write_int w 0
  | Some id ->
      write_int w 1;
      write_int w id);
  match c.Herr.layer with
  | None -> write_int w 0
  | Some l ->
      write_int w 1;
      write_string w l

let read_herr_context r : Herr.context =
  let op = read_string r in
  let backend = read_string r in
  let node_id =
    match read_int r with
    | 0 -> None
    | 1 -> Some (read_int r)
    | k -> raise (Corrupt (Printf.sprintf "bad node-id flag %d" k))
  in
  let layer =
    match read_int r with
    | 0 -> None
    | 1 -> Some (read_string r)
    | k -> raise (Corrupt (Printf.sprintf "bad layer flag %d" k))
  in
  { Herr.op; backend; node_id; layer }

(* Tensor geometry rides as shape + flat data; the check that they agree
   happens at parse time so a mangled-but-checksum-colliding frame (or a
   malicious client) cannot make the runtime index out of bounds. *)
let write_tensor_parts w shape data =
  write_int_array w shape;
  write_float_array w data

let read_tensor_parts r =
  let shape = read_int_array r in
  if Array.length shape > 8 then raise (Corrupt "tensor rank too large");
  let numel =
    Array.fold_left
      (fun acc d ->
        if d < 0 || d > 1 lsl 24 then raise (Corrupt "bad tensor dimension");
        acc * d)
      1 shape
  in
  let data = read_float_array r in
  if Array.length data <> numel then raise (Corrupt "tensor shape/data mismatch");
  (shape, data)

let write_request w (q : wire_request) =
  write_frame w "REQ1" (fun w ->
      write_int w wire_version;
      write_int w q.rq_id;
      write_int w q.rq_seed;
      write_int w q.rq_hedge;
      write_float w q.rq_deadline_ms;
      write_tensor_parts w q.rq_shape q.rq_image)

let read_request r =
  read_frame r "REQ1" (fun r ->
      let version = read_int r in
      if version <> wire_version then
        raise (Corrupt (Printf.sprintf "unsupported wire version %d" version));
      let rq_id = read_int r in
      let rq_seed = read_int r in
      let rq_hedge = read_int r in
      (* hedge generations are tiny by construction (one duplicate per hedge
         delay); a large value is a mangled frame, not a fleet of hedges *)
      if rq_hedge < 0 || rq_hedge > 64 then raise (Corrupt "implausible hedge generation");
      let rq_deadline_ms = read_float r in
      if not (Float.is_finite rq_deadline_ms) || rq_deadline_ms < 0.0 then
        raise (Corrupt "implausible deadline");
      let rq_shape, rq_image = read_tensor_parts r in
      { rq_id; rq_seed; rq_hedge; rq_deadline_ms; rq_shape; rq_image })

(* CNCL: the control frame that cancels an in-flight request by its
   client-assigned id (DESIGN.md §13) — sent by a hedging front end to the
   losing shard, or by any client whose caller hung up. The answer is an
   HLTH [Health_ack]: ok = the request was found in flight and its token
   tripped; not-ok = already answered, never seen, or evicted. *)
let write_cancel w (c : wire_cancel) =
  write_frame w "CNCL" (fun w ->
      write_int w wire_version;
      write_int w c.cn_id;
      write_string w c.cn_reason)

let read_cancel r =
  read_frame r "CNCL" (fun r ->
      let version = read_int r in
      if version <> wire_version then
        raise (Corrupt (Printf.sprintf "unsupported wire version %d" version));
      let cn_id = read_int r in
      let cn_reason = read_string r in
      if String.length cn_reason > 4096 then raise (Corrupt "implausible cancel reason");
      { cn_id; cn_reason })

let write_response w (s : wire_response) =
  write_frame w "RSP1" (fun w ->
      write_int w wire_version;
      write_int w s.rs_id;
      write_int w s.rs_shard;
      write_string w s.rs_served_by;
      write_int w (if s.rs_degraded then 1 else 0);
      write_int w s.rs_attempts;
      write_float w s.rs_margin_bits;
      write_float_array w s.rs_sentinel;
      match s.rs_result with
      | Ok (shape, data) ->
          write_int w 0;
          write_tensor_parts w shape data
      | Error (e, c) ->
          write_int w 1;
          write_herr_error w e;
          write_herr_context w c)

let read_response r =
  read_frame r "RSP1" (fun r ->
      let version = read_int r in
      if version <> wire_version then
        raise (Corrupt (Printf.sprintf "unsupported wire version %d" version));
      let rs_id = read_int r in
      let rs_shard = read_int r in
      let rs_served_by = read_string r in
      let rs_degraded =
        match read_int r with
        | 0 -> false
        | 1 -> true
        | k -> raise (Corrupt (Printf.sprintf "bad degraded flag %d" k))
      in
      let rs_attempts = read_int r in
      let rs_margin_bits = read_float r in
      let rs_sentinel = read_float_array r in
      (* NaN is the legitimate "unverified" marker, but infinities are not a
         value [Integrity.margin_bits] can produce (it clamps to 60) *)
      if Float.abs rs_margin_bits = Float.infinity then
        raise (Corrupt "implausible sentinel margin");
      let rs_result =
        match read_int r with
        | 0 -> Ok (read_tensor_parts r)
        | 1 ->
            let e = read_herr_error r in
            let c = read_herr_context r in
            Error (e, c)
        | k -> raise (Corrupt (Printf.sprintf "bad result flag %d" k))
      in
      { rs_id; rs_shard; rs_served_by; rs_degraded; rs_attempts; rs_margin_bits; rs_sentinel;
        rs_result })

let write_health w (h : wire_health) =
  write_frame w "HLTH" (fun w ->
      write_int w wire_version;
      match h with
      | Health_ping -> write_int w 0
      | Health_kill shard ->
          write_int w 1;
          write_int w shard
      | Health_report { hr_uptime_s; hr_shards } ->
          write_int w 2;
          write_float w hr_uptime_s;
          write_int w (List.length hr_shards);
          List.iter
            (fun s ->
              write_int w s.hs_shard;
              write_int w s.hs_pid;
              write_int w (if s.hs_up then 1 else 0);
              write_int w s.hs_restarts;
              write_string w s.hs_last_error)
            hr_shards
      | Health_ack { ha_ok; ha_detail } ->
          write_int w 3;
          write_int w (if ha_ok then 1 else 0);
          write_string w ha_detail
      | Health_selftest -> write_int w 4)

let read_health r =
  read_frame r "HLTH" (fun r ->
      let version = read_int r in
      if version <> wire_version then
        raise (Corrupt (Printf.sprintf "unsupported wire version %d" version));
      match read_int r with
      | 0 -> Health_ping
      | 1 -> Health_kill (read_int r)
      | 2 ->
          let hr_uptime_s = read_float r in
          let count = read_int r in
          if count < 0 || count > 4096 then raise (Corrupt "bad shard count");
          let hr_shards =
            List.init count (fun _ ->
                let hs_shard = read_int r in
                let hs_pid = read_int r in
                let hs_up =
                  match read_int r with
                  | 0 -> false
                  | 1 -> true
                  | k -> raise (Corrupt (Printf.sprintf "bad up flag %d" k))
                in
                let hs_restarts = read_int r in
                let hs_last_error = read_string r in
                { hs_shard; hs_pid; hs_up; hs_restarts; hs_last_error })
          in
          Health_report { hr_uptime_s; hr_shards }
      | 3 ->
          let ha_ok =
            match read_int r with
            | 0 -> false
            | 1 -> true
            | k -> raise (Corrupt (Printf.sprintf "bad ack flag %d" k))
          in
          Health_ack { ha_ok; ha_detail = read_string r }
      | 4 -> Health_selftest
      | k -> raise (Corrupt (Printf.sprintf "unknown health kind %d" k)))
