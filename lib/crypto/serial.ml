module Bigint = Chet_bigint.Bigint

type writer = Buffer.t
type reader = { data : string; mutable pos : int }

exception Corrupt of string

let writer () = Buffer.create 4096
let contents w = Buffer.contents w
let reader data = { data; pos = 0 }
let reader_eof r = r.pos >= String.length r.data

let need r n =
  if r.pos + n > String.length r.data then raise (Corrupt "truncated payload")

let write_int w v = Buffer.add_int64_le w (Int64.of_int v)

let read_int r =
  need r 8;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_float w f = Buffer.add_int64_le w (Int64.bits_of_float f)

let read_float r =
  need r 8;
  let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let write_string w s =
  write_int w (String.length s);
  Buffer.add_string w s

let read_string r =
  let len = read_int r in
  if len < 0 || len > String.length r.data - r.pos then raise (Corrupt "bad string length");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let write_int_array w a =
  write_int w (Array.length a);
  Array.iter (write_int w) a

let read_int_array r =
  let len = read_int r in
  if len < 0 || len > (String.length r.data - r.pos) / 8 then raise (Corrupt "bad array length");
  Array.init len (fun _ -> read_int r)

let write_bigint w v = write_string w (Bigint.to_string v)

let read_bigint r =
  let s = read_string r in
  try Bigint.of_string s with Invalid_argument _ -> raise (Corrupt "bad bigint")

let write_bigint_array w a =
  write_int w (Array.length a);
  Array.iter (write_bigint w) a

let read_bigint_array r =
  let len = read_int r in
  if len < 0 || len > String.length r.data - r.pos then raise (Corrupt "bad array length");
  Array.init len (fun _ -> read_bigint r)

let write_raw_int64 w v = Buffer.add_int64_le w v

let read_raw_int64 r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let write_tag w tag =
  assert (String.length tag = 4);
  Buffer.add_string w tag

let expect_tag r tag =
  need r 4;
  let got = String.sub r.data r.pos 4 in
  r.pos <- r.pos + 4;
  if got <> tag then raise (Corrupt (Printf.sprintf "expected %s payload, found %s" tag got))

(* --- checksummed frames ---

   Every tagged payload is wrapped in a frame: [tag | length | FNV-1a-64 of
   the body | body].  The checksum is verified BEFORE the body is parsed, so
   a flipped bit or a truncated transmission surfaces as a typed [Corrupt]
   at the frame boundary instead of as a structurally-valid-but-garbage
   ciphertext deeper in the protocol. *)

let fnv1a64 s ~pos ~len =
  let h = ref 0xcbf29ce484222325L in
  for i = pos to pos + len - 1 do
    h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code s.[i]))) 0x100000001b3L
  done;
  !h

let read_hash r =
  need r 8;
  let v = String.get_int64_le r.data r.pos in
  r.pos <- r.pos + 8;
  v

let write_frame w tag body =
  write_tag w tag;
  let b = Buffer.create 1024 in
  body b;
  let payload = Buffer.contents b in
  write_int w (String.length payload);
  Buffer.add_int64_le w (fnv1a64 payload ~pos:0 ~len:(String.length payload));
  Buffer.add_string w payload

(* Frame-boundary failures are tagged with the frame kind ("RKY2: checksum
   mismatch"), so a [Corrupt] escaping a multi-payload protocol still says
   *which* wire object (ciphertext, key bundle, relin frame) was mangled —
   the Corrupt_ciphertext-family contract the fuzz tests assert. *)
let contains_tag msg tag =
  let n = String.length msg and k = String.length tag in
  let rec scan i = i + k <= n && (String.sub msg i k = tag || scan (i + 1)) in
  scan 0

let corrupt_in tag msg = raise (Corrupt (if contains_tag msg tag then msg else tag ^ ": " ^ msg))

let read_frame r tag payload =
  (try expect_tag r tag with Corrupt msg -> corrupt_in tag msg);
  (try
     let len = read_int r in
     if len < 0 || len > String.length r.data - r.pos - 8 then raise (Corrupt "truncated frame");
     let h = read_hash r in
     if not (Int64.equal h (fnv1a64 r.data ~pos:r.pos ~len)) then raise (Corrupt "checksum mismatch");
     let stop = r.pos + len in
     let v = payload r in
     if r.pos <> stop then raise (Corrupt "frame length mismatch");
     v
   with Corrupt msg -> corrupt_in tag msg)

let read_frame_prefix r tag payload =
  (try expect_tag r tag with Corrupt msg -> corrupt_in tag msg);
  (try
     let len = read_int r in
     if len < 0 || len > String.length r.data - r.pos - 8 then raise (Corrupt "truncated frame");
     let h = read_hash r in
     if not (Int64.equal h (fnv1a64 r.data ~pos:r.pos ~len)) then raise (Corrupt "checksum mismatch");
     let stop = r.pos + len in
     let v = payload r in
     if r.pos > stop then raise (Corrupt "frame length mismatch");
     r.pos <- stop;
     v
   with Corrupt msg -> corrupt_in tag msg)

(* --- RNS-CKKS --- *)

let write_rq w (p : Rq_rns.t) =
  write_int_array w (Rq_rns.basis p);
  write_int w (if Rq_rns.is_ntt p then 1 else 0);
  Array.iter (fun i -> write_int_array w (Rq_rns.component p ~basis_index:i)) (Rq_rns.basis p)

let read_rq r ctx =
  let basis = read_int_array r in
  let nprimes = Array.length (Rq_rns.ctx_primes ctx) in
  Array.iter (fun i -> if i < 0 || i >= nprimes then raise (Corrupt "bad basis index")) basis;
  let ntt = read_int r = 1 in
  let n = Rq_rns.ctx_n ctx in
  let comps =
    Array.map
      (fun i ->
        let c = read_int_array r in
        if Array.length c <> n then raise (Corrupt "bad component length");
        let p = (Rq_rns.ctx_primes ctx).(i) in
        Array.iter (fun v -> if v < 0 || v >= p then raise (Corrupt "residue out of range")) c;
        c)
      basis
  in
  Rq_rns.of_components ~basis ~comps ~ntt

let write_rns_ciphertext w ctx (ct : Rns_ckks.ciphertext) =
  ignore ctx;
  write_frame w "RCT2" (fun w ->
      write_int w ct.Rns_ckks.level;
      write_float w ct.Rns_ckks.scale;
      write_rq w ct.Rns_ckks.c0;
      write_rq w ct.Rns_ckks.c1)

let read_rns_ciphertext r ctx =
  read_frame r "RCT2" (fun r ->
      let level = read_int r in
      let scale = read_float r in
      let c0 = read_rq r ctx in
      let c1 = read_rq r ctx in
      { Rns_ckks.c0; c1; level; scale })

let write_kswitch w k =
  let pairs = Rns_ckks.kswitch_pairs k in
  write_int w (Array.length pairs);
  Array.iter
    (fun (b, a) ->
      write_rq w b;
      write_rq w a)
    pairs

let read_kswitch r ctx =
  let len = read_int r in
  if len < 0 || len > 4096 then raise (Corrupt "bad key pair count");
  Rns_ckks.kswitch_of_pairs
    (Array.init len (fun _ ->
         let b = read_rq r ctx in
         let a = read_rq r ctx in
         (b, a)))

let write_rns_keys w ctx (keys : Rns_ckks.keys) =
  ignore ctx;
  write_frame w "RKY2" (fun w ->
      let pk0, pk1 = Rns_ckks.public_key_parts keys.Rns_ckks.public in
      write_rq w pk0;
      write_rq w pk1;
      write_kswitch w keys.Rns_ckks.relin;
      write_int w (Hashtbl.length keys.Rns_ckks.rotation);
      Hashtbl.iter
        (fun galois k ->
          write_int w galois;
          write_kswitch w k)
        keys.Rns_ckks.rotation)

let read_rns_keys r ctx =
  read_frame r "RKY2" (fun r ->
      let pk0 = read_rq r ctx in
      let pk1 = read_rq r ctx in
      let relin = read_kswitch r ctx in
      let count = read_int r in
      if count < 0 || count > 65536 then raise (Corrupt "bad rotation key count");
      let rotation = Hashtbl.create (Stdlib.max 1 count) in
      for _ = 1 to count do
        let galois = read_int r in
        Hashtbl.replace rotation galois (read_kswitch r ctx)
      done;
      { Rns_ckks.public = Rns_ckks.public_key_of_parts (pk0, pk1); relin; rotation })

(* --- power-of-two CKKS --- *)

let write_big_ciphertext w (ct : Big_ckks.ciphertext) =
  write_frame w "BCT2" (fun w ->
      write_int w ct.Big_ckks.logq;
      write_float w ct.Big_ckks.scale;
      write_bigint_array w ct.Big_ckks.c0;
      write_bigint_array w ct.Big_ckks.c1)

let read_big_ciphertext r =
  read_frame r "BCT2" (fun r ->
      let logq = read_int r in
      let scale = read_float r in
      let c0 = read_bigint_array r in
      let c1 = read_bigint_array r in
      if Array.length c0 <> Array.length c1 then raise (Corrupt "component length mismatch");
      { Big_ckks.c0; c1; logq; scale })
