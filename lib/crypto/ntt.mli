(** Negacyclic number-theoretic transform modulo a word-sized prime.

    Multiplication of polynomials in [Z_p\[X\]/(X^n + 1)] is pointwise
    multiplication in the transform domain. The algorithm is the
    [psi]-twisted iterative Cooley–Tukey / Gentleman–Sande pair used by SEAL,
    with tables of powers of the [2n]-th root of unity in bit-reversed
    order. *)

type table

val make_table : n:int -> prime:int -> table
(** Precompute tables for size [n] (a power of two) and [prime ≡ 1 mod 2n].
    @raise Invalid_argument if the conditions do not hold. *)

val n : table -> int
val prime : table -> int

val forward : table -> int array -> unit
(** In-place forward negacyclic NTT of an array of length [n] with entries in
    [\[0, prime)]. *)

val inverse : table -> int array -> unit
(** In-place inverse; [inverse t (forward t a)] restores [a]. *)

val has_fast : table -> bool
(** Whether the table carries the fast-path companion (prime ≤ 2^30). *)

val forward_buf : table -> Rvec.buf -> unit
(** In-place forward transform of an unboxed residue buffer. With a fast
    table and {!Rq.fast_ring_enabled}, runs the cache-blocked lazy-reduction
    butterflies; otherwise bounces through the scalar reference path. Both
    produce bit-identical canonical residues. *)

val inverse_buf : table -> Rvec.buf -> unit

val pointwise_mul : table -> int array -> int array -> int array
(** Pointwise product mod [prime] (operands in transform domain). *)

val negacyclic_mul : table -> int array -> int array -> int array
(** Full negacyclic convolution of two coefficient-domain polynomials. *)
