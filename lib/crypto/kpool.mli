(** Kernel-domain pool: data-parallel fan-out of independent RNS residue
    channels across OCaml 5 domains.

    One global pool of [domains - 1] helper domains; {!run} lets the caller
    participate while helpers steal chunks through an atomic cursor, so a
    single inference never uses more than [domains] domains even when
    issued from a serve worker (no oversubscription, see DESIGN.md §15).
    Chunks write disjoint outputs determined by their index, so results are
    bit-identical for every pool width. *)

val configure : domains:int -> unit
(** Resize the pool to [max 1 domains] total domains (the caller counts as
    one; [domains - 1] helpers are spawned). Joins any previous helpers.
    Not safe to call concurrently with {!run}. *)

val domain_count : unit -> int

val run : int -> (int -> unit) -> unit
(** [run n f] executes [f 0 .. f (n-1)], possibly in parallel. Returns when
    all calls have finished. [f] must write only chunk-private state. A
    nested [run] (from inside a chunk) degrades to a sequential loop. If
    one or more chunks raise, every chunk still runs and one of the
    exceptions is re-raised in the caller. *)

type stats = { st_domains : int; st_jobs : int; st_chunks_stolen : int }

val stats : unit -> stats
(** [st_chunks_stolen] counts chunks executed by helper domains (0 when the
    pool is width 1 — everything ran in callers). *)
