(** Unboxed residue-vector kernels over [Bigarray] buffers.

    The storage kind is [Bigarray.int]: native 63-bit OCaml ints in 64-bit
    memory words, which (unlike the [int64] kind) read and write without
    boxing. All kernels assume word-sized prime moduli [p < 2^30] and
    canonical residues in [\[0, p)] at rest; lazy [\[0, 2p)] intermediates
    are internal only. Fast kernels (Shoup for one fixed operand; hardware
    [mod] where both operands vary) are bit-identical to their [_ref]
    schoolbook twins — see DESIGN.md §15 for the error analysis. *)

type buf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> buf
(** Uninitialised buffer of the given length. *)

val zeroed : int -> buf
val length : buf -> int
val get : buf -> int -> int
val set : buf -> int -> int -> unit
val fill : buf -> int -> unit
val blit : buf -> buf -> unit
val copy : buf -> buf
val of_int_array : int array -> buf
val to_int_array : buf -> int array
val blit_from_array : int array -> buf -> unit
val blit_to_array : buf -> int array -> unit
val equal : buf -> buf -> bool

(** {1 Additive kernels} — branchless conditional-subtract reduction. All
    [_into] kernels write every element of their destination; aliasing
    [dst] with an operand is allowed. *)

val add_into : buf -> buf -> buf -> int -> unit
val sub_into : buf -> buf -> buf -> int -> unit
val neg_into : buf -> buf -> int -> unit

(** {1 Multiplicative kernels, fast path} *)

val pointwise_mul_into : buf -> buf -> buf -> int -> unit
(** [pointwise_mul_into dst a b p]: [dst.(i) <- a.(i)*b.(i) mod p]. *)

val pointwise_mac_into : buf -> buf -> buf -> int -> unit
(** [pointwise_mac_into acc a b p]: [acc.(i) <- acc.(i) + a.(i)*b.(i) mod p]. *)

val scalar_mul_into : buf -> buf -> int -> int -> unit
(** [scalar_mul_into dst a s p]: Shoup multiplication by the fixed scalar
    [s] (any int; reduced mod [p] first). *)

val broadcast_mod_into : buf -> buf -> int -> unit
(** [broadcast_mod_into dst src p]: reduce residues of another word-sized
    modulus into [\[0, p)] (RNS digit broadcast). *)

val rescale_limb_into : buf -> buf -> buf -> q_last:int -> p:int -> unit
(** [rescale_limb_into dst src last ~q_last ~p]: one limb of the CKKS
    rescale, [dst = (src - \[last\]_centered) / q_last mod p]. *)

(** {1 Multiplicative kernels, schoolbook reference path} — bit-identical
    results via plain [mod]; kept as the [--no-fast-ring] oracle. *)

val pointwise_mul_ref_into : buf -> buf -> buf -> int -> unit
val pointwise_mac_ref_into : buf -> buf -> buf -> int -> unit
val scalar_mul_ref_into : buf -> buf -> int -> int -> unit
val broadcast_mod_ref_into : buf -> buf -> int -> unit
val rescale_limb_ref_into : buf -> buf -> buf -> q_last:int -> p:int -> unit

(** {1 Boundary kernels} *)

val reduce_centered_into : buf -> int array -> int -> unit
(** Reduce centered native-int coefficients into canonical residues. *)

val automorphism_into : buf -> buf -> (int * bool) array -> int -> unit
(** [automorphism_into dst src index p]: apply a precomputed Galois
    permutation-with-sign table ({!Encoding.automorphism_index}). [dst]
    must not alias [src]. *)
