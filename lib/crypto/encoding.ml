(* Canonical embedding via twist + FFT.

   Evaluating m(X) at all odd powers of the 2n-th root ζ reduces to a plain
   FFT: with w_k = m_k·ζ^k, FFT_n(w)_t = Σ_k m_k e^{iπk(2t+1)/n} = m(ζ^{2t+1}).
   Decoding picks out the orbit of 5 (slot j ↦ exponent 5^j mod 2n); encoding
   writes slot values and their conjugates (orbit of −5^j), inverts the FFT
   and removes the twist, which yields real coefficients. *)

type ctx = {
  n : int;
  slots : int;
  slot_to_t : int array; (* slot j -> FFT bin of exponent 5^j mod 2n *)
  conj_to_t : int array; (* slot j -> FFT bin of exponent -(5^j) mod 2n *)
  twist_re : float array; (* e^{iπk/n}, k < n *)
  twist_im : float array;
}

let make ~n =
  if n < 4 || n land (n - 1) <> 0 then invalid_arg "Encoding.make: n must be a power of two >= 4";
  let slots = n / 2 in
  let two_n = 2 * n in
  let slot_to_t = Array.make slots 0 in
  let conj_to_t = Array.make slots 0 in
  let e = ref 1 in
  for j = 0 to slots - 1 do
    slot_to_t.(j) <- (!e - 1) / 2;
    conj_to_t.(j) <- (two_n - !e - 1) / 2;
    e := !e * 5 mod two_n
  done;
  let twist_re = Array.init n (fun k -> cos (Float.pi *. float_of_int k /. float_of_int n)) in
  let twist_im = Array.init n (fun k -> sin (Float.pi *. float_of_int k /. float_of_int n)) in
  { n; slots; slot_to_t; conj_to_t; twist_re; twist_im }

let n ctx = ctx.n
let slots ctx = ctx.slots

(* Bounded LRU memo shared by [galois_element] and [automorphism_index]:
   both are pure, both are re-derived per rotation by the interpretive
   executor, and the working set (distinct (n, r) / (n, g) pairs of one
   deployment) is tiny. Guarded by a mutex — serving workers are domains.
   Eviction scans for the stalest entry; at [capacity] 64 that scan is
   cheaper than what one saved [automorphism_index] call allocates. *)
module Lru = struct
  type ('k, 'v) t = {
    capacity : int;
    tbl : ('k, 'v * int ref) Hashtbl.t;
    mutable tick : int;
    lock : Mutex.t;
  }

  let create capacity = { capacity; tbl = Hashtbl.create 89; tick = 0; lock = Mutex.create () }

  let find_or_add t key compute =
    Mutex.protect t.lock (fun () ->
        t.tick <- t.tick + 1;
        match Hashtbl.find_opt t.tbl key with
        | Some (v, stamp) ->
            stamp := t.tick;
            v
        | None ->
            let v = compute () in
            if Hashtbl.length t.tbl >= t.capacity then begin
              let victim = ref None in
              Hashtbl.iter
                (fun k (_, stamp) ->
                  match !victim with
                  | Some (_, s) when s <= !stamp -> ()
                  | _ -> victim := Some (k, !stamp))
                t.tbl;
              match !victim with Some (k, _) -> Hashtbl.remove t.tbl k | None -> ()
            end;
            Hashtbl.add t.tbl key (v, ref t.tick);
            v)
end

let galois_memo : (int * int, int) Lru.t = Lru.create 64
let automorphism_memo : (int * int, (int * bool) array) Lru.t = Lru.create 64

let galois_element ctx r =
  let two_n = 2 * ctx.n in
  let r = ((r mod ctx.slots) + ctx.slots) mod ctx.slots in
  Lru.find_or_add galois_memo (ctx.n, r) (fun () ->
      let g = ref 1 in
      for _ = 1 to r do
        g := !g * 5 mod two_n
      done;
      !g)

let conj_element ctx = (2 * ctx.n) - 1

let decode ctx ~scale coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Encoding.decode: wrong length";
  let re = Array.init ctx.n (fun k -> coeffs.(k) *. ctx.twist_re.(k)) in
  let im = Array.init ctx.n (fun k -> coeffs.(k) *. ctx.twist_im.(k)) in
  Fft.forward ~re ~im;
  let zre = Array.make ctx.slots 0.0 and zim = Array.make ctx.slots 0.0 in
  for j = 0 to ctx.slots - 1 do
    let t = ctx.slot_to_t.(j) in
    zre.(j) <- re.(t) /. scale;
    zim.(j) <- im.(t) /. scale
  done;
  (zre, zim)

let encode ctx ~scale ~re:zre ~im:zim =
  let get arr j = if j < Array.length arr then arr.(j) else 0.0 in
  let re = Array.make ctx.n 0.0 and im = Array.make ctx.n 0.0 in
  for j = 0 to ctx.slots - 1 do
    let t = ctx.slot_to_t.(j) and t' = ctx.conj_to_t.(j) in
    re.(t) <- get zre j;
    im.(t) <- get zim j;
    re.(t') <- get zre j;
    im.(t') <- -.get zim j
  done;
  Fft.inverse ~re ~im;
  (* untwist: m_k = w_k · e^{-iπk/n}; the imaginary part cancels by
     conjugate symmetry, so we keep only the real component. *)
  Array.init ctx.n (fun k -> ((re.(k) *. ctx.twist_re.(k)) +. (im.(k) *. ctx.twist_im.(k))) *. scale)

let automorphism_index ~n ~g =
  if g land 1 = 0 then invalid_arg "Encoding.automorphism_index: g must be odd";
  let two_n = 2 * n in
  let g = ((g mod two_n) + two_n) mod two_n in
  Lru.find_or_add automorphism_memo (n, g) (fun () ->
      Array.init n (fun k ->
          let e = k * g mod two_n in
          if e < n then (e, false) else (e - n, true)))
