(* Word-sized modular arithmetic. Moduli < 2^31 keep residue products below
   2^62, so everything is exact in native ints. *)

let add_mod a b p =
  let s = a + b in
  if s >= p then s - p else s

let sub_mod a b p =
  let d = a - b in
  if d < 0 then d + p else d

let neg_mod a p = if a = 0 then 0 else p - a
let mul_mod a b p = a * b mod p

let pow_mod b e p =
  if e < 0 then invalid_arg "Modarith.pow_mod: negative exponent";
  let rec loop acc b e =
    if e = 0 then acc
    else begin
      let acc = if e land 1 = 1 then mul_mod acc b p else acc in
      loop acc (mul_mod b b p) (e lsr 1)
    end
  in
  loop 1 (b mod p) e

let inv_mod a p =
  (* extended Euclid; works for any modulus, not just primes *)
  let rec egcd a b =
    if b = 0 then (a, 1, 0)
    else begin
      let g, x, y = egcd b (a mod b) in
      (g, y, x - (a / b * y))
    end
  in
  let a = a mod p in
  let a = if a < 0 then a + p else a in
  let g, x, _ = egcd a p in
  if g <> 1 then invalid_arg "Modarith.inv_mod: not invertible";
  let x = x mod p in
  if x < 0 then x + p else x

let reduce a p =
  let r = a mod p in
  if r < 0 then r + p else r

(* Shoup's multiplication by a fixed multiplicand: precompute
   w' = floor(w * 2^31 / p); then for any x < 2^31,
     q = (w' * x) >> 31  satisfies  0 <= w*x - q*p < 2p.
   Requires w < p < 2^31 so that both w' * x and w * x stay below 2^62. *)

let shoup w p = (w lsl 31) / p

let mul_mod_shoup w wsh x p =
  let q = (wsh * x) lsr 31 in
  let r = (w * x) - (q * p) in
  if r >= p then r - p else r

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    (* write n-1 = d * 2^s *)
    let d = ref (n - 1) and s = ref 0 in
    while !d land 1 = 0 do
      d := !d lsr 1;
      incr s
    done;
    let witness a =
      let a = a mod n in
      if a = 0 then false
      else begin
        let x = ref (pow_mod a !d n) in
        if !x = 1 || !x = n - 1 then false
        else begin
          let composite = ref true in
          (try
             for _ = 1 to !s - 1 do
               x := mul_mod !x !x n;
               if !x = n - 1 then begin
                 composite := false;
                 raise Exit
               end
             done
           with Exit -> ());
          !composite
        end
      end
    in
    (* bases {2,3,5,7} are a deterministic MR test below 3,215,031,751 *)
    not (List.exists witness [ 2; 3; 5; 7 ])
  end

let gen_ntt_prime ~bits ~modulus_of ~below =
  if bits > 31 then invalid_arg "Modarith.gen_ntt_prime: bits must be <= 31";
  let upper = Stdlib.min ((1 lsl bits) - 1) (below - 1) in
  (* candidates are k * modulus_of + 1 *)
  let k = ref ((upper - 1) / modulus_of) in
  let result = ref 0 in
  while !result = 0 && !k > 0 do
    let candidate = (!k * modulus_of) + 1 in
    if candidate <= upper && is_prime candidate then result := candidate;
    decr k
  done;
  if !result = 0 then raise Not_found;
  !result

let gen_ntt_primes ~bits ~modulus_of ~count =
  let primes = Array.make count 0 in
  let below = ref (1 lsl bits) in
  for i = 0 to count - 1 do
    let p = gen_ntt_prime ~bits ~modulus_of ~below:!below in
    primes.(i) <- p;
    below := p
  done;
  primes

let factor_distinct n =
  let rec loop n d acc =
    if d * d > n then if n > 1 then n :: acc else acc
    else if n mod d = 0 then begin
      let rec strip n = if n mod d = 0 then strip (n / d) else n in
      loop (strip n) (d + 1) (d :: acc)
    end
    else loop n (d + 1) acc
  in
  loop n 2 []

let primitive_root p =
  let phi = p - 1 in
  let factors = factor_distinct phi in
  let is_generator g = List.for_all (fun q -> pow_mod g (phi / q) p <> 1) factors in
  let rec search g = if is_generator g then g else search (g + 1) in
  search 2

let root_of_unity ~order p =
  if (p - 1) mod order <> 0 then invalid_arg "Modarith.root_of_unity: order must divide p-1";
  let g = primitive_root p in
  pow_mod g ((p - 1) / order) p
