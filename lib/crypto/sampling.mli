(** Samplers for RLWE key material and noise.

    All sampling is driven by an explicit [Random.State.t] so that key
    generation and encryption are reproducible under a fixed seed (the tests
    and benchmarks rely on this). *)

type t

val create : seed:int -> t

val reseed : t -> seed:int -> unit
(** Reset the sampler to exactly the stream [create ~seed] would start:
    subsequent draws are bit-identical to those from a fresh sampler. Lets a
    long-lived backend (a prepared plan executor) be re-pointed at a request's
    randomness instead of being rebuilt. *)

val state : t -> Random.State.t

val uniform_mod : t -> int -> int
(** Uniform in [\[0, m)] for [m < 2^30]. *)

val ternary : t -> int -> int array
(** Length-[n] vector with entries uniform in [{-1, 0, 1}] (the secret-key
    distribution of SEAL and HEAAN). *)

val gaussian : t -> sigma:float -> int -> int array
(** Length-[n] vector of centered discrete Gaussian samples (Box–Muller,
    rounded), truncated to [±6σ]. *)

val uniform_poly : t -> modulus:int -> int -> int array
(** Length-[n] vector uniform mod [modulus]. *)

val uniform_bigint_poly : t -> modulus:Chet_bigint.Bigint.t -> int -> Chet_bigint.Bigint.t array
