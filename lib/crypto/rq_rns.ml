module Bigint = Chet_bigint.Bigint

type ctx = { n : int; primes : int array; ntts : Ntt.table array }

let make_ctx ~n ~primes =
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then invalid_arg "Rq_rns.make_ctx: duplicate prime";
      Hashtbl.add seen p ())
    primes;
  { n; primes; ntts = Array.map (fun p -> Ntt.make_table ~n ~prime:p) primes }

let ctx_n ctx = ctx.n
let ctx_primes ctx = ctx.primes

(* Residue components are unboxed Bigarray buffers (Rvec) — one canonical
   residue vector per basis prime. Kernels come in a fast (Shoup /
   lazy-NTT) and a schoolbook reference flavour, selected
   per call through {!Rq.fast_ring_enabled}; both are bit-identical.
   Residue channels are independent, so the heavy per-limb kernels (NTTs,
   pointwise products) fan out across {!Kpool} domains. *)

type mode = int array
type t = { basis : int array; comps : Rvec.buf array; ntt : bool }

let basis t = t.basis
let is_ntt t = t.ntt

let zero ctx basis =
  { basis = Array.copy basis; comps = Array.map (fun _ -> Rvec.zeroed ctx.n) basis; ntt = false }

let copy t = { t with comps = Array.map Rvec.copy t.comps; basis = Array.copy t.basis }
let same_basis a b = a.basis = b.basis

(* limb-parallel map over the components of a fresh element *)
let par_init ctx nb f =
  let comps = Array.init nb (fun _ -> Rvec.create ctx.n) in
  Kpool.run nb (fun k -> f k comps.(k));
  comps

let of_centered_coeffs ctx basis coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq_rns.of_centered_coeffs: wrong length";
  let comps =
    par_init ctx (Array.length basis) (fun k dst ->
        Rvec.reduce_centered_into dst coeffs ctx.primes.(basis.(k)))
  in
  { basis = Array.copy basis; comps; ntt = false }

let of_bigint_coeffs ctx basis coeffs =
  if Array.length coeffs <> ctx.n then invalid_arg "Rq_rns.of_bigint_coeffs: wrong length";
  let comps =
    Array.map
      (fun i ->
        let p = ctx.primes.(i) in
        Rvec.of_int_array (Array.map (fun c -> Bigint.mod_int c p) coeffs))
      basis
  in
  { basis = Array.copy basis; comps; ntt = false }

let modulus ctx basis =
  Array.fold_left (fun acc i -> Bigint.mul_int acc ctx.primes.(i)) Bigint.one basis

let to_ntt ctx t =
  if t.ntt then t
  else begin
    let nb = Array.length t.basis in
    let comps =
      par_init ctx nb (fun k dst ->
          Rvec.blit t.comps.(k) dst;
          Ntt.forward_buf ctx.ntts.(t.basis.(k)) dst)
    in
    { t with comps; ntt = true }
  end

let from_ntt ctx t =
  if not t.ntt then t
  else begin
    let nb = Array.length t.basis in
    let comps =
      par_init ctx nb (fun k dst ->
          Rvec.blit t.comps.(k) dst;
          Ntt.inverse_buf ctx.ntts.(t.basis.(k)) dst)
    in
    { t with comps; ntt = false }
  end

let to_bigint_coeffs ctx t =
  let t = from_ntt ctx t in
  let nb = Array.length t.basis in
  let q = modulus ctx t.basis in
  (* Garner-free CRT: x = Σ ((r_i * inv_i) mod q_i) * (Q/q_i) mod Q *)
  let q_over = Array.map (fun i -> Bigint.div q (Bigint.of_int ctx.primes.(i))) t.basis in
  let invs =
    Array.mapi
      (fun k i ->
        let p = ctx.primes.(i) in
        Modarith.inv_mod (Bigint.mod_int q_over.(k) p) p)
      t.basis
  in
  Array.init ctx.n (fun j ->
      let acc = ref Bigint.zero in
      for k = 0 to nb - 1 do
        let p = ctx.primes.(t.basis.(k)) in
        let c = Modarith.mul_mod (Rvec.get t.comps.(k) j) invs.(k) p in
        acc := Bigint.add !acc (Bigint.mul_int q_over.(k) c)
      done;
      Bigint.emod !acc q)

let to_centered_bigint_coeffs ctx t =
  let q = modulus ctx t.basis in
  Array.map (fun c -> Bigint.centered_mod c q) (to_bigint_coeffs ctx t)

let check2 name a b =
  if not (same_basis a b) then invalid_arg (name ^ ": basis mismatch");
  if a.ntt <> b.ntt then invalid_arg (name ^ ": NTT-form mismatch")

let add ctx a b =
  check2 "Rq_rns.add" a b;
  let comps =
    par_init ctx (Array.length a.basis) (fun k dst ->
        Rvec.add_into dst a.comps.(k) b.comps.(k) ctx.primes.(a.basis.(k)))
  in
  { basis = Array.copy a.basis; comps; ntt = a.ntt }

let sub ctx a b =
  check2 "Rq_rns.sub" a b;
  let comps =
    par_init ctx (Array.length a.basis) (fun k dst ->
        Rvec.sub_into dst a.comps.(k) b.comps.(k) ctx.primes.(a.basis.(k)))
  in
  { basis = Array.copy a.basis; comps; ntt = a.ntt }

let neg ctx t =
  let comps =
    par_init ctx (Array.length t.basis) (fun k dst ->
        Rvec.neg_into dst t.comps.(k) ctx.primes.(t.basis.(k)))
  in
  { t with comps; basis = Array.copy t.basis }

let mul ctx a b =
  let a = to_ntt ctx a and b = to_ntt ctx b in
  check2 "Rq_rns.mul" a b;
  let fast = Rq.fast_ring_enabled () in
  let comps =
    par_init ctx (Array.length a.basis) (fun k dst ->
        let p = ctx.primes.(a.basis.(k)) in
        if fast then Rvec.pointwise_mul_into dst a.comps.(k) b.comps.(k) p
        else Rvec.pointwise_mul_ref_into dst a.comps.(k) b.comps.(k) p)
  in
  { basis = Array.copy a.basis; comps; ntt = true }

let mul_scalar ctx t s =
  let fast = Rq.fast_ring_enabled () in
  let comps =
    par_init ctx (Array.length t.basis) (fun k dst ->
        let p = ctx.primes.(t.basis.(k)) in
        if fast then Rvec.scalar_mul_into dst t.comps.(k) s p
        else Rvec.scalar_mul_ref_into dst t.comps.(k) s p)
  in
  { t with comps; basis = Array.copy t.basis }

let add_scalar ctx t s =
  if t.ntt then invalid_arg "Rq_rns.add_scalar: coefficient form required";
  let r = copy t in
  Array.iteri
    (fun k i ->
      let p = ctx.primes.(i) in
      Rvec.set r.comps.(k) 0 (Modarith.add_mod (Rvec.get r.comps.(k) 0) (Modarith.reduce s p) p))
    r.basis;
  r

let automorphism ctx t ~g =
  if t.ntt then invalid_arg "Rq_rns.automorphism: coefficient form required";
  let index = Encoding.automorphism_index ~n:ctx.n ~g in
  let comps =
    par_init ctx (Array.length t.basis) (fun k dst ->
        Rvec.automorphism_into dst t.comps.(k) index ctx.primes.(t.basis.(k)))
  in
  { t with comps; basis = Array.copy t.basis }

let drop_last ctx t ~rounded =
  if t.ntt then invalid_arg "Rq_rns.drop_last: coefficient form required";
  let nb = Array.length t.basis in
  if nb < 2 then invalid_arg "Rq_rns.drop_last: nothing to drop";
  let last_idx = t.basis.(nb - 1) in
  let q_last = ctx.primes.(last_idx) in
  let last = t.comps.(nb - 1) in
  let basis = Array.sub t.basis 0 (nb - 1) in
  let fast = Rq.fast_ring_enabled () in
  let comps =
    if not rounded then Array.init (nb - 1) (fun k -> Rvec.copy t.comps.(k))
    else
      par_init ctx (nb - 1) (fun k dst ->
          let p = ctx.primes.(t.basis.(k)) in
          if fast then Rvec.rescale_limb_into dst t.comps.(k) last ~q_last ~p
          else Rvec.rescale_limb_ref_into dst t.comps.(k) last ~q_last ~p)
  in
  { basis; comps; ntt = false }

let position t i =
  let rec find k =
    if k >= Array.length t.basis then invalid_arg "Rq_rns: index not in basis"
    else if t.basis.(k) = i then k
    else find (k + 1)
  in
  find 0

let subset t indices =
  {
    basis = Array.copy indices;
    comps = Array.map (fun i -> Rvec.copy t.comps.(position t i)) indices;
    ntt = t.ntt;
  }

let equal a b =
  a.basis = b.basis && a.ntt = b.ntt
  && Array.length a.comps = Array.length b.comps
  && Array.for_all2 Rvec.equal a.comps b.comps

let of_components ~basis ~comps ~ntt =
  if Array.length basis <> Array.length comps then invalid_arg "Rq_rns.of_components: arity mismatch";
  { basis = Array.copy basis; comps = Array.map Rvec.of_int_array comps; ntt }

let component t ~basis_index = Rvec.to_int_array t.comps.(position t basis_index)

let scale_component ctx t ~basis_index ~scalar =
  let k0 = position t basis_index in
  let comps =
    Array.mapi
      (fun k i ->
        if k <> k0 then Rvec.zeroed (Rvec.length t.comps.(k))
        else begin
          let p = ctx.primes.(i) in
          let dst = Rvec.create (Rvec.length t.comps.(k)) in
          if Rq.fast_ring_enabled () then Rvec.scalar_mul_into dst t.comps.(k) scalar p
          else Rvec.scalar_mul_ref_into dst t.comps.(k) scalar p;
          dst
        end)
      t.basis
  in
  { t with comps; basis = Array.copy t.basis }

(* --- raw buffer access (scheme-layer hot paths; see rq_rns.mli) --- *)

let raw_comp t k = t.comps.(k)
let raw_ntt_table ctx i = ctx.ntts.(i)

let unsafe_of_bufs ~basis ~comps ~ntt =
  if Array.length basis <> Array.length comps then
    invalid_arg "Rq_rns.unsafe_of_bufs: arity mismatch";
  { basis; comps; ntt }

(* --- Rq.S conformance (mode = basis) --- *)

let n = ctx_n
let mode_of = basis
let to_eval = to_ntt
let from_eval = from_ntt

let rescale ctx t ~divisor =
  let t = ref (from_ntt ctx t) and d = ref divisor in
  while !d > 1 do
    let b = !t.basis in
    let nb = Array.length b in
    if nb < 2 then invalid_arg "Rq_rns.rescale: modulus exhausted";
    let q = ctx.primes.(b.(nb - 1)) in
    if !d mod q <> 0 then invalid_arg "Rq_rns.rescale: divisor not a product of trailing primes";
    t := drop_last ctx !t ~rounded:true;
    d := !d / q
  done;
  !t

let mod_down ctx t target =
  let t = from_ntt ctx t in
  subset t target

(* Standalone element serialization for the unified ring signature. This is
   *not* the wire format of {!Serial} (which frames components itself and
   is covered by golden files); it is a self-contained encoding:
   [n; nb; ntt; basis...; residues...] as little-endian 32-bit words. *)

let to_bytes ctx t =
  let nb = Array.length t.basis in
  let b = Buffer.create ((3 + nb + (nb * ctx.n)) * 4) in
  let w32 v = Buffer.add_int32_le b (Int32.of_int v) in
  w32 ctx.n;
  w32 nb;
  w32 (if t.ntt then 1 else 0);
  Array.iter w32 t.basis;
  Array.iter
    (fun comp ->
      for j = 0 to ctx.n - 1 do
        w32 (Rvec.get comp j)
      done)
    t.comps;
  Buffer.contents b

let of_bytes ctx s =
  let r32 off = Int32.to_int (String.get_int32_le s (off * 4)) in
  if String.length s < 12 then invalid_arg "Rq_rns.of_bytes: truncated";
  let n = r32 0 and nb = r32 1 and ntt = r32 2 = 1 in
  if n <> ctx.n then invalid_arg "Rq_rns.of_bytes: ring size mismatch";
  if String.length s <> (3 + nb + (nb * n)) * 4 then invalid_arg "Rq_rns.of_bytes: bad length";
  let basis = Array.init nb (fun k -> r32 (3 + k)) in
  Array.iter
    (fun i ->
      if i < 0 || i >= Array.length ctx.primes then invalid_arg "Rq_rns.of_bytes: bad basis index")
    basis;
  let comps =
    Array.init nb (fun k ->
        let dst = Rvec.create n in
        let off = 3 + nb + (k * n) in
        for j = 0 to n - 1 do
          let v = r32 (off + j) in
          if v < 0 || v >= ctx.primes.(basis.(k)) then
            invalid_arg "Rq_rns.of_bytes: residue out of range";
          Rvec.set dst j v
        done;
        dst)
  in
  { basis; comps; ntt }
