(** Polynomials in the double-CRT (RNS + NTT) representation used by
    RNS-CKKS: an element of [Z_Q\[X\]/(X^n+1)] with [Q = Π q_i] is stored as
    one residue vector per prime [q_i].

    A polynomial's basis is a set of indices into the context's prime list;
    ciphertexts use the prefix [q_0..q_{l-1}] and key-switching keys
    additionally carry the special prime (last index). *)

module Bigint = Chet_bigint.Bigint

type ctx

val make_ctx : n:int -> primes:int array -> ctx
(** Builds NTT tables for every prime. Primes must be distinct, NTT-friendly
    for size [n]. *)

val ctx_n : ctx -> int
val ctx_primes : ctx -> int array

type mode = int array
(** An element's mode is its basis: indices into the context's primes. *)

type t

val basis : t -> int array
(** Indices into [ctx_primes] of this polynomial's residue components. *)

val is_ntt : t -> bool
val zero : ctx -> int array -> t
val copy : t -> t

val of_centered_coeffs : ctx -> int array -> int array -> t
(** [of_centered_coeffs ctx basis coeffs]: coefficients given as centered
    native ints. Result is in coefficient (non-NTT) form. *)

val of_bigint_coeffs : ctx -> int array -> Bigint.t array -> t

val to_bigint_coeffs : ctx -> t -> Bigint.t array
(** CRT reconstruction; results in [\[0, Q)]. Input may be in either form. *)

val to_centered_bigint_coeffs : ctx -> t -> Bigint.t array

val modulus : ctx -> int array -> Bigint.t
(** [Π] of the basis primes. *)

val to_ntt : ctx -> t -> t
val from_ntt : ctx -> t -> t
val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
val neg : ctx -> t -> t

val mul : ctx -> t -> t -> t
(** Ring product; converts operands to NTT form as needed. Result in NTT
    form. *)

val mul_scalar : ctx -> t -> int -> t
(** Multiply by a centered integer scalar (form-preserving). *)

val add_scalar : ctx -> t -> int -> t
(** Add a centered integer to the constant coefficient (coefficient form
    required). *)

val automorphism : ctx -> t -> g:int -> t
(** [m(X) ↦ m(X^g)], odd [g]; operand must be in coefficient form. *)

val drop_last : ctx -> t -> rounded:bool -> t
(** Remove the last basis component [q_last]. With [~rounded:true] this is
    the CKKS [rescale]: divide by [q_last] with rounding
    ([c ↦ (c - \[c\]_{q_last}) / q_last] on centered lifts). With
    [~rounded:false] it simply forgets the component (exact only if the
    value is unchanged mod the remaining basis). Coefficient form required. *)

val subset : t -> int array -> t
(** Restrict to a sub-basis (indices must be present). *)

val equal : t -> t -> bool

(** {1 Low-level constructors}

    Used by the scheme layer for digit decomposition and direct-in-NTT
    sampling; residues must already be reduced mod their primes. *)

val of_components : basis:int array -> comps:int array array -> ntt:bool -> t
val component : t -> basis_index:int -> int array
(** Residue vector of the component for prime index [basis_index]. *)

val scale_component : ctx -> t -> basis_index:int -> scalar:int -> t
(** Zero every component except [basis_index], which is multiplied by
    [scalar]. *)

(** {1 Raw buffer access}

    Residue components are stored as unboxed {!Rvec.buf} buffers; the
    scheme layer's hot paths (key switching) read and assemble them without
    the int-array copies of {!component}/{!of_components}. *)

val position : t -> int -> int
(** Component slot of prime index [i] in this element's basis. *)

val raw_comp : t -> int -> Rvec.buf
(** The live residue buffer of component slot [k] — no copy; callers must
    not mutate it. *)

val raw_ntt_table : ctx -> int -> Ntt.table
(** NTT table of prime index [i]. *)

val unsafe_of_bufs : basis:int array -> comps:Rvec.buf array -> ntt:bool -> t
(** Adopt buffers without copying. The caller transfers ownership: residues
    must already be canonical mod their primes. *)

(** {1 Unified ring signature}

    Aliases and completions making this module an instance of
    {!Rq.S} with [mode = int array] (checked in {!Rq_conform}). *)

val n : ctx -> int
val mode_of : t -> int array
val to_eval : ctx -> t -> t
val from_eval : ctx -> t -> t

val rescale : ctx -> t -> divisor:int -> t
(** Repeated rounded {!drop_last}; [divisor] must be the product of the
    trailing basis primes being dropped. *)

val mod_down : ctx -> t -> int array -> t
(** Restrict to a sub-basis (through coefficient form). *)

val to_bytes : ctx -> t -> string
(** Self-contained little-endian encoding of one element. Distinct from the
    {!Serial} wire format, which frames components itself. *)

val of_bytes : ctx -> string -> t
(** Inverse of {!to_bytes}; validates lengths, basis indices and residue
    ranges. @raise Invalid_argument on malformed input. *)
