(** CKKS canonical embedding: maps vectors of [n/2] complex "slots" to real
    polynomials of degree [< n] and back.

    Slot [j] holds the value of the message polynomial at [ζ^(5^j)], where
    [ζ = exp(iπ/n)] is a primitive [2n]-th root of unity; the conjugate
    orbit [−5^j] carries the complex conjugates, which forces the
    coefficients to be real. Rotating slots left by [r] is the ring
    automorphism [X ↦ X^(5^r mod 2n)]. *)

type ctx

val make : n:int -> ctx
(** [n] must be a power of two, at least 4. *)

val n : ctx -> int

val slots : ctx -> int
(** [n/2]. *)

val galois_element : ctx -> int -> int
(** [galois_element ctx r] = [5^r mod 2n], the automorphism exponent that
    rotates slots left by [r] ([r] may be negative). *)

val conj_element : ctx -> int
(** The automorphism exponent [2n - 1] (complex conjugation of all slots). *)

val encode : ctx -> scale:float -> re:float array -> im:float array -> float array
(** Encode [slots ctx] complex values at the given scale into [n] real
    coefficients (unrounded; callers round to integers). Arrays shorter than
    [slots ctx] are zero-padded. *)

val decode : ctx -> scale:float -> float array -> float array * float array
(** Inverse of {!encode}: coefficient vector (length [n]) to slot values,
    dividing out [scale]. *)

val automorphism_index : n:int -> g:int -> (int * bool) array
(** For the map [m(X) ↦ m(X^g)] in [Z\[X\]/(X^n+1)] with odd [g]: entry [k]
    of the result is [(k', negate)] meaning coefficient [k] of the input
    lands at position [k'] of the output, negated when [negate].

    Memoized (bounded LRU, thread-safe) — the returned array is shared
    across callers and must be treated as read-only. {!galois_element} is
    memoized the same way, so per-rotation context lookup is O(1) after
    first use instead of O(n) per call. *)
